package req

// Registry benchmark suite: the keyed hot paths (Update, Quantile, churn
// under a capacity cap, windowed update+query, bulk export). The full-scale
// versions with 1M/4M-key populations and an A/B against a naive
// map[string]*Float64 live in `reqbench -registry` (BENCH_pr9.json); these
// targets keep the steady-state cost profile under CI's bench smoke.

import (
	"fmt"
	"testing"
	"time"
)

// benchRegistryKeys returns n distinct key names, preallocated so key
// formatting never lands inside a timed loop.
func benchRegistryKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%05d", i)
	}
	return keys
}

func BenchmarkRegistryUpdate(b *testing.B) {
	keys := benchRegistryKeys(1 << 10)
	vals := benchValues(1<<16, 1)
	reg, err := NewRegistryFloat64(WithEpsilon(0.01), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for i, k := range keys { // resident population before timing
		reg.Update(k, vals[i&(1<<16-1)])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Update(keys[i&(1<<10-1)], vals[i&(1<<16-1)])
	}
}

func BenchmarkRegistryQuantile(b *testing.B) {
	keys := benchRegistryKeys(1 << 8)
	vals := benchValues(1<<16, 2)
	reg, err := NewRegistryFloat64(WithEpsilon(0.01), WithSeed(2))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<14; i++ {
		reg.Update(keys[i&(1<<8-1)], vals[i&(1<<16-1)])
	}
	for _, k := range keys { // freeze every view before timing
		if _, err := reg.Quantile(k, 0.5); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Quantile(keys[i&(1<<8-1)], 0.99); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegistryChurn(b *testing.B) {
	const cap = 1 << 8
	keys := benchRegistryKeys(1 << 12) // 16x the cap: every pass evicts
	vals := benchValues(1<<16, 3)
	var now int64
	reg, err := NewRegistryFloat64(
		WithEpsilon(0.01), WithSeed(3),
		WithMaxEntries(cap),
		WithTTL(time.Second),
		WithClock(func() int64 { return now }),
	)
	if err != nil {
		b.Fatal(err)
	}
	for i, k := range keys { // one warm sweep grows every freelist
		reg.Update(k, vals[i&(1<<16-1)])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Update(keys[i&(1<<12-1)], vals[i&(1<<16-1)])
	}
}

func BenchmarkWindowedRegistryUpdate(b *testing.B) {
	keys := benchRegistryKeys(1 << 8)
	vals := benchValues(1<<16, 4)
	var now int64
	reg, err := NewWindowedRegistryFloat64(
		WithEpsilon(0.01), WithSeed(4),
		WithWindow(8, time.Second),
		WithClock(func() int64 { return now }),
	)
	if err != nil {
		b.Fatal(err)
	}
	for ep := 0; ep < 16; ep++ { // warm through two full ring laps
		now = int64(ep) * int64(time.Second)
		for i, k := range keys {
			reg.Update(k, vals[(ep+i)&(1<<16-1)])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&(1<<12-1) == 0 {
			now += int64(time.Second) // rotation stays on the timed path
		}
		reg.Update(keys[i&(1<<8-1)], vals[i&(1<<16-1)])
	}
}

func BenchmarkWindowedRegistryQuery(b *testing.B) {
	keys := benchRegistryKeys(1 << 8)
	vals := benchValues(1<<16, 5)
	var now int64
	reg, err := NewWindowedRegistryFloat64(
		WithEpsilon(0.01), WithSeed(5),
		WithWindow(8, time.Second),
		WithClock(func() int64 { return now }),
	)
	if err != nil {
		b.Fatal(err)
	}
	phis := []float64{0.5, 0.99}
	dst := make([]float64, 0, len(phis))
	for ep := 0; ep < 16; ep++ {
		now = int64(ep) * int64(time.Second)
		for i, k := range keys {
			reg.Update(k, vals[(ep+i)&(1<<16-1)])
		}
	}
	for _, k := range keys { // grow every per-shard merge stage
		if _, err := reg.QuantilesInto(k, dst, phis); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.QuantilesInto(keys[i&(1<<8-1)], dst, phis); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegistryExport(b *testing.B) {
	keys := benchRegistryKeys(1 << 10)
	vals := benchValues(1<<16, 6)
	reg, err := NewRegistryFloat64(WithEpsilon(0.01), WithSeed(6))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<16; i++ {
		reg.Update(keys[i&(1<<10-1)], vals[i])
	}
	blob, err := reg.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryUpdatePairs measures the shard-grouped batched ingest
// against the per-op loop at the same key mix, across batch sizes. One
// op = one whole batch; divide ns/op by the batch size to compare with
// BenchmarkRegistryUpdate. The 1M-key full-scale A/B lives in
// `reqbench -registry` (BENCH_pr10.json).
func BenchmarkRegistryUpdatePairs(b *testing.B) {
	keys := benchRegistryKeys(1 << 10)
	vals := benchValues(1<<16, 7)
	for _, batch := range []int{16, 256, 4096} {
		bk := make([]string, batch)
		bv := make([]float64, batch)
		for i := range bk {
			bk[i] = keys[(i*7)&(1<<10-1)]
			bv[i] = vals[i&(1<<16-1)]
		}
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			reg, err := NewRegistryFloat64(WithEpsilon(0.01), WithSeed(7))
			if err != nil {
				b.Fatal(err)
			}
			for i, k := range keys {
				reg.Update(k, vals[i&(1<<16-1)])
			}
			reg.UpdatePairs(bk, bv) // grow the pooled scratch before timing
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reg.UpdatePairs(bk, bv)
			}
		})
		b.Run(fmt.Sprintf("peropLoop/batch=%d", batch), func(b *testing.B) {
			reg, err := NewRegistryFloat64(WithEpsilon(0.01), WithSeed(7))
			if err != nil {
				b.Fatal(err)
			}
			for i, k := range keys {
				reg.Update(k, vals[i&(1<<16-1)])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range bk {
					reg.Update(bk[j], bv[j])
				}
			}
		})
	}
}

func BenchmarkWindowedRegistryUpdatePairs(b *testing.B) {
	keys := benchRegistryKeys(1 << 8)
	vals := benchValues(1<<16, 8)
	const batch = 256
	bk := make([]string, batch)
	bv := make([]float64, batch)
	for i := range bk {
		bk[i] = keys[(i*3)&(1<<8-1)]
		bv[i] = vals[i&(1<<16-1)]
	}
	var now int64
	reg, err := NewWindowedRegistryFloat64(
		WithEpsilon(0.01), WithSeed(8),
		WithWindow(8, time.Second),
		WithClock(func() int64 { return now }),
	)
	if err != nil {
		b.Fatal(err)
	}
	for ep := 0; ep < 16; ep++ { // warm through two full ring laps
		now = int64(ep) * int64(time.Second)
		reg.UpdatePairs(bk, bv)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&15 == 0 {
			now += int64(time.Second) // rotation stays on the timed path
		}
		reg.UpdatePairs(bk, bv)
	}
}
