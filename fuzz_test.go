package req

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// Fuzz targets: `go test -fuzz=FuzzDecodeFloat64` explores further; in
// normal test runs the seed corpus exercises the paths.

// FuzzDecodeFloat64 asserts the decoder never panics and that anything it
// accepts is a structurally valid sketch.
func FuzzDecodeFloat64(f *testing.F) {
	// Seed corpus: valid encodings of various shapes plus garbage — and a
	// snapshot record, which the full-sketch decoder must reject.
	empty, _ := NewFloat64(WithEpsilon(0.1))
	blob, _ := empty.MarshalBinary()
	f.Add(blob)

	full := mustFuzzSketch()
	blob2, _ := full.MarshalBinary()
	f.Add(blob2)
	f.Add([]byte{})
	f.Add([]byte("REQ1"))
	f.Add(blob2[:len(blob2)/2])
	mut := append([]byte(nil), blob2...)
	mut[10] ^= 0xFF
	f.Add(mut)
	snapBlob, _ := full.Snapshot().MarshalBinary()
	f.Add(snapBlob)
	// Hostile-geometry regressions: headers whose khat/eps demand absurd
	// restore capacity once made the decoder panic (float→int overflow) or
	// allocate gigabytes; they must be cheap ErrCorrupt rejections.
	for _, hostile := range [][2]interface{}{
		{25, 1e15}, {25, math.Inf(1)}, {25, math.NaN()}, {9, math.NaN()},
	} {
		h := append([]byte(nil), blob2...)
		off, v := hostile[0].(int), hostile[1].(float64)
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h[off+i] = byte(bits >> (8 * i))
		}
		f.Add(h)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeFloat64(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection not wrapped in ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted sketches must be internally consistent and usable.
		if s.Count() > 0 {
			if _, err := s.Quantile(0.5); err != nil {
				t.Fatalf("accepted sketch cannot answer quantile: %v", err)
			}
		}
		_ = s.Rank(0)
		if _, err := s.MarshalBinary(); err != nil {
			t.Fatalf("accepted sketch cannot re-encode: %v", err)
		}
	})
}

// FuzzDecodeSnapshotFloat64 asserts the snapshot decoder never panics,
// rejects corruption with ErrCorrupt, and that anything it accepts is a
// queryable snapshot whose re-encoding round-trips bit-identically.
func FuzzDecodeSnapshotFloat64(f *testing.F) {
	// Seed corpus: valid snapshot records of several shapes, mutations of
	// one, and a full sketch record (must be rejected).
	empty, _ := NewFloat64(WithEpsilon(0.1))
	emptyBlob, _ := empty.Snapshot().MarshalBinary()
	f.Add(emptyBlob)

	full := mustFuzzSketch()
	snapBlob, _ := full.Snapshot().MarshalBinary()
	f.Add(snapBlob)
	sketchBlob, _ := full.MarshalBinary()
	f.Add(sketchBlob)
	f.Add([]byte{})
	f.Add(snapBlob[:len(snapBlob)/2])
	for _, off := range []int{5, 6, 40, 60, len(snapBlob) - 9} {
		mut := append([]byte(nil), snapBlob...)
		mut[off] ^= 0xFF
		f.Add(mut)
	}
	// Hostile-geometry headers (see FuzzDecodeFloat64): khat/eps chosen to
	// bait a huge allocation out of the config-driven restore path.
	for _, hostile := range [][2]interface{}{{25, 1e15}, {25, math.NaN()}, {9, math.NaN()}} {
		h := append([]byte(nil), snapBlob...)
		off, v := hostile[0].(int), hostile[1].(float64)
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h[off+i] = byte(bits >> (8 * i))
		}
		f.Add(h)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		sn, err := UnmarshalSnapshotFloat64(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection not wrapped in ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted snapshots must be internally consistent and usable.
		if sn.Count() > 0 {
			q, err := sn.Quantile(0.5)
			if err != nil {
				t.Fatalf("accepted snapshot cannot answer quantile: %v", err)
			}
			mn, _ := sn.Min()
			mx, _ := sn.Max()
			if q < mn || mx < q {
				t.Fatalf("median %v outside [%v, %v]", q, mn, mx)
			}
			var total uint64
			for _, w := range sn.All() {
				total += w
			}
			if total != sn.Count() {
				t.Fatalf("coreset weights sum to %d, count is %d", total, sn.Count())
			}
		}
		_ = sn.Rank(0)
		// Re-encoding reaches a fixed point after one round trip (the first
		// decode may normalize config defaults) and preserves answers.
		reblob, err := sn.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted snapshot cannot re-encode: %v", err)
		}
		sn2, err := UnmarshalSnapshotFloat64(reblob)
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
		if sn2.Count() != sn.Count() || sn2.Rank(0.5) != sn.Rank(0.5) {
			t.Fatal("re-encoded snapshot answers differently")
		}
		reblob2, err := sn2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reblob, reblob2) {
			t.Fatal("snapshot re-encoding is not a fixed point")
		}
	})
}

// FuzzUpdateRank asserts basic sanity for arbitrary input values: counts
// track updates, ranks are monotone and bounded, quantiles invert ranks.
func FuzzUpdateRank(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add([]byte{255, 0, 255, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, seed uint8) {
		s, err := NewFloat64(WithEpsilon(0.1), WithSeed(uint64(seed)))
		if err != nil {
			t.Fatal(err)
		}
		n := uint64(0)
		for i := 0; i+8 <= len(raw); i += 8 {
			bits := uint64(0)
			for j := 0; j < 8; j++ {
				bits = bits<<8 | uint64(raw[i+j])
			}
			v := math.Float64frombits(bits)
			if math.IsNaN(v) {
				s.Update(v) // must be ignored
				continue
			}
			s.Update(v)
			n++
		}
		if s.Count() != n {
			t.Fatalf("count %d after %d non-NaN updates", s.Count(), n)
		}
		if n == 0 {
			return
		}
		mn, _ := s.Min()
		mx, _ := s.Max()
		if s.Rank(mx) != n {
			t.Fatalf("Rank(max) = %d, want %d", s.Rank(mx), n)
		}
		if s.RankExclusive(mn) != 0 {
			t.Fatal("RankExclusive(min) != 0")
		}
		q, err := s.Quantile(0.5)
		if err != nil {
			t.Fatal(err)
		}
		if s.less(q, mn) || s.less(mx, q) {
			t.Fatalf("median %v outside [min, max]", q)
		}
	})
}

// less re-exposed for the fuzz assertions (float64 order).
func (s *Float64) less(a, b float64) bool { return a < b }

func mustFuzzSketch() *Float64 {
	s, err := NewFloat64(WithEpsilon(0.1), WithSeed(9))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 30000; i++ {
		s.Update(float64(i % 977))
	}
	return s
}
