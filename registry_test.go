package req

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is a synthetic nanosecond clock for driving TTL and window
// rotation deterministically.
type fakeClock struct{ now int64 }

func (c *fakeClock) opt() Option             { return WithClock(func() int64 { return c.now }) }
func (c *fakeClock) advance(d time.Duration) { c.now += int64(d) }
func (c *fakeClock) set(t time.Duration)     { c.now = int64(t) }

func TestRegistryBasics(t *testing.T) {
	r, err := NewRegistryFloat64(WithK(8), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Quantile("missing", 0.5); !errors.Is(err, ErrNoKey) {
		t.Fatalf("Quantile of absent key: %v, want ErrNoKey", err)
	}
	if _, err := r.Rank("missing", 1); !errors.Is(err, ErrNoKey) {
		t.Fatalf("Rank of absent key: %v, want ErrNoKey", err)
	}
	if _, err := r.Snapshot("missing"); !errors.Is(err, ErrNoKey) {
		t.Fatalf("Snapshot of absent key: %v, want ErrNoKey", err)
	}
	if r.Count("missing") != 0 || r.Contains("missing") || r.Len() != 0 {
		t.Fatal("empty registry reports residents")
	}
	for i := 0; i < 10_000; i++ {
		r.Update("a", float64(i))
	}
	r.UpdateBatch("b", []float64{1, 2, 3, 4, 5})
	if r.Len() != 2 || !r.Contains("a") || r.Count("b") != 5 {
		t.Fatalf("Len=%d Contains(a)=%v Count(b)=%d", r.Len(), r.Contains("a"), r.Count("b"))
	}
	q, err := r.Quantile("a", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q < 3000 || q > 7000 {
		t.Fatalf("p50(a) = %v, wildly off for uniform 0..9999", q)
	}
	if rank, _ := r.Rank("b", 3); rank != 3 {
		t.Fatalf("Rank(b, 3) = %d, want 3 (tiny sketch is exact)", rank)
	}
	qs, err := r.QuantilesInto("b", nil, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != 1 || qs[2] != 5 {
		t.Fatalf("QuantilesInto(b) = %v", qs)
	}
	if !r.Delete("a") || r.Delete("a") || r.Contains("a") {
		t.Fatal("Delete semantics broken")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len = %d after Reset", r.Len())
	}
}

// TestRegistryPerKeyIsolation proves keys are independent sketches: a
// hot key's churn does not contaminate a cold key's distribution.
func TestRegistryPerKeyIsolation(t *testing.T) {
	r, err := NewRegistryUint64(WithK(8), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50_000; i++ {
		r.Update(1, i)    // key 1: uniform 0..50k
		r.Update(2, 1000) // key 2: constant
	}
	q, err := r.Quantile(2, 0.5)
	if err != nil || q != 1000 {
		t.Fatalf("constant key p50 = %d (%v), want 1000", q, err)
	}
	if n := r.Count(2); n != 50_000 {
		t.Fatalf("Count(2) = %d", n)
	}
}

// TestRegistryAccuracy checks the per-key relative-error guarantee holds
// inside the registry exactly as it does for a standalone sketch.
func TestRegistryAccuracy(t *testing.T) {
	const eps = 0.04
	r, err := NewRegistryFloat64(WithEpsilon(eps), WithSeed(3), WithHighRankAccuracy())
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(n)
	for _, v := range perm {
		r.Update("lat", float64(v))
	}
	for _, phi := range []float64{0.5, 0.9, 0.99, 0.999} {
		q, err := r.Quantile("lat", phi)
		if err != nil {
			t.Fatal(err)
		}
		trueRank := q + 1 // values are 0..n-1, so R(q) = q+1 exactly
		wantRank := phi * n
		// HRA guarantee is on n − R(y); allow 3ε slack for the rank→item
		// inversion at the query boundary.
		if diff := math.Abs(trueRank - wantRank); diff > 3*eps*(n-wantRank)+1 {
			t.Errorf("phi=%v: item %v (true rank %v), want rank %v ± %v",
				phi, q, trueRank, wantRank, 3*eps*(n-wantRank)+1)
		}
	}
}

func TestRegistryTTL(t *testing.T) {
	clk := &fakeClock{}
	r, err := NewRegistryFloat64(WithK(4), WithTTL(time.Minute), clk.opt())
	if err != nil {
		t.Fatal(err)
	}
	r.Update("a", 1)
	clk.advance(59 * time.Second)
	if !r.Contains("a") {
		t.Fatal("key expired before TTL")
	}
	r.Update("a", 2) // refresh
	clk.advance(59 * time.Second)
	if r.Count("a") != 2 {
		t.Fatal("refreshed key expired early")
	}
	clk.advance(2 * time.Minute)
	if r.Contains("a") {
		t.Fatal("key visible past TTL")
	}
	if _, err := r.Quantile("a", 0.5); !errors.Is(err, ErrNoKey) {
		t.Fatalf("expired key query: %v, want ErrNoKey", err)
	}
	// The lazy eviction above reclaimed it; a fresh update starts clean.
	r.Update("a", 7)
	if n := r.Count("a"); n != 1 {
		t.Fatalf("restarted key Count = %d, want 1", n)
	}
	// ExpireNow sweeps keys nobody touches.
	for i := 0; i < 100; i++ {
		r.Update(fmt.Sprintf("k%d", i), 1)
	}
	clk.advance(2 * time.Minute)
	if got := r.ExpireNow(); got != 101 { // 100 k-keys + "a"
		t.Fatalf("ExpireNow = %d, want 101", got)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after sweep", r.Len())
	}
	if r.Evictions() < 101 {
		t.Fatalf("Evictions = %d", r.Evictions())
	}
}

func TestRegistryMaxEntries(t *testing.T) {
	r, err := NewRegistryUint64(WithK(4), WithMaxEntries(64), WithShards(4), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10_000; k++ {
		r.Update(k, k)
		r.Update(k, k+1)
	}
	if r.Len() > 64 {
		t.Fatalf("Len = %d exceeds cap 64", r.Len())
	}
	if r.Evictions() < 9000 {
		t.Fatalf("Evictions = %d, churn should have evicted most keys", r.Evictions())
	}
	// Every resident key must still answer correctly.
	seen := 0
	r.Visit(func(key uint64, s *Sketch[uint64]) bool {
		seen++
		if s.Count() != 2 {
			t.Errorf("key %d Count = %d, want 2", key, s.Count())
		}
		return true
	})
	if seen != r.Len() {
		t.Fatalf("Visit saw %d keys, Len = %d", seen, r.Len())
	}
}

func TestRegistryVisit(t *testing.T) {
	r, _ := NewRegistryFloat64(WithK(4))
	for i := 0; i < 50; i++ {
		r.Update(fmt.Sprintf("k%d", i), float64(i))
	}
	got := map[string]uint64{}
	r.Visit(func(key string, s *Sketch[float64]) bool {
		got[key] = s.Count()
		return true
	})
	if len(got) != 50 {
		t.Fatalf("Visit saw %d keys, want 50", len(got))
	}
	for k, n := range got {
		if n != 1 {
			t.Errorf("key %s count %d", k, n)
		}
	}
	calls := 0
	r.Visit(func(string, *Sketch[float64]) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("stopped Visit made %d calls", calls)
	}
}

func TestRegistrySnapshotMatchesLive(t *testing.T) {
	r, _ := NewRegistryFloat64(WithK(8), WithSeed(5))
	for i := 0; i < 5000; i++ {
		r.Update("x", math.Sqrt(float64(i)))
	}
	sn, err := r.Snapshot("x")
	if err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		a, _ := r.Quantile("x", phi)
		b, _ := sn.Quantile(phi)
		if a != b {
			t.Fatalf("phi=%v: live %v != snapshot %v", phi, a, b)
		}
	}
	// The snapshot is decoupled: further updates don't change it.
	n := sn.Count()
	r.Update("x", 1e9)
	if sn.Count() != n {
		t.Fatal("snapshot tracked a later update")
	}
}

func TestRegistryNaNFilter(t *testing.T) {
	r, _ := NewRegistryFloat64(WithK(4))
	r.Update("k", math.NaN())
	if r.Contains("k") {
		t.Fatal("NaN update materialized a key")
	}
	r.UpdateBatch("k", []float64{1, math.NaN(), 3})
	if n := r.Count("k"); n != 2 {
		t.Fatalf("Count = %d after NaN-filtered batch, want 2", n)
	}
	w, _ := NewWindowedRegistryFloat64(WithK(4), WithWindow(2, time.Second))
	w.Update("k", math.NaN())
	if w.Contains("k") {
		t.Fatal("windowed NaN update materialized a key")
	}
	w.UpdateBatch("k", []float64{1, math.NaN()})
	if n := w.Count("k"); n != 1 {
		t.Fatalf("windowed Count = %d, want 1", n)
	}
}

func TestRegistryOptionValidation(t *testing.T) {
	if _, err := NewRegistry[string, float64](nil); err == nil {
		t.Error("nil less accepted")
	}
	if _, err := NewRegistryFloat64(WithTTL(0)); err == nil {
		t.Error("zero TTL accepted")
	}
	if _, err := NewRegistryFloat64(WithTTL(-time.Second)); err == nil {
		t.Error("negative TTL accepted")
	}
	if _, err := NewRegistryFloat64(WithMaxEntries(0)); err == nil {
		t.Error("zero max entries accepted")
	}
	if _, err := NewRegistryFloat64(WithClock(nil)); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewRegistryFloat64(WithWindow(2, time.Second)); err == nil {
		t.Error("plain registry accepted WithWindow")
	}
	if _, err := NewWindowedRegistryFloat64(WithK(4)); err == nil {
		t.Error("windowed registry without WithWindow accepted")
	}
	if _, err := NewWindowedRegistryFloat64(WithWindow(1, time.Second)); err == nil {
		t.Error("single-slot window accepted")
	}
	if _, err := NewWindowedRegistryFloat64(WithWindow(4, 0)); err == nil {
		t.Error("zero slot duration accepted")
	}
	if _, err := NewWindowedRegistry[string, float64](nil, WithWindow(2, time.Second)); err == nil {
		t.Error("windowed nil less accepted")
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines: mixed
// updates, queries, deletes and sweeps across overlapping keys. Run under
// -race this is the registry's data-race proof.
func TestRegistryConcurrent(t *testing.T) {
	clk := &fakeClock{}
	var mu sync.Mutex // fakeClock itself is not concurrency-safe; guard writes
	r, err := NewRegistryFloat64(
		WithK(4), WithShards(8), WithMaxEntries(512), WithTTL(time.Hour),
		WithClock(func() int64 { mu.Lock(); defer mu.Unlock(); return clk.now }))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("k%d", (g*37+i)%300)
				r.Update(key, float64(i))
				switch i % 5 {
				case 0:
					_, _ = r.Quantile(key, 0.9)
				case 1:
					_ = r.Count(key)
				case 2:
					if i%50 == 2 {
						r.Delete(key)
					}
				case 3:
					_ = r.Contains(key)
				case 4:
					if i%100 == 4 {
						mu.Lock()
						clk.now += int64(time.Second)
						mu.Unlock()
						r.ExpireNow()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Len() > 512+8 {
		t.Fatalf("Len = %d exceeds cap", r.Len())
	}
}

// TestRegistryExportDuringWrites races MarshalBinary against writers: the
// export must be internally consistent (decodable) at any interleaving.
func TestRegistryExportDuringWrites(t *testing.T) {
	r, _ := NewRegistryUint64(WithK(4), WithShards(4))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				r.Update(i%100, i)
			}
		}
	}()
	for i := 0; i < 20; i++ {
		blob, err := r.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := UnmarshalRegistryUint64(blob); err != nil {
			t.Fatalf("export %d not decodable: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
