package req

import (
	"math"
	"strings"
	"testing"

	"req/internal/exact"
	"req/internal/rng"
)

func mustFloat64(t testing.TB, opts ...Option) *Float64 {
	t.Helper()
	s, err := NewFloat64(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func permStream(n int, seed uint64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i, v := range r.Perm(n) {
		out[i] = float64(v)
	}
	return out
}

func TestNewDefaults(t *testing.T) {
	s := mustFloat64(t)
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("fresh sketch not empty")
	}
	if s.K() == 0 || s.NumLevels() == 0 {
		t.Fatal("geometry not initialised")
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"eps too big", []Option{WithEpsilon(1)}},
		{"eps zero", []Option{WithEpsilon(0)}},
		{"eps negative", []Option{WithEpsilon(-0.5)}},
		{"delta zero", []Option{WithDelta(0)}},
		{"delta too big", []Option{WithDelta(0.7)}},
		{"k odd", []Option{WithK(7)}},
		{"k small", []Option{WithK(2)}},
		{"known n zero", []Option{WithKnownN(0)}},
		{"nil option", []Option{nil}},
	}
	for _, c := range cases {
		if _, err := NewFloat64(c.opts...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestOptionsAccepted(t *testing.T) {
	if _, err := NewFloat64(
		WithEpsilon(0.02), WithDelta(0.05), WithSeed(7),
		WithKnownN(1_000_000), WithHighRankAccuracy(),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFloat64(WithK(64)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFloat64(WithTheorem2Mode(), WithEpsilon(0.05), WithDelta(1e-9)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFloat64(WithPaperConstants(), WithEpsilon(0.1), WithDelta(0.1)); err != nil {
		t.Fatal(err)
	}
}

func TestNilLess(t *testing.T) {
	if _, err := New[int](nil); err == nil {
		t.Fatal("nil less accepted")
	}
}

func TestEndToEndAccuracy(t *testing.T) {
	const n = 1 << 18
	const eps = 0.05
	s := mustFloat64(t, WithEpsilon(eps), WithDelta(0.01), WithSeed(1))
	s.UpdateAll(permStream(n, 2))
	if s.Count() != n {
		t.Fatalf("count = %d", s.Count())
	}
	for rank := 1; rank <= n; rank *= 2 {
		got := float64(s.Rank(float64(rank - 1)))
		rel := math.Abs(got-float64(rank)) / float64(rank)
		if rel > eps {
			t.Errorf("rank %d: rel error %.4f > eps", rank, rel)
		}
	}
}

func TestHighRankAccuracyTail(t *testing.T) {
	const n = 1 << 18
	s := mustFloat64(t, WithEpsilon(0.01), WithHighRankAccuracy(), WithSeed(3))
	s.UpdateAll(permStream(n, 4))
	// Tail ranks (the paper's p99.99 use case) must be near exact.
	for _, back := range []int{1, 3, 10, 30, 100} {
		y := float64(n - back)
		want := float64(n - back + 1)
		got := float64(s.Rank(y))
		if math.Abs(got-want)/(float64(back)+1) > 0.5 {
			t.Errorf("tail rank at %v: got %v want %v", y, got, want)
		}
	}
}

func TestNaNIgnored(t *testing.T) {
	s := mustFloat64(t)
	s.Update(math.NaN())
	s.UpdateAll([]float64{1, math.NaN(), 2})
	if s.Count() != 2 {
		t.Fatalf("count = %d, want 2 (NaNs skipped)", s.Count())
	}
}

func TestInfinitiesAccepted(t *testing.T) {
	s := mustFloat64(t)
	s.UpdateAll([]float64{math.Inf(1), 0, math.Inf(-1)})
	mn, _ := s.Min()
	mx, _ := s.Max()
	if !math.IsInf(mn, -1) || !math.IsInf(mx, 1) {
		t.Fatal("infinities not ordered as extremes")
	}
	if s.Rank(0) != 2 {
		t.Fatalf("Rank(0) = %d", s.Rank(0))
	}
}

func TestQuantileAndErrors(t *testing.T) {
	s := mustFloat64(t)
	if _, err := s.Quantile(0.5); err != ErrEmpty {
		t.Fatalf("empty quantile error = %v", err)
	}
	s.Update(5)
	if _, err := s.Quantile(2); err != ErrBadRank {
		t.Fatalf("bad rank error = %v", err)
	}
	q, err := s.Quantile(0.5)
	if err != nil || q != 5 {
		t.Fatalf("quantile = %v, %v", q, err)
	}
}

func TestQuantilesBatchAndCDFPMF(t *testing.T) {
	const n = 1 << 16
	s := mustFloat64(t, WithEpsilon(0.05), WithSeed(5))
	s.UpdateAll(permStream(n, 6))
	qs, err := s.Quantiles([]float64{0.25, 0.5, 0.75})
	if err != nil || len(qs) != 3 {
		t.Fatalf("quantiles: %v, %v", qs, err)
	}
	if !(qs[0] <= qs[1] && qs[1] <= qs[2]) {
		t.Fatal("quantiles not monotone")
	}
	cdf, err := s.CDF([]float64{n * 0.5})
	if err != nil || len(cdf) != 2 || cdf[1] != 1 {
		t.Fatalf("cdf: %v, %v", cdf, err)
	}
	pmf, err := s.PMF([]float64{n * 0.5})
	if err != nil || len(pmf) != 2 {
		t.Fatalf("pmf: %v, %v", pmf, err)
	}
	if math.Abs(pmf[0]-0.5) > 0.05 {
		t.Fatalf("pmf[0] = %v", pmf[0])
	}
}

func TestMergePublicAPI(t *testing.T) {
	const n = 1 << 17
	a := mustFloat64(t, WithEpsilon(0.05), WithSeed(7))
	b := mustFloat64(t, WithEpsilon(0.05), WithSeed(8))
	stream := permStream(n, 9)
	for i, v := range stream {
		if i%2 == 0 {
			a.Update(v)
		} else {
			b.Update(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != n {
		t.Fatalf("merged count = %d", a.Count())
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal("nil merge should be no-op")
	}
	oracle := exact.FromValues(stream)
	for rank := 16; rank <= n; rank *= 4 {
		y := oracle.ItemOfRank(uint64(rank))
		got := float64(a.Rank(y))
		if math.Abs(got-float64(rank))/float64(rank) > 0.06 {
			t.Errorf("merged rank %d: got %v", rank, got)
		}
	}
}

func TestMergeIncompatiblePublic(t *testing.T) {
	a := mustFloat64(t, WithEpsilon(0.05))
	b := mustFloat64(t, WithEpsilon(0.1))
	b.Update(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("incompatible merge accepted")
	}
}

func TestGenericStringSketch(t *testing.T) {
	s, err := New(func(a, b string) bool { return a < b }, WithEpsilon(0.1))
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"pear", "apple", "plum", "fig", "apple"}
	s.UpdateAll(words)
	if got := s.Rank("apple"); got != 2 {
		t.Fatalf(`Rank("apple") = %d`, got)
	}
	if got := s.Rank("zzz"); got != 5 {
		t.Fatalf(`Rank("zzz") = %d`, got)
	}
	q, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q == "" {
		t.Fatal("empty median")
	}
}

func TestGenericStructSketch(t *testing.T) {
	type span struct {
		ms float64
		id int
	}
	s, err := New(func(a, b span) bool { return a.ms < b.ms }, WithEpsilon(0.1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	for i := 0; i < 50000; i++ {
		s.Update(span{ms: r.Float64() * 100, id: i})
	}
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med.ms < 40 || med.ms > 60 {
		t.Fatalf("median span %v implausible", med)
	}
}

func TestStringer(t *testing.T) {
	s := mustFloat64(t)
	s.Update(1)
	if got := s.Sketch.String(); !strings.Contains(got, "req.Sketch") {
		t.Fatalf("String() = %q", got)
	}
	if !strings.Contains(s.DebugString(), "REQ sketch") {
		t.Fatal("DebugString missing header")
	}
}

func TestWithKnownNAvoidsGrowth(t *testing.T) {
	const n = 1 << 16
	known := mustFloat64(t, WithEpsilon(0.05), WithKnownN(n), WithSeed(11))
	known.UpdateAll(permStream(n, 12))
	// With a correct bound there must be no N-squaring growth. (Internal
	// stat not exposed publicly; infer from the debug string level shape.)
	if known.Count() != n {
		t.Fatal("count mismatch")
	}
}

func TestReproducibleUnderSeed(t *testing.T) {
	run := func() []float64 {
		s := mustFloat64(t, WithEpsilon(0.05), WithSeed(42))
		s.UpdateAll(permStream(1<<16, 13))
		qs, err := s.Quantiles([]float64{0.1, 0.5, 0.9, 0.99})
		if err != nil {
			t.Fatal(err)
		}
		return qs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-reproducible at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTheorem2ModeEndToEnd(t *testing.T) {
	const n = 1 << 16
	s := mustFloat64(t, WithTheorem2Mode(), WithEpsilon(0.05), WithDelta(1e-12), WithSeed(14))
	s.UpdateAll(permStream(n, 15))
	for rank := 1; rank <= n; rank *= 4 {
		got := float64(s.Rank(float64(rank - 1)))
		if math.Abs(got-float64(rank))/float64(rank) > 0.05 {
			t.Errorf("theorem2 rank %d: %v", rank, got)
		}
	}
}

func TestFixedKModeEndToEnd(t *testing.T) {
	const n = 1 << 16
	s := mustFloat64(t, WithK(50*2), WithSeed(16))
	s.UpdateAll(permStream(n, 17))
	if s.K() != 100 {
		t.Fatalf("K = %d", s.K())
	}
	for rank := 64; rank <= n; rank *= 4 {
		got := float64(s.Rank(float64(rank - 1)))
		if math.Abs(got-float64(rank))/float64(rank) > 0.1 {
			t.Errorf("fixedk rank %d: %v", rank, got)
		}
	}
}

func TestRetainedCoreset(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.05), WithSeed(200))
	const n = 1 << 16
	s.UpdateAll(permStream(n, 201))
	coreset := s.Retained()
	if len(coreset) != s.ItemsRetained() {
		t.Fatalf("coreset size %d != retained %d", len(coreset), s.ItemsRetained())
	}
	var total uint64
	prev := math.Inf(-1)
	for _, wi := range coreset {
		if wi.Item < prev {
			t.Fatal("coreset not ascending")
		}
		prev = wi.Item
		if wi.Weight == 0 {
			t.Fatal("zero-weight entry")
		}
		total += wi.Weight
	}
	if total != s.Count() {
		t.Fatalf("coreset weight %d != n %d", total, s.Count())
	}
	// Rank reconstruction from the coreset must match the sketch.
	run := uint64(0)
	for _, wi := range coreset[:100] {
		run += wi.Weight
		if got := s.Rank(wi.Item); got != run {
			// Duplicate items share ranks; recompute via <=.
			var recount uint64
			for _, o := range coreset {
				if o.Item <= wi.Item {
					recount += o.Weight
				}
			}
			if got != recount {
				t.Fatalf("rank mismatch at %v: %d vs %d", wi.Item, got, recount)
			}
		}
	}
}

func TestResetReusable(t *testing.T) {
	s := mustFloat64(t, WithEpsilon(0.05), WithSeed(210))
	s.UpdateAll(permStream(1<<16, 211))
	if s.Empty() {
		t.Fatal("setup")
	}
	s.Reset()
	if !s.Empty() || s.Count() != 0 || s.ItemsRetained() != 0 {
		t.Fatal("reset did not empty the sketch")
	}
	if _, ok := s.Min(); ok {
		t.Fatal("min survives reset")
	}
	// Reuse after reset must meet the guarantee again.
	s.UpdateAll(permStream(1<<16, 212))
	for rank := 1; rank <= 1<<16; rank *= 8 {
		got := float64(s.Rank(float64(rank - 1)))
		if math.Abs(got-float64(rank))/float64(rank) > 0.05 {
			t.Fatalf("post-reset rank %d: %v", rank, got)
		}
	}
}
