package req

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"req/internal/snapstore"
)

// buildRegistry returns a registry with a varied resident population:
// key sizes from 1 item to a few thousand, mixed distributions.
func buildRegistry(tb testing.TB) *RegistryFloat64 {
	tb.Helper()
	reg, err := NewRegistryFloat64(WithK(8), WithSeed(42), WithShards(4))
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("svc-%02d", i)
		n := 1 << (i % 12) // 1 .. 2048 items
		for j := 0; j < n; j++ {
			reg.Update(key, float64((j*2654435761+i)%100000))
		}
	}
	return reg
}

// assertRegistryMatchesLive checks every live key answers bit-identically
// between its live frozen capture and the restored collection.
func assertRegistryMatchesLive(t *testing.T, reg *RegistryFloat64, rs *RegistrySnapshotFloat64) {
	t.Helper()
	if rs.Len() != reg.Len() {
		t.Fatalf("restored %d keys, live has %d", rs.Len(), reg.Len())
	}
	phis := []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1}
	var keys []string
	reg.Visit(func(key string, s *Sketch[float64]) bool {
		keys = append(keys, key)
		return true
	})
	for _, key := range keys {
		sn, ok := rs.Get(key)
		if !ok {
			t.Fatalf("restored collection missing key %q", key)
		}
		live, err := reg.Snapshot(key)
		if err != nil {
			t.Fatal(err)
		}
		if sn.Count() != live.Count() {
			t.Fatalf("%q: Count %d != live %d", key, sn.Count(), live.Count())
		}
		for _, phi := range phis {
			got, err1 := sn.Quantile(phi)
			want, err2 := live.Quantile(phi)
			if err1 != nil || err2 != nil {
				t.Fatalf("%q phi=%v: %v / %v", key, phi, err1, err2)
			}
			if got != want {
				t.Fatalf("%q phi=%v: restored %v != live %v", key, phi, got, want)
			}
		}
		for _, y := range []float64{-1, 0, 1, 500, 99999, 1e12} {
			if got, want := sn.Rank(y), live.Rank(y); got != want {
				t.Fatalf("%q Rank(%v): restored %d != live %d", key, y, got, want)
			}
		}
	}
}

// TestRegistryRoundTripBytes: export → decode → per-key answers
// bit-identical to the live registry's frozen answers.
func TestRegistryRoundTripBytes(t *testing.T) {
	reg := buildRegistry(t)
	blob, err := reg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := UnmarshalRegistryFloat64(blob)
	if err != nil {
		t.Fatal(err)
	}
	assertRegistryMatchesLive(t, reg, rs)
	// The export is deterministic for an unchanged registry.
	blob2, _ := reg.MarshalBinary()
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-export of an unchanged registry differs")
	}
	// All() covers every key exactly once.
	seen := map[string]bool{}
	for k := range rs.All() {
		if seen[k] {
			t.Fatalf("All yielded %q twice", k)
		}
		seen[k] = true
	}
	if len(seen) != rs.Len() {
		t.Fatalf("All yielded %d keys, want %d", len(seen), rs.Len())
	}
}

// TestRegistryRoundTripStore: export → snapstore save → reopen (the full
// property from the issue) plus generation rotation and torn-newest
// recovery.
func TestRegistryRoundTripStore(t *testing.T) {
	reg := buildRegistry(t)
	dir := t.TempDir() + "/regsnaps"
	gen, err := reg.SaveRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first save produced generation %d", gen)
	}
	rs, err := OpenRegistryFloat64(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Generation() != 1 {
		t.Fatalf("Generation() = %d", rs.Generation())
	}
	assertRegistryMatchesLive(t, reg, rs)

	// Grow the registry, save again: the newest generation wins.
	reg.Update("svc-00", 123456)
	if gen, err = reg.SaveRegistry(dir); err != nil || gen != 2 {
		t.Fatalf("second save: gen=%d err=%v", gen, err)
	}
	rs2, err := OpenRegistryFloat64(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Generation() != 2 {
		t.Fatalf("reopened generation %d, want 2", rs2.Generation())
	}
	assertRegistryMatchesLive(t, reg, rs2)

	// Tear the newest generation: OpenRegistry recovers generation 1, and
	// the damaged file itself reports a torn write.
	path2 := filepath.Join(dir, snapstore.GenName(2))
	img, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path2, img[:len(img)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	rs3, err := OpenRegistryFloat64(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if rs3.Generation() != 1 {
		t.Fatalf("recovered generation %d, want 1", rs3.Generation())
	}
	if _, err := OpenRegistryFileFloat64(path2); !errors.Is(err, ErrTornWrite) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn file error %v must wrap ErrTornWrite and ErrCorrupt", err)
	}
	if _, err := OpenRegistryFloat64(t.TempDir()); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: %v, want ErrNoSnapshot", err)
	}
}

func TestRegistryRoundTripFile(t *testing.T) {
	reg := buildRegistry(t)
	path := t.TempDir() + "/reg.reqsnap"
	if err := reg.WriteRegistryFile(path); err != nil {
		t.Fatal(err)
	}
	rs, err := OpenRegistryFileFloat64(path)
	if err != nil {
		t.Fatal(err)
	}
	assertRegistryMatchesLive(t, reg, rs)
}

func TestRegistryRoundTripUint64(t *testing.T) {
	reg, err := NewRegistryUint64(WithK(8), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 40; key++ {
		for j := uint64(0); j < (key+1)*17; j++ {
			reg.Update(key, j*j)
		}
	}
	blob, _ := reg.MarshalBinary()
	rs, err := UnmarshalRegistryUint64(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != reg.Len() {
		t.Fatalf("restored %d keys, want %d", rs.Len(), reg.Len())
	}
	for key := uint64(0); key < 40; key++ {
		sn, ok := rs.Get(key)
		if !ok {
			t.Fatalf("missing key %d", key)
		}
		live, _ := reg.Snapshot(key)
		if sn.Count() != live.Count() {
			t.Fatalf("key %d: Count %d != %d", key, sn.Count(), live.Count())
		}
		for _, phi := range []float64{0, 0.5, 1} {
			got, _ := sn.Quantile(phi)
			want, _ := live.Quantile(phi)
			if got != want {
				t.Fatalf("key %d phi=%v: %d != %d", key, phi, got, want)
			}
		}
	}
	path := t.TempDir() + "/reg64.reqsnap"
	if err := reg.WriteRegistryFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegistryFileUint64(path); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryEmptyRoundTrip(t *testing.T) {
	reg, err := NewRegistryFloat64(WithK(4))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := reg.MarshalBinary()
	rs, err := UnmarshalRegistryFloat64(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatalf("empty registry decoded to %d keys", rs.Len())
	}
	dir := t.TempDir() + "/empty"
	if _, err := reg.SaveRegistry(dir); err != nil {
		t.Fatal(err)
	}
	rs2, err := OpenRegistryFloat64(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Len() != 0 || rs2.Generation() != 1 {
		t.Fatalf("empty store reopened as %d keys gen %d", rs2.Len(), rs2.Generation())
	}
}

// TestRegistryDecodeRejectsTruncations: every proper prefix of a valid
// blob must fail with ErrCorrupt and never panic.
func TestRegistryDecodeRejectsTruncations(t *testing.T) {
	reg, err := NewRegistryFloat64(WithK(4), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i)
		for j := 0; j <= i*13; j++ {
			reg.Update(key, float64(j))
		}
	}
	blob, _ := reg.MarshalBinary()
	for n := 0; n < len(blob); n++ {
		if _, err := UnmarshalRegistryFloat64(blob[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d/%d: %v, want ErrCorrupt", n, len(blob), err)
		}
	}
}

// TestRegistryDecodeSurvivesBitFlips: flipping any single byte must never
// panic; the header region must always be rejected outright.
func TestRegistryDecodeSurvivesBitFlips(t *testing.T) {
	reg, err := NewRegistryFloat64(WithK(4), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("f%d", i)
		for j := 0; j < 40; j++ {
			reg.Update(key, float64(i*100+j))
		}
	}
	blob, _ := reg.MarshalBinary()
	mut := make([]byte, len(blob))
	for i := 0; i < len(blob); i++ {
		copy(mut, blob)
		mut[i] ^= 0xff
		rs, err := UnmarshalRegistryFloat64(mut)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at %d: %v does not wrap ErrCorrupt", i, err)
			}
			continue
		}
		if i < registryHeaderSize {
			t.Fatalf("flip in header byte %d decoded successfully", i)
		}
		// A payload flip may still decode (e.g. a mutated key name);
		// whatever decodes must stay queryable without panicking.
		for _, sn := range rs.All() {
			_ = sn.Count()
			_, _ = sn.Quantile(0.5)
			_ = sn.Rank(50)
		}
	}
}

// TestRegistryCrossFormatRejection: registry files and single-snapshot
// files (and the two key/item instantiations) reject each other.
func TestRegistryCrossFormatRejection(t *testing.T) {
	dir := t.TempDir()

	reg := buildRegistry(t)
	regPath := dir + "/reg.reqsnap"
	if err := reg.WriteRegistryFile(regPath); err != nil {
		t.Fatal(err)
	}

	s, err := NewFloat64(WithEpsilon(0.1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Update(float64(i))
	}
	snapPath := dir + "/single.reqsnap"
	if err := s.Snapshot().WriteSnapshotFile(snapPath); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenRegistryFileFloat64(snapPath); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("single snapshot through registry opener: %v, want ErrCorrupt", err)
	}
	if _, err := OpenSnapshotFileFloat64(regPath); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("registry file through snapshot opener: %v, want ErrCorrupt", err)
	}
	if _, err := OpenRegistryFileUint64(regPath); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("float64 registry through uint64 opener: %v, want ErrCorrupt", err)
	}

	u, err := NewRegistryUint64(WithK(4))
	if err != nil {
		t.Fatal(err)
	}
	u.Update(7, 7)
	blob, _ := u.MarshalBinary()
	if _, err := UnmarshalRegistryFloat64(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("uint64 blob through float64 decoder: %v, want ErrCorrupt", err)
	}
}

// TestRegistryExportConsistentPerShard: records marshalled under the shard
// lock decode back to exactly the per-key state some interleaving of the
// writer could have produced (counts are whole update-batches, never torn).
func TestRegistryExportConsistentPerShard(t *testing.T) {
	reg, err := NewRegistryFloat64(WithK(4), WithSeed(1), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	const batch = 10
	done := make(chan struct{})
	go func() {
		defer close(done)
		vals := make([]float64, batch)
		for i := 0; i < 300; i++ {
			for j := range vals {
				vals[j] = float64(i*batch + j)
			}
			reg.UpdateBatch(fmt.Sprintf("w%d", i%5), vals)
		}
	}()
	for i := 0; i < 20; i++ {
		blob, _ := reg.MarshalBinary()
		rs, err := UnmarshalRegistryFloat64(blob)
		if err != nil {
			t.Fatalf("export %d: %v", i, err)
		}
		for k, sn := range rs.All() {
			if sn.Count()%batch != 0 {
				t.Fatalf("export %d key %q: count %d is a torn batch", i, k, sn.Count())
			}
		}
	}
	<-done
}

// FuzzDecodeRegistryFloat64 hammers the registry decoder with hostile
// bytes: it must never panic, and anything it accepts must be queryable.
func FuzzDecodeRegistryFloat64(f *testing.F) {
	reg, err := NewRegistryFloat64(WithK(4), WithSeed(3))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("fz%d", i)
		for j := 0; j < 30*(i+1); j++ {
			reg.Update(key, float64(j))
		}
	}
	blob, _ := reg.MarshalBinary()
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:registryHeaderSize])
	f.Add([]byte("RREG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := UnmarshalRegistryFloat64(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		for _, sn := range rs.All() {
			_ = sn.Count()
			_ = sn.Rank(1)
			if !sn.Empty() {
				if _, err := sn.Quantile(0.99); err != nil {
					t.Fatalf("accepted snapshot rejects Quantile: %v", err)
				}
			}
		}
	})
}
