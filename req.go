package req

import (
	"errors"
	"fmt"
	"iter"

	"req/internal/core"
)

// Sketch estimates ranks and quantiles of a stream of items of type T under
// a caller-supplied strict total order, with multiplicative rank error. See
// the package documentation for the guarantee. Not safe for concurrent use.
type Sketch[T any] struct {
	core *core.Sketch[T]
}

// New returns an empty sketch over the strict order less (less(a, b) must
// report whether a orders before b) configured by opts.
func New[T any](less func(a, b T) bool, opts ...Option) (*Sketch[T], error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	c, err := core.New(less, cfg)
	if err != nil {
		return nil, err
	}
	return &Sketch[T]{core: c}, nil
}

// Update inserts one item into the sketch.
func (s *Sketch[T]) Update(item T) {
	s.core.Update(item)
}

// UpdateBatch inserts every item of the slice through the batch ingest
// path: min/max tracking, view invalidation, bound checks, and compaction
// cascades are amortized across the whole batch instead of paid per item.
// Prefer it over per-item Update whenever the values are already in a slice
// (log shipping, columnar scans, windowed aggregation). The slice is only
// read, never retained.
func (s *Sketch[T]) UpdateBatch(items []T) {
	s.core.UpdateBatch(items)
}

// UpdateAll inserts every item of the slice. It is the batch ingest path;
// UpdateAll and UpdateBatch are synonyms.
func (s *Sketch[T]) UpdateAll(items []T) {
	s.core.UpdateBatch(items)
}

// UpdateWeighted inserts item with the given integer weight, equivalent to
// weight repeated Updates but in O(log weight + sketch buffer) work: the
// weight decomposes in binary across the sketch's levels. Weight 0 is a
// no-op. It returns an error only if the total weight would overflow the
// representable stream length (2⁶²).
func (s *Sketch[T]) UpdateWeighted(item T, weight uint64) error {
	return s.core.UpdateWeighted(item, weight)
}

// Merge absorbs other into s, summarising the concatenation of both inputs
// with the paper's full-mergeability guarantee (Theorem 3). The other
// sketch is not modified. Sketches must be built with compatible options
// (same accuracy parameters and rank-accuracy side); merging s with itself
// is an error.
func (s *Sketch[T]) Merge(other *Sketch[T]) error {
	if other == nil {
		return nil
	}
	return s.core.Merge(other.core)
}

// Count returns the total number of items summarised.
func (s *Sketch[T]) Count() uint64 { return s.core.Count() }

// Empty reports whether the sketch has seen no items.
func (s *Sketch[T]) Empty() bool { return s.core.Empty() }

// Min returns the smallest item seen (tracked exactly). ok is false when
// the sketch is empty.
func (s *Sketch[T]) Min() (item T, ok bool) { return s.core.Min() }

// Max returns the largest item seen (tracked exactly). ok is false when the
// sketch is empty.
func (s *Sketch[T]) Max() (item T, ok bool) { return s.core.Max() }

// Rank returns the estimated inclusive rank of y: the number of stream
// items ≤ y. The guarantee is |R̂(y) − R(y)| ≤ ε·R(y) with probability 1−δ
// (for high-rank-accuracy sketches, the guarantee is on n − R(y) instead).
func (s *Sketch[T]) Rank(y T) uint64 { return s.core.Rank(y) }

// RankExclusive returns the estimated exclusive rank of y: the number of
// stream items strictly less than y.
func (s *Sketch[T]) RankExclusive(y T) uint64 { return s.core.RankExclusive(y) }

// NormalizedRank returns Rank(y)/Count() in [0, 1].
func (s *Sketch[T]) NormalizedRank(y T) float64 { return s.core.NormalizedRank(y) }

// Quantile returns the item at normalized rank phi ∈ [0, 1]: the smallest
// retained item whose estimated rank reaches ⌈phi·n⌉. Quantile(0) is the
// exact minimum and Quantile(1) the exact maximum. It returns ErrEmpty on
// an empty sketch and ErrBadRank for phi outside [0, 1].
func (s *Sketch[T]) Quantile(phi float64) (T, error) { return s.core.Quantile(phi) }

// Quantiles returns the items at each normalized rank, sharing one sorted
// pass over the sketch. It allocates its result; hot paths that query
// repeatedly should prefer QuantilesInto with a reused destination.
func (s *Sketch[T]) Quantiles(phis []float64) ([]T, error) { return s.core.Quantiles(phis) }

// QuantilesInto answers every normalized rank in phis against one sorted
// view, writing into dst (grown as needed — pass the previous result back
// in for steady-state allocation-free querying) and returning it with
// length len(phis). Sorted phis are answered by a single forward sweep.
func (s *Sketch[T]) QuantilesInto(dst []T, phis []float64) ([]T, error) {
	return s.core.QuantilesInto(dst, phis)
}

// RankBatch returns the estimated inclusive rank of every probe in ys,
// written into dst (grown as needed) in probe order. The batch is answered
// with one galloping sweep over the sorted view — probes are visited in
// ascending order, so per-probe cost amortizes to O(1) comparisons for
// batches that are dense relative to the retained items. Prefer it over a
// Rank loop whenever the probes are already in a slice.
func (s *Sketch[T]) RankBatch(dst []uint64, ys []T) []uint64 {
	return s.core.RankBatch(dst, ys)
}

// NormalizedRankBatch is RankBatch normalized by Count(): every entry is
// Rank(y)/n in [0, 1] (0 on an empty sketch).
func (s *Sketch[T]) NormalizedRankBatch(dst []float64, ys []T) []float64 {
	return s.core.NormalizedRankBatch(dst, ys)
}

// CDF returns the estimated normalized ranks at each split point (which
// must be ascending); the result has one more entry than splits, the last
// being 1.
func (s *Sketch[T]) CDF(splits []T) ([]float64, error) { return s.core.CDF(splits) }

// CDFInto is CDF writing into dst (grown as needed) and returning it; the
// whole batch is one galloping sweep over the sorted view.
func (s *Sketch[T]) CDFInto(dst []float64, splits []T) ([]float64, error) {
	return s.core.CDFInto(dst, splits)
}

// PMF returns the estimated probability mass of each interval delimited by
// the ascending split points.
func (s *Sketch[T]) PMF(splits []T) ([]float64, error) { return s.core.PMF(splits) }

// PMFInto is PMF writing into dst (grown as needed) and returning it.
func (s *Sketch[T]) PMFInto(dst []float64, splits []T) ([]float64, error) {
	return s.core.PMFInto(dst, splits)
}

// ItemsRetained returns the number of items currently stored — the sketch's
// footprint, O(ε⁻¹·log^1.5(εn)·√log(1/δ)) by Theorem 1.
func (s *Sketch[T]) ItemsRetained() int { return s.core.ItemsRetained() }

// NumLevels returns the number of relative-compactors in the sketch.
func (s *Sketch[T]) NumLevels() int { return s.core.NumLevels() }

// K returns the current section size k of the compaction schedule.
func (s *Sketch[T]) K() int { return s.core.K() }

// WeightedItem pairs a retained item with the weight it carries in the
// sketch's coreset.
type WeightedItem[T any] struct {
	Item   T
	Weight uint64
}

// All iterates the sketch's weighted coreset: every retained item in
// ascending order with the weight it carries. Weights sum to Count()
// exactly. This is the raw material for custom serialization of generic
// item types or for exporting the summary to other systems, and it
// allocates nothing — the iteration walks the sketch's cached sorted view
// in place (building it on first use).
//
// The sketch must not be mutated while the iteration is in progress: the
// view being walked is owned by the sketch and recycled on the next write.
// To iterate a coreset that outlives writes, take a Snapshot and range over
// its All instead.
func (s *Sketch[T]) All() iter.Seq2[T, uint64] {
	return func(yield func(item T, weight uint64) bool) {
		v := s.core.SortedView()
		for i, x := range v.Items() {
			if !yield(x, v.Weight(i)) {
				return
			}
		}
	}
}

// Retained returns the sketch's weighted coreset as a freshly allocated
// slice.
//
// Deprecated: range over All instead, which yields the same (item, weight)
// pairs in the same order without allocating the slice. Retained is kept as
// a thin wrapper for callers that want materialized storage.
func (s *Sketch[T]) Retained() []WeightedItem[T] {
	out := make([]WeightedItem[T], 0, s.ItemsRetained())
	for item, weight := range s.All() {
		out = append(out, WeightedItem[T]{Item: item, Weight: weight})
	}
	return out
}

// Snapshot captures the sketch's current state as an immutable,
// concurrency-safe Snapshot: a deep copy of the frozen coreset plus its
// rank index, answering every query exactly as the live sketch would at
// capture time, forever. It freezes the sketch as a side effect and costs
// one O(retained) copy. Contrast with Freeze, which makes the live sketch
// itself cheap to query but whose effect the next write undoes, and with
// Clone, which copies the full mutable state (levels, RNG) so the copy can
// keep ingesting.
func (s *Sketch[T]) Snapshot() *Snapshot[T] {
	return &Snapshot[T]{f: s.core.FreezeOwned()}
}

// Clone returns a deep copy of the sketch sharing no mutable state with s.
// The clone continues the original's random stream, so clone and original
// behave identically on identical subsequent input. Cloning is the cheap
// path to a frozen queryable snapshot of a live sketch (no serialization
// round-trip involved).
func (s *Sketch[T]) Clone() *Sketch[T] {
	return &Sketch[T]{core: s.core.Clone()}
}

// Freeze materializes the cached sorted view plus its Eytzinger-layout rank
// index, so that subsequent Rank, Quantile, Quantiles, CDF and PMF calls
// are branchless cache-friendly pure reads until the next update or merge.
// Concurrent wrappers use it to answer quantile queries under a shared
// (read) lock. Freezing after a small number of updates repairs the cached
// view incrementally instead of rebuilding it, and both the view and index
// storage are recycled across freezes, so periodic freeze-query cycles are
// allocation-free in steady state.
func (s *Sketch[T]) Freeze() { s.core.Freeze() }

// Frozen reports whether the cached sorted view is currently materialized
// (no update or merge has happened since the last Freeze or sorted query).
func (s *Sketch[T]) Frozen() bool { return s.core.Frozen() }

// Reset empties the sketch in place, keeping its configuration (and
// continuing its random stream). Useful for pooling sketches across
// aggregation windows.
func (s *Sketch[T]) Reset() { s.core.Reset() }

// String returns a short human-readable summary.
func (s *Sketch[T]) String() string {
	return fmt.Sprintf("req.Sketch{n=%d, retained=%d, levels=%d, k=%d}",
		s.Count(), s.ItemsRetained(), s.NumLevels(), s.K())
}

// DebugString renders the internal level structure (buffer occupancies,
// schedule states), in the layout of the paper's Figures 1 and 2.
func (s *Sketch[T]) DebugString() string { return s.core.DebugString() }

// Errors re-exported from the engine.
var (
	// ErrEmpty is returned by quantile queries on an empty sketch.
	ErrEmpty = core.ErrEmpty
	// ErrBadRank is returned for normalized ranks outside [0, 1].
	ErrBadRank = core.ErrBadRank
)

// buildConfig folds opts over a default configuration.
func buildConfig(opts []Option) (core.Config, error) {
	var cfg core.Config
	for _, opt := range opts {
		if opt == nil {
			return cfg, errors.New("req: nil option")
		}
		if err := opt(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}
