package req

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestWindowedRotationAndExpiry(t *testing.T) {
	clk := &fakeClock{}
	// 4 slots × 1s: queries cover the trailing 3–4 seconds.
	w, err := NewWindowedRegistryFloat64(WithK(8), WithSeed(2), WithWindow(4, time.Second), clk.opt())
	if err != nil {
		t.Fatal(err)
	}
	if w.Slots() != 4 || w.SlotDuration() != time.Second || w.WindowDuration() != 4*time.Second {
		t.Fatalf("geometry: %d × %v (window %v)", w.Slots(), w.SlotDuration(), w.WindowDuration())
	}
	// One value per second for 10 seconds: values 0..9 at t=0..9s.
	for i := 0; i < 10; i++ {
		clk.set(time.Duration(i) * time.Second)
		w.Update("k", float64(i))
	}
	// At t=9s the window is epochs 6..9 → values 6,7,8,9.
	if n := w.Count("k"); n != 4 {
		t.Fatalf("Count = %d, want 4", n)
	}
	lo, err := w.Quantile("k", 0)
	if err != nil {
		t.Fatal(err)
	}
	hi, _ := w.Quantile("k", 1)
	if lo != 6 || hi != 9 {
		t.Fatalf("window [%v, %v], want [6, 9]", lo, hi)
	}
	if rank, _ := w.Rank("k", 7); rank != 2 {
		t.Fatalf("Rank(7) = %d, want 2", rank)
	}
	// Advance past the whole window without updates: everything expires
	// out of the query even though the key is still resident.
	clk.set(30 * time.Second)
	if n := w.Count("k"); n != 0 {
		t.Fatalf("Count = %d after window drained, want 0", n)
	}
	if !w.Contains("k") {
		t.Fatal("key should still be resident (no TTL configured)")
	}
	if _, err := w.Quantile("k", 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatalf("drained window: %v, want ErrEmpty", err)
	}
	if _, err := w.Quantile("nope", 0.5); !errors.Is(err, ErrNoKey) {
		t.Fatalf("absent key: %v, want ErrNoKey", err)
	}
}

// TestWindowedMatchesSingleSketch proves the ring-merge path answers like
// one sketch over the same items: while every update fits inside the
// window, the windowed Count is exact and quantiles stay within the
// configured accuracy of a plain sketch fed the same stream.
func TestWindowedMatchesSingleSketch(t *testing.T) {
	clk := &fakeClock{}
	const slots, perEpoch = 8, 5000
	w, err := NewWindowedRegistryFloat64(WithK(32), WithSeed(11), WithWindow(slots, time.Second), clk.opt())
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := NewFloat64(WithK(32), WithSeed(11))
	// Fill slots 0..slots-1 (nothing rotates out: exactly one window).
	v := 0.0
	for ep := 0; ep < slots; ep++ {
		clk.set(time.Duration(ep) * time.Second)
		for i := 0; i < perEpoch; i++ {
			w.Update("k", v)
			plain.Update(v)
			v++
		}
	}
	const n = slots * perEpoch
	if got := w.Count("k"); got != n {
		t.Fatalf("windowed Count = %d, want %d", got, n)
	}
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		wq, err := w.Quantile("k", phi)
		if err != nil {
			t.Fatal(err)
		}
		pq, _ := plain.Quantile(phi)
		// Both are ≈ phi·n with relative rank error; they need not match
		// bit-for-bit (different compaction coins), but both must sit
		// within a loose 5% relative band of the true quantile.
		want := phi * n
		for name, got := range map[string]float64{"windowed": wq, "plain": pq} {
			if diff := got - want; diff > 0.05*want+50 || diff < -0.05*want-50 {
				t.Errorf("phi=%v: %s quantile %v, want ≈ %v", phi, name, got, want)
			}
		}
	}
}

// TestWindowedPartialOverlap drives the ring through many rotations and
// checks the window contents are exactly the trailing slots at each step.
func TestWindowedPartialOverlap(t *testing.T) {
	clk := &fakeClock{}
	const slots = 3
	w, err := NewWindowedRegistryUint64ForTest(clk, slots)
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < 20; ep++ {
		clk.set(time.Duration(ep) * time.Minute)
		w.Update(1, uint64(ep))
		// Window = epochs max(0, ep-slots+1) .. ep, one item each.
		first := ep - slots + 1
		if first < 0 {
			first = 0
		}
		wantN := uint64(ep - first + 1)
		if n := w.Count(1); n != wantN {
			t.Fatalf("ep %d: Count = %d, want %d", ep, n, wantN)
		}
		lo, _ := w.Quantile(1, 0)
		hi, _ := w.Quantile(1, 1)
		if lo != uint64(first) || hi != uint64(ep) {
			t.Fatalf("ep %d: window [%d, %d], want [%d, %d]", ep, lo, hi, first, ep)
		}
	}
}

// NewWindowedRegistryUint64ForTest builds a uint64-keyed uint64 windowed
// registry with an injected clock (minute slots).
func NewWindowedRegistryUint64ForTest(clk *fakeClock, slots int) (*WindowedRegistry[uint64, uint64], error) {
	return NewWindowedRegistry[uint64, uint64](
		func(a, b uint64) bool { return a < b },
		WithK(4), WithWindow(slots, time.Minute), clk.opt())
}

// TestWindowedClockJump: a clock that leaps far ahead must not resurrect
// stale slots whose ring position has lapped.
func TestWindowedClockJump(t *testing.T) {
	clk := &fakeClock{}
	w, _ := NewWindowedRegistryFloat64(WithK(4), WithWindow(4, time.Second), clk.opt())
	clk.set(0)
	w.Update("k", 1)
	// Jump exactly 4 epochs: same ring slot, different epoch. The old
	// value must not be visible.
	clk.set(4 * time.Second)
	w.Update("k", 2)
	if n := w.Count("k"); n != 1 {
		t.Fatalf("Count = %d after lap, want 1", n)
	}
	q, _ := w.Quantile("k", 1)
	if q != 2 {
		t.Fatalf("max = %v after lap, want 2", q)
	}
	// Jump 400 epochs: everything stale.
	clk.set(404 * time.Second)
	if n := w.Count("k"); n != 0 {
		t.Fatalf("Count = %d after long jump, want 0", n)
	}
}

func TestWindowedQuantilesIntoAndBatch(t *testing.T) {
	clk := &fakeClock{}
	w, _ := NewWindowedRegistryFloat64(WithK(16), WithSeed(1), WithWindow(2, time.Hour), clk.opt())
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	w.UpdateBatch("k", vals)
	qs, err := w.QuantilesInto("k", nil, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != 0 || qs[2] != 999 {
		t.Fatalf("QuantilesInto = %v", qs)
	}
	if _, err := w.QuantilesInto("absent", qs, []float64{0.5}); !errors.Is(err, ErrNoKey) {
		t.Fatalf("absent key: %v", err)
	}
}

func TestWindowedTTLAndEviction(t *testing.T) {
	clk := &fakeClock{}
	w, err := NewWindowedRegistryFloat64(
		WithK(4), WithWindow(2, time.Second), WithTTL(time.Minute),
		WithMaxEntries(32), WithShards(2), clk.opt())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		w.Update(fmt.Sprintf("k%d", i), 1)
	}
	if w.Len() > 32 {
		t.Fatalf("Len = %d exceeds cap", w.Len())
	}
	if w.Evictions() == 0 {
		t.Fatal("no evictions under churn")
	}
	clk.advance(2 * time.Minute)
	if expired := w.ExpireNow(); expired == 0 || w.Len() != 0 {
		t.Fatalf("ExpireNow expired %d, left %d residents", expired, w.Len())
	}
	// Recycled entries must come back clean.
	w.Update("fresh", 42)
	if n := w.Count("fresh"); n != 1 {
		t.Fatalf("recycled entry Count = %d, want 1", n)
	}
	q, _ := w.Quantile("fresh", 0.5)
	if q != 42 {
		t.Fatalf("recycled entry p50 = %v, want 42", q)
	}
	if !w.Delete("fresh") || w.Delete("fresh") {
		t.Fatal("Delete semantics broken")
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset left residents")
	}
}

// TestWindowedConcurrent is the windowed registry's -race proof: mixed
// updates, windowed queries and rotation from many goroutines while the
// clock advances.
func TestWindowedConcurrent(t *testing.T) {
	var now int64
	var mu sync.Mutex
	w, err := NewWindowedRegistryFloat64(
		WithK(4), WithShards(4), WithWindow(4, time.Millisecond), WithMaxEntries(256),
		WithClock(func() int64 { mu.Lock(); defer mu.Unlock(); return now }))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", (g+i)%100)
				w.Update(key, float64(i))
				if i%7 == 0 {
					_, _ = w.Quantile(key, 0.99)
				}
				if i%13 == 0 {
					_ = w.Count(key)
				}
				if i%97 == 0 {
					mu.Lock()
					now += int64(time.Millisecond) / 4
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
}
