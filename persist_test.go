package req

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"req/internal/snapstore"
)

// persistScenarios are the sketch shapes the equivalence tests sweep:
// empty, tiny, compacted, merged, HRA, known-N growth, fixed-K.
func persistScenarios(t testing.TB) map[string]*Float64 {
	t.Helper()
	mk := func(opts ...Option) *Float64 {
		s, err := NewFloat64(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	feed := func(s *Float64, n int, stride int) *Float64 {
		for i := 0; i < n; i++ {
			s.Update(float64((i*stride)%7919) / 3.0)
		}
		return s
	}
	empty := mk(WithEpsilon(0.05))
	one := feed(mk(WithEpsilon(0.05)), 1, 1)
	small := feed(mk(WithEpsilon(0.05), WithSeed(7)), 100, 3)
	big := feed(mk(WithEpsilon(0.02), WithSeed(11)), 60000, 7)
	hra := feed(mk(WithEpsilon(0.03), WithHighRankAccuracy(), WithSeed(3)), 40000, 5)
	grown := feed(mk(WithEpsilon(0.04), WithKnownN(1000), WithSeed(5)), 30000, 11)
	fixedK := feed(mk(WithK(64), WithSeed(13)), 20000, 13)
	merged := feed(mk(WithEpsilon(0.02), WithSeed(17)), 10000, 3)
	other := feed(mk(WithEpsilon(0.02), WithSeed(19)), 15000, 9)
	if err := merged.Merge(other); err != nil {
		t.Fatal(err)
	}
	return map[string]*Float64{
		"empty": empty, "one": one, "small": small, "big": big,
		"hra": hra, "grown": grown, "fixedK": fixedK, "merged": merged,
	}
}

// assertSameAnswers checks that two readers answer bit-identically across
// the full query surface.
func assertSameAnswers(t *testing.T, want, got *SnapshotFloat64) {
	t.Helper()
	if want.Count() != got.Count() || want.ItemsRetained() != got.ItemsRetained() {
		t.Fatalf("count/retained: %d/%d vs %d/%d",
			want.Count(), want.ItemsRetained(), got.Count(), got.ItemsRetained())
	}
	wmn, wok := want.Min()
	gmn, gok := got.Min()
	if wok != gok || wmn != gmn {
		t.Fatalf("min: %v,%v vs %v,%v", wmn, wok, gmn, gok)
	}
	wmx, _ := want.Max()
	gmx, _ := got.Max()
	if wmx != gmx {
		t.Fatalf("max: %v vs %v", wmx, gmx)
	}
	if want.Empty() {
		return
	}
	for _, phi := range []float64{0, 0.001, 0.25, 0.5, 0.75, 0.99, 1} {
		wq, werr := want.Quantile(phi)
		gq, gerr := got.Quantile(phi)
		if (werr == nil) != (gerr == nil) || wq != gq {
			t.Fatalf("quantile(%v): %v,%v vs %v,%v", phi, wq, werr, gq, gerr)
		}
	}
	for y := 0.0; y < 2700; y += 33.7 {
		if want.Rank(y) != got.Rank(y) {
			t.Fatalf("rank(%v): %d vs %d", y, want.Rank(y), got.Rank(y))
		}
		if want.RankExclusive(y) != got.RankExclusive(y) {
			t.Fatalf("rankExclusive(%v) differs", y)
		}
	}
	// The coresets themselves must be identical, not just the answers.
	wi, gi := 0, 0
	for item, weight := range want.All() {
		_ = item
		_ = weight
		wi++
	}
	for item, weight := range got.All() {
		_ = item
		_ = weight
		gi++
	}
	if wi != gi {
		t.Fatalf("coreset sizes differ: %d vs %d", wi, gi)
	}
	// Bit-identical serialization is the strongest equivalence: the mapped
	// snapshot re-encodes to exactly the bytes the live one does.
	wb, werr := want.MarshalBinary()
	gb, gerr := got.MarshalBinary()
	if werr != nil || gerr != nil {
		t.Fatalf("marshal: %v / %v", werr, gerr)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatal("mapped snapshot serializes differently from the live snapshot")
	}
}

// TestMappedEquivalence: for every scenario, a snapshot saved and reopened
// from disk (mmap and portable paths, all verify modes) answers
// bit-identically to the live snapshot.
func TestMappedEquivalence(t *testing.T) {
	for name, s := range persistScenarios(t) {
		t.Run(name, func(t *testing.T) {
			live := s.Snapshot()
			dir := t.TempDir() + "/snaps"
			gen, err := s.SaveSnapshot(dir)
			if err != nil {
				t.Fatal(err)
			}
			if gen != 1 {
				t.Fatalf("first generation = %d", gen)
			}
			for _, tc := range []struct {
				name string
				opts []OpenOption
			}{
				{"mmap-checksum", nil},
				{"mmap-full", []OpenOption{WithVerify(VerifyFull)}},
				{"mmap-none", []OpenOption{WithVerify(VerifyNone)}},
				{"nommap-checksum", []OpenOption{WithoutMmap()}},
				{"nommap-full", []OpenOption{WithoutMmap(), WithVerify(VerifyFull)}},
			} {
				m, err := OpenSnapshotFloat64(dir, tc.opts...)
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				if m.Generation() != 1 {
					t.Fatalf("%s: generation %d", tc.name, m.Generation())
				}
				assertSameAnswers(t, live, &m.Snapshot)
				if err := m.Close(); err != nil {
					t.Fatalf("%s: close: %v", tc.name, err)
				}
			}
		})
	}
}

// TestMappedEquivalenceUint64 covers the uint64 instantiation end to end.
func TestMappedEquivalenceUint64(t *testing.T) {
	s, err := NewUint64(WithEpsilon(0.03), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50000; i++ {
		s.Update(i * 2654435761 % 100003)
	}
	live := s.Snapshot()
	dir := t.TempDir() + "/snaps"
	if _, err := s.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	m, err := OpenSnapshotUint64(dir, WithVerify(VerifyFull))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if live.Count() != m.Count() {
		t.Fatalf("count %d vs %d", live.Count(), m.Count())
	}
	for y := uint64(0); y < 100003; y += 997 {
		if live.Rank(y) != m.Rank(y) {
			t.Fatalf("rank(%d) differs", y)
		}
	}
	lb, _ := live.MarshalBinary()
	mb, _ := m.MarshalBinary()
	if !bytes.Equal(lb, mb) {
		t.Fatal("uint64 mapped snapshot serializes differently")
	}
}

// TestGenerationRotation: repeated saves rotate generations; opening
// always serves the newest; old generations are pruned to the keep limit.
func TestGenerationRotation(t *testing.T) {
	s, err := NewFloat64(WithEpsilon(0.05), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/snaps"
	var lastCount uint64
	for round := 1; round <= 5; round++ {
		for i := 0; i < 1000; i++ {
			s.Update(float64(round*1000 + i))
		}
		gen, err := s.SaveSnapshot(dir)
		if err != nil {
			t.Fatal(err)
		}
		if gen != uint64(round) {
			t.Fatalf("round %d wrote generation %d", round, gen)
		}
		lastCount = s.Count()
	}
	m, err := OpenSnapshotFloat64(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation() != 5 || m.Count() != lastCount {
		t.Fatalf("opened generation %d with count %d, want 5 with %d",
			m.Generation(), m.Count(), lastCount)
	}
	m.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d files retained, want 2 (keep limit)", len(entries))
	}
}

// TestRecoveryFromDamagedNewest: damaging the newest generation on disk
// must make OpenSnapshot serve the previous one.
func TestRecoveryFromDamagedNewest(t *testing.T) {
	s, err := NewFloat64(WithEpsilon(0.05), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/snaps"
	for i := 0; i < 500; i++ {
		s.Update(float64(i))
	}
	if _, err := s.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	countAtGen1 := s.Count()
	for i := 0; i < 500; i++ {
		s.Update(float64(i))
	}
	if _, err := s.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	// Truncate generation 2: a torn write that reached the final name.
	path2 := filepath.Join(dir, snapstore.GenName(2))
	img, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path2, img[:len(img)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := OpenSnapshotFloat64(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer m.Close()
	if m.Generation() != 1 || m.Count() != countAtGen1 {
		t.Fatalf("recovered generation %d count %d, want 1 with %d",
			m.Generation(), m.Count(), countAtGen1)
	}

	// The damaged file itself reports a torn write through the req error
	// space: both ErrTornWrite and ErrCorrupt.
	_, err = OpenSnapshotFileFloat64(path2)
	if !errors.Is(err, ErrTornWrite) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn file error %v must wrap ErrTornWrite and ErrCorrupt", err)
	}
}

// TestOpenErrors pins the error taxonomy for missing and mismatched input.
func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenSnapshotFloat64(dir + "/nothing"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing dir: %v, want ErrNoSnapshot", err)
	}
	if _, err := OpenSnapshotFloat64(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: %v, want ErrNoSnapshot", err)
	}

	// Cross-kind open: a float64 snapshot through the uint64 opener.
	s, err := NewFloat64(WithEpsilon(0.1))
	if err != nil {
		t.Fatal(err)
	}
	s.Update(1)
	path := dir + "/f64.reqsnap"
	if err := s.Snapshot().WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshotFileUint64(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("cross-kind open: %v, want ErrCorrupt", err)
	}
	// Right-kind open of the standalone file works.
	m, err := OpenSnapshotFileFloat64(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 1 {
		t.Fatalf("count %d", m.Count())
	}
	m.Close()
}

// TestVerifyFullCatchesHostileStructure: a file whose checksums are valid
// but whose arrays are structurally hostile (its writer lied) passes the
// default open but must be rejected by VerifyFull — and even when it is
// opened, queries must not panic.
func TestVerifyFullCatchesHostileStructure(t *testing.T) {
	s, err := NewFloat64(WithEpsilon(0.05), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		s.Update(float64(i))
	}
	sn := s.Snapshot()
	p := snapshotPayload(sn.f, float64Codec)

	// Swap two interior view items: still within [min, max], so the O(1)
	// open checks cannot see it, and the CRCs are recomputed at write.
	sec := append([]byte(nil), p.Sections[snapstore.SecViewItems]...)
	a := sec[80:88]
	b := sec[160:168]
	var tmp [8]byte
	copy(tmp[:], a)
	copy(a, b)
	copy(b, tmp[:])
	p.Sections[snapstore.SecViewItems] = sec

	path := t.TempDir() + "/hostile.reqsnap"
	if err := snapstore.WriteSnapshotFile(snapstore.OS, path, 1, p); err != nil {
		t.Fatal(err)
	}

	// Checksum-level open accepts (the file is exactly what its writer
	// wrote) and queries stay memory-safe.
	m, err := OpenSnapshotFileFloat64(path)
	if err != nil {
		t.Fatalf("checksum open rejected honest-checksum file: %v", err)
	}
	_ = m.Rank(2500)
	_, _ = m.Quantile(0.5)
	m.Close()

	// VerifyFull must reject it.
	_, err = OpenSnapshotFileFloat64(path, WithVerify(VerifyFull))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyFull: %v, want ErrCorrupt", err)
	}
}

// TestMappedSnapshotZeroCopy asserts the zero-deserialization claim: on a
// platform with mmap and native little-endian order, the mapped snapshot's
// arrays alias the file mapping itself (no heap copy of any section).
func TestMappedSnapshotZeroCopy(t *testing.T) {
	if !snapstore.AliasingOK() {
		t.Skip("big-endian host: open decodes instead of aliasing")
	}
	s, err := NewFloat64(WithEpsilon(0.02), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		s.Update(float64(i))
	}
	dir := t.TempDir() + "/snaps"
	if _, err := s.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	m, err := OpenSnapshotFloat64(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !m.Mapped() {
		t.Skip("platform without mmap support")
	}

	// Steady-state queries on the mapped snapshot allocate nothing.
	var sink uint64
	if n := testing.AllocsPerRun(200, func() {
		sink += m.Rank(25000.5)
		mn, _ := m.Min()
		sink += uint64(mn)
	}); n != 0 {
		t.Fatalf("mapped snapshot query allocates %v per op", n)
	}
	_ = sink
}

// TestOpenAllocsIndependentOfSize asserts O(1)-open: the allocation count
// of open+close does not grow with snapshot size (no per-item work).
func TestOpenAllocsIndependentOfSize(t *testing.T) {
	if !snapstore.AliasingOK() {
		t.Skip("big-endian host decodes sections at open")
	}
	openAllocs := func(n int) float64 {
		s, err := NewFloat64(WithEpsilon(0.02), WithSeed(8))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			s.Update(float64(i))
		}
		dir := t.TempDir() + "/snaps"
		if _, err := s.SaveSnapshot(dir); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			m, err := OpenSnapshotFloat64(dir, WithVerify(VerifyNone))
			if err != nil {
				t.Fatal(err)
			}
			m.Close()
		})
	}
	small := openAllocs(100)
	large := openAllocs(200000)
	if large > small+2 {
		t.Fatalf("open allocations grow with size: %v (100 items) vs %v (200k items)", small, large)
	}
}

// TestMappedSurvivesPruning: a snapshot mapped from a generation that is
// later pruned keeps answering (the inode outlives the unlink).
func TestMappedSurvivesPruning(t *testing.T) {
	s, err := NewFloat64(WithEpsilon(0.05), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/snaps"
	for i := 0; i < 1000; i++ {
		s.Update(float64(i))
	}
	if _, err := s.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	m, err := OpenSnapshotFloat64(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	before := m.Rank(500)

	// Three more saves prune generation 1 off the directory.
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			s.Update(float64(i))
		}
		if _, err := s.SaveSnapshot(dir); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, snapstore.GenName(1))); !os.IsNotExist(err) {
		t.Fatal("generation 1 still on disk; prune did not run")
	}
	if got := m.Rank(500); got != before {
		t.Fatalf("mapped snapshot changed answers after pruning: %d vs %d", got, before)
	}
}

// TestHostileGeometryRejected pins the satellite hardening: decoder inputs
// whose config demands absurd geometry (huge khat, huge K, NaN eps) must
// be rejected with ErrCorrupt before any large allocation, not panic or
// OOM. These were real failure modes: khat flows through geometryFor into
// a float→int conversion and a capacity product.
func TestHostileGeometryRejected(t *testing.T) {
	valid, err := NewFloat64(WithEpsilon(0.1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		valid.Update(float64(i))
	}
	blob, err := valid.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Header layout: magic 4, version/itype/mode/sched/flags 5, eps 8,
	// delta 8, khat 8, K 4.
	const (
		offEps  = 9
		offKHat = 25
		offK    = 33
	)
	put64 := func(b []byte, off int, v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[off+i] = byte(bits >> (8 * i))
		}
	}
	for name, mutate := range map[string]func([]byte){
		"khat-1e15": func(b []byte) { put64(b, offKHat, 1e15) },
		"khat-inf":  func(b []byte) { put64(b, offKHat, math.Inf(1)) },
		"khat-nan":  func(b []byte) { put64(b, offKHat, math.NaN()) },
		"khat-neg":  func(b []byte) { put64(b, offKHat, -1e9) },
		"eps-nan":   func(b []byte) { put64(b, offEps, math.NaN()) },
		"eps-tiny":  func(b []byte) { put64(b, offEps, 1e-300) },
		"delta-nan": func(b []byte) { put64(b, offEps+8, math.NaN()) },
		"khat-1e13": func(b []byte) { put64(b, offKHat, 1e13) },
	} {
		t.Run(name, func(t *testing.T) {
			mut := append([]byte(nil), blob...)
			mutate(mut)
			if _, err := DecodeFloat64(mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("hostile header accepted or mis-classified: %v", err)
			}
		})
	}

	// K is only meaningful in fixed-K mode; an absurd K there must be
	// rejected before it reaches the capacity product.
	t.Run("k-max-fixed", func(t *testing.T) {
		fk, err := NewFloat64(WithK(64), WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			fk.Update(float64(i))
		}
		fkBlob, err := fk.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), fkBlob...)
		mut[offK], mut[offK+1], mut[offK+2], mut[offK+3] = 0xFF, 0xFF, 0xFF, 0x7F
		if _, err := DecodeFloat64(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("hostile K accepted or mis-classified: %v", err)
		}
	})
}

// FuzzOpenSnapshotFile: arbitrary bytes written to a file and opened as a
// snapshot must either open as a queryable snapshot or be rejected with
// the ErrCorrupt family (ErrTornWrite for truncations) — never panic.
func FuzzOpenSnapshotFile(f *testing.F) {
	// Seeds: valid files of both kinds and several shapes, torn prefixes,
	// bit flips in header/sections/footer, cross-kind, junk.
	dir := f.TempDir()
	mkFloat := func(n int, eps float64) []byte {
		s, err := NewFloat64(WithEpsilon(eps), WithSeed(uint64(n)))
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < n; i++ {
			s.Update(float64(i % 101))
		}
		path := filepath.Join(dir, "seed.reqsnap")
		if err := s.Snapshot().WriteSnapshotFile(path); err != nil {
			f.Fatal(err)
		}
		img, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return img
	}
	small := mkFloat(50, 0.1)
	f.Add(small)
	f.Add(mkFloat(0, 0.1))
	f.Add(mkFloat(5000, 0.02))
	u, err := NewUint64(WithEpsilon(0.1))
	if err != nil {
		f.Fatal(err)
	}
	u.Update(42)
	upath := filepath.Join(dir, "u.reqsnap")
	if err := u.Snapshot().WriteSnapshotFile(upath); err != nil {
		f.Fatal(err)
	}
	uimg, err := os.ReadFile(upath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uimg) // cross-kind: uint64 file through the float64 opener
	for _, cut := range []int{0, 1, 63, 4095, 4096, len(small) - 65, len(small) - 1} {
		if cut >= 0 && cut < len(small) {
			f.Add(small[:cut])
		}
	}
	for _, off := range []int{0, 9, 100, 600, 4000, 4100, len(small) - 30} {
		mut := append([]byte(nil), small...)
		mut[off] ^= 0x01
		f.Add(mut)
	}
	f.Add([]byte("REQSLAB1 but not really"))
	f.Add(bytes.Repeat([]byte{0}, 5000))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.reqsnap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		for _, opts := range [][]OpenOption{
			nil,
			{WithVerify(VerifyFull)},
			{WithoutMmap()},
		} {
			m, err := OpenSnapshotFileFloat64(path, opts...)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("rejection outside the ErrCorrupt family: %v", err)
				}
				continue
			}
			// Accepted files must be queryable and self-consistent.
			if m.Count() > 0 {
				if _, err := m.Quantile(0.5); err != nil {
					t.Fatalf("accepted snapshot cannot answer quantile: %v", err)
				}
				var total uint64
				for _, w := range m.All() {
					total += w
				}
				if total != m.Count() {
					t.Fatalf("weights sum to %d, count %d", total, m.Count())
				}
			}
			_ = m.Rank(1)
			m.Close()
		}
	})
}
