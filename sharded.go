package req

import (
	"iter"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"req/internal/core"
)

// Sharded is a concurrent sketch built for write-heavy, multi-writer
// workloads. Instead of funneling every writer through one mutex (the
// ConcurrentFloat64 design), it stripes updates across a GOMAXPROCS-scaled
// set of independent core sketches, each behind its own lock, and answers
// queries from a merged snapshot that is rebuilt lazily when a query
// observes that a shard has changed.
//
// Correctness rests on the paper's full mergeability (Theorem 3, Appendix
// D): a stream split arbitrarily across shards and merged at read time
// carries the same ε relative-error guarantee as a single sketch that saw
// the whole stream, so sharding costs no accuracy.
//
// Writers pick a shard by a striping ticket and fall through to the first
// uncontended shard (try-lock sweep), so concurrent writers almost never
// wait on each other. Queries almost never block writers: a query touches
// the shard locks only when the cached snapshot is stale (epoch mismatch),
// and then holds each shard's lock just long enough to clone it — a writer
// can stall for at most one O(retained-items) shard copy, never for the
// merge or sort, which happen off to the side before the result is
// published through an atomic pointer. Read-heavy phases run entirely on
// the immutable published snapshot.
//
// Queries are point-in-time consistent: every answer is computed from one
// merged snapshot. Under concurrent ingestion a snapshot may trail the
// newest updates by the writes that landed while it was being built; Count
// alone is served from live per-shard counters and may run slightly ahead
// of the snapshot.
type Sharded[T any] struct {
	less   func(a, b T) bool
	shards []*shardOf[T]
	mask   uint64 // len(shards) is a power of two

	// affinity hands each writer back the shard it used last (sync.Pool is
	// per-P, so a goroutine keeps hitting one cache-hot shard); the ticket
	// seeds new affinities round-robin and backs the try-lock slow path.
	affinity sync.Pool
	ticket   atomic.Uint64

	// snap is the published merged snapshot; nil until the first query.
	snap atomic.Pointer[shardedSnapshot[T]]
	// rebuildMu serializes snapshot rebuilds so racing queries do the
	// clone-and-merge work once.
	rebuildMu sync.Mutex
	// stage holds one reusable staging sketch per shard: each epoch
	// refreshes them in place with CopyFrom instead of allocating fresh
	// deep clones under the shard locks, so the per-epoch rebuild cost is
	// dominated by the merge itself. The merged result is still a fresh
	// sketch every epoch — published snapshots are read lock-free by any
	// number of goroutines for an unbounded time, so their storage can
	// never be recycled without reference counting.
	//
	// +req:guardedBy(rebuildMu)
	stage []*core.Sketch[T]
}

// shardOf is one stripe: a plain core sketch behind a mutex, plus lock-free
// mirrors of its mutation count and item count for staleness checks and
// cheap Count queries. The padding keeps the hot per-shard atomics of
// neighbouring shards on distinct cache lines.
type shardOf[T any] struct {
	mu sync.Mutex
	// +req:guardedBy(mu)
	sk *core.Sketch[T]
	// version counts mutations (updates, merges, resets); bumped under mu,
	// read without it by the snapshot staleness check.
	version atomic.Uint64
	// count mirrors sk.Count(); maintained under mu, read without it.
	count atomic.Uint64
	_     [40]byte
}

// shardedSnapshot is an immutable published view: the merged sketch (with
// its sorted view frozen), the public Snapshot wrapping that frozen state
// (shared by every reader of this epoch — Snapshot() hands it out without
// cloning), and the per-shard versions observed before the merge. A
// snapshot is fresh while every shard still has its recorded version.
type shardedSnapshot[T any] struct {
	epochs []uint64
	sk     *core.Sketch[T]
	pub    *Snapshot[T]
}

// shardedSeedStride separates the per-shard random streams; any odd
// constant works, this is the golden-ratio mix used by splitmix64.
const shardedSeedStride = 0x9E3779B97F4A7C15

// NewSharded returns an empty sharded sketch over the strict order less,
// configured by opts. The shard count defaults to the number of CPUs
// (rounded up to a power of two) and can be fixed with WithShards. All
// shards share the configuration; their random streams are decorrelated by
// deriving each shard's seed from the configured one.
func NewSharded[T any](less func(a, b T) bool, opts ...Option) (*Sharded[T], error) {
	s := &Sharded[T]{}
	if err := s.init(less, opts); err != nil {
		return nil, err
	}
	return s, nil
}

// init builds the shard set in place (the containing struct must not be
// copied afterwards; constructors return pointers).
func (s *Sharded[T]) init(less func(a, b T) bool, opts []Option) error {
	cfg, err := buildConfig(opts)
	if err != nil {
		return err
	}
	if err := cfg.Normalize(); err != nil {
		return err
	}
	n := cfg.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n = int(core.CeilPow2(uint64(n)))
	s.less = less
	s.mask = uint64(n - 1)
	s.shards = make([]*shardOf[T], n)
	for i := range s.shards {
		scfg := cfg
		scfg.Seed = cfg.Seed + uint64(i)*shardedSeedStride
		sk, err := core.New(less, scfg)
		if err != nil {
			return err
		}
		s.shards[i] = &shardOf[T]{sk: sk}
	}
	return nil
}

// NumShards returns the number of stripes.
func (s *Sharded[T]) NumShards() int { return len(s.shards) }

// writeShard picks and locks the shard for this write. Fast path: the
// writer's affinity shard (per-P via sync.Pool), which is usually both
// uncontended and cache-hot. If that shard is busy, a try-lock sweep from
// a round-robin ticket finds a free shard; only when every shard is busy
// does the writer block. commitLocked returns the shard to the pool.
//
// +req:locksAcquired(return.mu)
func (s *Sharded[T]) writeShard() *shardOf[T] {
	if v := s.affinity.Get(); v != nil {
		sh := v.(*shardOf[T])
		if sh.mu.TryLock() {
			return sh
		}
	}
	t := s.ticket.Add(1)
	for i := uint64(0); i <= s.mask; i++ {
		sh := s.shards[(t+i)&s.mask]
		if sh.mu.TryLock() {
			return sh
		}
	}
	sh := s.shards[t&s.mask]
	sh.mu.Lock()
	return sh
}

// commitLocked records a mutation on sh, releases its lock, and restores
// the caller's affinity to it.
//
// +req:locksRequired(sh.mu)
// +req:locksReleased(sh.mu)
func (s *Sharded[T]) commitLocked(sh *shardOf[T]) {
	sh.count.Store(sh.sk.Count())
	sh.version.Add(1)
	sh.mu.Unlock()
	s.affinity.Put(sh)
}

// Update inserts one item. Safe for any number of concurrent callers.
func (s *Sharded[T]) Update(x T) {
	sh := s.writeShard()
	sh.sk.Update(x)
	s.commitLocked(sh)
}

// shardedBatchRun bounds one lock hold of the batched ingest path: a batch
// larger than this is fed as a sequence of contiguous runs, each under its
// own shard acquisition. The try-lock sweep in writeShard then spreads a
// huge batch's runs across uncontended stripes instead of pinning one
// shard (and every writer colliding with it) for the whole slice, while
// batches up to the threshold keep the single-acquisition fast path.
const shardedBatchRun = 4096

// UpdateBatch inserts every item of the slice through the core batch
// ingest path (min/max tracking, bound checks, and compaction cascades
// amortized across the batch). Batches up to shardedBatchRun items go into
// a single shard under one lock acquisition; larger batches are split into
// contiguous runs, each ingested under its own acquisition — mergeability
// (Theorem 3) makes the split free, and item order is preserved within
// every run.
func (s *Sharded[T]) UpdateBatch(items []T) {
	for len(items) > 0 {
		run := items
		if len(run) > shardedBatchRun && len(s.shards) > 1 {
			run = run[:shardedBatchRun]
		}
		sh := s.writeShard()
		sh.sk.UpdateBatch(run)
		s.commitLocked(sh)
		items = items[len(run):]
	}
}

// UpdateAll inserts every item of the slice into a single shard under one
// lock acquisition. It is the batch ingest path; UpdateAll and UpdateBatch
// are synonyms.
func (s *Sharded[T]) UpdateAll(items []T) {
	s.UpdateBatch(items)
}

// UpdateWeighted inserts item with the given integer weight; see
// Sketch.UpdateWeighted.
func (s *Sharded[T]) UpdateWeighted(item T, weight uint64) error {
	sh := s.writeShard()
	err := sh.sk.UpdateWeighted(item, weight)
	s.commitLocked(sh)
	return err
}

// Merge absorbs a plain sketch into one shard. The other sketch is not
// modified; it must have been built with compatible options.
func (s *Sharded[T]) Merge(other *Sketch[T]) error {
	if other == nil {
		return nil
	}
	sh := s.writeShard()
	err := sh.sk.Merge(other.core)
	s.commitLocked(sh)
	return err
}

// Count returns the total number of items summarised across all shards,
// from lock-free per-shard counters.
func (s *Sharded[T]) Count() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.count.Load()
	}
	return n
}

// Empty reports whether no shard has seen an item.
func (s *Sharded[T]) Empty() bool { return s.Count() == 0 }

// Reset empties every shard in place and drops the published snapshot and
// the staging sketches (which hold deep copies of the old stream that
// pointer-bearing item types should not keep reachable). Concurrent writers
// may interleave with a Reset shard-by-shard; quiesce writers first if an
// atomic clear is required.
func (s *Sharded[T]) Reset() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.sk.Reset()
		sh.count.Store(0)
		sh.version.Add(1)
		sh.mu.Unlock()
	}
	s.rebuildMu.Lock()
	s.stage = nil
	s.rebuildMu.Unlock()
	s.snap.Store(nil)
}

// fresh reports whether sn still reflects every shard.
func (s *Sharded[T]) fresh(sn *shardedSnapshot[T]) bool {
	for i, sh := range s.shards {
		if sh.version.Load() != sn.epochs[i] {
			return false
		}
	}
	return true
}

// snapshot returns a fresh published snapshot, rebuilding it if any shard
// changed since the last build. The rebuild clones each shard under its
// lock (a read-only operation on the shard apart from the brief lock hold),
// merges the clones privately, freezes the sorted view, and publishes.
func (s *Sharded[T]) snapshot() *shardedSnapshot[T] {
	if sn := s.snap.Load(); sn != nil && s.fresh(sn) {
		return sn
	}
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	if sn := s.snap.Load(); sn != nil && s.fresh(sn) {
		return sn
	}
	// Record epochs before staging: a write that lands mid-build makes this
	// snapshot stale (conservatively), never silently lost.
	epochs := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		epochs[i] = sh.version.Load()
	}
	if s.stage == nil {
		s.stage = make([]*core.Sketch[T], len(s.shards))
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		if s.stage[i] == nil {
			s.stage[i] = sh.sk.Clone()
		} else {
			s.stage[i].CopyFrom(sh.sk)
		}
		sh.mu.Unlock()
	}
	// Merge the staged copies off to the side. The accumulator must be a
	// fresh sketch (it gets published), so the first stage is deep-copied;
	// every later stage is only read by Merge.
	merged := s.stage[0].Clone()
	for _, st := range s.stage[1:] {
		// Cannot fail: every shard shares one normalized config and the
		// staged copies are distinct instances.
		_ = merged.Merge(st)
	}
	// Freeze view + Eytzinger rank index: every query on the published
	// snapshot — single or batch — is a branchless pure read. The public
	// Snapshot aliases the merged sketch's frozen view directly
	// (FreezeShared): the merged sketch is fresh every epoch and never
	// mutated after publication, so no copy is needed.
	sn := &shardedSnapshot[T]{epochs: epochs, sk: merged, pub: &Snapshot[T]{f: merged.FreezeShared()}}
	s.snap.Store(sn)
	return sn
}

// reader returns the current epoch's published immutable reader, rebuilding
// the snapshot first if any shard changed. Every query method delegates
// through it, so the whole query surface is answered by the one frozen
// Snapshot implementation.
func (s *Sharded[T]) reader() *Snapshot[T] { return s.snapshot().pub }

// Min returns the smallest item seen as of the current snapshot. ok is
// false when empty.
func (s *Sharded[T]) Min() (item T, ok bool) { return s.reader().Min() }

// Max returns the largest item seen as of the current snapshot. ok is
// false when empty.
func (s *Sharded[T]) Max() (item T, ok bool) { return s.reader().Max() }

// Rank returns the estimated inclusive rank of y; see Sketch.Rank.
func (s *Sharded[T]) Rank(y T) uint64 { return s.reader().Rank(y) }

// RankExclusive returns the estimated exclusive rank of y.
func (s *Sharded[T]) RankExclusive(y T) uint64 { return s.reader().RankExclusive(y) }

// NormalizedRank returns Rank(y)/Count() in [0, 1], both evaluated on one
// snapshot.
func (s *Sharded[T]) NormalizedRank(y T) float64 { return s.reader().NormalizedRank(y) }

// Quantile returns the item at normalized rank phi; see Sketch.Quantile.
func (s *Sharded[T]) Quantile(phi float64) (T, error) { return s.reader().Quantile(phi) }

// Quantiles returns the items at each normalized rank, all answered from
// one snapshot.
func (s *Sharded[T]) Quantiles(phis []float64) ([]T, error) { return s.reader().Quantiles(phis) }

// CDF returns the estimated normalized ranks at each ascending split point;
// see Sketch.CDF.
func (s *Sharded[T]) CDF(splits []T) ([]float64, error) { return s.reader().CDF(splits) }

// PMF returns the estimated probability mass of each interval delimited by
// the ascending split points; see Sketch.PMF.
func (s *Sharded[T]) PMF(splits []T) ([]float64, error) { return s.reader().PMF(splits) }

// RankBatch answers every probe in ys from one snapshot with a single
// galloping sweep over its frozen view, writing into dst (grown as needed)
// in probe order; see Sketch.RankBatch. This is the cheapest way to scrape
// many thresholds from a sharded sketch: one snapshot check, one sweep.
func (s *Sharded[T]) RankBatch(dst []uint64, ys []T) []uint64 {
	return s.reader().RankBatch(dst, ys)
}

// NormalizedRankBatch is RankBatch normalized by the snapshot's count.
func (s *Sharded[T]) NormalizedRankBatch(dst []float64, ys []T) []float64 {
	return s.reader().NormalizedRankBatch(dst, ys)
}

// QuantilesInto answers every normalized rank in phis from one snapshot,
// writing into dst (grown as needed); see Sketch.QuantilesInto.
func (s *Sharded[T]) QuantilesInto(dst []T, phis []float64) ([]T, error) {
	return s.reader().QuantilesInto(dst, phis)
}

// CDFInto is CDF writing into dst (grown as needed), answered from one
// snapshot; see Sketch.CDFInto.
func (s *Sharded[T]) CDFInto(dst []float64, splits []T) ([]float64, error) {
	return s.reader().CDFInto(dst, splits)
}

// PMFInto is PMF writing into dst (grown as needed), answered from one
// snapshot; see Sketch.PMFInto.
func (s *Sharded[T]) PMFInto(dst []float64, splits []T) ([]float64, error) {
	return s.reader().PMFInto(dst, splits)
}

// ItemsRetained returns the item footprint of the merged snapshot (the
// size a query works against). The live per-shard footprint is at most a
// shard count factor larger before merging compacts it.
func (s *Sharded[T]) ItemsRetained() int { return s.reader().ItemsRetained() }

// All iterates the weighted coreset of the current epoch snapshot: every
// retained item in ascending order with its weight. The snapshot backing
// the iteration is immutable, so the loop runs lock-free and unperturbed by
// concurrent writers (which publish later epochs, never touch this one).
func (s *Sharded[T]) All() iter.Seq2[T, uint64] { return s.reader().All() }

// Snapshot returns the current epoch's immutable, concurrency-safe
// Snapshot summarising everything ingested so far — for lock-free querying,
// coreset serialization, or handing to other goroutines. Between writes
// this is free: every caller receives the same published epoch snapshot,
// no clone is taken.
//
// Before PR 4 this returned a mutable *Sketch[T] deep clone. Callers that
// need mutable state (to keep ingesting or to merge elsewhere) should ship
// the coreset with Snapshot().MarshalBinary (query-only) or use the
// concrete types' MarshalBinary (full sketch state).
func (s *Sharded[T]) Snapshot() *Snapshot[T] { return s.reader() }

// ShardedFloat64 is a Sharded sketch specialised to float64 values: the
// drop-in high-throughput replacement for ConcurrentFloat64. It adds NaN
// filtering and binary serialization.
type ShardedFloat64 struct {
	Sharded[float64]
}

// NewShardedFloat64 returns an empty sharded float64 sketch configured by
// opts.
func NewShardedFloat64(opts ...Option) (*ShardedFloat64, error) {
	s := &ShardedFloat64{}
	if err := s.init(core.LessF64, opts); err != nil {
		return nil, err
	}
	return s, nil
}

// Update inserts one value, ignoring NaNs; ±Inf behave as extreme values.
func (s *ShardedFloat64) Update(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.Sharded.Update(v)
}

// UpdateBatch inserts every value of the slice into a single shard through
// the batch ingest path, skipping NaNs (the slice is copied only if one is
// present).
func (s *ShardedFloat64) UpdateBatch(vs []float64) {
	s.Sharded.UpdateBatch(core.FilterNaN(vs))
}

// UpdateAll inserts every value of the slice into a single shard, skipping
// NaNs. It is the batch ingest path; UpdateAll and UpdateBatch are synonyms.
func (s *ShardedFloat64) UpdateAll(vs []float64) {
	s.UpdateBatch(vs)
}

// Merge absorbs a plain float64 sketch into one shard.
func (s *ShardedFloat64) Merge(other *Float64) error {
	if other == nil {
		return nil
	}
	return s.Sharded.Merge(&other.Sketch)
}

// MarshalBinary serializes the merged current state in the same format as
// Float64.MarshalBinary; decode with DecodeFloat64. It encodes the
// published epoch's merged sketch directly (core.Sketch.Snapshot is a pure
// read of that immutable state), so no deep copy is taken. For a
// query-only encoding, use Snapshot().MarshalBinary.
func (s *ShardedFloat64) MarshalBinary() ([]byte, error) {
	return marshalSnapshot(s.Sharded.snapshot().sk.Snapshot(), float64Codec)
}

// ShardedUint64 is a Sharded sketch specialised to uint64 values, with
// binary serialization.
type ShardedUint64 struct {
	Sharded[uint64]
}

// NewShardedUint64 returns an empty sharded uint64 sketch configured by
// opts.
func NewShardedUint64(opts ...Option) (*ShardedUint64, error) {
	s := &ShardedUint64{}
	if err := s.init(core.LessU64, opts); err != nil {
		return nil, err
	}
	return s, nil
}

// Merge absorbs a plain uint64 sketch into one shard.
func (s *ShardedUint64) Merge(other *Uint64) error {
	if other == nil {
		return nil
	}
	return s.Sharded.Merge(&other.Sketch)
}

// MarshalBinary serializes the merged current state in the same format as
// Uint64.MarshalBinary; decode with DecodeUint64. Like the float64
// variant, it encodes the published epoch's merged state without a deep
// copy; Snapshot().MarshalBinary gives the query-only encoding.
func (s *ShardedUint64) MarshalBinary() ([]byte, error) {
	return marshalSnapshot(s.Sharded.snapshot().sk.Snapshot(), uint64Codec)
}
