package req

import (
	"math"

	"req/internal/core"
)

// Float64 is a sketch specialised to float64 values, the common case for
// measurements such as latencies. It adds NaN filtering and binary
// serialization on top of Sketch[float64]. Not safe for concurrent use.
type Float64 struct {
	Sketch[float64]
}

// NewFloat64 returns an empty float64 sketch configured by opts. Values
// compare by the usual < order (the canonical core.LessF64, which activates
// the monomorphic kernel layer — see "Hardware kernels" in doc.go).
func NewFloat64(opts ...Option) (*Float64, error) {
	s, err := New(core.LessF64, opts...)
	if err != nil {
		return nil, err
	}
	return &Float64{Sketch: *s}, nil
}

// Update inserts one value. NaN values are ignored (they have no place in
// a total order); ±Inf are accepted and behave as extreme values.
func (s *Float64) Update(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.Sketch.Update(v)
}

// UpdateBatch inserts every value of the slice through the batch ingest
// path, skipping NaNs; see Sketch.UpdateBatch. The slice is copied only if
// it contains a NaN.
func (s *Float64) UpdateBatch(vs []float64) {
	s.Sketch.UpdateBatch(core.FilterNaN(vs))
}

// UpdateAll inserts every value of the slice, skipping NaNs. It is the
// batch ingest path; UpdateAll and UpdateBatch are synonyms.
func (s *Float64) UpdateAll(vs []float64) {
	s.UpdateBatch(vs)
}

// The query surface — the full Reader interface, including the batch APIs
// (RankBatch, NormalizedRankBatch, QuantilesInto, CDFInto, PMFInto), the
// All coreset iterator, and Snapshot (returning *SnapshotFloat64) — is
// inherited from the embedded Sketch unchanged. Like Rank, queries do not
// filter NaN probes — a NaN has no defined rank under <, so callers should
// screen probe sets the way FilterNaN screens ingest.

// Clone returns a deep copy of the sketch; see Sketch.Clone.
func (s *Float64) Clone() *Float64 {
	return &Float64{Sketch: *s.Sketch.Clone()}
}

// Merge absorbs other into s; see Sketch.Merge.
func (s *Float64) Merge(other *Float64) error {
	if other == nil {
		return nil
	}
	return s.Sketch.Merge(&other.Sketch)
}
