package req

import (
	"errors"
	"math"
	"testing"

	"req/internal/rng"
)

func TestUint64Basic(t *testing.T) {
	s, err := NewUint64(WithEpsilon(0.05), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	r := rng.New(2)
	for _, v := range r.Perm(n) {
		s.Update(uint64(v))
	}
	if s.Count() != n {
		t.Fatalf("count = %d", s.Count())
	}
	for rank := 1; rank <= n; rank *= 10 {
		got := float64(s.Rank(uint64(rank - 1)))
		if math.Abs(got-float64(rank))/float64(rank) > 0.05 {
			t.Fatalf("rank %d: %v", rank, got)
		}
	}
	mn, _ := s.Min()
	mx, _ := s.Max()
	if mn != 0 || mx != n-1 {
		t.Fatalf("min/max %d/%d", mn, mx)
	}
}

func TestUint64SerdeRoundTrip(t *testing.T) {
	s, err := NewUint64(WithEpsilon(0.05), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for _, v := range r.Perm(80000) {
		s.Update(uint64(v))
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeUint64(blob)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.ItemsRetained() != s.ItemsRetained() {
		t.Fatal("structural mismatch after round trip")
	}
	for y := uint64(0); y < 80000; y += 977 {
		if restored.Rank(y) != s.Rank(y) {
			t.Fatalf("rank mismatch at %d", y)
		}
	}
}

func TestUint64SerdeResume(t *testing.T) {
	s, _ := NewUint64(WithEpsilon(0.1), WithSeed(5))
	for i := uint64(0); i < 50000; i++ {
		s.Update(i)
	}
	blob, _ := s.MarshalBinary()
	restored, err := DecodeUint64(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(50000); i < 80000; i++ {
		s.Update(i)
		restored.Update(i)
	}
	if s.ItemsRetained() != restored.ItemsRetained() {
		t.Fatal("resume diverged")
	}
}

func TestCrossTypeDecodeRejected(t *testing.T) {
	f, _ := NewFloat64(WithEpsilon(0.1))
	f.Update(1)
	blob, _ := f.MarshalBinary()
	if _, err := DecodeUint64(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("float64 blob decoded as uint64: %v", err)
	}
	u, _ := NewUint64(WithEpsilon(0.1))
	u.Update(1)
	ublob, _ := u.MarshalBinary()
	if _, err := DecodeFloat64(ublob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("uint64 blob decoded as float64: %v", err)
	}
}

func TestUint64Merge(t *testing.T) {
	a, _ := NewUint64(WithEpsilon(0.05), WithSeed(6))
	b, _ := NewUint64(WithEpsilon(0.05), WithSeed(7))
	for i := uint64(0); i < 50000; i++ {
		a.Update(i)
		b.Update(50000 + i)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 100000 {
		t.Fatalf("count = %d", a.Count())
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
	got := float64(a.Rank(49999))
	if math.Abs(got-50000)/50000 > 0.05 {
		t.Fatalf("merged Rank = %v", got)
	}
}

func TestPublicWeightedUpdates(t *testing.T) {
	s, _ := NewFloat64(WithEpsilon(0.05), WithSeed(8))
	var total uint64
	for i := 0; i < 2000; i++ {
		w := uint64(i%7 + 1)
		if err := s.Sketch.UpdateWeighted(float64(i), w); err != nil {
			t.Fatal(err)
		}
		total += w
	}
	if s.Count() != total {
		t.Fatalf("count = %d, want %d", s.Count(), total)
	}
	if err := s.Sketch.UpdateWeighted(5, 0); err != nil {
		t.Fatal(err)
	}
	if s.Count() != total {
		t.Fatal("zero weight counted")
	}
}
