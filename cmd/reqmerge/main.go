// Command reqmerge demonstrates the distributed workflow that full
// mergeability (Theorem 3, Appendix D) enables: sketch shards separately,
// persist them as compact binary files, and merge the files in any order
// into one summary of the whole dataset.
//
// Usage:
//
//	reqmerge sketch -out shard1.req < part1.txt     # sketch a shard
//	reqmerge sketch -out shard2.req -demo 500000    # or synthesise one
//	reqmerge merge  -out all.req shard1.req shard2.req
//	reqmerge query  all.req -q 0.5,0.99,0.999
//	reqmerge info   all.req
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"req"
	"req/internal/rng"
	"req/internal/streams"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "sketch":
		err = runSketch(args)
	case "merge":
		err = runMerge(args)
	case "query":
		err = runQuery(args)
	case "info":
		err = runInfo(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "reqmerge %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  reqmerge sketch -out FILE [-eps E] [-hra] [-seed S] [-demo N]   < values
  reqmerge merge  -out FILE IN1 IN2 [IN3 ...]
  reqmerge query  FILE [-q LIST] [-rank LIST]
  reqmerge info   FILE`)
	os.Exit(2)
}

func runSketch(args []string) error {
	fs := flag.NewFlagSet("sketch", flag.ExitOnError)
	out := fs.String("out", "", "output sketch file (required)")
	eps := fs.Float64("eps", 0.01, "relative error target")
	hra := fs.Bool("hra", true, "high-rank accuracy")
	seed := fs.Uint64("seed", 1, "random seed")
	demo := fs.Int("demo", 0, "generate this many synthetic latencies instead of reading stdin")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	opts := []req.Option{req.WithEpsilon(*eps), req.WithSeed(*seed)}
	if *hra {
		opts = append(opts, req.WithHighRankAccuracy())
	}
	sk, err := req.NewFloat64(opts...)
	if err != nil {
		return err
	}
	if *demo > 0 {
		for _, v := range (streams.Latency{}).Generate(*demo, rng.New(*seed)) {
			sk.Update(v)
		}
	} else {
		scanner := bufio.NewScanner(os.Stdin)
		scanner.Buffer(make([]byte, 1<<20), 1<<20)
		for scanner.Scan() {
			text := strings.TrimSpace(scanner.Text())
			if text == "" {
				continue
			}
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				continue
			}
			sk.Update(v)
		}
		if err := scanner.Err(); err != nil {
			return err
		}
	}
	return writeSketch(*out, sk)
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("out", "", "output sketch file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inputs := fs.Args()
	if *out == "" || len(inputs) < 2 {
		return fmt.Errorf("need -out and at least two input files")
	}
	acc, err := readSketch(inputs[0])
	if err != nil {
		return fmt.Errorf("%s: %w", inputs[0], err)
	}
	for _, path := range inputs[1:] {
		next, err := readSketch(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := acc.Merge(next); err != nil {
			return fmt.Errorf("merging %s: %w", path, err)
		}
	}
	if err := writeSketch(*out, acc); err != nil {
		return err
	}
	fmt.Printf("merged %d sketches: n=%d, retained=%d items\n", len(inputs), acc.Count(), acc.ItemsRetained())
	return nil
}

func runQuery(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("need a sketch file")
	}
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	qList := fs.String("q", "0.5,0.9,0.99,0.999", "quantiles to report")
	rankAt := fs.String("rank", "", "values to rank-query")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	sk, err := readSketch(args[0])
	if err != nil {
		return err
	}
	for _, part := range splitList(*qList) {
		phi, err := strconv.ParseFloat(part, 64)
		if err != nil {
			continue
		}
		q, err := sk.Quantile(phi)
		if err != nil {
			return err
		}
		fmt.Printf("q(%g) = %g\n", phi, q)
	}
	for _, part := range splitList(*rankAt) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			continue
		}
		fmt.Printf("rank(%g) = %d\n", v, sk.Rank(v))
	}
	return nil
}

func runInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("need exactly one sketch file")
	}
	sk, err := readSketch(args[0])
	if err != nil {
		return err
	}
	mn, _ := sk.Min()
	mx, _ := sk.Max()
	fmt.Printf("n=%d retained=%d levels=%d k=%d min=%g max=%g\n",
		sk.Count(), sk.ItemsRetained(), sk.NumLevels(), sk.K(), mn, mx)
	fmt.Print(sk.DebugString())
	return nil
}

func writeSketch(path string, sk *req.Float64) error {
	blob, err := sk.MarshalBinary()
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

func readSketch(path string) (*req.Float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return req.DecodeFloat64(blob)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
