// Command reqcli summarises a stream of numbers with a REQ sketch: feed one
// float per line on stdin, get ranks and quantiles back. It is the
// interactive face of the library, in the spirit of the Apache DataSketches
// command-line tools.
//
// Usage:
//
//	seq 1 1000000 | shuf | reqcli -eps 0.01 -hra -q 0.5,0.99,0.999
//	reqcli -rank 250 < latencies.txt        # estimated #values ≤ 250
//	reqcli -demo 1000000                    # built-in latency demo stream
//	reqcli -dump                            # print internal structure
//
// Persistence subcommands:
//
//	reqcli save -dir ./snaps -demo 1000000   # ingest, then save a snapshot generation
//	reqcli save -file snap.reqsnap < data    # ingest, save one standalone file
//	reqcli load -dir ./snaps -q 0.5,0.99     # query the newest valid generation (zero-copy)
//	reqcli load -file snap.reqsnap -rank 250
//	reqcli inspect ./snaps                   # per-generation format/checksum report
//	reqcli inspect snap.reqsnap
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"req"
	"req/internal/rng"
	"req/internal/snapstore"
	"req/internal/streams"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "save":
			saveCmd(os.Args[2:])
			return
		case "load":
			loadCmd(os.Args[2:])
			return
		case "inspect":
			inspectCmd(os.Args[2:])
			return
		}
	}
	var (
		eps      = flag.Float64("eps", 0.01, "relative error target ε")
		delta    = flag.Float64("delta", 0.01, "failure probability δ")
		hra      = flag.Bool("hra", false, "high-rank accuracy (tail monitoring)")
		seed     = flag.Uint64("seed", 1, "random seed")
		qList    = flag.String("q", "0.5,0.9,0.99,0.999", "comma-separated quantiles to report")
		rankAt   = flag.String("rank", "", "comma-separated values to rank-query")
		demo     = flag.Int("demo", 0, "skip stdin; generate this many synthetic latency values")
		dumpFlag = flag.Bool("dump", false, "print the sketch's internal structure")
	)
	flag.Parse()

	opts := []req.Option{req.WithEpsilon(*eps), req.WithDelta(*delta), req.WithSeed(*seed)}
	if *hra {
		opts = append(opts, req.WithHighRankAccuracy())
	}
	sk, err := req.NewFloat64(opts...)
	if err != nil {
		fatal(err)
	}

	ingest(sk, *demo, *seed)

	if sk.Empty() {
		fatal(fmt.Errorf("no input values"))
	}

	mn, _ := sk.Min()
	mx, _ := sk.Max()
	fmt.Printf("n=%d  retained=%d items  levels=%d  min=%g  max=%g\n",
		sk.Count(), sk.ItemsRetained(), sk.NumLevels(), mn, mx)

	answerQueries(sk.Snapshot(), *qList, *rankAt)

	if *dumpFlag {
		fmt.Println()
		fmt.Print(sk.DebugString())
	}
}

// ingest feeds the sketch from the demo generator or stdin.
func ingest(sk *req.Float64, demo int, seed uint64) {
	if demo > 0 {
		sk.UpdateBatch((streams.Latency{}).Generate(demo, rng.New(seed)))
		return
	}
	// Parse into a fixed-size buffer and flush through the batch ingest
	// path: one bound check and compaction cascade per 4096 values
	// instead of per line.
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	batch := make([]float64, 0, 4096)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reqcli: line %d: %v (skipped)\n", line, err)
			continue
		}
		batch = append(batch, v)
		if len(batch) == cap(batch) {
			sk.UpdateBatch(batch)
			batch = batch[:0]
		}
	}
	if err := scanner.Err(); err != nil {
		fatal(err)
	}
	sk.UpdateBatch(batch)
}

// answerQueries prints quantile and rank answers from any snapshot reader.
func answerQueries(sn *req.SnapshotFloat64, qList, rankAt string) {
	if qList != "" {
		fmt.Println("\nquantiles:")
		for _, part := range strings.Split(qList, ",") {
			phi, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reqcli: bad quantile %q (skipped)\n", part)
				continue
			}
			q, err := sn.Quantile(phi)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reqcli: quantile %v: %v\n", phi, err)
				continue
			}
			fmt.Printf("  p%-8s %g\n", trimZeros(phi*100), q)
		}
	}

	if rankAt != "" {
		fmt.Println("\nranks:")
		for _, part := range strings.Split(rankAt, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reqcli: bad value %q (skipped)\n", part)
				continue
			}
			r := sn.Rank(v)
			fmt.Printf("  rank(%g) ≈ %d  (normalized %.6f)\n", v, r, sn.NormalizedRank(v))
		}
	}
}

// saveCmd ingests a stream and durably persists the snapshot.
func saveCmd(args []string) {
	fs := flag.NewFlagSet("reqcli save", flag.ExitOnError)
	var (
		eps  = fs.Float64("eps", 0.01, "relative error target ε")
		hra  = fs.Bool("hra", false, "high-rank accuracy (tail monitoring)")
		seed = fs.Uint64("seed", 1, "random seed")
		demo = fs.Int("demo", 0, "skip stdin; generate this many synthetic latency values")
		dir  = fs.String("dir", "", "snapshot directory (generation rotation)")
		file = fs.String("file", "", "standalone snapshot file path (no rotation)")
	)
	fs.Parse(args)
	if (*dir == "") == (*file == "") {
		fatal(fmt.Errorf("save: exactly one of -dir or -file is required"))
	}
	opts := []req.Option{req.WithEpsilon(*eps), req.WithSeed(*seed)}
	if *hra {
		opts = append(opts, req.WithHighRankAccuracy())
	}
	sk, err := req.NewFloat64(opts...)
	if err != nil {
		fatal(err)
	}
	ingest(sk, *demo, *seed)
	if *dir != "" {
		gen, err := sk.SaveSnapshot(*dir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("saved generation %d: n=%d retained=%d → %s\n",
			gen, sk.Count(), sk.ItemsRetained(), filepath.Join(*dir, snapstore.GenName(gen)))
		return
	}
	if err := sk.Snapshot().WriteSnapshotFile(*file); err != nil {
		fatal(err)
	}
	fmt.Printf("saved: n=%d retained=%d → %s\n", sk.Count(), sk.ItemsRetained(), *file)
}

// loadCmd opens a persisted snapshot zero-copy and answers queries.
func loadCmd(args []string) {
	fs := flag.NewFlagSet("reqcli load", flag.ExitOnError)
	var (
		dir    = fs.String("dir", "", "snapshot directory (opens newest valid generation)")
		file   = fs.String("file", "", "standalone snapshot file path")
		qList  = fs.String("q", "0.5,0.9,0.99,0.999", "comma-separated quantiles to report")
		rankAt = fs.String("rank", "", "comma-separated values to rank-query")
		verify = fs.String("verify", "checksum", "verification level: checksum, full, or none")
	)
	fs.Parse(args)
	if (*dir == "") == (*file == "") {
		fatal(fmt.Errorf("load: exactly one of -dir or -file is required"))
	}
	var mode req.VerifyMode
	switch *verify {
	case "checksum":
		mode = req.VerifyChecksum
	case "full":
		mode = req.VerifyFull
	case "none":
		mode = req.VerifyNone
	default:
		fatal(fmt.Errorf("load: unknown -verify level %q", *verify))
	}
	var (
		m   *req.MappedFloat64
		err error
	)
	if *dir != "" {
		m, err = req.OpenSnapshotFloat64(*dir, req.WithVerify(mode))
	} else {
		m, err = req.OpenSnapshotFileFloat64(*file, req.WithVerify(mode))
	}
	if err != nil {
		fatal(err)
	}
	defer m.Close()
	mn, _ := m.Min()
	mx, _ := m.Max()
	how := "read"
	if m.Mapped() {
		how = "mmap"
	}
	fmt.Printf("generation=%d (%s)  n=%d  retained=%d items  min=%g  max=%g\n",
		m.Generation(), how, m.Count(), m.ItemsRetained(), mn, mx)
	answerQueries(&m.Snapshot, *qList, *rankAt)
}

// inspectCmd prints a format/checksum report for snapshot files or every
// generation in a directory — including damaged files OpenSnapshot rejects.
func inspectCmd(args []string) {
	fs := flag.NewFlagSet("reqcli inspect", flag.ExitOnError)
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		fatal(fmt.Errorf("inspect: at least one snapshot file or directory required"))
	}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			fatal(err)
		}
		if !info.IsDir() {
			inspectOne(p)
			continue
		}
		st := snapstore.NewStore(snapstore.OS, p)
		gens, err := st.Generations()
		if err != nil {
			fatal(err)
		}
		if len(gens) == 0 {
			fmt.Printf("%s: no snapshot generations\n", p)
			continue
		}
		for _, gen := range gens {
			inspectOne(st.PathFor(gen))
		}
	}
}

func inspectOne(path string) {
	rep, err := snapstore.Inspect(snapstore.OS, path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("— %s\n%s", path, rep)
}

func trimZeros(v float64) string {
	s := strconv.FormatFloat(v, 'f', -1, 64)
	return s
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "reqcli: %v\n", err)
	os.Exit(1)
}
