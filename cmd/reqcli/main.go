// Command reqcli summarises a stream of numbers with a REQ sketch: feed one
// float per line on stdin, get ranks and quantiles back. It is the
// interactive face of the library, in the spirit of the Apache DataSketches
// command-line tools.
//
// Usage:
//
//	seq 1 1000000 | shuf | reqcli -eps 0.01 -hra -q 0.5,0.99,0.999
//	reqcli -rank 250 < latencies.txt        # estimated #values ≤ 250
//	reqcli -demo 1000000                    # built-in latency demo stream
//	reqcli -dump                            # print internal structure
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"req"
	"req/internal/rng"
	"req/internal/streams"
)

func main() {
	var (
		eps      = flag.Float64("eps", 0.01, "relative error target ε")
		delta    = flag.Float64("delta", 0.01, "failure probability δ")
		hra      = flag.Bool("hra", false, "high-rank accuracy (tail monitoring)")
		seed     = flag.Uint64("seed", 1, "random seed")
		qList    = flag.String("q", "0.5,0.9,0.99,0.999", "comma-separated quantiles to report")
		rankAt   = flag.String("rank", "", "comma-separated values to rank-query")
		demo     = flag.Int("demo", 0, "skip stdin; generate this many synthetic latency values")
		dumpFlag = flag.Bool("dump", false, "print the sketch's internal structure")
	)
	flag.Parse()

	opts := []req.Option{req.WithEpsilon(*eps), req.WithDelta(*delta), req.WithSeed(*seed)}
	if *hra {
		opts = append(opts, req.WithHighRankAccuracy())
	}
	sk, err := req.NewFloat64(opts...)
	if err != nil {
		fatal(err)
	}

	if *demo > 0 {
		sk.UpdateBatch((streams.Latency{}).Generate(*demo, rng.New(*seed)))
	} else {
		// Parse into a fixed-size buffer and flush through the batch ingest
		// path: one bound check and compaction cascade per 4096 values
		// instead of per line.
		scanner := bufio.NewScanner(os.Stdin)
		scanner.Buffer(make([]byte, 1<<20), 1<<20)
		batch := make([]float64, 0, 4096)
		line := 0
		for scanner.Scan() {
			line++
			text := strings.TrimSpace(scanner.Text())
			if text == "" {
				continue
			}
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reqcli: line %d: %v (skipped)\n", line, err)
				continue
			}
			batch = append(batch, v)
			if len(batch) == cap(batch) {
				sk.UpdateBatch(batch)
				batch = batch[:0]
			}
		}
		if err := scanner.Err(); err != nil {
			fatal(err)
		}
		sk.UpdateBatch(batch)
	}

	if sk.Empty() {
		fatal(fmt.Errorf("no input values"))
	}

	mn, _ := sk.Min()
	mx, _ := sk.Max()
	fmt.Printf("n=%d  retained=%d items  levels=%d  min=%g  max=%g\n",
		sk.Count(), sk.ItemsRetained(), sk.NumLevels(), mn, mx)

	if *qList != "" {
		fmt.Println("\nquantiles:")
		for _, part := range strings.Split(*qList, ",") {
			phi, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reqcli: bad quantile %q (skipped)\n", part)
				continue
			}
			q, err := sk.Quantile(phi)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reqcli: quantile %v: %v\n", phi, err)
				continue
			}
			fmt.Printf("  p%-8s %g\n", trimZeros(phi*100), q)
		}
	}

	if *rankAt != "" {
		fmt.Println("\nranks:")
		for _, part := range strings.Split(*rankAt, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reqcli: bad value %q (skipped)\n", part)
				continue
			}
			r := sk.Rank(v)
			fmt.Printf("  rank(%g) ≈ %d  (normalized %.6f)\n", v, r, sk.NormalizedRank(v))
		}
	}

	if *dumpFlag {
		fmt.Println()
		fmt.Print(sk.DebugString())
	}
}

func trimZeros(v float64) string {
	s := strconv.FormatFloat(v, 'f', -1, 64)
	return s
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "reqcli: %v\n", err)
	os.Exit(1)
}
