// Reqlint is the project's static-analysis gate: the four custom contract
// analyzers (viewlifetime, slabalias, locked, noalloc) plus the stock
// x/tools passes, packaged as a go vet tool.
//
// Two ways to run it:
//
//	go vet -vettool=$(which reqlint) ./...   # as a vet tool (CI does this)
//	go run ./cmd/reqlint ./...               # standalone; re-execs go vet
//
// In vet-tool mode the binary speaks the unitchecker protocol (go vet
// invokes it once per package with a *.cfg file describing the unit). In
// standalone mode it builds nothing itself: it re-executes
// `go vet -vettool=<self> <args>`, so both modes analyze with identical
// configuration and the standalone form needs no go/packages driver.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"req/internal/analysis"
)

func main() {
	if vetToolInvocation(os.Args[1:]) {
		unitchecker.Main(analysis.All()...) // does not return
	}

	// Standalone mode: re-exec through go vet with ourselves as the tool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reqlint: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "reqlint: %v\n", err)
		os.Exit(2)
	}
}

// vetToolInvocation reports whether the arguments look like go vet driving
// the unitchecker protocol: a -V=... version probe, -flags introspection,
// or a package unit config file.
func vetToolInvocation(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V=") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
