// Command reqbench runs the reproduction experiments of DESIGN.md and
// prints their tables and ASCII figures. Each experiment reproduces one
// quantitative claim of "Relative Error Streaming Quantiles" (PODS 2021);
// EXPERIMENTS.md records the outputs.
//
// Usage:
//
//	reqbench                      # run every experiment to stdout
//	reqbench -experiment E4       # run one experiment
//	reqbench -experiment E16      # query-engine modes: mixed read/write
//	                              # (view repair vs rebuild) and batch-query
//	                              # amortization tables
//	reqbench -experiment E17      # windowed registry vs an exact oracle
//	                              # through ring rotations and partial slots
//	reqbench -quick               # reduced scale (seconds instead of minutes)
//	reqbench -registry            # multi-tenant registry workloads: build
//	                              # bytes/key A/B (slab arena vs naive map),
//	                              # hot-key skew, TTL churn, bulk export;
//	                              # JSON report (BENCH_pr9.json records one)
//	reqbench -out results/        # additionally write one .txt per experiment
//	reqbench -list                # list experiment IDs and titles
//	reqbench -cpuprofile cpu.pb   # CPU profile of the run
//	reqbench -memprofile mem.pb   # heap profile at exit (allocation hunting:
//	                              # the steady-state query path should be
//	                              # invisible here)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"req/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID (e.g. E4) or 'all'")
		quick      = flag.Bool("quick", false, "reduced scale for a fast smoke run")
		seed       = flag.Uint64("seed", 1, "master random seed")
		outDir     = flag.String("out", "", "directory for per-experiment .txt reports (optional)")
		list       = flag.Bool("list", false, "list available experiments and exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		multicore  = flag.Bool("multicore", false, "run the contention rig instead of the experiments; writes a JSON scaling report to stdout (or <out>/multicore.json with -out)")
		registry   = flag.Bool("registry", false, "run the multi-tenant registry workloads instead of the experiments; writes a JSON report to stdout (or <out>/registry.json with -out)")
	)
	flag.Parse()
	memProfilePath = *memProfile

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		profileOut = f
		defer stopProfile()
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n     reproduces: %s\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	cfg := harness.Config{Quick: *quick, Seed: *seed}

	if *multicore {
		if err := runJSONRig(*outDir, "multicore.json", cfg, harness.RunMulticore); err != nil {
			fatal(fmt.Errorf("multicore: %w", err))
		}
		writeMemProfile()
		return
	}

	if *registry {
		if err := runJSONRig(*outDir, "registry.json", cfg, harness.RunRegistry); err != nil {
			fatal(fmt.Errorf("registry: %w", err))
		}
		writeMemProfile()
		return
	}

	var experiments []harness.Experiment
	if strings.EqualFold(*experiment, "all") {
		experiments = harness.All()
	} else {
		e, ok := harness.Get(*experiment)
		if !ok {
			stopProfile()
			fmt.Fprintf(os.Stderr, "reqbench: unknown experiment %q (use -list)\n", *experiment)
			os.Exit(2)
		}
		experiments = []harness.Experiment{e}
	}

	for _, e := range experiments {
		var w io.Writer = os.Stdout
		var f *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			var err error
			f, err = os.Create(filepath.Join(*outDir, e.ID+".txt"))
			if err != nil {
				fatal(err)
			}
			w = io.MultiWriter(os.Stdout, f)
		}
		err := harness.RunOne(w, cfg, e)
		if f != nil {
			f.Close()
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
	}
	writeMemProfile()
}

// runJSONRig runs one of the JSON-report rigs to stdout, or to
// <outDir>/<name> when -out is set.
func runJSONRig(outDir, name string, cfg harness.Config, run func(io.Writer, harness.Config) error) error {
	var w io.Writer = os.Stdout
	var f *os.File
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		var err error
		f, err = os.Create(filepath.Join(outDir, name))
		if err != nil {
			return err
		}
		w = f
	}
	err := run(w, cfg)
	if f != nil {
		f.Close()
	}
	return err
}

// profileOut is the open -cpuprofile file, if any; fatal must flush it
// because os.Exit bypasses deferred calls. memProfilePath is the -memprofile
// destination, written after the experiments (or on fatal, so a crashing run
// still leaves a heap picture).
var (
	profileOut     *os.File
	memProfilePath string
)

func stopProfile() {
	if profileOut != nil {
		pprof.StopCPUProfile()
		profileOut.Close()
		profileOut = nil
	}
}

func writeMemProfile() {
	if memProfilePath == "" {
		return
	}
	f, err := os.Create(memProfilePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reqbench: -memprofile: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile shows retained allocations
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "reqbench: -memprofile: %v\n", err)
		os.Exit(1)
	}
	memProfilePath = ""
}

func fatal(err error) {
	stopProfile()
	writeMemProfile()
	fmt.Fprintf(os.Stderr, "reqbench: %v\n", err)
	os.Exit(1)
}
