package req

import "iter"

// Reader is the complete query surface of the package: every container —
// the single-goroutine Sketch[T] (and its Float64/Uint64 specialisations),
// the concurrent wrappers Sharded[T] and ConcurrentFloat64, and the
// immutable Snapshot[T] — satisfies it, so query-side code can be written
// once against Reader and handed any of them.
//
// Writer methods (Update, Merge, Reset, …) are deliberately excluded: the
// package splits the API into writers and readers in the DataSketches
// style, and a Snapshot — the reader you can ship across goroutines or
// processes — has no write half at all.
//
// Implementations differ only in synchronization and staleness, not in
// semantics: a Snapshot answers from one immutable coreset; Sharded
// answers every query from one consistent published epoch snapshot (Count
// runs slightly ahead of it, served by live per-shard counters);
// ConcurrentFloat64 answers under its read lock. The ...Into and ...Batch
// variants write into caller-supplied storage — their dst slices must not
// be shared between concurrent callers even on concurrency-safe readers.
type Reader[T any] interface {
	// Count returns the total number of items summarised.
	Count() uint64
	// Empty reports whether no items have been summarised.
	Empty() bool
	// Min returns the smallest item seen (tracked exactly); ok is false
	// when empty.
	Min() (item T, ok bool)
	// Max returns the largest item seen (tracked exactly); ok is false
	// when empty.
	Max() (item T, ok bool)
	// Rank returns the estimated inclusive rank of y (#items ≤ y).
	Rank(y T) uint64
	// RankExclusive returns the estimated exclusive rank of y (#items < y).
	RankExclusive(y T) uint64
	// NormalizedRank returns Rank(y)/Count() in [0, 1] (0 when empty).
	NormalizedRank(y T) float64
	// RankBatch answers Rank for every probe in ys, writing into dst
	// (grown as needed) in probe order.
	RankBatch(dst []uint64, ys []T) []uint64
	// NormalizedRankBatch is RankBatch normalized by Count().
	NormalizedRankBatch(dst []float64, ys []T) []float64
	// Quantile returns the item at normalized rank phi ∈ [0, 1].
	Quantile(phi float64) (T, error)
	// Quantiles returns the items at each normalized rank.
	Quantiles(phis []float64) ([]T, error)
	// QuantilesInto is Quantiles writing into dst (grown as needed).
	QuantilesInto(dst []T, phis []float64) ([]T, error)
	// CDF returns the estimated normalized ranks at each ascending split
	// point; the result has one more entry than splits, the last being 1.
	CDF(splits []T) ([]float64, error)
	// CDFInto is CDF writing into dst (grown as needed).
	CDFInto(dst []float64, splits []T) ([]float64, error)
	// PMF returns the estimated probability mass of each interval
	// delimited by the ascending split points.
	PMF(splits []T) ([]float64, error)
	// PMFInto is PMF writing into dst (grown as needed).
	PMFInto(dst []float64, splits []T) ([]float64, error)
	// ItemsRetained returns the number of items currently stored.
	ItemsRetained() int
	// All iterates the weighted coreset: every retained item in ascending
	// order with the weight it carries. Weights sum to Count() exactly.
	All() iter.Seq2[T, uint64]
}

// Compile-time proof that every container exposes the full query surface.
// Adding a method to Reader forces every container to grow it; removing one
// from a container breaks the build here, not in a user's code.
var (
	_ Reader[float64] = (*Sketch[float64])(nil)
	_ Reader[float64] = (*Float64)(nil)
	_ Reader[uint64]  = (*Uint64)(nil)
	_ Reader[float64] = (*Sharded[float64])(nil)
	_ Reader[float64] = (*ShardedFloat64)(nil)
	_ Reader[uint64]  = (*ShardedUint64)(nil)
	_ Reader[float64] = (*ConcurrentFloat64)(nil)
	_ Reader[float64] = (*Snapshot[float64])(nil)
	_ Reader[float64] = (*SnapshotFloat64)(nil)
	_ Reader[uint64]  = (*SnapshotUint64)(nil)
)
