package req

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"req/internal/core"
	"req/internal/tenant"
)

// ErrNoKey is returned by keyed queries for a key with no resident sketch
// (never updated, explicitly deleted, or evicted by TTL/capacity pressure).
var ErrNoKey = errors.New("req: no sketch for key")

// Registry is a concurrent keyed collection of sketches: one independent
// Sketch[T] per key, created lazily on the key's first Update, held in a
// sharded arena designed to keep millions of small sketches resident
// cheaply. It is the multi-tenant container — per-user, per-endpoint,
// per-device quantiles — where the systems problem is the population, not
// any single stream.
//
// # Memory model
//
// Entries live in per-shard block arenas (256 entries per block), so a
// million-key registry is a few thousand allocations, not a few million,
// and the per-key sketch storage is PR 5's single contiguous level slab.
// Eviction never frees an entry: the cell goes on the shard's freelist and
// the next created key recycles it — Sketch.Reset keeps the grown slab —
// so steady-state key churn allocates nothing. Shards are split by
// maphash; WithShards fixes the shard count.
//
// # Eviction
//
// WithTTL sets an idle time-to-live: a key untouched (no update, no query)
// for the TTL reads as absent and its storage is reclaimed lazily on
// access, by capacity pressure, or by an explicit ExpireNow sweep.
// WithMaxEntries caps the resident key count (split evenly across shards);
// a creation over a full shard reclaims one resident key chosen by a
// clock-hand second-chance sweep — TTL-expired keys go first, recently
// untouched keys next. WithClock injects the nanosecond clock (tests use
// synthetic time); the default is the wall clock.
//
// All methods are safe for concurrent use; per-key operations take only
// the owning shard's lock.
type Registry[K comparable, T any] struct {
	m    *tenant.Map[K, regEntry[T]]
	less func(a, b T) bool
	cfg  core.Config
	now  func() int64
	// pairs pools the batched-ingest scratch (*pairScratch[K, T]); a
	// pointer so the typed wrappers can embed Registry by value.
	pairs *sync.Pool
}

// regEntry is the arena payload: the per-key sketch, embedded by value so
// that a registry entry is exactly one sketch plus cell bookkeeping.
type regEntry[T any] struct {
	sk core.Sketch[T]
}

// NewRegistry returns an empty registry over the strict order less,
// configured by opts. Sketch-shaping options (WithEpsilon, WithK,
// WithHighRankAccuracy, …) configure every per-key sketch identically;
// WithShards, WithTTL, WithMaxEntries and WithClock configure the registry
// itself. Per-key sketches derive distinct deterministic seeds from
// WithSeed's base (splitmix-spread by creation sequence), so two
// registries fed identically are identically sized but per-key streams
// stay independent.
func NewRegistry[K comparable, T any](less func(a, b T) bool, opts ...Option) (*Registry[K, T], error) {
	if less == nil {
		return nil, errors.New("req: nil less function")
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if cfg.WindowSlots > 0 {
		return nil, errors.New("req: WithWindow configures a WindowedRegistry, not a Registry")
	}
	r := &Registry[K, T]{less: less, cfg: cfg, now: registryClock(cfg), pairs: new(sync.Pool)}
	r.m = tenant.NewMap[K, regEntry[T]](tenantConfig(cfg),
		func(e *regEntry[T], seq uint64) {
			// Init cannot fail: cfg was validated above and less is non-nil.
			_ = e.sk.Init(less, seedCfg(cfg, seq))
		},
		func(e *regEntry[T]) { e.sk.Reset() },
	)
	return r, nil
}

// tenantConfig maps the registry knobs of a core config onto the tenant
// map's sizing.
func tenantConfig(cfg core.Config) tenant.Config {
	return tenant.Config{Shards: cfg.Shards, MaxEntries: cfg.MaxEntries, TTL: cfg.TTLNanos}
}

// registryClock resolves the registry's nanosecond clock: WithClock's
// func, else the wall clock.
func registryClock(cfg core.Config) func() int64 {
	if cfg.Now != nil {
		return cfg.Now
	}
	return func() int64 { return time.Now().UnixNano() }
}

// seedCfg derives the per-key sketch config for allocation sequence seq:
// the shared template with a splitmix-spread seed, so per-key compaction
// coins are independent streams even under the default zero base seed.
func seedCfg(cfg core.Config, seq uint64) core.Config {
	cfg.Seed ^= (seq + 1) * 0x9e3779b97f4a7c15
	return cfg
}

// Update inserts one item into key's sketch, creating the sketch on the
// key's first update (or recycling an evicted entry's storage). This is
// the only call that materializes a key.
func (r *Registry[K, T]) Update(key K, item T) {
	now := r.now()
	sh := r.m.Lock(key)
	e, _ := r.m.GetOrCreate(sh, key, now)
	e.sk.Update(item)
	sh.Unlock()
}

// UpdateBatch inserts every item of the slice into key's sketch through
// the batch ingest path (see Sketch.UpdateBatch), creating the sketch if
// absent. The slice is only read, never retained.
func (r *Registry[K, T]) UpdateBatch(key K, items []T) {
	if len(items) == 0 {
		return
	}
	now := r.now()
	sh := r.m.Lock(key)
	e, _ := r.m.GetOrCreate(sh, key, now)
	e.sk.UpdateBatch(items)
	sh.Unlock()
}

// lockGet locks key's shard and returns its live entry, or nil (shard
// still locked) when the key is absent or expired.
//
// +req:locksAcquired(return1.mu)
func (r *Registry[K, T]) lockGet(key K) (*tenant.Shard[K, regEntry[T]], *regEntry[T]) {
	sh := r.m.Lock(key)
	return sh, r.m.Get(sh, key, r.now())
}

// Count returns the number of items key's sketch has summarised, 0 if the
// key is absent.
func (r *Registry[K, T]) Count(key K) uint64 {
	sh, e := r.lockGet(key)
	defer sh.Unlock()
	if e == nil {
		return 0
	}
	return e.sk.Count()
}

// Contains reports whether key has a resident, non-expired sketch, without
// refreshing its TTL.
func (r *Registry[K, T]) Contains(key K) bool {
	now := r.now()
	sh := r.m.Lock(key)
	defer sh.Unlock()
	return r.m.Peek(sh, key, now) != nil
}

// Quantile returns the item at normalized rank phi of key's sketch; see
// Sketch.Quantile. It returns ErrNoKey when the key is absent. Querying
// refreshes the key's TTL. Repeated quantile queries against a key whose
// sketch sees interleaved updates stay allocation-free in steady state:
// the sorted view is repaired or rebuilt into recycled storage.
func (r *Registry[K, T]) Quantile(key K, phi float64) (T, error) {
	sh, e := r.lockGet(key)
	defer sh.Unlock()
	if e == nil {
		var zero T
		return zero, ErrNoKey
	}
	return e.sk.Quantile(phi)
}

// QuantilesInto answers every normalized rank in phis against key's
// sketch, writing into dst (grown as needed) and returning it; see
// Sketch.QuantilesInto. It returns ErrNoKey when the key is absent.
func (r *Registry[K, T]) QuantilesInto(key K, dst []T, phis []float64) ([]T, error) {
	sh, e := r.lockGet(key)
	defer sh.Unlock()
	if e == nil {
		return dst, ErrNoKey
	}
	return e.sk.QuantilesInto(dst, phis)
}

// Rank returns the estimated inclusive rank of y in key's sketch; see
// Sketch.Rank. It returns ErrNoKey when the key is absent.
func (r *Registry[K, T]) Rank(key K, y T) (uint64, error) {
	sh, e := r.lockGet(key)
	defer sh.Unlock()
	if e == nil {
		return 0, ErrNoKey
	}
	return e.sk.Rank(y), nil
}

// Snapshot captures key's sketch as an immutable, concurrency-safe
// Snapshot (see Sketch.Snapshot), or ErrNoKey when the key is absent. The
// copy is taken under the shard lock; the snapshot is then queryable
// without any locking.
func (r *Registry[K, T]) Snapshot(key K) (*Snapshot[T], error) {
	sh, e := r.lockGet(key)
	defer sh.Unlock()
	if e == nil {
		return nil, ErrNoKey
	}
	return &Snapshot[T]{f: e.sk.FreezeOwned()}, nil
}

// Delete removes key's sketch, recycling its storage. It reports whether
// the key was resident.
func (r *Registry[K, T]) Delete(key K) bool {
	sh := r.m.Lock(key)
	defer sh.Unlock()
	return r.m.Delete(sh, key)
}

// Len returns the number of resident keys. Keys past their TTL but not
// yet swept still count; ExpireNow makes the count exact.
func (r *Registry[K, T]) Len() int { return r.m.Len() }

// Evictions returns the total number of entries reclaimed so far — TTL
// expiry, capacity pressure, and explicit Deletes all count.
func (r *Registry[K, T]) Evictions() uint64 { return r.m.Evictions() }

// ExpireNow eagerly sweeps every shard and reclaims every TTL-expired
// key, returning how many it evicted. Without WithTTL it is a no-op.
// Lazy expiry makes the sweep optional; it exists for callers that want
// Len and memory occupancy to track the live population promptly.
func (r *Registry[K, T]) ExpireNow() int { return r.m.ExpireNow(r.now()) }

// Reset drops every key and returns the arenas to the garbage collector.
// It is a teardown, not an eviction: storage is not recycled.
func (r *Registry[K, T]) Reset() { r.m.Reset() }

// NumShards returns the registry's shard count.
func (r *Registry[K, T]) NumShards() int { return r.m.NumShards() }

// Visit calls fn for every resident, non-expired key with a borrowed
// Sketch[T] facade over the key's live sketch, walking shard by shard in
// arena order and holding each shard's lock across its calls. fn must not
// retain the sketch pointer past its return and must not call back into
// the registry. Returning false stops the walk. Visits do not refresh
// TTLs, so a bulk export does not perturb eviction. The walk allocates
// only the one facade it reuses across calls — this is the allocation-lean
// iteration underneath bulk snapshot export.
func (r *Registry[K, T]) Visit(fn func(key K, s *Sketch[T]) bool) {
	now := r.now()
	var facade Sketch[T]
	r.m.Visit(now, func(key K, e *regEntry[T]) bool {
		facade.core = &e.sk
		return fn(key, &facade)
	})
}

// String returns a short human-readable summary.
func (r *Registry[K, T]) String() string {
	return fmt.Sprintf("req.Registry{keys=%d, shards=%d}", r.Len(), r.NumShards())
}

// RegistryFloat64 is a registry of float64 sketches keyed by string — the
// per-endpoint / per-tenant latency shape. It adds NaN filtering on the
// ingest path (NaN has no place in a total order) and is the registry
// variant with binary persistence: see SaveRegistry and
// OpenRegistryFloat64.
type RegistryFloat64 struct {
	Registry[string, float64]
}

// NewRegistryFloat64 returns an empty string-keyed float64 registry
// configured by opts. Values compare by the usual < order (the canonical
// core.LessF64, activating the monomorphic kernel layer).
func NewRegistryFloat64(opts ...Option) (*RegistryFloat64, error) {
	r, err := NewRegistry[string, float64](core.LessF64, opts...)
	if err != nil {
		return nil, err
	}
	return &RegistryFloat64{Registry: *r}, nil
}

// Update inserts one value into key's sketch. NaN values are ignored.
func (r *RegistryFloat64) Update(key string, v float64) {
	if v != v { // NaN
		return
	}
	r.Registry.Update(key, v)
}

// UpdateBatch inserts every value of the slice into key's sketch,
// skipping NaNs; the slice is copied only if it contains a NaN.
func (r *RegistryFloat64) UpdateBatch(key string, vs []float64) {
	r.Registry.UpdateBatch(key, core.FilterNaN(vs))
}

// RegistryUint64 is a registry of uint64 sketches keyed by uint64 — the
// per-user-ID counter-distribution shape. It is the second registry
// variant with binary persistence: see SaveRegistry and
// OpenRegistryUint64.
type RegistryUint64 struct {
	Registry[uint64, uint64]
}

// NewRegistryUint64 returns an empty uint64-keyed uint64 registry
// configured by opts. Values compare by the usual < order (the canonical
// core.LessU64).
func NewRegistryUint64(opts ...Option) (*RegistryUint64, error) {
	r, err := NewRegistry[uint64, uint64](core.LessU64, opts...)
	if err != nil {
		return nil, err
	}
	return &RegistryUint64{Registry: *r}, nil
}
