package gk

import (
	"math"
	"testing"

	"req/internal/exact"
	"req/internal/rng"
)

func feed(s *Sketch, n int, seed uint64) []float64 {
	r := rng.New(seed)
	vals := make([]float64, n)
	for i, v := range r.Perm(n) {
		vals[i] = float64(v)
	}
	for _, v := range vals {
		s.Update(v)
	}
	return vals
}

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, -0.5, 1, 2} {
		if _, err := New(eps); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
	if _, err := New(0.01); err != nil {
		t.Fatal(err)
	}
}

func TestEmpty(t *testing.T) {
	s, _ := New(0.01)
	if s.N() != 0 || s.Rank(1) != 0 {
		t.Fatal("empty sketch misbehaves")
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Fatal("quantile on empty accepted")
	}
}

func TestExactTinyStream(t *testing.T) {
	s, _ := New(0.05)
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Update(v)
	}
	for q := 1; q <= 5; q++ {
		if got := s.Rank(float64(q)); got != uint64(q) {
			t.Fatalf("Rank(%d) = %d", q, got)
		}
	}
}

func TestAdditiveErrorBound(t *testing.T) {
	// GK's guarantee is deterministic: |err| ≤ εn always.
	const n = 1 << 17
	const eps = 0.01
	s, _ := New(eps)
	feed(s, n, 1)
	for q := 1; q <= n; q += n / 64 {
		got := float64(s.Rank(float64(q - 1)))
		if math.Abs(got-float64(q)) > eps*n+1 {
			t.Fatalf("rank %d: estimate %v breaks deterministic bound εn=%v", q, got, eps*n)
		}
	}
}

func TestAdditiveErrorBoundSortedInputs(t *testing.T) {
	const n = 100000
	const eps = 0.02
	for name, gen := range map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(n - i) },
	} {
		s, _ := New(eps)
		for i := 0; i < n; i++ {
			s.Update(gen(i))
		}
		for q := 1; q <= n; q += n / 32 {
			got := float64(s.Rank(float64(q)))
			want := float64(q)
			if name == "descending" {
				want = float64(q)
			}
			if math.Abs(got-want) > eps*n+1 {
				t.Fatalf("%s rank %d: estimate %v", name, q, got)
			}
		}
	}
}

func TestSpaceSublinear(t *testing.T) {
	const eps = 0.01
	s, _ := New(eps)
	feed(s, 1<<18, 2)
	// O(ε⁻¹·log(εn)) ≈ 100·log2(2621) ≈ 1140; allow generous constant.
	if s.ItemsRetained() > 20000 {
		t.Fatalf("GK stores %d tuples, expected O(1/eps log(eps n))", s.ItemsRetained())
	}
	if s.ItemsRetained() < 10 {
		t.Fatalf("GK stores suspiciously few tuples: %d", s.ItemsRetained())
	}
}

func TestMinMaxExact(t *testing.T) {
	s, _ := New(0.02)
	vals := feed(s, 50000, 3)
	mn, mx := vals[0], vals[0]
	for _, v := range vals {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	gotMin, _ := s.Min()
	gotMax, _ := s.Max()
	if gotMin != mn || gotMax != mx {
		t.Fatalf("min/max = %v/%v, want %v/%v", gotMin, gotMax, mn, mx)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	const n = 100000
	const eps = 0.01
	s, _ := New(eps)
	vals := feed(s, n, 4)
	oracle := exact.FromValues(vals)
	for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		got, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		trueRank := float64(oracle.Rank(got))
		if math.Abs(trueRank-phi*n) > 2*eps*n {
			t.Errorf("phi=%v: quantile %v has true rank %v (want %v±%v)", phi, got, trueRank, phi*n, 2*eps*n)
		}
	}
}

func TestQuantileRejectsBad(t *testing.T) {
	s, _ := New(0.1)
	s.Update(1)
	for _, phi := range []float64{-1, 2, math.NaN()} {
		if _, err := s.Quantile(phi); err == nil {
			t.Errorf("Quantile(%v) accepted", phi)
		}
	}
}

func TestRankBelowAboveRange(t *testing.T) {
	s, _ := New(0.05)
	feed(s, 10000, 5)
	if s.Rank(-5) != 0 {
		t.Fatal("rank below min not 0")
	}
	if s.Rank(1e12) != 10000 {
		t.Fatal("rank above max not n")
	}
}

func TestNaNIgnored(t *testing.T) {
	s, _ := New(0.1)
	s.Update(math.NaN())
	if s.N() != 0 {
		t.Fatal("NaN counted")
	}
}

func TestInvariantGD(t *testing.T) {
	// The GK invariant: g_i + Δ_i ≤ ⌊2εn⌋ for every tuple (allowing the
	// boundary tuples their exact-rank status).
	const eps = 0.02
	s, _ := New(eps)
	feed(s, 100000, 6)
	s.flush()
	thr := s.threshold()
	for i, tp := range s.tuples {
		if tp.g+tp.d > thr+1 {
			t.Fatalf("tuple %d: g+Δ = %d > 2εn = %d", i, tp.g+tp.d, thr)
		}
	}
}

func TestGSumEqualsN(t *testing.T) {
	s, _ := New(0.02)
	feed(s, 77777, 7)
	s.flush()
	var g uint64
	for _, tp := range s.tuples {
		g += tp.g
	}
	if g != s.N() {
		t.Fatalf("Σg = %d != n = %d", g, s.N())
	}
}

func TestDuplicates(t *testing.T) {
	s, _ := New(0.05)
	const n = 30000
	for i := 0; i < n; i++ {
		s.Update(42)
	}
	if got := s.Rank(42); got != n {
		t.Fatalf("Rank(42) = %d", got)
	}
	if got := s.Rank(41); got != 0 {
		t.Fatalf("Rank(41) = %d", got)
	}
}

func TestRankMonotone(t *testing.T) {
	s, _ := New(0.02)
	feed(s, 50000, 8)
	prev := uint64(0)
	for y := -10.0; y < 50010; y += 487 {
		got := s.Rank(y)
		if got < prev {
			t.Fatalf("rank decreased at %v: %d < %d", y, got, prev)
		}
		prev = got
	}
}
