// Package gk implements the Greenwald–Khanna deterministic quantile summary
// ("Space-Efficient Online Computation of Quantile Summaries", SIGMOD 2001)
// for float64 streams.
//
// GK guarantees |R̂(y) − R(y)| ≤ εn deterministically in O(ε⁻¹·log(εn))
// space — the best known deterministic additive-error bound, and the
// deterministic additive baseline in the experiment harness. Like KLL its
// guarantee is additive, so its relative error at tail ranks diverges; the
// REQ paper's Section 1 comparison is reproduced by experiment E4.
//
// The summary is the classic tuple list (vᵢ, gᵢ, Δᵢ): vᵢ ascending, gᵢ the
// increment of minimum rank over the previous tuple, Δᵢ the extra rank
// uncertainty, with the invariant gᵢ + Δᵢ ≤ ⌊2εn⌋. Inserts are batched:
// values are buffered up to ⌈1/(2ε)⌉, sorted, merged into the list in one
// linear pass (per-item list insertion would be quadratic — this is the
// standard production optimisation), then a right-to-left COMPRESS pass
// merges tuples while the invariant allows.
package gk

import (
	"errors"
	"math"
	"sort"
)

// Sketch is a GK quantile summary. Not safe for concurrent use.
type Sketch struct {
	eps    float64
	n      uint64
	tuples []tuple
	buf    []float64
	bufCap int
}

type tuple struct {
	v float64
	g uint64
	d uint64
}

// New returns an empty summary with additive error parameter eps ∈ (0, 1).
func New(eps float64) (*Sketch, error) {
	if eps <= 0 || eps >= 1 {
		return nil, errors.New("gk: eps out of (0, 1)")
	}
	bufCap := int(math.Ceil(1 / (2 * eps)))
	if bufCap < 1 {
		bufCap = 1
	}
	return &Sketch{eps: eps, bufCap: bufCap, buf: make([]float64, 0, bufCap)}, nil
}

// Epsilon returns the error parameter.
func (s *Sketch) Epsilon() float64 { return s.eps }

// N returns the number of items summarised.
func (s *Sketch) N() uint64 { return uint64(len(s.buf)) + s.n }

// ItemsRetained returns the number of stored tuples plus buffered values.
func (s *Sketch) ItemsRetained() int { return len(s.tuples) + len(s.buf) }

// Update inserts one value. NaN is ignored.
func (s *Sketch) Update(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.buf = append(s.buf, v)
	if len(s.buf) >= s.bufCap {
		s.flush()
	}
}

// threshold returns ⌊2εn⌋, the invariant bound at the current n.
func (s *Sketch) threshold() uint64 {
	return uint64(2 * s.eps * float64(s.n))
}

// flush merges the buffered batch into the tuple list and compresses.
func (s *Sketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	oldMin, oldMax := math.Inf(1), math.Inf(-1)
	if len(s.tuples) > 0 {
		oldMin = s.tuples[0].v
		oldMax = s.tuples[len(s.tuples)-1].v
	}
	merged := make([]tuple, 0, len(s.tuples)+len(s.buf))
	ti := 0
	for _, v := range s.buf {
		for ti < len(s.tuples) && s.tuples[ti].v <= v {
			merged = append(merged, s.tuples[ti])
			ti++
		}
		s.n++
		var d uint64
		// A value inserted strictly inside the summarised range carries
		// Δ = ⌊2εn⌋ (the loose standard setting); new extremes have exactly
		// known rank at insertion time and carry Δ = 0.
		if v > oldMin && v < oldMax {
			d = s.threshold()
			if d > 0 {
				d--
			}
		}
		merged = append(merged, tuple{v: v, g: 1, d: d})
	}
	merged = append(merged, s.tuples[ti:]...)
	s.tuples = merged
	s.buf = s.buf[:0]
	s.compress()
}

// compress performs the paper's COMPRESS in one right-to-left pass: tuple i
// is merged into its successor while g_i + g_{i+1} + Δ_{i+1} ≤ ⌊2εn⌋. The
// first and last tuples (exact min and max) are never merged away.
func (s *Sketch) compress() {
	if len(s.tuples) < 3 {
		return
	}
	thr := s.threshold()
	out := make([]tuple, 0, len(s.tuples))
	out = append(out, s.tuples[len(s.tuples)-1])
	for i := len(s.tuples) - 2; i >= 1; i-- {
		cur := s.tuples[i]
		top := &out[len(out)-1]
		if cur.g+top.g+top.d <= thr {
			top.g += cur.g
		} else {
			out = append(out, cur)
		}
	}
	out = append(out, s.tuples[0])
	// Reverse into ascending order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	s.tuples = out
}

// Rank returns the estimated inclusive rank of y: the midpoint of the rank
// bounds the summary proves for y.
func (s *Sketch) Rank(y float64) uint64 {
	s.flush()
	if len(s.tuples) == 0 {
		return 0
	}
	if y < s.tuples[0].v {
		return 0
	}
	var rmin uint64
	for i := range s.tuples {
		if s.tuples[i].v > y {
			// y lies in [v_{i-1}, v_i): rank(y) ∈ [rmin, rmin+g_i+Δ_i−1].
			spread := s.tuples[i].g + s.tuples[i].d
			if spread > 0 {
				spread--
			}
			return rmin + spread/2
		}
		rmin += s.tuples[i].g
	}
	return s.n // y ≥ max
}

// Quantile returns the estimated φ-quantile, φ ∈ [0, 1].
func (s *Sketch) Quantile(phi float64) (float64, error) {
	s.flush()
	if s.n == 0 {
		return 0, errors.New("gk: empty sketch")
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return 0, errors.New("gk: rank out of [0, 1]")
	}
	target := uint64(math.Ceil(phi * float64(s.n)))
	if target == 0 {
		target = 1
	}
	slack := s.threshold() / 2
	var rmin uint64
	for i := range s.tuples {
		rmin += s.tuples[i].g
		rmax := rmin + s.tuples[i].d
		if rmax >= target && target <= rmin+slack {
			return s.tuples[i].v, nil
		}
		if rmin >= target+slack {
			return s.tuples[i].v, nil
		}
	}
	return s.tuples[len(s.tuples)-1].v, nil
}

// Min returns the exact minimum. ok is false when empty.
func (s *Sketch) Min() (float64, bool) {
	s.flush()
	if len(s.tuples) == 0 {
		return 0, false
	}
	return s.tuples[0].v, true
}

// Max returns the exact maximum. ok is false when empty.
func (s *Sketch) Max() (float64, bool) {
	s.flush()
	if len(s.tuples) == 0 {
		return 0, false
	}
	return s.tuples[len(s.tuples)-1].v, true
}
