// Package rng provides a small, fast, deterministic pseudo-random number
// source used by the sketches in this repository.
//
// The REQ sketch needs randomness only to choose between the even- and
// odd-indexed items of each compaction (one fair coin per compaction).
// Reproducibility of experiments requires that this randomness be seedable
// and that its full state be observable, so sketches can be serialized and
// resumed deterministically. The standard library's math/rand (v1) sources
// are not designed for state capture, so this package implements splitmix64,
// a tiny, well-studied 64-bit generator with a single word of state.
//
// Splitmix64 reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom
// Number Generators", OOPSLA 2014. The constants below are the standard ones
// used by the public-domain reference implementation.
package rng

import "math"

// golden is 2^64 / phi, the splitmix64 state increment.
const golden = 0x9e3779b97f4a7c15

// Source is a deterministic pseudo-random source. The zero value is a valid
// source seeded with 0. Source is not safe for concurrent use.
type Source struct {
	state uint64

	// Coin-bit buffer: compactions consume single bits, so one Uint64 call
	// yields 64 coins. bits holds unconsumed bits, nbits how many remain.
	bits  uint64
	nbits uint
}

// New returns a Source seeded with seed. Distinct seeds yield independent-
// looking streams; the same seed always yields the same stream.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Seed resets the source to the deterministic stream for seed, discarding
// any buffered coin bits.
func (s *Source) Seed(seed uint64) {
	s.state = seed
	s.bits = 0
	s.nbits = 0
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Coin returns a fair boolean coin flip. Bits are drawn from an internal
// buffer so that 64 consecutive coins cost a single Uint64 evaluation.
func (s *Source) Coin() bool {
	if s.nbits == 0 {
		s.bits = s.Uint64()
		s.nbits = 64
	}
	b := s.bits&1 == 1
	s.bits >>= 1
	s.nbits--
	return b
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method. It is used by workload generators only; it does not
// need to be fast.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(q)/q)
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		x := s.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	for {
		x := s.Uint64()
		hi, lo := mul64(x, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	mid := t&mask + aLo*bHi
	hi = aHi*bHi + t>>32 + mid>>32
	lo = a * b
	return hi, lo
}

// Split derives a child source whose stream is independent-looking from the
// parent's continued stream. Splitting advances the parent.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ golden)
}

// Perm returns a uniformly random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p uniformly at random (Fisher–Yates).
func (s *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleFloat64s permutes p uniformly at random (Fisher–Yates).
func (s *Source) ShuffleFloat64s(p []float64) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// State captures the full generator state, including buffered coin bits, so
// a sketch can be serialized and later resumed bit-for-bit.
type State struct {
	Word  uint64
	Bits  uint64
	NBits uint8
}

// State returns the current state of the source.
func (s *Source) State() State {
	return State{Word: s.state, Bits: s.bits, NBits: uint8(s.nbits)}
}

// Restore replaces the source's state with st.
func (s *Source) Restore(st State) {
	s.state = st.Word
	s.bits = st.Bits
	s.nbits = uint(st.NBits)
}
