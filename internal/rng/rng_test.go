package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different seeds agree on %d/64 draws", same)
	}
}

func TestSeedResets(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after reseed, draw %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	// Must not panic and must produce varying output.
	x, y := s.Uint64(), s.Uint64()
	if x == y {
		t.Fatalf("zero-value source produced identical consecutive draws %d", x)
	}
}

func TestCoinBalance(t *testing.T) {
	s := New(99)
	const n = 100000
	heads := 0
	for i := 0; i < n; i++ {
		if s.Coin() {
			heads++
		}
	}
	// Binomial(n, 1/2): stddev = sqrt(n)/2 ≈ 158. Allow 6 sigma.
	dev := math.Abs(float64(heads) - n/2)
	if dev > 6*math.Sqrt(n)/2 {
		t.Fatalf("coin heavily biased: %d heads of %d", heads, n)
	}
}

func TestCoinBufferConsistentWithState(t *testing.T) {
	s := New(5)
	// Consume an odd number of coins so the buffer is mid-word.
	for i := 0; i < 13; i++ {
		s.Coin()
	}
	st := s.State()
	rest := make([]bool, 200)
	for i := range rest {
		rest[i] = s.Coin()
	}
	var r Source
	r.Restore(st)
	for i := range rest {
		if got := r.Coin(); got != rest[i] {
			t.Fatalf("restored source diverged at coin %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(8)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(21)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(31)
	for _, n := range []uint64{1, 2, 5, 1 << 40} {
		for i := 0; i < 500; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestMul64MatchesBigArithmetic(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via decomposition into 32-bit halves computed independently.
		aLo, aHi := a&0xffffffff, a>>32
		bLo, bHi := b&0xffffffff, b>>32
		// lo 64 bits of product must equal a*b with wraparound.
		if lo != a*b {
			return false
		}
		// Recompute hi with full carries.
		c := (aLo*bLo)>>32 + (aHi*bLo)&0xffffffff + (aLo*bHi)&0xffffffff
		wantHi := aHi*bHi + (aHi*bLo)>>32 + (aLo*bHi)>>32 + c>>32
		return hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(6)
	child := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and child streams agree on %d/64 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(6).Split()
	b := New(6).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split children diverged at %d", i)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleFloat64sPreservesMultiset(t *testing.T) {
	s := New(23)
	orig := []float64{1, 2, 2, 3, 5, 8, 13}
	got := append([]float64(nil), orig...)
	s.ShuffleFloat64s(got)
	sum := func(xs []float64) float64 {
		t := 0.0
		for _, x := range xs {
			t += x
		}
		return t
	}
	if sum(got) != sum(orig) || len(got) != len(orig) {
		t.Fatalf("shuffle changed contents: %v", got)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(29)
	const n = 5
	const trials = 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("first element %d appeared %d times, want ~%v", i, c, want)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := New(101)
	for i := 0; i < 37; i++ {
		s.Coin()
	}
	st := s.State()
	var r Source
	r.Restore(st)
	if r.State() != st {
		t.Fatalf("state round trip mismatch: %+v vs %+v", r.State(), st)
	}
}

func TestUint64NoShortCycles(t *testing.T) {
	s := New(13)
	seen := map[uint64]int{}
	for i := 0; i < 100000; i++ {
		v := s.Uint64()
		if j, ok := seen[v]; ok {
			t.Fatalf("value repeated at steps %d and %d", j, i)
		}
		seen[v] = i
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkCoin(b *testing.B) {
	s := New(1)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = s.Coin()
	}
	_ = sink
}
