package analysis_test

import (
	"os/exec"
	"testing"

	"req/internal/analysis/internal/atest"
)

// TestRepoClean asserts the contract CI enforces: the full reqlint suite —
// custom contract analyzers plus the stock passes — reports nothing on the
// repository itself.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("vets the whole repository; skipped in -short mode")
	}
	tool := atest.Tool(t)
	root := atest.ModuleRoot(t)

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("reqlint reported diagnostics on the repo:\n%s", out)
	}
}
