// Package atest runs analyzer golden tests without the analysistest
// package (whose go/packages driver is not part of the toolchain's vendored
// x/tools subset). It drives the real delivery vehicle instead: the
// reqlint binary is built once per test run and executed through
// `go vet -vettool -json` over a self-contained module under the
// analyzer's testdata/src directory, and the JSON diagnostics are compared
// against analysistest-style `// want "regexp"` comments.
//
// Testing through go vet exercises exactly the path CI uses — the
// unitchecker protocol, fact serialization between packages, and flag
// selection — rather than an in-process approximation.
package atest

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	toolPath  string
	buildErr  error
)

// Tool builds cmd/reqlint once per test binary and returns its path.
func Tool(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			buildErr = err
			return
		}
		bin := filepath.Join(os.TempDir(), fmt.Sprintf("reqlint-test-%d", os.Getpid()))
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/reqlint")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building reqlint: %v\n%s", err, out)
			return
		}
		toolPath = bin
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return toolPath
}

// ModuleRoot returns the enclosing module's root directory (the repo root
// when run from any package's test).
func ModuleRoot(t *testing.T) string {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// moduleRoot locates the enclosing module's root directory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// diagnostic is one reported finding, as parsed from go vet -json.
type diagnostic struct {
	file    string // base name
	line    int
	message string
}

// Run vets the module at testdata/src with only the named analyzer enabled
// and checks its diagnostics against the `// want "regexp"` comments in the
// module's .go files. Wants and findings must match one-to-one per
// (file, line); each want regexp must match the finding's message.
func Run(t *testing.T, analyzer string) {
	t.Helper()
	tool := Tool(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-vettool="+tool, "-json", "-"+analyzer, "./...")
	cmd.Dir = dir
	// The testdata module must not inherit the parent module's vendor mode.
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	if err != nil {
		// go vet exits nonzero when diagnostics are reported; only a
		// malformed run (no parseable JSON at all) is a test infrastructure
		// failure, detected below.
		_ = err
	}

	got, perr := parseVetJSON(string(out))
	if perr != nil {
		t.Fatalf("parsing go vet -json output: %v\nfull output:\n%s", perr, out)
	}

	want, werr := collectWants(dir)
	if werr != nil {
		t.Fatal(werr)
	}

	// Index findings by file:line.
	type key struct {
		file string
		line int
	}
	gotAt := make(map[key][]string)
	for _, d := range got {
		k := key{d.file, d.line}
		gotAt[k] = append(gotAt[k], d.message)
	}

	matched := make(map[key]bool)
	for _, w := range want {
		k := key{w.file, w.line}
		msgs := gotAt[k]
		re, rerr := regexp.Compile(w.pattern)
		if rerr != nil {
			t.Errorf("%s:%d: bad want regexp %q: %v", w.file, w.line, w.pattern, rerr)
			continue
		}
		found := false
		for _, m := range msgs {
			if re.MatchString(m) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: want diagnostic matching %q, got %v", w.file, w.line, w.pattern, msgs)
			continue
		}
		matched[k] = true
	}
	for k, msgs := range gotAt {
		if !matched[k] {
			t.Errorf("%s:%d: unexpected diagnostic(s): %v", k.file, k.line, msgs)
		}
	}
}

// parseVetJSON extracts diagnostics from go vet -json output: one
// pretty-printed JSON object per package, separated by '#'-prefixed comment
// lines, mapping package path -> analyzer -> []{posn, message}.
func parseVetJSON(out string) ([]diagnostic, error) {
	var diags []diagnostic
	var chunk strings.Builder
	flush := func() error {
		s := strings.TrimSpace(chunk.String())
		chunk.Reset()
		if s == "" {
			return nil
		}
		var per map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal([]byte(s), &per); err != nil {
			return fmt.Errorf("bad JSON block: %v\n%s", err, s)
		}
		for _, byAnalyzer := range per {
			for _, ds := range byAnalyzer {
				for _, d := range ds {
					file, line, ok := splitPosn(d.Posn)
					if !ok {
						return fmt.Errorf("bad position %q", d.Posn)
					}
					diags = append(diags, diagnostic{file: file, line: line, message: d.Message})
				}
			}
		}
		return nil
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		chunk.WriteString(line)
		chunk.WriteString("\n")
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return diags, nil
}

// splitPosn parses "path/file.go:12:34" into (base file, line).
func splitPosn(posn string) (string, int, bool) {
	parts := strings.Split(posn, ":")
	if len(parts) < 2 {
		return "", 0, false
	}
	// Windows drive letters don't occur here; file:line[:col].
	var line int
	if _, err := fmt.Sscanf(parts[1], "%d", &line); err != nil {
		return "", 0, false
	}
	return filepath.Base(parts[0]), line, true
}

// wantSpec is one `// want "regexp"` expectation.
type wantSpec struct {
	file    string
	line    int
	pattern string
}

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// collectWants scans every .go file under dir for want comments.
func collectWants(dir string) ([]wantSpec, error) {
	var wants []wantSpec
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				// The want pattern is written as a Go string literal.
				pattern, uerr := strconv.Unquote(`"` + m[1] + `"`)
				if uerr != nil {
					return fmt.Errorf("%s:%d: bad want literal %q: %v", path, i+1, m[1], uerr)
				}
				wants = append(wants, wantSpec{
					file:    filepath.Base(path),
					line:    i + 1,
					pattern: pattern,
				})
			}
		}
		return nil
	})
	return wants, err
}
