// Package reqdir parses the req:* annotation vocabulary shared by the
// reqlint analyzers.
//
// Two spellings are accepted, matching the two comment idioms they live in:
//
//	//req:noalloc                    — a directive comment (no space after //),
//	                                   the spelling Go reserves for machine-
//	                                   readable directives (like //go:noinline)
//	// +req:guardedBy(mu)            — a marker inside a doc comment, the
//	                                   gVisor-checklocks spelling for
//	                                   annotations that read as documentation
//
// Both forms parse to the same Directive value; each analyzer documents which
// spelling it conventionally uses.
package reqdir

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed req annotation: Name is the verb ("noalloc",
// "guardedBy", …) and Arg the raw text between the parentheses ("" when the
// directive takes no argument).
type Directive struct {
	Name string
	Arg  string
}

// Parse extracts every req directive from a comment group. A nil group
// yields nil.
func Parse(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		text := c.Text
		// Strip the comment markers without normalizing interior spacing:
		// directive comments are "//req:..." exactly, marker comments are
		// "// +req:...".
		if strings.HasPrefix(text, "/*") {
			continue // req directives are line comments only
		}
		body := strings.TrimPrefix(text, "//")
		trimmed := strings.TrimSpace(body)
		var payload string
		switch {
		case strings.HasPrefix(body, "req:"):
			payload = strings.TrimPrefix(body, "req:")
		case strings.HasPrefix(trimmed, "+req:"):
			payload = strings.TrimPrefix(trimmed, "+req:")
		default:
			continue
		}
		payload = strings.TrimSpace(payload)
		name, arg := payload, ""
		if i := strings.IndexByte(payload, '('); i >= 0 {
			if j := strings.LastIndexByte(payload, ')'); j > i {
				name, arg = payload[:i], strings.TrimSpace(payload[i+1:j])
			}
		}
		// A trailing justification after the directive ("//req:allocok —
		// pre-ensured") is allowed; the name is the first word.
		if i := strings.IndexAny(name, " \t—-"); i >= 0 {
			name = name[:i]
		}
		if name == "" {
			continue
		}
		out = append(out, Directive{Name: name, Arg: arg})
	}
	return out
}

// Has reports whether the comment group carries the named directive.
func Has(cg *ast.CommentGroup, name string) bool {
	for _, d := range Parse(cg) {
		if d.Name == name {
			return true
		}
	}
	return false
}

// Arg returns the argument of the first directive with the given name, and
// whether one was found.
func Arg(cg *ast.CommentGroup, name string) (string, bool) {
	for _, d := range Parse(cg) {
		if d.Name == name {
			return d.Arg, true
		}
	}
	return "", false
}

// LineSet returns the set of file lines (1-based) on which any comment in
// the file carries the named directive. Statement-level waivers
// (//req:allocok) are matched by line, so a waiver must sit on the same line
// as the construct it excuses.
func LineSet(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	var lines map[int]bool
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !Has(&ast.CommentGroup{List: []*ast.Comment{c}}, name) {
				continue
			}
			if lines == nil {
				lines = make(map[int]bool)
			}
			lines[fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}
