// Package viewlifetime defines an analyzer enforcing the *View recycling
// contract from internal/core/query.go: the value returned by SortedView()
// (or Freeze()) is owned by the sketch and is valid only until the next
// write to that sketch. Outside the owning package, a *View must therefore
// be consumed immediately:
//
//   - it must not be stored in a struct field, global, map/slice element,
//     composite literal, or channel (those outlive the statement);
//   - it must not be returned (the caller can't see the owner's next
//     write) — unless the function is annotated //req:viewpass, declaring
//     it forwards the view without extending its lifetime;
//   - a local holding a view must not be used after any call that can
//     write to the owning sketch (Update, Merge, Reset, ...), or after the
//     owner is passed to another function (which may write).
//
// Use-after-write detection is textual-position based: within one function
// body, a mutator call on the owner at an earlier position poisons the
// view for all later uses. That is exact for straight-line code — the shape
// every real call site has — and errs toward reporting for loops (a view
// taken before a loop that writes inside it is correctly flagged, since
// iteration 2 uses a stale view).
//
// The owning package (internal/core) is exempt: it implements the
// recycling machinery and holds views in fields by design.
package viewlifetime

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"req/internal/analysis/internal/reqdir"
)

// Analyzer enforces the SortedView lifetime contract.
var Analyzer = &analysis.Analyzer{
	Name:     "viewlifetime",
	Doc:      "report *core.View values stored beyond their validity window or used after a write to the owning sketch",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// mutators are methods that can write to a sketch and thereby invalidate
// any previously returned view.
var mutators = map[string]bool{
	"Update": true, "UpdateBatch": true, "UpdateAll": true,
	"UpdateWeighted": true, "Merge": true, "Reset": true,
	"CopyFrom": true, "Observe": true, "Add": true, "Ingest": true,
}

// producers are methods whose result is a borrowed *View.
var producers = map[string]bool{
	"SortedView": true,
	"Freeze":     false, // Freeze returns an owned *Frozen, not a borrowed view
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "core" {
		return nil, nil // the owning package implements the machinery
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	c := &checker{pass: pass}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		c.checkFunc(fd)
	})
	return nil, nil
}

// isViewPtr reports whether t is *V for a named type V called "View"
// declared in a package named "core".
func isViewPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "View" && obj.Pkg() != nil && obj.Pkg().Name() == "core"
}

type checker struct {
	pass *analysis.Pass
}

// binding records one local that holds a borrowed view: the view variable,
// the root object of the owning sketch expression, and where the view was
// taken.
type binding struct {
	view    types.Object
	owner   types.Object
	takenAt token.Pos
	// poisonedAt is the position of the first later write to the owner;
	// NoPos while still valid.
	poisonedAt token.Pos
	poisonedBy string
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	viewpass := reqdir.Has(fd.Doc, "viewpass")

	// Collect view bindings: v := owner.SortedView(). Re-takes create a
	// fresh binding, matching the documented "re-take SortedView()" idiom.
	var bindings []*binding
	lhsPos := make(map[token.Pos]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			if id, isIdent := ast.Unparen(l).(*ast.Ident); isIdent {
				lhsPos[id.Pos()] = true
			}
		}
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		owner, isProducer := c.producerOwner(call)
		if !isProducer {
			return true
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		bindings = append(bindings, &binding{view: obj, owner: owner, takenAt: as.Pos()})
		return true
	})

	// Walk every node once, in source order, applying the rules.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// Does this call write to a bound owner, or receive the owner
			// as an argument (and so may write)?
			c.maybePoison(x, bindings)
		case *ast.AssignStmt:
			c.checkStores(x)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if c.isViewExpr(e) {
					c.pass.Reportf(e.Pos(),
						"req:viewlifetime: *View stored in composite literal outlives its validity window (valid only until the next write to the sketch)")
				}
			}
		case *ast.SendStmt:
			if c.isViewExpr(x.Value) {
				c.pass.Reportf(x.Value.Pos(),
					"req:viewlifetime: *View sent on channel escapes its validity window")
			}
		case *ast.ReturnStmt:
			if viewpass {
				break
			}
			for _, r := range x.Results {
				if c.isViewExpr(r) {
					c.pass.Reportf(r.Pos(),
						"req:viewlifetime: returning a *View extends it beyond its validity window (annotate //req:viewpass if the caller consumes it before the next write)")
				}
			}
		case *ast.Ident:
			if !lhsPos[x.Pos()] {
				c.checkUseAfterPoison(x, bindings)
			}
		}
		return true
	})
}

// producerOwner reports whether call is owner.SortedView() and resolves the
// owner expression's root object.
func (c *checker) producerOwner(call *ast.CallExpr) (types.Object, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !producers[sel.Sel.Name] {
		return nil, false
	}
	if t := c.pass.TypesInfo.TypeOf(call); t == nil || !isViewPtr(t) {
		return nil, false
	}
	return rootObject(c.pass.TypesInfo, sel.X), true
}

// rootObject returns the variable at the root of a selector chain, or nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// maybePoison marks bindings stale when call can write to their owner:
// either a mutator method on the owner, or the owner passed as an argument.
func (c *checker) maybePoison(call *ast.CallExpr, bindings []*binding) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if mutators[sel.Sel.Name] {
			if root := rootObject(c.pass.TypesInfo, sel.X); root != nil {
				for _, b := range bindings {
					if b.owner == root && b.poisonedAt == token.NoPos && call.Pos() > b.takenAt {
						b.poisonedAt = call.Pos()
						b.poisonedBy = sel.Sel.Name
					}
				}
			}
			return
		}
		// Reads (Rank, Quantile, ...) on the owner are fine.
		if _, isProducer := c.producerOwner(call); isProducer {
			return
		}
	}
	// Owner escaping as a call argument: the callee may write to it.
	if fn, _ := typeutil.Callee(c.pass.TypesInfo, call).(*types.Func); fn != nil {
		if pkg := fn.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "fmt", "strings", "strconv", "errors", "testing":
				return // well-known read-only consumers
			}
		}
	}
	for _, arg := range call.Args {
		root := rootObject(c.pass.TypesInfo, arg)
		if root == nil {
			continue
		}
		// Only pointer-typed owners can be written through.
		if t := c.pass.TypesInfo.TypeOf(arg); t != nil {
			if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
				continue
			}
		}
		for _, b := range bindings {
			if b.owner == root && b.poisonedAt == token.NoPos && call.Pos() > b.takenAt {
				b.poisonedAt = call.Pos()
				b.poisonedBy = "passing the sketch to " + calleeName(c.pass.TypesInfo, call)
			}
		}
	}
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn, _ := typeutil.Callee(info, call).(*types.Func); fn != nil {
		return fn.Name()
	}
	return "a function"
}

// checkStores flags assignments that store a view anywhere longer-lived
// than a local variable.
func (c *checker) checkStores(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		if rhs == nil || !c.isViewExpr(rhs) {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if obj := c.pass.TypesInfo.Uses[l]; obj != nil {
				if v, ok := obj.(*types.Var); ok && isGlobal(v) {
					c.pass.Reportf(lhs.Pos(),
						"req:viewlifetime: *View stored in package-level variable %s outlives its validity window", v.Name())
				}
			}
		case *ast.SelectorExpr:
			c.pass.Reportf(lhs.Pos(),
				"req:viewlifetime: *View stored in field %s outlives its validity window (valid only until the next write to the sketch)", l.Sel.Name)
		case *ast.IndexExpr:
			c.pass.Reportf(lhs.Pos(),
				"req:viewlifetime: *View stored in a container element outlives its validity window")
		case *ast.StarExpr:
			c.pass.Reportf(lhs.Pos(),
				"req:viewlifetime: *View stored through a pointer outlives its validity window")
		}
	}
}

func isGlobal(v *types.Var) bool {
	return v.Parent() == v.Pkg().Scope()
}

// isViewExpr reports whether e has type *core.View.
func (c *checker) isViewExpr(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	return t != nil && isViewPtr(t)
}

// checkUseAfterPoison reports a use of a view local after its owner was
// written to.
func (c *checker) checkUseAfterPoison(id *ast.Ident, bindings []*binding) {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	// The governing binding is the latest take of this variable before the
	// use; an earlier poisoned binding is superseded by a re-take.
	var govern *binding
	for _, b := range bindings {
		if b.view == obj && b.takenAt < id.Pos() && (govern == nil || b.takenAt > govern.takenAt) {
			govern = b
		}
	}
	if govern != nil && govern.poisonedAt != token.NoPos && id.Pos() > govern.poisonedAt {
		c.pass.Reportf(id.Pos(),
			"req:viewlifetime: view %s used after %s invalidated it (views are valid only until the next write to the sketch; re-take SortedView())",
			id.Name, govern.poisonedBy)
	}
}
