// Package use seeds positive and negative cases for the viewlifetime
// analyzer from a consumer package (the owning core package is exempt).
package use

import "lint.test/core"

type holder struct {
	v *core.View
}

var global *core.View

func okImmediateUse(s *core.Sketch) uint64 {
	v := s.SortedView()
	return v.Rank(0.5) // ok: consumed before any write
}

func okManyReads(s *core.Sketch) uint64 {
	v := s.SortedView()
	a := v.Rank(0.25)
	b := v.Rank(0.75) // ok: reads don't invalidate
	return a + b
}

func badFieldStore(h *holder, s *core.Sketch) {
	h.v = s.SortedView() // want "stored in field v"
}

func badGlobalStore(s *core.Sketch) {
	global = s.SortedView() // want "package-level variable"
}

func badElementStore(s *core.Sketch, vs []*core.View) {
	vs[0] = s.SortedView() // want "container element"
}

func badCompositeLit(s *core.Sketch) holder {
	return holder{v: s.SortedView()} // want "composite literal"
}

func badChannelSend(s *core.Sketch, ch chan *core.View) {
	ch <- s.SortedView() // want "sent on channel"
}

func badReturn(s *core.Sketch) *core.View {
	return s.SortedView() // want "returning a \\*View"
}

//req:viewpass
func okAnnotatedForwarder(s *core.Sketch) *core.View {
	return s.SortedView() // ok: declared pass-through
}

func badUseAfterUpdate(s *core.Sketch) uint64 {
	v := s.SortedView()
	s.Update(1)
	return v.Rank(0.5) // want "used after Update"
}

func badUseAfterMerge(s, o *core.Sketch) uint64 {
	v := s.SortedView()
	s.Merge(o)
	return v.Rank(0.5) // want "used after Merge"
}

func okRetakeAfterUpdate(s *core.Sketch) uint64 {
	v := s.SortedView()
	s.Update(1)
	v = s.SortedView()
	return v.Rank(0.5) // ok: view re-taken after the write
}

func okOtherSketchWrite(s, o *core.Sketch) uint64 {
	v := s.SortedView()
	o.Update(1)
	return v.Rank(0.5) // ok: the write hit a different sketch
}

func mutate(s *core.Sketch) { s.Update(2) }

func badUseAfterEscape(s *core.Sketch) uint64 {
	v := s.SortedView()
	mutate(s)
	return v.Rank(0.5) // want "passing the sketch to mutate"
}
