// Package core mimics the real internal/core surface the viewlifetime
// analyzer keys on: a View type returned by SortedView and mutators that
// invalidate it. The analyzer matches by package name ("core") and type
// name ("View"), so this fixture exercises the same code paths as the real
// package without importing it.
package core

// View is a borrowed, recycled query view: valid only until the next write
// to the sketch that returned it.
type View struct {
	items []float64
}

// Rank is a read-only probe.
func (v *View) Rank(x float64) uint64 { return 0 }

// Sketch owns one recycled View.
type Sketch struct {
	view View
}

// Update writes to the sketch, invalidating outstanding views.
func (s *Sketch) Update(x float64) {}

// Merge writes to the sketch, invalidating outstanding views.
func (s *Sketch) Merge(o *Sketch) {}

// SortedView returns the sketch-owned view.
func (s *Sketch) SortedView() *View { return &s.view }
