// Package analysis assembles the reqlint analyzer suite: the four custom
// contract checkers plus the stock x/tools passes the project gates on.
//
// See the individual analyzer packages for what each one proves:
//
//	viewlifetime — *View recycling contract (internal/core/query.go)
//	slabalias    — single-slab levelStore aliasing contract (store.go)
//	locked       — +req:guardedBy / +req:locksRequired mutex contracts
//	noalloc      — //req:noalloc whole-path allocation-freedom
package analysis

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/printf"
	"golang.org/x/tools/go/analysis/passes/shift"
	"golang.org/x/tools/go/analysis/passes/stdmethods"
	"golang.org/x/tools/go/analysis/passes/structtag"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unsafeptr"
	"golang.org/x/tools/go/analysis/passes/unusedresult"

	"req/internal/analysis/locked"
	"req/internal/analysis/noalloc"
	"req/internal/analysis/slabalias"
	"req/internal/analysis/viewlifetime"
)

// Custom returns the project-specific contract analyzers.
func Custom() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		viewlifetime.Analyzer,
		slabalias.Analyzer,
		locked.Analyzer,
		noalloc.Analyzer,
	}
}

// Stock returns the x/tools passes the project gates on alongside the
// custom analyzers.
//
// The vendored x/tools tree is the syntax-based subset the Go toolchain
// itself ships (no go/ssa), so the SSA-based nilness and unusedwrite passes
// from the original plan cannot be built offline; copylocks plus the passes
// below cover the project's concurrency and correctness gates, and the
// locked analyzer subsumes the unguarded-write cases unusedwrite would
// catch on annotated fields.
func Stock() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomic.Analyzer,
		bools.Analyzer,
		copylock.Analyzer,
		lostcancel.Analyzer,
		printf.Analyzer,
		shift.Analyzer,
		stdmethods.Analyzer,
		structtag.Analyzer,
		unreachable.Analyzer,
		unsafeptr.Analyzer,
		unusedresult.Analyzer,
	}
}

// All returns every analyzer reqlint runs: custom contracts first, then the
// stock passes.
func All() []*analysis.Analyzer {
	return append(Custom(), Stock()...)
}
