// Package noalloc defines an analyzer that proves //req:noalloc functions
// contain no allocating constructs on any path.
//
// The repo's hot query paths are pinned to zero allocations at runtime by
// testing.AllocsPerRun (internal/core/alloc_test.go), but a runtime pin only
// covers exercised paths. This analyzer turns the pin into a whole-path
// compile-time guarantee for every function annotated with the
// //req:noalloc directive: the function body is rejected if it contains a
// construct the compiler may lower to a heap allocation.
//
// Rejected constructs:
//
//   - make, new, and slice/map composite literals
//   - taking the address of a composite literal (&T{...})
//   - append (growth may reallocate; waive a provably pre-sized append with
//     a //req:allocok comment on the same line)
//   - starting goroutines and defer statements
//   - conversions between string and []byte/[]rune, and conversions to
//     interface types
//   - passing a concrete value where the callee expects an interface
//     parameter, or returning one as an interface result (boxing)
//   - function literals that escape (passed as a call argument, returned,
//     or stored in a field/element); a literal bound to a local variable
//     and invoked locally stays on the stack and is allowed
//   - calls to functions that are not themselves //req:noalloc, not in the
//     non-allocating stdlib allowlist (math, math/bits, sync/atomic), and
//     not alloc-free builtins (len, cap, copy, clear, min, max, ...)
//
// Calls through function values and interface methods (the sketch's
// caller-supplied less comparator, batch emit callbacks) are allowed by
// design: the contract is that callers of the hot paths supply
// allocation-free callbacks, and each named callback is itself checked at
// its definition when annotated. Facts propagate the annotation across
// packages, so a //req:noalloc function may call an annotated function from
// a dependency.
//
// An individual construct can be waived with a //req:allocok line comment
// carrying a justification, e.g. an append into storage the function just
// ensured capacity for.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"req/internal/analysis/internal/reqdir"
)

// Analyzer rejects allocating constructs inside //req:noalloc functions.
var Analyzer = &analysis.Analyzer{
	Name:      "noalloc",
	Doc:       "report allocating constructs inside functions annotated //req:noalloc",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*isNoAlloc)(nil)},
	Run:       run,
}

// isNoAlloc marks a function object as annotated //req:noalloc, allowing
// annotated functions in other packages to call it.
type isNoAlloc struct{}

func (*isNoAlloc) AFact()         {}
func (*isNoAlloc) String() string { return "req:noalloc" }

// allowedPkgs lists stdlib packages whose exported functions are known not
// to allocate (pure arithmetic and atomics).
var allowedPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// allowedBuiltins are the builtins that never allocate. append, make, and
// new are handled (and rejected) separately.
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "clear": true, "delete": true,
	"min": true, "max": true, "real": true, "imag": true, "panic": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: collect annotated functions and export their facts before any
	// body is checked, so intra-package calls between annotated functions
	// resolve no matter the declaration order.
	annotated := make(map[*types.Func]bool)
	var decls []*ast.FuncDecl
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if !reqdir.Has(fd.Doc, "noalloc") {
			return
		}
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		annotated[fn] = true
		pass.ExportObjectFact(fn, &isNoAlloc{})
		if fd.Body != nil {
			decls = append(decls, fd)
		}
	})
	if len(decls) == 0 {
		return nil, nil
	}

	// Waiver lines, per file.
	waived := make(map[*token.File]map[int]bool)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf != nil {
			waived[tf] = reqdir.LineSet(pass.Fset, f, "allocok")
		}
	}

	c := &checker{pass: pass, annotated: annotated, waived: waived}
	for _, fd := range decls {
		c.checkFunc(fd)
	}
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	annotated map[*types.Func]bool
	waived    map[*token.File]map[int]bool
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	if tf := c.pass.Fset.File(pos); tf != nil {
		if lines := c.waived[tf]; lines != nil && lines[c.pass.Fset.Position(pos).Line] {
			return
		}
	}
	c.pass.Reportf(pos, "req:noalloc: "+format, args...)
}

// checkFunc walks the body of one annotated function. The walk carries the
// parent node so escape-relevant contexts (a FuncLit as a call argument vs
// bound to a local) can be told apart.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	sig, _ := c.pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
	c.walk(fd.Body, nil, sig)
}

// walk visits n with parent p, descending into every child. sig is the
// enclosing function signature (for return boxing checks); it changes when
// the walk enters a function literal.
func (c *checker) walk(n ast.Node, p ast.Node, sig *types.Signature) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *ast.GoStmt:
		c.report(x.Pos(), "starts a goroutine (allocates a stack)")
	case *ast.DeferStmt:
		c.report(x.Pos(), "defer may allocate its frame")
	case *ast.CompositeLit:
		c.checkCompositeLit(x, p)
	case *ast.FuncLit:
		if c.funcLitEscapes(p) {
			c.report(x.Pos(), "function literal escapes (closure allocates); bind it to a local variable instead")
		}
		var inner *types.Signature
		if t, ok := c.pass.TypesInfo.TypeOf(x).(*types.Signature); ok {
			inner = t
		}
		for _, stmt := range x.Body.List {
			c.walk(stmt, x.Body, inner)
		}
		return // children handled with the literal's own signature
	case *ast.CallExpr:
		c.checkCall(x)
	case *ast.ReturnStmt:
		c.checkReturnBoxing(x, sig)
	}
	// Generic descent.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		c.walk(child, n, sig)
		return false
	})
}

// checkCompositeLit rejects literal types that are heap-backed (slices,
// maps) and composite literals whose address is taken. Plain struct and
// array values live on the stack.
func (c *checker) checkCompositeLit(lit *ast.CompositeLit, parent ast.Node) {
	t := c.pass.TypesInfo.TypeOf(lit)
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates")
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
	}
	if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
		c.report(lit.Pos(), "address of composite literal may escape to the heap")
	}
}

// funcLitEscapes reports whether a function literal in the given parent
// context can escape: passed to a call, returned, or stored anywhere other
// than a local variable.
func (c *checker) funcLitEscapes(parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.CallExpr:
		return true // argument (the callee position is a direct invocation, but a FuncLit callee is ((func(){})()) — still stack; be conservative only for args)
	case *ast.ReturnStmt:
		return true
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		return true
	case *ast.AssignStmt:
		// Escapes when any LHS is not a plain (local) identifier.
		for _, lhs := range p.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// checkCall classifies one call expression: conversion, builtin, static
// callee, or dynamic call.
func (c *checker) checkCall(call *ast.CallExpr) {
	// Type conversions.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			c.checkBuiltin(call, b.Name())
			return
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if b, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Builtin); ok {
			c.checkBuiltin(call, b.Name())
			return
		}
	}
	callee := typeutil.Callee(c.pass.TypesInfo, call)
	fn, ok := callee.(*types.Func)
	if !ok {
		// Dynamic call through a function value or interface method:
		// allowed by contract (comparators and emit callbacks are assumed
		// allocation-free; annotate their definitions to have them checked).
		c.checkArgBoxing(call)
		return
	}
	fn = fn.Origin()
	if !c.calleeIsNoAlloc(fn) {
		c.report(call.Pos(), "calls %s which is not //req:noalloc", fn.FullName())
	}
	c.checkArgBoxing(call)
}

func (c *checker) calleeIsNoAlloc(fn *types.Func) bool {
	if c.annotated[fn] {
		return true
	}
	if c.pass.ImportObjectFact(fn, &isNoAlloc{}) {
		return true
	}
	if pkg := fn.Pkg(); pkg != nil && allowedPkgs[pkg.Path()] {
		return true
	}
	// Methods on types in allowed packages (atomic.Uint64.Load, ...).
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if named, ok := recv.Type().(*types.Pointer); ok {
			if n, ok := named.Elem().(*types.Named); ok && n.Obj().Pkg() != nil && allowedPkgs[n.Obj().Pkg().Path()] {
				return true
			}
		}
		if n, ok := recv.Type().(*types.Named); ok && n.Obj().Pkg() != nil && allowedPkgs[n.Obj().Pkg().Path()] {
			return true
		}
	}
	return false
}

func (c *checker) checkBuiltin(call *ast.CallExpr, name string) {
	switch name {
	case "append":
		c.report(call.Pos(), "append may grow the backing array")
	case "make":
		c.report(call.Pos(), "make allocates")
	case "new":
		c.report(call.Pos(), "new allocates")
	case "print", "println":
		c.report(call.Pos(), "%s may allocate", name)
	default:
		if !allowedBuiltins[name] {
			c.report(call.Pos(), "builtin %s may allocate", name)
		}
	}
	if name == "panic" {
		// The panic value itself may box; covered by arg boxing below.
		c.checkArgBoxingTo(call.Args, types.NewInterfaceType(nil, nil))
	}
}

// checkConversion rejects conversions the compiler implements with an
// allocation: string<->[]byte/[]rune and concrete->interface.
func (c *checker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if types.IsInterface(toU) && !types.IsInterface(fromU) {
		c.report(call.Pos(), "conversion to interface boxes the value")
		return
	}
	if isString(toU) && isByteOrRuneSlice(fromU) || isString(fromU) && isByteOrRuneSlice(toU) {
		c.report(call.Pos(), "string conversion copies and allocates")
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// checkArgBoxing reports arguments whose parameter type is an interface but
// whose argument type is concrete: the call site boxes.
func (c *checker) checkArgBoxing(call *ast.CallExpr) {
	sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if params.Len() == 0 {
				break
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			if call.Ellipsis.IsValid() && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // xs... passes the slice through
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		c.reportBoxedArg(arg, pt)
	}
}

func (c *checker) checkArgBoxingTo(args []ast.Expr, pt types.Type) {
	for _, arg := range args {
		c.reportBoxedArg(arg, pt)
	}
}

func (c *checker) reportBoxedArg(arg ast.Expr, pt types.Type) {
	if !types.IsInterface(pt.Underlying()) {
		return
	}
	at := c.pass.TypesInfo.TypeOf(arg)
	if at == nil || types.IsInterface(at.Underlying()) {
		return
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	c.report(arg.Pos(), "passing %s as interface argument boxes the value", at)
}

// checkReturnBoxing reports concrete values returned as interface results.
func (c *checker) checkReturnBoxing(ret *ast.ReturnStmt, sig *types.Signature) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return // naked return, or multi-value call spread — nothing concrete to pin
	}
	for i, res := range ret.Results {
		rt := sig.Results().At(i).Type()
		if !types.IsInterface(rt.Underlying()) {
			continue
		}
		at := c.pass.TypesInfo.TypeOf(res)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		c.report(res.Pos(), "returning %s as interface result boxes the value", at)
	}
}
