package noalloc_test

import (
	"testing"

	"req/internal/analysis/internal/atest"
)

// TestNoalloc drives the real reqlint binary through
// go vet -json over the golden module in testdata/src and matches the
// diagnostics against its // want comments.
func TestNoalloc(t *testing.T) {
	atest.Run(t, "noalloc")
}
