// Package a seeds positive and negative cases for the noalloc analyzer.
package a

import "math"

type point struct{ x, y float64 }

//req:noalloc
func okArith(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += math.Sqrt(x)
	}
	return s
}

//req:noalloc
func helper(x float64) float64 { return x * 2 }

//req:noalloc
func okCallsAnnotated(x float64) float64 { return helper(x) }

//req:noalloc
func okStructValue() point { return point{1, 2} }

//req:noalloc
func okLocalClosure(xs []float64) float64 {
	pick := func(i int) float64 { return xs[i] }
	return pick(0)
}

//req:noalloc
func okCopy(dst, src []float64) int { return copy(dst, src) }

// unannotated functions may allocate freely.
func plain() []int { return make([]int, 4) }

//req:noalloc
func badMake() []int {
	return make([]int, 4) // want "make allocates"
}

//req:noalloc
func badNew() *point {
	return new(point) // want "new allocates"
}

//req:noalloc
func badAppend(xs []int) []int {
	return append(xs, 1) // want "append may grow"
}

//req:noalloc
func okWaivedAppend(xs []int) []int {
	return append(xs, 1) //req:allocok — caller pre-ensures capacity
}

//req:noalloc
func badSliceLit() []int {
	return []int{1, 2} // want "slice literal allocates"
}

//req:noalloc
func badMapLit() map[int]int {
	return map[int]int{} // want "map literal allocates"
}

//req:noalloc
func badAddrLit() *point {
	return &point{1, 2} // want "address of composite literal"
}

//req:noalloc
func badBoxReturn(x int) interface{} {
	return x // want "boxes the value"
}

//req:noalloc
func badCallUnannotated() {
	plain() // want "not //req:noalloc"
}

//req:noalloc
func badEscapingClosure(f func(func())) {
	f(func() {}) // want "function literal escapes"
}

//req:noalloc
func badStringConv(b []byte) string {
	return string(b) // want "string conversion"
}

//req:noalloc
func badGoroutine() {
	go helper(1) // want "starts a goroutine"
}

//req:noalloc
func badDefer() {
	defer helper(1) // want "defer may allocate"
}
