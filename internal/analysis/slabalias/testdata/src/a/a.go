// Package a mirrors the shapes of internal/core's slab storage engine to
// seed positive and negative cases for the slabalias analyzer. The analyzer
// activates because this package declares a levelStore type.
package a

type item struct{ v float64 }

type compactor struct {
	buf    []item
	sorted int
}

type levelStore struct {
	slab []item
}

func (s *levelStore) ensure(levels []compactor, h, n int) {}
func (s *levelStore) grow(n int)                          {}
func (s *levelStore) addLevel(levels []compactor, b int) []compactor {
	return levels
}

// resize is an approved helper: levelStore methods own the slab.
func (s *levelStore) resize(n int) {
	s.slab = make([]item, n) // ok: inside a levelStore method
}

type sketch struct {
	store    levelStore
	levels   []compactor
	scratch  []item
	mergeBuf []item
}

func (s *sketch) compactCascade(h int) {}

func (s *sketch) okEnsuredAppend(x item) {
	s.store.ensure(s.levels, 0, len(s.levels[0].buf)+1)
	lv := &s.levels[0]
	lv.buf = append(lv.buf, x) // ok: capacity just established
}

func (s *sketch) badBareAppend(x item) {
	lv := &s.levels[0]
	lv.buf = append(lv.buf, x) // want "append into a slab window without a preceding ensure"
}

func (s *sketch) badScratchAlias() {
	s.scratch = s.levels[0].buf // want "scratch buffers must never alias the slab"
}

func (s *sketch) badScratchAliasViaLocal() {
	w := s.levels[0].buf
	s.scratch = w[:0] // want "scratch buffers must never alias the slab"
}

func (s *sketch) badMergeBufAlias() {
	s.mergeBuf = s.levels[1].buf[:0] // want "scratch buffers must never alias the slab"
}

func (s *sketch) okScratchCopy() {
	// Append-copy moves the items out of the slab; no aliasing.
	s.scratch = append(s.scratch[:0], s.levels[0].buf...)
}

func (s *sketch) badStaleWindow() float64 {
	tail := s.levels[0].buf[1:]
	s.store.grow(64)
	return tail[0].v // want "used after grow may have reallocated the slab"
}

func (s *sketch) okReslicedWindow() float64 {
	tail := s.levels[0].buf[1:]
	s.store.grow(64)
	tail = s.levels[0].buf[1:]
	return tail[0].v // ok: re-sliced after the growth
}

func (s *sketch) badStaleCompactor() {
	c := &s.levels[0]
	s.levels = s.store.addLevel(s.levels, 8)
	c.sorted = 0 // want "re-take the pointer"
}

func (s *sketch) okRetakenCompactor() {
	c := &s.levels[0]
	s.levels = s.store.addLevel(s.levels, 8)
	c = &s.levels[0]
	c.sorted = 0 // ok: pointer re-taken after growth
}

func (s *sketch) okShieldedByContinue() {
	for i := 0; i < 4; i++ {
		lv := &s.levels[0]
		if len(lv.buf) > 8 {
			s.compactCascade(0)
			continue
		}
		lv.sorted = 0 // ok: the continue shields this use from the compaction
	}
}

func (s *sketch) okOtherSketchMutation(src *sketch, x item) {
	add := src.levels[0].buf
	s.store.ensure(s.levels, 0, len(s.levels[0].buf)+len(add))
	lv := &s.levels[0]
	lv.buf = append(lv.buf, add...) // ok: ensure was on s, add aliases src's slab
}

func badSlabSteal(s *sketch) {
	s.store.slab = nil // want "slab may only be re-assigned inside levelStore methods"
}

func (s *sketch) badForeignWindowAssign(other []item) {
	s.levels[0].buf = other // want "window re-assignment must derive from the same window"
}

func (s *sketch) okSelfSlice() {
	s.levels[0].buf = s.levels[0].buf[:0] // ok: re-slice of the same window
}
