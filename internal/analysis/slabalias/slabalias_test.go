package slabalias_test

import (
	"testing"

	"req/internal/analysis/internal/atest"
)

// TestSlabalias drives the real reqlint binary through
// go vet -json over the golden module in testdata/src and matches the
// diagnostics against its // want comments.
func TestSlabalias(t *testing.T) {
	atest.Run(t, "slabalias")
}
