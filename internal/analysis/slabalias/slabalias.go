// Package slabalias defines an analyzer guarding the single-slab storage
// engine contract from internal/core/store.go: every compactor's buf is an
// (off, cap) window of one backing slab owned by levelStore, so
//
//   - appending into a window is only sound when capacity was just
//     established (a textually preceding ensure/initWindows call in the
//     same function) — a growing append would silently re-home one level
//     off the slab;
//   - window re-assignment (c.buf = ...) must derive from the same window
//     (self-append, re-slice, or an in-place helper like mergeSortedInto
//     that returns its first argument's storage);
//   - the slab pointer itself (s.slab) may only be re-assigned inside
//     levelStore's own methods;
//   - scratch and mergeBuf must never be assigned a slab-derived slice
//     (runtime debug.go checks this with unsafe.SliceData overlap; this
//     analyzer rejects the assignment shapes that could create overlap);
//   - a local aliasing a window (tail := s.levels[0].buf[...]) must not be
//     used after a call that can restructure the store (grow, addLevel,
//     compactions) — the slab may have been reallocated under it;
//   - a *compactor pointer (c := &s.levels[h]) must be re-taken after any
//     call that can grow the levels slice, matching the re-take idiom the
//     code already uses.
//
// The analyzer activates only in packages that declare a levelStore type
// (internal/core and test fixtures), and uses textual-position tracking:
// exact for straight-line code, conservative for loops.
package slabalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer guards the levelStore slab-aliasing contract.
var Analyzer = &analysis.Analyzer{
	Name:     "slabalias",
	Doc:      "report operations that could silently re-home a level window off the storage slab or alias scratch buffers to it",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// capacityEstablishers are calls that (re)establish window capacity, after
// which an append into a window is sound.
var capacityEstablishers = map[string]bool{
	"ensure":      true,
	"initWindows": true,
}

// storeMutators are calls that can reallocate the slab or restructure the
// level windows, invalidating window-aliasing locals.
var storeMutators = map[string]bool{
	"grow": true, "growTo": true, "ensure": true, "addLevel": true,
	"reset": true, "initWindows": true, "cloneFrom": true, "copyFrom": true,
	"compactCascade": true, "compactLevel": true, "specialCompactLevel": true,
	"emitHalf": true, "settleLevel": true,
	"Update": true, "UpdateBatch": true, "UpdateWeighted": true,
	"Merge": true, "Reset": true, "CopyFrom": true,
}

// levelGrowers can grow/reorder the levels slice, invalidating *compactor
// pointers taken from it.
var levelGrowers = map[string]bool{
	"addLevel": true, "emitHalf": true, "compactCascade": true,
	"compactLevel": true, "specialCompactLevel": true, "growTo": true,
	"cloneFrom": true, "copyFrom": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Activate only where the contract lives: packages declaring levelStore.
	if pass.Pkg.Scope().Lookup("levelStore") == nil {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	c := &checker{pass: pass}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		c.checkFunc(fd)
	})
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// isCompactorBufSel reports whether e is <x>.buf where x's type is a
// (pointer to) struct named compactor.
func (c *checker) isCompactorBufSel(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "buf" {
		return false
	}
	return typeNamed(c.pass.TypesInfo.TypeOf(sel.X), "compactor")
}

// isSlabSel reports whether e is <x>.slab where x is a (pointer to)
// levelStore.
func (c *checker) isSlabSel(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "slab" {
		return false
	}
	return typeNamed(c.pass.TypesInfo.TypeOf(sel.X), "levelStore")
}

// isWindowExpr reports whether e denotes slab-aliased window storage: a
// compactor buf, the slab itself, or a slice expression over either.
func (c *checker) isWindowExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		return c.isWindowExpr(sl.X)
	}
	return c.isCompactorBufSel(e) || c.isSlabSel(e)
}

func typeNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// hasLevelStoreRecv reports whether fd is a method on levelStore (the
// approved helpers that may touch the slab directly).
func (c *checker) hasLevelStoreRecv(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return typeNamed(c.pass.TypesInfo.TypeOf(fd.Recv.List[0].Type), "levelStore")
}

// poison is one restructuring call that invalidates a local: it taints uses
// in (pos, end]. end is the function end by default, or the enclosing
// block's end when the block cannot fall through (it ends in
// continue/break/return), since code after such a block is unreachable from
// the call.
type poison struct {
	pos token.Pos
	end token.Pos
	by  string
}

// windowLocal tracks a local variable aliasing window storage, or a
// *compactor pointer into the levels slice. root is the variable the
// owning store/sketch expression is rooted at (src in src.levels[h].buf):
// only mutations through the same root invalidate the local.
type windowLocal struct {
	obj     types.Object
	root    types.Object
	kind    string // "window" or "compactor"
	takenAt token.Pos
	poisons []poison
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	inStore := c.hasLevelStoreRecv(fd)

	// Poison scope per call: the function end, narrowed to the enclosing
	// block's end when the block ends in a terminator (continue/break/
	// return), since the code after it never sees the call's effects.
	callEnds := make(map[*ast.CallExpr]token.Pos)
	markCallEnds(fd.Body, fd.Body.End(), callEnds)

	// Phase 1: find capacity-establishing call positions and locals that
	// alias windows or point into levels.
	var establishers []token.Pos
	var locals []*windowLocal
	lhsPos := make(map[token.Pos]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeMethodName(x); ok && capacityEstablishers[name] {
				establishers = append(establishers, x.Pos())
			}
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				if id, isIdent := ast.Unparen(l).(*ast.Ident); isIdent {
					lhsPos[id.Pos()] = true
				}
			}
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
				return true
			}
			id, ok := ast.Unparen(x.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return true
			}
			rhs := ast.Unparen(x.Rhs[0])
			if c.isWindowExpr(rhs) {
				locals = append(locals, &windowLocal{
					obj: obj, root: rootObject(c.pass.TypesInfo, rhs),
					kind: "window", takenAt: x.Pos(),
				})
			} else if u, isUnary := rhs.(*ast.UnaryExpr); isUnary && u.Op == token.AND {
				if typeNamed(c.pass.TypesInfo.TypeOf(rhs), "compactor") {
					locals = append(locals, &windowLocal{
						obj: obj, root: rootObject(c.pass.TypesInfo, u.X),
						kind: "compactor", takenAt: x.Pos(),
					})
				}
			}
		}
		return true
	})

	// Phase 2: single source-order walk applying the rules.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			c.checkAppend(x, establishers)
			c.poisonLocals(x, locals, callEnds)
		case *ast.AssignStmt:
			c.checkAssign(x, fd, inStore, locals)
		case *ast.Ident:
			if !lhsPos[x.Pos()] {
				c.checkUseAfterPoison(x, locals)
			}
		}
		return true
	})
}

// calleeMethodName extracts the bare method/function name of a call.
func calleeMethodName(call *ast.CallExpr) (string, bool) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return f.Sel.Name, true
	case *ast.Ident:
		return f.Name, true
	}
	return "", false
}

// checkAppend flags append(window, ...) with no textually preceding
// capacity-establishing call in the same function.
func (c *checker) checkAppend(call *ast.CallExpr, establishers []token.Pos) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if b, isB := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isB || b.Name() != "append" {
		return
	}
	if len(call.Args) == 0 || !c.isWindowExpr(call.Args[0]) {
		return
	}
	for _, pos := range establishers {
		if pos < call.Pos() {
			return
		}
	}
	c.pass.Reportf(call.Pos(),
		"req:slabalias: append into a slab window without a preceding ensure/initWindows call; a growing append would re-home the level off the slab")
}

// markCallEnds records, for every call in the statement tree, the position
// after which the call's effects are unreachable: inherited from the
// enclosing scope, narrowed to a block's end when that block ends in a
// terminator statement.
func markCallEnds(n ast.Node, end token.Pos, out map[*ast.CallExpr]token.Pos) {
	if n == nil {
		return
	}
	if b, ok := n.(*ast.BlockStmt); ok {
		inner := end
		if len(b.List) > 0 {
			switch last := b.List[len(b.List)-1].(type) {
			case *ast.BranchStmt:
				if last.Tok == token.CONTINUE || last.Tok == token.BREAK {
					inner = b.End()
				}
			case *ast.ReturnStmt:
				inner = b.End()
			}
		}
		for _, st := range b.List {
			markCallEnds(st, inner, out)
		}
		return
	}
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		switch x := child.(type) {
		case *ast.BlockStmt:
			markCallEnds(x, end, out)
			return false
		case *ast.CallExpr:
			out[x] = end
			return true // nested calls inherit the same end
		}
		return true
	})
}

// mutatorRoot resolves the variable at the root of a restructuring call's
// receiver chain (s for s.compactCascade, m for m.store.ensure). nil for
// bare function calls.
func mutatorRoot(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return rootObject(info, sel.X)
}

// poisonLocals marks window/compactor locals stale after restructuring
// calls on the same store/sketch root.
func (c *checker) poisonLocals(call *ast.CallExpr, locals []*windowLocal, callEnds map[*ast.CallExpr]token.Pos) {
	name, ok := calleeMethodName(call)
	if !ok {
		return
	}
	root := mutatorRoot(c.pass.TypesInfo, call)
	end := callEnds[call]
	if end == token.NoPos {
		end = token.Pos(1 << 30)
	}
	for _, l := range locals {
		if call.Pos() <= l.takenAt {
			continue
		}
		// A mutation through a different sketch/store root leaves this
		// local's slab untouched. Unresolvable roots poison conservatively.
		if root != nil && l.root != nil && root != l.root {
			continue
		}
		switch l.kind {
		case "window":
			if storeMutators[name] {
				l.poisons = append(l.poisons, poison{pos: call.Pos(), end: end, by: name})
			}
		case "compactor":
			if levelGrowers[name] {
				l.poisons = append(l.poisons, poison{pos: call.Pos(), end: end, by: name})
			}
		}
	}
}

// checkAssign enforces the window re-assignment rules.
func (c *checker) checkAssign(as *ast.AssignStmt, fd *ast.FuncDecl, inStore bool, locals []*windowLocal) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		lhsU := ast.Unparen(lhs)

		// Rule: s.slab may only be re-assigned inside levelStore methods.
		if c.isSlabSel(lhsU) && !inStore {
			c.pass.Reportf(lhs.Pos(),
				"req:slabalias: the slab may only be re-assigned inside levelStore methods (use grow/ensure)")
			continue
		}

		// Rule: c.buf = RHS must keep the window on its own storage.
		if c.isCompactorBufSel(lhsU) && rhs != nil {
			if !inStore && !c.isSelfDerived(lhsU, rhs) {
				c.pass.Reportf(lhs.Pos(),
					"req:slabalias: window re-assignment must derive from the same window (self-append, re-slice, or an in-place helper); anything else re-homes the level off the slab")
			}
			continue
		}

		// Rule: scratch/mergeBuf must never be assigned slab-derived
		// storage directly (append-copies like append(s.scratch[:0], w...)
		// copy out of the slab and are fine).
		if sel, ok := lhsU.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "scratch" || sel.Sel.Name == "mergeBuf") && rhs != nil {
			if c.isWindowExpr(rhs) || c.isWindowLocalExpr(rhs, locals) {
				c.pass.Reportf(lhs.Pos(),
					"req:slabalias: assigning slab-aliased storage to %s; scratch buffers must never alias the slab (copy with append(%s[:0], ...) instead)",
					sel.Sel.Name, sel.Sel.Name)
			}
		}
	}
}

// isWindowLocalExpr reports whether e is (a slice of) a local known to
// alias a window.
func (c *checker) isWindowLocalExpr(e ast.Expr, locals []*windowLocal) bool {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		return c.isWindowLocalExpr(sl.X, locals)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pass.TypesInfo.Uses[id]
	for _, l := range locals {
		if l.obj == obj && l.kind == "window" {
			return true
		}
	}
	return false
}

// isSelfDerived reports whether rhs keeps lhs's window on its own storage:
// append(lhs...), a slice of lhs, or a call whose first argument is
// (a slice of) lhs — the in-place helper pattern, e.g.
// mergeSortedInto(c.buf[:c.sorted], ...).
func (c *checker) isSelfDerived(lhs ast.Expr, rhs ast.Expr) bool {
	rhs = ast.Unparen(rhs)
	switch r := rhs.(type) {
	case *ast.SliceExpr:
		return sameSelector(r.X, lhs)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && id.Name == "append" {
			if len(r.Args) > 0 {
				arg := ast.Unparen(r.Args[0])
				if sl, isSlice := arg.(*ast.SliceExpr); isSlice {
					arg = ast.Unparen(sl.X)
				}
				return sameSelector(arg, lhs)
			}
			return false
		}
		if len(r.Args) > 0 {
			arg := ast.Unparen(r.Args[0])
			if sl, isSlice := arg.(*ast.SliceExpr); isSlice {
				arg = ast.Unparen(sl.X)
			}
			return sameSelector(arg, lhs)
		}
	}
	return false
}

// sameSelector reports whether two expressions spell the same selector
// chain (textually, by identifier names).
func sameSelector(a, b ast.Expr) bool {
	return selectorSpelling(a) != "" && selectorSpelling(a) == selectorSpelling(b)
}

func selectorSpelling(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := selectorSpelling(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		base := selectorSpelling(x.X)
		if base == "" {
			return ""
		}
		return base + "[" + selectorSpelling(x.Index) + "]"
	case *ast.BasicLit:
		return x.Value
	default:
		return ""
	}
}

// rootObject returns the variable at the root of a selector/index chain,
// or nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkUseAfterPoison reports window/compactor locals used after the store
// was restructured.
func (c *checker) checkUseAfterPoison(id *ast.Ident, locals []*windowLocal) {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	// The governing binding is the latest take before the use; a re-take
	// (tail = s.levels[0].buf[...] again, lv = &s.levels[0]) supersedes
	// earlier poisons.
	var govern *windowLocal
	for _, l := range locals {
		if l.obj == obj && l.takenAt < id.Pos() && (govern == nil || l.takenAt > govern.takenAt) {
			govern = l
		}
	}
	if govern == nil {
		return
	}
	for _, p := range govern.poisons {
		if id.Pos() <= p.pos || id.Pos() > p.end {
			continue
		}
		switch govern.kind {
		case "window":
			c.pass.Reportf(id.Pos(),
				"req:slabalias: %s aliases slab storage but is used after %s may have reallocated the slab; re-slice after the call",
				id.Name, p.by)
		case "compactor":
			c.pass.Reportf(id.Pos(),
				"req:slabalias: %s points into the levels slice but is used after %s may have grown it; re-take the pointer (c = &s.levels[h])",
				id.Name, p.by)
		}
		return
	}
}
