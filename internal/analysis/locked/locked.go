// Package locked defines an analyzer that proves annotated fields are only
// accessed with their guarding mutex held.
//
// The vocabulary follows gVisor's checklocks conventions, spelled with the
// project prefix:
//
//	// +req:guardedBy(mu)            on a struct field: every access to the
//	                                 field must hold the sibling mutex field
//	                                 named mu (read accesses may hold it in
//	                                 read mode; writes need write mode)
//	// +req:locksRequired(sh.mu)     on a function: callers must already hold
//	                                 the named lock; the body is checked with
//	                                 the lock assumed held
//	// +req:locksAcquired(return.mu) on a function: the function returns with
//	                                 the named lock held (write mode)
//	// +req:locksReleased(sh.mu)     on a function: the function releases the
//	                                 named lock before returning
//	// +req:callsWithLock(mu)        on a function taking a func-typed
//	                                 parameter: the callback is invoked with
//	                                 the receiver's named lock held, so a
//	                                 function literal passed in is checked
//	                                 with that lock seeded
//
// The analysis is a forward walk over each function body tracking, per
// lvalue path (x.mu, s.inner.mu), whether the lock is held for reading or
// writing:
//
//   - Lock/RLock/TryLock/TryRLock acquire; Unlock/RUnlock release.
//   - defer x.mu.Unlock() keeps the lock held to the end of the function.
//   - if x.mu.TryLock() { ... } seeds the then-branch only.
//   - Branches are walked independently and merged by intersection;
//     branches that terminate (return/panic) don't constrain the merge.
//   - Loop and select bodies are checked with the entry state; state
//     changes inside them don't leak out (a lock acquired in a loop body
//     must be released in it).
//   - go func(){...} bodies start with no locks held.
//
// Lock identity is syntactic: two accesses hold the same lock when their
// selector paths are rooted at the same variable and spell the same field
// path. That is exact for the patterns this repo uses (receiver-rooted
// mutexes, shard pointers) and degrades to a report (never a false pass)
// for aliased exotic paths.
package locked

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"req/internal/analysis/internal/reqdir"
)

// Analyzer checks +req:guardedBy / +req:locksRequired annotations.
var Analyzer = &analysis.Analyzer{
	Name:     "locked",
	Doc:      "report accesses to +req:guardedBy fields without the guarding mutex held",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{
		(*guardedBy)(nil),
		(*funcLocks)(nil),
	},
	Run: run,
}

// guardedBy is the fact attached to a struct field object naming its
// guarding mutex field (a sibling field in the same struct).
type guardedBy struct{ Mutex string }

func (*guardedBy) AFact()           {}
func (f *guardedBy) String() string { return "req:guardedBy(" + f.Mutex + ")" }

// funcLocks records a function's lock contract: lock paths (spelled
// relative to the function, e.g. "sh.mu" or "return.mu") that must be held
// on entry, are acquired by return, or are released by return. callsWithLock
// names the receiver-relative lock under which func-typed arguments are
// invoked.
type funcLocks struct {
	Required      []string
	Acquired      []string
	Released      []string
	CallsWithLock string
}

func (*funcLocks) AFact() {}
func (f *funcLocks) String() string {
	var parts []string
	if len(f.Required) > 0 {
		parts = append(parts, "requires "+strings.Join(f.Required, ","))
	}
	if len(f.Acquired) > 0 {
		parts = append(parts, "acquires "+strings.Join(f.Acquired, ","))
	}
	if len(f.Released) > 0 {
		parts = append(parts, "releases "+strings.Join(f.Released, ","))
	}
	if f.CallsWithLock != "" {
		parts = append(parts, "callsWithLock "+f.CallsWithLock)
	}
	return "req:locks{" + strings.Join(parts, "; ") + "}"
}

// mode is the strength a lock is held with.
type mode int

const (
	read  mode = 1
	write mode = 2
)

// lockKey identifies one lock lvalue: the root variable plus the dotted
// field path from it ("mu", "inner.mu").
type lockKey struct {
	root types.Object
	path string
}

// lockState maps held locks to their mode.
type lockState map[lockKey]mode

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// intersect keeps only locks held (at least as strongly) in both states.
func (s lockState) intersect(o lockState) lockState {
	out := make(lockState)
	for k, v := range s {
		if ov, ok := o[k]; ok {
			m := v
			if ov < m {
				m = ov
			}
			out[k] = m
		}
	}
	return out
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: collect field guards and function contracts, exporting facts.
	guards := make(map[*types.Var]string) // field object -> sibling mutex field name
	contracts := make(map[*types.Func]*funcLocks)

	ins.Preorder([]ast.Node{(*ast.StructType)(nil)}, func(n ast.Node) {
		st := n.(*ast.StructType)
		for _, f := range st.Fields.List {
			var mu string
			var ok bool
			if mu, ok = reqdir.Arg(f.Doc, "guardedBy"); !ok {
				if mu, ok = reqdir.Arg(f.Comment, "guardedBy"); !ok {
					continue
				}
			}
			for _, name := range f.Names {
				if v, isVar := pass.TypesInfo.Defs[name].(*types.Var); isVar {
					guards[v] = mu
					pass.ExportObjectFact(v, &guardedBy{Mutex: mu})
				}
			}
		}
	})

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		fl := &funcLocks{}
		for _, d := range reqdir.Parse(fd.Doc) {
			switch d.Name {
			case "locksRequired":
				fl.Required = append(fl.Required, d.Arg)
			case "locksAcquired":
				fl.Acquired = append(fl.Acquired, d.Arg)
			case "locksReleased":
				fl.Released = append(fl.Released, d.Arg)
			case "callsWithLock":
				fl.CallsWithLock = d.Arg
			}
		}
		if len(fl.Required)+len(fl.Acquired)+len(fl.Released) == 0 && fl.CallsWithLock == "" {
			return
		}
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			contracts[fn] = fl
			pass.ExportObjectFact(fn, fl)
		}
	})

	c := &checker{pass: pass, guards: guards, contracts: contracts}

	// Pass 2: walk every function body.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		state := make(lockState)
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		// Seed locks the contract says are held on entry.
		if fl := contracts[fn]; fl != nil {
			for _, req := range fl.Required {
				if k, ok := c.keyForContractPath(fd, req); ok {
					state[k] = write
				}
			}
		}
		c.walkStmt(fd.Body, state)
		// Contracts about exit state (locksAcquired/locksReleased) are
		// trusted, not proven: they document transfer of lock ownership
		// across function boundaries, which a per-function analysis cannot
		// see both sides of.
	})
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	guards    map[*types.Var]string
	contracts map[*types.Func]*funcLocks
}

// keyForContractPath resolves a contract path like "sh.mu" or "c.mu"
// against a function's parameters and receiver. "return.mu" has no
// in-function key (it names the result) and resolves to false.
func (c *checker) keyForContractPath(fd *ast.FuncDecl, path string) (lockKey, bool) {
	rootName, rest, found := strings.Cut(path, ".")
	if !found {
		return lockKey{}, false
	}
	var root types.Object
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, nm := range f.Names {
				if nm.Name == rootName {
					root = c.pass.TypesInfo.Defs[nm]
				}
			}
		}
	}
	if root == nil && fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, nm := range f.Names {
				if nm.Name == rootName {
					root = c.pass.TypesInfo.Defs[nm]
				}
			}
		}
	}
	if root == nil {
		return lockKey{}, false
	}
	return lockKey{root: root, path: rest}, true
}

// resolvePath splits a selector chain rooted at an identifier into
// (root object, dotted path). ok is false for anything more exotic
// (calls, index expressions in the chain).
func (c *checker) resolvePath(e ast.Expr) (types.Object, string, bool) {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = c.pass.TypesInfo.Defs[x]
			}
			if obj == nil {
				return nil, "", false
			}
			// Reverse parts.
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return obj, strings.Join(parts, "."), true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		default:
			return nil, "", false
		}
	}
}

// lockMethod classifies a selector call as a mutex operation. The receiver
// type's name must contain "Mutex" (sync.Mutex, sync.RWMutex, or a local
// fake in tests).
func (c *checker) lockMethod(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", false
	}
	t := c.pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return nil, "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || !strings.Contains(named.Obj().Name(), "Mutex") {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// walkStmt advances state through stmt, reporting guarded accesses made
// without their lock. It mutates and returns state; terminated reports
// whether the statement definitely does not fall through.
func (c *checker) walkStmt(stmt ast.Stmt, state lockState) (terminated bool) {
	switch s := stmt.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		for _, st := range s.List {
			if c.walkStmt(st, state) {
				return true
			}
		}
		return false
	case *ast.ExprStmt:
		c.walkExpr(s.X, state, read)
		c.applyExprEffects(s.X, state, false)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if isPanic(c.pass, call) {
				return true
			}
		}
		return false
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.walkExpr(rhs, state, read)
			c.applyExprEffects(rhs, state, false)
		}
		for _, lhs := range s.Lhs {
			c.walkWrite(lhs, state)
		}
		c.applyReturnAcquired(s, state)
		return false
	case *ast.IncDecStmt:
		c.walkWrite(s.X, state)
		return false
	case *ast.DeferStmt:
		// defer x.mu.Unlock(): lock stays held to the end of this function;
		// model as no state change. Other deferred calls: check args now.
		if _, name, ok := c.lockMethod(s.Call); ok && strings.Contains(name, "Unlock") {
			return false
		}
		for _, a := range s.Call.Args {
			c.walkExpr(a, state, read)
		}
		return false
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.walkExpr(a, state, read)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.walkStmt(lit.Body, make(lockState))
		}
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.walkExpr(r, state, read)
			c.applyExprEffects(r, state, false)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto end the straight-line path
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.walkExpr(s.Cond, state, read)

		thenState := state.clone()
		elseState := state.clone()
		// if x.mu.TryLock() { ... } — the then-branch holds the lock.
		if call, ok := ast.Unparen(s.Cond).(*ast.CallExpr); ok {
			if recv, name, isLock := c.lockMethod(call); isLock {
				if root, path, okPath := c.resolvePath(recv); okPath {
					k := lockKey{root: root, path: path}
					switch name {
					case "TryLock":
						thenState[k] = write
					case "TryRLock":
						thenState[k] = read
					}
				}
			}
		}
		thenTerm := c.walkStmt(s.Body, thenState)
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkStmt(s.Else, elseState)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(state, elseState)
		case elseTerm:
			replace(state, thenState)
		default:
			replace(state, thenState.intersect(elseState))
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			c.walkExpr(s.Cond, state, read)
		}
		body := state.clone()
		c.walkStmt(s.Body, body)
		if s.Post != nil {
			c.walkStmt(s.Post, body)
		}
		return false
	case *ast.RangeStmt:
		c.walkExpr(s.X, state, read)
		body := state.clone()
		c.walkStmt(s.Body, body)
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			c.walkExpr(s.Tag, state, read)
		}
		c.walkCases(s.Body, state)
		return false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.walkCases(s.Body, state)
		return false
	case *ast.SelectStmt:
		c.walkCases(s.Body, state)
		return false
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, state)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.walkExpr(v, state, read)
					}
				}
			}
		}
		return false
	case *ast.SendStmt:
		c.walkExpr(s.Chan, state, read)
		c.walkExpr(s.Value, state, read)
		return false
	default:
		return false
	}
}

// walkCases checks each case clause of a switch/select with a clone of the
// entry state; no state escapes.
func (c *checker) walkCases(body *ast.BlockStmt, state lockState) {
	for _, cl := range body.List {
		cs := state.clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.walkExpr(e, cs, read)
			}
			for _, st := range cl.Body {
				if c.walkStmt(st, cs) {
					break
				}
			}
		case *ast.CommClause:
			if cl.Comm != nil {
				c.walkStmt(cl.Comm, cs)
			}
			for _, st := range cl.Body {
				if c.walkStmt(st, cs) {
					break
				}
			}
		}
	}
}

func replace(dst, src lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// applyExprEffects applies lock acquisitions/releases performed by calls in
// e (Lock/Unlock calls, and calls whose contract acquires or releases).
func (c *checker) applyExprEffects(e ast.Expr, state lockState, _ bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, name, isLock := c.lockMethod(call); isLock {
			root, path, okPath := c.resolvePath(recv)
			if !okPath {
				return true
			}
			k := lockKey{root: root, path: path}
			switch name {
			case "Lock":
				state[k] = write
			case "RLock":
				state[k] = read
			case "Unlock", "RUnlock":
				delete(state, k)
			}
			return true
		}
		// Contract effects of an annotated callee.
		fn, _ := typeutil.Callee(c.pass.TypesInfo, call).(*types.Func)
		if fn == nil {
			return true
		}
		fn = fn.Origin()
		fl := c.contracts[fn]
		if fl == nil {
			var imported funcLocks
			if c.pass.ImportObjectFact(fn, &imported) {
				fl = &imported
			}
		}
		if fl == nil {
			return true
		}
		for _, req := range fl.Required {
			if k, ok := c.contractKeyAtCall(call, fn, req); ok {
				if state[k] < write {
					c.pass.Reportf(call.Pos(), "req:locked: call to %s requires %s held",
						fn.Name(), req)
				}
			}
		}
		for _, acq := range fl.Acquired {
			if k, ok := c.contractKeyAtCall(call, fn, acq); ok {
				state[k] = write
			}
		}
		for _, rel := range fl.Released {
			if k, ok := c.contractKeyAtCall(call, fn, rel); ok {
				delete(state, k)
			}
		}
		return true
	})
}

// applyReturnAcquired handles sh := x.f() where f is annotated
// +req:locksAcquired(return.mu): the assignment target receives the named
// lock in write mode (ownership transfers to the caller's variable).
func (c *checker) applyReturnAcquired(as *ast.AssignStmt, state lockState) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, _ := typeutil.Callee(c.pass.TypesInfo, call).(*types.Func)
	if fn == nil {
		return
	}
	fn = fn.Origin()
	fl := c.contracts[fn]
	if fl == nil {
		var imported funcLocks
		if c.pass.ImportObjectFact(fn, &imported) {
			fl = &imported
		}
	}
	if fl == nil {
		return
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	for _, acq := range fl.Acquired {
		root, rest, found := strings.Cut(acq, ".")
		if found && root == "return" {
			state[lockKey{root: obj, path: rest}] = write
		}
	}
}

// contractKeyAtCall maps a callee contract path ("sh.mu", "return.mu") to a
// lock key in the caller's frame: the callee's receiver/parameter name is
// matched to the caller's argument expression. "return.mu" resolves against
// the call's assignment target and is handled by the caller (unsupported
// here — conservatively ignored).
func (c *checker) contractKeyAtCall(call *ast.CallExpr, fn *types.Func, path string) (lockKey, bool) {
	rootName, rest, found := strings.Cut(path, ".")
	if !found || rootName == "return" {
		return lockKey{}, false
	}
	sig := fn.Type().(*types.Signature)
	// Receiver-rooted path: method call x.f(...) with recv name rootName.
	if recv := sig.Recv(); recv != nil && recv.Name() == rootName {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if root, p, ok2 := c.resolvePath(sel.X); ok2 {
				return lockKey{root: root, path: joinPath(p, rest)}, true
			}
		}
		return lockKey{}, false
	}
	// Parameter-rooted path.
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if sig.Params().At(i).Name() == rootName {
			if root, p, ok2 := c.resolvePath(call.Args[i]); ok2 {
				return lockKey{root: root, path: joinPath(p, rest)}, true
			}
		}
	}
	return lockKey{}, false
}

func joinPath(a, b string) string {
	if a == "" {
		return b
	}
	return a + "." + b
}

// walkExpr reports guarded-field accesses in e that lack their lock.
// want is the minimum mode the access needs (read for rvalues).
func (c *checker) walkExpr(e ast.Expr, state lockState, want mode) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A literal invoked under callsWithLock is checked by the
			// enclosing call handling; other literals run later with
			// unknown state — check with what's known minus nothing
			// (conservative: same state) only when immediately invoked.
			c.checkFuncLitArg(e, x, state)
			return false
		case *ast.SelectorExpr:
			c.checkGuardedAccess(x, state, want)
			return true
		}
		return true
	})
}

// checkFuncLitArg checks a function literal appearing inside e. If the
// literal is an argument to a call whose callee is annotated
// callsWithLock(mu), the body is walked with the receiver's mu seeded;
// otherwise with empty state (it may run anywhere).
func (c *checker) checkFuncLitArg(ctx ast.Expr, lit *ast.FuncLit, state lockState) {
	seed := make(lockState)
	call, ok := ast.Unparen(ctx).(*ast.CallExpr)
	if ok {
		for _, a := range call.Args {
			if ast.Unparen(a) == lit {
				if fn, _ := typeutil.Callee(c.pass.TypesInfo, call).(*types.Func); fn != nil {
					fn = fn.Origin()
					fl := c.contracts[fn]
					if fl == nil {
						var imported funcLocks
						if c.pass.ImportObjectFact(fn, &imported) {
							fl = &imported
						}
					}
					if fl != nil && fl.CallsWithLock != "" {
						if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
							if root, p, ok2 := c.resolvePath(sel.X); ok2 {
								seed[lockKey{root: root, path: joinPath(p, fl.CallsWithLock)}] = write
							}
						}
					}
				}
			}
		}
	}
	c.walkStmt(lit.Body, seed)
}

// walkWrite checks a write target: guarded fields need the lock in write
// mode.
func (c *checker) walkWrite(lhs ast.Expr, state lockState) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		c.checkGuardedAccess(x, state, write)
		c.walkExpr(x.X, state, read)
	case *ast.IndexExpr:
		c.walkExpr(x.X, state, read)
		c.walkExpr(x.Index, state, read)
	case *ast.StarExpr:
		c.walkExpr(x.X, state, read)
	case *ast.Ident:
		// Local write; nothing guarded.
	default:
		c.walkExpr(lhs, state, read)
	}
}

// checkGuardedAccess reports sel if it accesses a guarded field without its
// mutex held at the needed strength.
func (c *checker) checkGuardedAccess(sel *ast.SelectorExpr, state lockState, want mode) {
	field, ok := c.fieldOf(sel)
	if !ok {
		return
	}
	muName := c.guards[field]
	if muName == "" {
		var imported guardedBy
		if !c.pass.ImportObjectFact(field, &imported) {
			return
		}
		muName = imported.Mutex
	}
	// The guarding mutex lives on the same struct: replace the final
	// selector with the mutex field name.
	root, path, okPath := c.resolvePath(sel.X)
	if !okPath {
		c.pass.Reportf(sel.Sel.Pos(),
			"req:locked: access to guarded field %s through an unanalyzable path (guard %s unprovable)",
			sel.Sel.Name, muName)
		return
	}
	k := lockKey{root: root, path: joinPath(path, muName)}
	have := state[k]
	if have >= want {
		return
	}
	verb := "read of"
	need := "RLock"
	if want == write {
		verb = "write to"
		need = "Lock"
	}
	lockSpelling := joinPath(path, muName)
	if root != nil {
		lockSpelling = joinPath(root.Name(), lockSpelling)
	}
	c.pass.Reportf(sel.Sel.Pos(),
		"req:locked: %s %s without holding %s (need %s)",
		verb, sel.Sel.Name, lockSpelling, need)
}

// fieldOf resolves a selector to the struct field object it denotes, when
// that field is (locally or via fact) guarded.
func (c *checker) fieldOf(sel *ast.SelectorExpr) (*types.Var, bool) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, false
	}
	// Generic instantiations mint fresh field objects; the annotation lives
	// on the origin (declared) field.
	return v.Origin(), true
}

func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
