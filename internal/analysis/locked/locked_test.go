package locked_test

import (
	"testing"

	"req/internal/analysis/internal/atest"
)

// TestLocked drives the real reqlint binary through
// go vet -json over the golden module in testdata/src and matches the
// diagnostics against its // want comments.
func TestLocked(t *testing.T) {
	atest.Run(t, "locked")
}
