// Package a seeds positive and negative cases for the locked analyzer.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	// +req:guardedBy(mu)
	n int
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++ // ok: lock held
	c.mu.Unlock()
}

func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n // ok: deferred unlock keeps it held
}

func (c *counter) BadInc() {
	c.n++ // want "write to n without holding c.mu"
}

func (c *counter) BadGet() int {
	return c.n // want "read of n without holding c.mu"
}

type gauge struct {
	mu sync.RWMutex
	// +req:guardedBy(mu)
	v float64
}

func (g *gauge) Read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v // ok: read lock suffices for a read
}

func (g *gauge) BadWriteUnderRLock() {
	g.mu.RLock()
	g.v = 1 // want "write to v without holding g.mu \\(need Lock\\)"
	g.mu.RUnlock()
}

func (g *gauge) BadAfterUnlock() float64 {
	g.mu.Lock()
	g.mu.Unlock()
	return g.v // want "read of v without holding g.mu"
}

// +req:locksRequired(g.mu)
func (g *gauge) setLocked(x float64) {
	g.v = x // ok: contract says callers hold mu
}

func (g *gauge) Set(x float64) {
	g.mu.Lock()
	g.setLocked(x) // ok: lock held at the call
	g.mu.Unlock()
}

func (g *gauge) BadSet(x float64) {
	g.setLocked(x) // want "call to setLocked requires g.mu held"
}

// +req:callsWithLock(mu)
func (g *gauge) withLock(f func()) {
	g.mu.Lock()
	f()
	g.mu.Unlock()
}

func (g *gauge) ViaCallback() {
	g.withLock(func() {
		g.v = 2 // ok: callback runs under mu
	})
}

func (g *gauge) BadGoroutine() {
	g.mu.Lock()
	go func() {
		g.v = 3 // want "write to v without holding g.mu"
	}()
	g.mu.Unlock()
}

func (g *gauge) TryPath() bool {
	if g.mu.TryLock() {
		g.v = 4 // ok: TryLock succeeded on this branch
		g.mu.Unlock()
		return true
	}
	return false
}

func (g *gauge) BothBranchesLock(b bool) {
	if b {
		g.mu.Lock()
	} else {
		g.mu.Lock()
	}
	g.v = 5 // ok: every path acquired the lock
	g.mu.Unlock()
}

func (g *gauge) BadOneBranch(b bool) {
	if b {
		g.mu.Lock()
		g.v = 6 // ok inside the locked branch
		g.mu.Unlock()
	}
	g.v = 7 // want "write to v without holding g.mu"
}

type pool struct {
	shards []*counter
}

// pick returns the first shard with its lock held.
//
// +req:locksAcquired(return.mu)
func (p *pool) pick() *counter {
	c := p.shards[0]
	c.mu.Lock()
	return c
}

// release gives a picked shard back.
//
// +req:locksRequired(c.mu)
// +req:locksReleased(c.mu)
func (p *pool) release(c *counter) {
	c.mu.Unlock()
}

func (p *pool) Inc() {
	c := p.pick()
	c.n++ // ok: pick transferred mu ownership to c
	p.release(c)
}

func (p *pool) BadAfterRelease() {
	c := p.pick()
	p.release(c)
	c.n++ // want "write to n without holding c.mu"
}

func (p *pool) BadNoPick() {
	c := p.shards[0]
	p.release(c) // want "call to release requires c.mu held"
}

func (g *gauge) BadLoopCarry() {
	g.mu.Lock()
	g.mu.Unlock()
	for i := 0; i < 3; i++ {
		g.v = float64(i) // want "write to v without holding g.mu"
	}
}
