// Package ddsketch implements DDSketch (Masson, Rim, Lee: "DDSketch: A fast
// and fully-mergeable quantile sketch with relative-error guarantees",
// VLDB 2019) for positive float64 values.
//
// DDSketch guarantees *value*-relative error: the returned quantile ŷ
// satisfies |ŷ − y| ≤ α·|y|. The REQ paper (Section 1.1) points out this is
// a very different — and weaker — notion than rank-relative error: it only
// makes sense for numeric data, is not invariant under shifting the data,
// and is trivially achieved by a log-scaled histogram, which is exactly what
// DDSketch is. The harness includes it to demonstrate the distinction
// empirically (experiment E4 reports both value error and rank error).
//
// Values map to geometric buckets: index(v) = ⌈log_γ(v)⌉ with
// γ = (1+α)/(1−α). When the bucket count exceeds MaxBuckets the lowest
// buckets collapse into one (the paper's collapsing variant), preserving
// the guarantee for high quantiles.
package ddsketch

import (
	"errors"
	"math"
	"sort"
)

// DefaultMaxBuckets bounds the bucket map size, matching the paper's
// recommended default of 2048.
const DefaultMaxBuckets = 2048

// Sketch is a collapsing DDSketch for values > 0 (zeros are counted
// separately; negative values are rejected, as in the original store).
// Not safe for concurrent use.
type Sketch struct {
	alpha      float64
	gamma      float64
	lnGamma    float64
	counts     map[int]uint64
	zeroCount  uint64
	n          uint64
	maxBuckets int
	minKey     int // smallest non-collapsed key (valid when collapsed)
	collapsed  bool
	minV, maxV float64
}

// New returns an empty DDSketch with value-relative accuracy alpha ∈ (0, 1)
// and the default bucket budget.
func New(alpha float64) (*Sketch, error) {
	return NewWithMaxBuckets(alpha, DefaultMaxBuckets)
}

// NewWithMaxBuckets returns an empty DDSketch with an explicit bucket budget.
func NewWithMaxBuckets(alpha float64, maxBuckets int) (*Sketch, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, errors.New("ddsketch: alpha out of (0, 1)")
	}
	if maxBuckets < 2 {
		return nil, errors.New("ddsketch: need at least 2 buckets")
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:      alpha,
		gamma:      gamma,
		lnGamma:    math.Log(gamma),
		counts:     make(map[int]uint64),
		maxBuckets: maxBuckets,
		minV:       math.Inf(1),
		maxV:       math.Inf(-1),
	}, nil
}

// Alpha returns the accuracy parameter.
func (s *Sketch) Alpha() float64 { return s.alpha }

// N returns the number of values summarised.
func (s *Sketch) N() uint64 { return s.n }

// ItemsRetained returns the number of non-empty buckets (the sketch's
// storage footprint in "items").
func (s *Sketch) ItemsRetained() int {
	extra := 0
	if s.zeroCount > 0 {
		extra = 1
	}
	return len(s.counts) + extra
}

// key returns the bucket index of v > 0.
func (s *Sketch) key(v float64) int {
	return int(math.Ceil(math.Log(v) / s.lnGamma))
}

// value returns the representative value of bucket k: 2γ^k/(γ+1), the
// midpoint that guarantees α relative error for any value in the bucket.
func (s *Sketch) value(k int) float64 {
	return 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
}

// Update inserts one value. Values must be ≥ 0; NaN, Inf and negative
// values return an error.
func (s *Sketch) Update(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return errors.New("ddsketch: value must be a finite non-negative number")
	}
	s.n++
	if v < s.minV {
		s.minV = v
	}
	if v > s.maxV {
		s.maxV = v
	}
	if v == 0 {
		s.zeroCount++
		return nil
	}
	k := s.key(v)
	if s.collapsed && k < s.minKey {
		k = s.minKey
	}
	s.counts[k]++
	if len(s.counts) > s.maxBuckets {
		s.collapseLowest()
	}
	return nil
}

// collapseLowest merges the two lowest buckets, preserving accuracy at high
// quantiles (the collapsing store of the paper).
func (s *Sketch) collapseLowest() {
	keys := s.sortedKeys()
	if len(keys) < 2 {
		return
	}
	lo, next := keys[0], keys[1]
	s.counts[next] += s.counts[lo]
	delete(s.counts, lo)
	s.minKey = next
	s.collapsed = true
}

func (s *Sketch) sortedKeys() []int {
	keys := make([]int, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Quantile returns the estimated φ-quantile, φ ∈ [0, 1], with value-relative
// guarantee |ŷ − y| ≤ α·y (for non-collapsed quantiles).
func (s *Sketch) Quantile(phi float64) (float64, error) {
	if s.n == 0 {
		return 0, errors.New("ddsketch: empty sketch")
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return 0, errors.New("ddsketch: rank out of [0, 1]")
	}
	target := uint64(math.Ceil(phi * float64(s.n)))
	if target == 0 {
		target = 1
	}
	if target <= s.zeroCount {
		return 0, nil
	}
	run := s.zeroCount
	for _, k := range s.sortedKeys() {
		run += s.counts[k]
		if run >= target {
			return s.value(k), nil
		}
	}
	return s.maxV, nil
}

// Rank returns the estimated inclusive rank of y. DDSketch is not designed
// for rank queries — the harness uses this to measure its rank-relative
// error and show how the value-error guarantee differs from REQ's.
func (s *Sketch) Rank(y float64) uint64 {
	if s.n == 0 || y < 0 {
		return 0
	}
	run := uint64(0)
	if y >= 0 {
		run = s.zeroCount
	}
	if y <= 0 {
		return run
	}
	ky := s.key(y)
	for k, c := range s.counts {
		if k <= ky {
			run += c
		}
	}
	return run
}

// Min returns the exact minimum. ok is false when empty.
func (s *Sketch) Min() (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	return s.minV, true
}

// Max returns the exact maximum. ok is false when empty.
func (s *Sketch) Max() (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	return s.maxV, true
}

// Merge absorbs other into s. Both sketches must share alpha.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other == s {
		return errors.New("ddsketch: cannot merge a sketch into itself")
	}
	if other.alpha != s.alpha {
		return errors.New("ddsketch: cannot merge sketches with different alpha")
	}
	for k, c := range other.counts {
		kk := k
		if s.collapsed && kk < s.minKey {
			kk = s.minKey
		}
		s.counts[kk] += c
	}
	s.zeroCount += other.zeroCount
	s.n += other.n
	if other.minV < s.minV {
		s.minV = other.minV
	}
	if other.maxV > s.maxV {
		s.maxV = other.maxV
	}
	for len(s.counts) > s.maxBuckets {
		s.collapseLowest()
	}
	return nil
}
