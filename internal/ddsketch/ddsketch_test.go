package ddsketch

import (
	"math"
	"sort"
	"testing"

	"req/internal/rng"
)

func TestNewValidation(t *testing.T) {
	for _, a := range []float64{0, -1, 1, 2} {
		if _, err := New(a); err == nil {
			t.Errorf("alpha=%v accepted", a)
		}
	}
	if _, err := NewWithMaxBuckets(0.01, 1); err == nil {
		t.Fatal("1 bucket accepted")
	}
}

func TestEmpty(t *testing.T) {
	s, _ := New(0.01)
	if s.N() != 0 || s.Rank(1) != 0 {
		t.Fatal("empty misbehaves")
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Fatal("quantile on empty accepted")
	}
}

func TestRejectsInvalidValues(t *testing.T) {
	s, _ := New(0.01)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		if err := s.Update(v); err == nil {
			t.Errorf("Update(%v) accepted", v)
		}
	}
	if s.N() != 0 {
		t.Fatal("invalid values counted")
	}
}

func TestValueRelativeGuarantee(t *testing.T) {
	// The defining property: quantile values are within α of the true value.
	const n = 100000
	const alpha = 0.01
	s, _ := New(alpha)
	r := rng.New(1)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Exp(r.NormFloat64() * 2) // heavy spread over decades
		if err := s.Update(vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]float64(nil), vals...)
	sortF(sorted)
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999} {
		got, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		idx := int(math.Ceil(phi*n)) - 1
		if idx < 0 {
			idx = 0
		}
		truth := sorted[idx]
		if math.Abs(got-truth) > alpha*truth*1.01 {
			t.Errorf("phi=%v: value %v vs truth %v exceeds α", phi, got, truth)
		}
	}
}

func TestZeros(t *testing.T) {
	s, _ := New(0.01)
	for i := 0; i < 100; i++ {
		if err := s.Update(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Update(5); err != nil {
		t.Fatal(err)
	}
	q, err := s.Quantile(0.5)
	if err != nil || q != 0 {
		t.Fatalf("median with zeros = %v, %v", q, err)
	}
	if s.Rank(0) != 100 {
		t.Fatalf("Rank(0) = %d", s.Rank(0))
	}
}

func TestBucketCollapse(t *testing.T) {
	s, err := NewWithMaxBuckets(0.01, 32)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 100000; i++ {
		if err := s.Update(math.Exp(r.NormFloat64() * 4)); err != nil {
			t.Fatal(err)
		}
	}
	if s.ItemsRetained() > 33 {
		t.Fatalf("bucket budget exceeded: %d", s.ItemsRetained())
	}
	// High quantiles must still be accurate after collapsing low buckets.
	q99, err := s.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if q99 <= 0 {
		t.Fatalf("q99 = %v", q99)
	}
}

func TestSpaceIndependentOfN(t *testing.T) {
	mk := func(n int) int {
		s, _ := New(0.02)
		r := rng.New(3)
		for i := 0; i < n; i++ {
			_ = s.Update(1 + r.Float64()*1000)
		}
		return s.ItemsRetained()
	}
	small, large := mk(10000), mk(300000)
	// The footprint converges to the number of buckets needed to cover the
	// value range (≈ log_γ(1000) ≈ 173 for α = 0.02), independent of n.
	coverage := int(math.Log(1000)/math.Log(1.02/0.98)) + 4
	if large > coverage {
		t.Fatalf("DDSketch footprint %d exceeds range coverage %d", large, coverage)
	}
	if large > small+small/4+32 {
		t.Fatalf("DDSketch footprint grew with n: %d -> %d", small, large)
	}
}

func TestRankMonotone(t *testing.T) {
	s, _ := New(0.02)
	r := rng.New(4)
	for i := 0; i < 50000; i++ {
		_ = s.Update(1 + r.Float64()*999)
	}
	prev := uint64(0)
	for y := 0.5; y < 1100; y += 3.7 {
		got := s.Rank(y)
		if got < prev {
			t.Fatalf("rank decreased at %v", y)
		}
		prev = got
	}
}

func TestMerge(t *testing.T) {
	a, _ := New(0.01)
	b, _ := New(0.01)
	r := rng.New(5)
	for i := 0; i < 50000; i++ {
		_ = a.Update(1 + r.Float64()*100)
		_ = b.Update(100 + r.Float64()*100)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 100000 {
		t.Fatalf("merged N = %d", a.N())
	}
	q50, err := a.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q50 < 80 || q50 > 130 {
		t.Fatalf("merged median %v implausible", q50)
	}
}

func TestMergeIncompatible(t *testing.T) {
	a, _ := New(0.01)
	b, _ := New(0.02)
	b.n = 1
	if err := a.Merge(b); err == nil {
		t.Fatal("different alpha accepted")
	}
	a.Update(1)
	if err := a.Merge(a); err == nil {
		t.Fatal("self merge accepted")
	}
}

func TestMinMaxExact(t *testing.T) {
	s, _ := New(0.01)
	for _, v := range []float64{5, 2, 9, 3} {
		_ = s.Update(v)
	}
	mn, _ := s.Min()
	mx, _ := s.Max()
	if mn != 2 || mx != 9 {
		t.Fatalf("min/max %v/%v", mn, mx)
	}
}

func TestKeyValueRoundTrip(t *testing.T) {
	s, _ := New(0.01)
	for _, v := range []float64{0.001, 0.5, 1, 7.3, 1e6} {
		k := s.key(v)
		rep := s.value(k)
		if math.Abs(rep-v) > s.alpha*v*1.001 {
			t.Errorf("bucket representative %v for %v breaks α", rep, v)
		}
	}
}

func sortF(xs []float64) { sort.Float64s(xs) }
