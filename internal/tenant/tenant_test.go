package tenant

import (
	"sync"
	"testing"
)

// payload is a test entry: records its init seq and how many times it was
// recycled, so tests can prove arena reuse vs fresh allocation.
type payload struct {
	seq     uint64
	reuses  int
	updates int
}

func newTestMap(cfg Config) *Map[uint64, payload] {
	return NewMap[uint64, payload](cfg,
		func(e *payload, seq uint64) { *e = payload{seq: seq} },
		func(e *payload) { e.reuses++; e.updates = 0 },
	)
}

func touch(m *Map[uint64, payload], key uint64, now int64) *payload {
	sh := m.Lock(key)
	defer sh.Unlock()
	e, _ := m.GetOrCreate(sh, key, now)
	e.updates++
	return e
}

func lookup(m *Map[uint64, payload], key uint64, now int64) *payload {
	sh := m.Lock(key)
	defer sh.Unlock()
	return m.Get(sh, key, now)
}

func TestGetOrCreateAndGet(t *testing.T) {
	m := newTestMap(Config{Shards: 4})
	if got := lookup(m, 7, 0); got != nil {
		t.Fatalf("lookup of absent key returned %v", got)
	}
	e := touch(m, 7, 10)
	if e.updates != 1 {
		t.Fatalf("updates = %d, want 1", e.updates)
	}
	if e2 := touch(m, 7, 20); e2 != e {
		t.Fatalf("second GetOrCreate returned a different cell")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	for k := uint64(0); k < 100; k++ {
		touch(m, k, 30)
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d, want 100", m.Len())
	}
}

func TestSeqUnique(t *testing.T) {
	m := newTestMap(Config{Shards: 8})
	seen := make(map[uint64]bool)
	for k := uint64(0); k < 1000; k++ {
		e := touch(m, k, 0)
		if seen[e.seq] {
			t.Fatalf("seq %d assigned twice", e.seq)
		}
		seen[e.seq] = true
	}
}

func TestDeleteRecyclesCell(t *testing.T) {
	m := newTestMap(Config{Shards: 1})
	e1 := touch(m, 1, 0)
	sh := m.Lock(1)
	if !m.Delete(sh, 1) {
		t.Fatal("Delete of resident key returned false")
	}
	if m.Delete(sh, 1) {
		t.Fatal("Delete of absent key returned true")
	}
	sh.Unlock()
	// The next create on this shard must reuse the freed cell.
	e2 := touch(m, 2, 0)
	if e1 != e2 {
		t.Fatal("freed cell was not recycled")
	}
	if e2.reuses != 1 {
		t.Fatalf("reuse hook ran %d times, want 1", e2.reuses)
	}
	if got := m.Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
}

func TestTTLLazyEviction(t *testing.T) {
	m := newTestMap(Config{Shards: 1, TTL: 100})
	touch(m, 1, 0)
	if lookup(m, 1, 99) == nil {
		t.Fatal("entry evicted before TTL")
	}
	// The lookup at t=99 refreshed the TTL; expiry counts from there.
	if lookup(m, 1, 198) == nil {
		t.Fatal("entry evicted before refreshed TTL")
	}
	if lookup(m, 1, 298) != nil {
		t.Fatal("expired entry still visible")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after lazy eviction, want 0", m.Len())
	}
	// GetOrCreate over an expired entry restarts it in place.
	e := touch(m, 2, 0)
	if e.updates != 1 {
		t.Fatalf("updates = %d, want 1", e.updates)
	}
	e.updates = 5
	sh := m.Lock(2)
	e2, created := m.GetOrCreate(sh, 2, 1000)
	sh.Unlock()
	if !created {
		t.Fatal("expired entry not reported as created")
	}
	if e2 != e {
		t.Fatal("expired entry restarted in a different cell")
	}
	// The cell was recycled once at creation (key 1's freed cell) and once
	// more by the in-place restart.
	if e2.updates != 0 || e2.reuses != 2 {
		t.Fatalf("restart did not run the reuse hook: %+v", *e2)
	}
}

func TestExpireNow(t *testing.T) {
	m := newTestMap(Config{Shards: 4, TTL: 100})
	for k := uint64(0); k < 64; k++ {
		touch(m, k, int64(k)) // staggered touch times 0..63
	}
	// At now=120, keys touched at t<=20 have idle age >= 100 and expire.
	if got := m.ExpireNow(120); got != 21 {
		t.Fatalf("ExpireNow reclaimed %d, want 21", got)
	}
	if m.Len() != 43 {
		t.Fatalf("Len = %d, want 43", m.Len())
	}
	// Without a TTL the sweep is a no-op.
	m2 := newTestMap(Config{})
	touch(m2, 1, 0)
	if got := m2.ExpireNow(1 << 60); got != 0 {
		t.Fatalf("ExpireNow without TTL reclaimed %d", got)
	}
}

func TestMaxEntriesClockHand(t *testing.T) {
	m := newTestMap(Config{Shards: 1, MaxEntries: 4})
	for k := uint64(0); k < 4; k++ {
		touch(m, k, 0)
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
	// All four cells carry fresh reference bits, so the first capped insert
	// costs one full clearing lap and then evicts the first arena cell
	// (key 0): with no accesses between laps everyone looks equally cold.
	touch(m, 100, 2)
	if m.Len() != 4 {
		t.Fatalf("Len = %d after capped insert, want 4", m.Len())
	}
	if lookup(m, 0, 3) != nil {
		t.Fatal("expected the uniformly-cold first cell to be evicted")
	}
	if got := m.Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	// Second chance proper: key 1 is re-touched after the clearing lap, so
	// its bit is set again while keys 2 and 3 stay cleared. The hand (now
	// past cell 0) must skip key 1 and take key 2.
	lookup(m, 1, 4)
	touch(m, 200, 5)
	if lookup(m, 1, 6) == nil {
		t.Fatal("hot key evicted while cold keys were available")
	}
	if lookup(m, 2, 6) != nil {
		t.Fatal("expected the cold key under the hand to be evicted")
	}
	if lookup(m, 200, 6) == nil {
		t.Fatal("newly inserted key missing")
	}
	// Churn far past capacity: resident count stays capped and the arena
	// stops growing (all creates come from the freelist).
	for k := uint64(1000); k < 2000; k++ {
		touch(m, k, 10)
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d after churn, want 4", m.Len())
	}
	sh := m.LockShard(0)
	used := sh.used
	sh.Unlock()
	if used > 8 {
		t.Fatalf("arena grew to %d cells under churn; recycling broken", used)
	}
}

func TestVisit(t *testing.T) {
	m := newTestMap(Config{Shards: 2, TTL: 100})
	for k := uint64(0); k < 10; k++ {
		touch(m, k, 0)
	}
	touch(m, 10, 500) // everything else will be expired at now=500
	got := map[uint64]bool{}
	m.Visit(500, func(key uint64, e *payload) bool {
		got[key] = true
		return true
	})
	if len(got) != 1 || !got[10] {
		t.Fatalf("Visit saw %v, want only key 10", got)
	}
	// Early stop.
	calls := 0
	m2 := newTestMap(Config{Shards: 1})
	for k := uint64(0); k < 10; k++ {
		touch(m2, k, 0)
	}
	m2.Visit(0, func(uint64, *payload) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("Visit after stop made %d calls, want 1", calls)
	}
}

func TestReset(t *testing.T) {
	m := newTestMap(Config{Shards: 2})
	for k := uint64(0); k < 100; k++ {
		touch(m, k, 0)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", m.Len())
	}
	touch(m, 1, 0)
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestConcurrent(t *testing.T) {
	m := newTestMap(Config{Shards: 4, MaxEntries: 256, TTL: 1 << 40})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64(g*1000 + i%500)
				touch(m, k, int64(i))
				if i%3 == 0 {
					lookup(m, k, int64(i))
				}
				if i%97 == 0 {
					sh := m.Lock(k)
					m.Delete(sh, k)
					sh.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() > 256+4 { // per-shard cap is ceil(256/4); slight slack is a bug
		t.Fatalf("Len = %d exceeds cap", m.Len())
	}
}
