package tenant

import (
	"math/rand"
	"testing"
)

// planned replays a plan into (key → indices in order) plus the shard walk
// order, so properties can be checked against a brute-force grouping. It
// consumes runs exactly as the ingest pipeline does: contiguous runs are
// the index range head..head+n-1 (their chain is unwritten by contract),
// fragmented runs walk Next.
func planned(b *Batch[uint64], keys []uint64) (map[uint64][]int, []int) {
	got := map[uint64][]int{}
	shards := make([]int, 0, b.Runs())
	for i := 0; i < b.Runs(); i++ {
		head, n, shard := b.Run(i)
		shards = append(shards, shard)
		idxs := make([]int, 0, n)
		if b.Contiguous(i) {
			for j := 0; j < n; j++ {
				idxs = append(idxs, head+j)
			}
		} else {
			for j := head; j >= 0; j = b.Next(j) {
				idxs = append(idxs, j)
			}
		}
		if len(idxs) != n {
			panic("run length mismatch")
		}
		got[keys[head]] = idxs
	}
	return got, shards
}

func TestPlanBatchProperties(t *testing.T) {
	m := newTestMap(Config{Shards: 8})
	var b Batch[uint64]
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		n := r.Intn(200)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(r.Intn(1 + n/4)) // plenty of repeats
		}
		m.PlanBatch(&b, keys)

		// Brute-force reference grouping: per key, indices in input order.
		want := map[uint64][]int{}
		for i, k := range keys {
			want[k] = append(want[k], i)
		}
		got, shards := planned(&b, keys)
		if len(got) != len(want) || b.Runs() != len(want) {
			t.Fatalf("iter %d: %d runs for %d distinct keys", iter, b.Runs(), len(want))
		}
		for k, idxs := range want {
			g := got[k]
			if len(g) != len(idxs) {
				t.Fatalf("iter %d key %d: chain %v want %v", iter, k, g, idxs)
			}
			for j := range idxs {
				if g[j] != idxs[j] {
					t.Fatalf("iter %d key %d: chain %v want %v (input order broken)", iter, k, g, idxs)
				}
			}
		}
		// Runs are grouped by shard: each shard's runs are adjacent.
		seen := map[int]bool{}
		for j, s := range shards {
			if j > 0 && s != shards[j-1] && seen[s] {
				t.Fatalf("iter %d: shard %d appears in two separate groups (%v)", iter, s, shards)
			}
			seen[s] = true
		}
		// Contiguous agrees with the brute-force grouping: true exactly when
		// the key's occurrences are consecutive input indices. (The per-key
		// chain/slice equality above already proved both consumption paths;
		// this pins the predicate that selects between them.)
		for i := 0; i < b.Runs(); i++ {
			head, cnt, _ := b.Run(i)
			idxs := want[keys[head]]
			consec := idxs[len(idxs)-1]-idxs[0]+1 == len(idxs)
			if b.Contiguous(i) != consec {
				t.Fatalf("iter %d run %d (head %d, n %d): Contiguous=%v, occurrences %v", iter, i, head, cnt, b.Contiguous(i), idxs)
			}
		}
	}
}

func TestPlanBatchShardMatchesLock(t *testing.T) {
	// The shard a run reports must be the shard Lock(key) would take.
	m := newTestMap(Config{Shards: 8})
	var b Batch[uint64]
	keys := make([]uint64, 512)
	for i := range keys {
		keys[i] = uint64(i % 100)
	}
	m.PlanBatch(&b, keys)
	for i := 0; i < b.Runs(); i++ {
		head, _, shard := b.Run(i)
		sh := m.Lock(keys[head])
		idx := sh.idx
		sh.Unlock()
		if idx != shard {
			t.Fatalf("run %d (key %d): planned shard %d, Lock picks %d", i, keys[head], shard, idx)
		}
	}
}

func TestPlanBatchReuseNoGrowth(t *testing.T) {
	// Replanning batches no larger than the first must not allocate.
	m := newTestMap(Config{Shards: 4})
	var b Batch[uint64]
	keys := make([]uint64, 1024)
	r := rand.New(rand.NewSource(9))
	fill := func(distinct int) {
		for i := range keys {
			keys[i] = uint64(r.Intn(distinct))
		}
	}
	fill(300)
	m.PlanBatch(&b, keys) // grow once
	allocs := testing.AllocsPerRun(50, func() {
		fill(50 + r.Intn(300))
		m.PlanBatch(&b, keys)
	})
	if allocs != 0 {
		t.Fatalf("steady-state PlanBatch allocates %v/op", allocs)
	}
}

func TestGetOrCreateRunMatchesGetOrCreate(t *testing.T) {
	// GetOrCreateRun must be GetOrCreate exactly: lazy creation, identity on
	// re-resolution, and in-place restart of a TTL-expired entry.
	m := newTestMap(Config{Shards: 4, TTL: 100})
	sh := m.Lock(7)
	e1, created := m.GetOrCreateRun(sh, 7, 0)
	if !created {
		t.Fatal("first resolution did not create")
	}
	e2, created := m.GetOrCreateRun(sh, 7, 10)
	if created || e2 != e1 {
		t.Fatalf("re-resolution: created=%v same=%v", created, e2 == e1)
	}
	if got := m.Get(sh, 7, 20); got != e1 {
		t.Fatal("Get does not see the run-created entry")
	}
	e3, created := m.GetOrCreateRun(sh, 7, 500) // past TTL: restart in place
	if !created || e3 != e1 || e3.reuses != 1 {
		t.Fatalf("expired restart: created=%v same=%v reuses=%d", created, e3 == e1, e3.reuses)
	}
	sh.Unlock()
}
