// Package tenant implements the sharded keyed-entry machinery underneath
// the root package's multi-tenant registries: a concurrent map from keys to
// arena-allocated entries with per-shard locking, slab-style block arenas,
// a per-shard freelist that recycles evicted entries (storage capacity and
// all) instead of handing them to the GC, and combined TTL + max-entries
// eviction driven by a clock-hand (second-chance) sweep.
//
// # Memory model
//
// Entries live in fixed-size blocks ([blockSize]cell arrays) owned by their
// shard; a cell is never individually allocated or freed. Eviction unlinks
// the cell from the shard map and pushes it onto the shard's freelist; the
// next creation pops it and calls the owner's reuse hook, which resets the
// payload in place — for a registry entry that means core.Sketch.Reset,
// which keeps the sketch's grown level slab. Under key churn the steady
// state therefore allocates nothing per create/evict cycle: the arena and
// the slabs inside it are recycled, not reallocated.
//
// # Eviction
//
// Each cell carries a last-touch timestamp and a reference bit, both
// refreshed on every access. When a creation would push a shard past its
// entry budget, a clock hand walks the shard's arena cells in order:
// TTL-expired cells are evicted on sight; referenced cells get their bit
// cleared and one more round of grace; unreferenced cells are evicted.
// TTL expiry is additionally enforced lazily (an expired entry found by a
// lookup is evicted on the spot, and a creation over an expired entry
// restarts it in place) and eagerly by ExpireNow sweeps.
//
// Timestamps are caller-supplied nanoseconds: the registry layer owns the
// clock (wall time by default, synthetic in tests), this package only
// compares the numbers it is handed.
//
// # Locking
//
// One mutex per shard guards that shard's map, arena, freelist, and hand.
// Lock returns the locked shard for a key (the +req:locksAcquired
// contract); every entry operation requires it. The Aux field gives the
// owner a per-shard scratch slot under the same lock — the windowed
// registry keeps its reusable merge stage there.
package tenant

import (
	"hash/maphash"
	"runtime"
	"sync"
)

// blockSize is the arena block length in cells. 256 cells of a
// sketch-sized payload is a few tens of kilobytes per block: large enough
// to amortize block allocation to noise, small enough that a lightly
// populated shard wastes little.
const blockSize = 256

// Config sizes a Map.
type Config struct {
	// Shards is the shard count, rounded up to a power of two; zero means
	// GOMAXPROCS-scaled.
	Shards int
	// MaxEntries caps the total resident entry count, split evenly across
	// shards (each shard enforces ceil(MaxEntries/shards)). Zero means
	// unbounded.
	MaxEntries int
	// TTL is the idle time-to-live in nanoseconds; entries untouched for
	// at least TTL are evictable and treated as absent by lookups. Zero
	// means no TTL.
	TTL int64
}

// cell is one arena slot: the owner's payload plus the bookkeeping the
// map and the eviction hand need. Cells are addressed both by the shard
// map (by key) and by the clock hand (by arena position).
type cell[K comparable, E any] struct {
	val   E
	key   K
	touch int64 // last access, caller-clock nanoseconds
	live  bool  // resident (in the shard map) vs free
	ref   bool  // second-chance bit, set on every access
}

// Shard is one stripe of a Map: a keyed view of its arena cells behind one
// mutex.
type Shard[K comparable, E any] struct {
	mu sync.Mutex
	// +req:guardedBy(mu)
	m map[K]*cell[K, E]
	// blocks is the cell arena; cells are handed out in order, so
	// blocks[i/blockSize].cells[i%blockSize] is the i-th ever allocated.
	//
	// +req:guardedBy(mu)
	blocks []*block[K, E]
	// +req:guardedBy(mu)
	used int // cells handed out (live + free), ≤ len(blocks)·blockSize
	// +req:guardedBy(mu)
	free []*cell[K, E]
	// hand is the clock-hand position in [0, used): the next arena cell
	// the eviction sweep will examine.
	//
	// +req:guardedBy(mu)
	hand int
	// +req:guardedBy(mu)
	evictions uint64
	// Aux is a scratch slot for the Map's owner, guarded by the shard
	// lock like everything else here; the windowed registry stages its
	// per-query merges in it.
	//
	// +req:guardedBy(mu)
	Aux any

	idx int // this shard's index (immutable after init)
}

// block is one arena allocation: blockSize cells in a single backing
// array, so cell pointers are stable for the life of the shard.
type block[K comparable, E any] struct {
	cells [blockSize]cell[K, E]
}

// Map is a sharded keyed arena map. K is the tenant key; E is the payload
// embedded by value in each arena cell.
type Map[K comparable, E any] struct {
	shards []*Shard[K, E]
	mask   uint64
	hseed  maphash.Seed

	maxPerShard int // 0 = unbounded
	ttl         int64

	// initCell initializes a freshly allocated payload; seq is a
	// map-unique allocation sequence number (the registry derives per-key
	// sketch seeds from it). reuseCell resets a recycled payload in place,
	// keeping its grown storage.
	initCell  func(e *E, seq uint64)
	reuseCell func(e *E)
}

// NewMap returns an empty Map. initCell runs once per arena-fresh cell;
// reuseCell runs on every freelist recycle (and on in-place restart of a
// TTL-expired entry). Both run under the owning shard's lock.
func NewMap[K comparable, E any](cfg Config, initCell func(e *E, seq uint64), reuseCell func(e *E)) *Map[K, E] {
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n = int(ceilPow2(uint64(n)))
	m := &Map[K, E]{
		shards:    make([]*Shard[K, E], n),
		mask:      uint64(n - 1),
		hseed:     maphash.MakeSeed(),
		ttl:       cfg.TTL,
		initCell:  initCell,
		reuseCell: reuseCell,
	}
	if cfg.MaxEntries > 0 {
		m.maxPerShard = (cfg.MaxEntries + n - 1) / n
		if m.maxPerShard < 1 {
			m.maxPerShard = 1
		}
	}
	for i := range m.shards {
		m.shards[i] = &Shard[K, E]{m: make(map[K]*cell[K, E]), idx: i}
	}
	return m
}

// ceilPow2 rounds n up to a power of two (n ≥ 1).
func ceilPow2(n uint64) uint64 {
	if n <= 1 {
		return 1
	}
	p := uint64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// NumShards returns the shard count.
func (m *Map[K, E]) NumShards() int { return len(m.shards) }

// CopyHashSeed adopts src's key-hash seed, so both maps send every key to
// the same shard index — the determinism hook differential tests use to
// compare two identically-fed maps cell for cell (shard assignment drives
// allocation sequence numbers, and with them any seq-derived payload
// state). Call it before the first key is inserted.
func (m *Map[K, E]) CopyHashSeed(src *Map[K, E]) { m.hseed = src.hseed }

// TTL returns the configured idle time-to-live in nanoseconds (0 = none).
func (m *Map[K, E]) TTL() int64 { return m.ttl }

// Lock locks and returns the shard owning key. Every entry operation
// takes the returned shard; call Unlock when done.
//
// +req:locksAcquired(return.mu)
func (m *Map[K, E]) Lock(key K) *Shard[K, E] {
	sh := m.shards[maphash.Comparable(m.hseed, key)&m.mask]
	sh.mu.Lock()
	return sh
}

// LockShard locks and returns shard i (for whole-map sweeps and exports).
//
// +req:locksAcquired(return.mu)
func (m *Map[K, E]) LockShard(i int) *Shard[K, E] {
	sh := m.shards[i]
	sh.mu.Lock()
	return sh
}

// Unlock releases the shard lock.
//
// +req:locksRequired(sh.mu)
// +req:locksReleased(sh.mu)
func (sh *Shard[K, E]) Unlock() { sh.mu.Unlock() }

// expired reports whether a cell's idle time has exceeded the TTL at
// caller-clock time now.
func (m *Map[K, E]) expired(c *cell[K, E], now int64) bool {
	return m.ttl > 0 && now-c.touch >= m.ttl
}

// Get returns the entry for key, refreshing its TTL and reference bit, or
// nil when the key is absent. A TTL-expired entry counts as absent and is
// evicted on the spot (its storage goes to the freelist).
//
// +req:locksRequired(sh.mu)
func (m *Map[K, E]) Get(sh *Shard[K, E], key K, now int64) *E {
	c := sh.m[key]
	if c == nil {
		return nil
	}
	if m.expired(c, now) {
		m.evict(sh, c)
		return nil
	}
	c.touch = now
	c.ref = true
	return &c.val
}

// Peek returns the entry for key without refreshing TTL or reference
// state (expired entries still read as absent, but are left in place).
//
// +req:locksRequired(sh.mu)
func (m *Map[K, E]) Peek(sh *Shard[K, E], key K, now int64) *E {
	c := sh.m[key]
	if c == nil || m.expired(c, now) {
		return nil
	}
	return &c.val
}

// GetOrCreate returns the entry for key, creating it if absent (lazy
// per-key growth: the first Update of a key is what materializes its
// entry). A TTL-expired existing entry is restarted in place through the
// reuse hook — same cell, same storage, fresh logical state. Creation
// over a full shard first runs the eviction hand; created reports whether
// the returned entry is logically new (fresh, recycled, or restarted).
//
// +req:locksRequired(sh.mu)
func (m *Map[K, E]) GetOrCreate(sh *Shard[K, E], key K, now int64) (e *E, created bool) {
	if c := sh.m[key]; c != nil {
		if m.expired(c, now) {
			m.reuseCell(&c.val)
			c.touch = now
			c.ref = true
			return &c.val, true
		}
		c.touch = now
		c.ref = true
		return &c.val, false
	}
	if m.maxPerShard > 0 && len(sh.m) >= m.maxPerShard {
		m.evictOne(sh, now)
	}
	c := m.alloc(sh)
	c.key = key
	c.touch = now
	c.ref = true
	c.live = true
	sh.m[key] = c
	return &c.val, true
}

// alloc hands out a cell: freelist first (recycling storage through the
// reuse hook), then the next arena slot (growing the arena by one block
// when exhausted, the only allocation on this path).
//
// +req:locksRequired(sh.mu)
func (m *Map[K, E]) alloc(sh *Shard[K, E]) *cell[K, E] {
	if n := len(sh.free); n > 0 {
		c := sh.free[n-1]
		sh.free = sh.free[:n-1]
		m.reuseCell(&c.val)
		return c
	}
	if sh.used == len(sh.blocks)*blockSize {
		sh.blocks = append(sh.blocks, new(block[K, E]))
	}
	c := &sh.blocks[sh.used/blockSize].cells[sh.used%blockSize]
	// seq interleaves shards so it is map-unique: shard idx in the low
	// bits, per-shard arena position above.
	m.initCell(&c.val, uint64(sh.used)*uint64(len(m.shards))+uint64(sh.idx))
	sh.used++
	return c
}

// evict unlinks a live cell and pushes it onto the freelist. The payload
// keeps its storage; the reuse hook will reset it when the cell is handed
// out again.
//
// +req:locksRequired(sh.mu)
func (m *Map[K, E]) evict(sh *Shard[K, E], c *cell[K, E]) {
	delete(sh.m, c.key)
	var zeroK K
	c.key = zeroK // drop pointer-bearing keys (strings) for the GC
	c.live = false
	c.ref = false
	sh.free = append(sh.free, c)
	sh.evictions++
}

// evictOne advances the clock hand until it reclaims one cell:
// TTL-expired cells go immediately, referenced cells lose their bit and
// get one more lap, unreferenced cells go. Two full laps bound the walk
// (after one lap every bit is clear, so the second lap must reclaim).
//
// +req:locksRequired(sh.mu)
func (m *Map[K, E]) evictOne(sh *Shard[K, E], now int64) bool {
	if sh.used == 0 {
		return false
	}
	for range 2 * sh.used {
		if sh.hand >= sh.used {
			sh.hand = 0
		}
		c := &sh.blocks[sh.hand/blockSize].cells[sh.hand%blockSize]
		sh.hand++
		if !c.live {
			continue
		}
		if m.expired(c, now) || !c.ref {
			m.evict(sh, c)
			return true
		}
		c.ref = false
	}
	return false
}

// Delete removes key's entry, recycling its cell. It reports whether the
// key was resident.
//
// +req:locksRequired(sh.mu)
func (m *Map[K, E]) Delete(sh *Shard[K, E], key K) bool {
	c := sh.m[key]
	if c == nil {
		return false
	}
	m.evict(sh, c)
	return true
}

// Len returns the number of resident entries. Entries past their TTL but
// not yet swept still count (lookups treat them as absent; ExpireNow
// reclaims them).
func (m *Map[K, E]) Len() int {
	n := 0
	for i := range m.shards {
		sh := m.LockShard(i)
		n += len(sh.m)
		sh.Unlock()
	}
	return n
}

// Evictions returns the total number of cells reclaimed so far (TTL,
// capacity, and explicit deletes all count).
func (m *Map[K, E]) Evictions() uint64 {
	var n uint64
	for i := range m.shards {
		sh := m.LockShard(i)
		n += sh.evictions
		sh.Unlock()
	}
	return n
}

// ExpireNow sweeps every shard's arena and evicts every TTL-expired
// entry, returning how many it reclaimed. A no-op without a TTL.
func (m *Map[K, E]) ExpireNow(now int64) int {
	if m.ttl == 0 {
		return 0
	}
	total := 0
	for i := range m.shards {
		sh := m.LockShard(i)
		total += m.expireShard(sh, now)
		sh.Unlock()
	}
	return total
}

// expireShard evicts every expired cell of one shard.
//
// +req:locksRequired(sh.mu)
func (m *Map[K, E]) expireShard(sh *Shard[K, E], now int64) int {
	n := 0
	for i := 0; i < sh.used; i++ {
		c := &sh.blocks[i/blockSize].cells[i%blockSize]
		if c.live && m.expired(c, now) {
			m.evict(sh, c)
			n++
		}
	}
	return n
}

// Visit calls fn for every resident, non-expired entry, shard by shard in
// arena order, holding the owning shard's lock across each call. fn must
// not retain the entry pointer past its return and must not call back
// into the Map (the shard lock is held). Returning false stops the walk.
// Visits neither refresh TTLs nor set reference bits, so a bulk export
// does not perturb eviction state.
func (m *Map[K, E]) Visit(now int64, fn func(key K, e *E) bool) {
	for i := range m.shards {
		sh := m.LockShard(i)
		if !m.visitShard(sh, now, fn) {
			sh.Unlock()
			return
		}
		sh.Unlock()
	}
}

// visitShard walks one shard's arena cells in order.
//
// +req:locksRequired(sh.mu)
func (m *Map[K, E]) visitShard(sh *Shard[K, E], now int64, fn func(key K, e *E) bool) bool {
	for i := 0; i < sh.used; i++ {
		c := &sh.blocks[i/blockSize].cells[i%blockSize]
		if !c.live || m.expired(c, now) {
			continue
		}
		if !fn(c.key, &c.val) {
			return false
		}
	}
	return true
}

// Reset empties the map: every shard's entries, arena, and freelist are
// dropped (the arena blocks go to the GC; a Reset is a teardown, not an
// eviction). Aux scratch state is kept — it belongs to the owner.
func (m *Map[K, E]) Reset() {
	for i := range m.shards {
		sh := m.LockShard(i)
		m.resetShard(sh)
		sh.Unlock()
	}
}

// resetShard empties one shard.
//
// +req:locksRequired(sh.mu)
func (m *Map[K, E]) resetShard(sh *Shard[K, E]) {
	clear(sh.m)
	sh.blocks = nil
	sh.used = 0
	sh.free = nil
	sh.hand = 0
}
