package tenant

import "hash/maphash"

// Shard-grouped batch planning: the registry's UpdatePairs front hands a
// whole (key, item) batch to PlanBatch, which hashes every key in one pass,
// links same-key items into runs (preserving each key's input order), and
// counting-sorts the runs by owning shard. The caller then walks the runs
// shard by shard, taking each shard lock once per batch and resolving each
// distinct key's cell once per run (GetOrCreateRun) instead of once per
// item.
//
// All planning state lives in a caller-owned Batch, grown on demand and
// reused verbatim across batches — the steady state allocates nothing.

// batchRun is one distinct key's run within a batch: a linked chain of
// input indices (through Batch.next) in input order.
type batchRun struct {
	head  int32 // input index of the run's first item
	tail  int32 // input index of the run's last item (chain append point)
	n     int32 // items in the run
	slot  int32 // claimed probe-table slot, for O(runs) clearing
	shard int32 // owning shard index
}

// Batch is the reusable scratch of one batched-ingest plan. The zero value
// is ready to use; a Batch is not safe for concurrent use (the registry
// pools them). It retains its grown capacity across PlanBatch calls.
type Batch[K comparable] struct {
	hashes []uint64   // per-item key hash
	next   []int32    // next[i] = next input index of i's run, -1 at tail (fragmented runs only)
	table  []int32    // open-addressing probe table: run index or -1
	runs   []batchRun // one per distinct key, in first-occurrence order
	order  []int32    // run indices, counting-sorted by shard (stable)
	counts []int32    // per-shard histogram / offset scratch
}

// maxBatch bounds one batch so every index fits an int32 with headroom.
const maxBatch = 1 << 30

// PlanBatch groups keys into per-shard, per-key runs inside b, replacing
// any previous plan. Scratch is grown on first use and reused afterwards;
// planning a batch no larger than any earlier one allocates nothing.
func (m *Map[K, E]) PlanBatch(b *Batch[K], keys []K) {
	n := len(keys)
	if n > maxBatch {
		panic("tenant: batch larger than 1<<30 items")
	}
	b.reset(n, len(m.shards))
	if n == 0 {
		return
	}
	// Aggregated flushes arrive key-grouped, so consecutive equal keys
	// are the common case there: reuse the previous hash instead of
	// rehashing (an equality check is several times cheaper than a
	// maphash over string bytes, and equal keys hash equal by
	// definition).
	b.hashes[0] = maphash.Comparable(m.hseed, keys[0])
	for i := 1; i < n; i++ {
		if keys[i] == keys[i-1] {
			b.hashes[i] = b.hashes[i-1]
			continue
		}
		b.hashes[i] = maphash.Comparable(m.hseed, keys[i])
	}
	b.group(keys, m.mask)
	b.sortRunsByShard(len(m.shards))
}

// reset clears the previous plan and ensures capacity for n items across
// nshards shards. Clearing the probe table walks the previous plan's
// claimed slots — O(runs), not O(table).
func (b *Batch[K]) reset(n, nshards int) {
	for i := range b.runs {
		b.table[b.runs[i].slot] = -1
	}
	b.runs = b.runs[:0]
	if cap(b.hashes) < n {
		b.hashes = make([]uint64, n)
		b.next = make([]int32, n)
		b.order = make([]int32, n)
		b.runs = make([]batchRun, 0, n)
	}
	b.hashes = b.hashes[:n]
	b.next = b.next[:n]
	if want := probeSize(n); len(b.table) < want {
		b.table = make([]int32, want)
		for i := range b.table {
			b.table[i] = -1
		}
	}
	if cap(b.counts) < nshards+1 {
		b.counts = make([]int32, nshards+1)
	}
}

// probeSize returns the open-addressing table size for n keys: the power of
// two ≥ 2n, so the load factor never exceeds ½.
func probeSize(n int) int {
	return int(ceilPow2(uint64(2 * n)))
}

// group links same-key items into runs by probing the table with each
// item's hash. Equal keys chain onto the existing run in input order; new
// keys claim the probe slot and open a run. Hashes are compared before
// keys, so a full key comparison happens at most once per item on the
// non-colliding path. An item equal to its predecessor extends the
// predecessor's run directly — no table probe — which makes key-grouped
// (flush-shaped) batches plan in O(distinct keys) probes.
//
// The next chain is written lazily: a run that is still contiguous
// (items head..tail with no gaps) carries no chain at all — its tail and
// count advance and nothing else is touched, so the flush-shaped fast
// path costs two stores per item instead of four. The chain is
// materialized (backfilled for the contiguous prefix, then linked) only
// when a run fragments, i.e. when a key recurs non-adjacently. Consumers
// must therefore check Contiguous before walking Next — exactly what
// slicing the input directly requires anyway.
//
//req:noalloc
func (b *Batch[K]) group(keys []K, mask uint64) {
	tmask := uint64(len(b.table) - 1)
	last := int32(-1) // run index of keys[i-1]
	for i := range keys {
		if i > 0 && keys[i] == keys[i-1] {
			// keys[i-1] was the last item appended, so run.tail == i-1: a
			// contiguous run stays contiguous and needs no chain writes.
			run := &b.runs[last]
			if run.n == run.tail-run.head+1 {
				run.tail = int32(i)
				run.n++
				continue
			}
			b.next[run.tail] = int32(i)
			b.next[i] = -1
			run.tail = int32(i)
			run.n++
			continue
		}
		h := b.hashes[i]
		slot := int(h & tmask)
		for {
			r := b.table[slot]
			if r < 0 {
				last = int32(len(b.runs))
				b.table[slot] = last
				nr := batchRun{head: int32(i), tail: int32(i), n: 1, slot: int32(slot), shard: int32(h & mask)}
				b.runs = append(b.runs, nr) //req:allocok — reset pre-sized cap(runs) ≥ len(keys)
				break
			}
			run := &b.runs[r]
			if b.hashes[run.head] == h && keys[run.head] == keys[i] {
				if run.n == run.tail-run.head+1 {
					// The run fragments here: materialize the chain for its
					// contiguous prefix before linking item i onto it.
					for j := run.head; j < run.tail; j++ {
						b.next[j] = j + 1
					}
				}
				b.next[run.tail] = int32(i)
				b.next[i] = -1
				run.tail = int32(i)
				run.n++
				last = r
				break
			}
			slot = int(uint64(slot+1) & tmask)
		}
	}
}

// sortRunsByShard counting-sorts the run indices into b.order by owning
// shard. The sort is stable, so within each shard the runs keep
// first-occurrence order — the same cell-creation order a per-item loop
// over the batch would produce.
//
//req:noalloc
func (b *Batch[K]) sortRunsByShard(nshards int) {
	counts := b.counts[:nshards+1]
	for i := range counts {
		counts[i] = 0
	}
	for i := range b.runs {
		counts[b.runs[i].shard+1]++
	}
	for s := 1; s <= nshards; s++ {
		counts[s] += counts[s-1]
	}
	order := b.order[:len(b.runs)]
	for i := range b.runs {
		s := b.runs[i].shard
		order[counts[s]] = int32(i)
		counts[s]++
	}
}

// Runs returns the number of distinct-key runs in the current plan.
func (b *Batch[K]) Runs() int { return len(b.runs) }

// Run returns the i-th run in shard-grouped order: the input index of its
// first item, its item count, and its owning shard. Runs with equal shard
// are adjacent in i.
//
//req:noalloc
func (b *Batch[K]) Run(i int) (head, n, shard int) {
	r := &b.runs[b.order[i]]
	return int(r.head), int(r.n), int(r.shard)
}

// Contiguous reports whether the i-th run's items sit contiguously in the
// input (head..head+n-1), letting the caller slice the input directly
// instead of gathering through Next.
//
//req:noalloc
func (b *Batch[K]) Contiguous(i int) bool {
	r := &b.runs[b.order[i]]
	return int(r.tail-r.head)+1 == int(r.n)
}

// Next returns the input index following idx within its run, or -1 at the
// run's end. Only fragmented runs (Contiguous false) carry a chain; a
// contiguous run's items are head..head+n-1 by construction and its next
// entries are unwritten.
//
//req:noalloc
func (b *Batch[K]) Next(idx int) int { return int(b.next[idx]) }

// GetOrCreateRun is the batched-path entry resolution: identical semantics
// to GetOrCreate, but called once per distinct-key run instead of once per
// item, so lazy creation, the TTL touch, the reference bit, and any
// clock-hand eviction are charged per run. Entry state after a batch is
// therefore identical to the per-item path whenever each key occurs in at
// most one run per batch — which PlanBatch guarantees.
//
// +req:locksRequired(sh.mu)
func (m *Map[K, E]) GetOrCreateRun(sh *Shard[K, E], key K, now int64) (e *E, created bool) {
	return m.GetOrCreate(sh, key, now)
}

// RoomFor reports whether n lazy creations in this shard are guaranteed
// not to run the eviction hand: either the map is uncapped, or the shard
// has headroom for n more keys. The batched ingest pipeline may resolve
// every run's cell up front (separating the cache-missing probes from the
// sketch work) only under this guarantee — an eviction mid-phase could
// reclaim a cell resolved earlier in the same batch.
//
// +req:locksRequired(sh.mu)
//
//req:noalloc
func (m *Map[K, E]) RoomFor(sh *Shard[K, E], n int) bool {
	return m.maxPerShard == 0 || len(sh.m)+n <= m.maxPerShard
}
