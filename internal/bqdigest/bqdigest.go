// Package bqdigest implements a biased q-digest: a deterministic
// relative-error quantile summary over a fixed bounded universe, in the
// style of Cormode, Korn, Muthukrishnan and Srivastava ("Space- and
// time-efficient deterministic algorithms for biased quantiles over data
// streams", PODS 2006), which itself adapts the q-digest of Shrivastava
// et al. (SenSys 2004).
//
// The structure is a dyadic tree over the universe [0, 2^bits): each node
// covers an interval, and the multiset is represented by counts attached to
// nodes. The *biased* compression rule caps each non-leaf node's count at
// ε·rmin(v)/bits, where rmin(v) is (a lower bound on) the rank of the
// node's left endpoint — so the total error affecting a query for y, which
// is the straddling counts along one root-to-leaf path, stays below
// ε·R(y).
//
// The paper under reproduction cites this algorithm as the deterministic
// O(ε⁻¹·log(εn)·log|U|) comparator, with the decisive drawback that the
// universe must be known in advance (it is not comparison-based). The
// harness quantises float64 workloads onto the grid to use it (E2/E4).
package bqdigest

import (
	"errors"
	"math"
	"sort"
)

// Sketch is a biased q-digest over the universe [0, 2^bits). Not safe for
// concurrent use.
type Sketch struct {
	eps   float64
	bits  uint
	n     uint64
	nodes map[uint64]uint64 // heap-numbered node id → count
	// compression bookkeeping: compress when the map grows past high.
	high int
}

// node id scheme: root = 1; children of v are 2v and 2v+1; the leaf for
// value x is (1 << bits) | x. A node at depth d (root depth 0) covers
// 2^(bits-d) consecutive values.

// New returns an empty digest with relative error target eps over a
// universe of 2^bits values.
func New(eps float64, bits uint) (*Sketch, error) {
	if eps <= 0 || eps >= 1 {
		return nil, errors.New("bqdigest: eps out of (0, 1)")
	}
	if bits < 1 || bits > 40 {
		return nil, errors.New("bqdigest: bits out of [1, 40]")
	}
	return &Sketch{
		eps:   eps,
		bits:  bits,
		nodes: make(map[uint64]uint64),
		high:  64,
	}, nil
}

// Epsilon returns the error parameter.
func (s *Sketch) Epsilon() float64 { return s.eps }

// UniverseBits returns the universe depth.
func (s *Sketch) UniverseBits() uint { return s.bits }

// N returns the number of items summarised.
func (s *Sketch) N() uint64 { return s.n }

// ItemsRetained returns the number of tree nodes stored (the footprint).
func (s *Sketch) ItemsRetained() int { return len(s.nodes) }

// Update inserts value x. x must lie in [0, 2^bits).
func (s *Sketch) Update(x uint64) error {
	if x >= uint64(1)<<s.bits {
		return errors.New("bqdigest: value outside universe")
	}
	s.nodes[(uint64(1)<<s.bits)|x]++
	s.n++
	if len(s.nodes) > s.high {
		s.Compress()
		s.high = 2*len(s.nodes) + 64
	}
	return nil
}

// interval returns the value range [lo, hi] covered by node id.
func (s *Sketch) interval(id uint64) (lo, hi uint64) {
	depth := uint(bitLen(id)) - 1
	span := s.bits - depth
	prefix := id - (uint64(1) << depth)
	lo = prefix << span
	hi = lo + (uint64(1) << span) - 1
	return lo, hi
}

func bitLen(x uint64) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

// threshold returns the biased per-node count cap for a node whose left
// endpoint has rank lower bound rmin: ⌊ε·rmin/bits⌋. A zero threshold
// blocks merging entirely, which keeps the lowest-ranked ~bits/ε items
// stored exactly — the analogue of the relative-compactor's protected
// bottom half, and what makes rank-1 queries exact.
func (s *Sketch) threshold(rmin uint64) uint64 {
	return uint64(s.eps * float64(rmin) / float64(s.bits))
}

// Compress walks the tree bottom-up, merging children into parents while
// the biased count cap allows. It is called automatically by Update but
// exported so tests and the harness can force a canonical state.
func (s *Sketch) Compress() {
	if len(s.nodes) == 0 {
		return
	}
	// Precompute rmin for every present node: the total count of nodes
	// whose interval ends strictly before the node's interval starts.
	type span struct {
		id     uint64
		lo, hi uint64
		count  uint64
	}
	spans := make([]span, 0, len(s.nodes))
	for id, c := range s.nodes {
		lo, hi := s.interval(id)
		spans = append(spans, span{id: id, lo: lo, hi: hi, count: c})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].hi < spans[j].hi })
	ends := make([]uint64, len(spans))
	prefix := make([]uint64, len(spans)+1)
	for i, sp := range spans {
		ends[i] = sp.hi
		prefix[i+1] = prefix[i] + sp.count
	}
	rminOf := func(lo uint64) uint64 {
		// count of items in nodes with hi < lo.
		idx := sort.Search(len(ends), func(i int) bool { return ends[i] >= lo })
		return prefix[idx]
	}

	// Bottom-up sweep: deepest level first.
	byDepth := make(map[int][]uint64)
	maxDepth := 0
	for id := range s.nodes {
		d := bitLen(id) - 1
		byDepth[d] = append(byDepth[d], id)
		if d > maxDepth {
			maxDepth = d
		}
	}
	for d := maxDepth; d >= 1; d-- {
		ids := byDepth[d]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			c, ok := s.nodes[id]
			if !ok {
				continue // already merged as a sibling
			}
			parent := id / 2
			sibling := id ^ 1
			sc := s.nodes[sibling] // zero if absent
			pc := s.nodes[parent]
			lo, _ := s.interval(parent)
			if c+sc+pc <= s.threshold(rminOf(lo)) {
				s.nodes[parent] = c + sc + pc
				delete(s.nodes, id)
				delete(s.nodes, sibling)
				byDepth[d-1] = append(byDepth[d-1], parent)
			}
		}
	}
}

// Rank returns the estimated inclusive rank of y: the sum of counts of
// nodes whose interval lies entirely at or below y. Undercounts by at most
// the straddling-path mass, which the compression rule bounds by ε·R(y);
// we add half of that straddling mass back as the midpoint estimate.
func (s *Sketch) Rank(y uint64) uint64 {
	var sure, straddle uint64
	for id, c := range s.nodes {
		lo, hi := s.interval(id)
		if hi <= y {
			sure += c
		} else if lo <= y {
			straddle += c
		}
	}
	return sure + straddle/2
}

// Quantile returns the estimated φ-quantile, φ ∈ [0, 1].
func (s *Sketch) Quantile(phi float64) (uint64, error) {
	if s.n == 0 {
		return 0, errors.New("bqdigest: empty sketch")
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return 0, errors.New("bqdigest: rank out of [0, 1]")
	}
	target := uint64(math.Ceil(phi * float64(s.n)))
	if target == 0 {
		target = 1
	}
	// In-order walk: nodes sorted by interval end, then by interval start
	// descending (deeper, more specific nodes first at equal ends).
	type span struct {
		lo, hi, count uint64
	}
	spans := make([]span, 0, len(s.nodes))
	for id, c := range s.nodes {
		lo, hi := s.interval(id)
		spans = append(spans, span{lo, hi, c})
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].hi != spans[j].hi {
			return spans[i].hi < spans[j].hi
		}
		return spans[i].lo > spans[j].lo
	})
	var run uint64
	for _, sp := range spans {
		run += sp.count
		if run >= target {
			return sp.hi, nil
		}
	}
	return spans[len(spans)-1].hi, nil
}

// Merge absorbs other into s. Both must share eps and bits.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other == s {
		return errors.New("bqdigest: cannot merge a sketch into itself")
	}
	if other.eps != s.eps || other.bits != s.bits {
		return errors.New("bqdigest: incompatible parameters")
	}
	for id, c := range other.nodes {
		s.nodes[id] += c
	}
	s.n += other.n
	s.Compress()
	s.high = 2*len(s.nodes) + 64
	return nil
}

// Quantize maps a float64 in [lo, hi] onto the digest's universe grid; use
// it to feed continuous data. Values outside [lo, hi] are clamped.
func (s *Sketch) Quantize(v, lo, hi float64) uint64 {
	if hi <= lo {
		return 0
	}
	u := uint64(1)<<s.bits - 1
	frac := (v - lo) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return uint64(frac * float64(u))
}
