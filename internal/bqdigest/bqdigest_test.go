package bqdigest

import (
	"math"
	"testing"

	"req/internal/rng"
)

func feed(s *Sketch, n int, seed uint64) {
	r := rng.New(seed)
	for _, v := range r.Perm(n) {
		if err := s.Update(uint64(v)); err != nil {
			panic(err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, 1} {
		if _, err := New(eps, 16); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
	for _, bits := range []uint{0, 41, 64} {
		if _, err := New(0.05, bits); err == nil {
			t.Errorf("bits=%d accepted", bits)
		}
	}
}

func TestUpdateValidation(t *testing.T) {
	s, _ := New(0.05, 8)
	if err := s.Update(256); err == nil {
		t.Fatal("out-of-universe value accepted")
	}
	if err := s.Update(255); err != nil {
		t.Fatal(err)
	}
}

func TestInterval(t *testing.T) {
	s, _ := New(0.05, 4) // universe [0, 16)
	lo, hi := s.interval(1)
	if lo != 0 || hi != 15 {
		t.Fatalf("root interval [%d, %d]", lo, hi)
	}
	lo, hi = s.interval(2)
	if lo != 0 || hi != 7 {
		t.Fatalf("left child [%d, %d]", lo, hi)
	}
	lo, hi = s.interval(3)
	if lo != 8 || hi != 15 {
		t.Fatalf("right child [%d, %d]", lo, hi)
	}
	// Leaf for value 5: id = 16 | 5 = 21.
	lo, hi = s.interval(21)
	if lo != 5 || hi != 5 {
		t.Fatalf("leaf interval [%d, %d]", lo, hi)
	}
}

func TestExactSmallStream(t *testing.T) {
	s, _ := New(0.1, 10)
	for v := uint64(0); v < 50; v++ {
		if err := s.Update(v); err != nil {
			t.Fatal(err)
		}
	}
	for q := uint64(1); q <= 50; q += 7 {
		if got := s.Rank(q - 1); got != q {
			t.Fatalf("Rank(%d) = %d, want %d", q-1, got, q)
		}
	}
}

func TestRelativeErrorBound(t *testing.T) {
	const n = 1 << 16
	const eps = 0.1
	s, _ := New(eps, 16)
	feed(s, n, 1)
	s.Compress()
	for rank := 1; rank <= n; rank *= 2 {
		got := float64(s.Rank(uint64(rank - 1)))
		rel := math.Abs(got-float64(rank)) / float64(rank)
		if rel > eps {
			t.Errorf("rank %d: estimate %v rel %.4f > ε", rank, got, rel)
		}
	}
}

func TestCompressShrinks(t *testing.T) {
	const n = 1 << 15
	s, _ := New(0.1, 15)
	feed(s, n, 2)
	s.Compress()
	// Deterministic space O(ε⁻¹·log(εn)·log U): far below n.
	if got := s.ItemsRetained(); got > n/4 {
		t.Fatalf("retained %d nodes of %d items", got, n)
	}
}

func TestWeightConserved(t *testing.T) {
	s, _ := New(0.1, 14)
	feed(s, 10000, 3)
	s.Compress()
	var total uint64
	for _, c := range s.nodes {
		total += c
	}
	if total != s.N() {
		t.Fatalf("node counts %d != n %d", total, s.N())
	}
}

func TestRankMonotone(t *testing.T) {
	s, _ := New(0.1, 14)
	feed(s, 10000, 4)
	s.Compress()
	prev := uint64(0)
	for y := uint64(0); y < 10000; y += 97 {
		got := s.Rank(y)
		if got < prev {
			t.Fatalf("rank decreased at %d", y)
		}
		prev = got
	}
}

func TestQuantile(t *testing.T) {
	const n = 1 << 14
	s, _ := New(0.05, 14)
	feed(s, n, 5)
	for _, phi := range []float64{0.01, 0.1, 0.5, 0.9} {
		q, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		wantRank := phi * n
		gotRank := float64(q + 1)
		if wantRank >= 32 && math.Abs(gotRank-wantRank)/wantRank > 0.15 {
			t.Errorf("phi=%v: quantile %d (rank %v), want %v", phi, q, gotRank, wantRank)
		}
	}
}

func TestQuantileRejectsBad(t *testing.T) {
	s, _ := New(0.1, 8)
	_ = s.Update(1)
	for _, phi := range []float64{-1, 2, math.NaN()} {
		if _, err := s.Quantile(phi); err == nil {
			t.Errorf("Quantile(%v) accepted", phi)
		}
	}
	empty, _ := New(0.1, 8)
	if _, err := empty.Quantile(0.5); err == nil {
		t.Fatal("quantile on empty accepted")
	}
}

func TestLowRanksStayAccurate(t *testing.T) {
	// The biased threshold protects low ranks: after heavy compression the
	// smallest items should still have near-exact ranks.
	const n = 1 << 16
	s, _ := New(0.1, 16)
	feed(s, n, 6)
	s.Compress()
	for rank := 1; rank <= 16; rank++ {
		got := s.Rank(uint64(rank - 1))
		if math.Abs(float64(got)-float64(rank)) > 1+0.1*float64(rank) {
			t.Errorf("low rank %d estimated %d", rank, got)
		}
	}
}

func TestMerge(t *testing.T) {
	const n = 1 << 14
	a, _ := New(0.1, 14)
	b, _ := New(0.1, 14)
	r := rng.New(7)
	for i, v := range r.Perm(n) {
		if i%2 == 0 {
			_ = a.Update(uint64(v))
		} else {
			_ = b.Update(uint64(v))
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != n {
		t.Fatalf("merged N = %d", a.N())
	}
	for rank := 4; rank <= n; rank *= 4 {
		got := float64(a.Rank(uint64(rank - 1)))
		rel := math.Abs(got-float64(rank)) / float64(rank)
		if rel > 0.12 {
			t.Errorf("merged rank %d: rel %.4f", rank, rel)
		}
	}
}

func TestMergeValidation(t *testing.T) {
	a, _ := New(0.1, 14)
	b, _ := New(0.2, 14)
	_ = b.Update(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("different eps accepted")
	}
	c, _ := New(0.1, 12)
	_ = c.Update(1)
	if err := a.Merge(c); err == nil {
		t.Fatal("different bits accepted")
	}
	_ = a.Update(1)
	if err := a.Merge(a); err == nil {
		t.Fatal("self merge accepted")
	}
}

func TestQuantize(t *testing.T) {
	s, _ := New(0.1, 10)
	if s.Quantize(0, 0, 1) != 0 {
		t.Fatal("low end wrong")
	}
	if s.Quantize(1, 0, 1) != 1023 {
		t.Fatal("high end wrong")
	}
	if s.Quantize(-5, 0, 1) != 0 || s.Quantize(7, 0, 1) != 1023 {
		t.Fatal("clamping wrong")
	}
	if s.Quantize(1, 1, 1) != 0 {
		t.Fatal("degenerate range wrong")
	}
	mid := s.Quantize(0.5, 0, 1)
	if mid < 500 || mid > 523 {
		t.Fatalf("midpoint = %d", mid)
	}
}

func TestBitLen(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}}
	for _, c := range cases {
		if got := bitLen(c.x); got != c.want {
			t.Errorf("bitLen(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}
