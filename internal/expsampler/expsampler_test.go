package expsampler

import (
	"math"
	"testing"

	"req/internal/rng"
)

func feed(s *Sketch, n int, seed uint64) {
	r := rng.New(seed)
	for _, v := range r.Perm(n) {
		s.Update(float64(v))
	}
}

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, 1, 5} {
		if _, err := New(eps, 1); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
	s, err := New(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.CapacityPerLevel() != 200 { // ceil(2/0.01)
		t.Fatalf("m = %d", s.CapacityPerLevel())
	}
}

func TestEmpty(t *testing.T) {
	s, _ := New(0.1, 1)
	if s.N() != 0 {
		t.Fatal("not empty")
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Fatal("quantile on empty accepted")
	}
}

func TestLevelZeroExactForLowRanks(t *testing.T) {
	// Level 0 keeps the m smallest items exactly, so ranks up to m are
	// answered with zero error.
	s, _ := New(0.1, 2)
	feed(s, 100000, 3)
	m := s.CapacityPerLevel()
	for q := 1; q <= m; q += m / 8 {
		if got := s.Rank(float64(q - 1)); got != uint64(q) {
			t.Fatalf("low rank %d estimated %d, want exact", q, got)
		}
	}
}

func TestRelativeErrorModerate(t *testing.T) {
	const n = 1 << 18
	s, _ := New(0.05, 4)
	feed(s, n, 5)
	// Sampling guarantees ε relative error w.h.p.; allow 3x slack at a
	// fixed seed.
	for rank := 64; rank <= n; rank *= 4 {
		got := float64(s.Rank(float64(rank - 1)))
		rel := math.Abs(got-float64(rank)) / float64(rank)
		if rel > 0.15 {
			t.Errorf("rank %d: estimate %v rel %.4f", rank, got, rel)
		}
	}
}

func TestSpaceQuadraticInInvEps(t *testing.T) {
	// Halving eps must roughly quadruple the per-level capacity — the
	// defining disadvantage vs. REQ (experiment E3).
	a, _ := New(0.1, 1)
	b, _ := New(0.05, 1)
	ratio := float64(b.CapacityPerLevel()) / float64(a.CapacityPerLevel())
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("capacity ratio %v, want ≈4", ratio)
	}
}

func TestItemsRetainedBounded(t *testing.T) {
	s, _ := New(0.1, 6)
	const n = 1 << 18
	feed(s, n, 7)
	// ≈ m·log2(n/m) + O(m): for m=200, n=262144: ~200·11 + slack.
	if got := s.ItemsRetained(); got > 4000 {
		t.Fatalf("retained %d items", got)
	}
	if s.NumLevels() < 5 {
		t.Fatalf("only %d non-empty levels", s.NumLevels())
	}
}

func TestRankApproximatelyMonotone(t *testing.T) {
	// Unlike the coreset sketches, the multi-level estimator switches
	// levels as y grows, and estimates at a switch point come from
	// different samples — strict monotonicity is not guaranteed, but any
	// decrease must stay within the sampling error.
	s, _ := New(0.1, 8)
	feed(s, 100000, 9)
	prev := uint64(0)
	for y := -5.0; y < 100010; y += 911 {
		got := s.Rank(y)
		if float64(got) < 0.7*float64(prev) {
			t.Fatalf("rank dropped beyond sampling error at %v: %d < %d", y, got, prev)
		}
		if got > prev {
			prev = got
		}
	}
}

func TestQuantile(t *testing.T) {
	const n = 1 << 17
	s, _ := New(0.05, 10)
	feed(s, n, 11)
	for _, phi := range []float64{0.001, 0.01, 0.1, 0.5, 0.9} {
		q, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		wantRank := phi * n
		gotRank := q + 1 // permutation: rank of v is v+1
		if wantRank >= 16 && math.Abs(gotRank-wantRank)/wantRank > 0.2 {
			t.Errorf("phi=%v: quantile %v (rank %v), want rank %v", phi, q, gotRank, wantRank)
		}
	}
}

func TestQuantileRejectsBad(t *testing.T) {
	s, _ := New(0.1, 1)
	s.Update(1)
	for _, phi := range []float64{-1, 2, math.NaN()} {
		if _, err := s.Quantile(phi); err == nil {
			t.Errorf("Quantile(%v) accepted", phi)
		}
	}
}

func TestNaNIgnored(t *testing.T) {
	s, _ := New(0.1, 1)
	s.Update(math.NaN())
	if s.N() != 0 {
		t.Fatal("NaN counted")
	}
}

func TestMerge(t *testing.T) {
	const n = 1 << 17
	a, _ := New(0.05, 12)
	b, _ := New(0.05, 13)
	r := rng.New(14)
	for i, v := range r.Perm(n) {
		if i%2 == 0 {
			a.Update(float64(v))
		} else {
			b.Update(float64(v))
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != n {
		t.Fatalf("merged N = %d", a.N())
	}
	for rank := 64; rank <= n; rank *= 8 {
		got := float64(a.Rank(float64(rank - 1)))
		rel := math.Abs(got-float64(rank)) / float64(rank)
		if rel > 0.2 {
			t.Errorf("merged rank %d: rel %.4f", rank, rel)
		}
	}
}

func TestMergeValidation(t *testing.T) {
	a, _ := New(0.05, 1)
	b, _ := New(0.1, 2)
	b.Update(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("different eps accepted")
	}
	a.Update(1)
	if err := a.Merge(a); err == nil {
		t.Fatal("self merge accepted")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal("nil merge should be no-op")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	mk := func() uint64 {
		s, _ := New(0.1, 99)
		feed(s, 50000, 100)
		return s.Rank(25000)
	}
	if mk() != mk() {
		t.Fatal("not deterministic")
	}
}

func TestHeapProperty(t *testing.T) {
	s, _ := New(0.2, 15)
	feed(s, 20000, 16)
	for li := range s.levels {
		h := s.levels[li].heap
		for i := 1; i < len(h); i++ {
			if h[i] > h[(i-1)/2] {
				t.Fatalf("level %d: heap property violated at %d", li, i)
			}
		}
	}
}

func TestTrailingZeros(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 64}, {1, 0}, {2, 1}, {4, 2}, {8, 3}, {12, 2}, {1 << 63, 63},
	}
	for _, c := range cases {
		if got := trailingZeros(c.x); got != c.want {
			t.Errorf("trailingZeros(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}
