// Package expsampler implements a multi-level bottom-k sampling sketch for
// relative-error rank estimation, in the style of Gupta–Zane ("Counting
// inversions in lists", SODA 2003) and Zhang et al. ("Space-efficient
// relative error order sketch over data streams", ICDE 2006).
//
// Level i subsamples the stream at rate 2^{-i} and retains only the m
// smallest sampled items, with m = Θ(1/ε²). Level 0 therefore stores the m
// smallest stream items exactly; each higher level covers a rank range a
// factor two larger at half the resolution. A rank query for y is answered
// at the lowest level that still "covers" y (y below the level's retention
// threshold), scaling the sampled count by 2^i. A Chernoff bound gives
// |R̂(y) − R(y)| ≤ ε·R(y) with constant probability.
//
// Total space is Θ(ε⁻²·log(ε²n)) items — the quadratic-in-1/ε regime the
// REQ paper's introduction cites for sampling-based solutions ([11], [22]).
// The harness uses this package as that comparator (experiment E3): REQ's
// linear 1/ε dependence versus sampling's 1/ε².
package expsampler

import (
	"errors"
	"math"
	"sort"

	"req/internal/rng"
)

// Sketch is a multi-level bottom-k sampler. Not safe for concurrent use.
type Sketch struct {
	m      int // per-level retention capacity, Θ(1/ε²)
	eps    float64
	levels []level
	n      uint64
	rnd    *rng.Source
}

// level retains the m smallest items sampled at rate 2^{-i} in a max-heap.
type level struct {
	heap    []float64 // max-heap: heap[0] is the largest retained item
	sampled uint64    // total items sampled into this level (diagnostics)
}

// New returns an empty sampler targeting relative error eps with the given
// seed. Capacity per level is m = ⌈2/ε²⌉.
func New(eps float64, seed uint64) (*Sketch, error) {
	if eps <= 0 || eps >= 1 {
		return nil, errors.New("expsampler: eps out of (0, 1)")
	}
	m := int(math.Ceil(2 / (eps * eps)))
	if m < 8 {
		m = 8
	}
	return &Sketch{
		m:   m,
		eps: eps,
		// All 64 levels exist from the start (empty levels cost nothing):
		// allocating a level lazily would silently exclude items that
		// arrived before the allocation from its sample, biasing counts.
		levels: make([]level, 64),
		rnd:    rng.New(seed),
	}, nil
}

// Epsilon returns the target error parameter.
func (s *Sketch) Epsilon() float64 { return s.eps }

// CapacityPerLevel returns m.
func (s *Sketch) CapacityPerLevel() int { return s.m }

// N returns the number of items processed.
func (s *Sketch) N() uint64 { return s.n }

// NumLevels returns the number of levels holding at least one item.
func (s *Sketch) NumLevels() int {
	n := 0
	for i := range s.levels {
		if len(s.levels[i].heap) > 0 {
			n++
		}
	}
	return n
}

// ItemsRetained returns the total number of stored items.
func (s *Sketch) ItemsRetained() int {
	total := 0
	for i := range s.levels {
		total += len(s.levels[i].heap)
	}
	return total
}

// Update inserts one value. NaN is ignored.
func (s *Sketch) Update(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.n++
	// Geometric level draw: the item is sampled at level i iff the first i
	// coin flips all land heads, i.e. i ≤ (number of trailing zeros).
	g := trailingZeros(s.rnd.Uint64())
	if g >= len(s.levels) {
		g = len(s.levels) - 1
	}
	for i := 0; i <= g; i++ {
		s.levels[i].offer(v, s.m)
	}
}

func trailingZeros(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		n++
		x >>= 1
	}
	return n
}

// offer inserts v into the bottom-m heap, evicting the largest if full.
func (l *level) offer(v float64, m int) {
	l.sampled++
	if len(l.heap) < m {
		l.heap = append(l.heap, v)
		siftUp(l.heap, len(l.heap)-1)
		return
	}
	if v < l.heap[0] {
		l.heap[0] = v
		siftDownHeap(l.heap, 0)
	}
}

func siftUp(h []float64, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] >= h[i] {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func siftDownHeap(h []float64, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h[l] > h[largest] {
			largest = l
		}
		if r < n && h[r] > h[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// covers reports whether the level's retained set includes every sampled
// item ≤ y, which is the condition for an unbiased count.
func (l *level) covers(y float64, m int) bool {
	return len(l.heap) < m || y <= l.heap[0]
}

// countLE counts retained items ≤ y.
func (l *level) countLE(y float64) uint64 {
	var c uint64
	for _, v := range l.heap {
		if v <= y {
			c++
		}
	}
	return c
}

// Rank returns the estimated inclusive rank of y: the sampled count at the
// lowest covering level, scaled by its rate.
func (s *Sketch) Rank(y float64) uint64 {
	for i := range s.levels {
		if s.levels[i].covers(y, s.m) {
			return s.levels[i].countLE(y) << uint(i)
		}
	}
	// No level covers y (can only happen when every level is saturated
	// below y); fall back to the top level's floor.
	top := len(s.levels) - 1
	return s.levels[top].countLE(y) << uint(top)
}

// Quantile returns the estimated φ-quantile by inverting Rank over the
// retained values.
func (s *Sketch) Quantile(phi float64) (float64, error) {
	if s.n == 0 {
		return 0, errors.New("expsampler: empty sketch")
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return 0, errors.New("expsampler: rank out of [0, 1]")
	}
	candidates := make([]float64, 0, s.ItemsRetained())
	for i := range s.levels {
		candidates = append(candidates, s.levels[i].heap...)
	}
	if len(candidates) == 0 {
		return 0, errors.New("expsampler: no retained items")
	}
	sort.Float64s(candidates)
	target := uint64(math.Ceil(phi * float64(s.n)))
	if target == 0 {
		target = 1
	}
	// Rank is monotone over candidates; binary search the smallest
	// candidate with Rank ≥ target.
	lo, hi := 0, len(candidates)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Rank(candidates[mid]) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return candidates[lo], nil
}

// Merge absorbs other into s. Both must share eps (hence m). The union of
// two independent bottom-m samples at the same rate is a valid bottom-m
// sample of the concatenated stream, so merging is exact.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other == s {
		return errors.New("expsampler: cannot merge a sketch into itself")
	}
	if other.eps != s.eps {
		return errors.New("expsampler: cannot merge different eps")
	}
	for len(s.levels) < len(other.levels) {
		s.levels = append(s.levels, level{})
	}
	for i := range other.levels {
		for _, v := range other.levels[i].heap {
			s.levels[i].offer(v, s.m)
		}
		s.levels[i].sampled += other.levels[i].sampled - uint64(len(other.levels[i].heap))
	}
	s.n += other.n
	return nil
}
