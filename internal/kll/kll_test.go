package kll

import (
	"math"
	"testing"

	"req/internal/exact"
	"req/internal/rng"
)

func feed(s *Sketch, n int, seed uint64) []float64 {
	r := rng.New(seed)
	vals := make([]float64, n)
	for i, v := range r.Perm(n) {
		vals[i] = float64(v)
	}
	for _, v := range vals {
		s.Update(v)
	}
	return vals
}

func TestEmpty(t *testing.T) {
	s := New(0, 1)
	if !s.Empty() || s.N() != 0 {
		t.Fatal("fresh sketch not empty")
	}
	if s.Rank(5) != 0 {
		t.Fatal("rank on empty")
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Fatal("quantile on empty accepted")
	}
	if _, ok := s.Min(); ok {
		t.Fatal("min ok on empty")
	}
}

func TestDefaultK(t *testing.T) {
	s := New(0, 1)
	if s.K() != DefaultK {
		t.Fatalf("K = %d", s.K())
	}
	if New(2, 1).K() != minCap {
		t.Fatal("k below minimum not clamped")
	}
}

func TestKForEpsilon(t *testing.T) {
	if KForEpsilon(0.01) < KForEpsilon(0.1) {
		t.Fatal("k not decreasing in eps")
	}
	if KForEpsilon(0) != DefaultK || KForEpsilon(2) != DefaultK {
		t.Fatal("invalid eps should fall back to default")
	}
}

func TestExactWhileSmall(t *testing.T) {
	s := New(200, 1)
	for i := 100; i >= 1; i-- {
		s.Update(float64(i))
	}
	for q := 1; q <= 100; q += 7 {
		if got := s.Rank(float64(q)); got != uint64(q) {
			t.Fatalf("small-stream rank %d = %d", q, got)
		}
	}
}

func TestAdditiveErrorBound(t *testing.T) {
	const n = 1 << 18
	k := KForEpsilon(0.01)
	s := New(k, 7)
	feed(s, n, 8)
	if s.N() != n {
		t.Fatalf("N = %d", s.N())
	}
	// Additive guarantee: |err| ≤ εn with high probability; allow 2x slack
	// at this fixed seed.
	for q := n / 10; q <= n; q += n / 10 {
		got := float64(s.Rank(float64(q - 1)))
		if math.Abs(got-float64(q)) > 2*0.01*n {
			t.Fatalf("rank %d: estimate %v beyond additive bound", q, got)
		}
	}
}

func TestTailErrorIsAdditiveNotRelative(t *testing.T) {
	// The motivating observation of the REQ paper: KLL's low-rank relative
	// error is poor. With true rank ~ 30 and additive error ~ εn ≈ 2600,
	// the relative error at the tail should (almost always) far exceed ε.
	// This documents the baseline's behaviour rather than a bug.
	const n = 1 << 18
	s := New(KForEpsilon(0.01), 3)
	feed(s, n, 4)
	worst := 0.0
	for q := 1; q <= 64; q *= 2 {
		got := float64(s.Rank(float64(q - 1)))
		rel := math.Abs(got-float64(q)) / float64(q)
		if rel > worst {
			worst = rel
		}
	}
	if worst < 0.1 {
		t.Logf("note: unusually lucky seed, low-rank rel error %.3f", worst)
	}
}

func TestWeightConservation(t *testing.T) {
	s := New(128, 9)
	feed(s, 200000, 10)
	var w uint64
	for h, lv := range s.levels {
		w += uint64(len(lv)) << uint(h)
	}
	if w != s.N() {
		t.Fatalf("retained weight %d != n %d", w, s.N())
	}
}

func TestSpaceLogarithmic(t *testing.T) {
	// KLL space is O(k): the retained count must stay near-flat as n grows.
	k := 200
	r1 := New(k, 1)
	feed(r1, 1<<14, 2)
	r2 := New(k, 1)
	feed(r2, 1<<20, 2)
	if float64(r2.ItemsRetained()) > 2.5*float64(r1.ItemsRetained()) {
		t.Fatalf("KLL space grew too fast: %d -> %d", r1.ItemsRetained(), r2.ItemsRetained())
	}
}

func TestMinMaxExact(t *testing.T) {
	s := New(64, 11)
	vals := feed(s, 100000, 12)
	mn, mx := vals[0], vals[0]
	for _, v := range vals {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	gotMin, _ := s.Min()
	gotMax, _ := s.Max()
	if gotMin != mn || gotMax != mx {
		t.Fatal("min/max not exact")
	}
}

func TestQuantileAccuracy(t *testing.T) {
	const n = 1 << 17
	s := New(KForEpsilon(0.01), 13)
	vals := feed(s, n, 14)
	oracle := exact.FromValues(vals)
	for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		trueRank := float64(oracle.Rank(got))
		if math.Abs(trueRank-phi*n) > 2*0.01*n {
			t.Errorf("phi=%v: quantile %v has true rank %v", phi, got, trueRank)
		}
	}
}

func TestQuantileEndpoints(t *testing.T) {
	s := New(64, 15)
	feed(s, 10000, 16)
	q0, _ := s.Quantile(0)
	q1, _ := s.Quantile(1)
	mn, _ := s.Min()
	mx, _ := s.Max()
	if q0 != mn || q1 != mx {
		t.Fatal("quantile endpoints not exact min/max")
	}
}

func TestQuantileRejectsBad(t *testing.T) {
	s := New(64, 1)
	s.Update(1)
	for _, phi := range []float64{-1, 2, math.NaN()} {
		if _, err := s.Quantile(phi); err == nil {
			t.Errorf("Quantile(%v) accepted", phi)
		}
	}
}

func TestNaNIgnored(t *testing.T) {
	s := New(64, 1)
	s.Update(math.NaN())
	if s.N() != 0 {
		t.Fatal("NaN counted")
	}
}

func TestMerge(t *testing.T) {
	const n = 1 << 17
	a := New(256, 17)
	b := New(256, 18)
	r := rng.New(19)
	perm := r.Perm(n)
	for i, v := range perm {
		if i%2 == 0 {
			a.Update(float64(v))
		} else {
			b.Update(float64(v))
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != n {
		t.Fatalf("merged N = %d", a.N())
	}
	// Additive bound after merge.
	eps := 2.296 / 256
	for q := n / 4; q <= n; q += n / 4 {
		got := float64(a.Rank(float64(q - 1)))
		if math.Abs(got-float64(q)) > 3*eps*n {
			t.Fatalf("merged rank %d: %v", q, got)
		}
	}
}

func TestMergeEmptyAndSelf(t *testing.T) {
	a := New(64, 1)
	a.Update(1)
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(New(64, 2)); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(a); err == nil {
		t.Fatal("self-merge accepted")
	}
}

func TestMergePreservesWeight(t *testing.T) {
	a := New(128, 20)
	b := New(128, 21)
	feed(a, 60000, 22)
	feed(b, 90000, 23)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	var w uint64
	for h, lv := range a.levels {
		w += uint64(len(lv)) << uint(h)
	}
	if w != a.N() {
		t.Fatalf("merged weight %d != n %d", w, a.N())
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	mk := func() uint64 {
		s := New(128, 42)
		feed(s, 100000, 43)
		return s.Rank(50000)
	}
	if mk() != mk() {
		t.Fatal("not deterministic under fixed seed")
	}
}

func TestLevelCapacitiesDecay(t *testing.T) {
	s := New(200, 1)
	feed(s, 1<<18, 2)
	H := s.NumLevels()
	if H < 3 {
		t.Fatalf("expected several levels, got %d", H)
	}
	for h := 0; h < H-1; h++ {
		if s.capacity(h, H) > s.capacity(h+1, H) {
			t.Fatalf("capacity not non-decreasing with level: %d vs %d", s.capacity(h, H), s.capacity(h+1, H))
		}
	}
	if s.capacity(H-1, H) != s.K() {
		t.Fatalf("top capacity %d != k", s.capacity(H-1, H))
	}
}
