// Package kll implements the KLL sketch of Karnin, Lang and Liberty
// ("Optimal Quantile Approximation in Streams", FOCS 2016) for float64
// streams: the state-of-the-art additive-error quantile sketch and the
// direct ancestor of the REQ sketch reproduced in this repository.
//
// KLL guarantees |R̂(y) − R(y)| ≤ εn (additive!) with space O(1/ε). The REQ
// paper's motivation is exactly that this guarantee collapses at the tails:
// for an item of true rank R(y) = εn/10, an additive εn error is a 1000%
// relative error. The experiment harness uses this package as the primary
// additive baseline (experiments E2 and E4).
//
// This is the standard compactor-chain variant: level h holds items of
// weight 2^h with capacity ⌈k·c^(H−1−h)⌉ (c = 2/3), and when the total size
// exceeds the total capacity the lowest over-full level is compacted — every
// other item of its sorted buffer, a fair coin choosing the parity, moves up
// a level. Unlike the relative-compactor, a KLL compaction consumes the
// whole buffer; there is no protected bottom half, which is precisely why
// its tail error is additive.
package kll

import (
	"errors"
	"math"
	"sort"

	"req/internal/rng"
)

// DefaultK is the accuracy parameter used when the caller passes 0; it gives
// roughly 1.65% additive rank error at 99% confidence (matching the Apache
// DataSketches default of 200).
const DefaultK = 200

const (
	decay  = 2.0 / 3.0
	minCap = 4
)

// Sketch is a KLL quantiles sketch over float64. Not safe for concurrent use.
type Sketch struct {
	k      int
	levels [][]float64
	n      uint64
	minV   float64
	maxV   float64
	rnd    *rng.Source
}

// New returns an empty KLL sketch with accuracy parameter k (0 means
// DefaultK) and the given random seed.
func New(k int, seed uint64) *Sketch {
	if k <= 0 {
		k = DefaultK
	}
	if k < minCap {
		k = minCap
	}
	return &Sketch{
		k:      k,
		levels: make([][]float64, 1, 8),
		minV:   math.Inf(1),
		maxV:   math.Inf(-1),
		rnd:    rng.New(seed),
	}
}

// KForEpsilon returns the k needed for additive error ε·n with constant
// (≈99%) confidence, using the standard KLL constant ≈ 2.296/ε derived from
// the DataSketches error model.
func KForEpsilon(eps float64) int {
	if eps <= 0 || eps >= 1 {
		return DefaultK
	}
	k := int(math.Ceil(2.296 / eps))
	if k < minCap {
		k = minCap
	}
	return k
}

// K returns the accuracy parameter.
func (s *Sketch) K() int { return s.k }

// N returns the number of items summarised.
func (s *Sketch) N() uint64 { return s.n }

// Empty reports whether the sketch has seen no items.
func (s *Sketch) Empty() bool { return s.n == 0 }

// Min returns the exact minimum seen. ok is false when empty.
func (s *Sketch) Min() (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	return s.minV, true
}

// Max returns the exact maximum seen. ok is false when empty.
func (s *Sketch) Max() (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	return s.maxV, true
}

// ItemsRetained returns the number of items currently stored.
func (s *Sketch) ItemsRetained() int {
	total := 0
	for _, lv := range s.levels {
		total += len(lv)
	}
	return total
}

// NumLevels returns the number of compactor levels.
func (s *Sketch) NumLevels() int { return len(s.levels) }

// capacity returns the capacity of level h when the sketch has numLevels
// levels: ⌈k·c^(numLevels−1−h)⌉, floored at minCap. The top level always has
// capacity k.
func (s *Sketch) capacity(h, numLevels int) int {
	depth := numLevels - 1 - h
	c := int(math.Ceil(float64(s.k) * math.Pow(decay, float64(depth))))
	if c < minCap {
		c = minCap
	}
	return c
}

// totalCapacity sums the level capacities for the current height.
func (s *Sketch) totalCapacity() int {
	total := 0
	for h := range s.levels {
		total += s.capacity(h, len(s.levels))
	}
	return total
}

// Update inserts one value. NaN is ignored (matching DataSketches).
func (s *Sketch) Update(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < s.minV {
		s.minV = v
	}
	if v > s.maxV {
		s.maxV = v
	}
	s.levels[0] = append(s.levels[0], v)
	s.n++
	if s.ItemsRetained() > s.totalCapacity() {
		s.compress()
	}
}

// compress compacts the lowest over-full level, growing the chain if the
// top level itself overflows. One pass is enough to get back under the
// total capacity in the streaming case; merging may need several, so loop.
func (s *Sketch) compress() {
	for s.ItemsRetained() > s.totalCapacity() {
		compacted := false
		for h := 0; h < len(s.levels); h++ {
			if len(s.levels[h]) >= s.capacity(h, len(s.levels)) {
				s.compactLevel(h)
				compacted = true
				break
			}
		}
		if !compacted {
			return
		}
	}
}

// compactLevel sorts level h and promotes every other item to level h+1.
// An odd-sized buffer keeps its smallest item at level h so total weight is
// conserved exactly.
func (s *Sketch) compactLevel(h int) {
	buf := s.levels[h]
	if len(buf) < 2 {
		return
	}
	sort.Float64s(buf)
	keep := 0
	if len(buf)%2 == 1 {
		keep = 1
	}
	region := buf[keep:]
	offset := 0
	if s.rnd.Coin() {
		offset = 1
	}
	if h+1 >= len(s.levels) {
		s.levels = append(s.levels, nil)
	}
	for i := offset; i < len(region); i += 2 {
		s.levels[h+1] = append(s.levels[h+1], region[i])
	}
	s.levels[h] = buf[:keep]
}

// Rank returns the estimated inclusive rank of y.
func (s *Sketch) Rank(y float64) uint64 {
	var r uint64
	for h, lv := range s.levels {
		cnt := 0
		for _, x := range lv {
			if x <= y {
				cnt++
			}
		}
		r += uint64(cnt) << uint(h)
	}
	return r
}

// Quantile returns the estimated φ-quantile, φ ∈ [0, 1].
func (s *Sketch) Quantile(phi float64) (float64, error) {
	if s.n == 0 {
		return 0, errors.New("kll: empty sketch")
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return 0, errors.New("kll: rank out of [0, 1]")
	}
	if phi == 0 {
		return s.minV, nil
	}
	if phi == 1 {
		return s.maxV, nil
	}
	type wi struct {
		v float64
		w uint64
	}
	all := make([]wi, 0, s.ItemsRetained())
	for h, lv := range s.levels {
		w := uint64(1) << uint(h)
		for _, x := range lv {
			all = append(all, wi{x, w})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	target := uint64(math.Ceil(phi * float64(s.n)))
	if target == 0 {
		target = 1
	}
	var run uint64
	for _, e := range all {
		run += e.w
		if run >= target {
			return e.v, nil
		}
	}
	return s.maxV, nil
}

// Merge absorbs other into s. Sketches with different k may be merged; the
// result keeps s's k (Apache DataSketches semantics: merge into the more
// accurate sketch to keep its guarantee).
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other == s {
		return errors.New("kll: cannot merge a sketch into itself")
	}
	for len(s.levels) < len(other.levels) {
		s.levels = append(s.levels, nil)
	}
	for h, lv := range other.levels {
		s.levels[h] = append(s.levels[h], lv...)
	}
	s.n += other.n
	if other.minV < s.minV {
		s.minV = other.minV
	}
	if other.maxV > s.maxV {
		s.maxV = other.maxV
	}
	s.compress()
	return nil
}
