package stats

import (
	"math"
	"testing"

	"req/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 {
		t.Fatal("empty summary count")
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEq(s.Mean, 3, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %v", s.P50)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated input")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {0.1, 10}, {0.5, 50}, {0.9, 90}, {0.91, 100}, {1, 100},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile not NaN")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(mean, 5, 1e-12) || !almostEq(std, 2, 1e-12) {
		t.Fatalf("mean=%v std=%v, want 5, 2", mean, std)
	}
	m0, s0 := MeanStd(nil)
	if m0 != 0 || s0 != 0 {
		t.Fatal("empty MeanStd not zero")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 10000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	mean, std := MeanStd(xs)
	if !almostEq(w.Mean(), mean, 1e-9) {
		t.Fatalf("welford mean %v vs %v", w.Mean(), mean)
	}
	if !almostEq(w.Std(), std, 1e-9) {
		t.Fatalf("welford std %v vs %v", w.Std(), std)
	}
	if w.N() != len(xs) {
		t.Fatal("welford count")
	}
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	if w.Min() != mn || w.Max() != mx {
		t.Fatal("welford min/max")
	}
}

func TestWelfordSmall(t *testing.T) {
	var w Welford
	if w.Std() != 0 {
		t.Fatal("std of empty not 0")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Std() != 0 || w.Min() != 5 || w.Max() != 5 {
		t.Fatal("single-observation welford wrong")
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// y = 3·x^2.5 exactly.
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 2.5)
	}
	e, c := FitPowerLaw(xs, ys)
	if !almostEq(e, 2.5, 1e-9) || !almostEq(c, 3, 1e-9) {
		t.Fatalf("fit = (%v, %v), want (2.5, 3)", e, c)
	}
}

func TestFitPowerLawNoisy(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = 7 * math.Pow(xs[i], 1.5) * math.Exp(0.05*r.NormFloat64())
	}
	e, _ := FitPowerLaw(xs, ys)
	if !almostEq(e, 1.5, 0.1) {
		t.Fatalf("noisy fit exponent = %v, want ≈1.5", e)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	e, c := FitPowerLaw([]float64{1}, []float64{1})
	if !math.IsNaN(e) || !math.IsNaN(c) {
		t.Fatal("single point fit should be NaN")
	}
	e, _ = FitPowerLaw([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !math.IsNaN(e) {
		t.Fatal("zero-variance x fit should be NaN")
	}
	e, _ = FitPowerLaw([]float64{-1, 0, 3, 6}, []float64{1, 1, 27, 216})
	if math.IsNaN(e) {
		t.Fatal("fit should skip non-positive points and still work")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Fatal("RelErr wrong")
	}
	if RelErr(90, 100) != 0.1 {
		t.Fatal("RelErr not absolute")
	}
	if SignedRelErr(90, 100) != -0.1 {
		t.Fatal("SignedRelErr wrong")
	}
}

func TestMaxFloat(t *testing.T) {
	if MaxFloat([]float64{3, 9, 1}) != 9 {
		t.Fatal("MaxFloat wrong")
	}
	if !math.IsNaN(MaxFloat(nil)) {
		t.Fatal("MaxFloat empty not NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if !almostEq(GeoMean([]float64{1, 100}), 10, 1e-9) {
		t.Fatal("GeoMean wrong")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean with negative should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("GeoMean empty should be NaN")
	}
}
