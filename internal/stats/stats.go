// Package stats provides the small statistics toolkit the experiment
// harness uses to summarise error samples and check scaling claims.
package stats

import (
	"math"
	"sort"
)

// Summary holds order statistics and moments of a sample.
type Summary struct {
	Count              int
	Mean, Std          float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mean, std := MeanStd(sorted)
	return Summary{
		Count: len(sorted),
		Mean:  mean,
		Std:   std,
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   Percentile(sorted, 0.50),
		P90:   Percentile(sorted, 0.90),
		P95:   Percentile(sorted, 0.95),
		P99:   Percentile(sorted, 0.99),
	}
}

// Percentile returns the p-th percentile (p ∈ [0, 1]) of an ascending-sorted
// sample using the nearest-rank definition.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// MeanStd returns the sample mean and (population) standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// Welford accumulates mean and variance in one pass without storing the
// sample (used for long error sweeps).
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Std returns the running population standard deviation.
func (w *Welford) Std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// Min returns the smallest observation (0 if none).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if none).
func (w *Welford) Max() float64 { return w.max }

// FitPowerLaw fits y = c·x^e by least squares on (log x, log y) and returns
// the exponent e and coefficient c. Pairs with non-positive coordinates are
// skipped. It needs at least two usable points; otherwise it returns NaNs.
//
// The harness uses it to verify space-scaling claims: for the REQ sketch,
// retained items vs. log(εn) should fit exponent ≈ 1.5 (Theorem 1), and
// retained items vs. 1/ε should fit exponent ≈ 1.
func FitPowerLaw(xs, ys []float64) (exponent, coeff float64) {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range xs {
		if i >= len(ys) || xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN(), math.NaN()
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if math.Abs(den) <= 1e-12*(math.Abs(fn*sxx)+sx*sx) {
		return math.NaN(), math.NaN()
	}
	exponent = (fn*sxy - sx*sy) / den
	coeff = math.Exp((sy - exponent*sx) / fn)
	return exponent, coeff
}

// RelErr returns |est − truth| / truth; truth must be positive.
func RelErr(est, truth float64) float64 {
	return math.Abs(est-truth) / truth
}

// SignedRelErr returns (est − truth) / truth; truth must be positive.
func SignedRelErr(est, truth float64) float64 {
	return (est - truth) / truth
}

// MaxFloat returns the maximum of xs (NaN for empty).
func MaxFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of positive xs (NaN if any x ≤ 0 or
// the sample is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
