package snapstore

import (
	"errors"
	"testing"
)

func TestStoreSaveOpenLatest(t *testing.T) {
	m := NewMemFS()
	st := NewStore(m, "data/snaps")

	if _, err := st.OpenLatest(OpenOptions{}); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty store: got %v, want ErrNoSnapshot", err)
	}

	p1 := testPayload(4, 1)
	gen, err := st.Save(p1)
	if err != nil || gen != 1 {
		t.Fatalf("first save: gen=%d err=%v", gen, err)
	}
	f, err := st.OpenLatest(OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertFileMatches(t, f, p1, 1)
	f.Close()

	p2 := testPayload(9, 2)
	gen, err = st.Save(p2)
	if err != nil || gen != 2 {
		t.Fatalf("second save: gen=%d err=%v", gen, err)
	}
	f, err = st.OpenLatest(OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertFileMatches(t, f, p2, 2)
	f.Close()
}

func TestStorePruneKeep(t *testing.T) {
	m := NewMemFS()
	st := NewStore(m, "snaps")
	st.SetKeep(2)
	for i := 1; i <= 5; i++ {
		if _, err := st.Save(testPayload(uint64(i), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("after keep=2 rotation: generations %v", gens)
	}

	st.SetKeep(1)
	if _, err := st.Save(testPayload(6, 6)); err != nil {
		t.Fatal(err)
	}
	gens, _ = st.Generations()
	if len(gens) != 1 || gens[0] != 6 {
		t.Fatalf("after keep=1: generations %v", gens)
	}
}

// TestStoreRecoverySkipsCorrupt: when the newest generation is damaged,
// OpenLatest must fall back to the previous valid one.
func TestStoreRecoverySkipsCorrupt(t *testing.T) {
	m := NewMemFS()
	st := NewStore(m, "snaps")
	p1 := testPayload(4, 1)
	p2 := testPayload(5, 2)
	if _, err := st.Save(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(p2); err != nil {
		t.Fatal(err)
	}

	// Truncate generation 2 mid-file (a torn write that somehow reached the
	// final name — e.g. a pre-rename crash model without write barriers).
	path2 := st.PathFor(2)
	rf, err := m.Open(path2)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := rf.Size()
	img := make([]byte, size/2)
	rf.ReadAt(img, 0)
	rf.Close()
	m.Remove(path2)
	w, _ := m.Create(path2)
	w.Write(img)
	w.Close()

	f, err := st.OpenLatest(OpenOptions{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	assertFileMatches(t, f, p1, 1)
	f.Close()

	// Damage generation 1 too: now every generation is rejected and the
	// error must wrap ErrCorrupt and mention both generations.
	path1 := st.PathFor(1)
	rf, _ = m.Open(path1)
	size, _ = rf.Size()
	full := make([]byte, size)
	rf.ReadAt(full, 0)
	rf.Close()
	full[headerSize+1] ^= 0xFF
	m.Remove(path1)
	w, _ = m.Create(path1)
	w.Write(full)
	w.Close()

	_, err = st.OpenLatest(OpenOptions{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("all-corrupt store: got %v, want ErrCorrupt", err)
	}
	if errors.Is(err, ErrNoSnapshot) {
		t.Fatal("all-corrupt store must not report ErrNoSnapshot")
	}
}

// TestStoreIgnoresForeignFiles: stray files in the directory are not
// generations and never break the scan.
func TestStoreIgnoresForeignFiles(t *testing.T) {
	m := NewMemFS()
	st := NewStore(m, "snaps")
	if _, err := st.Save(testPayload(3, 1)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"snaps/README", "snaps/snap-1.reqsnap", "snaps/x.tmp"} {
		w, err := m.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		w.Write([]byte("junk"))
		w.Close()
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0] != 1 {
		t.Fatalf("generations %v, want [1]", gens)
	}
	f, err := st.OpenLatest(OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The next save prunes the stale temp file.
	if _, err := st.Save(testPayload(4, 2)); err != nil {
		t.Fatal(err)
	}
	names, _ := m.ReadDir("snaps")
	for _, n := range names {
		if n == "x.tmp" {
			t.Fatal("stale temp file survived a save")
		}
	}
}

// TestStoreOSFS exercises the real filesystem end: save, reopen (mmap on
// unix), rotate, recover.
func TestStoreOSFS(t *testing.T) {
	dir := t.TempDir() + "/snaps"
	st := NewStore(OS, dir)
	p1 := testPayload(100, 1)
	if _, err := st.Save(p1); err != nil {
		t.Fatal(err)
	}
	p2 := testPayload(200, 2)
	if _, err := st.Save(p2); err != nil {
		t.Fatal(err)
	}
	f, err := st.OpenLatest(OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertFileMatches(t, f, p2, 2)
	if !f.Mapped() {
		t.Log("note: file not memory-mapped on this platform (portable path)")
	}
	// Close after reading: mmap'd sections must stay valid until Close.
	f.Close()

	// NoMmap path over the same file must agree.
	f, err = st.OpenLatest(OpenOptions{NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.Mapped() {
		t.Fatal("NoMmap open reports mapped")
	}
	assertFileMatches(t, f, p2, 2)
	f.Close()
}
