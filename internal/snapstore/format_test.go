package snapstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// testPayload builds a deterministic payload with count coreset entries.
func testPayload(count uint64, seed byte) *Payload {
	p := &Payload{
		App:      []byte{seed, 0xAA, 0xBB, 0xCC},
		Count:    count,
		IdxTotal: count * 7,
	}
	if count == 0 {
		return p
	}
	mk := func(n uint64) []byte {
		b := make([]byte, 8*n)
		for i := range b {
			b[i] = seed + byte(i)
		}
		return b
	}
	p.Sections[SecViewItems] = mk(count)
	p.Sections[SecViewCum] = mk(count)
	p.Sections[SecIdxItems] = mk(count + 1)
	p.Sections[SecIdxCum] = mk(count + 1)
	p.Sections[SecIdxBefore] = mk(count + 1)
	return p
}

// writeToMem writes payload p as gen into a fresh MemFS at path and returns
// both plus the raw file image.
func writeToMem(t *testing.T, p *Payload, gen uint64) (*MemFS, string, []byte) {
	t.Helper()
	m := NewMemFS()
	if err := m.MkdirAll("snaps"); err != nil {
		t.Fatal(err)
	}
	path := "snaps/" + GenName(gen)
	if err := WriteSnapshotFile(m, path, gen, p); err != nil {
		t.Fatal(err)
	}
	rf, err := m.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	size, _ := rf.Size()
	img := make([]byte, size)
	if _, err := rf.ReadAt(img, 0); err != nil {
		t.Fatal(err)
	}
	return m, path, img
}

func assertFileMatches(t *testing.T, f *File, p *Payload, wantGen uint64) {
	t.Helper()
	if f.Header.Gen != wantGen {
		t.Fatalf("gen = %d, want %d", f.Header.Gen, wantGen)
	}
	if f.Header.Count != p.Count || f.Header.IdxTotal != p.IdxTotal {
		t.Fatalf("count/idxTotal = %d/%d, want %d/%d",
			f.Header.Count, f.Header.IdxTotal, p.Count, p.IdxTotal)
	}
	if !bytes.Equal(f.Header.App, p.App) {
		t.Fatalf("app header mismatch")
	}
	for i := range p.Sections {
		if !bytes.Equal(f.Section(i), p.Sections[i]) {
			t.Fatalf("section %d content mismatch", i)
		}
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	for _, count := range []uint64{0, 1, 2, 7, 64, 1000} {
		p := testPayload(count, byte(count))
		m, path, _ := writeToMem(t, p, count+1)
		f, err := OpenFile(m, path, OpenOptions{})
		if err != nil {
			t.Fatalf("count=%d: %v", count, err)
		}
		assertFileMatches(t, f, p, count+1)
		if f.Mapped() {
			t.Fatalf("MemFS file claims to be mapped")
		}
		f.Close()
	}
}

func TestOpenSkipChecksum(t *testing.T) {
	p := testPayload(16, 3)
	m, path, _ := writeToMem(t, p, 9)
	f, err := OpenFile(m, path, OpenOptions{SkipChecksum: true})
	if err != nil {
		t.Fatal(err)
	}
	assertFileMatches(t, f, p, 9)
	f.Close()
}

func TestSectionAlignment(t *testing.T) {
	p := testPayload(5, 1)
	m, path, _ := writeToMem(t, p, 1)
	f, err := OpenFile(m, path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, s := range f.Header.Sections {
		if s.Off%secAlign != 0 {
			t.Fatalf("section %d offset %d not %d-aligned", i, s.Off, secAlign)
		}
		// Words must not panic and must see the same bytes.
		w := Words(f.Section(i))
		if len(w) != len(f.Section(i))/8 {
			t.Fatalf("section %d: %d words for %d bytes", i, len(w), len(f.Section(i)))
		}
	}
}

// TestTruncationEveryByte is the torn-write sweep: every proper prefix of a
// valid file must be rejected — as ErrTornWrite or ErrCorrupt, never a
// panic, never success.
func TestTruncationEveryByte(t *testing.T) {
	p := testPayload(6, 2)
	_, _, img := writeToMem(t, p, 4)
	for cut := 0; cut < len(img); cut++ {
		m := NewMemFS()
		m.MkdirAll("d")
		w, err := m.Create("d/t")
		if err != nil {
			t.Fatal(err)
		}
		w.Write(img[:cut])
		w.Close()
		f, err := OpenFile(m, "d/t", OpenOptions{})
		if err == nil {
			f.Close()
			t.Fatalf("truncation at %d/%d accepted", cut, len(img))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}

// TestBitFlipEveryByte corrupts each byte of a valid file in turn; the
// default (checksumming) open must reject every flip.
func TestBitFlipEveryByte(t *testing.T) {
	p := testPayload(6, 5)
	_, _, img := writeToMem(t, p, 2)
	for pos := 0; pos < len(img); pos++ {
		// Padding gap bytes are not covered by any checksum; flips there are
		// semantically invisible and acceptance is fine.
		if inPaddingGap(t, img, pos) {
			continue
		}
		bad := append([]byte(nil), img...)
		bad[pos] ^= 0x40
		m := NewMemFS()
		m.MkdirAll("d")
		w, _ := m.Create("d/t")
		w.Write(bad)
		w.Close()
		f, err := OpenFile(m, "d/t", OpenOptions{})
		if err == nil {
			f.Close()
			t.Fatalf("bit flip at byte %d accepted", pos)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: error %v does not wrap ErrCorrupt", pos, err)
		}
	}
}

// inPaddingGap reports whether pos falls in an alignment gap between
// sections (or in the unused tail of the header page), where no checksum
// covers the bytes.
func inPaddingGap(t *testing.T, img []byte, pos int) bool {
	t.Helper()
	hdr, err := decodeHeader(img[:headerSize], uint64(len(img)))
	if err != nil {
		t.Fatal(err)
	}
	if pos < headerSize {
		return pos >= headerUsed // header page tail beyond the CRC'd region
	}
	if pos >= len(img)-footerSize {
		return pos >= len(img)-footerSize+footerUsed
	}
	for _, s := range hdr.Sections {
		if uint64(pos) >= s.Off && uint64(pos) < s.Off+s.Len {
			return false
		}
	}
	return true
}

func TestGenMismatchRejected(t *testing.T) {
	p := testPayload(3, 1)
	_, _, img := writeToMem(t, p, 7)
	// Rebuild the footer with a different generation but a valid footer CRC:
	// header/footer generation cross-check must fire.
	bad := append([]byte(nil), img...)
	copy(bad[len(bad)-footerSize:], encodeFooter(8, uint64(len(bad))))
	m := NewMemFS()
	m.MkdirAll("d")
	w, _ := m.Create("d/t")
	w.Write(bad)
	w.Close()
	_, err := OpenFile(m, "d/t", OpenOptions{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestErrTornWriteWrapsErrCorrupt(t *testing.T) {
	if !errors.Is(ErrTornWrite, ErrCorrupt) {
		t.Fatal("ErrTornWrite must wrap ErrCorrupt")
	}
}

func TestBadPayloadShapes(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d")
	// App header too large.
	big := testPayload(1, 1)
	big.App = make([]byte, appHdrCap+1)
	if err := WriteSnapshotFile(m, "d/a", 1, big); err == nil {
		t.Fatal("oversized app header accepted")
	}
	// Section length inconsistent with count.
	bad := testPayload(4, 1)
	bad.Sections[SecViewCum] = bad.Sections[SecViewCum][:16]
	if err := WriteSnapshotFile(m, "d/b", 1, bad); err == nil {
		t.Fatal("malformed section lengths accepted")
	}
	// Writer failures must not leave files behind under the final name.
	if _, err := m.Open("d/a"); err == nil {
		t.Fatal("failed write left final file")
	}
}

func TestGenNameRoundTrip(t *testing.T) {
	for _, gen := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		name := GenName(gen)
		got, ok := ParseGenName(name)
		if !ok || got != gen {
			t.Fatalf("ParseGenName(%q) = %d, %v", name, got, ok)
		}
	}
	for _, bad := range []string{
		"", "snap-.reqsnap", "snap-12.reqsnap", "snap-00000000000000000001.tmp",
		"snap-00000000000000000001.reqsnap.tmp", "x-00000000000000000001.reqsnap",
		"snap-0000000000000000000x.reqsnap",
	} {
		if _, ok := ParseGenName(bad); ok {
			t.Fatalf("ParseGenName(%q) accepted", bad)
		}
	}
}

func TestInspect(t *testing.T) {
	p := testPayload(8, 9)
	m, path, img := writeToMem(t, p, 3)
	rep, err := Inspect(m, path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil || !rep.HeaderOK {
		t.Fatalf("valid file reported: %v", rep.Err)
	}
	if rep.Header.Gen != 3 || rep.Header.Count != 8 {
		t.Fatalf("header fields wrong: %+v", rep.Header)
	}
	for i, s := range rep.Sections {
		if !s.OK {
			t.Fatalf("section %d reported corrupt", i)
		}
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}

	// Damage one section: Inspect still parses the header and pinpoints it.
	bad := append([]byte(nil), img...)
	hdr, _ := decodeHeader(img[:headerSize], uint64(len(img)))
	bad[hdr.Sections[SecIdxCum].Off] ^= 0xFF
	w, _ := m.Create("snaps/bad")
	w.Write(bad)
	w.Close()
	rep, err = Inspect(m, "snaps/bad")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err == nil || !errors.Is(rep.Err, ErrCorrupt) {
		t.Fatalf("damaged file verdict: %v", rep.Err)
	}
	if rep.Sections[SecIdxCum].OK {
		t.Fatal("damaged section reported ok")
	}
	for i, s := range rep.Sections {
		if i != SecIdxCum && !s.OK && hdr.Sections[i].Len > 0 {
			t.Fatalf("undamaged section %d reported corrupt", i)
		}
	}

	// Truncated file: report carries a torn-write verdict, no panic.
	w, _ = m.Create("snaps/torn")
	w.Write(img[:headerSize/2])
	w.Close()
	rep, err = Inspect(m, "snaps/torn")
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rep.Err, ErrTornWrite) {
		t.Fatalf("truncated file verdict: %v", rep.Err)
	}
	_ = fmt.Sprintf("%s", rep)
}
