package snapstore

import "fmt"

// zeros is the shared padding source for section alignment gaps.
var zeros [secAlign]byte

// writePayload writes one complete snapshot image to w — header page,
// aligned sections, footer — and fsyncs it. It does NOT close w. The
// sequence is strictly append-only so a crash at any byte leaves a
// recognizable torn prefix: the footer, written last, only exists in a
// complete file.
func writePayload(w WFile, gen uint64, p *Payload) error {
	offs, fileLen := layoutSections(sectionLens(p))
	hdr, err := encodeHeader(p, gen, offs)
	if err != nil {
		return err
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	pos := uint64(headerSize)
	for i, sec := range p.Sections {
		// offs[i] == pos by construction (layoutSections and this loop pad
		// identically); the alignment gap precedes the next section.
		if _, err := w.Write(sec); err != nil {
			return fmt.Errorf("section %d: %w", i, err)
		}
		pos += uint64(len(sec))
		if pad := alignUp(pos, secAlign) - pos; pad > 0 {
			if _, err := w.Write(zeros[:pad]); err != nil {
				return err
			}
			pos += pad
		}
	}
	if _, err := w.Write(encodeFooter(gen, fileLen)); err != nil {
		return err
	}
	return w.Sync()
}

func sectionLens(p *Payload) (lens [NumSections]uint64) {
	for i := range p.Sections {
		lens[i] = uint64(len(p.Sections[i]))
	}
	return lens
}

// WriteSnapshotFile atomically writes one snapshot file at path: the image
// goes to path+".tmp", is fsynced, renamed over path, and the directory is
// fsynced. A crash at any point leaves either the previous file (or no
// file) or the complete new file — never a partial one under the final
// name.
func WriteSnapshotFile(fsys FS, path string, gen uint64, p *Payload) error {
	tmp := path + tmpSuffix
	w, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := writePayload(w, gen, p); err != nil {
		w.Close()
		fsys.Remove(tmp) // best effort; stale temps are also pruned by Store.Save
		return err
	}
	if err := w.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(parentDir(path))
}
