package snapstore

import (
	"bytes"
	"errors"
	"testing"
)

// matchesPayload reports whether f serves exactly payload p at gen.
func matchesPayload(f *File, p *Payload, gen uint64) bool {
	if f.Header.Gen != gen || f.Header.Count != p.Count || f.Header.IdxTotal != p.IdxTotal {
		return false
	}
	if !bytes.Equal(f.Header.App, p.App) {
		return false
	}
	for i := range p.Sections {
		if !bytes.Equal(f.Section(i), p.Sections[i]) {
			return false
		}
	}
	return true
}

// requireOldOrNew asserts the crash-safety contract on one post-crash
// world: OpenLatest must serve either the old or the new payload, fully
// intact — never an error, never a blend.
func requireOldOrNew(t *testing.T, world *MemFS, dir string, old, new_ *Payload, budget int64, label string) (servedNew bool) {
	t.Helper()
	st := NewStore(world, dir)
	f, err := st.OpenLatest(OpenOptions{})
	if err != nil {
		t.Fatalf("budget %d, %s world: recovery failed: %v", budget, label, err)
	}
	defer f.Close()
	switch {
	case matchesPayload(f, old, 1):
		return false
	case matchesPayload(f, new_, 2):
		return true
	default:
		t.Fatalf("budget %d, %s world: recovered generation %d matches neither old nor new payload",
			budget, label, f.Header.Gen)
		return false
	}
}

// TestCrashMatrix is the exhaustive fault-injection sweep: starting from a
// durable generation 1, a second Save is interrupted after every possible
// amount of progress — every byte boundary of the file image and every
// metadata operation (create, fsync, rename, directory fsync, prune). For
// each crash point, recovery is checked in both post-crash worlds:
//
//   - "persisted": everything unsynced is lost (MemFS.Crash) — the
//     pessimal power cut;
//   - "volatile": everything written survived — the optimal crash.
//
// Real crashes land between the two; passing both extremes plus the torn
// sweep in TestTruncationEveryByte brackets them. The invariant: recovery
// ALWAYS serves old-or-new, and a Save that reported success implies the
// new generation is durable even in the pessimal world.
func TestCrashMatrix(t *testing.T) {
	const dir = "data/snaps"
	pOld := testPayload(6, 10)
	pNew := testPayload(11, 20)

	// Baseline: a store with durable generation 1.
	base := NewMemFS()
	if _, err := NewStore(base, dir).Save(pOld); err != nil {
		t.Fatal(err)
	}
	base.SyncDir(dir) // everything durable before the experiment begins

	// Size the sweep: run the second save once, uninterrupted, and record
	// its total cost in injection units.
	probe := NewFaultFS(base.Clone())
	if _, err := NewStore(probe, dir).Save(pNew); err != nil {
		t.Fatal(err)
	}
	total := probe.Cost()
	if total < headerSize {
		t.Fatalf("implausible save cost %d", total)
	}
	t.Logf("sweeping %d crash points", total)

	sawOldPersisted, sawNewPersisted := false, false
	for budget := int64(0); budget <= total; budget++ {
		world := base.Clone()
		ff := NewFaultFS(world)
		ff.Arm(budget)
		st := NewStore(ff, dir)
		_, saveErr := st.Save(pNew)
		crashed := ff.Crashed()
		if budget < total && !crashed {
			t.Fatalf("budget %d < total %d but no fault fired", budget, total)
		}
		if saveErr != nil && !errors.Is(saveErr, ErrInjected) {
			t.Fatalf("budget %d: save failed with a non-injected error: %v", budget, saveErr)
		}

		// Optimal world: every written byte survived.
		requireOldOrNew(t, world.Clone(), dir, pOld, pNew, budget, "volatile")

		// Pessimal world: everything unsynced is gone.
		world.Crash()
		servedNew := requireOldOrNew(t, world, dir, pOld, pNew, budget, "persisted")
		if saveErr == nil && !servedNew {
			// Save reported success ⇒ rename+dir-sync completed ⇒ the new
			// generation must be durable even if later pruning was cut short.
			t.Fatalf("budget %d: save succeeded but pessimal recovery served the old generation", budget)
		}
		if servedNew {
			sawNewPersisted = true
		} else {
			sawOldPersisted = true
		}
	}
	// Sanity on the sweep itself: both outcomes must actually occur.
	if !sawOldPersisted || !sawNewPersisted {
		t.Fatalf("degenerate sweep: old served=%v new served=%v", sawOldPersisted, sawNewPersisted)
	}
}

// TestCrashMatrixFirstSave sweeps crash points of the FIRST save into an
// empty directory: recovery must then report ErrNoSnapshot or serve the
// complete new generation — never corruption.
func TestCrashMatrixFirstSave(t *testing.T) {
	const dir = "snaps"
	p := testPayload(5, 7)

	probe := NewFaultFS(NewMemFS())
	if _, err := NewStore(probe, dir).Save(p); err != nil {
		t.Fatal(err)
	}
	total := probe.Cost()

	for budget := int64(0); budget <= total; budget++ {
		world := NewMemFS()
		ff := NewFaultFS(world)
		ff.Arm(budget)
		_, saveErr := NewStore(ff, dir).Save(p)

		for _, w := range []*MemFS{world.Clone(), crashOf(world)} {
			f, err := NewStore(w, dir).OpenLatest(OpenOptions{})
			switch {
			case err == nil:
				if !matchesPayload(f, p, 1) {
					t.Fatalf("budget %d: recovered file is not the saved payload", budget)
				}
				f.Close()
			case errors.Is(err, ErrNoSnapshot):
				// Acceptable: the crash predates a durable generation.
			default:
				t.Fatalf("budget %d: recovery error %v", budget, err)
			}
		}
		if saveErr == nil {
			// Success implies pessimal-world durability.
			f, err := NewStore(crashOf(world), dir).OpenLatest(OpenOptions{})
			if err != nil {
				t.Fatalf("budget %d: save succeeded but pessimal recovery failed: %v", budget, err)
			}
			f.Close()
		}
	}
}

// crashOf returns a post-power-cut copy of m without disturbing m itself:
// an exact clone (synced/unsynced distinction preserved) with the crash
// applied.
func crashOf(m *MemFS) *MemFS {
	scratch := m.CloneExact()
	scratch.Crash()
	return scratch
}

// TestFsyncFailureThenRetry: a save whose file fsync fails must leave the
// store fully usable — the old generation intact and a subsequent retry
// succeeding.
func TestFsyncFailureThenRetry(t *testing.T) {
	const dir = "snaps"
	pOld := testPayload(4, 1)
	pNew := testPayload(8, 2)

	m := NewMemFS()
	if _, err := NewStore(m, dir).Save(pOld); err != nil {
		t.Fatal(err)
	}

	// Find the cost position of the file Sync: it is the first metadata op
	// after all payload bytes. Probe the full save, then arm just below
	// completion repeatedly until the error is a Sync failure — simpler:
	// sweep budgets and pick one where the temp file holds the full image
	// but the save failed.
	probe := NewFaultFS(m.Clone())
	if _, err := NewStore(probe, dir).Save(pNew); err != nil {
		t.Fatal(err)
	}
	total := probe.Cost()

	retried := false
	for budget := total - 1; budget >= 0 && budget > total-6; budget-- {
		world := m.Clone()
		ff := NewFaultFS(world)
		ff.Arm(budget)
		if _, err := NewStore(ff, dir).Save(pNew); err == nil {
			continue // prune-phase fault; save legitimately succeeded
		}
		// The process SURVIVES (no crash): retry on the same world with the
		// fault cleared.
		ff.Disarm()
		gen, err := NewStore(ff, dir).Save(pNew)
		if err != nil {
			t.Fatalf("budget %d: retry failed: %v", budget, err)
		}
		f, err := NewStore(world, dir).OpenLatest(OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !matchesPayload(f, pNew, gen) {
			t.Fatalf("budget %d: retry did not serve the new payload", budget)
		}
		f.Close()
		retried = true
	}
	if !retried {
		t.Fatal("sweep never exercised a failed-then-retried save")
	}
}

// TestFaultFSShortWrite: the injector must apply the affordable PREFIX of
// a write (torn write), not refuse cleanly.
func TestFaultFSShortWrite(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d")
	ff := NewFaultFS(m)
	ff.Arm(1 + 5) // 1 for Create, 5 bytes of payload
	w, err := ff.Create("d/f")
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.Write([]byte("hello world"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if !ff.Crashed() {
		t.Fatal("injector not crashed after exhaustion")
	}
	// Everything afterwards fails.
	if _, err := ff.Create("d/g"); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash create: %v", err)
	}
	if err := ff.Rename("d/f", "d/h"); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash rename: %v", err)
	}
	// The torn prefix is visible in the volatile world.
	rf, err := m.Open("d/f")
	if err != nil {
		t.Fatal(err)
	}
	size, _ := rf.Size()
	if size != 5 {
		t.Fatalf("torn file has %d bytes, want 5", size)
	}
	rf.Close()
}

// TestMemFSCrashSemantics pins the two-level durability model the matrix
// rests on.
func TestMemFSCrashSemantics(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d")

	w, _ := m.Create("d/a")
	w.Write([]byte("one"))
	w.Sync()
	w.Close()
	m.SyncDir("d")

	// Unsynced content and un-SyncDir'd renames must vanish on crash.
	w, _ = m.Create("d/b")
	w.Write([]byte("two"))
	w.Sync() // content synced, but the NAME was never SyncDir'd
	w.Close()
	w, _ = m.Create("d/c")
	w.Write([]byte("three")) // never synced at all
	w.Close()
	m.Rename("d/a", "d/a2") // rename not SyncDir'd

	m.Crash()

	if _, err := m.Open("d/a2"); err == nil {
		t.Fatal("unsynced rename survived crash")
	}
	rf, err := m.Open("d/a")
	if err != nil {
		t.Fatalf("synced file lost: %v", err)
	}
	buf := make([]byte, 3)
	rf.ReadAt(buf, 0)
	if string(buf) != "one" {
		t.Fatalf("synced content corrupted: %q", buf)
	}
	rf.Close()
	if _, err := m.Open("d/b"); err == nil {
		t.Fatal("un-SyncDir'd create survived crash")
	}
	if _, err := m.Open("d/c"); err == nil {
		t.Fatal("unsynced file survived crash")
	}

	// Content synced but written MORE after the sync: crash reverts to the
	// synced prefix.
	w, _ = m.Create("d/p")
	w.Write([]byte("dur"))
	w.Sync()
	w.Write([]byte("able"))
	w.Close()
	m.SyncDir("d")
	m.Crash()
	rf, err = m.Open("d/p")
	if err != nil {
		t.Fatal(err)
	}
	size, _ := rf.Size()
	if size != 3 {
		t.Fatalf("post-crash size %d, want 3 (synced prefix)", size)
	}
	rf.Close()
}
