//go:build unix

package snapstore

import "syscall"

// Map memory-maps the whole file read-only. The returned bytes alias the
// page cache: opening a snapshot costs no read of the data sections until
// they are touched, and writes through the mapping are impossible
// (PROT_READ — the enforcement half of the read-only-mapping ownership
// rule). The unmap function must be called exactly once, after which every
// slice aliasing the mapping is invalid.
func (r *osRFile) Map() ([]byte, func() error, error) {
	size, err := r.Size()
	if err != nil {
		return nil, nil, err
	}
	if size == 0 {
		// mmap of length 0 is an error; an empty file has nothing to map
		// and fails footer validation anyway.
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(r.f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
