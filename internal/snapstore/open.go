package snapstore

import (
	"fmt"
	"io"
	"unsafe"
)

// OpenOptions tune OpenFile/OpenLatest.
type OpenOptions struct {
	// SkipChecksum skips the per-section CRC32C verification, leaving only
	// the O(1) structural checks (footer, header CRC, section geometry).
	// The trusted-file fast path: open-to-first-query becomes O(1).
	SkipChecksum bool
	// NoMmap forces the portable read path even when the file supports
	// memory mapping.
	NoMmap bool
}

// File is an opened snapshot file: the parsed header plus the raw section
// bytes, aliased directly from a read-only mapping (or from one aligned
// buffer on the fallback path). Section slices are valid until Close.
type File struct {
	Header Header
	data   []byte
	unmap  func() error
	mapped bool
}

// Section returns section i's raw bytes. The slice aliases the read-only
// mapping: it must not be written, and it dies with Close.
func (f *File) Section(i int) []byte {
	s := f.Header.Sections[i]
	return f.data[s.Off : s.Off+s.Len : s.Off+s.Len]
}

// Mapped reports whether the file is served by a memory mapping (as
// opposed to a heap buffer read on the portable fallback path).
func (f *File) Mapped() bool { return f.mapped }

// Close releases the mapping. Every slice obtained from the File —
// sections, the app header — is invalid afterwards.
func (f *File) Close() error {
	f.data = nil
	if f.unmap != nil {
		u := f.unmap
		f.unmap = nil
		return u()
	}
	return nil
}

// OpenFile opens and validates one snapshot file. Validation order is
// torn-write detection first (footer, O(1)), then header structure (O(1)),
// then — unless opt.SkipChecksum — per-section CRC32C. No per-item decode
// happens on any path; the returned File's sections alias the mapping.
//
// Every rejection wraps ErrCorrupt; truncation-shaped rejections wrap
// ErrTornWrite (which itself wraps ErrCorrupt).
func OpenFile(fsys FS, path string, opt OpenOptions) (*File, error) {
	rf, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	f, err := loadFile(rf, opt)
	cerr := rf.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		f.Close()
		return nil, cerr
	}
	return f, nil
}

func loadFile(rf RFile, opt OpenOptions) (*File, error) {
	size, err := rf.Size()
	if err != nil {
		return nil, err
	}
	if size < headerSize+footerSize {
		return nil, fmt.Errorf("%w: %d bytes is smaller than header+footer", ErrTornWrite, size)
	}
	f := &File{}
	if m, ok := rf.(Mapper); ok && !opt.NoMmap {
		data, unmap, err := m.Map()
		if err != nil {
			return nil, err
		}
		f.data, f.unmap, f.mapped = data, unmap, true
	} else {
		// Portable path: read the whole file into one buffer backed by a
		// []uint64 so every 8-aligned file offset stays 8-aligned in memory
		// (the aliasing requirement mmap gets for free from page alignment).
		words := make([]uint64, (size+7)/8)
		buf := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), size)
		if _, err := rf.ReadAt(buf, 0); err != nil && err != io.EOF {
			return nil, err
		}
		f.data = buf
	}
	if err := f.validate(uint64(size), opt); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (f *File) validate(size uint64, opt OpenOptions) error {
	if uint64(len(f.data)) != size {
		return fmt.Errorf("%w: mapping is %d bytes, file %d", ErrTornWrite, len(f.data), size)
	}
	footGen, err := decodeFooter(f.data[size-footerSize:], size)
	if err != nil {
		return err
	}
	hdr, err := decodeHeader(f.data[:headerSize], size)
	if err != nil {
		return err
	}
	if hdr.Gen != footGen {
		return fmt.Errorf("%w: header generation %d != footer generation %d", ErrCorrupt, hdr.Gen, footGen)
	}
	f.Header = *hdr
	if !opt.SkipChecksum {
		for i := range hdr.Sections {
			if got := crc(f.Section(i)); got != hdr.Sections[i].CRC {
				return fmt.Errorf("%w: section %d checksum mismatch", ErrCorrupt, i)
			}
		}
	}
	return nil
}

// Words aliases an 8-aligned section as a []uint64 without copying. It is
// the caller's job to only pass sections of a still-open File; the result
// is read-only and dies with the File. On hosts whose native order is not
// little-endian callers must use the decoded path instead (AliasingOK
// reports which).
func Words(section []byte) []uint64 {
	if len(section) == 0 {
		return nil
	}
	p := unsafe.SliceData(section)
	if uintptr(unsafe.Pointer(p))%8 != 0 {
		// Cannot happen for sections of a valid File (offsets are 8-aligned
		// within an aligned mapping); guard anyway so a misuse is loud.
		panic("snapstore: unaligned section")
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(p)), len(section)/8)
}

// Floats is Words for float64 payloads: it aliases an 8-aligned section as
// a []float64 without copying, under the same rules.
func Floats(section []byte) []float64 {
	if len(section) == 0 {
		return nil
	}
	p := unsafe.SliceData(section)
	if uintptr(unsafe.Pointer(p))%8 != 0 {
		panic("snapstore: unaligned section")
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(p)), len(section)/8)
}

// AliasingOK reports whether zero-copy section aliasing is sound on this
// host: the format is little-endian, so a big-endian host must decode.
func AliasingOK() bool { return hostLittleEndian }

// hostLittleEndian is computed once: write a known 16-bit pattern and look
// at its first byte.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()
