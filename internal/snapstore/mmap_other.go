//go:build !unix

package snapstore

// Non-unix builds carry no Mapper implementation for OS files: Open takes
// the portable read-into-aligned-buffer path instead. The zero-copy fast
// path is a unix (mmap) optimization; the format and every guarantee are
// identical either way.
