package snapstore

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the store needs. Production code uses OS;
// the crash matrix substitutes MemFS/FaultFS so every byte of the write
// sequence can be interrupted and every sync made to lie.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (WFile, error)
	// Open opens name for reading.
	Open(name string) (RFile, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists the file names in dir (no directories), in any order.
	ReadDir(dir string) ([]string, error)
	// SyncDir makes prior Create/Rename/Remove in dir durable.
	SyncDir(dir string) error
	// MkdirAll creates dir and parents as needed.
	MkdirAll(dir string) error
}

// WFile is a writable snapshot file: sequential writes, one fsync, close.
type WFile interface {
	io.Writer
	Sync() error
	Close() error
}

// RFile is a readable snapshot file.
type RFile interface {
	io.ReaderAt
	io.Closer
	Size() (int64, error)
}

// Mapper is the optional capability of an RFile to memory-map itself.
// OS files implement it on unix; Open falls back to a read when absent.
type Mapper interface {
	// Map returns the file's contents as a read-only mapping and the
	// function that releases it. The data must not be written through.
	Map() ([]byte, func() error, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (WFile, error) {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (RFile, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &osRFile{f: f}, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// osRFile adapts *os.File to RFile (and, on unix, to Mapper; see the
// build-tagged mmap files).
type osRFile struct {
	f *os.File
}

func (r *osRFile) ReadAt(p []byte, off int64) (int, error) { return r.f.ReadAt(p, off) }
func (r *osRFile) Close() error                            { return r.f.Close() }

func (r *osRFile) Size() (int64, error) {
	st, err := r.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
