package snapstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Layout constants. The header occupies exactly one page; sections follow
// at 64-byte-aligned offsets; the footer is the last footerSize bytes.
const (
	headerSize = 4096
	footerSize = 64
	secAlign   = 64

	// appHdrCap is the fixed capacity reserved for the application header
	// inside the header page (the root package's serde common header plus
	// min/max and N0 is ~90 bytes; the slack is format headroom).
	appHdrCap = 512

	formatVersion = 1

	// NumSections is the number of data sections: the five parallel arrays
	// of a frozen coreset.
	NumSections = 5
)

// Section indices, in file order.
const (
	SecViewItems = iota
	SecViewCum
	SecIdxItems
	SecIdxCum
	SecIdxBefore
)

var (
	headerMagic = [8]byte{'R', 'E', 'Q', 'S', 'L', 'A', 'B', '1'}
	footerMagic = [8]byte{'R', 'E', 'Q', 'S', 'L', 'A', 'B', 'F'}
)

// Fixed header field offsets. The app header region is fixed-capacity so
// the section table lives at a constant offset.
const (
	offMagic    = 0
	offVersion  = 8  // uint32
	offSecCount = 12 // uint32
	offGen      = 16 // uint64
	offCount    = 24 // uint64 coreset entries ni
	offIdxTotal = 32 // uint64 retained weight at index build
	offAppLen   = 40 // uint32
	offApp      = 48 // appHdrCap bytes
	offTable    = offApp + appHdrCap
	// Each table entry: off uint64, len uint64, crc uint32, pad uint32.
	tableEntrySize = 24
	offHeaderCRC   = offTable + NumSections*tableEntrySize // uint32
	headerUsed     = offHeaderCRC + 4
)

// Footer field offsets (relative to the footer's start).
const (
	fOffMagic   = 0
	fOffFileLen = 8  // uint64
	fOffGen     = 16 // uint64
	fOffCRC     = 24 // uint32, over footer bytes [0, fOffCRC)
	footerUsed  = fOffCRC + 4
)

// castagnoli is the CRC32C polynomial table; crc32 uses SSE4.2 on amd64,
// so checksumming runs at memory bandwidth.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// SectionInfo locates one data section inside the file.
type SectionInfo struct {
	Off uint64
	Len uint64
	CRC uint32
}

// Header is the parsed header page of a snapshot file.
type Header struct {
	Version  uint32
	Gen      uint64
	Count    uint64 // coreset entries ni
	IdxTotal uint64 // retained weight (== last cumulative weight) at save
	App      []byte // application header bytes (aliases the mapping)
	Sections [NumSections]SectionInfo
}

// Payload is what the caller persists: the application header and the five
// section byte images (little-endian array contents). Section lengths must
// satisfy the format's shape: sections 0 and 1 of length 8·Count, sections
// 2–4 of length 8·(Count+1) — or all five empty when Count is 0.
type Payload struct {
	App      []byte
	Count    uint64
	IdxTotal uint64
	Sections [NumSections][]byte
}

// alignUp rounds n up to the next multiple of align (a power of two).
func alignUp(n uint64, align uint64) uint64 { return (n + align - 1) &^ (align - 1) }

// sectionLengthsOK checks the shape constraint shared by writer and opener.
func sectionLengthsOK(count uint64, lens [NumSections]uint64) error {
	var want [NumSections]uint64
	if count > 0 {
		want[SecViewItems] = 8 * count
		want[SecViewCum] = 8 * count
		want[SecIdxItems] = 8 * (count + 1)
		want[SecIdxCum] = 8 * (count + 1)
		want[SecIdxBefore] = 8 * (count + 1)
	}
	for i, l := range lens {
		if l != want[i] {
			return fmt.Errorf("section %d length %d, want %d for %d entries", i, l, want[i], count)
		}
	}
	return nil
}

// layoutSections computes each section's file offset and the file's total
// length (including footer) for the given section lengths.
func layoutSections(lens [NumSections]uint64) (offs [NumSections]uint64, fileLen uint64) {
	pos := uint64(headerSize)
	for i, l := range lens {
		offs[i] = pos
		pos = alignUp(pos+l, secAlign)
	}
	return offs, pos + footerSize
}

// encodeHeader builds the 4 KiB header page.
func encodeHeader(p *Payload, gen uint64, offs [NumSections]uint64) ([]byte, error) {
	if len(p.App) > appHdrCap {
		return nil, fmt.Errorf("snapstore: app header %d bytes exceeds capacity %d", len(p.App), appHdrCap)
	}
	var lens [NumSections]uint64
	for i := range p.Sections {
		lens[i] = uint64(len(p.Sections[i]))
	}
	if err := sectionLengthsOK(p.Count, lens); err != nil {
		return nil, fmt.Errorf("snapstore: %v", err)
	}
	h := make([]byte, headerSize)
	copy(h[offMagic:], headerMagic[:])
	le := binary.LittleEndian
	le.PutUint32(h[offVersion:], formatVersion)
	le.PutUint32(h[offSecCount:], NumSections)
	le.PutUint64(h[offGen:], gen)
	le.PutUint64(h[offCount:], p.Count)
	le.PutUint64(h[offIdxTotal:], p.IdxTotal)
	le.PutUint32(h[offAppLen:], uint32(len(p.App)))
	copy(h[offApp:], p.App)
	for i := range p.Sections {
		e := h[offTable+i*tableEntrySize:]
		le.PutUint64(e, offs[i])
		le.PutUint64(e[8:], lens[i])
		le.PutUint32(e[16:], crc(p.Sections[i]))
	}
	le.PutUint32(h[offHeaderCRC:], crc(h[:offHeaderCRC]))
	return h, nil
}

// encodeFooter builds the footer block.
func encodeFooter(gen, fileLen uint64) []byte {
	f := make([]byte, footerSize)
	copy(f[fOffMagic:], footerMagic[:])
	le := binary.LittleEndian
	le.PutUint64(f[fOffFileLen:], fileLen)
	le.PutUint64(f[fOffGen:], gen)
	le.PutUint32(f[fOffCRC:], crc(f[:fOffCRC]))
	return f
}

// decodeFooter validates the footer block against the actual file size.
// Every failure is a torn write: the footer is the last thing written, so
// an inconsistent footer means the write sequence did not complete.
func decodeFooter(f []byte, size uint64) (gen uint64, err error) {
	if len(f) != footerSize {
		return 0, ErrTornWrite
	}
	if [8]byte(f[fOffMagic:fOffMagic+8]) != footerMagic {
		return 0, fmt.Errorf("%w: footer magic missing", ErrTornWrite)
	}
	le := binary.LittleEndian
	if le.Uint32(f[fOffCRC:]) != crc(f[:fOffCRC]) {
		return 0, fmt.Errorf("%w: footer checksum mismatch", ErrTornWrite)
	}
	if le.Uint64(f[fOffFileLen:]) != size {
		return 0, fmt.Errorf("%w: footer records %d bytes, file has %d", ErrTornWrite, le.Uint64(f[fOffFileLen:]), size)
	}
	return le.Uint64(f[fOffGen:]), nil
}

// decodeHeader parses and structurally validates the header page against
// the file size. It performs O(1) work: field decoding, the header CRC
// (fixed 4 KiB), and section-table geometry checks. Section content CRCs
// are the opener's choice (verifySections).
func decodeHeader(h []byte, size uint64) (*Header, error) {
	if len(h) != headerSize {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if [8]byte(h[offMagic:offMagic+8]) != headerMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	le := binary.LittleEndian
	if le.Uint32(h[offHeaderCRC:]) != crc(h[:offHeaderCRC]) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	hdr := &Header{
		Version:  le.Uint32(h[offVersion:]),
		Gen:      le.Uint64(h[offGen:]),
		Count:    le.Uint64(h[offCount:]),
		IdxTotal: le.Uint64(h[offIdxTotal:]),
	}
	if hdr.Version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, hdr.Version)
	}
	if got := le.Uint32(h[offSecCount:]); got != NumSections {
		return nil, fmt.Errorf("%w: %d sections, want %d", ErrCorrupt, got, NumSections)
	}
	appLen := le.Uint32(h[offAppLen:])
	if appLen > appHdrCap {
		return nil, fmt.Errorf("%w: app header length %d exceeds capacity", ErrCorrupt, appLen)
	}
	hdr.App = h[offApp : offApp+int(appLen) : offApp+int(appLen)]
	var lens [NumSections]uint64
	prevEnd := uint64(headerSize)
	dataEnd := size - footerSize
	for i := range hdr.Sections {
		e := h[offTable+i*tableEntrySize:]
		s := SectionInfo{Off: le.Uint64(e), Len: le.Uint64(e[8:]), CRC: le.Uint32(e[16:])}
		// Sections are laid out in order, 8-byte aligned (the writer uses
		// 64), non-overlapping, and inside [header, footer). The arithmetic
		// is overflow-safe: every quantity is checked against dataEnd before
		// being trusted.
		if s.Off%8 != 0 || s.Off < prevEnd || s.Off > dataEnd || s.Len > dataEnd-s.Off {
			return nil, fmt.Errorf("%w: section %d spans [%d, %d+%d) outside data region", ErrCorrupt, i, s.Off, s.Off, s.Len)
		}
		prevEnd = s.Off + s.Len
		lens[i] = s.Len
		hdr.Sections[i] = s
	}
	if err := sectionLengthsOK(hdr.Count, lens); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return hdr, nil
}
