package snapstore

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS with explicit durability semantics, built for
// the crash matrix. It tracks two states:
//
//   - the VOLATILE state: everything written so far (page cache + dirty
//     metadata on a real system);
//   - the PERSISTED state: file contents as of each file's last Sync, and
//     the namespace (which names exist, pointing at which files) as of the
//     last SyncDir.
//
// Crash() discards the volatile state, modelling a power cut in which
// nothing unsynced survived. The opposite extreme — everything written
// survived — is the volatile state itself. A real crash lands between the
// two; a store is crash-safe iff recovery succeeds from both extremes and
// from every torn prefix the injector produces, which is exactly what the
// matrix drives.
type MemFS struct {
	mu sync.Mutex
	// cur is the volatile namespace: name → file object.
	cur map[string]*memFile
	// dirs is the volatile set of directories.
	dirs map[string]bool
	// pnames is the persisted namespace, pdirs the persisted directories.
	pnames map[string]*memFile
	pdirs  map[string]bool
}

// memFile is one file object (identity survives rename). data is the
// volatile content; synced is the content as of the last Sync.
type memFile struct {
	data   []byte
	synced []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		cur:    map[string]*memFile{},
		dirs:   map[string]bool{"/": true, ".": true},
		pnames: map[string]*memFile{},
		pdirs:  map[string]bool{"/": true, ".": true},
	}
}

// Crash discards all volatile state: every file's content reverts to its
// last-synced bytes and the namespace reverts to its last SyncDir. Open
// handles and subsequent writes through them are the caller's
// responsibility (the matrix never writes after a crash).
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cur = make(map[string]*memFile, len(m.pnames))
	for name, f := range m.pnames {
		f.data = append([]byte(nil), f.synced...)
		m.cur[name] = f
	}
	m.dirs = make(map[string]bool, len(m.pdirs))
	for d := range m.pdirs {
		m.dirs[d] = true
	}
}

// Clone returns a deep copy of the volatile state as a standalone MemFS
// whose persisted state equals that volatile state. The matrix uses it to
// answer "what if everything written had survived" without disturbing m.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for name, f := range m.cur {
		data := append([]byte(nil), f.data...)
		c.cur[name] = &memFile{data: data, synced: append([]byte(nil), data...)}
		c.pnames[name] = c.cur[name]
	}
	for d := range m.dirs {
		c.dirs[d] = true
		c.pdirs[d] = true
	}
	return c
}

// CloneExact returns a deep copy of m preserving the synced/unsynced
// distinction (unlike Clone, which promotes everything to synced). File
// identity across the two namespaces is preserved: a file reachable from
// both the volatile and persisted namespace stays one object in the copy.
func (m *MemFS) CloneExact() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &MemFS{
		cur:    map[string]*memFile{},
		dirs:   map[string]bool{},
		pnames: map[string]*memFile{},
		pdirs:  map[string]bool{},
	}
	copies := map[*memFile]*memFile{}
	get := func(f *memFile) *memFile {
		if n, ok := copies[f]; ok {
			return n
		}
		n := &memFile{
			data:   append([]byte(nil), f.data...),
			synced: append([]byte(nil), f.synced...),
		}
		copies[f] = n
		return n
	}
	for name, f := range m.cur {
		c.cur[name] = get(f)
	}
	for name, f := range m.pnames {
		c.pnames[name] = get(f)
	}
	for d := range m.dirs {
		c.dirs[d] = true
	}
	for d := range m.pdirs {
		c.pdirs[d] = true
	}
	return c
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := path.Clean(dir); ; d = path.Dir(d) {
		m.dirs[d] = true
		if d == "/" || d == "." || d == path.Dir(d) {
			break
		}
	}
	return nil
}

func (m *MemFS) Create(name string) (WFile, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[path.Dir(name)] {
		return nil, &fs.PathError{Op: "create", Path: name, Err: fs.ErrNotExist}
	}
	f := &memFile{}
	m.cur[name] = f
	return &memWFile{fs: m, f: f}, nil
}

func (m *MemFS) Open(name string) (RFile, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	// Snapshot the content: a reader holds the bytes it opened even if the
	// file is later renamed over or crashed away (like an open fd).
	return &memRFile{data: append([]byte(nil), f.data...)}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.cur, oldname)
	m.cur[newname] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.cur[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.cur, name)
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[path.Clean(dir)] {
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
	}
	var names []string
	prefix := path.Clean(dir) + "/"
	for name := range m.cur {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/") {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir persists the namespace: every create/rename/remove performed so
// far becomes crash-durable. (Single-directory granularity is all the
// store needs; the whole namespace is persisted for simplicity.)
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[path.Clean(dir)] {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: fs.ErrNotExist}
	}
	m.pnames = make(map[string]*memFile, len(m.cur))
	for name, f := range m.cur {
		m.pnames[name] = f
	}
	m.pdirs = make(map[string]bool, len(m.dirs))
	for d := range m.dirs {
		m.pdirs[d] = true
	}
	return nil
}

type memWFile struct {
	fs *MemFS
	f  *memFile
}

func (w *memWFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.f.data = append(w.f.data, p...)
	return len(p), nil
}

// Sync persists the file's CONTENT (not its name — that takes SyncDir).
func (w *memWFile) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.f.synced = append(w.f.synced[:0], w.f.data...)
	return nil
}

func (w *memWFile) Close() error { return nil }

type memRFile struct {
	data []byte
}

func (r *memRFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(r.data)) {
		return 0, fmt.Errorf("memfs: read at %d beyond %d bytes", off, len(r.data))
	}
	n := copy(p, r.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (r *memRFile) Size() (int64, error) { return int64(len(r.data)), nil }
func (r *memRFile) Close() error         { return nil }

// ErrInjected is the error every injected fault surfaces as; the save path
// must propagate it (wrapped or not) rather than panic or misreport.
var ErrInjected = errors.New("snapstore: injected fault")

// FaultFS wraps an FS and injects one fault at a chosen point in the
// operation sequence, then fails every subsequent operation — modelling a
// process that crashed or lost its disk mid-sequence. Costs are measured
// in abstract units: one per byte written, one per metadata operation
// (create/rename/remove/sync/syncdir), so a budget sweep over
// [0, CostOf(sequence)) interrupts the write sequence at EVERY byte
// boundary and at every metadata edge.
//
// Faults at a write boundary are SHORT writes: the prefix that fit within
// the budget is applied before the error returns — a torn write, not a
// clean refusal. Faults at a Sync are fsync failures: nothing additional
// persists and the error returns. After the injected fault, Crashed
// reports true and all operations fail with ErrInjected.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	budget  int64 // remaining units; -1 disables injection
	crashed bool
	cost    int64 // units consumed so far (CostOf)
}

// NewFaultFS wraps inner with injection disabled (budget -1).
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, budget: -1}
}

// Arm sets the fault budget: the wrapped FS will perform exactly budget
// units of work and then fail. Resets the crashed state and cost counter.
func (ff *FaultFS) Arm(budget int64) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	ff.budget = budget
	ff.crashed = false
	ff.cost = 0
}

// Disarm disables injection (and clears the crashed state).
func (ff *FaultFS) Disarm() {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	ff.budget = -1
	ff.crashed = false
}

// Crashed reports whether the injected fault has fired.
func (ff *FaultFS) Crashed() bool {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.crashed
}

// Cost returns the units consumed since the last Arm (with a budget of -1,
// the full cost of the sequence — run once disarmed to size the sweep).
func (ff *FaultFS) Cost() int64 {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.cost
}

// spend consumes up to want units. It returns how many units were granted
// and whether the fault fired (granted < want, or a metadata op denied).
func (ff *FaultFS) spend(want int64) (granted int64, failed bool) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.crashed {
		return 0, true
	}
	if ff.budget < 0 {
		ff.cost += want
		return want, false
	}
	if want <= ff.budget {
		ff.budget -= want
		ff.cost += want
		return want, false
	}
	granted = ff.budget
	ff.budget = 0
	ff.cost += granted
	ff.crashed = true
	return granted, true
}

func (ff *FaultFS) metaOp() error {
	if _, failed := ff.spend(1); failed {
		return ErrInjected
	}
	return nil
}

func (ff *FaultFS) Create(name string) (WFile, error) {
	if err := ff.metaOp(); err != nil {
		return nil, err
	}
	w, err := ff.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultWFile{ff: ff, w: w}, nil
}

func (ff *FaultFS) Rename(oldname, newname string) error {
	if err := ff.metaOp(); err != nil {
		return err
	}
	return ff.inner.Rename(oldname, newname)
}

func (ff *FaultFS) Remove(name string) error {
	if err := ff.metaOp(); err != nil {
		return err
	}
	return ff.inner.Remove(name)
}

func (ff *FaultFS) SyncDir(dir string) error {
	if err := ff.metaOp(); err != nil {
		return err
	}
	return ff.inner.SyncDir(dir)
}

func (ff *FaultFS) MkdirAll(dir string) error {
	if err := ff.metaOp(); err != nil {
		return err
	}
	return ff.inner.MkdirAll(dir)
}

// Reads are never faulted: the matrix injects during the WRITE sequence
// and recovery then runs against the surviving state through a clean FS.
func (ff *FaultFS) Open(name string) (RFile, error)      { return ff.inner.Open(name) }
func (ff *FaultFS) ReadDir(dir string) ([]string, error) { return ff.inner.ReadDir(dir) }

type faultWFile struct {
	ff *FaultFS
	w  WFile
}

// Write spends one unit per byte; on exhaustion it applies the affordable
// PREFIX to the underlying file and reports a short write — the torn-write
// model (a clean failure that wrote nothing would never produce the torn
// states recovery must survive).
func (fw *faultWFile) Write(p []byte) (int, error) {
	granted, failed := fw.ff.spend(int64(len(p)))
	if granted > 0 {
		if n, err := fw.w.Write(p[:granted]); err != nil {
			return n, err
		}
	}
	if failed {
		return int(granted), fmt.Errorf("short write of %d/%d bytes: %w", granted, len(p), ErrInjected)
	}
	return len(p), nil
}

func (fw *faultWFile) Sync() error {
	if err := fw.ff.metaOp(); err != nil {
		return err // fsync failure: unsynced data stays volatile
	}
	return fw.w.Sync()
}

// Close is free (and never faulted): the matrix's crash points are the
// durability-relevant edges; close-after-failure must always work so the
// save path can clean up.
func (fw *faultWFile) Close() error { return fw.w.Close() }
