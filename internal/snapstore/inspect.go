package snapstore

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// SectionReport is the inspection result for one section.
type SectionReport struct {
	Off, Len uint64
	WantCRC  uint32
	GotCRC   uint32
	OK       bool
}

// Report is the result of Inspect: everything a diagnostic tool needs to
// print about one snapshot file, including per-section checksum status for
// files whose header parses but whose payload is damaged.
type Report struct {
	Size     uint64
	Header   Header
	Sections [NumSections]SectionReport
	// Err is the validation verdict: nil for a fully valid file, else the
	// first structural error (torn footer, bad header) — in which case the
	// Sections array is only populated when the header itself parsed.
	Err error
	// HeaderOK reports whether the header page parsed (Sections is
	// meaningful only when true).
	HeaderOK bool
}

// Inspect opens path without rejecting it and reports everything it can
// determine: structural validity, then per-section checksum status even
// when some sections are damaged (OpenFile stops at the first mismatch;
// Inspect checks all five).
func Inspect(fsys FS, path string) (*Report, error) {
	rf, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	size, err := rf.Size()
	if err != nil {
		return nil, err
	}
	rep := &Report{Size: uint64(size)}
	if size < headerSize+footerSize {
		rep.Err = fmt.Errorf("%w: %d bytes is smaller than header+footer", ErrTornWrite, size)
		return rep, nil
	}
	buf := make([]byte, size)
	if _, err := rf.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	_, ferr := decodeFooter(buf[size-footerSize:], uint64(size))
	hdr, herr := decodeHeader(buf[:headerSize], uint64(size))
	if herr == nil {
		rep.Header = *hdr
		rep.HeaderOK = true
		for i, s := range hdr.Sections {
			got := crc(buf[s.Off : s.Off+s.Len])
			rep.Sections[i] = SectionReport{
				Off: s.Off, Len: s.Len,
				WantCRC: s.CRC, GotCRC: got, OK: got == s.CRC,
			}
		}
	}
	switch {
	case ferr != nil:
		rep.Err = ferr
	case herr != nil:
		rep.Err = herr
	default:
		for i := range rep.Sections {
			if !rep.Sections[i].OK {
				rep.Err = fmt.Errorf("%w: section %d checksum mismatch", ErrCorrupt, i)
				break
			}
		}
	}
	return rep, nil
}

// sectionNames label the fixed section layout for human-facing output.
var sectionNames = [NumSections]string{
	"view.items", "view.cum", "idx.items", "idx.cum", "idx.before",
}

// String renders the report as a multi-line human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "size: %d bytes\n", r.Size)
	if !r.HeaderOK {
		fmt.Fprintf(&b, "header: UNREADABLE (%v)\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "format: v%d  generation: %d  items: %d  index total: %d  app header: %d bytes\n",
		r.Header.Version, r.Header.Gen, r.Header.Count, r.Header.IdxTotal, len(r.Header.App))
	for i, s := range r.Sections {
		status := "ok"
		if !s.OK {
			status = fmt.Sprintf("CORRUPT (want %08x got %08x)", s.WantCRC, s.GotCRC)
		}
		fmt.Fprintf(&b, "section %d %-10s off=%-8d len=%-8d crc=%08x %s\n",
			i, sectionNames[i], s.Off, s.Len, s.WantCRC, status)
	}
	if r.Err != nil {
		if errors.Is(r.Err, ErrTornWrite) {
			fmt.Fprintf(&b, "verdict: TORN WRITE (%v)\n", r.Err)
		} else {
			fmt.Fprintf(&b, "verdict: CORRUPT (%v)\n", r.Err)
		}
	} else {
		fmt.Fprintf(&b, "verdict: valid\n")
	}
	return b.String()
}
