package snapstore

import (
	"errors"
	"fmt"
	"io/fs"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Generation file naming: snap-<20-digit generation>.reqsnap, plus a .tmp
// suffix while a generation is being written. Fixed-width digits make
// lexical order equal numeric order.
const (
	genPrefix = "snap-"
	genSuffix = ".reqsnap"
	genDigits = 20
	tmpSuffix = ".tmp"
)

// GenName returns the file name of generation gen.
func GenName(gen uint64) string {
	return fmt.Sprintf("%s%0*d%s", genPrefix, genDigits, gen, genSuffix)
}

// ParseGenName extracts the generation number from a snapshot file name.
func ParseGenName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, genPrefix) || !strings.HasSuffix(name, genSuffix) {
		return 0, false
	}
	digits := name[len(genPrefix) : len(name)-len(genSuffix)]
	if len(digits) != genDigits {
		return 0, false
	}
	gen, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// parentDir is path.Dir over slash paths; the package builds all its paths
// with path.Join, so this holds on every platform (the OS accepts slash
// separators everywhere Go runs).
func parentDir(p string) string { return path.Dir(p) }

// Store is a crash-safe snapshot directory: every Save writes a new,
// monotonically numbered generation with the atomic sequence
//
//	write temp → fsync(file) → rename → fsync(dir)
//
// and prunes generations beyond Keep. OpenLatest recovers the newest valid
// generation, skipping torn or corrupt files. A Store performs no
// in-process locking: one writer at a time is the caller's contract (the
// rotation itself is what makes concurrent READERS safe — an open
// generation file is never modified, only eventually unlinked, and an
// mmap'd unlinked file stays readable until closed).
type Store struct {
	fsys FS
	dir  string
	keep int
}

// DefaultKeep is how many generations a Store retains after a Save.
const DefaultKeep = 2

// NewStore returns a Store over dir on fsys (use OS for the real
// filesystem). The directory is created on first Save.
func NewStore(fsys FS, dir string) *Store {
	return &Store{fsys: fsys, dir: dir, keep: DefaultKeep}
}

// SetKeep changes how many generations Save retains (minimum 1).
func (st *Store) SetKeep(n int) {
	if n < 1 {
		n = 1
	}
	st.keep = n
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// PathFor returns the path of generation gen.
func (st *Store) PathFor(gen uint64) string { return path.Join(st.dir, GenName(gen)) }

// Generations returns the snapshot generations present in the directory
// (by name; contents unvalidated), ascending. A missing directory is an
// empty store, not an error.
func (st *Store) Generations() ([]uint64, error) {
	names, err := st.fsys.ReadDir(st.dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var gens []uint64
	for _, name := range names {
		if gen, ok := ParseGenName(name); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Save durably writes p as the next generation and returns its number.
// The write is atomic: a crash at any byte of the sequence leaves the
// store serving either the previous generations or the new one, verified
// by the crash matrix in faultfs_test.go. Pruning of old generations and
// stale temp files happens only after the new generation is durable and is
// best-effort (a failed prune never fails the Save).
func (st *Store) Save(p *Payload) (uint64, error) {
	if err := st.fsys.MkdirAll(st.dir); err != nil {
		return 0, err
	}
	gens, err := st.Generations()
	if err != nil {
		return 0, err
	}
	gen := uint64(1)
	if len(gens) > 0 {
		gen = gens[len(gens)-1] + 1
	}
	if err := WriteSnapshotFile(st.fsys, st.PathFor(gen), gen, p); err != nil {
		return 0, err
	}
	st.prune(gens)
	return gen, nil
}

// prune removes generations beyond keep (counting the just-written one)
// and stale temp files. Best-effort: errors are ignored — a leftover file
// costs disk space, never correctness, and the next Save retries.
func (st *Store) prune(prior []uint64) {
	excess := len(prior) + 1 - st.keep
	for i := 0; i < excess && i < len(prior); i++ {
		st.fsys.Remove(st.PathFor(prior[i]))
	}
	if names, err := st.fsys.ReadDir(st.dir); err == nil {
		for _, name := range names {
			if strings.HasSuffix(name, tmpSuffix) {
				st.fsys.Remove(path.Join(st.dir, name))
			}
		}
	}
	st.fsys.SyncDir(st.dir)
}

// OpenLatest opens the newest generation that passes validation, skipping
// torn and corrupt files — the recovery scan. It returns ErrNoSnapshot for
// an empty (or missing) store. When generations exist but every one is
// rejected, the error wraps ErrCorrupt and details each rejection.
func (st *Store) OpenLatest(opt OpenOptions) (*File, error) {
	gens, err := st.Generations()
	if err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("%w: in %s", ErrNoSnapshot, st.dir)
	}
	var rejections []error
	for i := len(gens) - 1; i >= 0; i-- {
		f, err := OpenFile(st.fsys, st.PathFor(gens[i]), opt)
		if err == nil {
			return f, nil
		}
		rejections = append(rejections, fmt.Errorf("generation %d: %w", gens[i], err))
	}
	return nil, fmt.Errorf("%w: every generation rejected: %w", ErrCorrupt, errors.Join(rejections...))
}
