// Package snapstore implements crash-safe, zero-copy snapshot persistence:
// a versioned, checksummed, page/slab-aligned on-disk format that the
// frozen-coreset query engine can serve directly from a read-only mmap'd
// region, plus a generation-numbered directory store with atomic rotation
// and a recovery scan.
//
// # File format
//
// One snapshot file is a 4 KiB header page, five 64-byte-aligned data
// sections, and a fixed-size footer at end of file (all integers
// little-endian):
//
//	┌────────────────────────────────────────────────────────────┐
//	│ header page (4096 B)                                       │
//	│   magic "REQSLAB1", version, section count                 │
//	│   generation, coreset count ni, index total weight         │
//	│   app header (opaque to this package: the root package     │
//	│   stores its serde common header + min/max here)           │
//	│   section table: {offset, length, CRC32C} × 5              │
//	│   header CRC32C (over every header byte above)             │
//	├────────────────────────────────────────────────────────────┤
//	│ section 0  view items      ni × 8 B   ─ 64-B aligned       │
//	│ section 1  view cum        ni × 8 B   ─ 64-B aligned       │
//	│ section 2  index items  (ni+1) × 8 B  ─ 64-B aligned       │
//	│ section 3  index cum    (ni+1) × 8 B  ─ 64-B aligned       │
//	│ section 4  index before (ni+1) × 8 B  ─ 64-B aligned       │
//	├────────────────────────────────────────────────────────────┤
//	│ footer (64 B): magic "REQSLABF", file length, generation,  │
//	│ footer CRC32C                                              │
//	└────────────────────────────────────────────────────────────┘
//
// The sections are the frozen coreset's five storage arrays byte-for-byte
// (on little-endian hosts): opening a file needs no per-item decode — the
// arrays are aliased straight out of the mapping. The 64-byte alignment
// guarantees the 8-byte alignment the aliasing requires and keeps each
// array cache-line aligned; the header page boundary keeps metadata and
// data on separate pages. The mapping is read-only: an accidental write
// through an aliased slice faults instead of corrupting the file.
//
// # Torn-write detection and checksums
//
// The footer is written last, so its presence (magic + file length + CRC
// matching the actual size) proves the write sequence completed: any
// truncation — power cut mid-write, short write, partial sync — leaves the
// footer missing, misplaced, or mismatched, and Open reports ErrTornWrite
// in O(1). Content integrity is separate: the header carries a CRC32C of
// itself and one per section, verified (by default) on open; a bit flip
// anywhere surfaces as ErrCorrupt, never as a wrong answer.
//
// # Atomic generation rotation
//
// A Store writes each snapshot as a new generation: write to a temp name,
// fsync the file, rename to the final generation name, fsync the
// directory. A crash at ANY byte of that sequence leaves either the
// previous generations untouched (temp files are ignored and eventually
// pruned) or the new generation complete — never a half-visible file.
// OpenLatest scans generations newest-first and serves the newest one that
// passes verification, discarding torn or corrupt files, so recovery
// after any crash yields the previous or the new snapshot, never an error
// on a directory that holds at least one valid generation.
//
// All file access goes through the FS interface; MemFS and FaultFS
// implement it for the fault-injection crash matrix in this package's
// tests.
package snapstore

import (
	"errors"
	"fmt"
)

// Sentinel errors. ErrTornWrite wraps ErrCorrupt: a torn file IS corrupt,
// just with a sharper diagnosis, so errors.Is(err, ErrCorrupt) matches
// every rejection while errors.Is(err, ErrTornWrite) isolates truncation.
var (
	// ErrCorrupt is returned when a snapshot file fails structural or
	// checksum validation.
	ErrCorrupt = errors.New("snapstore: corrupt snapshot file")

	// ErrTornWrite is returned when a snapshot file's footer is missing or
	// inconsistent with its size — the signature of an interrupted write.
	ErrTornWrite = fmt.Errorf("%w (torn write: file incomplete or truncated)", ErrCorrupt)

	// ErrNoSnapshot is returned by OpenLatest when the directory holds no
	// snapshot generations at all.
	ErrNoSnapshot = errors.New("snapstore: no snapshot generation found")
)
