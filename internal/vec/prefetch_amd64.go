//go:build amd64 && !purego

package vec

import "unsafe"

// prefetchIndex hints the cache hierarchy to pull xs[i] toward L1. The
// caller bounds i; the hint itself cannot fault (PREFETCHT0 is a no-op on
// bad addresses) but the &xs[i] below must stay in range for Go.
//
//req:noalloc
func prefetchIndex[E Elem](xs []E, i int) {
	prefetchPtr(unsafe.Pointer(&xs[i]))
}

// prefetchPtr issues PREFETCHT0 on p (prefetch_amd64.s). PREFETCHT0 is
// baseline amd64 (SSE), so it needs no feature gate — only the purego
// escape hatch disables it.
//
//req:noalloc
func prefetchPtr(p unsafe.Pointer)
