package vec

// Backward galloping merges and the view-repair cumulative-weight rewrite,
// structure-identical to internal/core's generic versions (see runmerge.go
// and repairTailView there) specialised to `<` / its reversal.

// MergeIntoAsc merges the ascending-sorted block add into the
// ascending-sorted slice dst and returns the extended slice. The merge runs
// backward in place over dst's spare capacity; add must not alias dst's
// backing array, and the caller must have ensured capacity for
// len(dst)+len(add) (dst is a capped slab window in core, so the append can
// never reallocate out of the slab).
//
//req:noalloc
func MergeIntoAsc[E Elem](dst []E, add []E) []E {
	m, e := len(dst), len(add)
	if e == 0 {
		return dst
	}
	dst = append(dst, add...) //req:allocok — capacity ensured by the caller
	if m == 0 || !(add[0] < dst[m-1]) {
		// add belongs entirely after dst (the common case for near-sorted
		// ingest); append already placed it.
		return dst
	}
	i, j, k := m-1, e-1, m+e-1
	for j >= 0 && i >= 0 {
		if add[j] < dst[i] {
			// Gallop backward for p, the first index in dst[:i+1] with
			// dst[p] > add[j], then move dst[p:i+1] down in one copy.
			lo, hi := 0, i
			for step := 1; hi-step >= 0; step <<= 1 {
				if !(add[j] < dst[hi-step]) {
					lo = hi - step + 1
					break
				}
			}
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if add[j] < dst[mid] {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			cnt := i - lo + 1
			copy(dst[k-cnt+1:k+1], dst[lo:i+1])
			k -= cnt
			i = lo - 1
		} else {
			dst[k] = add[j]
			j--
			k--
		}
	}
	if j >= 0 {
		copy(dst[:j+1], add[:j+1])
	}
	return dst
}

// MergeIntoDesc is MergeIntoAsc under the reversed order (every less(u, v)
// becomes v < u): both slices sorted descending, merged descending.
//
//req:noalloc
func MergeIntoDesc[E Elem](dst []E, add []E) []E {
	m, e := len(dst), len(add)
	if e == 0 {
		return dst
	}
	dst = append(dst, add...) //req:allocok — capacity ensured by the caller
	if m == 0 || !(dst[m-1] < add[0]) {
		return dst
	}
	i, j, k := m-1, e-1, m+e-1
	for j >= 0 && i >= 0 {
		if dst[i] < add[j] {
			lo, hi := 0, i
			for step := 1; hi-step >= 0; step <<= 1 {
				if !(dst[hi-step] < add[j]) {
					lo = hi - step + 1
					break
				}
			}
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if dst[mid] < add[j] {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			cnt := i - lo + 1
			copy(dst[k-cnt+1:k+1], dst[lo:i+1])
			k -= cnt
			i = lo - 1
		} else {
			dst[k] = add[j]
			j--
			k--
		}
	}
	if j >= 0 {
		copy(dst[:j+1], add[:j+1])
	}
	return dst
}

// MergeTailCum merges the ascending-sorted tail (weight-1 items) into the
// ascending view arrays backward in place — the view-repair rewrite. items
// and cum must already have length old+len(tail); entries [0, old) hold the
// previous view, and the caller guarantees tail does not alias items.
//
// The backward merge stages raw per-item weights into the moved suffix of
// cum (k stays strictly above i, so reading cum[i]/cum[i-1] before writing
// cum[k] is safe), then one CumSumU64 sweep rewrites that suffix to
// cumulative form. uint64 addition is exact mod 2^64, so the result is
// bit-identical to the old fused accumulator on every input.
//
//req:noalloc
func MergeTailCum[E Elem](items []E, cum []uint64, tail []E, old int) {
	m := len(tail)
	end := old + m
	i, j, k := old-1, m-1, end-1
	for i >= 0 && j >= 0 {
		if items[i] < tail[j] {
			items[k] = tail[j]
			cum[k] = 1
			j--
		} else {
			w := cum[i]
			if i > 0 {
				w -= cum[i-1]
			}
			items[k] = items[i]
			cum[k] = w
			i--
		}
		k--
	}
	for j >= 0 {
		items[k] = tail[j]
		cum[k] = 1
		j--
		k--
	}
	// items[0..k] and their cumulative weights are untouched: every new item
	// merged in above them, so their prefix sums are unchanged. [k+1, end)
	// holds raw weights; one vectorized pass makes them cumulative.
	var base uint64
	if k >= 0 {
		base = cum[k]
	}
	cumSumU64(cum[k+1:end], base)
}
