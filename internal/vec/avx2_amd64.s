//go:build amd64 && !purego

#include "textflag.h"

// AVX2 count scans: 4 float64/uint64 lanes per YMM step, compare → movmsk →
// popcount. Callers guarantee len(xs) is a multiple of 4.
//
// NaN contract (f64): VCMPPD's unordered-quiet predicates are the exact
// vector duals of Go's scalar comparisons —
//   NLT_UQ ($0x15): true iff !(a < b), true on unordered  == !(y < x)
//   LT_OQ  ($0x11): true iff a < b, false on unordered    == x < y
// so the masks count precisely the elements the scalar scan counts,
// including NaN elements and NaN probes.
//
// uint64 contract: AVX2 has no unsigned 64-bit compare, so both operands
// are biased by XOR 1<<63 and compared with the signed VPCMPGTQ — the
// standard order-preserving unsigned→signed mapping.

// func countLEF64Asm(xs []float64, y float64) int
TEXT ·countLEF64Asm(SB), NOSPLIT, $0-40
	MOVQ         xs_base+0(FP), SI
	MOVQ         xs_len+8(FP), CX
	VBROADCASTSD y+24(FP), Y0
	XORQ         AX, AX
	XORQ         DX, DX
	MOVQ         CX, BX
	ANDQ         $-8, BX
	JMP          le64test

le64loop:
	VMOVUPD   (SI)(DX*8), Y1
	VMOVUPD   32(SI)(DX*8), Y2
	VCMPPD    $0x15, Y1, Y0, Y1 // !(y < x), 4 lanes
	VCMPPD    $0x15, Y2, Y0, Y2
	VMOVMSKPD Y1, R8
	VMOVMSKPD Y2, R9
	POPCNTQ   R8, R8
	POPCNTQ   R9, R9
	ADDQ      R8, AX
	ADDQ      R9, AX
	ADDQ      $8, DX

le64test:
	CMPQ DX, BX
	JLT  le64loop
	CMPQ DX, CX
	JGE  le64done

	// one trailing 4-lane block (len is a multiple of 4)
	VMOVUPD   (SI)(DX*8), Y1
	VCMPPD    $0x15, Y1, Y0, Y1
	VMOVMSKPD Y1, R8
	POPCNTQ   R8, R8
	ADDQ      R8, AX

le64done:
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func countLTF64Asm(xs []float64, y float64) int
TEXT ·countLTF64Asm(SB), NOSPLIT, $0-40
	MOVQ         xs_base+0(FP), SI
	MOVQ         xs_len+8(FP), CX
	VBROADCASTSD y+24(FP), Y0
	XORQ         AX, AX
	XORQ         DX, DX
	MOVQ         CX, BX
	ANDQ         $-8, BX
	JMP          lt64test

lt64loop:
	VMOVUPD   (SI)(DX*8), Y1
	VMOVUPD   32(SI)(DX*8), Y2
	VCMPPD    $0x11, Y0, Y1, Y1 // x < y, 4 lanes
	VCMPPD    $0x11, Y0, Y2, Y2
	VMOVMSKPD Y1, R8
	VMOVMSKPD Y2, R9
	POPCNTQ   R8, R8
	POPCNTQ   R9, R9
	ADDQ      R8, AX
	ADDQ      R9, AX
	ADDQ      $8, DX

lt64test:
	CMPQ DX, BX
	JLT  lt64loop
	CMPQ DX, CX
	JGE  lt64done

	VMOVUPD   (SI)(DX*8), Y1
	VCMPPD    $0x11, Y0, Y1, Y1
	VMOVMSKPD Y1, R8
	POPCNTQ   R8, R8
	ADDQ      R8, AX

lt64done:
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func countLEU64Asm(xs []uint64, y uint64) int
TEXT ·countLEU64Asm(SB), NOSPLIT, $0-40
	MOVQ         xs_base+0(FP), SI
	MOVQ         xs_len+8(FP), CX
	MOVQ         $0x8000000000000000, R10
	MOVQ         R10, X3
	VPBROADCASTQ X3, Y3
	VPBROADCASTQ y+24(FP), Y0
	VPXOR        Y3, Y0, Y0 // y, sign-biased
	XORQ         AX, AX     // running count of x > y
	XORQ         DX, DX
	JMP          leu64test

leu64loop:
	VMOVDQU   (SI)(DX*8), Y1
	VPXOR     Y3, Y1, Y1 // x, sign-biased
	VPCMPGTQ  Y0, Y1, Y2 // x > y (signed on biased = unsigned)
	VMOVMSKPD Y2, R8
	POPCNTQ   R8, R8
	ADDQ      R8, AX
	ADDQ      $4, DX

leu64test:
	CMPQ DX, CX
	JLT  leu64loop
	VZEROUPPER
	MOVQ CX, BX
	SUBQ AX, BX // count(x ≤ y) = len − count(x > y)
	MOVQ BX, ret+32(FP)
	RET

// func countLTU64Asm(xs []uint64, y uint64) int
TEXT ·countLTU64Asm(SB), NOSPLIT, $0-40
	MOVQ         xs_base+0(FP), SI
	MOVQ         xs_len+8(FP), CX
	MOVQ         $0x8000000000000000, R10
	MOVQ         R10, X3
	VPBROADCASTQ X3, Y3
	VPBROADCASTQ y+24(FP), Y0
	VPXOR        Y3, Y0, Y0
	XORQ         AX, AX
	XORQ         DX, DX
	JMP          ltu64test

ltu64loop:
	VMOVDQU   (SI)(DX*8), Y1
	VPXOR     Y3, Y1, Y1
	VPCMPGTQ  Y1, Y0, Y2 // y > x  ⇔  x < y
	VMOVMSKPD Y2, R8
	POPCNTQ   R8, R8
	ADDQ      R8, AX
	ADDQ      $4, DX

ltu64test:
	CMPQ DX, CX
	JLT  ltu64loop
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func hasNaNAsm(xs []float64) bool
TEXT ·hasNaNAsm(SB), NOSPLIT, $0-25
	MOVQ xs_base+0(FP), SI
	MOVQ xs_len+8(FP), CX
	XORQ DX, DX
	JMP  nantest

nanloop:
	VMOVUPD   (SI)(DX*8), Y1
	VCMPPD    $0x03, Y1, Y1, Y2 // UNORD_Q: x unordered with itself ⇔ NaN
	VMOVMSKPD Y2, R8
	TESTQ     R8, R8
	JNZ       nanfound
	ADDQ      $4, DX

nantest:
	CMPQ DX, CX
	JLT  nanloop
	VZEROUPPER
	MOVB $0, ret+24(FP)
	RET

nanfound:
	VZEROUPPER
	MOVB $1, ret+24(FP)
	RET
