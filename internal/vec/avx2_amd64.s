//go:build amd64 && !purego

#include "textflag.h"

// AVX2 count scans: 4 float64/uint64 lanes per YMM step, compare → movmsk →
// popcount. Callers guarantee len(xs) is a multiple of 4.
//
// NaN contract (f64): VCMPPD's unordered-quiet predicates are the exact
// vector duals of Go's scalar comparisons —
//   NLT_UQ ($0x15): true iff !(a < b), true on unordered  == !(y < x)
//   LT_OQ  ($0x11): true iff a < b, false on unordered    == x < y
// so the masks count precisely the elements the scalar scan counts,
// including NaN elements and NaN probes.
//
// uint64 contract: AVX2 has no unsigned 64-bit compare, so both operands
// are biased by XOR 1<<63 and compared with the signed VPCMPGTQ — the
// standard order-preserving unsigned→signed mapping.

// func countLEF64Asm(xs []float64, y float64) int
TEXT ·countLEF64Asm(SB), NOSPLIT, $0-40
	MOVQ         xs_base+0(FP), SI
	MOVQ         xs_len+8(FP), CX
	VBROADCASTSD y+24(FP), Y0
	XORQ         AX, AX
	XORQ         DX, DX
	MOVQ         CX, BX
	ANDQ         $-8, BX
	JMP          le64test

le64loop:
	VMOVUPD   (SI)(DX*8), Y1
	VMOVUPD   32(SI)(DX*8), Y2
	VCMPPD    $0x15, Y1, Y0, Y1 // !(y < x), 4 lanes
	VCMPPD    $0x15, Y2, Y0, Y2
	VMOVMSKPD Y1, R8
	VMOVMSKPD Y2, R9
	POPCNTQ   R8, R8
	POPCNTQ   R9, R9
	ADDQ      R8, AX
	ADDQ      R9, AX
	ADDQ      $8, DX

le64test:
	CMPQ DX, BX
	JLT  le64loop
	CMPQ DX, CX
	JGE  le64done

	// one trailing 4-lane block (len is a multiple of 4)
	VMOVUPD   (SI)(DX*8), Y1
	VCMPPD    $0x15, Y1, Y0, Y1
	VMOVMSKPD Y1, R8
	POPCNTQ   R8, R8
	ADDQ      R8, AX

le64done:
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func countLTF64Asm(xs []float64, y float64) int
TEXT ·countLTF64Asm(SB), NOSPLIT, $0-40
	MOVQ         xs_base+0(FP), SI
	MOVQ         xs_len+8(FP), CX
	VBROADCASTSD y+24(FP), Y0
	XORQ         AX, AX
	XORQ         DX, DX
	MOVQ         CX, BX
	ANDQ         $-8, BX
	JMP          lt64test

lt64loop:
	VMOVUPD   (SI)(DX*8), Y1
	VMOVUPD   32(SI)(DX*8), Y2
	VCMPPD    $0x11, Y0, Y1, Y1 // x < y, 4 lanes
	VCMPPD    $0x11, Y0, Y2, Y2
	VMOVMSKPD Y1, R8
	VMOVMSKPD Y2, R9
	POPCNTQ   R8, R8
	POPCNTQ   R9, R9
	ADDQ      R8, AX
	ADDQ      R9, AX
	ADDQ      $8, DX

lt64test:
	CMPQ DX, BX
	JLT  lt64loop
	CMPQ DX, CX
	JGE  lt64done

	VMOVUPD   (SI)(DX*8), Y1
	VCMPPD    $0x11, Y0, Y1, Y1
	VMOVMSKPD Y1, R8
	POPCNTQ   R8, R8
	ADDQ      R8, AX

lt64done:
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func countLEU64Asm(xs []uint64, y uint64) int
TEXT ·countLEU64Asm(SB), NOSPLIT, $0-40
	MOVQ         xs_base+0(FP), SI
	MOVQ         xs_len+8(FP), CX
	MOVQ         $0x8000000000000000, R10
	MOVQ         R10, X3
	VPBROADCASTQ X3, Y3
	VPBROADCASTQ y+24(FP), Y0
	VPXOR        Y3, Y0, Y0 // y, sign-biased
	XORQ         AX, AX     // running count of x > y
	XORQ         DX, DX
	JMP          leu64test

leu64loop:
	VMOVDQU   (SI)(DX*8), Y1
	VPXOR     Y3, Y1, Y1 // x, sign-biased
	VPCMPGTQ  Y0, Y1, Y2 // x > y (signed on biased = unsigned)
	VMOVMSKPD Y2, R8
	POPCNTQ   R8, R8
	ADDQ      R8, AX
	ADDQ      $4, DX

leu64test:
	CMPQ DX, CX
	JLT  leu64loop
	VZEROUPPER
	MOVQ CX, BX
	SUBQ AX, BX // count(x ≤ y) = len − count(x > y)
	MOVQ BX, ret+32(FP)
	RET

// func countLTU64Asm(xs []uint64, y uint64) int
TEXT ·countLTU64Asm(SB), NOSPLIT, $0-40
	MOVQ         xs_base+0(FP), SI
	MOVQ         xs_len+8(FP), CX
	MOVQ         $0x8000000000000000, R10
	MOVQ         R10, X3
	VPBROADCASTQ X3, Y3
	VPBROADCASTQ y+24(FP), Y0
	VPXOR        Y3, Y0, Y0
	XORQ         AX, AX
	XORQ         DX, DX
	JMP          ltu64test

ltu64loop:
	VMOVDQU   (SI)(DX*8), Y1
	VPXOR     Y3, Y1, Y1
	VPCMPGTQ  Y1, Y0, Y2 // y > x  ⇔  x < y
	VMOVMSKPD Y2, R8
	POPCNTQ   R8, R8
	ADDQ      R8, AX
	ADDQ      $4, DX

ltu64test:
	CMPQ DX, CX
	JLT  ltu64loop
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func cumSumU64Asm(xs []uint64, base uint64)
//
// In-place inclusive prefix sum with a running base. Each 4-lane block is
// prefix-summed in-register (shift/permute ladder: v += v<<64 per 128-bit
// half, then splat the low half's total across the high half), the running
// base is added, and the block's last lane becomes the next base. The main
// loop does two blocks per iteration so the serial base chain is two VPADDQs
// per 8 elements; the block-total broadcasts hang off the loads, not the
// chain. Addition mod 2^64 is associative, so this blocking is bit-identical
// to the scalar left-to-right loop (overflow included).
TEXT ·cumSumU64Asm(SB), NOSPLIT, $0-32
	MOVQ         xs_base+0(FP), SI
	MOVQ         xs_len+8(FP), CX
	VPBROADCASTQ base+24(FP), Y3 // running base, all lanes
	XORQ         DX, DX
	MOVQ         CX, BX
	ANDQ         $-8, BX
	JMP          cstest

csloop:
	VMOVDQU    (SI)(DX*8), Y0   // block0 = [a b c d]
	VMOVDQU    32(SI)(DX*8), Y1 // block1
	VPSLLDQ    $8, Y0, Y4       // [0 a | 0 c]
	VPADDQ     Y4, Y0, Y0       // [a a+b | c c+d]
	VPERM2I128 $0x08, Y0, Y0, Y4 // [0 0 | a a+b]
	VPERMQ     $0xF0, Y4, Y4    // [0 0 a+b a+b]
	VPADDQ     Y4, Y0, Y0       // prefix(block0) = [a a+b a+b+c a+b+c+d]
	VPSLLDQ    $8, Y1, Y5
	VPADDQ     Y5, Y1, Y1
	VPERM2I128 $0x08, Y1, Y1, Y5
	VPERMQ     $0xF0, Y5, Y5
	VPADDQ     Y5, Y1, Y1       // prefix(block1)
	VPERMQ     $0xFF, Y0, Y6    // block0 total, all lanes
	VPERMQ     $0xFF, Y1, Y7    // block1 total, all lanes
	VPADDQ     Y3, Y0, Y0       // + running base
	VMOVDQU    Y0, (SI)(DX*8)
	VPADDQ     Y6, Y3, Y3       // base += block0 total
	VPADDQ     Y3, Y1, Y1
	VMOVDQU    Y1, 32(SI)(DX*8)
	VPADDQ     Y7, Y3, Y3       // base += block1 total
	ADDQ       $8, DX

cstest:
	CMPQ DX, BX
	JLT  csloop
	CMPQ DX, CX
	JGE  csdone

	// one trailing 4-lane block (len is a multiple of 4)
	VMOVDQU    (SI)(DX*8), Y0
	VPSLLDQ    $8, Y0, Y4
	VPADDQ     Y4, Y0, Y0
	VPERM2I128 $0x08, Y0, Y0, Y4
	VPERMQ     $0xF0, Y4, Y4
	VPADDQ     Y4, Y0, Y0
	VPADDQ     Y3, Y0, Y0
	VMOVDQU    Y0, (SI)(DX*8)

csdone:
	VZEROUPPER
	RET

// func hasNaNAsm(xs []float64) bool
TEXT ·hasNaNAsm(SB), NOSPLIT, $0-25
	MOVQ xs_base+0(FP), SI
	MOVQ xs_len+8(FP), CX
	XORQ DX, DX
	JMP  nantest

nanloop:
	VMOVUPD   (SI)(DX*8), Y1
	VCMPPD    $0x03, Y1, Y1, Y2 // UNORD_Q: x unordered with itself ⇔ NaN
	VMOVMSKPD Y2, R8
	TESTQ     R8, R8
	JNZ       nanfound
	ADDQ      $4, DX

nantest:
	CMPQ DX, CX
	JLT  nanloop
	VZEROUPPER
	MOVB $0, ret+24(FP)
	RET

nanfound:
	VZEROUPPER
	MOVB $1, ret+24(FP)
	RET
