package vec

import (
	"math/rand"
	"testing"
)

// Kernel microbenches: each dispatched entry point against its portable
// scalar form, so `go test -bench . ./internal/vec` on an AVX2 host prints
// the honest vector-vs-scalar margin (and on a purego build the pairs
// collapse to the same number, proving dispatch is the only difference).
// The sizes bracket the coreset buffers the kernels actually see: a
// compactor section (~1k) and a merged view (~64k).

func benchF64(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	return xs
}

func benchU64(n int, seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = r.Uint64()
	}
	return xs
}

func sizes() []struct {
	name string
	n    int
} {
	return []struct {
		name string
		n    int
	}{{"n=1k", 1 << 10}, {"n=64k", 1 << 16}}
}

func BenchmarkCountLEF64(b *testing.B) {
	for _, sz := range sizes() {
		xs := benchF64(sz.n, 1)
		b.Run(sz.name+"/dispatch", func(b *testing.B) {
			b.SetBytes(int64(sz.n * 8))
			var sink int
			for i := 0; i < b.N; i++ {
				sink += CountLEF64(xs, 0.5)
			}
			_ = sink
		})
		b.Run(sz.name+"/portable", func(b *testing.B) {
			b.SetBytes(int64(sz.n * 8))
			var sink int
			for i := 0; i < b.N; i++ {
				sink += scanCountLE(xs, 0.5)
			}
			_ = sink
		})
	}
}

func BenchmarkCountLTU64(b *testing.B) {
	for _, sz := range sizes() {
		xs := benchU64(sz.n, 2)
		b.Run(sz.name+"/dispatch", func(b *testing.B) {
			b.SetBytes(int64(sz.n * 8))
			var sink int
			for i := 0; i < b.N; i++ {
				sink += CountLTU64(xs, 1<<63)
			}
			_ = sink
		})
		b.Run(sz.name+"/portable", func(b *testing.B) {
			b.SetBytes(int64(sz.n * 8))
			var sink int
			for i := 0; i < b.N; i++ {
				sink += scanCountLT(xs, 1<<63)
			}
			_ = sink
		})
	}
}

func BenchmarkHasNaN(b *testing.B) {
	for _, sz := range sizes() {
		xs := benchF64(sz.n, 3) // no NaN: full-scan worst case
		b.Run(sz.name+"/dispatch", func(b *testing.B) {
			b.SetBytes(int64(sz.n * 8))
			var sink bool
			for i := 0; i < b.N; i++ {
				sink = sink != HasNaN(xs)
			}
			_ = sink
		})
		b.Run(sz.name+"/portable", func(b *testing.B) {
			b.SetBytes(int64(sz.n * 8))
			var sink bool
			for i := 0; i < b.N; i++ {
				sink = sink != hasNaNPortable(xs)
			}
			_ = sink
		})
	}
}

func BenchmarkSortAscF64(b *testing.B) {
	for _, sz := range sizes() {
		src := benchF64(sz.n, 4)
		buf := make([]float64, sz.n)
		b.Run(sz.name, func(b *testing.B) {
			b.SetBytes(int64(sz.n * 8))
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				SortAsc(buf)
			}
		})
	}
}

func BenchmarkMergeIntoAscF64(b *testing.B) {
	for _, sz := range sizes() {
		a := benchF64(sz.n, 5)
		c := benchF64(sz.n, 6)
		SortAsc(a)
		SortAsc(c)
		dst := make([]float64, sz.n, 2*sz.n)
		b.Run(sz.name, func(b *testing.B) {
			b.SetBytes(int64(2 * sz.n * 8))
			for i := 0; i < b.N; i++ {
				copy(dst[:sz.n], a)
				MergeIntoAsc(dst[:sz.n], c)
			}
		})
	}
}

func BenchmarkEytRankBatchF64(b *testing.B) {
	n := 1 << 16
	sorted := benchF64(n, 7)
	SortAsc(sorted)
	// In-order fill of the 1-based BFS layout, mirroring core's buildIndex.
	eyt := make([]float64, n+1)
	before := make([]uint64, n+1)
	var fill func(k, next int) int
	fill = func(k, next int) int {
		if k > n {
			return next
		}
		next = fill(2*k, next)
		eyt[k] = sorted[next]
		before[k] = uint64(next)
		next++
		return fill(2*k+1, next)
	}
	fill(1, 0)
	cum := uint64(n)
	probes := benchF64(256, 8)
	out := make([]uint64, 256)
	b.Run("n=64k/batch=256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EytRankBatch(eyt, before, cum, probes, out)
		}
	})
	b.Run("n=64k/single", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			for _, p := range probes {
				k := EytRankLE(eyt, p)
				if k == 0 {
					sink += cum
				} else {
					sink += before[k]
				}
			}
		}
		_ = sink
	})
}

func BenchmarkKWayMergeF64(b *testing.B) {
	const ways, per = 8, 1 << 13
	var curs []KWayCursor[float64]
	for w := 0; w < ways; w++ {
		xs := benchF64(per, int64(9+w))
		SortAsc(xs)
		curs = append(curs, KWayCursor[float64]{Buf: xs, Pos: 0, End: per, Step: 1, W: 1 << uint(w)})
	}
	items := make([]float64, ways*per)
	cum := make([]uint64, ways*per)
	scratch := make([]KWayCursor[float64], ways)
	b.Run("ways=8/n=64k", func(b *testing.B) {
		b.SetBytes(int64(ways * per * 8))
		for i := 0; i < b.N; i++ {
			copy(scratch, curs)
			KWayMerge(scratch, items, cum)
		}
	})
}

func BenchmarkCumSumU64(b *testing.B) {
	for _, sz := range sizes() {
		src := make([]uint64, sz.n)
		for i := range src {
			src[i] = uint64(i%7) + 1
		}
		dst := make([]uint64, sz.n)
		b.Run("kernel/"+sz.name, func(b *testing.B) {
			b.SetBytes(int64(8 * sz.n))
			for i := 0; i < b.N; i++ {
				copy(dst, src)
				CumSumU64(dst, 0)
			}
		})
		b.Run("scalar/"+sz.name, func(b *testing.B) {
			b.SetBytes(int64(8 * sz.n))
			for i := 0; i < b.N; i++ {
				copy(dst, src)
				cumSumPortable(dst, 0)
			}
		})
	}
}
