package vec

// CPU dispatch for the kernels with assembly variants. The vars default to
// the portable generic instantiations; on amd64 without the purego tag, an
// init in dispatch_amd64.go swaps in the AVX2 versions when CPUID reports
// the required features. Package initialization order guarantees every
// importer (internal/core's kernel tables included) observes the final
// values: vec's init runs before any importing package's.
//
// Only kernels whose vector semantics provably match the scalar loop are
// dispatched: the order-insensitive linear scans, and the uint64 prefix sum
// (addition mod 2^64 is associative, so any lane blocking is bit-identical;
// see cumsum.go). Everything else is portable-only by design.

var (
	countLEF64 func([]float64, float64) int = scanCountLE[float64]
	countLTF64 func([]float64, float64) int = scanCountLT[float64]
	countLEU64 func([]uint64, uint64) int   = scanCountLE[uint64]
	countLTU64 func([]uint64, uint64) int   = scanCountLT[uint64]
	hasNaN     func([]float64) bool         = hasNaNPortable
	cumSumU64  func([]uint64, uint64)       = cumSumPortable

	// accelName names the live implementation tier for reports and docs.
	accelName = "portable"
)

// CountLEF64 counts elements x of xs with !(y < x) — the inclusive-rank
// scan predicate (NaN elements count; a NaN probe counts everything).
//
//req:noalloc
func CountLEF64(xs []float64, y float64) int { return countLEF64(xs, y) }

// CountLTF64 counts elements x of xs with x < y.
//
//req:noalloc
func CountLTF64(xs []float64, y float64) int { return countLTF64(xs, y) }

// CountLEU64 counts elements x of xs with x ≤ y.
//
//req:noalloc
func CountLEU64(xs []uint64, y uint64) int { return countLEU64(xs, y) }

// CountLTU64 counts elements x of xs with x < y.
//
//req:noalloc
func CountLTU64(xs []uint64, y uint64) int { return countLTU64(xs, y) }

// HasNaN reports whether xs contains a NaN.
//
//req:noalloc
func HasNaN(xs []float64) bool { return hasNaN(xs) }

// CumSumU64 rewrites xs in place to its inclusive prefix sums offset by
// base: xs[i] = base + xs[0] + … + xs[i], with uint64 wraparound.
//
//req:noalloc
func CumSumU64(xs []uint64, base uint64) { cumSumU64(xs, base) }

// Accel returns the live acceleration tier: "avx2" when the assembly
// kernels are dispatched, "portable" otherwise (non-amd64, the purego build
// tag, or missing CPU features).
func Accel() string { return accelName }
