//go:build amd64 && !purego

package vec

// AVX2 dispatch: the assembly kernels process 4 lanes (one YMM register) per
// step over an even multiple of 4 elements; the Go wrappers run the scalar
// portable predicate over the sub-4 remainder. Counts of independent
// per-element predicates are permutation-invariant, so splitting the slice
// this way is bit-identical to the all-scalar scan on every input, NaN
// included (the VCMPPD predicates are the unordered-quiet duals of Go's `<`;
// see avx2_amd64.s).

func init() {
	if hasAVX2() {
		countLEF64 = countLEF64AVX2
		countLTF64 = countLTF64AVX2
		countLEU64 = countLEU64AVX2
		countLTU64 = countLTU64AVX2
		hasNaN = hasNaNAVX2
		cumSumU64 = cumSumU64AVX2
		accelName = "avx2"
	}
}

//req:noalloc
func countLEF64AVX2(xs []float64, y float64) int {
	n := len(xs) &^ 3
	c := countLEF64Asm(xs[:n], y)
	for _, x := range xs[n:] {
		c += b2i(!(y < x))
	}
	return c
}

//req:noalloc
func countLTF64AVX2(xs []float64, y float64) int {
	n := len(xs) &^ 3
	c := countLTF64Asm(xs[:n], y)
	for _, x := range xs[n:] {
		c += b2i(x < y)
	}
	return c
}

//req:noalloc
func countLEU64AVX2(xs []uint64, y uint64) int {
	n := len(xs) &^ 3
	c := countLEU64Asm(xs[:n], y)
	for _, x := range xs[n:] {
		c += b2i(!(y < x))
	}
	return c
}

//req:noalloc
func countLTU64AVX2(xs []uint64, y uint64) int {
	n := len(xs) &^ 3
	c := countLTU64Asm(xs[:n], y)
	for _, x := range xs[n:] {
		c += b2i(x < y)
	}
	return c
}

//req:noalloc
func hasNaNAVX2(xs []float64) bool {
	n := len(xs) &^ 3
	if hasNaNAsm(xs[:n]) {
		return true
	}
	for _, x := range xs[n:] {
		if x != x {
			return true
		}
	}
	return false
}

//req:noalloc
func cumSumU64AVX2(xs []uint64, base uint64) {
	n := len(xs) &^ 3
	cumSumU64Asm(xs[:n], base)
	if n > 0 {
		base = xs[n-1] // running total after the vector blocks
	}
	for i := n; i < len(xs); i++ {
		base += xs[i]
		xs[i] = base
	}
}

// Assembly kernels (avx2_amd64.s); len(xs) must be a multiple of 4.

//req:noalloc
func countLEF64Asm(xs []float64, y float64) int

//req:noalloc
func countLTF64Asm(xs []float64, y float64) int

//req:noalloc
func countLEU64Asm(xs []uint64, y uint64) int

//req:noalloc
func countLTU64Asm(xs []uint64, y uint64) int

//req:noalloc
func hasNaNAsm(xs []float64) bool

//req:noalloc
func cumSumU64Asm(xs []uint64, base uint64)
