// Package vec is the monomorphic data-parallel kernel layer for the hot
// inner loops of internal/core: searching, merging, sorting, counting, and
// Eytzinger descents specialised to float64 and uint64 under their natural
// ascending order.
//
// The generic engine in internal/core is parameterized by a
// less(a, b T) bool closure, which costs an indirect call per comparison and
// defeats inlining and branch-free codegen. The kernels here are generic
// only over the Elem constraint (~float64 | ~uint64): the compiler stencils
// a separate instantiation per element type with the `<` comparison inlined,
// so every kernel is effectively monomorphic machine code. internal/core
// installs a per-type dispatch table (see core's kernels.go) that routes the
// hot paths here when the sketch's less function is the canonical natural
// order; arbitrary orders keep the generic closure paths.
//
// # Bit-identity contract
//
// Every kernel must return bit-identical results to the generic code it
// replaces, for every input — including float64 NaN, ±0, ±Inf, and
// denormals. Two rules follow:
//
//   - Predicates keep their exact form. !(y < x) is NOT x <= y when NaN is
//     involved (both comparisons are false), so kernels spell out the same
//     negations the generic code uses.
//   - Stateful kernels (sort, merge, binary search, Eytzinger descent) are
//     structure-identical transcriptions of the generic algorithms: the same
//     probe sequence, the same swaps, the same tie behaviour. On inputs that
//     violate the sortedness precondition (possible only when a raw core
//     sketch is fed NaN), a structurally different "equivalent" algorithm
//     would return a different wrong answer; an identical structure returns
//     the identical one. The differential suite (kernel_diff_test.go in
//     core, diff_test.go here) enforces this on adversarial inputs.
//
// Order-insensitive kernels (the linear count scans, HasNaN) are free to be
// 4x-unrolled and branch-free, because a count of independent per-element
// predicates is permutation-invariant. MinMax is deliberately sequential:
// float64 ±0 ties resolve to the first-seen operand, and reordering lanes
// would change which zero survives.
//
// # Hardware dispatch
//
// The linear scans additionally have AVX2 assembly variants (amd64 only),
// selected once at init by CPUID feature detection (AVX2 + OSXSAVE-enabled
// YMM state + POPCNT). The `purego` build tag, a non-amd64 GOARCH, or
// missing CPU features all fall back to the portable kernels; Accel()
// reports which implementation is live. Assembly is restricted to kernels
// whose vector semantics provably match Go's scalar comparisons (VCMPPD's
// unordered-quiet predicates match `<` on NaN exactly; uint64 compares go
// through a sign-bias XOR + signed VPCMPGTQ).
package vec

// Elem is the set of element types with monomorphic kernels: the two types
// the public wrappers (req.Float64, req.Uint64, the sharded and persisted
// variants) actually instantiate.
type Elem interface {
	~float64 | ~uint64
}

// b2i converts a bool to 0/1 without a branch (compiles to SETcc).
//
//req:noalloc
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
