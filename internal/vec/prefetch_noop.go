//go:build !amd64 || purego

package vec

// prefetchIndex is a no-op without the amd64 assembly: portable builds rely
// on the hardware prefetchers alone.
//
//req:noalloc
func prefetchIndex[E Elem](xs []E, i int) {
	_ = xs
	_ = i
}
