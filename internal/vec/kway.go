package vec

// Monomorphic k-way merge of sorted level buffers into a view's item and
// cumulative-weight arrays: the kernel form of core's kwayMergeInto, with
// the heap comparisons inlined (`<` instead of a headLess closure) and
// software prefetch hints on the cursor streams.

// KWayCursor walks one sorted level buffer in ascending caller order during
// the k-way merge. Unconstrained in the element type so internal/core can
// hold a reusable cursor slice for any T; only KWayMerge requires Elem.
type KWayCursor[T any] struct {
	Buf  []T
	Pos  int // current index
	End  int // one past the last index, in walk direction
	Step int // +1 (LRA) or -1 (HRA: buffers are stored reversed)
	W    uint64
}

// prefetchStride is how many elements ahead of a cursor's read position the
// merge prefetches, and (as a mask) how often: a prefetch per element would
// cost more in call overhead than the hint saves, so cursors issue one hint
// every 8 advances, 16 elements (two cache lines) ahead.
const prefetchStride = 16

// KWayMerge merges the cursors' buffers ascending into items, filling cum
// with cumulative weights. items and cum must have length equal to the
// total number of buffered elements. curs is reordered freely (it is heap
// scratch); the buffers themselves are only read.
//
// The merge stages each item's raw weight into cum and finishes with one
// CumSumU64 sweep — keeping the serial accumulator out of the
// comparison-bound heap loop and letting the AVX2 prefix-sum kernel handle
// the arithmetic. Exact uint64 addition makes the two-pass form
// bit-identical to the fused one.
//
//req:noalloc
func KWayMerge[E Elem](curs []KWayCursor[E], items []E, cum []uint64) {
	if len(curs) == 0 {
		return
	}
	if len(curs) == 1 {
		c := &curs[0]
		for i := range items {
			items[i] = c.Buf[c.Pos]
			cum[i] = c.W
			c.Pos += c.Step
		}
		cumSumU64(cum, 0)
		return
	}
	// Min-heap over the cursors, keyed by each cursor's current head item —
	// identical structure to the generic sift, with the closure inlined.
	n := len(curs)
	for i := n/2 - 1; i >= 0; i-- {
		siftKWay(curs, i, n)
	}
	for out := 0; n > 0; out++ {
		c := &curs[0]
		items[out] = c.Buf[c.Pos]
		cum[out] = c.W
		c.Pos += c.Step
		if c.Pos == c.End {
			n--
			curs[0] = curs[n]
		} else if c.Pos&7 == 0 {
			if p := c.Pos + c.Step*prefetchStride; uint(p) < uint(len(c.Buf)) {
				prefetchIndex(c.Buf, p)
			}
		}
		siftKWay(curs, 0, n)
	}
	cumSumU64(cum, 0)
}

//req:noalloc
func siftKWay[E Elem](curs []KWayCursor[E], root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n &&
			curs[child+1].Buf[curs[child+1].Pos] < curs[child].Buf[curs[child].Pos] {
			child++
		}
		if !(curs[child].Buf[curs[child].Pos] < curs[root].Buf[curs[root].Pos]) {
			return
		}
		curs[root], curs[child] = curs[child], curs[root]
		root = child
	}
}
