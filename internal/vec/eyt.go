package vec

import "math/bits"

// Eytzinger (BFS-layout) descents, structure-identical to internal/core's
// eytzinger.go with less specialised to `<`. items is the 1-based BFS array
// (slot 0 unused); the return value is the fixed-up Eytzinger slot of the
// answer, 0 meaning the search ran off the right edge (no qualifying
// element) — the caller maps slots to before[]/total.

// eytFixup converts the descent's path-encoded position into the Eytzinger
// slot of the answer: shifting out the trailing 1-bits (the final run of
// right turns) plus one leaves the last node where the search went left.
//
//req:noalloc
func eytFixup(k int) int {
	return k >> (uint(bits.TrailingZeros(^uint(k))) + 1)
}

// EytRankLE descends to the first element > y (everything before it is ≤ y,
// the inclusive-rank descent).
//
//req:noalloc
func EytRankLE[E Elem](items []E, y E) int {
	k := 1
	for k < len(items) {
		if y < items[k] {
			k = 2 * k
		} else {
			k = 2*k + 1
		}
	}
	return eytFixup(k)
}

// EytRankGE descends to the first element ≥ y (the exclusive-rank descent).
//
//req:noalloc
func EytRankGE[E Elem](items []E, y E) int {
	k := 1
	for k < len(items) {
		if items[k] < y {
			k = 2*k + 1
		} else {
			k = 2 * k
		}
	}
	return eytFixup(k)
}

// rankLanes is the number of descents EytRankBatch runs in lockstep,
// matching the generic rankBatch: each lane's next probe is an independent
// cache miss, so the memory system keeps several loads in flight.
const rankLanes = 8

// EytRankBatch answers the inclusive rank of every probe in ys, writing
// into out (same length as ys) in input order: the monomorphic form of the
// generic rankBatch lockstep descent, with the before[]/total mapping folded
// in so no per-probe emit callback survives.
//
//req:noalloc
func EytRankBatch[E Elem](items []E, before []uint64, total uint64, ys []E, out []uint64) {
	n := len(items) - 1
	items = items[: n+1 : n+1]
	// Every root-to-leaf path has length depth or depth−1, and a node index
	// can only exceed n on the very last step, so the descent runs unguarded
	// for depth−1 levels and guards only the final one (see the generic
	// rankBatch for the bound proof).
	depth := bits.Len(uint(n))
	var ks [rankLanes]int
	for base := 0; base < len(ys); base += rankLanes {
		m := len(ys) - base
		if m > rankLanes {
			m = rankLanes
		}
		for l := 0; l < m; l++ {
			ks[l] = 1
		}
		for d := 0; d < depth-1; d++ {
			for l := 0; l < m; l++ {
				k := ks[l]
				if ys[base+l] < items[k] {
					ks[l] = 2 * k
				} else {
					ks[l] = 2*k + 1
				}
			}
		}
		for l := 0; l < m; l++ {
			k := ks[l]
			if k <= n {
				if ys[base+l] < items[k] {
					ks[l] = 2 * k
				} else {
					ks[l] = 2*k + 1
				}
			}
		}
		for l := 0; l < m; l++ {
			k := eytFixup(ks[l])
			if k == 0 {
				out[base+l] = total
			} else {
				out[base+l] = before[k]
			}
		}
	}
}
