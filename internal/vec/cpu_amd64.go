//go:build amd64 && !purego

package vec

// CPUID-based feature detection for the AVX2 dispatch. x/sys/cpu is not
// vendored, so the two leaf reads are hand-rolled in cpu_amd64.s; the checks
// follow the Intel SDM procedure for safely using YMM state:
//
//  1. CPUID.1:ECX — OSXSAVE (bit 27) proves XGETBV is usable and the OS
//     opted into XSAVE; AVX (bit 28) and POPCNT (bit 23) for the kernels.
//  2. XGETBV(XCR0) bits 1..2 — the OS actually saves/restores XMM+YMM
//     state across context switches.
//  3. CPUID.(7,0):EBX bit 5 — AVX2 itself.

// cpuid executes CPUID with the given EAX/ECX inputs (cpu_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (cpu_amd64.s); only valid once OSXSAVE is confirmed.
func xgetbv() (eax, edx uint32)

// hasAVX2 reports whether the AVX2 count kernels are safe to dispatch.
func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave, avx, popcnt = 1 << 27, 1 << 28, 1 << 23
	if ecx1&osxsave == 0 || ecx1&avx == 0 || ecx1&popcnt == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 { // XMM (bit 1) and YMM (bit 2) state enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
