package vec

import (
	"math"
	"math/rand"
	"testing"
)

// Differential suite: every dispatched kernel (whatever implementation the
// init-time CPU detection selected — AVX2 on capable amd64, the portable
// scans elsewhere and under -tags purego) must agree bit-for-bit with a
// plain scalar reference on randomized and adversarial inputs. When the
// dispatch resolved to the portable scans this degenerates to checking the
// unrolled scans against the simple loop — still a real check, since the
// 4-accumulator unroll must be permutation-exact, not merely close.

// adversarialFloats are the float64 inputs that distinguish a correct
// transcription from a merely plausible one: NaN (every comparison false),
// signed zeros (compare equal), infinities, and denormals.
func adversarialFloats() [][]float64 {
	nan := math.NaN()
	inf := math.Inf(1)
	den := math.SmallestNonzeroFloat64
	return [][]float64{
		nil,
		{},
		{1},
		{nan},
		{nan, nan, nan, nan, nan},
		{1, nan, 2, nan, 3},
		{math.Copysign(0, -1), 0, math.Copysign(0, -1), 0},
		{-inf, inf, -inf, inf, 0, nan},
		{den, -den, 0, den * 2, -den * 2},
		{5, 5, 5, 5, 5, 5, 5, 5, 5},
		{-1e300, 1e300, -1e-300, 1e-300, nan, -inf, inf},
	}
}

func adversarialUints() [][]uint64 {
	const mx = math.MaxUint64
	const top = uint64(1) << 63
	return [][]uint64{
		nil,
		{},
		{7},
		{0, mx, top, top - 1, top + 1},
		{mx, mx, mx, mx, mx},
		{0, 0, 0, 0},
		{1, top, 2, top | 2, 3, mx - 1},
	}
}

// floatProbes returns probe values worth testing against xs: every element
// plus the global edge cases.
func floatProbes(xs []float64) []float64 {
	ps := append([]float64(nil), xs...)
	return append(ps, math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), 1.5)
}

func uintProbes(xs []uint64) []uint64 {
	ps := append([]uint64(nil), xs...)
	return append(ps, 0, 1, uint64(1)<<63, math.MaxUint64)
}

func refCountLEF64(xs []float64, y float64) int {
	c := 0
	for _, x := range xs {
		if !(y < x) {
			c++
		}
	}
	return c
}

func refCountLTF64(xs []float64, y float64) int {
	c := 0
	for _, x := range xs {
		if x < y {
			c++
		}
	}
	return c
}

func refCountLEU64(xs []uint64, y uint64) int {
	c := 0
	for _, x := range xs {
		if !(y < x) {
			c++
		}
	}
	return c
}

func refCountLTU64(xs []uint64, y uint64) int {
	c := 0
	for _, x := range xs {
		if x < y {
			c++
		}
	}
	return c
}

func refHasNaN(xs []float64) bool {
	for _, x := range xs {
		if x != x {
			return true
		}
	}
	return false
}

func TestCountDispatchAdversarialFloat64(t *testing.T) {
	t.Logf("accel tier under test: %s", Accel())
	for ci, xs := range adversarialFloats() {
		for _, y := range floatProbes(xs) {
			if got, want := CountLEF64(xs, y), refCountLEF64(xs, y); got != want {
				t.Fatalf("case %d: CountLEF64(%v, %v) = %d, want %d", ci, xs, y, got, want)
			}
			if got, want := CountLTF64(xs, y), refCountLTF64(xs, y); got != want {
				t.Fatalf("case %d: CountLTF64(%v, %v) = %d, want %d", ci, xs, y, got, want)
			}
		}
		if got, want := HasNaN(xs), refHasNaN(xs); got != want {
			t.Fatalf("case %d: HasNaN(%v) = %v, want %v", ci, xs, got, want)
		}
	}
}

func TestCountDispatchAdversarialUint64(t *testing.T) {
	for ci, xs := range adversarialUints() {
		for _, y := range uintProbes(xs) {
			if got, want := CountLEU64(xs, y), refCountLEU64(xs, y); got != want {
				t.Fatalf("case %d: CountLEU64(%v, %v) = %d, want %d", ci, xs, y, got, want)
			}
			if got, want := CountLTU64(xs, y), refCountLTU64(xs, y); got != want {
				t.Fatalf("case %d: CountLTU64(%v, %v) = %d, want %d", ci, xs, y, got, want)
			}
		}
	}
}

// randFloats draws values from a pool that includes the adversarial values
// with high probability, at every length class the dispatch splits on
// (0..3 scalar tail, 4-lane blocks, the 8/iter unrolled body).
func randFloats(r *rand.Rand, n int) []float64 {
	special := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1),
		math.SmallestNonzeroFloat64, 1, -1}
	xs := make([]float64, n)
	for i := range xs {
		if r.Intn(4) == 0 {
			xs[i] = special[r.Intn(len(special))]
		} else {
			xs[i] = r.NormFloat64() * 1e3
		}
	}
	return xs
}

func TestCountDispatchRandomizedFloat64(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for iter := 0; iter < 500; iter++ {
		xs := randFloats(r, r.Intn(67))
		y := xs0(xs, r)
		if got, want := CountLEF64(xs, y), refCountLEF64(xs, y); got != want {
			t.Fatalf("CountLEF64(len %d, %v) = %d, want %d", len(xs), y, got, want)
		}
		if got, want := CountLTF64(xs, y), refCountLTF64(xs, y); got != want {
			t.Fatalf("CountLTF64(len %d, %v) = %d, want %d", len(xs), y, got, want)
		}
		if got, want := HasNaN(xs), refHasNaN(xs); got != want {
			t.Fatalf("HasNaN(len %d) = %v, want %v", len(xs), got, want)
		}
	}
}

func xs0(xs []float64, r *rand.Rand) float64 {
	if len(xs) > 0 && r.Intn(2) == 0 {
		return xs[r.Intn(len(xs))]
	}
	if r.Intn(8) == 0 {
		return math.NaN()
	}
	return r.NormFloat64() * 1e3
}

func TestCountDispatchRandomizedUint64(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 500; iter++ {
		n := r.Intn(67)
		xs := make([]uint64, n)
		for i := range xs {
			switch r.Intn(4) {
			case 0:
				xs[i] = math.MaxUint64 - uint64(r.Intn(3))
			case 1:
				xs[i] = (uint64(1) << 63) + uint64(r.Intn(3)) - 1
			default:
				xs[i] = r.Uint64()
			}
		}
		var y uint64
		if n > 0 && r.Intn(2) == 0 {
			y = xs[r.Intn(n)]
		} else {
			y = r.Uint64()
		}
		if got, want := CountLEU64(xs, y), refCountLEU64(xs, y); got != want {
			t.Fatalf("CountLEU64(len %d, %d) = %d, want %d", n, y, got, want)
		}
		if got, want := CountLTU64(xs, y), refCountLTU64(xs, y); got != want {
			t.Fatalf("CountLTU64(len %d, %d) = %d, want %d", n, y, got, want)
		}
	}
}

// bitsOf reduces a float64 slice to raw bits for bit-exact comparison
// (NaN != NaN under ==, but its payload bits compare fine).
func bitsOf(xs []float64) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = math.Float64bits(x)
	}
	return out
}

// TestSortMatchesGenericStructure proves SortAsc/SortDesc produce the exact
// permutation of core's generic introsort — including on NaN-polluted input,
// where "a correct sort" is not unique and only structural identity keeps
// kernel and closure paths bit-identical. The reference here is a local
// transcription of the same algorithm with explicit closures.
func TestSortMatchesGenericStructure(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for iter := 0; iter < 300; iter++ {
		xs := randFloats(r, r.Intn(200))
		mine := append([]float64(nil), xs...)
		ref := append([]float64(nil), xs...)
		SortAsc(mine)
		refSortSlice(ref, func(a, b float64) bool { return a < b })
		if !sameBits(bitsOf(mine), bitsOf(ref)) {
			t.Fatalf("SortAsc diverged from generic introsort on %v:\n got %v\nwant %v", xs, mine, ref)
		}
		mine = append(mine[:0], xs...)
		ref = append(ref[:0], xs...)
		SortDesc(mine)
		refSortSlice(ref, func(a, b float64) bool { return b < a })
		if !sameBits(bitsOf(mine), bitsOf(ref)) {
			t.Fatalf("SortDesc diverged from generic introsort on %v:\n got %v\nwant %v", xs, mine, ref)
		}
	}
}

func sameBits(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refSortSlice is a verbatim copy of internal/core's sortSlice (the generic
// introsort) so the structural-identity claim is checked against the real
// algorithm, not a stand-in.
func refSortSlice[T any](xs []T, less func(a, b T) bool) {
	refQuicksort(xs, refMaxDepth(len(xs)), less)
}

func refMaxDepth(n int) int {
	d := 0
	for i := n; i > 0; i >>= 1 {
		d++
	}
	return 2 * d
}

func refQuicksort[T any](xs []T, depth int, less func(a, b T) bool) {
	for len(xs) > insertionThreshold {
		if depth == 0 {
			refHeapsort(xs, less)
			return
		}
		depth--
		p := refPartition(xs, less)
		if p < len(xs)-p-1 {
			refQuicksort(xs[:p], depth, less)
			xs = xs[p+1:]
		} else {
			refQuicksort(xs[p+1:], depth, less)
			xs = xs[:p]
		}
	}
	refInsertionSort(xs, less)
}

func refPartition[T any](xs []T, less func(a, b T) bool) int {
	n := len(xs)
	mid := n / 2
	if less(xs[mid], xs[0]) {
		xs[mid], xs[0] = xs[0], xs[mid]
	}
	if less(xs[n-1], xs[0]) {
		xs[n-1], xs[0] = xs[0], xs[n-1]
	}
	if less(xs[n-1], xs[mid]) {
		xs[n-1], xs[mid] = xs[mid], xs[n-1]
	}
	xs[mid], xs[n-2] = xs[n-2], xs[mid]
	pivot := xs[n-2]
	i, j := 0, n-2
	for {
		i++
		for less(xs[i], pivot) {
			i++
		}
		j--
		for less(pivot, xs[j]) {
			j--
		}
		if i >= j {
			break
		}
		xs[i], xs[j] = xs[j], xs[i]
	}
	xs[i], xs[n-2] = xs[n-2], xs[i]
	return i
}

func refInsertionSort[T any](xs []T, less func(a, b T) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func refHeapsort[T any](xs []T, less func(a, b T) bool) {
	n := len(xs)
	sift := func(root, end int) {
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && less(xs[child], xs[child+1]) {
				child++
			}
			if !less(xs[root], xs[child]) {
				return
			}
			xs[root], xs[child] = xs[child], xs[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		sift(i, n)
	}
	for i := n - 1; i > 0; i-- {
		xs[0], xs[i] = xs[i], xs[0]
		sift(0, i)
	}
}

func TestMergeIntoMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		a := randFloats(r, r.Intn(60))
		b := randFloats(r, r.Intn(30))
		SortAsc(a)
		SortAsc(b)
		dst := make([]float64, len(a), len(a)+len(b))
		copy(dst, a)
		got := MergeIntoAsc(dst, b)
		want := refMergeSortedInto(append([]float64(nil), a...), b, func(x, y float64) bool { return x < y })
		if !sameBits(bitsOf(got), bitsOf(want)) {
			t.Fatalf("MergeIntoAsc diverged:\n a=%v\n b=%v\n got %v\nwant %v", a, b, got, want)
		}

		SortDesc(a)
		SortDesc(b)
		dst = make([]float64, len(a), len(a)+len(b))
		copy(dst, a)
		got = MergeIntoDesc(dst, b)
		want = refMergeSortedInto(append([]float64(nil), a...), b, func(x, y float64) bool { return y < x })
		if !sameBits(bitsOf(got), bitsOf(want)) {
			t.Fatalf("MergeIntoDesc diverged:\n a=%v\n b=%v\n got %v\nwant %v", a, b, got, want)
		}
	}
}

// refMergeSortedInto is a verbatim copy of internal/core's mergeSortedInto.
func refMergeSortedInto[T any](dst []T, add []T, less func(a, b T) bool) []T {
	m, e := len(dst), len(add)
	if e == 0 {
		return dst
	}
	dst = append(dst, add...)
	if m == 0 || !less(add[0], dst[m-1]) {
		return dst
	}
	i, j, k := m-1, e-1, m+e-1
	for j >= 0 && i >= 0 {
		if less(add[j], dst[i]) {
			lo, hi := 0, i
			for step := 1; hi-step >= 0; step <<= 1 {
				if !less(add[j], dst[hi-step]) {
					lo = hi - step + 1
					break
				}
			}
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if less(add[j], dst[mid]) {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			cnt := i - lo + 1
			copy(dst[k-cnt+1:k+1], dst[lo:i+1])
			k -= cnt
			i = lo - 1
		} else {
			dst[k] = add[j]
			j--
			k--
		}
	}
	if j >= 0 {
		copy(dst[:j+1], add[:j+1])
	}
	return dst
}

func TestSearchKernels(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for iter := 0; iter < 200; iter++ {
		xs := randFloats(r, r.Intn(80))
		// Search contracts assume sorted input; use a clean sorted slice
		// (NaN-polluted "sorted" arrays are covered by the structural sort
		// identity above plus core's differential suite).
		clean := xs[:0]
		for _, x := range xs {
			if x == x {
				clean = append(clean, x)
			}
		}
		SortAsc(clean)
		for _, y := range floatProbes(clean) {
			le := SearchLE(clean, y)
			lt := SearchLT(clean, y)
			// Reference by linear scan.
			wantLE, wantLT := 0, 0
			for _, x := range clean {
				if !(y < x) {
					wantLE++
				}
				if x < y {
					wantLT++
				}
			}
			if y == y { // binary-search contracts only hold for ordered probes
				if le != wantLE {
					t.Fatalf("SearchLE(%v, %v) = %d, want %d", clean, y, le, wantLE)
				}
				if lt != wantLT {
					t.Fatalf("SearchLT(%v, %v) = %d, want %d", clean, y, lt, wantLT)
				}
			}
			if g := GallopLE(clean, 0, y); y == y && g != wantLE {
				t.Fatalf("GallopLE(%v, 0, %v) = %d, want %d", clean, y, g, wantLE)
			}
		}
		// Descending-count kernels against a descending copy.
		desc := append([]float64(nil), clean...)
		SortDesc(desc)
		for _, y := range floatProbes(clean) {
			if y != y {
				continue
			}
			wantLE, wantLT := 0, 0
			for _, x := range desc {
				if !(y < x) {
					wantLE++
				}
				if x < y {
					wantLT++
				}
			}
			if got := CountLEDesc(desc, y); got != wantLE {
				t.Fatalf("CountLEDesc(%v, %v) = %d, want %d", desc, y, got, wantLE)
			}
			if got := CountLTDesc(desc, y); got != wantLT {
				t.Fatalf("CountLTDesc(%v, %v) = %d, want %d", desc, y, got, wantLT)
			}
		}
	}
}

func TestScanHelpers(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		xs := randFloats(r, r.Intn(50))
		// MinMax must match the sequential first-seen semantics exactly.
		if len(xs) > 0 {
			mn, mx := xs[0], xs[0]
			for _, x := range xs {
				if x < mn {
					mn = x
				} else if mx < x {
					mx = x
				}
			}
			gmn, gmx := MinMax(xs, xs[0], xs[0])
			if math.Float64bits(gmn) != math.Float64bits(mn) || math.Float64bits(gmx) != math.Float64bits(mx) {
				t.Fatalf("MinMax(%v) = (%v, %v), want (%v, %v)", xs, gmn, gmx, mn, mx)
			}
		}
		// ExtendRun must match the generic prefix-extension loop.
		sorted := 0
		if len(xs) > 0 {
			sorted = r.Intn(len(xs) + 1)
		}
		want := sorted
		for want < len(xs) && (want == 0 || !(xs[want] < xs[want-1])) {
			want++
		}
		if got := ExtendRunAsc(xs, sorted); got != want {
			t.Fatalf("ExtendRunAsc(%v, %d) = %d, want %d", xs, sorted, got, want)
		}
		want = sorted
		for want < len(xs) && (want == 0 || !(xs[want-1] < xs[want])) {
			want++
		}
		if got := ExtendRunDesc(xs, sorted); got != want {
			t.Fatalf("ExtendRunDesc(%v, %d) = %d, want %d", xs, sorted, got, want)
		}
		// IsSorted duals of the generic helpers.
		wantAsc := true
		for i := 1; i < len(xs); i++ {
			if xs[i] < xs[i-1] {
				wantAsc = false
				break
			}
		}
		if got := IsSortedAsc(xs); got != wantAsc {
			t.Fatalf("IsSortedAsc(%v) = %v, want %v", xs, got, wantAsc)
		}
		wantDesc := true
		for i := 1; i < len(xs); i++ {
			if xs[i-1] < xs[i] {
				wantDesc = false
				break
			}
		}
		if got := IsSortedDesc(xs); got != wantDesc {
			t.Fatalf("IsSortedDesc(%v) = %v, want %v", xs, got, wantDesc)
		}
	}
}

func TestGallopCumGE(t *testing.T) {
	cum := []uint64{2, 5, 5, 9, 14, 20}
	for from := 0; from <= len(cum); from++ {
		for target := uint64(0); target <= 22; target++ {
			want := from
			for want < len(cum) && cum[want] < target {
				want++
			}
			// The generic contract starts from a position where every earlier
			// entry is known < target; replicate by skipping invalid starts.
			if from > 0 && cum[from-1] >= target {
				continue
			}
			if got := GallopCumGE(cum, from, target); got != want {
				t.Fatalf("GallopCumGE(%v, %d, %d) = %d, want %d", cum, from, target, got, want)
			}
		}
	}
}

func TestEytDescents(t *testing.T) {
	// Build a small Eytzinger layout by in-order fill, mirroring core's
	// buildIndex, and check both descents plus the batch form against the
	// sorted-array answers.
	r := rand.New(rand.NewSource(14))
	for iter := 0; iter < 100; iter++ {
		n := 1 + r.Intn(40)
		sorted := make([]float64, n)
		for i := range sorted {
			sorted[i] = math.Round(r.NormFloat64() * 10)
		}
		SortAsc(sorted)
		items := make([]float64, n+1)
		before := make([]uint64, n+1)
		cumw := make([]uint64, n)
		run := uint64(0)
		for i := range sorted {
			run += uint64(1 + i%3)
			cumw[i] = run
		}
		var fill func(k, next int) int
		fill = func(k, next int) int {
			if k > n {
				return next
			}
			next = fill(2*k, next)
			items[k] = sorted[next]
			if next == 0 {
				before[k] = 0
			} else {
				before[k] = cumw[next-1]
			}
			next++
			return fill(2*k+1, next)
		}
		fill(1, 0)
		total := cumw[n-1]

		rankOf := func(y float64, inclusive bool) uint64 {
			pos := 0
			for _, x := range sorted {
				if inclusive && !(y < x) {
					pos++
				} else if !inclusive && x < y {
					pos++
				}
			}
			if pos == 0 {
				return 0
			}
			return cumw[pos-1]
		}
		probes := floatProbes(sorted)
		outs := make([]uint64, len(probes))
		EytRankBatch(items, before, total, probes, outs)
		for pi, y := range probes {
			if y != y {
				continue // NaN probes have no defined rank contract
			}
			k := EytRankLE(items, y)
			var got uint64
			if k == 0 {
				got = total
			} else {
				got = before[k]
			}
			if want := rankOf(y, true); got != want {
				t.Fatalf("EytRankLE(%v over %v) = %d, want %d", y, sorted, got, want)
			}
			if outs[pi] != got {
				t.Fatalf("EytRankBatch[%d] = %d, want %d (single descent)", pi, outs[pi], got)
			}
			k = EytRankGE(items, y)
			if k == 0 {
				got = total
			} else {
				got = before[k]
			}
			if want := rankOf(y, false); got != want {
				t.Fatalf("EytRankGE(%v over %v) = %d, want %d", y, sorted, got, want)
			}
		}
	}
}

func TestKWayMergeMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for iter := 0; iter < 100; iter++ {
		nLev := 1 + r.Intn(6)
		var curs []KWayCursor[float64]
		total := 0
		for h := 0; h < nLev; h++ {
			n := r.Intn(20)
			if n == 0 {
				continue
			}
			buf := randFloats(r, n)
			// Clean NaN out: the k-way contract requires sorted buffers.
			clean := buf[:0]
			for _, x := range buf {
				if x == x {
					clean = append(clean, x)
				}
			}
			if len(clean) == 0 {
				continue
			}
			hra := iter%2 == 1
			if hra {
				SortDesc(clean)
				curs = append(curs, KWayCursor[float64]{Buf: clean, Pos: len(clean) - 1, End: -1, Step: -1, W: uint64(1) << uint(h)})
			} else {
				SortAsc(clean)
				curs = append(curs, KWayCursor[float64]{Buf: clean, Pos: 0, End: len(clean), Step: 1, W: uint64(1) << uint(h)})
			}
			total += len(clean)
		}
		// Reference: flatten and stable-merge by repeated min selection over
		// cursor heads (same tie-break as the heap: the heap's behaviour is
		// deterministic, so just duplicate the cursors and replay).
		ref := make([]KWayCursor[float64], len(curs))
		for i := range curs {
			ref[i] = curs[i]
		}
		items := make([]float64, total)
		cum := make([]uint64, total)
		KWayMerge(curs, items, cum)
		items2 := make([]float64, total)
		cum2 := make([]uint64, total)
		refKWay(ref, items2, cum2)
		if !sameBits(bitsOf(items), bitsOf(items2)) {
			t.Fatalf("KWayMerge items diverged:\n got %v\nwant %v", items, items2)
		}
		for i := range cum {
			if cum[i] != cum2[i] {
				t.Fatalf("KWayMerge cum diverged at %d: %d vs %d", i, cum[i], cum2[i])
			}
		}
	}
}

// refKWay replays core's generic kwayMergeInto heap with explicit closures.
func refKWay(curs []KWayCursor[float64], items []float64, cum []uint64) {
	if len(curs) == 0 {
		return
	}
	var run uint64
	if len(curs) == 1 {
		c := &curs[0]
		for i := range items {
			run += c.W
			items[i] = c.Buf[c.Pos]
			cum[i] = run
			c.Pos += c.Step
		}
		return
	}
	less := func(a, b *KWayCursor[float64]) bool { return a.Buf[a.Pos] < b.Buf[b.Pos] }
	n := len(curs)
	sift := func(root int) {
		for {
			child := 2*root + 1
			if child >= n {
				return
			}
			if child+1 < n && less(&curs[child+1], &curs[child]) {
				child++
			}
			if !less(&curs[child], &curs[root]) {
				return
			}
			curs[root], curs[child] = curs[child], curs[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		sift(i)
	}
	for out := 0; n > 0; out++ {
		c := &curs[0]
		run += c.W
		items[out] = c.Buf[c.Pos]
		cum[out] = run
		c.Pos += c.Step
		if c.Pos == c.End {
			n--
			curs[0] = curs[n]
		}
		sift(0)
	}
}

func TestMergeTailCum(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for iter := 0; iter < 200; iter++ {
		old := r.Intn(30)
		m := 1 + r.Intn(10)
		items := make([]float64, old, old+m)
		cum := make([]uint64, old, old+m)
		run := uint64(0)
		for i := 0; i < old; i++ {
			items[i] = math.Round(r.NormFloat64() * 5)
			run += uint64(1 + r.Intn(4))
			cum[i] = run
		}
		SortAsc(items)
		tail := make([]float64, m)
		for i := range tail {
			tail[i] = math.Round(r.NormFloat64() * 5)
		}
		SortAsc(tail)

		refItems := append(make([]float64, 0, old+m), items...)
		refCum := append(make([]uint64, 0, old+m), cum...)
		items = items[:old+m]
		cum = cum[:old+m]
		MergeTailCum(items, cum, tail, old)

		refItems, refCum = refMergeTailCum(refItems, refCum, tail,
			func(a, b float64) bool { return a < b })
		if !sameBits(bitsOf(items), bitsOf(refItems)) {
			t.Fatalf("MergeTailCum items diverged:\n got %v\nwant %v", items, refItems)
		}
		for i := range cum {
			if cum[i] != refCum[i] {
				t.Fatalf("MergeTailCum cum diverged at %d: %d vs %d\nitems=%v", i, cum[i], refCum[i], items)
			}
		}
	}
}

// refMergeTailCum is a verbatim copy of internal/core's generic
// repairTailView merge loop (the closure path the kernel must match).
func refMergeTailCum[T any](items []T, cum []uint64, tail []T, less func(a, b T) bool) ([]T, []uint64) {
	old, m := len(items), len(tail)
	items = append(items, tail...)
	cum = append(cum, make([]uint64, m)...)
	var run uint64
	if old > 0 {
		run = cum[old-1]
	}
	run += uint64(m)
	i, j, k := old-1, m-1, old+m-1
	for i >= 0 && j >= 0 {
		if less(items[i], tail[j]) {
			items[k] = tail[j]
			cum[k] = run
			run--
			j--
		} else {
			w := cum[i]
			if i > 0 {
				w -= cum[i-1]
			}
			items[k] = items[i]
			cum[k] = run
			run -= w
			i--
		}
		k--
	}
	for j >= 0 {
		items[k] = tail[j]
		cum[k] = run
		run--
		j--
		k--
	}
	return items, cum
}

func TestCumSumU64Dispatch(t *testing.T) {
	// The dispatched kernel (AVX2 on capable amd64, the portable loop under
	// -tags purego) must be bit-identical to the scalar left-to-right
	// reference on every length around the 4- and 8-lane block boundaries,
	// with wraparound-inducing magnitudes included.
	r := rand.New(rand.NewSource(21))
	bases := []uint64{0, 1, 1 << 63, math.MaxUint64, math.MaxUint64 - 5}
	for n := 0; n <= 67; n++ {
		for _, base := range bases {
			xs := make([]uint64, n)
			for i := range xs {
				switch r.Intn(3) {
				case 0:
					xs[i] = uint64(r.Intn(8)) // realistic small weights
				case 1:
					xs[i] = r.Uint64()
				default:
					xs[i] = math.MaxUint64 - uint64(r.Intn(4)) // force carries
				}
			}
			want := make([]uint64, n)
			run := base
			for i, x := range xs {
				run += x
				want[i] = run
			}
			got := append([]uint64(nil), xs...)
			CumSumU64(got, base)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("CumSumU64(n=%d, base=%d) diverged at %d: got %d want %d",
						n, base, i, got[i], want[i])
				}
			}
		}
	}
}
