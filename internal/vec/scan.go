package vec

// Linear scans over unsorted data. Counting independent per-element
// predicates is permutation-invariant, so these are 4x-unrolled with
// independent accumulators and branch-free bodies (b2i compiles to SETcc) —
// and are the kernels with AVX2 assembly variants behind the dispatch vars.

// scanCountLE counts elements x with !(y < x), the inclusive-rank predicate
// of the generic tail scan in levelCountLE. Note !(y < x) is not x ≤ y under
// NaN: a NaN element compares false on both sides and therefore counts,
// exactly as the generic closure form does.
//
//req:noalloc
func scanCountLE[E Elem](xs []E, y E) int {
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		c0 += b2i(!(y < xs[i]))
		c1 += b2i(!(y < xs[i+1]))
		c2 += b2i(!(y < xs[i+2]))
		c3 += b2i(!(y < xs[i+3]))
	}
	c := c0 + c1 + c2 + c3
	for ; i < len(xs); i++ {
		c += b2i(!(y < xs[i]))
	}
	return c
}

// scanCountLT counts elements x with x < y (the exclusive-rank predicate; a
// NaN element never counts, matching the generic closure form).
//
//req:noalloc
func scanCountLT[E Elem](xs []E, y E) int {
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		c0 += b2i(xs[i] < y)
		c1 += b2i(xs[i+1] < y)
		c2 += b2i(xs[i+2] < y)
		c3 += b2i(xs[i+3] < y)
	}
	c := c0 + c1 + c2 + c3
	for ; i < len(xs); i++ {
		c += b2i(xs[i] < y)
	}
	return c
}

// hasNaNPortable reports whether xs contains a NaN, via the self-comparison
// identity (x != x only for NaN). Unrolled with OR-accumulators; the early
// exit per block keeps the common all-clean case at full scan speed without
// a branch per element.
//
//req:noalloc
func hasNaNPortable(xs []float64) bool {
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		if xs[i] != xs[i] || xs[i+1] != xs[i+1] ||
			xs[i+2] != xs[i+2] || xs[i+3] != xs[i+3] {
			return true
		}
	}
	for ; i < len(xs); i++ {
		if xs[i] != xs[i] {
			return true
		}
	}
	return false
}

// MinMax folds xs into the running (mn, mx) pair with exactly the generic
// batch-ingest scan: `if x < mn {mn = x} else if mx < x {mx = x}`. It is
// deliberately sequential — no unrolling, no vector variant — because
// float64 ±0 ties resolve to the first-seen operand and reordering lanes
// would change which zero survives, breaking bit-identity.
//
//req:noalloc
func MinMax[E Elem](xs []E, mn, mx E) (E, E) {
	for _, x := range xs {
		if x < mn {
			mn = x
		} else if mx < x {
			mx = x
		}
	}
	return mn, mx
}

// ExtendRunAsc returns the sorted-prefix length of xs extended item by item
// from sorted, under the ascending order: the prefix grows while the next
// element is not below its predecessor (the batch-ingest prefix-extension
// loop with internalLess = `<`).
//
//req:noalloc
func ExtendRunAsc[E Elem](xs []E, sorted int) int {
	for sorted < len(xs) && (sorted == 0 || !(xs[sorted] < xs[sorted-1])) {
		sorted++
	}
	return sorted
}

// ExtendRunDesc is ExtendRunAsc under the descending internal order of HRA
// sketches (internalLess(a, b) = b < a).
//
//req:noalloc
func ExtendRunDesc[E Elem](xs []E, sorted int) int {
	for sorted < len(xs) && (sorted == 0 || !(xs[sorted-1] < xs[sorted])) {
		sorted++
	}
	return sorted
}

// IsSortedAsc reports whether xs is non-decreasing.
//
//req:noalloc
func IsSortedAsc[E Elem](xs []E) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// IsSortedDesc reports whether xs is non-increasing.
//
//req:noalloc
func IsSortedDesc[E Elem](xs []E) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] < xs[i] {
			return false
		}
	}
	return true
}
