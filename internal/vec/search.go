package vec

// Binary and galloping searches, structure-identical to internal/core's
// generic versions with less specialised to `<` (ascending) or its reversal
// (the descending storage order of HRA sketches). See the package comment
// for why the probe sequences must match the generic code exactly.

// SearchLE returns the number of elements in ascending-sorted xs that are
// ≤ y: the index of the first element strictly greater than y.
//
//req:noalloc
func SearchLE[E Elem](xs []E, y E) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if y < xs[mid] { // xs[mid] > y
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// SearchLT returns the number of elements in ascending-sorted xs strictly
// less than y.
//
//req:noalloc
func SearchLT[E Elem](xs []E, y E) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < y {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CountLEDesc returns the number of elements ≤ y in xs sorted descending
// (the storage order of HRA sketches).
//
//req:noalloc
func CountLEDesc[E Elem](xs []E, y E) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if y < xs[mid] { // xs[mid] > y: boundary is right of mid
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return len(xs) - lo
}

// CountLTDesc returns the number of elements strictly less than y in xs
// sorted descending.
//
//req:noalloc
func CountLTDesc[E Elem](xs []E, y E) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if !(xs[mid] < y) { // xs[mid] ≥ y: boundary is right of mid
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return len(xs) - lo
}

// GallopLE returns the index of the first element > y in ascending-sorted
// xs, starting the search at from (every element before from must already be
// ≤ y). Exponential probing followed by a binary search keeps the cost
// O(log(gap)) in the distance advanced.
//
//req:noalloc
func GallopLE[E Elem](xs []E, from int, y E) int {
	n := len(xs)
	if from >= n || y < xs[from] {
		return from
	}
	lo, hi := from, n // xs[lo] ≤ y; hi is first candidate known > y (or n)
	for step := 1; lo+step < n; step <<= 1 {
		if y < xs[lo+step] {
			hi = lo + step
			break
		}
		lo += step
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if y < xs[mid] {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// GallopCumGE returns the index of the first entry ≥ target in the
// non-decreasing cumulative-weight array, starting at from; see GallopLE.
//
//req:noalloc
func GallopCumGE(cum []uint64, from int, target uint64) int {
	n := len(cum)
	if from >= n || cum[from] >= target {
		return from
	}
	lo, hi := from, n // cum[lo] < target
	for step := 1; lo+step < n; step <<= 1 {
		if cum[lo+step] >= target {
			hi = lo + step
			break
		}
		lo += step
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid] >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
