package vec

// In-place introsort, a structure-identical transcription of internal/core's
// generic sortSlice (quicksort with a median-of-three Hoare partition,
// insertion sort below the same threshold, heapsort past the same 2·⌊log₂ n⌋
// depth budget) specialised to `<` and its reversal. Identical structure —
// not merely an equivalent sort — is what guarantees the identical
// permutation of equal (and NaN-incomparable) elements; see the package
// comment.

const insertionThreshold = 12

// SortAsc sorts xs ascending under `<`.
//
//req:noalloc
func SortAsc[E Elem](xs []E) {
	quicksortAsc(xs, maxDepth(len(xs)))
}

// SortDesc sorts xs descending under `<` (ascending under the reversed
// order, the internal order of HRA sketches).
//
//req:noalloc
func SortDesc[E Elem](xs []E) {
	quicksortDesc(xs, maxDepth(len(xs)))
}

// maxDepth returns 2·⌊log₂(n)⌋, the recursion budget before switching to
// heapsort, mirroring the generic introsort safeguard.
//
//req:noalloc
func maxDepth(n int) int {
	d := 0
	for i := n; i > 0; i >>= 1 {
		d++
	}
	return 2 * d
}

//req:noalloc
func quicksortAsc[E Elem](xs []E, depth int) {
	for len(xs) > insertionThreshold {
		if depth == 0 {
			heapsortAsc(xs)
			return
		}
		depth--
		p := partitionAsc(xs)
		// Recurse on the smaller half, loop on the larger: O(log n) stack.
		if p < len(xs)-p-1 {
			quicksortAsc(xs[:p], depth)
			xs = xs[p+1:]
		} else {
			quicksortAsc(xs[p+1:], depth)
			xs = xs[:p]
		}
	}
	insertionSortAsc(xs)
}

//req:noalloc
func partitionAsc[E Elem](xs []E) int {
	n := len(xs)
	mid := n / 2
	// Order xs[0], xs[mid], xs[n-1] so xs[mid] is the median.
	if xs[mid] < xs[0] {
		xs[mid], xs[0] = xs[0], xs[mid]
	}
	if xs[n-1] < xs[0] {
		xs[n-1], xs[0] = xs[0], xs[n-1]
	}
	if xs[n-1] < xs[mid] {
		xs[n-1], xs[mid] = xs[mid], xs[n-1]
	}
	// Pivot to position n-2 (xs[n-1] already ≥ pivot).
	xs[mid], xs[n-2] = xs[n-2], xs[mid]
	pivot := xs[n-2]
	i, j := 0, n-2
	for {
		i++
		for xs[i] < pivot {
			i++
		}
		j--
		for pivot < xs[j] {
			j--
		}
		if i >= j {
			break
		}
		xs[i], xs[j] = xs[j], xs[i]
	}
	xs[i], xs[n-2] = xs[n-2], xs[i]
	return i
}

//req:noalloc
func insertionSortAsc[E Elem](xs []E) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

//req:noalloc
func heapsortAsc[E Elem](xs []E) {
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownAsc(xs, i, n)
	}
	for i := n - 1; i > 0; i-- {
		xs[0], xs[i] = xs[i], xs[0]
		siftDownAsc(xs, 0, i)
	}
}

//req:noalloc
func siftDownAsc[E Elem](xs []E, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && xs[child] < xs[child+1] {
			child++
		}
		if !(xs[root] < xs[child]) {
			return
		}
		xs[root], xs[child] = xs[child], xs[root]
		root = child
	}
}

// The descending variants replace every less(u, v) with v < u, exactly as
// internalLess does for HRA sketches.

//req:noalloc
func quicksortDesc[E Elem](xs []E, depth int) {
	for len(xs) > insertionThreshold {
		if depth == 0 {
			heapsortDesc(xs)
			return
		}
		depth--
		p := partitionDesc(xs)
		if p < len(xs)-p-1 {
			quicksortDesc(xs[:p], depth)
			xs = xs[p+1:]
		} else {
			quicksortDesc(xs[p+1:], depth)
			xs = xs[:p]
		}
	}
	insertionSortDesc(xs)
}

//req:noalloc
func partitionDesc[E Elem](xs []E) int {
	n := len(xs)
	mid := n / 2
	if xs[0] < xs[mid] {
		xs[mid], xs[0] = xs[0], xs[mid]
	}
	if xs[0] < xs[n-1] {
		xs[n-1], xs[0] = xs[0], xs[n-1]
	}
	if xs[mid] < xs[n-1] {
		xs[n-1], xs[mid] = xs[mid], xs[n-1]
	}
	xs[mid], xs[n-2] = xs[n-2], xs[mid]
	pivot := xs[n-2]
	i, j := 0, n-2
	for {
		i++
		for pivot < xs[i] {
			i++
		}
		j--
		for xs[j] < pivot {
			j--
		}
		if i >= j {
			break
		}
		xs[i], xs[j] = xs[j], xs[i]
	}
	xs[i], xs[n-2] = xs[n-2], xs[i]
	return i
}

//req:noalloc
func insertionSortDesc[E Elem](xs []E) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] < xs[j]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

//req:noalloc
func heapsortDesc[E Elem](xs []E) {
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownDesc(xs, i, n)
	}
	for i := n - 1; i > 0; i-- {
		xs[0], xs[i] = xs[i], xs[0]
		siftDownDesc(xs, 0, i)
	}
}

//req:noalloc
func siftDownDesc[E Elem](xs []E, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && xs[child+1] < xs[child] {
			child++
		}
		if !(xs[child] < xs[root]) {
			return
		}
		xs[root], xs[child] = xs[child], xs[root]
		root = child
	}
}
