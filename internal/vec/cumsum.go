package vec

// Cumulative-weight rewrite: the prefix-sum pass shared by the view-repair
// merge (MergeTailCum) and the k-way view rebuild (KWayMerge). Both now
// stage raw per-item weights into the cum array and finish with one
// CumSumU64 sweep, so the pass is a single dispatchable kernel instead of a
// serial accumulator threaded through two different merge loops.
//
// uint64 addition is associative and commutative mod 2^64, so any blocking
// or vectorization of the sweep is bit-identical to the left-to-right scalar
// loop on every input, overflow included — the same "provably identical"
// bar the count scans meet (see dispatch.go).

// cumSumPortable is the scalar reference: xs[i] ← base + xs[0] + … + xs[i].
//
//req:noalloc
func cumSumPortable(xs []uint64, base uint64) {
	for i := range xs {
		base += xs[i]
		xs[i] = base
	}
}
