//go:build amd64 && !purego

#include "textflag.h"

// func prefetchPtr(p unsafe.Pointer)
TEXT ·prefetchPtr(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET
