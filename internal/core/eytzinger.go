package core

import "math/bits"

// Eytzinger-layout rank index for frozen views.
//
// A sorted array answers rank queries in log₂(n) branchy, cache-hostile
// probes: each halving lands far from the last, and the branch predictor
// gets a coin flip per level. The Eytzinger (BFS / implicit heap) layout
// stores the same search tree level by level in one array, so the first few
// levels — the probes every query makes — share a handful of cache lines,
// and the descent compiles to a branch-free select per level (the
// comparison only feeds the child index computation, never a jump). This is
// the classic fast static search layout (Khuong & Morin, "Array layouts for
// comparison-based searching").
//
// The index is built lazily by Freeze (never by SortedView alone): it costs
// one O(n) pass and 3 parallel arrays, which only pays off when a frozen
// sketch is queried repeatedly — exactly what Freeze signals. Its storage
// is recycled across rebuilds like the view's own arrays, so re-freezing
// after writes allocates nothing in steady state.
//
// Once built, an index must be treated as immutable: concurrent wrappers
// build it before publishing a view (Sharded) or under the exclusive lock
// (ConcurrentFloat64), and readers only ever observe it complete.

// eytIndex holds the search tree in BFS order, 1-based: node k has children
// 2k and 2k+1, and slot 0 is unused. The three arrays are parallel, but a
// rank descent touches only items and a quantile descent only cum, so each
// search streams one array.
type eytIndex[T any] struct {
	items  []T      // node item values
	cum    []uint64 // cumulative weight through the node's sorted position
	before []uint64 // cumulative weight strictly before the node's position
	total  uint64   // total retained weight (= last sorted cum entry)
	built  bool
}

// buildIndex materializes the Eytzinger index from the sorted view arrays.
// Idempotent; reuses previously grown index storage.
func (v *View[T]) buildIndex() {
	if v.idx.built || len(v.items) == 0 {
		return
	}
	n := len(v.items)
	if n+1 < len(v.idx.items) {
		// Zero the abandoned tail (mirroring rebuildView's scrub of the view
		// arrays) so pointer-bearing items from a larger earlier coreset do
		// not stay reachable through the recycled index storage.
		var zero T
		for i := n + 1; i < len(v.idx.items); i++ {
			v.idx.items[i] = zero
		}
	}
	v.idx.items = resizeAmortized(v.idx.items, n+1)
	v.idx.cum = resizeAmortized(v.idx.cum, n+1)
	v.idx.before = resizeAmortized(v.idx.before, n+1)
	var zero T
	v.idx.items[0] = zero // slot 0 is unused by the 1-based layout
	v.idx.total = v.cum[n-1]
	v.fillIndex(1, 0)
	v.idx.built = true
}

// fillIndex places v.items[next:] into the subtree rooted at Eytzinger slot
// k by in-order descent, returning the advanced position. Recursion depth is
// ⌈log₂ n⌉.
func (v *View[T]) fillIndex(k, next int) int {
	if k > len(v.items) {
		return next
	}
	next = v.fillIndex(2*k, next)
	v.idx.items[k] = v.items[next]
	v.idx.cum[k] = v.cum[next]
	if next == 0 {
		v.idx.before[k] = 0
	} else {
		v.idx.before[k] = v.cum[next-1]
	}
	next++
	return v.fillIndex(2*k+1, next)
}

// eytFixup converts the descent's path-encoded position into the Eytzinger
// slot of the answer: shifting out the trailing 1-bits (the final run of
// right turns) plus one leaves the last node where the search went left —
// the standard ffs(~k) fixup. A result of 0 means the search ran off the
// right edge (no qualifying element).
//
//req:noalloc
func eytFixup(k int) int {
	return k >> (uint(bits.TrailingZeros(^uint(k))) + 1)
}

// rank returns the inclusive rank of y: descend to the first element > y;
// everything before it is ≤ y. The loop condition k < len(items) doubles as
// the bounds proof for items[k], so the descent runs check-free.
//
//req:noalloc
func (idx *eytIndex[T]) rank(y T, less func(a, b T) bool) uint64 {
	items := idx.items
	k := 1
	for k < len(items) {
		if less(y, items[k]) {
			k = 2 * k
		} else {
			k = 2*k + 1
		}
	}
	k = eytFixup(k)
	if k == 0 {
		return idx.total // every element ≤ y
	}
	return idx.before[k]
}

// rankExclusive returns the exclusive rank of y: descend to the first
// element ≥ y.
//
//req:noalloc
func (idx *eytIndex[T]) rankExclusive(y T, less func(a, b T) bool) uint64 {
	items := idx.items
	k := 1
	for k < len(items) {
		if less(items[k], y) {
			k = 2*k + 1
		} else {
			k = 2 * k
		}
	}
	k = eytFixup(k)
	if k == 0 {
		return idx.total // every element < y
	}
	return idx.before[k]
}

// rankLanes is the number of Eytzinger descents rankBatch runs in lockstep.
// Each lane's next probe is an independent cache miss, so the memory system
// keeps several loads in flight instead of serializing one descent's misses
// behind the previous descent's.
const rankLanes = 8

// rankBatch answers the inclusive rank of every probe, emitting results in
// input order. Probes are processed rankLanes at a time: the lanes step
// down the tree together, overlapping their memory latencies — the win that
// makes unsorted large batches cheaper per probe than independent searches.
func (idx *eytIndex[T]) rankBatch(ys []T, less func(a, b T) bool, emit func(qi int, rank uint64)) {
	n := len(idx.items) - 1
	items := idx.items[: n+1 : n+1]
	// Every root-to-leaf path has length depth or depth−1, and a node index
	// can only exceed n on the very last step (after d steps k < 2^(d+1) ≤
	// 2^(depth−1) ≤ n for d ≤ depth−2), so the descent runs unguarded for
	// depth−1 levels and guards only the final one.
	depth := bits.Len(uint(n))
	var ks [rankLanes]int
	for base := 0; base < len(ys); base += rankLanes {
		m := len(ys) - base
		if m > rankLanes {
			m = rankLanes
		}
		for l := 0; l < m; l++ {
			ks[l] = 1
		}
		for d := 0; d < depth-1; d++ {
			for l := 0; l < m; l++ {
				k := ks[l]
				if less(ys[base+l], items[k]) {
					ks[l] = 2 * k
				} else {
					ks[l] = 2*k + 1
				}
			}
		}
		for l := 0; l < m; l++ {
			k := ks[l]
			if k <= n {
				if less(ys[base+l], items[k]) {
					ks[l] = 2 * k
				} else {
					ks[l] = 2*k + 1
				}
			}
		}
		for l := 0; l < m; l++ {
			k := eytFixup(ks[l])
			if k == 0 {
				emit(base+l, idx.total)
			} else {
				emit(base+l, idx.before[k])
			}
		}
	}
}

// quantile returns the item at the first position whose cumulative weight
// reaches target (1 ≤ target ≤ total). clamp is returned if no position
// qualifies, which can only happen for foreign snapshots whose retained
// weight undershoots n.
//
//req:noalloc
func (idx *eytIndex[T]) quantile(target uint64, clamp T) T {
	cum := idx.cum
	k := 1
	for k < len(cum) {
		if cum[k] < target {
			k = 2*k + 1
		} else {
			k = 2 * k
		}
	}
	k = eytFixup(k)
	if k == 0 {
		return clamp
	}
	return idx.items[k]
}
