package core

import (
	"testing"
)

func lessF(a, b float64) bool { return a < b }

func TestCloneDeepCopy(t *testing.T) {
	s, err := New(lessF, Config{Eps: 0.05, Delta: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		s.Update(float64(i))
	}
	c := s.Clone()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}
	if c.Count() != s.Count() || c.ItemsRetained() != s.ItemsRetained() || c.NumLevels() != s.NumLevels() {
		t.Fatalf("clone shape differs: n %d/%d items %d/%d levels %d/%d",
			c.Count(), s.Count(), c.ItemsRetained(), s.ItemsRetained(), c.NumLevels(), s.NumLevels())
	}
	for y := float64(0); y < 50000; y += 4999 {
		if c.Rank(y) != s.Rank(y) {
			t.Fatalf("clone rank(%v) = %d, original %d", y, c.Rank(y), s.Rank(y))
		}
	}
	// Mutating the original must not leak into the clone.
	before := c.Count()
	for i := 0; i < 10000; i++ {
		s.Update(float64(-i))
	}
	if c.Count() != before {
		t.Fatal("clone aliases the original's buffers")
	}
}

// TestCloneContinuesIdentically checks that the clone copies the random
// stream: clone and a second clone fed the same further input stay
// bit-for-bit identical (same compaction coins, hence same retained sets).
func TestCloneContinuesIdentically(t *testing.T) {
	s, err := New(lessF, Config{Eps: 0.05, Delta: 0.05, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30000; i++ {
		s.Update(float64(i))
	}
	a, b := s.Clone(), s.Clone()
	for i := 0; i < 30000; i++ {
		v := float64(i * 7 % 30000)
		a.Update(v)
		b.Update(v)
	}
	if a.Count() != b.Count() || a.ItemsRetained() != b.ItemsRetained() {
		t.Fatalf("clones diverged: n %d/%d items %d/%d", a.Count(), b.Count(), a.ItemsRetained(), b.ItemsRetained())
	}
	av, bv := a.SortedView(), b.SortedView()
	if av.Size() != bv.Size() {
		t.Fatalf("view sizes differ: %d vs %d", av.Size(), bv.Size())
	}
	for i, x := range av.Items() {
		if x != bv.Items()[i] || av.Weight(i) != bv.Weight(i) {
			t.Fatalf("views differ at %d: (%v,%d) vs (%v,%d)",
				i, x, av.Weight(i), bv.Items()[i], bv.Weight(i))
		}
	}
}

func TestCloneEmpty(t *testing.T) {
	s, err := New(lessF, Config{Eps: 0.1, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if !c.Empty() {
		t.Fatal("clone of empty sketch not empty")
	}
	c.Update(1)
	if !s.Empty() {
		t.Fatal("updating the clone touched the original")
	}
}
