package core

import (
	"math"
	"strings"
	"testing"

	"req/internal/rng"
	"req/internal/schedule"
)

// newFloat64 builds a sketch over float64 for tests, failing the test on
// config errors.
func newFloat64(t testing.TB, cfg Config) *Sketch[float64] {
	t.Helper()
	s, err := New(fless, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// feedPerm feeds a random permutation of 0..n-1 (as float64) and returns it.
func feedPerm(t testing.TB, s *Sketch[float64], n int, seed uint64) []float64 {
	t.Helper()
	r := rng.New(seed)
	vals := make([]float64, n)
	for i, v := range r.Perm(n) {
		vals[i] = float64(v)
	}
	for _, v := range vals {
		s.Update(v)
	}
	return vals
}

func TestNewRejectsNilLess(t *testing.T) {
	if _, err := New[float64](nil, Config{}); err == nil {
		t.Fatal("nil less accepted")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(fless, Config{Eps: 2}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestEmptySketch(t *testing.T) {
	s := newFloat64(t, Config{})
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("fresh sketch not empty")
	}
	if _, ok := s.Min(); ok {
		t.Fatal("Min ok on empty sketch")
	}
	if _, ok := s.Max(); ok {
		t.Fatal("Max ok on empty sketch")
	}
	if got := s.Rank(5); got != 0 {
		t.Fatalf("Rank on empty = %d", got)
	}
	if _, err := s.Quantile(0.5); err != ErrEmpty {
		t.Fatalf("Quantile on empty: %v", err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleItem(t *testing.T) {
	s := newFloat64(t, Config{})
	s.Update(7)
	if s.Count() != 1 {
		t.Fatalf("Count = %d", s.Count())
	}
	if mn, _ := s.Min(); mn != 7 {
		t.Fatalf("Min = %v", mn)
	}
	if mx, _ := s.Max(); mx != 7 {
		t.Fatalf("Max = %v", mx)
	}
	if got := s.Rank(7); got != 1 {
		t.Fatalf("Rank(7) = %d", got)
	}
	if got := s.Rank(6.9); got != 0 {
		t.Fatalf("Rank(6.9) = %d", got)
	}
	q, err := s.Quantile(0.5)
	if err != nil || q != 7 {
		t.Fatalf("Quantile = %v, %v", q, err)
	}
}

func TestExactBelowBufferCapacity(t *testing.T) {
	// While no compaction has happened, every rank is exact.
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1})
	n := s.BufferCapacity() - 1
	feedPerm(t, s, n, 3)
	if s.Stats().Compactions != 0 {
		t.Fatalf("unexpected compactions for n=%d < B=%d", n, s.BufferCapacity())
	}
	for _, q := range []int{1, n / 3, n / 2, n} {
		if got := s.Rank(float64(q - 1)); got != uint64(q) {
			t.Fatalf("Rank exactness broken: rank %d estimated %d", q, got)
		}
	}
}

func TestMinMaxExactAlways(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 9})
	vals := feedPerm(t, s, 100000, 4)
	mn, mx := vals[0], vals[0]
	for _, v := range vals {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	gotMin, _ := s.Min()
	gotMax, _ := s.Max()
	if gotMin != mn || gotMax != mx {
		t.Fatalf("min/max = %v/%v, want %v/%v", gotMin, gotMax, mn, mx)
	}
}

func TestInvariantsAcrossGrowth(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 5})
	r := rng.New(6)
	for i := 0; i < 300000; i++ {
		s.Update(r.Float64())
		if i%9973 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d updates: %v", i+1, err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Growths == 0 {
		t.Fatal("expected at least one bound growth over 300k updates")
	}
}

func TestWeightConservation(t *testing.T) {
	// Σ_h 2^h·|buf_h| must equal n exactly at every rest point.
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 8})
	r := rng.New(10)
	for i := 1; i <= 100000; i++ {
		s.Update(r.Float64())
		if i%5000 == 0 {
			var w uint64
			for _, lv := range s.Levels() {
				w += uint64(lv.Items) * lv.Weight
			}
			if w != uint64(i) {
				t.Fatalf("after %d updates: retained weight %d", i, w)
			}
		}
	}
}

func TestLowRanksExactWithLargeStream(t *testing.T) {
	// The bottom half of level 0 is never compacted, so for items y with
	// true rank below B/2 at every level the estimate is exact. Verify the
	// very lowest ranks stay exact even after many compactions.
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 2})
	n := 1 << 18
	feedPerm(t, s, n, 12)
	if s.Stats().Compactions == 0 {
		t.Fatal("test needs compactions to be meaningful")
	}
	for rank := 1; rank <= 32; rank++ {
		if got := s.Rank(float64(rank - 1)); got != uint64(rank) {
			t.Fatalf("low rank %d estimated %d, want exact", rank, got)
		}
	}
}

func TestHighRanksExactWithHRA(t *testing.T) {
	cfg := Config{Eps: 0.05, Delta: 0.05, Seed: 2, HRA: true}
	s := newFloat64(t, cfg)
	n := 1 << 18
	feedPerm(t, s, n, 12)
	for back := 0; back < 32; back++ {
		y := float64(n - 1 - back)
		want := uint64(n - back)
		if got := s.Rank(y); got != want {
			t.Fatalf("HRA high rank: Rank(%v) = %d, want exact %d", y, got, want)
		}
	}
}

func TestRelativeErrorBoundUniform(t *testing.T) {
	// Statistical check of Theorem 1's guarantee on a fixed seed: relative
	// error at logarithmically spaced ranks must stay within ε (allowing
	// a small slack since ε-guarantee is probabilistic per item).
	const n = 1 << 19
	const eps = 0.05
	s := newFloat64(t, Config{Eps: eps, Delta: 0.01, Seed: 77})
	feedPerm(t, s, n, 13)
	for rank := 1; rank <= n; rank *= 2 {
		got := s.Rank(float64(rank - 1))
		rel := math.Abs(float64(got)-float64(rank)) / float64(rank)
		if rel > eps {
			t.Errorf("rank %d: estimate %d, relative error %.4f > ε", rank, got, rel)
		}
	}
}

func TestRelativeErrorSortedInput(t *testing.T) {
	const n = 1 << 18
	const eps = 0.05
	s := newFloat64(t, Config{Eps: eps, Delta: 0.01, Seed: 42})
	for i := 0; i < n; i++ {
		s.Update(float64(i))
	}
	for rank := 1; rank <= n; rank *= 4 {
		got := s.Rank(float64(rank - 1))
		rel := math.Abs(float64(got)-float64(rank)) / float64(rank)
		if rel > eps {
			t.Errorf("sorted input rank %d: estimate %d, rel %.4f", rank, got, rel)
		}
	}
}

func TestRelativeErrorReversedInput(t *testing.T) {
	const n = 1 << 18
	const eps = 0.05
	s := newFloat64(t, Config{Eps: eps, Delta: 0.01, Seed: 43})
	for i := n - 1; i >= 0; i-- {
		s.Update(float64(i))
	}
	for rank := 1; rank <= n; rank *= 4 {
		got := s.Rank(float64(rank - 1))
		rel := math.Abs(float64(got)-float64(rank)) / float64(rank)
		if rel > eps {
			t.Errorf("reversed input rank %d: estimate %d, rel %.4f", rank, got, rel)
		}
	}
}

func TestDuplicateHeavyStream(t *testing.T) {
	// All-equal stream: the single distinct value must carry full weight.
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1})
	const n = 50000
	for i := 0; i < n; i++ {
		s.Update(1.5)
	}
	if got := s.Rank(1.5); got != n {
		t.Fatalf("Rank(1.5) = %d, want %d", got, n)
	}
	if got := s.Rank(1.4); got != 0 {
		t.Fatalf("Rank(1.4) = %d, want 0", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFewDistinctValues(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 3})
	const n = 120000
	r := rng.New(30)
	counts := map[float64]int{}
	for i := 0; i < n; i++ {
		v := float64(r.Intn(4))
		counts[v]++
		s.Update(v)
	}
	run := 0
	for v := 0.0; v < 4; v++ {
		run += counts[v]
		got := s.Rank(v)
		rel := math.Abs(float64(got)-float64(run)) / float64(run)
		if rel > 0.05 {
			t.Errorf("Rank(%v) = %d, want ≈%d (rel %.4f)", v, got, run, rel)
		}
	}
}

func TestObservation13LevelCount(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 11})
	feedPerm(t, s, 1<<18, 14)
	// Observation 13: #compactors ≤ ⌈log₂(n/B)⌉ + 1. B changed across
	// growths; use the smallest B that ever applied (the current geometry
	// has the largest B, so the bound from the initial small B is safest).
	bound := int(math.Ceil(math.Log2(float64(s.Count())/float64(s.BufferCapacity()/2)))) + 2
	if s.NumLevels() > bound {
		t.Fatalf("levels = %d exceeds Observation 13 bound %d", s.NumLevels(), bound)
	}
}

func TestFixedKMode(t *testing.T) {
	s := newFloat64(t, Config{Mode: ModeFixedK, K: 64, Seed: 15})
	if s.K() != 64 {
		t.Fatalf("K = %d, want 64", s.K())
	}
	feedPerm(t, s, 100000, 16)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for rank := 1; rank <= 100000; rank *= 10 {
		got := s.Rank(float64(rank - 1))
		rel := math.Abs(float64(got)-float64(rank)) / float64(rank)
		if rel > 0.1 {
			t.Errorf("fixed-k rank %d: rel error %.4f", rank, rel)
		}
	}
}

func TestTheorem2Mode(t *testing.T) {
	s := newFloat64(t, Config{Mode: ModeTheorem2, Eps: 0.05, Delta: 1e-9, Seed: 17})
	feedPerm(t, s, 200000, 18)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for rank := 1; rank <= 200000; rank *= 10 {
		got := s.Rank(float64(rank - 1))
		rel := math.Abs(float64(got)-float64(rank)) / float64(rank)
		if rel > 0.05 {
			t.Errorf("theorem2 rank %d: rel error %.4f", rank, rel)
		}
	}
}

func TestNaiveScheduleStillSound(t *testing.T) {
	// The naive schedule is an ablation: it remains a valid sketch (weights
	// conserved, unbiased), just with worse error scaling.
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Schedule: schedule.Naive, Seed: 19})
	feedPerm(t, s, 100000, 20)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := s.Rank(99999)
	if got != 100000 {
		t.Fatalf("total rank %d, want exact n", got)
	}
}

func TestDetCoinAblation(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, DetCoin: true, Seed: 21})
	feedPerm(t, s, 100000, 22)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().CoinFlips != 0 {
		t.Fatalf("deterministic coin consumed %d flips", s.Stats().CoinFlips)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	mk := func() *Sketch[float64] {
		s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 123})
		feedPerm(t, s, 100000, 55)
		return s
	}
	a, b := mk(), mk()
	if a.Count() != b.Count() || a.ItemsRetained() != b.ItemsRetained() {
		t.Fatal("same seed produced structurally different sketches")
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		qa, err1 := a.Quantile(q)
		qb, err2 := b.Quantile(q)
		if err1 != nil || err2 != nil || qa != qb {
			t.Fatalf("same seed diverged at q=%v: %v vs %v", q, qa, qb)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	mk := func(seed uint64) *Sketch[float64] {
		s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: seed})
		feedPerm(t, s, 1<<17, 56)
		return s
	}
	a, b := mk(1), mk(2)
	same := true
	for q := 0.05; q < 1.0; q += 0.05 {
		qa, _ := a.Quantile(q)
		qb, _ := b.Quantile(q)
		if qa != qb {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical retained sets (suspicious)")
	}
}

func TestGrowthPreservesAccuracy(t *testing.T) {
	// Stream long enough to force several bound squarings; ranks must stay
	// within ε afterwards.
	const n = 1 << 20
	const eps = 0.05
	s := newFloat64(t, Config{Eps: eps, Delta: 0.01, Seed: 33, N0: 1 << 12})
	feedPerm(t, s, n, 34)
	if s.Stats().Growths < 1 {
		t.Fatalf("expected growths with N0=4096 and n=%d", n)
	}
	for rank := 1; rank <= n; rank *= 8 {
		got := s.Rank(float64(rank - 1))
		rel := math.Abs(float64(got)-float64(rank)) / float64(rank)
		if rel > eps {
			t.Errorf("after growth, rank %d: rel %.4f", rank, rel)
		}
	}
}

func TestIntSketch(t *testing.T) {
	// The sketch is generic; exercise it with ints and a custom order.
	s, err := New(func(a, b int) bool { return a < b }, Config{Eps: 0.1, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(60)
	const n = 50000
	for _, v := range r.Perm(n) {
		s.Update(v)
	}
	if got := s.Rank(n - 1); got != n {
		t.Fatalf("int sketch total rank %d", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStringSketch(t *testing.T) {
	s, err := New(func(a, b string) bool { return a < b }, Config{Eps: 0.1, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s.Update("banana")
	s.Update("apple")
	s.Update("cherry")
	if got := s.Rank("b"); got != 1 {
		t.Fatalf(`Rank("b") = %d, want 1`, got)
	}
	mn, _ := s.Min()
	if mn != "apple" {
		t.Fatalf("Min = %q", mn)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 70})
	feedPerm(t, s, 200000, 71)
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compactions recorded")
	}
	if st.CoinFlips < st.Compactions {
		t.Fatalf("coin flips %d < compactions %d", st.CoinFlips, st.Compactions)
	}
	if st.MaxBufferLen < s.BufferCapacity() {
		t.Fatalf("max buffer len %d below capacity %d", st.MaxBufferLen, s.BufferCapacity())
	}
	var levelTotal uint64
	for _, lv := range s.Levels() {
		levelTotal += lv.Compactions
	}
	if levelTotal != st.Compactions+st.SpecialCompactions {
		t.Fatalf("per-level compactions %d != global %d+%d", levelTotal, st.Compactions, st.SpecialCompactions)
	}
}

func TestDebugStringSmoke(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 80})
	feedPerm(t, s, 30000, 81)
	out := s.DebugString()
	if len(out) == 0 {
		t.Fatal("empty debug string")
	}
	for _, want := range []string{"REQ sketch", "level", "protected half"} {
		if !strings.Contains(out, want) {
			t.Fatalf("debug string missing %q:\n%s", want, out)
		}
	}
}
