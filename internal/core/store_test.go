package core

// White-box tests of the contiguous level store: window layout, in-slab
// growth, shifting, scrubbing, and the single-memcpy clone/copy paths.
// End-to-end correctness of the engine is covered by the equivalence and
// property suites; these tests pin the storage discipline itself.

import (
	"testing"
	"unsafe"

	"req/internal/rng"
)

// slabLayout asserts the full invariant-10 battery plus content equality
// between each level buffer and its slab window.
func slabLayout(t *testing.T, s *Sketch[float64]) {
	t.Helper()
	if err := s.checkSlabInvariants(); err != nil {
		t.Fatal(err)
	}
	for h := range s.levels {
		w := s.store.win[h]
		for i, v := range s.levels[h].buf {
			if s.store.slab[w.off+i] != v {
				t.Fatalf("level %d item %d: buf %v != slab %v", h, i, v, s.store.slab[w.off+i])
			}
		}
		// Slack must be scrubbed.
		for i := len(s.levels[h].buf); i < w.cap; i++ {
			if s.store.slab[w.off+i] != 0 {
				t.Fatalf("level %d slack slot %d holds %v, want 0", h, i, s.store.slab[w.off+i])
			}
		}
	}
}

func TestStoreLayoutAfterIngest(t *testing.T) {
	s := mkSketch(t, 8, false)
	r := rng.New(3)
	for i := 0; i < 100000; i++ {
		s.Update(r.Float64())
	}
	if len(s.levels) < 3 {
		t.Fatalf("want a multi-level sketch, got %d levels", len(s.levels))
	}
	slabLayout(t, s)
}

func TestStoreEnsureShiftsHigherLevels(t *testing.T) {
	s := mkSketch(t, 8, false)
	for i := 0; i < 50000; i++ {
		s.Update(float64(i))
	}
	before := make([][]float64, len(s.levels))
	for h := range s.levels {
		before[h] = append([]float64(nil), s.levels[h].buf...)
	}
	// Force a mid-hierarchy window growth: every level above must shift
	// right and keep its contents bit-identically.
	s.store.ensure(s.levels, 1, s.store.win[1].cap*3)
	slabLayout(t, s)
	for h := range s.levels {
		if len(before[h]) != len(s.levels[h].buf) {
			t.Fatalf("level %d length changed across ensure", h)
		}
		for i, v := range before[h] {
			if s.levels[h].buf[i] != v {
				t.Fatalf("level %d item %d changed across ensure: %v != %v", h, i, s.levels[h].buf[i], v)
			}
		}
	}
}

func TestStoreEnsureIsNoOpWhenCapacitySuffices(t *testing.T) {
	s := mkSketch(t, 8, true)
	s.Update(1)
	slabBefore := &s.store.slab[0]
	s.store.ensure(s.levels, 0, 1)
	if &s.store.slab[0] != slabBefore {
		t.Fatal("no-op ensure moved the slab")
	}
}

func TestStoreCloneSharesNothing(t *testing.T) {
	s := mkSketch(t, 8, false)
	r := rng.New(5)
	for i := 0; i < 30000; i++ {
		s.Update(r.Float64())
	}
	c := s.Clone()
	slabLayout(t, c)
	if &c.store.slab[0] == &s.store.slab[0] {
		t.Fatal("clone aliases the original slab")
	}
	// Divergent writes must not cross over.
	snap := append([]float64(nil), s.levels[0].buf...)
	for i := 0; i < 10000; i++ {
		c.Update(r.Float64())
	}
	for i, v := range snap {
		if s.levels[0].buf[i] != v {
			t.Fatalf("writing the clone changed the original at %d", i)
		}
	}
	slabLayout(t, s)
}

func TestStoreCopyFromReusesSlab(t *testing.T) {
	src := mkSketch(t, 8, false)
	r := rng.New(7)
	for i := 0; i < 60000; i++ {
		src.Update(r.Float64())
	}
	dst := &Sketch[float64]{}
	dst.CopyFrom(src)
	slabLayout(t, dst)
	slabBefore := &dst.store.slab[0]
	// Refresh from a slightly advanced source: same capacity class, so the
	// slab must be reused in place.
	for i := 0; i < 100; i++ {
		src.Update(r.Float64())
	}
	dst.CopyFrom(src)
	slabLayout(t, dst)
	if &dst.store.slab[0] != slabBefore {
		t.Fatal("steady-state CopyFrom reallocated the slab")
	}
	if got := testingAllocsCopyFrom(src, dst); got != 0 {
		t.Fatalf("steady-state CopyFrom allocates %v allocs/op", got)
	}
	// And the copy answers identically.
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		a, err1 := src.Quantile(phi)
		b, err2 := dst.Quantile(phi)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("quantile(%v): %v/%v (%v/%v)", phi, a, b, err1, err2)
		}
	}
}

func testingAllocsCopyFrom(src, dst *Sketch[float64]) float64 {
	return testing.AllocsPerRun(100, func() { dst.CopyFrom(src) })
}

func TestStoreCopyFromShrinkScrubs(t *testing.T) {
	big := mkSketch(t, 8, false)
	r := rng.New(9)
	for i := 0; i < 80000; i++ {
		big.Update(r.Float64())
	}
	small := mkSketch(t, 8, false)
	small.Update(1)
	dst := &Sketch[float64]{}
	dst.CopyFrom(big)
	dst.CopyFrom(small)
	slabLayout(t, dst)
	// The recycled backing array beyond the new logical slab must be zero:
	// pointer-bearing item types would otherwise keep the big stream alive.
	full := dst.store.slab[:cap(dst.store.slab)]
	for i := len(dst.store.slab); i < len(full); i++ {
		if full[i] != 0 {
			t.Fatalf("shrinking CopyFrom left %v at recycled slot %d", full[i], i)
		}
	}
}

func TestStoreResetScrubsSlab(t *testing.T) {
	s := mkSketch(t, 8, false)
	r := rng.New(11)
	for i := 0; i < 40000; i++ {
		s.Update(r.Float64())
	}
	s.Reset()
	slabLayout(t, s)
	if len(s.store.win) != 1 {
		t.Fatalf("reset kept %d windows", len(s.store.win))
	}
	full := s.store.slab[:cap(s.store.slab)]
	for i, v := range full {
		if v != 0 {
			t.Fatalf("reset left %v at slab slot %d", v, i)
		}
	}
	// The sketch must remain fully usable with the recycled slab.
	for i := 0; i < 40000; i++ {
		s.Update(r.Float64())
	}
	slabLayout(t, s)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRetainedCounterAcrossOperations(t *testing.T) {
	s := mkSketch(t, 8, false)
	r := rng.New(13)
	check := func(stage string) {
		t.Helper()
		sum := 0
		for h := range s.levels {
			sum += len(s.levels[h].buf)
		}
		if s.ItemsRetained() != sum {
			t.Fatalf("%s: ItemsRetained %d != sum %d", stage, s.ItemsRetained(), sum)
		}
	}
	for i := 0; i < 25000; i++ {
		s.Update(r.Float64())
	}
	check("updates")
	if err := s.UpdateWeighted(0.5, 12345); err != nil {
		t.Fatal(err)
	}
	check("weighted")
	o := mkSketch(t, 8, false)
	for i := 0; i < 9000; i++ {
		o.Update(r.Float64())
	}
	if err := s.Merge(o); err != nil {
		t.Fatal(err)
	}
	check("merge")
	snap := s.Snapshot()
	re, err := FromSnapshot(fless, snap)
	if err != nil {
		t.Fatal(err)
	}
	if re.ItemsRetained() != s.ItemsRetained() {
		t.Fatalf("restore retained %d != %d", re.ItemsRetained(), s.ItemsRetained())
	}
	s.Reset()
	check("reset")
	if s.ItemsRetained() != 0 {
		t.Fatalf("reset retained %d", s.ItemsRetained())
	}
}

func TestSnapshotLevelsShareOneSlab(t *testing.T) {
	s := mkSketch(t, 8, false)
	r := rng.New(17)
	for i := 0; i < 50000; i++ {
		s.Update(r.Float64())
	}
	snap := s.Snapshot()
	total := 0
	for _, lv := range snap.Levels {
		total += len(lv.Items)
	}
	if total != s.ItemsRetained() {
		t.Fatalf("snapshot carries %d items, sketch retains %d", total, s.ItemsRetained())
	}
	// Windows must be back to back in one allocation: each level's first
	// item immediately follows the previous level's last slot.
	for h := 1; h < len(snap.Levels); h++ {
		prev, cur := snap.Levels[h-1].Items, snap.Levels[h].Items
		if len(prev) == 0 || len(cur) == 0 {
			continue
		}
		end := uintptr(unsafe.Pointer(unsafe.SliceData(prev))) + uintptr(len(prev))*unsafe.Sizeof(float64(0))
		if uintptr(unsafe.Pointer(unsafe.SliceData(cur))) != end {
			t.Fatalf("snapshot levels %d and %d are not contiguous", h-1, h)
		}
	}
	// And they are genuine copies: mutating the sketch must not reach them.
	probe := snap.Levels[0].Items[0]
	for i := 0; i < 10000; i++ {
		s.Update(r.Float64())
	}
	if snap.Levels[0].Items[0] != probe {
		t.Fatal("snapshot aliases live sketch storage")
	}
}
