package core

import (
	"math"
	"testing"

	"req/internal/rng"
	"req/internal/schedule"
)

// mergeRelErr feeds a permutation of 0..n-1 split across shards, merges via
// the given strategy, and returns the max relative rank error over a
// logarithmic rank sweep.
func mergeRelErr(t *testing.T, merged *Sketch[float64], n int) float64 {
	t.Helper()
	if merged.Count() != uint64(n) {
		t.Fatalf("merged count = %d, want %d", merged.Count(), n)
	}
	if err := merged.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	maxRel := 0.0
	for rank := 1; rank <= n; rank *= 2 {
		got := merged.Rank(float64(rank - 1))
		rel := math.Abs(float64(got)-float64(rank)) / float64(rank)
		if rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}

func shardValues(n, shards int, seed uint64) [][]float64 {
	r := rng.New(seed)
	perm := r.Perm(n)
	out := make([][]float64, shards)
	per := n / shards
	for i := 0; i < shards; i++ {
		lo, hi := i*per, (i+1)*per
		if i == shards-1 {
			hi = n
		}
		vals := make([]float64, 0, hi-lo)
		for _, v := range perm[lo:hi] {
			vals = append(vals, float64(v))
		}
		out[i] = vals
	}
	return out
}

func TestMergeTwoHalves(t *testing.T) {
	const n = 1 << 17
	cfg := Config{Eps: 0.05, Delta: 0.01}
	shards := shardValues(n, 2, 200)
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	a.cfg.Seed = 1
	b.cfg.Seed = 2
	for _, v := range shards[0] {
		a.Update(v)
	}
	for _, v := range shards[1] {
		b.Update(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if rel := mergeRelErr(t, a, n); rel > 0.05 {
		t.Fatalf("merged max relative error %.4f > ε", rel)
	}
}

func TestMergeLeavesSourceIntact(t *testing.T) {
	cfg := Config{Eps: 0.1, Delta: 0.1}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	feedPerm(t, a, 50000, 201)
	feedPerm(t, b, 50000, 202)
	bCount := b.Count()
	bRetained := b.ItemsRetained()
	bRank := b.Rank(25000)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if b.Count() != bCount || b.ItemsRetained() != bRetained || b.Rank(25000) != bRank {
		t.Fatal("merge mutated the source sketch")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("source invariants broken: %v", err)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	cfg := Config{Eps: 0.1, Delta: 0.1}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	feedPerm(t, b, 30000, 203)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 30000 {
		t.Fatalf("count = %d", a.Count())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// And the copy must be deep: updating a must not disturb b.
	pre := b.ItemsRetained()
	for i := 0; i < 100000; i++ {
		a.Update(float64(i))
	}
	if b.ItemsRetained() != pre {
		t.Fatal("merge into empty aliased source buffers")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmptyOther(t *testing.T) {
	cfg := Config{Eps: 0.1, Delta: 0.1}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	feedPerm(t, a, 10000, 204)
	pre := a.Count()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != pre {
		t.Fatal("merging empty changed count")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal("merging nil must be a no-op")
	}
}

func TestMergeSelfRejected(t *testing.T) {
	s := newFloat64(t, Config{})
	s.Update(1)
	if err := s.Merge(s); err == nil {
		t.Fatal("self merge accepted")
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := newFloat64(t, Config{Eps: 0.05, Delta: 0.05})
	b := newFloat64(t, Config{Eps: 0.1, Delta: 0.05})
	b.Update(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("incompatible merge accepted")
	}
	c := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, HRA: true})
	c.Update(1)
	if err := a.Merge(c); err == nil {
		t.Fatal("HRA/LRA merge accepted")
	}
	d := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Schedule: schedule.Naive})
	d.Update(1)
	if err := a.Merge(d); err == nil {
		t.Fatal("cross-schedule merge accepted")
	}
}

func TestMergeShorterIntoTaller(t *testing.T) {
	cfg := Config{Eps: 0.05, Delta: 0.05}
	tall := newFloat64(t, cfg)
	short := newFloat64(t, cfg)
	tall.cfg.Seed = 5
	short.cfg.Seed = 6
	const n = 1 << 17
	shards := shardValues(n+1000, 2, 205)
	for _, v := range shards[0] {
		tall.Update(v)
	}
	for _, v := range shards[1][:1000] {
		short.Update(v)
	}
	pre := tall.NumLevels()
	if pre <= short.NumLevels() {
		t.Fatalf("test setup wrong: tall %d levels, short %d", pre, short.NumLevels())
	}
	if err := tall.Merge(short); err != nil {
		t.Fatal(err)
	}
	if err := tall.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTallerIntoShorter(t *testing.T) {
	// Receiver shorter than argument: the implementation must swap roles
	// internally yet leave the result in the receiver.
	cfg := Config{Eps: 0.05, Delta: 0.05}
	short := newFloat64(t, cfg)
	tall := newFloat64(t, cfg)
	short.cfg.Seed = 7
	tall.cfg.Seed = 8
	const n = 1 << 17
	shards := shardValues(n+1000, 2, 206)
	for _, v := range shards[0] {
		tall.Update(v)
	}
	for _, v := range shards[1][:1000] {
		short.Update(v)
	}
	tallCount := tall.Count()
	if err := short.Merge(tall); err != nil {
		t.Fatal(err)
	}
	if short.Count() != tallCount+1000 {
		t.Fatalf("receiver count = %d", short.Count())
	}
	if err := short.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// tall untouched.
	if tall.Count() != tallCount {
		t.Fatal("argument mutated")
	}
	if err := tall.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeManyShardsSequential(t *testing.T) {
	const n = 1 << 18
	const shards = 16
	cfg := Config{Eps: 0.05, Delta: 0.01}
	parts := shardValues(n, shards, 207)
	acc := newFloat64(t, cfg)
	acc.cfg.Seed = 100
	for i, part := range parts {
		sk := newFloat64(t, cfg)
		sk.cfg.Seed = uint64(300 + i)
		for _, v := range part {
			sk.Update(v)
		}
		if err := acc.Merge(sk); err != nil {
			t.Fatal(err)
		}
		if err := acc.CheckInvariants(); err != nil {
			t.Fatalf("after shard %d: %v", i, err)
		}
	}
	if rel := mergeRelErr(t, acc, n); rel > 0.05 {
		t.Fatalf("sequential merge max rel error %.4f", rel)
	}
}

func TestMergeBalancedTree(t *testing.T) {
	const n = 1 << 18
	const shards = 16
	cfg := Config{Eps: 0.05, Delta: 0.01}
	parts := shardValues(n, shards, 208)
	level := make([]*Sketch[float64], 0, shards)
	for i, part := range parts {
		sk := newFloat64(t, cfg)
		sk.cfg.Seed = uint64(400 + i)
		for _, v := range part {
			sk.Update(v)
		}
		level = append(level, sk)
	}
	for len(level) > 1 {
		next := make([]*Sketch[float64], 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			if err := level[i].Merge(level[i+1]); err != nil {
				t.Fatal(err)
			}
			next = append(next, level[i])
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	if rel := mergeRelErr(t, level[0], n); rel > 0.05 {
		t.Fatalf("tree merge max rel error %.4f", rel)
	}
}

func TestMergeRandomTrees(t *testing.T) {
	// Theorem 3 allows an arbitrary sequence of pairwise merges. Build
	// random merge trees over uneven shards and check the guarantee.
	const n = 100000
	cfg := Config{Eps: 0.06, Delta: 0.01}
	r := rng.New(209)
	for trial := 0; trial < 3; trial++ {
		// Random shard sizes.
		nShards := 5 + r.Intn(10)
		cuts := make([]int, nShards-1)
		for i := range cuts {
			cuts[i] = 1 + r.Intn(n-2)
		}
		sortSlice(cuts, func(a, b int) bool { return a < b })
		perm := r.Perm(n)
		sketches := make([]*Sketch[float64], 0, nShards)
		lo := 0
		for i := 0; i < nShards; i++ {
			hi := n
			if i < len(cuts) {
				hi = cuts[i]
			}
			if hi < lo {
				hi = lo
			}
			sk := newFloat64(t, cfg)
			sk.cfg.Seed = uint64(trial*100 + i)
			for _, v := range perm[lo:hi] {
				sk.Update(float64(v))
			}
			sketches = append(sketches, sk)
			lo = hi
		}
		// Random pairwise merge order.
		for len(sketches) > 1 {
			i := r.Intn(len(sketches))
			j := r.Intn(len(sketches))
			if i == j {
				continue
			}
			if err := sketches[i].Merge(sketches[j]); err != nil {
				t.Fatal(err)
			}
			sketches[j] = sketches[len(sketches)-1]
			sketches = sketches[:len(sketches)-1]
		}
		if rel := mergeRelErr(t, sketches[0], n); rel > 0.08 {
			t.Fatalf("trial %d: random-tree merge max rel error %.4f", trial, rel)
		}
	}
}

func TestMergeUnevenSizes(t *testing.T) {
	// A tiny sketch into a huge one and vice versa, crossing bound growth.
	cfg := Config{Eps: 0.05, Delta: 0.01}
	big := newFloat64(t, cfg)
	big.cfg.Seed = 1
	tiny := newFloat64(t, cfg)
	tiny.cfg.Seed = 2
	const n = 1 << 18
	perm := rng.New(210).Perm(n + 5)
	for _, v := range perm[:n] {
		big.Update(float64(v))
	}
	for _, v := range perm[n:] {
		tiny.Update(float64(v))
	}
	if err := big.Merge(tiny); err != nil {
		t.Fatal(err)
	}
	if rel := mergeRelErr(t, big, n+5); rel > 0.05 {
		t.Fatalf("uneven merge rel error %.4f", rel)
	}
}

func TestMergeMinMax(t *testing.T) {
	cfg := Config{Eps: 0.1, Delta: 0.1}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	for i := 0; i < 1000; i++ {
		a.Update(float64(i + 1000))
		b.Update(float64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	mn, _ := a.Min()
	mx, _ := a.Max()
	if mn != 0 || mx != 1999 {
		t.Fatalf("merged min/max = %v/%v", mn, mx)
	}
}

func TestMergeStatsAggregated(t *testing.T) {
	cfg := Config{Eps: 0.1, Delta: 0.1}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	feedPerm(t, a, 100000, 211)
	feedPerm(t, b, 100000, 212)
	ca, cb := a.Stats().Compactions, b.Stats().Compactions
	if ca == 0 || cb == 0 {
		t.Fatal("setup: expected compactions in both inputs")
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Compactions < ca+cb {
		t.Fatalf("merged compactions %d < %d+%d", st.Compactions, ca, cb)
	}
	if st.Merges != 1 {
		t.Fatalf("merge count = %d", st.Merges)
	}
}

func TestMergeAcrossGrowthBoundary(t *testing.T) {
	// Two sketches each below the initial bound whose sum exceeds it, so
	// the merge itself must trigger the N-squaring path.
	cfg := Config{Eps: 0.1, Delta: 0.1, N0: 1 << 13}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	a.cfg.Seed = 3
	b.cfg.Seed = 4
	const half = 6000
	perm := rng.New(213).Perm(2 * half)
	for i, v := range perm {
		if i < half {
			a.Update(float64(v))
		} else {
			b.Update(float64(v))
		}
	}
	preBound := a.Bound()
	if preBound != 1<<13 {
		t.Fatalf("setup: bound %d", preBound)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Bound() < uint64(2*half) {
		t.Fatalf("bound %d not raised above n=%d", a.Bound(), 2*half)
	}
	if rel := mergeRelErr(t, a, 2*half); rel > 0.1 {
		t.Fatalf("growth-boundary merge rel error %.4f", rel)
	}
}

func TestMergeHRASketches(t *testing.T) {
	cfg := Config{Eps: 0.05, Delta: 0.01, HRA: true}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	a.cfg.Seed = 11
	b.cfg.Seed = 12
	const n = 1 << 17
	perm := rng.New(214).Perm(n)
	for i, v := range perm {
		if i%2 == 0 {
			a.Update(float64(v))
		} else {
			b.Update(float64(v))
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Tail ranks must be near exact for HRA.
	for _, back := range []int{1, 4, 16} {
		y := float64(n - back)
		want := float64(n - back + 1)
		got := float64(a.Rank(y))
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("merged HRA tail at %v: got %v want %v", y, got, want)
		}
	}
}

func TestMergePreservesDeterminism(t *testing.T) {
	run := func() uint64 {
		cfg := Config{Eps: 0.05, Delta: 0.05}
		a, _ := New(fless, Config{Eps: 0.05, Delta: 0.05, Seed: 21})
		b, _ := New(fless, Config{Eps: 0.05, Delta: 0.05, Seed: 22})
		_ = cfg
		r := rng.New(215)
		for i := 0; i < 80000; i++ {
			v := r.Float64()
			if i%2 == 0 {
				a.Update(v)
			} else {
				b.Update(v)
			}
		}
		if err := a.Merge(b); err != nil {
			panic(err)
		}
		return a.Rank(0.5)
	}
	if run() != run() {
		t.Fatal("merge not deterministic under fixed seeds")
	}
}
