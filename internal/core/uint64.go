package core

import "req/internal/vec"

// kernelU64 is the uint64 kernel table; see kernelF64.
var kernelU64 = kernelTable[uint64]{
	sortAsc:  vec.SortAsc[uint64],
	sortDesc: vec.SortDesc[uint64],

	mergeAsc:  vec.MergeIntoAsc[uint64],
	mergeDesc: vec.MergeIntoDesc[uint64],

	searchLE:    vec.SearchLE[uint64],
	searchLT:    vec.SearchLT[uint64],
	countLEDesc: vec.CountLEDesc[uint64],
	countLTDesc: vec.CountLTDesc[uint64],

	countLE: vec.CountLEU64,
	countLT: vec.CountLTU64,

	gallopLE:     vec.GallopLE[uint64],
	isSortedAsc:  vec.IsSortedAsc[uint64],
	isSortedDesc: vec.IsSortedDesc[uint64],
	minMax:       vec.MinMax[uint64],
	extendAsc:    vec.ExtendRunAsc[uint64],
	extendDesc:   vec.ExtendRunDesc[uint64],

	mergeTailCum: vec.MergeTailCum[uint64],
	kway:         vec.KWayMerge[uint64],

	eytRankLE:    vec.EytRankLE[uint64],
	eytRankGE:    vec.EytRankGE[uint64],
	eytRankBatch: vec.EytRankBatch[uint64],
}
