package core

import (
	"math"
	"testing"
	"testing/quick"

	"req/internal/rng"
)

// Property-based tests (testing/quick) over the sketch's structural
// invariants. Each property feeds arbitrary generated streams through the
// sketch and asserts an invariant that must hold for every input.

// boundedStream clamps quick-generated inputs into a usable stream: at most
// maxLen values, NaNs removed.
func boundedStream(raw []float64, maxLen int) []float64 {
	if len(raw) > maxLen {
		raw = raw[:maxLen]
	}
	out := raw[:0]
	for _, v := range raw {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

func TestPropertyWeightConservation(t *testing.T) {
	f := func(raw []float64, seedByte uint8) bool {
		vals := boundedStream(raw, 4096)
		s, err := New(fless, Config{Eps: 0.1, Delta: 0.1, Seed: uint64(seedByte)})
		if err != nil {
			return false
		}
		for _, v := range vals {
			s.Update(v)
		}
		var w uint64
		for h := range s.levels {
			w += uint64(len(s.levels[h].buf)) << uint(h)
		}
		return w == uint64(len(vals)) && s.Count() == uint64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInvariantsHold(t *testing.T) {
	f := func(raw []float64, seedByte uint8) bool {
		vals := boundedStream(raw, 4096)
		s, err := New(fless, Config{Eps: 0.2, Delta: 0.2, Seed: uint64(seedByte)})
		if err != nil {
			return false
		}
		for _, v := range vals {
			s.Update(v)
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRankMonotoneInY(t *testing.T) {
	f := func(raw []float64, a, b float64, seedByte uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		vals := boundedStream(raw, 2048)
		s, err := New(fless, Config{Eps: 0.1, Delta: 0.1, Seed: uint64(seedByte)})
		if err != nil {
			return false
		}
		for _, v := range vals {
			s.Update(v)
		}
		lo, hi := a, b
		if hi < lo {
			lo, hi = hi, lo
		}
		return s.Rank(lo) <= s.Rank(hi) && s.RankExclusive(lo) <= s.RankExclusive(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRankBounds(t *testing.T) {
	// For every y: RankExclusive(y) ≤ Rank(y) ≤ n, and the extremes are
	// exact: Rank(max) = n, RankExclusive(min) = 0.
	f := func(raw []float64, y float64, seedByte uint8) bool {
		if math.IsNaN(y) {
			return true
		}
		vals := boundedStream(raw, 2048)
		if len(vals) == 0 {
			return true
		}
		s, err := New(fless, Config{Eps: 0.1, Delta: 0.1, Seed: uint64(seedByte)})
		if err != nil {
			return false
		}
		for _, v := range vals {
			s.Update(v)
		}
		n := uint64(len(vals))
		if s.RankExclusive(y) > s.Rank(y) || s.Rank(y) > n {
			return false
		}
		mx, _ := s.Max()
		mn, _ := s.Min()
		return s.Rank(mx) == n && s.RankExclusive(mn) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQuantileRankDuality(t *testing.T) {
	f := func(raw []float64, phiRaw float64, seedByte uint8) bool {
		vals := boundedStream(raw, 2048)
		if len(vals) == 0 {
			return true
		}
		phi := math.Abs(math.Mod(phiRaw, 1))
		if math.IsNaN(phi) {
			phi = 0.5
		}
		s, err := New(fless, Config{Eps: 0.1, Delta: 0.1, Seed: uint64(seedByte)})
		if err != nil {
			return false
		}
		for _, v := range vals {
			s.Update(v)
		}
		q, err := s.Quantile(phi)
		if err != nil {
			return false
		}
		target := uint64(math.Ceil(phi * float64(len(vals))))
		if target == 0 {
			target = 1
		}
		return s.Rank(q) >= target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMergeEquivalentToConcat(t *testing.T) {
	// Merging two sketches yields a sketch with the combined count, valid
	// invariants, and exact min/max of the union.
	f := func(rawA, rawB []float64, seedByte uint8) bool {
		a := boundedStream(rawA, 2048)
		bvals := boundedStream(append([]float64(nil), rawB...), 2048)
		cfg := Config{Eps: 0.1, Delta: 0.1}
		s1, err := New(fless, withSeedCfg(cfg, uint64(seedByte)))
		if err != nil {
			return false
		}
		s2, err := New(fless, withSeedCfg(cfg, uint64(seedByte)+1))
		if err != nil {
			return false
		}
		for _, v := range a {
			s1.Update(v)
		}
		for _, v := range bvals {
			s2.Update(v)
		}
		if err := s1.Merge(s2); err != nil {
			return false
		}
		if s1.Count() != uint64(len(a)+len(bvals)) {
			return false
		}
		if s1.CheckInvariants() != nil {
			return false
		}
		if len(a)+len(bvals) == 0 {
			return true
		}
		wantMin, wantMax := math.Inf(1), math.Inf(-1)
		for _, v := range append(append([]float64(nil), a...), bvals...) {
			wantMin = math.Min(wantMin, v)
			wantMax = math.Max(wantMax, v)
		}
		gotMin, _ := s1.Min()
		gotMax, _ := s1.Max()
		return gotMin == wantMin && gotMax == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func withSeedCfg(cfg Config, seed uint64) Config {
	cfg.Seed = seed
	return cfg
}

func TestPropertySnapshotRoundTrip(t *testing.T) {
	f := func(raw []float64, seedByte uint8) bool {
		vals := boundedStream(raw, 2048)
		s, err := New(fless, Config{Eps: 0.1, Delta: 0.1, Seed: uint64(seedByte)})
		if err != nil {
			return false
		}
		for _, v := range vals {
			s.Update(v)
		}
		r, err := FromSnapshot(fless, s.Snapshot())
		if err != nil {
			return false
		}
		if r.Count() != s.Count() || r.ItemsRetained() != s.ItemsRetained() {
			return false
		}
		// Ranks of a few probes must agree exactly.
		probes := []float64{-1e18, -1, 0, 1, 1e18}
		probes = append(probes, vals...)
		if len(probes) > 40 {
			probes = probes[:40]
		}
		for _, y := range probes {
			if r.Rank(y) != s.Rank(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyViewRepairEquivalence(t *testing.T) {
	// Under arbitrary interleavings of Update, UpdateBatch, UpdateWeighted,
	// and view-building queries, the cached view (tail-repaired or rebuilt
	// into recycled storage, indexed or not) answers identically to a view
	// built from scratch on a clone.
	f := func(ops []uint16, seedByte uint8) bool {
		s, err := New(fless, Config{Eps: 0.15, Delta: 0.15, Seed: uint64(seedByte)})
		if err != nil {
			return false
		}
		r := rng.New(uint64(seedByte) * 131)
		if len(ops) > 200 {
			ops = ops[:200]
		}
		batch := make([]float64, 0, 32)
		for _, op := range ops {
			switch op % 5 {
			case 0, 1:
				s.Update(math.Floor(r.Float64() * 50))
			case 2:
				batch = batch[:0]
				for i := 0; i < int(op%31); i++ {
					batch = append(batch, math.Floor(r.Float64()*50))
				}
				s.UpdateBatch(batch)
			case 3:
				if err := s.UpdateWeighted(math.Floor(r.Float64()*50), uint64(op%9)); err != nil {
					return false
				}
			case 4:
				if op%2 == 0 {
					s.Freeze()
				} else {
					s.SortedView()
				}
			}
			if s.CheckInvariants() != nil {
				return false
			}
		}
		v := s.SortedView()
		fresh := s.Clone().SortedView()
		if v.TotalWeight() != fresh.TotalWeight() || len(v.Items()) != len(fresh.Items()) {
			return false
		}
		for i := range v.Items() {
			if v.Items()[i] != fresh.Items()[i] {
				return false
			}
		}
		s.Freeze()
		for y := -1.0; y <= 51; y++ {
			if v.Rank(y) != fresh.Rank(y) || v.RankExclusive(y) != fresh.RankExclusive(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRetainedItemsAreStreamItems(t *testing.T) {
	// Every retained item must be an item that was actually inserted (the
	// sketch is comparison-based and never invents values).
	f := func(seed16 uint16) bool {
		seed := uint64(seed16)
		r := rng.New(seed)
		n := 2000 + r.Intn(3000)
		present := make(map[float64]bool, n)
		s, err := New(fless, Config{Eps: 0.1, Delta: 0.1, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			v := math.Floor(r.Float64() * 1e6)
			present[v] = true
			s.Update(v)
		}
		for h := range s.levels {
			for _, x := range s.levels[h].buf {
				if !present[x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLowestRanksExact(t *testing.T) {
	// The protected bottom half guarantees zero error on the smallest
	// B/2-ranked items; in particular rank 1 is always exact.
	f := func(seed16 uint16) bool {
		seed := uint64(seed16)
		r := rng.New(seed)
		n := 5000 + r.Intn(20000)
		s, err := New(fless, Config{Eps: 0.1, Delta: 0.1, Seed: seed})
		if err != nil {
			return false
		}
		for _, v := range r.Perm(n) {
			s.Update(float64(v))
		}
		return s.Rank(0) == 1 && s.Rank(1) == 2 && s.Rank(2) == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
