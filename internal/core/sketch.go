package core

import (
	"fmt"

	"req/internal/rng"
	"req/internal/schedule"
	"req/internal/vec"
)

// compactor is one relative-compactor (Algorithm 1): a buffer at level h of
// the sketch. Items in the buffer carry weight 2^h. The buffer holds up to
// b items between operations; its bottom half (in the internal order) is
// never compacted, and the top half is divided into nsec sections of k items
// compacted per the exponential schedule.
type compactor[T any] struct {
	// buf aliases this level's window of the sketch's contiguous slab (see
	// levelStore): &buf[0] == &slab[win.off] and cap(buf) == win.cap. Appends
	// that could exceed the window capacity must go through store.ensure
	// first; a plain append can then never reallocate out of the slab.
	buf []T
	// sorted is the length of the sorted prefix of buf under the sketch's
	// internal order: buf[:sorted] is sorted, buf[sorted:] is the unsorted
	// append tail. Level 0 accumulates its tail between compactions; levels
	// ≥ 1 are kept fully sorted by merging incoming emissions (a tail can
	// appear there only transiently, from direct weighted inserts, and is
	// settled before the level is next compacted or queried as a whole).
	sorted int
	// state drives the compaction schedule. In a single stream it counts
	// compactions; across merges it is the bitwise OR of the constituent
	// histories plus subsequent compactions (Algorithm 3).
	state schedule.State
	// numCompactions counts compactions actually performed at this level
	// (including special compactions); kept for instrumentation.
	numCompactions uint64
}

// Sketch is the full relative-error quantiles sketch (Algorithm 2 plus the
// unknown-stream-length handling of Section 5 and the merge machinery of
// Appendix D), generic over the item type. It is not safe for concurrent
// use. Construct it with New.
type Sketch[T any] struct {
	less func(a, b T) bool // the caller's order; queries use this
	// kern is the monomorphic kernel table when less is the canonical
	// natural order for a supported element type (see kernels.go); nil
	// routes every hot loop through the generic closures.
	kern *kernelTable[T]
	cfg  Config
	rnd  *rng.Source

	levels []compactor[T] // levels[h] holds items of weight 2^h
	// store is the contiguous storage engine backing every level buffer:
	// levels[h].buf aliases a window of store.slab. All level growth routes
	// through it, so Clone/CopyFrom move the whole hierarchy as one memcpy.
	store    levelStore[T]
	n        uint64   // total stream length summarised
	bound    uint64   // current stream-length bound N
	geom     geometry // current (k, nsec, b), derived from bound
	retained int      // Σ len(levels[h].buf), maintained incrementally

	min, max  T
	hasMinMax bool

	// view is the cached sorted view when it is current (nil ⇒ stale).
	// spare retains the most recently built view so rebuilds recycle its
	// storage: view == spare whenever view is non-nil.
	view  *View[T]
	spare *View[T]
	// viewDirty is a bitmap of levels whose buffers received appends since
	// spare was built; viewStructural records mutations that reordered or
	// truncated buffers (compaction, growth, merge, reset), which force a
	// full (storage-reusing) rebuild. When only bit 0 is set, the view is
	// repaired by merging level 0's append tail into spare in one pass.
	viewDirty      uint64
	viewStructural bool
	// viewL0Len is len(levels[0].buf) when spare was built; the repair path
	// treats buf[viewL0Len:] as the new tail.
	viewL0Len int

	// scratch is reused by settleLevel and emitHalf (tail copies and
	// emission staging), so steady-state ingest performs no allocation.
	scratch []T
	// mergeBuf stages settled copies of merge-source levels (Merge step 4),
	// reused across merges so settling allocates only on growth.
	mergeBuf []T
	// kwayCurs is the kernel k-way merge's reusable cursor array (the
	// generic path keeps a stack array; a slice handed to an indirect
	// kernel call would escape, so the kernel path amortizes one
	// allocation across rebuilds instead).
	kwayCurs []vec.KWayCursor[T]
	// stage is a reusable deep-copy target for merge sources that need a
	// special compaction (Merge step 3), replacing a per-merge Clone.
	stage *Sketch[T]

	// Instrumentation for the experiment harness.
	stats Stats
}

// Stats aggregates instrumentation counters; see Sketch.Stats.
type Stats struct {
	Compactions        uint64 // scheduled compactions performed
	SpecialCompactions uint64 // special compactions (growth/merge, App. D)
	Growths            uint64 // times the bound N was squared
	Merges             uint64 // merge operations absorbed
	CoinFlips          uint64 // random coins consumed
	MaxBufferLen       int    // high-water buffer length observed
}

// New returns an empty sketch over the strict order less. The config is
// normalized; an invalid config returns an error.
func New[T any](less func(a, b T) bool, cfg Config) (*Sketch[T], error) {
	s := new(Sketch[T])
	if err := s.Init(less, cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Init initializes s in place as an empty sketch over the strict order
// less, exactly as New would construct it. It exists for callers that
// embed Sketch by value inside pooled or arena-allocated cells (the
// multi-tenant registry packs millions of sketches into block arenas, one
// compact struct per key, with no per-sketch pointer allocation); s must
// be the zero value.
func (s *Sketch[T]) Init(less func(a, b T) bool, cfg Config) error {
	if less == nil {
		return fmt.Errorf("core: nil less function")
	}
	if err := cfg.Normalize(); err != nil {
		return err
	}
	s.less = less
	s.kern = kernelFor(less)
	s.cfg = cfg
	s.rnd = rng.New(cfg.Seed)
	s.bound = cfg.initialBound()
	s.geom = cfg.geometryFor(s.bound)
	s.levels = make([]compactor[T], 0, 8)
	s.levels = s.store.addLevel(s.levels, s.geom.b)
	return nil
}

// internalLess is the order compaction protects: the caller's order for
// low-rank accuracy, or its reverse for high-rank accuracy (HRA). Queries
// always use the caller's order; only the choice of which items survive
// compaction changes.
func (s *Sketch[T]) internalLess(a, b T) bool {
	if s.cfg.HRA {
		return s.less(b, a)
	}
	return s.less(a, b)
}

// markAppended invalidates the cached view after an append-only mutation of
// level h: the spare view stays repairable (for h = 0) because the existing
// buffer prefix is untouched.
//
//req:noalloc
func (s *Sketch[T]) markAppended(h int) {
	s.view = nil
	if h < 64 {
		s.viewDirty |= uint64(1) << uint(h)
	} else {
		s.viewStructural = true
	}
}

// markStructural invalidates the cached view after a mutation that reordered,
// truncated, or rebuilt buffers (compaction, growth, merge, reset); the next
// query rebuilds the view from scratch into the spare's storage.
//
//req:noalloc
func (s *Sketch[T]) markStructural() {
	s.view = nil
	s.viewStructural = true
}

// Update inserts one item into the sketch.
func (s *Sketch[T]) Update(x T) {
	s.markAppended(0)
	if !s.hasMinMax {
		s.min, s.max = x, x
		s.hasMinMax = true
	} else {
		if s.less(x, s.min) {
			s.min = x
		}
		if s.less(s.max, x) {
			s.max = x
		}
	}
	if s.n+1 > s.bound {
		s.growTo(s.n + 1)
	}
	lv := &s.levels[0]
	if len(lv.buf) == cap(lv.buf) {
		// The window is full (possible right after a geometry growth raised
		// b past the reserved capacity); widen it before appending so the
		// append can never reallocate out of the slab.
		s.store.ensure(s.levels, 0, len(lv.buf)+1)
		lv = &s.levels[0]
	}
	if lv.sorted == len(lv.buf) && (lv.sorted == 0 || !s.internalLess(x, lv.buf[lv.sorted-1])) {
		// x extends the sorted prefix: ascending ingest never builds a tail,
		// making the pre-compaction settle free.
		lv.sorted++
	}
	lv.buf = append(lv.buf, x)
	s.retained++
	s.n++
	if len(lv.buf) > s.stats.MaxBufferLen {
		s.stats.MaxBufferLen = len(lv.buf)
	}
	if len(lv.buf) >= s.geom.b {
		s.compactCascade(0)
	}
}

// UpdateBatch inserts every item of xs, amortizing view invalidation,
// min/max tracking, bound checks, and compaction cascades across the batch.
// It is equivalent to calling Update once per item — bit-identical whenever
// no stream-length growth lands mid-batch; across a growth boundary the
// bound is raised once for the whole chunk rather than at the exact item,
// which preserves every guarantee but may retain a slightly different
// coreset than item-at-a-time insertion. The slice is only read.
func (s *Sketch[T]) UpdateBatch(xs []T) {
	if len(xs) == 0 {
		return
	}
	s.markAppended(0)
	if !s.hasMinMax {
		s.min, s.max = xs[0], xs[0]
		s.hasMinMax = true
	}
	mn, mx := s.min, s.max
	if k := s.kern; k != nil {
		mn, mx = k.minMax(xs, mn, mx)
	} else {
		for _, x := range xs {
			if s.less(x, mn) {
				mn = x
			} else if s.less(mx, x) {
				mx = x
			}
		}
	}
	s.min, s.max = mn, mx
	for i := 0; i < len(xs); {
		lv := &s.levels[0]
		room := s.geom.b - len(lv.buf)
		if room <= 0 {
			s.compactCascade(0)
			continue
		}
		take := len(xs) - i
		if take > room {
			take = room
		}
		if s.n+uint64(take) > s.bound && s.bound < maxBound {
			s.growTo(s.n + uint64(take))
			continue // growth changed the geometry; recompute the chunk
		}
		if len(lv.buf)+take > cap(lv.buf) {
			s.store.ensure(s.levels, 0, len(lv.buf)+take)
			lv = &s.levels[0]
		}
		wasSorted := lv.sorted == len(lv.buf)
		lv.buf = append(lv.buf, xs[i:i+take]...)
		s.retained += take
		if wasSorted {
			// Extend the sorted prefix while the chunk continues it, so
			// ascending batches stay settle-free.
			if k := s.kern; k != nil {
				if s.cfg.HRA {
					lv.sorted = k.extendDesc(lv.buf, lv.sorted)
				} else {
					lv.sorted = k.extendAsc(lv.buf, lv.sorted)
				}
			} else {
				for lv.sorted < len(lv.buf) &&
					(lv.sorted == 0 || !s.internalLess(lv.buf[lv.sorted], lv.buf[lv.sorted-1])) {
					lv.sorted++
				}
			}
		}
		s.n += uint64(take)
		i += take
		if len(lv.buf) > s.stats.MaxBufferLen {
			s.stats.MaxBufferLen = len(lv.buf)
		}
		if len(lv.buf) >= s.geom.b {
			s.compactCascade(0)
		}
	}
}

// IngestRun feeds one same-key run of a batched keyed ingest into the
// sketch — the run-ingest hook the registry's UpdatePairs pipeline resolves
// each distinct key to. A single-item run takes the scalar Update path
// (batch setup would dominate); longer runs take UpdateBatch so the
// monomorphic kernels apply. The two are bit-identical for one item, so the
// choice never changes sketch state.
func (s *Sketch[T]) IngestRun(run []T) {
	if len(run) == 1 {
		s.Update(run[0])
		return
	}
	s.UpdateBatch(run)
}

// PrefetchHint reads the level-0 append position — the line an Update will
// write next — and returns what it finds (the zero value on an empty
// window). The batched keyed pipeline calls this for every resolved cell
// in its tight resolve loop and stores the result into scratch, forcing
// the level array and slab lines of many keys to fault in concurrently
// instead of one dependent chain at a time during ingest. Pure read; no
// sketch state changes.
//
//req:noalloc
func (s *Sketch[T]) PrefetchHint() T {
	var hint T
	if len(s.levels) > 0 {
		if buf := s.levels[0].buf; len(buf) > 0 {
			hint = buf[len(buf)-1]
		}
	}
	return hint
}

// Count returns n, the total weight of items summarised (stream length, or
// the sum of merged stream lengths).
func (s *Sketch[T]) Count() uint64 { return s.n }

// Empty reports whether the sketch has seen no items.
func (s *Sketch[T]) Empty() bool { return s.n == 0 }

// Min returns the smallest item seen (exactly). ok is false when empty.
func (s *Sketch[T]) Min() (item T, ok bool) { return s.min, s.hasMinMax }

// Max returns the largest item seen (exactly). ok is false when empty.
func (s *Sketch[T]) Max() (item T, ok bool) { return s.max, s.hasMinMax }

// Config returns the normalized configuration of the sketch.
func (s *Sketch[T]) Config() Config { return s.cfg }

// Stats returns a copy of the instrumentation counters.
func (s *Sketch[T]) Stats() Stats { return s.stats }

// Bound returns the current stream-length bound N.
func (s *Sketch[T]) Bound() uint64 { return s.bound }

// K returns the current section size k.
func (s *Sketch[T]) K() int { return s.geom.k }

// BufferCapacity returns the current per-level buffer capacity B.
func (s *Sketch[T]) BufferCapacity() int { return s.geom.b }

// NumLevels returns the number of relative-compactors currently allocated.
func (s *Sketch[T]) NumLevels() int { return len(s.levels) }

// ItemsRetained returns the total number of items stored across all levels.
// It is an O(1) counter maintained on every append, compaction, merge, and
// reset (CheckInvariants cross-checks it against the per-level sum).
func (s *Sketch[T]) ItemsRetained() int { return s.retained }

// compactCascade compacts level h and propagates: each compaction emits
// items one level up, which may in turn exceed capacity. Levels are created
// on demand (Algorithm 2's Insert recursion, iteratively).
func (s *Sketch[T]) compactCascade(h int) {
	for ; h < len(s.levels); h++ {
		if len(s.levels[h].buf) >= s.geom.b {
			s.compactLevel(h)
		}
	}
}

// compactLevel performs one scheduled compaction at level h (Algorithm 1
// lines 5–11; Algorithm 3's ScheduledCompaction when the buffer holds more
// than B items after a merge).
//
// The buffer's unsorted tail is settled (sorted and merged behind the sorted
// prefix — never a full re-sort); the compacted region is every item above
// the lowest B−L slots, where L = sections·k is dictated by the schedule
// state. The surviving half of the region (even- or odd-indexed items, fair
// coin) moves to level h+1 with doubled weight.
func (s *Sketch[T]) compactLevel(h int) {
	c := &s.levels[h]
	if len(c.buf) > s.stats.MaxBufferLen {
		s.stats.MaxBufferLen = len(c.buf)
	}
	s.markStructural()
	s.settleLevel(h)

	secs := schedule.SectionsFor(s.cfg.Schedule, c.state, s.geom.nsec)
	keep := s.geom.b - secs*s.geom.k
	if keep < 0 {
		keep = 0
	}
	if keep > len(c.buf) {
		// Defensive: cannot happen for scheduled compactions (caller
		// checks len ≥ b ≥ keep), but keeps the helper total.
		keep = len(c.buf)
	}
	s.emitHalf(h, keep)
	c = &s.levels[h] // emitHalf may have grown s.levels and moved it
	c.state = c.state.Next()
	c.numCompactions++
	s.stats.Compactions++
}

// specialCompactLevel performs the Appendix D special compaction at level h:
// compact everything above the lowest B/2 items, leaving at most B/2 (+1 for
// parity) behind. It is a no-op when the buffer holds ≤ B/2 items. Returns
// whether a compaction was performed.
func (s *Sketch[T]) specialCompactLevel(h int) bool {
	c := &s.levels[h]
	keep := s.geom.b / 2
	if len(c.buf) <= keep {
		return false
	}
	s.markStructural()
	s.settleLevel(h)
	s.emitHalf(h, keep)
	c = &s.levels[h] // emitHalf may have grown s.levels and moved it
	c.state = c.state.Next()
	c.numCompactions++
	s.stats.SpecialCompactions++
	return true
}

// emitHalf compacts the (already sorted) region buf[keep:] of level h:
// every other item of the region is promoted to level h+1, the rest are
// discarded, and the buffer is truncated to keep items. The promoted items
// are themselves sorted (every other item of a sorted region), so they are
// merged into level h+1's sorted buffer in O(b) — the next level is never
// re-sorted.
//
// The region is forced to even length by retaining one extra item, so each
// compaction consumes 2m items and emits m of double weight: total weight
// Σ_h 2^h·|buf_h| is conserved exactly (a checked invariant). The paper
// permits odd regions; see DESIGN.md for why we tighten this.
func (s *Sketch[T]) emitHalf(h, keep int) {
	c := &s.levels[h]
	if (len(c.buf)-keep)%2 != 0 {
		keep++
	}
	if len(c.buf) <= keep {
		return
	}
	offset := 0
	if !s.cfg.DetCoin {
		s.stats.CoinFlips++
		if s.rnd.Coin() {
			offset = 1
		}
	}
	if h+1 >= len(s.levels) {
		s.levels = s.store.addLevel(s.levels, s.geom.b)
	}
	// The next level can carry an unsorted tail (direct weighted inserts);
	// settle it before merging the emission. This must precede the scratch
	// use below — settleLevel claims s.scratch too.
	s.settleLevel(h + 1)
	c = &s.levels[h] // re-take: addLevel may have moved the levels array
	region := c.buf[keep:]
	s.scratch = s.scratch[:0]
	for i := offset; i < len(region); i += 2 {
		s.scratch = append(s.scratch, region[i])
	}
	// Scrub the abandoned tail so the slab never keeps pointer-bearing
	// items reachable, and shrink the window's occupied prefix in place.
	clear(c.buf[keep:])
	s.retained -= len(c.buf) - keep
	c.buf = c.buf[:keep]
	if c.sorted > keep {
		c.sorted = keep
	}
	// Widen the next level's window for the emission before merging; the
	// merge then appends strictly within the slab.
	s.store.ensure(s.levels, h+1, len(s.levels[h+1].buf)+len(s.scratch))
	next := &s.levels[h+1]
	next.buf = s.mergeInternalInto(next.buf, s.scratch)
	next.sorted = len(next.buf)
	s.retained += len(s.scratch)
	if len(next.buf) > s.stats.MaxBufferLen {
		s.stats.MaxBufferLen = len(next.buf)
	}
}

// growTo raises the stream-length bound N until it is at least need,
// squaring per Section 5 / Appendix D: special-compact every level (except
// the top), square N, recompute the geometry, then re-compact any level left
// at or above the new capacity.
func (s *Sketch[T]) growTo(need uint64) {
	s.markStructural()
	for s.bound < need {
		for h := 0; h < len(s.levels)-1; h++ {
			s.specialCompactLevel(h)
		}
		s.bound = squareBound(s.bound)
		s.geom = s.cfg.geometryFor(s.bound)
		s.stats.Growths++
		s.compactCascade(0)
		if s.bound == maxBound {
			return
		}
	}
}

// Reset returns the sketch to its empty state, retaining allocations where
// convenient and preserving the configuration. The random stream continues
// (it is not re-seeded), so a reset sketch is statistically fresh but not
// bit-identical to a newly constructed one.
func (s *Sketch[T]) Reset() {
	s.markStructural()
	// Drop the recycled view outright: its arrays hold items from the old
	// stream, which pointer-bearing item types should not keep reachable.
	s.spare = nil
	s.n = 0
	s.retained = 0
	s.bound = s.cfg.initialBound()
	s.geom = s.cfg.geometryFor(s.bound)
	s.store.reset()
	s.levels = s.levels[:1]
	s.levels[0] = compactor[T]{}
	s.store.realias(s.levels)
	var zero T
	s.min, s.max = zero, zero
	s.hasMinMax = false
	s.stats = Stats{}
}

// Clone returns a deep copy of the sketch sharing no mutable state with s.
// The clone's random source continues s's stream (state copied), so the
// clone and the original behave bit-for-bit identically on identical
// subsequent input. The cached sorted view is not carried over; the clone
// rebuilds it on first query. Clone is a read-only operation on s.
//
// The whole level hierarchy transfers as one compact slab allocation with
// one memcpy per level — O(1) allocations regardless of the level count.
func (s *Sketch[T]) Clone() *Sketch[T] {
	c := *s
	c.rnd = rng.New(0)
	c.rnd.Restore(s.rnd.State())
	c.store = levelStore[T]{}
	c.store.cloneFrom(&s.store, s.levels)
	c.levels = make([]compactor[T], len(s.levels))
	copy(c.levels, s.levels)
	c.store.realias(c.levels)
	c.view = nil
	// Never share transient state with the original: the clone grows its
	// own view storage and merge scratch on first use.
	c.spare = nil
	c.viewDirty, c.viewStructural, c.viewL0Len = 0, false, 0
	c.scratch = nil
	c.mergeBuf = nil
	c.kwayCurs = nil
	c.stage = nil
	return &c
}

// CopyFrom makes s a deep copy of src (same contract as src.Clone(), but in
// place): s summarises the same stream, continues the same random stream, and
// shares no mutable state with src. Unlike Clone it reuses s's storage slab
// and cached-view arrays, so refreshing a long-lived staging sketch from a
// live one allocates nothing once capacities have grown to match.
// The sharded wrapper's snapshot rebuild uses it to re-stage shard state
// every epoch without per-epoch garbage. s.CopyFrom(s) is a no-op.
func (s *Sketch[T]) CopyFrom(src *Sketch[T]) {
	if s == src {
		return
	}
	s.less = src.less
	s.kern = src.kern
	s.cfg = src.cfg
	if s.rnd == nil {
		s.rnd = rng.New(0)
	}
	s.rnd.Restore(src.rnd.State())
	s.n, s.bound, s.geom = src.n, src.bound, src.geom
	s.min, s.max, s.hasMinMax = src.min, src.max, src.hasMinMax
	s.stats = src.stats
	s.retained = src.retained
	// Per-level memcpys within one reused slab; the grown slab capacity is
	// what keeps repeated refreshes allocation-free.
	s.store.copyFrom(&src.store, s.levels, src.levels)
	if cap(s.levels) < len(src.levels) {
		s.levels = make([]compactor[T], len(src.levels))
	} else {
		s.levels = s.levels[:len(src.levels)]
	}
	copy(s.levels, src.levels)
	s.store.realias(s.levels)
	s.markStructural()
}
