package core

import (
	"testing"

	"req/internal/rng"
)

// Allocation regression tests: the steady-state hot paths must not allocate.
// Each test warms the sketch past its growth phase (so buffers, scratch,
// view storage, and index storage have all reached their high-water marks)
// and then pins allocs/op at zero with testing.AllocsPerRun.

// warmSketch builds a sketch with n random values and a materialized,
// indexed view, cycling the view cache once so the recycled storage has
// seen both rebuild paths.
func warmSketch(tb testing.TB, n int, seed uint64) (*Sketch[float64], []float64) {
	tb.Helper()
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(seed + 1)
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = r.Float64()
	}
	for i := 0; i < n; i++ {
		s.Update(vals[i&(1<<16-1)])
	}
	s.Freeze()
	s.Update(vals[0])
	s.Freeze() // repair + re-index into recycled storage
	return s, vals
}

func TestAllocsSteadyStateUpdate(t *testing.T) {
	s, vals := warmSketch(t, 1<<18, 1)
	i := 0
	if avg := testing.AllocsPerRun(5000, func() {
		s.Update(vals[i&(1<<16-1)])
		i++
	}); avg != 0 {
		t.Fatalf("steady-state Update allocates %v allocs/op", avg)
	}
}

func TestAllocsFrozenRank(t *testing.T) {
	s, vals := warmSketch(t, 1<<18, 2)
	s.Freeze()
	i := 0
	if avg := testing.AllocsPerRun(5000, func() {
		_ = s.Rank(vals[i&1023])
		_ = s.RankExclusive(vals[i&1023])
		i++
	}); avg != 0 {
		t.Fatalf("frozen Rank allocates %v allocs/op", avg)
	}
}

func TestAllocsTailRepair(t *testing.T) {
	s, vals := warmSketch(t, 1<<18, 3)
	i := 0
	// One small write followed by a view build per run: the common
	// few-writes-between-queries cycle. Most runs take the tail-repair
	// path; the runs where the write lands a compaction take the full
	// rebuild — both must be allocation-free against recycled storage.
	if avg := testing.AllocsPerRun(2000, func() {
		s.Update(vals[i&(1<<16-1)])
		i++
		_ = s.SortedView()
	}); avg != 0 {
		t.Fatalf("write+view cycle allocates %v allocs/op", avg)
	}
}

func TestAllocsReusedStorageRebuild(t *testing.T) {
	s, vals := warmSketch(t, 1<<18, 4)
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		// Force the full-rebuild path every run: a structural invalidation
		// with no actual state change keeps the retained set stable while
		// the whole k-way merge re-runs into the recycled arrays.
		s.markStructural()
		_ = s.SortedView()
		_ = vals
	}); avg != 0 {
		t.Fatalf("reused-storage full rebuild allocates %v allocs/op", avg)
	}
	_ = i
}

func TestAllocsFreezeCycle(t *testing.T) {
	s, vals := warmSketch(t, 1<<18, 5)
	i := 0
	// Write, re-freeze (view repair + index rebuild), query: the steady
	// loop of a monitoring scrape. Index storage must recycle too.
	if avg := testing.AllocsPerRun(500, func() {
		s.Update(vals[i&(1<<16-1)])
		i++
		s.Freeze()
		_ = s.Rank(vals[i&1023])
	}); avg != 0 {
		t.Fatalf("write+freeze+rank cycle allocates %v allocs/op", avg)
	}
}

func TestAllocsBatchQueriesSortedProbes(t *testing.T) {
	s, vals := warmSketch(t, 1<<18, 6)
	probes := append([]float64(nil), vals[:256]...)
	sortSlice(probes, fless)
	dstR := make([]uint64, 0, len(probes))
	dstN := make([]float64, 0, len(probes))
	dstC := make([]float64, 0, len(probes)+1)
	s.Freeze()
	if avg := testing.AllocsPerRun(500, func() {
		dstR = s.RankBatch(dstR, probes)
		dstN = s.NormalizedRankBatch(dstN, probes)
		var err error
		dstC, err = s.CDFInto(dstC, probes)
		if err != nil {
			panic(err)
		}
	}); avg != 0 {
		t.Fatalf("sorted-probe batch queries allocate %v allocs/op", avg)
	}
}

// The kernel-dispatch pins: fless is the canonical LessF64, so warmSketch
// builds kernel-active sketches and every pin above already proves the
// kernel paths. The pins below cover the paths only the kernel layer adds
// (whole-batch Eytzinger descent, cursor-slice k-way merge) and the closure
// fallback, which must stay allocation-free for non-canonical orders.

func TestAllocsKernelUnsortedBatchDescent(t *testing.T) {
	s, vals := warmSketch(t, 1<<18, 7)
	if s.kern == nil {
		t.Fatal("warmSketch is expected to build a kernel-active sketch")
	}
	// Unsorted probes at ≥ interleaveMinBatch: RankBatch routes through the
	// kernel whole-batch descent writing straight into dst.
	probes := append([]float64(nil), vals[:64]...)
	probes[0], probes[63] = probes[63], probes[0] // defeat both sorted checks
	dst := make([]uint64, 0, len(probes))
	s.Freeze()
	if avg := testing.AllocsPerRun(500, func() {
		dst = s.RankBatch(dst, probes)
	}); avg != 0 {
		t.Fatalf("kernel unsorted-batch descent allocates %v allocs/op", avg)
	}
}

func TestAllocsKernelRebuildAfterWarm(t *testing.T) {
	// The kernel k-way merge stages cursors on s.kwayCurs; after one rebuild
	// has grown it, further full rebuilds must not allocate.
	s, vals := warmSketch(t, 1<<18, 8)
	if avg := testing.AllocsPerRun(200, func() {
		s.markStructural()
		_ = s.SortedView()
		_ = vals
	}); avg != 0 {
		t.Fatalf("kernel full rebuild allocates %v allocs/op", avg)
	}
}

func TestAllocsClosureFallbackSteadyState(t *testing.T) {
	// A non-canonical order must keep the generic paths allocation-free:
	// kernels are an overlay, not a rewrite of the steady-state contract.
	s, err := New(func(a, b float64) bool { return a < b }, Config{Eps: 0.01, Delta: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.kern != nil {
		t.Fatal("non-canonical less unexpectedly activated kernels")
	}
	r := rng.New(10)
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = r.Float64()
	}
	for i := 0; i < 1<<18; i++ {
		s.Update(vals[i&(1<<16-1)])
	}
	s.Freeze()
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		s.Update(vals[i&(1<<16-1)])
		i++
		s.Freeze()
		_ = s.Rank(vals[i&1023])
	}); avg != 0 {
		t.Fatalf("closure-fallback write+freeze+rank cycle allocates %v allocs/op", avg)
	}
}

func TestAllocsKernelUpdateBatch(t *testing.T) {
	s, vals := warmSketch(t, 1<<18, 11)
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		s.UpdateBatch(vals[i&(1<<14-1) : (i&(1<<14-1))+128])
		i += 128
	}); avg != 0 {
		t.Fatalf("kernel UpdateBatch allocates %v allocs/op", avg)
	}
}
