package core

import (
	"fmt"
	"math"
	"strings"
	"unsafe"
)

// CheckInvariants verifies the structural invariants of the sketch and
// returns a descriptive error on the first violation. It is exercised by
// the test suite after every mutating operation and is cheap enough to run
// in production assertions.
//
// Invariants checked:
//
//  1. geometry consistency: b = 2·k·nsec, k even and ≥ 4, nsec ≥ 2;
//  2. weight conservation: Σ_h 2^h·|buf_h| = n (even-sized compactions
//     conserve total weight exactly);
//  3. buffers at rest hold fewer than B items;
//  4. every stored item lies within [min, max] in the caller's order;
//  5. min/max presence tracks emptiness;
//  6. the bound dominates the count: N ≥ n;
//  7. level count obeys Observation 13 (≤ ⌈log₂(n/(B/2))⌉ + 2, the slack
//     covering geometry changes across growths);
//  8. the sorted-compactor invariant: 0 ≤ sorted ≤ len(buf) and
//     buf[:sorted] is sorted under the internal order at every level;
//  9. view-cache consistency: a current view is the spare (recycled
//     storage), carries no pending dirty bits, matches the sketch's count,
//     and its recorded level-0 length is the buffer's actual length;
//  10. slab consistency: one window per level, laid out in level order,
//     contiguous and non-overlapping, capacity accounting matching the slab
//     length, every level buffer aliasing exactly its window, the O(1)
//     ItemsRetained counter equal to the per-level sum, and no aliasing
//     between the slab and the scratch/merge buffers.
func (s *Sketch[T]) CheckInvariants() error {
	g := s.geom
	if g.b != 2*g.k*g.nsec {
		return fmt.Errorf("core: geometry inconsistent: b=%d k=%d nsec=%d", g.b, g.k, g.nsec)
	}
	if g.k < 4 || g.k%2 != 0 {
		return fmt.Errorf("core: invalid section size k=%d", g.k)
	}
	if g.nsec < 2 {
		return fmt.Errorf("core: invalid section count nsec=%d", g.nsec)
	}
	var weight uint64
	for h := range s.levels {
		blen := len(s.levels[h].buf)
		weight += uint64(blen) << uint(h)
		if blen >= g.b {
			return fmt.Errorf("core: level %d holds %d items ≥ capacity %d at rest", h, blen, g.b)
		}
		if sp := s.levels[h].sorted; sp < 0 || sp > blen {
			return fmt.Errorf("core: level %d sorted prefix %d outside buffer of %d", h, sp, blen)
		} else if !isSorted(s.levels[h].buf[:sp], s.internalLess) {
			return fmt.Errorf("core: level %d sorted prefix of %d is not sorted", h, sp)
		}
		for i, x := range s.levels[h].buf {
			if s.less(x, s.min) {
				return fmt.Errorf("core: level %d item %d below tracked min", h, i)
			}
			if s.less(s.max, x) {
				return fmt.Errorf("core: level %d item %d above tracked max", h, i)
			}
		}
	}
	if weight != s.n {
		return fmt.Errorf("core: retained weight %d != n %d", weight, s.n)
	}
	if s.hasMinMax != (s.n > 0) {
		return fmt.Errorf("core: hasMinMax=%v with n=%d", s.hasMinMax, s.n)
	}
	if s.bound < s.n {
		return fmt.Errorf("core: bound %d < n %d", s.bound, s.n)
	}
	if s.view != nil {
		if s.view != s.spare {
			return fmt.Errorf("core: current view is not the recycled spare")
		}
		if s.viewDirty != 0 || s.viewStructural {
			return fmt.Errorf("core: current view carries pending invalidation (dirty=%b structural=%v)",
				s.viewDirty, s.viewStructural)
		}
		if s.view.n != s.n {
			return fmt.Errorf("core: current view count %d != n %d", s.view.n, s.n)
		}
		if s.viewL0Len != len(s.levels[0].buf) {
			return fmt.Errorf("core: view level-0 length %d != buffer length %d",
				s.viewL0Len, len(s.levels[0].buf))
		}
	}
	if err := s.checkSlabInvariants(); err != nil {
		return err
	}
	if s.n > 0 {
		// Observation 13: items at level h have weight 2^h, so a level can
		// exist only if 2^h ≤ 2n/B... allow generous slack for growth.
		maxLevels := int(math.Ceil(math.Log2(float64(s.n)/float64(g.b/2)+1))) + 2
		if len(s.levels) > maxLevels && len(s.levels) > 3 {
			return fmt.Errorf("core: %d levels exceeds Observation 13 bound %d (n=%d, B=%d)",
				len(s.levels), maxLevels, s.n, g.b)
		}
	}
	return nil
}

// checkSlabInvariants verifies invariant 10: the level-store layout.
func (s *Sketch[T]) checkSlabInvariants() error {
	st := &s.store
	if len(st.win) != len(s.levels) {
		return fmt.Errorf("core: %d windows for %d levels", len(st.win), len(s.levels))
	}
	off := 0
	sum := 0
	for h := range s.levels {
		w := st.win[h]
		if w.off != off {
			return fmt.Errorf("core: level %d window starts at %d, want %d (windows must be contiguous in level order)", h, w.off, off)
		}
		if w.cap < 1 {
			return fmt.Errorf("core: level %d window capacity %d < 1", h, w.cap)
		}
		buf := s.levels[h].buf
		if len(buf) > w.cap {
			return fmt.Errorf("core: level %d holds %d items in a window of %d", h, len(buf), w.cap)
		}
		if cap(buf) != w.cap {
			return fmt.Errorf("core: level %d buffer capacity %d != window capacity %d", h, cap(buf), w.cap)
		}
		if unsafe.SliceData(buf) != &st.slab[w.off] {
			return fmt.Errorf("core: level %d buffer does not alias the slab at offset %d", h, w.off)
		}
		off += w.cap
		sum += len(buf)
	}
	if off != len(st.slab) {
		return fmt.Errorf("core: window capacities sum to %d but slab holds %d", off, len(st.slab))
	}
	if sum != s.retained {
		return fmt.Errorf("core: ItemsRetained counter %d != per-level sum %d", s.retained, sum)
	}
	if slicesShareMemory(s.scratch, st.slab) {
		return fmt.Errorf("core: scratch buffer aliases the slab")
	}
	if slicesShareMemory(s.mergeBuf, st.slab) {
		return fmt.Errorf("core: merge staging buffer aliases the slab")
	}
	return nil
}

// slicesShareMemory reports whether the backing arrays of a and b overlap.
// Comparing addresses across allocations is unspecified in the abstract
// machine, so this is strictly a diagnostic (its false negatives/positives
// would require a moving collector); it is exactly what invariant 10 needs
// to catch a scratch buffer leaked into the slab.
func slicesShareMemory[A any](a, b []A) bool {
	if cap(a) == 0 || cap(b) == 0 {
		return false
	}
	var zero A
	size := unsafe.Sizeof(zero)
	aLo := uintptr(unsafe.Pointer(unsafe.SliceData(a)))
	aHi := aLo + uintptr(cap(a))*size
	bLo := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	bHi := bLo + uintptr(cap(b))*size
	return aLo < bHi && bLo < aHi
}

// ForceViewRebuild structurally invalidates the cached view so the next
// SortedView re-runs the full k-way merge (into recycled storage) instead
// of a tail repair. It exists for benchmarks and experiments that compare
// the two paths; production code never needs it.
func (s *Sketch[T]) ForceViewRebuild() { s.markStructural() }

// LevelDebug describes one level for instrumentation dumps.
type LevelDebug struct {
	Level       int
	Weight      uint64
	Items       int
	State       uint64
	Compactions uint64
}

// Levels returns a per-level instrumentation snapshot.
func (s *Sketch[T]) Levels() []LevelDebug {
	out := make([]LevelDebug, len(s.levels))
	for h := range s.levels {
		out[h] = LevelDebug{
			Level:       h,
			Weight:      uint64(1) << uint(h),
			Items:       len(s.levels[h].buf),
			State:       uint64(s.levels[h].state),
			Compactions: s.levels[h].numCompactions,
		}
	}
	return out
}

// DebugString renders the sketch structure as text, reproducing the layout
// of the paper's Figures 1 and 2: one row per relative-compactor with its
// protected half and numbered sections.
func (s *Sketch[T]) DebugString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "REQ sketch: n=%d N=%d k=%d nsec=%d B=%d levels=%d retained=%d\n",
		s.n, s.bound, s.geom.k, s.geom.nsec, s.geom.b, len(s.levels), s.ItemsRetained())
	fmt.Fprintf(&b, "  layout per level: [ protected half: %d items | %d sections × k=%d ]\n",
		s.geom.b/2, s.geom.nsec, s.geom.k)
	for h := len(s.levels) - 1; h >= 0; h-- {
		lv := &s.levels[h]
		fill := ""
		if s.geom.b > 0 {
			cells := 32
			filled := len(lv.buf) * cells / s.geom.b
			fill = strings.Repeat("#", filled) + strings.Repeat(".", cells-filled)
		}
		fmt.Fprintf(&b, "  level %2d  weight 2^%-2d  |%s| %5d/%d items  state=%b compactions=%d\n",
			h, h, fill, len(lv.buf), s.geom.b, uint64(lv.state), lv.numCompactions)
	}
	return b.String()
}
