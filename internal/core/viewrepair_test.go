package core

import (
	"math"
	"testing"

	"req/internal/rng"
)

// Tests for the incremental view-repair path: after appends to level 0
// only, SortedView merges the small sorted tail into the recycled cached
// view instead of re-running the k-way merge. Every repaired view must be
// indistinguishable (same items, same answers) from a from-scratch build.

// checkViewAgainstScratch compares the sketch's cached view to a view built
// from scratch on a clone: identical items and identical answers at every
// retained item and at synthetic probes around them.
func checkViewAgainstScratch(t *testing.T, s *Sketch[float64]) {
	t.Helper()
	v := s.SortedView()
	fresh := s.Clone().SortedView()
	if v.TotalWeight() != fresh.TotalWeight() {
		t.Fatalf("repaired view weight %d != from-scratch %d", v.TotalWeight(), fresh.TotalWeight())
	}
	if len(v.Items()) != len(fresh.Items()) {
		t.Fatalf("repaired view has %d items, from-scratch %d", len(v.Items()), len(fresh.Items()))
	}
	for i := range v.Items() {
		if v.Items()[i] != fresh.Items()[i] {
			t.Fatalf("item %d: repaired %v, from-scratch %v", i, v.Items()[i], fresh.Items()[i])
		}
	}
	for _, y := range v.Items() {
		if v.Rank(y) != fresh.Rank(y) {
			t.Fatalf("repaired Rank(%v) = %d, from-scratch %d", y, v.Rank(y), fresh.Rank(y))
		}
		if v.Rank(y-0.5) != fresh.Rank(y-0.5) {
			t.Fatalf("repaired Rank(%v) = %d, from-scratch %d", y-0.5, v.Rank(y-0.5), fresh.Rank(y-0.5))
		}
	}
	for _, phi := range []float64{1e-9, 0.01, 0.33, 0.5, 0.77, 0.99, 1} {
		a, errA := v.Quantile(phi)
		b, errB := fresh.Quantile(phi)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("repaired Quantile(%v) = %v/%v, from-scratch %v/%v", phi, a, errA, b, errB)
		}
	}
}

func TestViewTailRepairMatchesRebuild(t *testing.T) {
	for _, hra := range []bool{false, true} {
		name := "lra"
		if hra {
			name = "hra"
		}
		t.Run(name, func(t *testing.T) {
			s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 900, HRA: hra})
			r := rng.New(901)
			// Warm the view, then interleave small write bursts with queries
			// so most rebuilds take the tail-repair path (a burst that lands
			// a compaction exercises the structural fallback instead).
			for i := 0; i < 4000; i++ {
				s.Update(math.Floor(r.Float64() * 1000)) // duplicates likely
			}
			s.SortedView()
			for _, burst := range []int{1, 1, 2, 3, 7, 1, 16, 64, 1, 200, 1} {
				for i := 0; i < burst; i++ {
					s.Update(math.Floor(r.Float64() * 1000))
				}
				checkViewAgainstScratch(t, s)
				if err := s.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestViewRepairFallsBackOnStructuralChange(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 902})
	r := rng.New(903)
	for i := 0; i < 5000; i++ {
		s.Update(r.Float64())
	}
	s.SortedView()

	// A weighted update dirties levels above 0: repair must not fire.
	if err := s.UpdateWeighted(0.5, 12); err != nil {
		t.Fatal(err)
	}
	if s.viewStructural == false && s.viewDirty == 1 {
		t.Fatal("weighted update left the view looking tail-repairable")
	}
	checkViewAgainstScratch(t, s)

	// A full buffer's worth of updates forces a compaction: structural.
	s.SortedView()
	for i := 0; i < s.BufferCapacity()+4; i++ {
		s.Update(r.Float64())
	}
	if !s.viewStructural {
		t.Fatal("compaction did not mark the view structural")
	}
	checkViewAgainstScratch(t, s)

	// Reset drops the recycled storage outright.
	s.Reset()
	if s.spare != nil {
		t.Fatal("Reset retained the spare view")
	}
}

func TestViewRepairAcrossBatchAndMerge(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 904})
	r := rng.New(905)
	buf := make([]float64, 0, 64)
	for i := 0; i < 3000; i++ {
		s.Update(r.Float64())
	}
	s.SortedView()
	for round := 0; round < 12; round++ {
		buf = buf[:0]
		for i := 0; i < 1+round*3; i++ {
			buf = append(buf, r.Float64())
		}
		s.UpdateBatch(buf)
		checkViewAgainstScratch(t, s)
	}
	// Merge invalidates structurally; the next build must still be right.
	other := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 906})
	for i := 0; i < 2000; i++ {
		other.Update(r.Float64())
	}
	if err := s.Merge(other); err != nil {
		t.Fatal(err)
	}
	if !s.viewStructural {
		t.Fatal("merge did not mark the view structural")
	}
	checkViewAgainstScratch(t, s)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEytzingerIndexEdgeCases(t *testing.T) {
	// Empty sketch: Freeze is a no-op index-wise; queries behave as before.
	s := newFloat64(t, Config{})
	v := s.Freeze()
	if v.idx.built {
		t.Fatal("index built for an empty view")
	}
	if v.Rank(1) != 0 || v.RankExclusive(1) != 0 {
		t.Fatal("empty view rank != 0")
	}

	// Single item.
	s.Update(5)
	v = s.Freeze()
	if !v.idx.built {
		t.Fatal("index not built")
	}
	for _, tc := range []struct {
		y            float64
		rank, rankEx uint64
	}{{4, 0, 0}, {5, 1, 0}, {6, 1, 1}} {
		if got := v.Rank(tc.y); got != tc.rank {
			t.Errorf("Rank(%v) = %d, want %d", tc.y, got, tc.rank)
		}
		if got := v.RankExclusive(tc.y); got != tc.rankEx {
			t.Errorf("RankExclusive(%v) = %d, want %d", tc.y, got, tc.rankEx)
		}
	}

	// Heavy duplicates at several sizes (including powers of two around the
	// fixup edge) — index answers must match the binary-search path exactly.
	for _, n := range []int{2, 3, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1025} {
		s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: uint64(n)})
		r := rng.New(uint64(n) * 7)
		for i := 0; i < n; i++ {
			s.Update(math.Floor(r.Float64() * 10))
		}
		v := s.SortedView()
		type ans struct{ le, lt uint64 }
		want := make(map[float64]ans)
		for y := -1.0; y <= 11; y += 0.5 {
			want[y] = ans{v.Rank(y), v.RankExclusive(y)}
		}
		s.Freeze()
		for y := -1.0; y <= 11; y += 0.5 {
			if got := (ans{v.Rank(y), v.RankExclusive(y)}); got != want[y] {
				t.Fatalf("n=%d: indexed ranks at %v = %+v, binary %+v", n, y, got, want[y])
			}
		}
		for phi := 0.0; phi <= 1.0; phi += 1.0 / 64 {
			qIdx, err := v.Quantile(phi)
			if err != nil {
				t.Fatal(err)
			}
			vFresh := s.Clone().SortedView() // no index on the clone's view
			qBin, err := vFresh.Quantile(phi)
			if err != nil {
				t.Fatal(err)
			}
			if qIdx != qBin {
				t.Fatalf("n=%d: indexed Quantile(%v) = %v, binary %v", n, phi, qIdx, qBin)
			}
		}
	}
}

func TestBatchQueryEdgeCases(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 910})

	// Empty sketch: ranks are all zero, quantiles error, empty phis do not.
	ranks := s.RankBatch(nil, []float64{1, 2, 3})
	for i, r := range ranks {
		if r != 0 {
			t.Fatalf("empty-sketch RankBatch[%d] = %d", i, r)
		}
	}
	if qs, err := s.QuantilesInto(nil, nil); err != nil || len(qs) != 0 {
		t.Fatalf("empty phis: %v, %v", qs, err)
	}
	if _, err := s.QuantilesInto(nil, []float64{0.5}); err != ErrEmpty {
		t.Fatalf("empty sketch QuantilesInto: %v", err)
	}
	if _, err := s.CDFInto(nil, []float64{1}); err != ErrEmpty {
		t.Fatalf("empty sketch CDFInto: %v", err)
	}

	r := rng.New(911)
	for i := 0; i < 10000; i++ {
		s.Update(r.Float64() * 100)
	}

	// Error propagation.
	if _, err := s.QuantilesInto(nil, []float64{0.5, math.NaN()}); err != ErrBadRank {
		t.Fatalf("NaN phi: %v", err)
	}
	if _, err := s.QuantilesInto(nil, []float64{0.5, -0.1}); err != ErrBadRank {
		t.Fatalf("negative phi: %v", err)
	}
	if _, err := s.CDFInto(nil, []float64{2, 1}); err == nil {
		t.Fatal("unsorted splits accepted")
	}

	// dst reuse: a too-small destination grows, a roomy one is resliced.
	small := make([]uint64, 1)
	out := s.RankBatch(small, []float64{1, 2, 3})
	if len(out) != 3 {
		t.Fatalf("grown dst has length %d", len(out))
	}
	roomy := make([]uint64, 0, 64)
	out = s.RankBatch(roomy, []float64{1, 2, 3})
	if len(out) != 3 || cap(out) != 64 {
		t.Fatalf("roomy dst not reused: len=%d cap=%d", len(out), cap(out))
	}

	// Batch answers equal single answers for sorted, reversed, and random
	// probe orders (PMFInto included).
	probes := make([]float64, 257)
	for i := range probes {
		probes[i] = r.Float64()*110 - 5
	}
	for name, ys := range map[string][]float64{
		"random":   probes,
		"sorted":   sortedCopy(probes),
		"reversed": reversedCopy(probes),
	} {
		got := s.RankBatch(nil, ys)
		for i, y := range ys {
			if want := s.Rank(y); got[i] != want {
				t.Fatalf("%s: RankBatch[%d] = %d, single %d", name, i, got[i], want)
			}
		}
	}
	splits := sortedCopy(probes)
	pmf, err := s.PMFInto(nil, splits)
	if err != nil {
		t.Fatal(err)
	}
	pmfOld, err := s.PMF(splits)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pmf {
		if pmf[i] != pmfOld[i] {
			t.Fatalf("PMFInto[%d] = %v, PMF %v", i, pmf[i], pmfOld[i])
		}
	}
}

func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sortSlice(out, fless)
	return out
}

func reversedCopy(xs []float64) []float64 {
	out := sortedCopy(xs)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
