package core

import (
	"math"
	"strings"
	"testing"

	"req/internal/schedule"
)

func TestNormalizeDefaults(t *testing.T) {
	var c Config
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Eps != DefaultEpsilon || c.Delta != DefaultDelta {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.KHat == 0 {
		t.Fatal("KHat not derived for mergeable mode")
	}
	want := KHatFor(DefaultEpsilon, DefaultDelta)
	if c.KHat != want {
		t.Fatalf("KHat = %v, want %v", c.KHat, want)
	}
}

func TestNormalizeRejectsBadEps(t *testing.T) {
	for _, eps := range []float64{-0.1, 1, 1.5} {
		c := Config{Eps: eps, Delta: 0.1}
		if err := c.Normalize(); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
}

func TestNormalizeRejectsBadDelta(t *testing.T) {
	for _, d := range []float64{-0.1, 0.6, 1} {
		c := Config{Eps: 0.1, Delta: d}
		if err := c.Normalize(); err == nil {
			t.Errorf("delta=%v accepted", d)
		}
	}
}

func TestNormalizeFixedK(t *testing.T) {
	c := Config{Mode: ModeFixedK, K: 32}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 2, 3, 7, -4} {
		c := Config{Mode: ModeFixedK, K: k}
		if err := c.Normalize(); err == nil {
			t.Errorf("fixed k=%d accepted", k)
		}
	}
}

func TestNormalizeRejectsNonPow2N0(t *testing.T) {
	c := Config{N0: 1000}
	if err := c.Normalize(); err == nil {
		t.Fatal("non-power-of-two N0 accepted")
	}
	c = Config{N0: 1024}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeRejectsUnknownMode(t *testing.T) {
	c := Config{Mode: Mode(99)}
	if err := c.Normalize(); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestKHatFor(t *testing.T) {
	// Equation (26): k̂ = ε⁻¹·√log₂(1/δ).
	got := KHatFor(0.01, 0.01)
	want := math.Sqrt(math.Log2(100)) / 0.01
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("KHatFor = %v, want %v", got, want)
	}
}

func TestGeometryEvenK(t *testing.T) {
	for _, mode := range []Mode{ModeMergeable, ModeTheorem2} {
		c := Config{Mode: mode, Eps: 0.033, Delta: 0.07}
		if err := c.Normalize(); err != nil {
			t.Fatal(err)
		}
		for n := uint64(64); n < 1<<40; n <<= 4 {
			g := c.geometryFor(n)
			if g.k%2 != 0 || g.k < 4 {
				t.Fatalf("mode %v n=%d: k=%d not even ≥ 4", mode, n, g.k)
			}
			if g.b != 2*g.k*g.nsec {
				t.Fatalf("mode %v n=%d: b=%d != 2·%d·%d", mode, n, g.b, g.k, g.nsec)
			}
			if g.nsec < 2 {
				t.Fatalf("mode %v n=%d: nsec=%d < 2", mode, n, g.nsec)
			}
		}
	}
}

func TestGeometryMergeableKShrinks(t *testing.T) {
	// Equation (16): k(N) ∝ 1/√log₂(N/k̂), so k must be non-increasing in N.
	c := Config{Mode: ModeMergeable, Eps: 0.01, Delta: 0.01}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	prev := math.MaxInt
	for n := uint64(1 << 10); n <= 1<<50; n <<= 5 {
		g := c.geometryFor(n)
		if g.k > prev {
			t.Fatalf("k grew from %d to %d at N=%d", prev, g.k, n)
		}
		prev = g.k
	}
}

func TestGeometryMergeableBGrowsSlowly(t *testing.T) {
	// B ∝ k·log(N/k) ∝ √log(N): squaring N should multiply B by about √2.
	c := Config{Mode: ModeMergeable, Eps: 0.005, Delta: 0.01}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	b1 := float64(c.geometryFor(1 << 20).b)
	b2 := float64(c.geometryFor(1 << 40).b)
	ratio := b2 / b1
	if ratio < 1.2 || ratio > 1.8 {
		t.Fatalf("B ratio across squaring = %v, want ≈ √2", ratio)
	}
}

func TestGeometryTheorem2KConstant(t *testing.T) {
	c := Config{Mode: ModeTheorem2, Eps: 0.02, Delta: 1e-9}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	k := c.geometryFor(1 << 12).k
	for n := uint64(1 << 12); n < 1<<50; n <<= 6 {
		if got := c.geometryFor(n).k; got != k {
			t.Fatalf("Theorem-2 k changed with N: %d vs %d", got, k)
		}
	}
}

func TestGeometryTheorem2DeltaScaling(t *testing.T) {
	// Equation (15): k ∝ log₂log₂(1/δ) — nearly flat in δ.
	mk := func(delta float64) int {
		c := Config{Mode: ModeTheorem2, Eps: 0.02, Delta: delta}
		if err := c.Normalize(); err != nil {
			t.Fatal(err)
		}
		return c.geometryFor(1 << 30).k
	}
	k1 := mk(0.1)
	k2 := mk(1e-12)
	if k2 < k1 {
		t.Fatalf("k decreased for smaller delta: %d vs %d", k2, k1)
	}
	// log2 log2(1e12) ≈ 5.3 vs log2 log2(10) ≈ 1.7: ratio should stay small.
	if float64(k2)/float64(k1) > 6 {
		t.Fatalf("Theorem-2 k grew too fast with 1/δ: %d vs %d", k2, k1)
	}
}

func TestGeometryPaperConstantsBigger(t *testing.T) {
	small := Config{Mode: ModeMergeable, Eps: 0.05, Delta: 0.05}
	big := Config{Mode: ModeMergeable, Eps: 0.05, Delta: 0.05, PaperConstants: true}
	if err := small.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := big.Normalize(); err != nil {
		t.Fatal(err)
	}
	n := uint64(1 << 24)
	if big.geometryFor(n).k <= small.geometryFor(n).k {
		t.Fatal("paper constants should produce a larger k")
	}
}

func TestInitialBoundFitsGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{Mode: ModeMergeable, Eps: 0.1, Delta: 0.1},
		{Mode: ModeMergeable, Eps: 0.005, Delta: 0.01},
		{Mode: ModeTheorem2, Eps: 0.05, Delta: 1e-6},
		{Mode: ModeFixedK, K: 16},
		{Mode: ModeFixedK, K: 1024},
	} {
		c := cfg
		if err := c.Normalize(); err != nil {
			t.Fatal(err)
		}
		n0 := c.initialBound()
		if n0&(n0-1) != 0 {
			t.Fatalf("%+v: N0=%d not a power of two", cfg, n0)
		}
		g := c.geometryFor(n0)
		if uint64(2*g.b) > n0 && n0 < maxBound {
			t.Fatalf("%+v: N0=%d does not fit 2B=%d", cfg, n0, 2*g.b)
		}
	}
}

func TestInitialBoundPaperConstants(t *testing.T) {
	c := Config{Mode: ModeMergeable, Eps: 0.1, Delta: 0.1, PaperConstants: true}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	// Appendix D: N₀ = 2⁸·k̂ rounded to a power of two.
	want := ceilPow2(uint64(math.Ceil(256 * c.KHat)))
	if got := c.initialBound(); got != want {
		t.Fatalf("paper N0 = %d, want %d", got, want)
	}
}

func TestInitialBoundOverride(t *testing.T) {
	c := Config{N0: 1 << 20}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got := c.initialBound(); got != 1<<20 {
		t.Fatalf("N0 override ignored: %d", got)
	}
}

func TestSquareBound(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{2, 4}, {1024, 1 << 20}, {1 << 30, 1 << 60}, {1 << 31, maxBound}, {maxBound, maxBound},
	}
	for _, c := range cases {
		if got := squareBound(c.in); got != c.want {
			t.Errorf("squareBound(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCeilPow2(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024},
	}
	for _, c := range cases {
		if got := ceilPow2(c.in); got != c.want {
			t.Errorf("ceilPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCompatible(t *testing.T) {
	base := Config{Mode: ModeMergeable, Eps: 0.05, Delta: 0.05}
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	same := base
	if err := base.Compatible(&same); err != nil {
		t.Fatalf("identical configs incompatible: %v", err)
	}
	// Different seeds are fine.
	seeded := base
	seeded.Seed = 99
	if err := base.Compatible(&seeded); err != nil {
		t.Fatalf("different seeds should be compatible: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Config)
		msg    string
	}{
		{"mode", func(c *Config) { c.Mode = ModeFixedK; c.K = 16 }, "mode"},
		{"khat", func(c *Config) { c.KHat = base.KHat * 2 }, "k̂"},
		{"constants", func(c *Config) { c.PaperConstants = true }, "constant"},
		{"schedule", func(c *Config) { c.Schedule = schedule.Naive }, "schedule"},
		{"hra", func(c *Config) { c.HRA = true }, "HRA"},
	}
	for _, c := range cases {
		other := base
		c.mutate(&other)
		err := base.Compatible(&other)
		if err == nil {
			t.Errorf("%s: incompatible configs accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.msg) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.msg)
		}
	}
}

func TestCompatibleFixedK(t *testing.T) {
	a := Config{Mode: ModeFixedK, K: 16}
	b := Config{Mode: ModeFixedK, K: 32}
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := a.Compatible(&b); err == nil {
		t.Fatal("different fixed k accepted")
	}
	c := Config{Mode: ModeFixedK, K: 16, Seed: 5}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := a.Compatible(&c); err != nil {
		t.Fatalf("same fixed k rejected: %v", err)
	}
}

func TestCompatibleTheorem2(t *testing.T) {
	a := Config{Mode: ModeTheorem2, Eps: 0.05, Delta: 0.01}
	b := Config{Mode: ModeTheorem2, Eps: 0.06, Delta: 0.01}
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := a.Compatible(&b); err == nil {
		t.Fatal("different eps accepted in Theorem-2 mode")
	}
}

func TestModeString(t *testing.T) {
	if ModeMergeable.String() != "mergeable" ||
		ModeTheorem2.String() != "theorem2" ||
		ModeFixedK.String() != "fixedk" ||
		Mode(9).String() != "unknown" {
		t.Fatal("Mode.String mismatch")
	}
}
