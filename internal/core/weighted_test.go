package core

import (
	"math"
	"testing"

	"req/internal/rng"
)

func TestWeightedZeroAndOne(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1})
	if err := s.UpdateWeighted(5, 0); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 {
		t.Fatal("weight 0 counted")
	}
	if err := s.UpdateWeighted(5, 1); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 || s.Rank(5) != 1 {
		t.Fatal("weight 1 not equivalent to Update")
	}
}

func TestWeightedCountsAndConservation(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 1})
	r := rng.New(2)
	var total uint64
	for i := 0; i < 3000; i++ {
		w := uint64(1 + r.Intn(50))
		if err := s.UpdateWeighted(r.Float64(), w); err != nil {
			t.Fatal(err)
		}
		total += w
	}
	if s.Count() != total {
		t.Fatalf("count %d != total weight %d", s.Count(), total)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMatchesRepeatedUpdates(t *testing.T) {
	// Same multiset built two ways must produce rank estimates within the
	// guarantee of each other (they use different randomness, so exact
	// equality is not expected).
	const distinct = 2000
	r := rng.New(3)
	weights := make([]uint64, distinct)
	var n float64
	for i := range weights {
		weights[i] = uint64(1 + r.Intn(20))
		n += float64(weights[i])
	}
	weighted := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 4})
	repeated := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 5})
	for i, w := range weights {
		if err := weighted.UpdateWeighted(float64(i), w); err != nil {
			t.Fatal(err)
		}
		for j := uint64(0); j < w; j++ {
			repeated.Update(float64(i))
		}
	}
	if weighted.Count() != repeated.Count() {
		t.Fatal("counts differ")
	}
	var truth uint64
	for i, w := range weights {
		truth += w
		a := float64(weighted.Rank(float64(i)))
		b := float64(repeated.Rank(float64(i)))
		tr := float64(truth)
		if math.Abs(a-tr)/tr > 0.05 {
			t.Fatalf("weighted rank at %d: %v vs truth %v", i, a, tr)
		}
		if math.Abs(b-tr)/tr > 0.05 {
			t.Fatalf("repeated rank at %d: %v vs truth %v", i, b, tr)
		}
	}
}

func TestWeightedHugeWeight(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 6})
	if err := s.UpdateWeighted(1, 1<<40); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateWeighted(2, 1<<40); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1<<41 {
		t.Fatalf("count = %d", s.Count())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := s.Rank(1)
	if math.Abs(float64(got)-float64(uint64(1)<<40))/float64(uint64(1)<<40) > 0.1 {
		t.Fatalf("Rank(1) = %d, want ≈ 2^40", got)
	}
	// The level cap must have kept the structure compact.
	if s.NumLevels() > 45 {
		t.Fatalf("levels = %d", s.NumLevels())
	}
}

func TestWeightedOverflowRejected(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1})
	if err := s.UpdateWeighted(1, maxBound+1); err != ErrWeightOverflow {
		t.Fatalf("giant weight error = %v", err)
	}
	if err := s.UpdateWeighted(1, maxBound); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateWeighted(2, 1); err != ErrWeightOverflow {
		t.Fatalf("overflowing follow-up error = %v", err)
	}
}

func TestWeightedMixedWithUnitUpdates(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 7})
	r := rng.New(8)
	var total uint64
	for i := 0; i < 50000; i++ {
		if i%10 == 0 {
			w := uint64(1 + r.Intn(100))
			if err := s.UpdateWeighted(r.Float64(), w); err != nil {
				t.Fatal(err)
			}
			total += w
		} else {
			s.Update(r.Float64())
			total++
		}
	}
	if s.Count() != total {
		t.Fatalf("count %d != %d", s.Count(), total)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Uniform values: Rank(0.5) ≈ total/2.
	got := float64(s.Rank(0.5))
	if math.Abs(got-float64(total)/2)/(float64(total)/2) > 0.05 {
		t.Fatalf("median rank %v, want ≈ %v", got, float64(total)/2)
	}
}

func TestWeightedMinMax(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1})
	if err := s.UpdateWeighted(10, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateWeighted(-3, 7); err != nil {
		t.Fatal(err)
	}
	mn, _ := s.Min()
	mx, _ := s.Max()
	if mn != -3 || mx != 10 {
		t.Fatalf("min/max %v/%v", mn, mx)
	}
}

func TestWeightedMergeable(t *testing.T) {
	cfg := Config{Eps: 0.05, Delta: 0.05}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	a.cfg.Seed = 1
	b.cfg.Seed = 2
	for i := 0; i < 1000; i++ {
		if err := a.UpdateWeighted(float64(i), 16); err != nil {
			t.Fatal(err)
		}
		if err := b.UpdateWeighted(float64(1000+i), 16); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 32000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := float64(a.Rank(999))
	if math.Abs(got-16000)/16000 > 0.05 {
		t.Fatalf("Rank(999) = %v, want ≈ 16000", got)
	}
}
