package core

import (
	"sort"
	"testing"
	"testing/quick"

	"req/internal/rng"
)

// fless is the canonical order, so every core test exercises the sketch
// with the monomorphic kernel layer active (the generic closure paths are
// covered separately by the kernel differential suite).
var fless = LessF64

func TestSortSliceMatchesStdlib(t *testing.T) {
	f := func(xs []float64) bool {
		mine := append([]float64(nil), xs...)
		std := append([]float64(nil), xs...)
		sortSlice(mine, fless)
		sort.Float64s(std)
		for i := range mine {
			if mine[i] != std[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSortSliceSizes(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 2, 3, insertionThreshold, insertionThreshold + 1, 100, 1000, 10000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		sortSlice(xs, fless)
		if !isSorted(xs, fless) {
			t.Fatalf("sortSlice failed for n=%d", n)
		}
	}
}

func TestSortSliceAdversarialPatterns(t *testing.T) {
	const n = 4096
	patterns := map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(n - i) },
		"constant":   func(i int) float64 { return 42 },
		"sawtooth":   func(i int) float64 { return float64(i % 7) },
		"organpipe": func(i int) float64 {
			if i < n/2 {
				return float64(i)
			}
			return float64(n - i)
		},
	}
	for name, gen := range patterns {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gen(i)
		}
		sortSlice(xs, fless)
		if !isSorted(xs, fless) {
			t.Fatalf("pattern %q not sorted", name)
		}
	}
}

func TestSortSlicePreservesMultiset(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 5000)
	sum := 0.0
	for i := range xs {
		xs[i] = float64(r.Intn(100))
		sum += xs[i]
	}
	sortSlice(xs, fless)
	got := 0.0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("multiset changed: sum %v != %v", got, sum)
	}
}

func TestSortSliceCustomOrder(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	sortSlice(xs, func(a, b float64) bool { return a > b }) // descending
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1] {
			t.Fatalf("descending sort failed: %v", xs)
		}
	}
}

func TestHeapsortDirect(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	heapsort(xs, fless)
	if !isSorted(xs, fless) {
		t.Fatal("heapsort failed")
	}
}

func TestInsertionSortDirect(t *testing.T) {
	xs := []float64{5, 4, 3, 2, 1}
	insertionSort(xs, fless)
	if !isSorted(xs, fless) {
		t.Fatal("insertionSort failed")
	}
}

func TestSearchLE(t *testing.T) {
	xs := []float64{1, 2, 2, 2, 5, 8}
	cases := []struct {
		y    float64
		want int
	}{
		{0, 0}, {1, 1}, {1.5, 1}, {2, 4}, {3, 4}, {5, 5}, {8, 6}, {9, 6},
	}
	for _, c := range cases {
		if got := searchLE(xs, c.y, fless); got != c.want {
			t.Errorf("searchLE(%v) = %d, want %d", c.y, got, c.want)
		}
	}
}

func TestSearchLT(t *testing.T) {
	xs := []float64{1, 2, 2, 2, 5, 8}
	cases := []struct {
		y    float64
		want int
	}{
		{0, 0}, {1, 0}, {1.5, 1}, {2, 1}, {3, 4}, {5, 4}, {8, 5}, {9, 6},
	}
	for _, c := range cases {
		if got := searchLT(xs, c.y, fless); got != c.want {
			t.Errorf("searchLT(%v) = %d, want %d", c.y, got, c.want)
		}
	}
}

func TestSearchEmptySlice(t *testing.T) {
	if searchLE(nil, 1.0, fless) != 0 || searchLT(nil, 1.0, fless) != 0 {
		t.Fatal("search on empty slice must return 0")
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	f := func(xs []float64, y float64) bool {
		sortSlice(xs, fless)
		le, lt := 0, 0
		for _, x := range xs {
			if x <= y {
				le++
			}
			if x < y {
				lt++
			}
		}
		return searchLE(xs, y, fless) == le && searchLT(xs, y, fless) == lt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !isSorted([]float64{1, 2, 3}, fless) {
		t.Fatal("sorted slice reported unsorted")
	}
	if isSorted([]float64{2, 1}, fless) {
		t.Fatal("unsorted slice reported sorted")
	}
	if !isSorted([]float64{1, 1, 1}, fless) {
		t.Fatal("constant slice reported unsorted")
	}
	if !isSorted(nil, fless) {
		t.Fatal("nil slice reported unsorted")
	}
}

func BenchmarkSortSlice(b *testing.B) {
	r := rng.New(1)
	const n = 1024
	base := make([]float64, n)
	for i := range base {
		base[i] = r.Float64()
	}
	xs := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, base)
		sortSlice(xs, fless)
	}
}

func BenchmarkSortSliceStdlib(b *testing.B) {
	r := rng.New(1)
	const n = 1024
	base := make([]float64, n)
	for i := range base {
		base[i] = r.Float64()
	}
	xs := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, base)
		sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
	}
}
