package core

import (
	"errors"

	"req/internal/schedule"
)

// add accumulates o into st field-wise (counters add, high-water max).
func (st *Stats) add(o Stats) {
	st.Compactions += o.Compactions
	st.SpecialCompactions += o.SpecialCompactions
	st.Growths += o.Growths
	st.Merges += o.Merges
	st.CoinFlips += o.CoinFlips
	if o.MaxBufferLen > st.MaxBufferLen {
		st.MaxBufferLen = o.MaxBufferLen
	}
}

// sub subtracts o from st field-wise; MaxBufferLen is left alone.
func (st *Stats) sub(o Stats) {
	st.Compactions -= o.Compactions
	st.SpecialCompactions -= o.SpecialCompactions
	st.Growths -= o.Growths
	st.Merges -= o.Merges
	st.CoinFlips -= o.CoinFlips
}

// Merge absorbs other into s (Algorithm 3, Appendix D). After the call, s
// summarises the concatenation of both inputs with the guarantees of
// Theorem 3; other is left untouched (it is deep-copied internally when its
// buffers must be modified).
//
// The steps follow the paper:
//  1. the taller sketch is the target, the shorter the source;
//  2. if the combined n exceeds the target's bound N, the target receives a
//     special compaction at every level, N squares, and the geometry (k, B)
//     is recomputed — repeated until N ≥ n (a single squaring in all but
//     pathological bound configurations);
//  3. if the source's bound is behind the new N, the source receives a
//     special compaction too (under its own geometry);
//  4. schedule states combine with bitwise OR (Facts 18/19), buffers
//     concatenate level-wise;
//  5. a bottom-up sweep compacts every level holding ≥ B items.
//
// Merging sketches with incompatible configurations (different accuracy
// driver, schedule, constant regime, or rank-accuracy side) is an error.
func (s *Sketch[T]) Merge(other *Sketch[T]) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other == s {
		return errors.New("core: cannot merge a sketch into itself")
	}
	if err := s.cfg.Compatible(&other.cfg); err != nil {
		return err
	}
	s.markStructural()
	if s.n == 0 {
		// Adopt a deep copy of other wholesale, keeping s's seed identity.
		c := other.Clone()
		c.rnd = s.rnd
		c.cfg.Seed = s.cfg.Seed
		*s = *c
		return nil
	}

	// Historical counters of both inputs; deltas accumulated during the
	// merge are reconciled at the end so nothing is double-counted.
	sStats, oStats := s.stats, other.stats

	// Choose target m (taller) and source src (shorter). m is always safe
	// to mutate; the final state is copied into s.
	var m, src *Sketch[T]
	if len(other.levels) > len(s.levels) {
		m = other.Clone()
		// The merged sketch continues s's random stream so that a caller
		// holding s sees deterministic behaviour under a fixed seed.
		m.rnd = s.rnd
		m.cfg.Seed = s.cfg.Seed
		src = s
	} else {
		m = s
		src = other
	}
	mBase, srcBase := m.stats, src.stats
	total := s.n + other.n

	// Step 2: raise the target's bound to cover the combined length.
	if m.bound < total {
		for h := 0; h < len(m.levels)-1; h++ {
			m.specialCompactLevel(h)
		}
		for m.bound < total && m.bound < maxBound {
			m.bound = squareBound(m.bound)
		}
		m.geom = m.cfg.geometryFor(m.bound)
		m.stats.Growths++
	}

	// Step 3: if the source's geometry lags the target's, special-compact
	// the source — on m's reusable staging sketch rather than a fresh deep
	// copy, so repeated merges into a long-lived target stop allocating for
	// this step once the stage's buffers have grown. The stage borrows m's
	// random source for the special compactions (exactly as the old private
	// clone did), keeping the coin stream bit-identical.
	if src.bound < m.bound {
		needsSpecial := false
		for h := 0; h < len(src.levels)-1; h++ {
			if len(src.levels[h].buf) > src.geom.b/2 {
				needsSpecial = true
				break
			}
		}
		if needsSpecial {
			if m.stage == nil {
				m.stage = &Sketch[T]{}
			}
			stage := m.stage
			stage.CopyFrom(src)
			stageRnd := stage.rnd // keep the stage's own source for reuse
			stage.rnd = m.rnd
			for h := 0; h < len(stage.levels)-1; h++ {
				stage.specialCompactLevel(h)
			}
			stage.rnd = stageRnd
			src = stage
		}
	}

	// Step 4: combine states and merge buffers level by level. Both sides
	// hold sorted buffers (source tails are sorted on a copy, the target's
	// are settled in place), so each level is a galloping O(b) merge and the
	// sorted-compactor invariant survives the merge — the bottom-up sweep in
	// step 5 never has to re-sort.
	for h := range src.levels {
		if h >= len(m.levels) {
			m.levels = m.store.addLevel(m.levels, m.geom.b)
		}
		m.settleLevel(h)
		add := src.levels[h].buf
		if sp := src.levels[h].sorted; sp < len(add) {
			// The source is not ours to mutate: settle an unsorted tail on
			// m's reusable scratch buffers (only level 0 carries a tail in
			// practice, and m.scratch is free here — settleLevel above is
			// done with it), so settling allocates nothing once the buffers
			// have grown.
			m.scratch = append(m.scratch[:0], add[sp:]...)
			m.sortInternal(m.scratch)
			m.mergeBuf = append(m.mergeBuf[:0], add[:sp]...)
			m.mergeBuf = m.mergeInternalInto(m.mergeBuf, m.scratch)
			add = m.mergeBuf
		}
		// Widen the target window for the concatenation before merging; the
		// merge then appends strictly within m's slab (add lives in src's
		// slab or m's scratch, never m's slab, so the operands cannot
		// overlap).
		m.store.ensure(m.levels, h, len(m.levels[h].buf)+len(add))
		dst := &m.levels[h]
		dst.state = schedule.Combine(dst.state, src.levels[h].state)
		dst.buf = m.mergeInternalInto(dst.buf, add)
		dst.sorted = len(dst.buf)
		m.retained += len(add)
		if len(dst.buf) > m.stats.MaxBufferLen {
			m.stats.MaxBufferLen = len(dst.buf)
		}
	}
	m.n = total

	if src.hasMinMax {
		if !m.hasMinMax {
			m.min, m.max, m.hasMinMax = src.min, src.max, true
		} else {
			if m.less(src.min, m.min) {
				m.min = src.min
			}
			if m.less(m.max, src.max) {
				m.max = src.max
			}
		}
	}

	// Step 5: bottom-up sweep; compacting level h can push level h+1 over
	// capacity, which the loop reaches next.
	m.compactCascade(0)

	// Reconcile counters: historical(s) + historical(other) + work done
	// during this merge on m and on the source copy.
	merged := sStats
	merged.add(oStats)
	mDelta := m.stats
	mDelta.sub(mBase)
	srcDelta := src.stats
	srcDelta.sub(srcBase)
	merged.add(mDelta)
	merged.add(srcDelta)
	merged.Merges++
	if m.stats.MaxBufferLen > merged.MaxBufferLen {
		merged.MaxBufferLen = m.stats.MaxBufferLen
	}
	m.stats = merged

	if m != s {
		*s = *m
	}
	return nil
}
