// Package core implements the relative-error quantiles sketch of Cormode,
// Karnin, Liberty, Thaler and Veselý, "Relative Error Streaming Quantiles"
// (PODS 2021, arXiv:2004.01668). The sketch maintains, in one pass over a
// stream of items from a totally ordered universe, a weighted coreset from
// which the rank of any item y can be estimated with multiplicative error:
//
//	|R̂(y) − R(y)| ≤ ε·R(y)   with probability 1 − δ,
//
// storing O(ε⁻¹·log^1.5(εn)·√log(1/δ)) items (Theorem 1). The sketch is
// fully mergeable (Theorem 3, Appendix D) and needs no advance knowledge of
// the stream length (Section 5).
//
// The package is deliberately self-contained and allocation-conscious; the
// user-facing API lives in the repository root package req.
package core

import (
	"errors"
	"fmt"
	"math"

	"req/internal/schedule"
)

// Mode selects the rule used to derive the section size k from the accuracy
// parameters and the current stream-length bound N.
type Mode uint8

const (
	// ModeMergeable derives k per Appendix D, equations (16) and (26):
	// k(N) ∝ k̂/√log₂(N/k̂) with k̂ = ε⁻¹·√log₂(1/δ). The section size
	// shrinks (and the buffer grows) as N squares, which yields the
	// Theorem 1 space bound O(ε⁻¹·log^1.5(εn)·√log(1/δ)) and supports
	// arbitrary merging. This is the default mode.
	ModeMergeable Mode = iota

	// ModeTheorem2 derives a constant k per Appendix C, equation (15):
	// k ∝ ε⁻¹·log₂log₂(1/δ). Space is O(ε⁻¹·log²(εn)·log log(1/δ)),
	// preferable for extremely small δ, and with δ ≤ 2^(-n) the error
	// guarantee holds for every random choice, yielding the deterministic
	// O(ε⁻¹·log³(εn)) bound the paper derives from Theorem 17.
	ModeTheorem2

	// ModeFixedK uses a caller-supplied constant section size k, like the
	// production Apache DataSketches REQ sketch. Space grows as
	// O(k·log(n/k)·log n); the error decreases as k grows. This is the
	// practical mode for users who think in terms of sketch size rather
	// than (ε, δ).
	ModeFixedK
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeMergeable:
		return "mergeable"
	case ModeTheorem2:
		return "theorem2"
	case ModeFixedK:
		return "fixedk"
	default:
		return "unknown"
	}
}

// Default accuracy parameters used when the caller specifies nothing.
const (
	DefaultEpsilon = 0.01
	DefaultDelta   = 0.01
)

// Config collects every knob of the sketch. The zero value is not valid;
// call Normalize (or construct through the root req package, which does).
type Config struct {
	// Mode selects the k-derivation rule; see the Mode constants.
	Mode Mode

	// Eps is the multiplicative error target ε ∈ (0, 1).
	Eps float64

	// Delta is the per-item failure probability δ ∈ (0, 0.5].
	Delta float64

	// KHat overrides the accuracy driver k̂ of ModeMergeable. When zero it
	// is derived from Eps and Delta per equation (26): k̂ = ε⁻¹·√log₂(1/δ).
	KHat float64

	// K is the fixed section size for ModeFixedK. Must be even and ≥ 4.
	K int

	// PaperConstants, when true, uses the exact constants of equations
	// (15), (16) and N₀ = 2⁸·k̂ from Appendix D. These constants are chosen
	// for proof convenience and oversize the sketch considerably; the
	// default uses small constants with identical asymptotics.
	PaperConstants bool

	// Schedule selects the compaction schedule. schedule.Exponential is
	// the paper's algorithm; schedule.Naive (always compact half the
	// buffer) is the ablation discussed in Section 2.1.
	Schedule schedule.Kind

	// DetCoin, when true, replaces the fair coin of each compaction with
	// the deterministic choice "always keep even-indexed items". This is
	// an ablation: Observation 4's zero-mean error argument fails and the
	// estimate becomes biased. Used by experiment E12.
	DetCoin bool

	// HRA (high-rank accuracy) reverses the internal ordering so that the
	// relative-error guarantee applies to n − R(y) rather than R(y), i.e.,
	// to the high quantiles (p99, p99.9, ...). Rank and quantile queries
	// still use the caller's order. See Section 1 of the paper.
	HRA bool

	// Seed seeds the sketch's private random source.
	Seed uint64

	// N0 overrides the initial stream-length bound. Zero means automatic:
	// the smallest power of two admitting the initial geometry.
	N0 uint64

	// Shards fixes the shard count of the sharded concurrent wrapper built
	// in the root package. Zero means automatic (GOMAXPROCS-scaled). The
	// core engine itself ignores it — one core.Sketch is always a single
	// unsharded instance — and it does not affect merge compatibility.
	Shards int

	// Registry-layer knobs. Like Shards, these configure the root
	// package's container wrappers (the multi-tenant Registry and
	// WindowedRegistry); the core engine ignores them and they do not
	// affect merge compatibility or serialization.

	// TTLNanos is the keyed-registry idle time-to-live in nanoseconds:
	// entries untouched for at least this long are evictable. Zero means
	// no TTL.
	TTLNanos int64

	// MaxEntries caps the keyed registry's live key count (approximately:
	// the cap is split evenly across shards). Zero means unbounded.
	MaxEntries int

	// WindowSlots is the ring length of the windowed registry: how many
	// slot sub-sketches each key rotates through. Zero selects the
	// windowed registry's default; plain containers ignore it.
	WindowSlots int

	// SlotNanos is the duration of one windowed-registry ring slot in
	// nanoseconds; the covered window is WindowSlots·SlotNanos. Zero
	// selects the default alongside WindowSlots.
	SlotNanos int64

	// Now supplies the registry clock as nanoseconds (TTL bookkeeping and
	// window epoch assignment). Nil means the wall clock; tests inject a
	// synthetic clock to drive eviction and rotation deterministically.
	Now func() int64
}

// Accuracy-parameter sanity caps. These bound the buffer geometry a config
// can demand: decoders hand Normalize attacker-controlled headers, and an
// unchecked k̂ or K flows straight into the capacity of the level slab — a
// 100-byte record must not be able to request a multi-gigabyte (or, via
// float→int overflow, negative-length) allocation. The caps are far beyond
// any honest configuration: MaxKHat corresponds to ε ≈ 3·10⁻¹² and MaxK is
// 4096× the largest K Apache DataSketches accepts.
const (
	// MaxKHat bounds the mergeable-mode accuracy driver k̂.
	MaxKHat = 1e12
	// MaxK bounds the fixed section size of ModeFixedK.
	MaxK = 1 << 26
	// minEps bounds ε below; smaller values drive k beyond MaxKHat anyway.
	minEps = 1e-12
)

// Normalize validates cfg and fills defaults in place. Validation treats
// the config as untrusted (it may come from a decoded header): non-finite
// floats are rejected explicitly — a NaN ε passes range comparisons, then
// poisons every derived quantity — and the accuracy drivers are capped so
// the implied buffer geometry stays allocatable.
func (c *Config) Normalize() error {
	if c.Eps == 0 {
		c.Eps = DefaultEpsilon
	}
	if c.Delta == 0 {
		c.Delta = DefaultDelta
	}
	if math.IsNaN(c.Eps) || c.Eps < minEps || c.Eps >= 1 {
		return fmt.Errorf("core: epsilon %v out of range [%v, 1)", c.Eps, minEps)
	}
	if math.IsNaN(c.Delta) || c.Delta <= 0 || c.Delta > 0.5 {
		return fmt.Errorf("core: delta %v out of range (0, 0.5]", c.Delta)
	}
	switch c.Mode {
	case ModeMergeable:
		if c.KHat == 0 {
			c.KHat = KHatFor(c.Eps, c.Delta)
		}
		if math.IsNaN(c.KHat) || c.KHat < 0 || c.KHat > MaxKHat {
			return fmt.Errorf("core: k̂ %v out of range [0, %v]", c.KHat, float64(MaxKHat))
		}
		if c.KHat < 2 {
			c.KHat = 2
		}
	case ModeTheorem2:
		// k derived on demand; nothing to precompute.
	case ModeFixedK:
		if c.K < 4 {
			return fmt.Errorf("core: fixed k = %d must be ≥ 4", c.K)
		}
		if c.K > MaxK {
			return fmt.Errorf("core: fixed k = %d exceeds cap %d", c.K, MaxK)
		}
		if c.K%2 != 0 {
			return fmt.Errorf("core: fixed k = %d must be even", c.K)
		}
	default:
		return fmt.Errorf("core: unknown mode %d", c.Mode)
	}
	if c.N0 != 0 && c.N0&(c.N0-1) != 0 {
		return errors.New("core: N0 must be a power of two")
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: shard count %d must be non-negative", c.Shards)
	}
	if c.TTLNanos < 0 {
		return fmt.Errorf("core: TTL %d must be non-negative", c.TTLNanos)
	}
	if c.MaxEntries < 0 {
		return fmt.Errorf("core: max entries %d must be non-negative", c.MaxEntries)
	}
	if c.WindowSlots < 0 || c.SlotNanos < 0 {
		return fmt.Errorf("core: window geometry (%d slots × %d ns) must be non-negative", c.WindowSlots, c.SlotNanos)
	}
	return nil
}

// KHatFor returns k̂ per equation (26): k̂ = ε⁻¹·√log₂(1/δ).
func KHatFor(eps, delta float64) float64 {
	return math.Sqrt(math.Log2(1/delta)) / eps
}

// geometry is the concrete shape of every relative-compactor for a given
// stream-length bound N: section size k, number of compactible sections
// nsec, and total buffer capacity b = 2·k·nsec (the bottom half, k·nsec
// items, is never compacted by the exponential schedule).
type geometry struct {
	k    int
	nsec int
	b    int
}

// maxBound caps the stream-length bound so that squaring never overflows.
const maxBound = uint64(1) << 62

// geometryFor computes the compactor geometry for bound N under cfg.
func (c *Config) geometryFor(n uint64) geometry {
	if n < 2 {
		n = 2
	}
	var k int
	var extra int // extra sections beyond ceil(log2(N/k))
	switch c.Mode {
	case ModeMergeable:
		// Equation (16): k(N) = 2⁵·⌈k̂/√log₂(N/k̂)⌉ with an extra section
		// in B. The practical constant is 2 (which also keeps k even).
		x := math.Log2(float64(n) / c.KHat)
		if x < 1 {
			x = 1
		}
		mult := 2
		if c.PaperConstants {
			mult = 32
		}
		k = mult * int(math.Ceil(c.KHat/math.Sqrt(x)))
		extra = 1
	case ModeTheorem2:
		// Equation (15): k = 2⁴·⌈ε⁻¹·log₂log₂(1/δ)⌉; practical constant 2.
		ll := math.Log2(math.Log2(1 / c.Delta))
		if ll < 1 {
			ll = 1
		}
		mult := 2
		if c.PaperConstants {
			mult = 16
		}
		k = mult * int(math.Ceil(ll/c.Eps))
	case ModeFixedK:
		k = c.K
	}
	if k < 4 {
		k = 4
	}
	if k%2 != 0 {
		k++
	}
	nsec := int(math.Ceil(math.Log2(float64(n)/float64(k)))) + extra
	if nsec < 2 {
		nsec = 2
	}
	return geometry{k: k, nsec: nsec, b: 2 * k * nsec}
}

// initialBound returns the starting stream-length bound N₀: either the
// configured value or the smallest power of two whose geometry fits twice
// within it (so level 0 can fill before the first growth).
func (c *Config) initialBound() uint64 {
	if c.N0 != 0 {
		return c.N0
	}
	if c.PaperConstants && c.Mode == ModeMergeable {
		// Appendix D: N₀ = ⌈2⁸·k̂⌉ rounded up to a power of two.
		return ceilPow2(uint64(math.Ceil(256 * c.KHat)))
	}
	n := uint64(64)
	for {
		g := c.geometryFor(n)
		if uint64(2*g.b) <= n || n >= maxBound {
			return n
		}
		n <<= 1
	}
}

// squareBound returns min(n², maxBound) without overflow.
func squareBound(n uint64) uint64 {
	if n >= 1<<31 {
		return maxBound
	}
	s := n * n
	if s > maxBound {
		return maxBound
	}
	return s
}

// CeilPow2 rounds n up to the next power of two (n ≥ 1). The root package
// uses it to translate a known stream length into a valid N₀.
func CeilPow2(n uint64) uint64 { return ceilPow2(n) }

// ceilPow2 rounds n up to the next power of two (n ≥ 1).
func ceilPow2(n uint64) uint64 {
	if n <= 1 {
		return 1
	}
	p := uint64(1)
	for p < n && p < maxBound {
		p <<= 1
	}
	return p
}

// Compatible reports whether two configs may be merged: the accuracy driver
// and all semantics-affecting knobs must agree. Seeds may differ.
func (c *Config) Compatible(o *Config) error {
	switch {
	case c.Mode != o.Mode:
		return fmt.Errorf("core: merge of different modes %v and %v", c.Mode, o.Mode)
	case c.Mode == ModeMergeable && c.KHat != o.KHat:
		return fmt.Errorf("core: merge of different k̂ (%v vs %v)", c.KHat, o.KHat)
	case c.Mode == ModeTheorem2 && (c.Eps != o.Eps || c.Delta != o.Delta):
		return fmt.Errorf("core: merge of different (ε, δ): (%v, %v) vs (%v, %v)", c.Eps, c.Delta, o.Eps, o.Delta)
	case c.Mode == ModeFixedK && c.K != o.K:
		return fmt.Errorf("core: merge of different k (%d vs %d)", c.K, o.K)
	case c.PaperConstants != o.PaperConstants:
		return errors.New("core: merge of different constant regimes")
	case c.Schedule != o.Schedule:
		return errors.New("core: merge of different compaction schedules")
	case c.HRA != o.HRA:
		return errors.New("core: merge of HRA sketch with LRA sketch")
	}
	return nil
}
