package core

import (
	"errors"
	"fmt"
)

// Frozen storage export/import for the snapshot persistence layer.
//
// A Frozen is five parallel arrays (view items + cumulative weights, and
// the Eytzinger index's items/cum/before) plus O(1) scalars. Persisting a
// snapshot is therefore five contiguous array writes, and opening one can
// be five slice aliases over a read-only mapping — no per-item decode. The
// functions here expose exactly that boundary: Parts hands the arrays out
// for writing, FrozenFromParts rebuilds a Frozen around externally owned
// arrays with O(1) structural validation, and VerifyStructure is the O(n)
// deep check callers run when the arrays come from an untrusted file.
//
// Ownership rule (the PR 4/5 aliasing discipline): FrozenFromParts aliases
// the given arrays without copying, so they must be provably frozen — a
// read-only file mapping, or buffers no writer will ever touch again. The
// Frozen never writes through them.

// FrozenParts is the raw storage layout of a Frozen: the sorted view and
// its rank index as five parallel arrays. For a non-empty coreset of ni
// entries, Items/Cum have length ni and the three index arrays have length
// ni+1 (slot 0 of the 1-based Eytzinger layout is unused); all five are
// empty when the coreset is empty. IdxTotal is the total retained weight
// (== Cum[ni-1] == the stream length n).
type FrozenParts[T any] struct {
	Items     []T
	Cum       []uint64
	IdxItems  []T
	IdxCum    []uint64
	IdxBefore []uint64
	IdxTotal  uint64
}

// Parts returns the frozen coreset's storage arrays. The slices alias the
// Frozen's (immutable) storage: read-only, valid as long as the Frozen.
func (f *Frozen[T]) Parts() FrozenParts[T] {
	if !f.v.idx.built {
		// Only an empty Frozen carries no index (FreezeOwned and
		// FrozenFromCoreset build it for any non-empty coreset).
		return FrozenParts[T]{}
	}
	ni := len(f.v.items)
	return FrozenParts[T]{
		Items:     f.v.items,
		Cum:       f.v.cum,
		IdxItems:  f.v.idx.items[: ni+1 : ni+1],
		IdxCum:    f.v.idx.cum[: ni+1 : ni+1],
		IdxBefore: f.v.idx.before[: ni+1 : ni+1],
		IdxTotal:  f.v.idx.total,
	}
}

// FrozenFromParts reconstructs a Frozen directly around the given storage
// arrays WITHOUT copying or decoding: the arrays are aliased as-is, so the
// caller must guarantee they are never written again (read-only mapping
// rule). Validation here is O(1) — length consistency, weight/count
// coherence, min/max bracketing — which is what keeps opening a persisted
// snapshot free of per-item work; run VerifyStructure afterwards when the
// arrays come from an untrusted source and integrity checksums are not
// trusted to have covered them.
func FrozenFromParts[T any](less func(a, b T) bool, cfg Config, n uint64, min, max T, hasMinMax bool, p FrozenParts[T]) (*Frozen[T], error) {
	if less == nil {
		return nil, errors.New("core: nil less function")
	}
	if err := cfg.Normalize(); err != nil {
		return nil, fmt.Errorf("core: parts config: %w", err)
	}
	ni := len(p.Items)
	if len(p.Cum) != ni {
		return nil, fmt.Errorf("core: %d items but %d cumulative weights", ni, len(p.Cum))
	}
	if n == 0 {
		if ni != 0 || p.IdxTotal != 0 {
			return nil, errors.New("core: empty coreset carries items")
		}
		if hasMinMax {
			return nil, errors.New("core: empty coreset carries min/max")
		}
		return &Frozen[T]{v: View[T]{less: less, kern: kernelFor(less)}, cfg: cfg}, nil
	}
	if ni == 0 {
		return nil, errors.New("core: nonempty coreset has no items")
	}
	if !hasMinMax {
		return nil, errors.New("core: nonempty coreset lacks min/max")
	}
	if len(p.IdxItems) != ni+1 || len(p.IdxCum) != ni+1 || len(p.IdxBefore) != ni+1 {
		return nil, fmt.Errorf("core: index arrays sized %d/%d/%d for %d items",
			len(p.IdxItems), len(p.IdxCum), len(p.IdxBefore), ni)
	}
	// Weight conservation and bracketing, all O(1): the last cumulative
	// weight is the whole stream, and min/max bound the retained items.
	if p.Cum[ni-1] != n || p.IdxTotal != n {
		return nil, fmt.Errorf("core: retained weight %d (index %d) != n %d", p.Cum[ni-1], p.IdxTotal, n)
	}
	if less(p.Items[0], min) || less(max, p.Items[ni-1]) {
		return nil, errors.New("core: coreset items outside [min, max]")
	}
	if less(max, min) {
		return nil, errors.New("core: min/max inverted")
	}
	f := &Frozen[T]{cfg: cfg, hasMinMax: true}
	f.v = View[T]{
		items: p.Items[:ni:ni],
		cum:   p.Cum[:ni:ni],
		less:  less,
		kern:  kernelFor(less),
		n:     n,
		min:   min,
		max:   max,
		idx: eytIndex[T]{
			items:  p.IdxItems,
			cum:    p.IdxCum,
			before: p.IdxBefore,
			total:  p.IdxTotal,
			built:  true,
		},
	}
	return f, nil
}

// VerifyStructure deep-checks a Frozen built by FrozenFromParts: items
// sorted ascending, cumulative weights strictly increasing to n, and the
// Eytzinger index an exact mirror of the sorted view (every slot holds the
// in-order item with its cum/before weights). validate, when non-nil, is
// applied to every item (the root package rejects NaN floats with it). The
// walk is read-only and allocation-free; any violation is reported as an
// error, never a panic, so untrusted checksum-valid files cannot plant a
// snapshot that answers queries from inconsistent arrays.
func (f *Frozen[T]) VerifyStructure(validate func(T) error) error {
	v := &f.v
	ni := len(v.items)
	if ni == 0 {
		return nil
	}
	var prev uint64
	for i := 0; i < ni; i++ {
		if validate != nil {
			if err := validate(v.items[i]); err != nil {
				return fmt.Errorf("core: item %d: %w", i, err)
			}
		}
		if i > 0 && v.less(v.items[i], v.items[i-1]) {
			return fmt.Errorf("core: items unsorted at %d", i)
		}
		if v.cum[i] <= prev {
			return fmt.Errorf("core: cumulative weight not increasing at %d", i)
		}
		prev = v.cum[i]
	}
	if prev != v.n {
		return fmt.Errorf("core: retained weight %d != n %d", prev, v.n)
	}
	if !v.idx.built {
		return errors.New("core: nonempty frozen lacks rank index")
	}
	if validate != nil {
		// Slot 0 of the 1-based layout is unused but mapped; a NaN planted
		// there is harmless to queries, yet rejecting it keeps "checksum-valid
		// implies every mapped item is valid" simple and true.
		if err := validate(v.idx.items[0]); err != nil {
			return fmt.Errorf("core: index slot 0: %w", err)
		}
	}
	if pos, err := f.verifyIndexSubtree(1, 0); err != nil {
		return err
	} else if pos != ni {
		return fmt.Errorf("core: index covers %d of %d items", pos, ni)
	}
	return nil
}

// verifyIndexSubtree checks that the subtree rooted at Eytzinger slot k
// mirrors v.items[next:] in-order, returning the advanced position. It is
// the read-only twin of View.fillIndex; recursion depth is ⌈log₂ n⌉.
func (f *Frozen[T]) verifyIndexSubtree(k, next int) (int, error) {
	v := &f.v
	if k > len(v.items) {
		return next, nil
	}
	next, err := f.verifyIndexSubtree(2*k, next)
	if err != nil {
		return next, err
	}
	if a, b := v.idx.items[k], v.items[next]; v.less(a, b) || v.less(b, a) {
		return next, fmt.Errorf("core: index slot %d does not mirror item %d", k, next)
	}
	if v.idx.cum[k] != v.cum[next] {
		return next, fmt.Errorf("core: index cum at slot %d != view cum at %d", k, next)
	}
	wantBefore := uint64(0)
	if next > 0 {
		wantBefore = v.cum[next-1]
	}
	if v.idx.before[k] != wantBefore {
		return next, fmt.Errorf("core: index before-weight at slot %d != view at %d", k, next)
	}
	return f.verifyIndexSubtree(2*k+1, next+1)
}
