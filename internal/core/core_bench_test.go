package core

import (
	"fmt"
	"testing"

	"req/internal/rng"
)

// Micro-benchmarks of the engine's hot paths, complementing the end-to-end
// throughput benches at the repository root.

func BenchmarkCoreUpdate(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = r.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i&(1<<16-1)])
	}
}

// BenchmarkCoreUpdateBatch reports per-item cost of the batch ingest path
// (compare against BenchmarkCoreUpdate).
func BenchmarkCoreUpdateBatch(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(2)
			vals := make([]float64, size)
			for i := range vals {
				vals[i] = r.Float64()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				s.UpdateBatch(vals)
			}
		})
	}
}

// BenchmarkCoreUpdateSortedStream feeds an ascending stream: the sorted-
// prefix extension keeps level 0 settle-free, the best case for the merge-
// based compactor.
func BenchmarkCoreUpdateSortedStream(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(float64(i))
	}
}

func BenchmarkCoreUpdateWeighted(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	vals := make([]float64, 1<<12)
	for i := range vals {
		vals[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.UpdateWeighted(vals[i&(1<<12-1)], 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreRankScan(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Rank(float64(i&1023) / 1024)
	}
	_ = sink
}

// BenchmarkCoreRankFrozen ranks on a frozen sketch: the cached-view fast
// path (two binary searches, no per-level work).
func BenchmarkCoreRankFrozen(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	s.SortedView()
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Rank(float64(i&1023) / 1024)
	}
	_ = sink
}

func BenchmarkCoreSortedViewBuild(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.view = nil // force rebuild
		_ = s.SortedView()
	}
}

func BenchmarkCoreViewRank(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	v := s.SortedView()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += v.Rank(float64(i&1023) / 1024)
	}
	_ = sink
}

func BenchmarkCoreSnapshot(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Snapshot()
	}
}
