package core

import (
	"fmt"
	"testing"

	"req/internal/rng"
)

// Micro-benchmarks of the engine's hot paths, complementing the end-to-end
// throughput benches at the repository root.

func BenchmarkCoreUpdate(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = r.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i&(1<<16-1)])
	}
}

// BenchmarkCoreUpdateBatch reports per-item cost of the batch ingest path
// (compare against BenchmarkCoreUpdate).
func BenchmarkCoreUpdateBatch(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(2)
			vals := make([]float64, size)
			for i := range vals {
				vals[i] = r.Float64()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				s.UpdateBatch(vals)
			}
		})
	}
}

// BenchmarkCoreUpdateSortedStream feeds an ascending stream: the sorted-
// prefix extension keeps level 0 settle-free, the best case for the merge-
// based compactor.
func BenchmarkCoreUpdateSortedStream(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(float64(i))
	}
}

func BenchmarkCoreUpdateWeighted(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	vals := make([]float64, 1<<12)
	for i := range vals {
		vals[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.UpdateWeighted(vals[i&(1<<12-1)], 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreRankScan(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Rank(float64(i&1023) / 1024)
	}
	_ = sink
}

// BenchmarkCoreRankFrozen ranks on a frozen, indexed sketch: the cached-view
// fast path through the branchless Eytzinger index.
func BenchmarkCoreRankFrozen(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	s.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Rank(float64(i&1023) / 1024)
	}
	_ = sink
}

// BenchmarkCoreRankFrozenBinary is the same workload without the Eytzinger
// index (SortedView but no Freeze): a plain binary search on the view, for
// comparison with the indexed path above.
func BenchmarkCoreRankFrozenBinary(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	s.SortedView()
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Rank(float64(i&1023) / 1024)
	}
	_ = sink
}

// BenchmarkCoreSortedViewBuild measures a cold view build: fresh storage,
// full k-way merge (the spare is dropped every iteration).
func BenchmarkCoreSortedViewBuild(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.view, s.spare = nil, nil // force a from-scratch build
		_ = s.SortedView()
	}
}

// BenchmarkCoreViewRebuildReuse measures the full k-way merge rebuilding
// into recycled storage (structural invalidation, steady state: 0 allocs).
func BenchmarkCoreViewRebuildReuse(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	s.SortedView()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.markStructural() // force the full merge, storage recycled
		_ = s.SortedView()
	}
}

// BenchmarkCoreViewRepairTail measures the first query after a small write:
// one update lands on level 0's tail, and SortedView repairs the cached
// view with one linear merge pass instead of the full k-way rebuild.
func BenchmarkCoreViewRepairTail(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	s.SortedView()
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = r.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i&(1<<16-1)])
		_ = s.SortedView()
	}
}

// BenchmarkCoreRankBatch measures batch rank queries per probe on a frozen
// sketch, for random (perm-sorted internally) and pre-sorted probe sets.
func BenchmarkCoreRankBatch(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	s.Freeze()
	for _, size := range []int{16, 64, 1024} {
		probes := make([]float64, size)
		for i := range probes {
			probes[i] = r.Float64()
		}
		sorted := append([]float64(nil), probes...)
		sortSlice(sorted, fless)
		for _, tc := range []struct {
			name string
			ys   []float64
		}{{"random", probes}, {"sorted", sorted}} {
			b.Run(fmt.Sprintf("batch=%d/%s", size, tc.name), func(b *testing.B) {
				dst := make([]uint64, 0, size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i += size {
					dst = s.RankBatch(dst, tc.ys)
				}
			})
		}
	}
}

func BenchmarkCoreViewRank(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	v := s.SortedView()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += v.Rank(float64(i&1023) / 1024)
	}
	_ = sink
}

func BenchmarkCoreSnapshot(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Snapshot()
	}
}

// BenchmarkCoreClone deep-copies a grown sketch. With per-level heap
// buffers this is O(levels) allocations; with the contiguous level store it
// is one slab copy plus the window table.
func BenchmarkCoreClone(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}

// BenchmarkCoreCopyFrom refreshes a long-lived staging sketch from a live
// one — the sharded wrapper's per-epoch restage. Steady state must not
// allocate; the metric of interest is the copy cost itself.
func BenchmarkCoreCopyFrom(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	stage := &Sketch[float64]{}
	stage.CopyFrom(s) // grow the stage's storage once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stage.CopyFrom(s)
	}
}
