package core

import (
	"testing"

	"req/internal/rng"
)

// Micro-benchmarks of the engine's hot paths, complementing the end-to-end
// throughput benches at the repository root.

func BenchmarkCoreUpdate(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i&(1<<16-1)])
	}
}

func BenchmarkCoreUpdateWeighted(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	vals := make([]float64, 1<<12)
	for i := range vals {
		vals[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.UpdateWeighted(vals[i&(1<<12-1)], 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreRankScan(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Rank(float64(i&1023) / 1024)
	}
	_ = sink
}

func BenchmarkCoreSortedViewBuild(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.view = nil // force rebuild
		_ = s.SortedView()
	}
}

func BenchmarkCoreViewRank(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	v := s.SortedView()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += v.Rank(float64(i&1023) / 1024)
	}
	_ = sink
}

func BenchmarkCoreSnapshot(b *testing.B) {
	s, err := New(fless, Config{Eps: 0.01, Delta: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 1<<20; i++ {
		s.Update(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Snapshot()
	}
}
