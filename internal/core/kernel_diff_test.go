package core

import (
	"math"
	"math/rand"
	"testing"
)

// Differential suite for the kernel dispatch layer: a sketch built over the
// canonical LessF64/LessU64 (kernel tables active) must stay bit-identical —
// retained state and every query answer — to a sketch built over a
// non-canonical closure with the same body (generic paths). The vec kernels
// are transcriptions, not re-implementations, so any divergence here is a
// transcription bug, including on adversarial inputs where several "correct"
// answers exist (ties, ±0) and only structural identity pins one down.

// nonCanonLessF64 compares identically to LessF64 but is a distinct
// function, so kernelFor refuses it and the sketch runs the closure paths.
func nonCanonLessF64(a, b float64) bool { return a < b }

func nonCanonLessU64(a, b uint64) bool { return a < b }

func TestKernelForDetection(t *testing.T) {
	if kernelFor[float64](LessF64) == nil {
		t.Fatal("canonical LessF64 did not activate the float64 kernel table")
	}
	if kernelFor[uint64](LessU64) == nil {
		t.Fatal("canonical LessU64 did not activate the uint64 kernel table")
	}
	if kernelFor[float64](nonCanonLessF64) != nil {
		t.Fatal("non-canonical float64 less must not activate kernels")
	}
	if kernelFor[uint64](nonCanonLessU64) != nil {
		t.Fatal("non-canonical uint64 less must not activate kernels")
	}
	if kernelFor[string](func(a, b string) bool { return a < b }) != nil {
		t.Fatal("unsupported element type must not activate kernels")
	}
}

// diffStreamF64 draws a float64 stream with adversarial values mixed in.
// NaN is excluded: raw core sketches assume a total order (the public
// wrappers filter NaN), and NaN in a *sorted structure* has no defined
// behaviour to be identical to. NaN handling of the scan kernels themselves
// is covered by internal/vec's differential tests and the FilterNaN test.
func diffStreamF64(r *rand.Rand, n int) []float64 {
	special := []float64{math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1),
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, 1, -1, 1e300, -1e300}
	xs := make([]float64, n)
	for i := range xs {
		switch r.Intn(6) {
		case 0:
			xs[i] = special[r.Intn(len(special))]
		case 1:
			xs[i] = math.Round(r.NormFloat64() * 3) // heavy ties
		default:
			xs[i] = r.NormFloat64() * 1e3
		}
	}
	return xs
}

func sketchStateEqualF64(t *testing.T, k, g *Sketch[float64]) {
	t.Helper()
	if k.n != g.n || k.bound != g.bound || k.retained != g.retained || len(k.levels) != len(g.levels) {
		t.Fatalf("shape diverged: n %d/%d bound %d/%d retained %d/%d levels %d/%d",
			k.n, g.n, k.bound, g.bound, k.retained, g.retained, len(k.levels), len(g.levels))
	}
	if math.Float64bits(k.min) != math.Float64bits(g.min) || math.Float64bits(k.max) != math.Float64bits(g.max) {
		t.Fatalf("min/max diverged: (%v, %v) vs (%v, %v)", k.min, k.max, g.min, g.max)
	}
	for h := range k.levels {
		kb, gb := k.levels[h].buf, g.levels[h].buf
		if len(kb) != len(gb) {
			t.Fatalf("level %d length diverged: %d vs %d", h, len(kb), len(gb))
		}
		for i := range kb {
			if math.Float64bits(kb[i]) != math.Float64bits(gb[i]) {
				t.Fatalf("level %d item %d diverged: %v vs %v (bits %x vs %x)",
					h, i, kb[i], gb[i], math.Float64bits(kb[i]), math.Float64bits(gb[i]))
			}
		}
		if k.levels[h].state != g.levels[h].state {
			t.Fatalf("level %d schedule state diverged", h)
		}
	}
}

func queriesEqualF64(t *testing.T, k, g *Sketch[float64], probes []float64) {
	t.Helper()
	for _, y := range probes {
		if a, b := k.Rank(y), g.Rank(y); a != b {
			t.Fatalf("Rank(%v) diverged: %d vs %d", y, a, b)
		}
		if a, b := k.RankExclusive(y), g.RankExclusive(y); a != b {
			t.Fatalf("RankExclusive(%v) diverged: %d vs %d", y, a, b)
		}
	}
	kd := k.RankBatch(nil, probes)
	gd := g.RankBatch(nil, probes)
	for i := range kd {
		if kd[i] != gd[i] {
			t.Fatalf("RankBatch[%d] (probe %v) diverged: %d vs %d", i, probes[i], kd[i], gd[i])
		}
	}
	if k.Count() > 0 {
		phis := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		kq, err := k.Quantiles(phis)
		if err != nil {
			t.Fatal(err)
		}
		gq, err := g.Quantiles(phis)
		if err != nil {
			t.Fatal(err)
		}
		for i := range kq {
			if math.Float64bits(kq[i]) != math.Float64bits(gq[i]) {
				t.Fatalf("Quantile(%v) diverged: %v vs %v", phis[i], kq[i], gq[i])
			}
		}
		splits := append([]float64(nil), probes...)
		sortSlice(splits, LessF64)
		kc, err := k.CDF(splits)
		if err != nil {
			t.Fatal(err)
		}
		gc, err := g.CDF(splits)
		if err != nil {
			t.Fatal(err)
		}
		for i := range kc {
			if kc[i] != gc[i] {
				t.Fatalf("CDF[%d] diverged: %v vs %v", i, kc[i], gc[i])
			}
		}
	}
}

func TestKernelDifferentialFloat64(t *testing.T) {
	for _, hra := range []bool{false, true} {
		name := "LRA"
		if hra {
			name = "HRA"
		}
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			cfg := Config{Eps: 0.05, Delta: 0.05, Seed: 99, HRA: hra}
			k, err := New(LessF64, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if k.kern == nil {
				t.Fatal("canonical sketch has no kernel table")
			}
			g, err := New(nonCanonLessF64, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if g.kern != nil {
				t.Fatal("closure sketch unexpectedly has a kernel table")
			}

			stream := diffStreamF64(r, 60000)
			// Interleave single updates, batches, queries (forcing view
			// repair and rebuild), freezes, and merges.
			i := 0
			step := 0
			for i < len(stream) {
				switch step % 6 {
				case 0, 1: // batch ingest
					take := 1 + r.Intn(2000)
					if i+take > len(stream) {
						take = len(stream) - i
					}
					k.UpdateBatch(stream[i : i+take])
					g.UpdateBatch(stream[i : i+take])
					i += take
				case 2: // single updates (exercise the tail-repair path)
					take := 1 + r.Intn(50)
					if i+take > len(stream) {
						take = len(stream) - i
					}
					for _, x := range stream[i : i+take] {
						k.Update(x)
						g.Update(x)
					}
					i += take
				case 3: // queries mid-stream (repair or rebuild the view)
					probes := diffStreamF64(r, 64)
					queriesEqualF64(t, k, g, probes)
				case 4: // freeze (Eytzinger index paths)
					k.Freeze()
					g.Freeze()
					probes := diffStreamF64(r, 100) // ≥ interleaveMinBatch: batch descent
					queriesEqualF64(t, k, g, probes)
				case 5: // merge a second pair in
					ocfg := cfg
					ocfg.Seed = 7
					ok1, err := New(LessF64, ocfg)
					if err != nil {
						t.Fatal(err)
					}
					og, err := New(nonCanonLessF64, ocfg)
					if err != nil {
						t.Fatal(err)
					}
					side := diffStreamF64(r, 3000)
					ok1.UpdateBatch(side)
					og.UpdateBatch(side)
					if err := k.Merge(ok1); err != nil {
						t.Fatal(err)
					}
					if err := g.Merge(og); err != nil {
						t.Fatal(err)
					}
				}
				step++
				sketchStateEqualF64(t, k, g)
			}
			sketchStateEqualF64(t, k, g)
			queriesEqualF64(t, k, g, diffStreamF64(r, 256))

			// Snapshot round-trip restores the kernel table and the state.
			rk, err := FromSnapshot(LessF64, k.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			if rk.kern == nil {
				t.Fatal("FromSnapshot dropped the kernel table")
			}
			sketchStateEqualF64(t, rk, g)

			// Frozen snapshots answer identically too.
			fk := k.FreezeOwned()
			fg := g.FreezeOwned()
			if fk.v.kern == nil {
				t.Fatal("FreezeOwned dropped the kernel table")
			}
			probes := diffStreamF64(r, 128)
			for _, y := range probes {
				if a, b := fk.Rank(y), fg.Rank(y); a != b {
					t.Fatalf("frozen Rank(%v) diverged: %d vs %d", y, a, b)
				}
			}
		})
	}
}

func TestKernelDifferentialUint64(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	cfg := Config{Eps: 0.05, Delta: 0.05, Seed: 5}
	k, err := New(LessU64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k.kern == nil {
		t.Fatal("canonical uint64 sketch has no kernel table")
	}
	g, err := New(nonCanonLessU64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := make([]uint64, 40000)
	for i := range stream {
		switch r.Intn(5) {
		case 0:
			stream[i] = math.MaxUint64 - uint64(r.Intn(4))
		case 1:
			stream[i] = (uint64(1) << 63) + uint64(r.Intn(4)) - 2
		case 2:
			stream[i] = uint64(r.Intn(16)) // heavy ties
		default:
			stream[i] = r.Uint64()
		}
	}
	for i := 0; i < len(stream); {
		take := 1 + r.Intn(3000)
		if i+take > len(stream) {
			take = len(stream) - i
		}
		k.UpdateBatch(stream[i : i+take])
		g.UpdateBatch(stream[i : i+take])
		i += take

		if k.n != g.n || k.retained != g.retained || len(k.levels) != len(g.levels) {
			t.Fatalf("shape diverged at %d items", i)
		}
		for h := range k.levels {
			kb, gb := k.levels[h].buf, g.levels[h].buf
			if len(kb) != len(gb) {
				t.Fatalf("level %d length diverged", h)
			}
			for j := range kb {
				if kb[j] != gb[j] {
					t.Fatalf("level %d item %d diverged: %d vs %d", h, j, kb[j], gb[j])
				}
			}
		}
	}
	k.Freeze()
	g.Freeze()
	probes := make([]uint64, 200)
	for i := range probes {
		probes[i] = r.Uint64()
	}
	kd := k.RankBatch(nil, probes)
	gd := g.RankBatch(nil, probes)
	for i := range kd {
		if kd[i] != gd[i] {
			t.Fatalf("uint64 RankBatch[%d] diverged: %d vs %d", i, kd[i], gd[i])
		}
	}
	for _, phi := range []float64{0, 0.1, 0.5, 0.9, 1} {
		a, err := k.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("uint64 Quantile(%v) diverged: %d vs %d", phi, a, b)
		}
	}
}

// TestKernelViewRepairEquivalence drives the few-writes-between-queries
// pattern hard: the kernel tail-repair (sortCaller + MergeTailCum) must
// leave the view arrays bit-identical to the closure repair.
func TestKernelViewRepairEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	cfg := Config{Eps: 0.1, Delta: 0.1, Seed: 3}
	k, _ := New(LessF64, cfg)
	g, _ := New(nonCanonLessF64, cfg)
	for round := 0; round < 400; round++ {
		m := 1 + r.Intn(5)
		for j := 0; j < m; j++ {
			x := math.Round(r.NormFloat64() * 10)
			k.Update(x)
			g.Update(x)
		}
		kv := k.SortedView()
		gv := g.SortedView()
		if len(kv.items) != len(gv.items) {
			t.Fatalf("round %d: view size diverged: %d vs %d", round, len(kv.items), len(gv.items))
		}
		for i := range kv.items {
			if math.Float64bits(kv.items[i]) != math.Float64bits(gv.items[i]) || kv.cum[i] != gv.cum[i] {
				t.Fatalf("round %d: view entry %d diverged: (%v, %d) vs (%v, %d)",
					round, i, kv.items[i], kv.cum[i], gv.items[i], gv.cum[i])
			}
		}
	}
}

// TestFilterNaNKernel checks the HasNaN fast path preserves FilterNaN's
// exact copy-only-when-dirty contract.
func TestFilterNaNKernel(t *testing.T) {
	clean := []float64{1, math.Inf(-1), 0, math.Copysign(0, -1), 5}
	if got := FilterNaN(clean); &got[0] != &clean[0] {
		t.Fatal("FilterNaN copied a clean slice")
	}
	dirty := []float64{1, math.NaN(), 2, math.NaN(), 3}
	got := FilterNaN(dirty)
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("FilterNaN(%v) = %v", dirty, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FilterNaN(%v) = %v", dirty, got)
		}
	}
	if FilterNaN(nil) != nil {
		t.Fatal("FilterNaN(nil) != nil")
	}
}
