package core

// Generic in-place sorting and searching over a caller-supplied strict weak
// order. The standard library's sort.Slice routes comparisons and swaps
// through reflection, which dominates compaction cost for small element
// types; slices.SortFunc wants a three-way comparator, which would force two
// less-calls per comparison. The sketch only needs an unstable sort, so this
// file implements a plain quicksort (median-of-three pivot, insertion sort
// for short runs, tail-call elimination on the larger half) specialised to a
// less function.

const insertionThreshold = 12

// sortSlice sorts xs in place under less.
func sortSlice[T any](xs []T, less func(a, b T) bool) {
	quicksort(xs, less, maxDepth(len(xs)))
}

// maxDepth returns 2·⌊log₂(n)⌋, the recursion budget before switching to
// heapsort, mirroring the standard introsort safeguard.
func maxDepth(n int) int {
	d := 0
	for i := n; i > 0; i >>= 1 {
		d++
	}
	return 2 * d
}

func quicksort[T any](xs []T, less func(a, b T) bool, depth int) {
	for len(xs) > insertionThreshold {
		if depth == 0 {
			heapsort(xs, less)
			return
		}
		depth--
		p := partition(xs, less)
		// Recurse on the smaller half, loop on the larger: O(log n) stack.
		if p < len(xs)-p-1 {
			quicksort(xs[:p], less, depth)
			xs = xs[p+1:]
		} else {
			quicksort(xs[p+1:], less, depth)
			xs = xs[:p]
		}
	}
	insertionSort(xs, less)
}

// partition performs a Hoare-style partition with a median-of-three pivot
// moved to xs[len-1]; it returns the pivot's final index.
func partition[T any](xs []T, less func(a, b T) bool) int {
	n := len(xs)
	mid := n / 2
	// Order xs[0], xs[mid], xs[n-1] so xs[mid] is the median.
	if less(xs[mid], xs[0]) {
		xs[mid], xs[0] = xs[0], xs[mid]
	}
	if less(xs[n-1], xs[0]) {
		xs[n-1], xs[0] = xs[0], xs[n-1]
	}
	if less(xs[n-1], xs[mid]) {
		xs[n-1], xs[mid] = xs[mid], xs[n-1]
	}
	// Pivot to position n-2 (xs[n-1] already ≥ pivot).
	xs[mid], xs[n-2] = xs[n-2], xs[mid]
	pivot := xs[n-2]
	i, j := 0, n-2
	for {
		i++
		for less(xs[i], pivot) {
			i++
		}
		j--
		for less(pivot, xs[j]) {
			j--
		}
		if i >= j {
			break
		}
		xs[i], xs[j] = xs[j], xs[i]
	}
	xs[i], xs[n-2] = xs[n-2], xs[i]
	return i
}

func insertionSort[T any](xs []T, less func(a, b T) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func heapsort[T any](xs []T, less func(a, b T) bool) {
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(xs, i, n, less)
	}
	for i := n - 1; i > 0; i-- {
		xs[0], xs[i] = xs[i], xs[0]
		siftDown(xs, 0, i, less)
	}
}

func siftDown[T any](xs []T, root, end int, less func(a, b T) bool) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && less(xs[child], xs[child+1]) {
			child++
		}
		if !less(xs[root], xs[child]) {
			return
		}
		xs[root], xs[child] = xs[child], xs[root]
		root = child
	}
}

// isSorted reports whether xs is non-decreasing under less.
//
//req:noalloc
func isSorted[T any](xs []T, less func(a, b T) bool) bool {
	for i := 1; i < len(xs); i++ {
		if less(xs[i], xs[i-1]) {
			return false
		}
	}
	return true
}

// isSortedDesc reports whether xs is non-increasing under less.
//
//req:noalloc
func isSortedDesc[T any](xs []T, less func(a, b T) bool) bool {
	for i := 1; i < len(xs); i++ {
		if less(xs[i-1], xs[i]) {
			return false
		}
	}
	return true
}

// searchLE returns the number of elements in sorted xs that are ≤ y, i.e.,
// the index of the first element strictly greater than y.
//
//req:noalloc
func searchLE[T any](xs []T, y T, less func(a, b T) bool) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(y, xs[mid]) { // xs[mid] > y
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// searchLT returns the number of elements in sorted xs strictly less than y.
//
//req:noalloc
func searchLT[T any](xs []T, y T, less func(a, b T) bool) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(xs[mid], y) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
