package core

// White-box tests of the compaction machinery: emitHalf, compactLevel,
// specialCompactLevel, and the growth path, exercised directly rather than
// through long streams.

import (
	"testing"

	"req/internal/schedule"
)

// mkSketch builds a fixed-k sketch with a known geometry for surgical tests.
func mkSketch(t *testing.T, k int, detCoin bool) *Sketch[float64] {
	t.Helper()
	s, err := New(fless, Config{Mode: ModeFixedK, K: k, DetCoin: detCoin, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// loadLevel0 hand-loads level 0 through the level store (tests used to
// assign a heap slice to levels[0].buf directly, which the slab engine no
// longer permits). Like the old wholesale replacement it leaves the sorted
// prefix at 0; n is not touched, so weight-conservation checks do not apply
// to hand-loaded sketches.
func loadLevel0(s *Sketch[float64], vals ...float64) {
	s.store.ensure(s.levels, 0, len(vals))
	lv := &s.levels[0]
	s.retained += len(vals) - len(lv.buf)
	clear(lv.buf)
	lv.buf = append(lv.buf[:0], vals...)
	lv.sorted = 0
}

// ramp returns [lo, lo+1, …, hi-1] as float64s.
func ramp(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, float64(i))
	}
	return out
}

func TestEmitHalfEvenRegion(t *testing.T) {
	s := mkSketch(t, 4, true)
	// Hand-load level 0 with 8 sorted items and emit everything above 4.
	loadLevel0(s, 1, 2, 3, 4, 5, 6, 7, 8)
	s.emitHalf(0, 4)
	if got := len(s.levels[0].buf); got != 4 {
		t.Fatalf("kept %d items, want 4", got)
	}
	if len(s.levels) < 2 {
		t.Fatal("no next level created")
	}
	next := s.levels[1].buf
	if len(next) != 2 {
		t.Fatalf("emitted %d items, want 2", len(next))
	}
	// DetCoin keeps even offsets: items 5 and 7.
	if next[0] != 5 || next[1] != 7 {
		t.Fatalf("emitted %v, want [5 7]", next)
	}
}

func TestEmitHalfOddRegionShrinks(t *testing.T) {
	s := mkSketch(t, 4, true)
	loadLevel0(s, 1, 2, 3, 4, 5, 6, 7)
	// keep=2 leaves an odd region of 5; the implementation must keep one
	// extra item so the compacted region is even.
	s.emitHalf(0, 2)
	if got := len(s.levels[0].buf); got != 3 {
		t.Fatalf("kept %d items, want 3 (odd adjustment)", got)
	}
	if got := len(s.levels[1].buf); got != 2 {
		t.Fatalf("emitted %d items, want 2", len(s.levels[1].buf))
	}
	// Weight conservation: 3·1 + 2·2 = 7 = original count.
}

func TestEmitHalfEmptyRegion(t *testing.T) {
	s := mkSketch(t, 4, true)
	loadLevel0(s, 1, 2)
	s.emitHalf(0, 2) // nothing above keep
	if len(s.levels[0].buf) != 2 {
		t.Fatal("empty region modified the buffer")
	}
}

func TestCompactLevelFollowsSchedule(t *testing.T) {
	s := mkSketch(t, 4, true)
	b := s.geom.b
	// Fill level 0 exactly to capacity with ascending values.
	loadLevel0(s, ramp(0, b)...)
	state0 := s.levels[0].state
	s.compactLevel(0)
	// First compaction: state 0 → 1 section compacted: k items consumed,
	// k/2 promoted.
	if s.levels[0].state != state0.Next() {
		t.Fatal("state not advanced")
	}
	if got := len(s.levels[0].buf); got != b-s.geom.k {
		t.Fatalf("kept %d, want %d", got, b-s.geom.k)
	}
	if got := len(s.levels[1].buf); got != s.geom.k/2 {
		t.Fatalf("promoted %d, want %d", got, s.geom.k/2)
	}
	// The compacted items must be the largest k (values b-k … b-1); the
	// promoted ones are every other of them.
	for _, v := range s.levels[1].buf {
		if v < float64(b-s.geom.k) {
			t.Fatalf("promoted item %v from protected zone", v)
		}
	}
}

func TestCompactLevelSecondCompactionTakesTwoSections(t *testing.T) {
	s := mkSketch(t, 4, true)
	b := s.geom.b
	fill := func() {
		vals := append([]float64(nil), s.levels[0].buf...)
		for len(vals) < b {
			vals = append(vals, float64(len(vals)))
		}
		loadLevel0(s, vals...)
	}
	fill()
	s.compactLevel(0) // state 0: 1 section
	fill()
	s.compactLevel(0) // state 1: z(1)=1 → 2 sections
	if got := len(s.levels[0].buf); got != b-2*s.geom.k {
		t.Fatalf("after second compaction kept %d, want %d", got, b-2*s.geom.k)
	}
}

func TestSpecialCompactLeavesHalf(t *testing.T) {
	s := mkSketch(t, 4, true)
	b := s.geom.b
	loadLevel0(s, ramp(0, b-1)...)
	if !s.specialCompactLevel(0) {
		t.Fatal("special compaction reported no-op on a full buffer")
	}
	keep := len(s.levels[0].buf)
	if keep != b/2 && keep != b/2+1 {
		t.Fatalf("special compaction kept %d, want B/2=%d (±1 parity)", keep, b/2)
	}
	if s.stats.SpecialCompactions != 1 {
		t.Fatal("special compaction not counted")
	}
}

func TestSpecialCompactNoOpWhenSmall(t *testing.T) {
	s := mkSketch(t, 4, true)
	loadLevel0(s, 1, 2, 3)
	if s.specialCompactLevel(0) {
		t.Fatal("special compaction ran on a small buffer")
	}
	if len(s.levels[0].buf) != 3 {
		t.Fatal("small buffer modified")
	}
}

func TestCompactionProtectsBottomHalf(t *testing.T) {
	// Run many compactions; the smallest B/2 items present at any moment
	// must never be promoted. Verify a weaker, checkable form: the global
	// minimum stays at level 0 forever.
	s := mkSketch(t, 8, false)
	s.Update(-1) // global minimum, first item
	for i := 0; i < 200000; i++ {
		s.Update(float64(i))
	}
	found := false
	for _, v := range s.levels[0].buf {
		if v == -1 {
			found = true
		}
	}
	if !found {
		t.Fatal("global minimum left level 0")
	}
	for h := 1; h < len(s.levels); h++ {
		for _, v := range s.levels[h].buf {
			if v == -1 {
				t.Fatalf("global minimum promoted to level %d", h)
			}
		}
	}
}

func TestCoinOffsetsBothOccur(t *testing.T) {
	// With a fair coin, both parities must occur across compactions.
	s := mkSketch(t, 4, false)
	seenEvenStart := false
	seenOddStart := false
	b := s.geom.b
	for trial := 0; trial < 64 && !(seenEvenStart && seenOddStart); trial++ {
		s2 := mkSketch(t, 4, false)
		s2.rnd.Seed(uint64(trial))
		loadLevel0(s2, ramp(0, b)...)
		s2.compactLevel(0)
		if len(s2.levels) > 1 && len(s2.levels[1].buf) > 0 {
			first := s2.levels[1].buf[0]
			if first == float64(b-s2.geom.k) {
				seenEvenStart = true
			} else if first == float64(b-s2.geom.k+1) {
				seenOddStart = true
			}
		}
	}
	_ = s
	if !seenEvenStart || !seenOddStart {
		t.Fatalf("coin parity not exercised: even=%v odd=%v", seenEvenStart, seenOddStart)
	}
}

func TestNaiveScheduleCompactsHalf(t *testing.T) {
	s, err := New(fless, Config{Mode: ModeFixedK, K: 4, Schedule: schedule.Naive, DetCoin: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := s.geom.b
	loadLevel0(s, ramp(0, b)...)
	s.compactLevel(0)
	if got := len(s.levels[0].buf); got != b/2 {
		t.Fatalf("naive schedule kept %d, want B/2=%d", got, b/2)
	}
}

func TestGrowthRecomputesGeometry(t *testing.T) {
	s, err := New(fless, Config{Eps: 0.1, Delta: 0.1, N0: 1 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b0 := s.geom.b
	bound0 := s.bound
	for i := 0; i < 2000; i++ {
		s.Update(float64(i))
	}
	if s.bound <= bound0 {
		t.Fatal("bound did not grow")
	}
	if s.geom.b <= b0 {
		t.Fatalf("buffer capacity did not grow across bound squaring: %d → %d", b0, s.geom.b)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeCreatesLevels(t *testing.T) {
	s := mkSketch(t, 4, false)
	n := s.geom.b * 8
	for i := 0; i < n; i++ {
		s.Update(float64(i))
	}
	if s.NumLevels() < 3 {
		t.Fatalf("cascade did not build levels: %d", s.NumLevels())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
