package core

// Old-vs-new equivalence: refSketch below is a frozen copy of the
// pre-refactor engine (unsorted buffers, full quicksort at every compaction,
// linear-scan ranks, sort-based view), specialised to float64. The tests run
// it side by side with the sorted-compactor implementation on identical
// seeded streams and assert bit-identical behaviour: same retained items per
// level, same schedule states, same random-stream position (so the same coin
// flips were consumed in the same order), and identical Rank / Quantile /
// CDF answers — including across Merge and stream-length growth.

import (
	"math"
	"sort"
	"testing"

	"req/internal/rng"
	"req/internal/schedule"
)

type refCompactor struct {
	buf   []float64
	state schedule.State
}

type refSketch struct {
	less      func(a, b float64) bool
	cfg       Config
	rnd       *rng.Source
	levels    []refCompactor
	n         uint64
	bound     uint64
	geom      geometry
	min, max  float64
	hasMinMax bool
}

func newRefSketch(t *testing.T, cfg Config) *refSketch {
	t.Helper()
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	r := &refSketch{less: fless, cfg: cfg, rnd: rng.New(cfg.Seed)}
	r.bound = cfg.initialBound()
	r.geom = cfg.geometryFor(r.bound)
	r.levels = make([]refCompactor, 1, 8)
	r.levels[0].buf = make([]float64, 0, r.geom.b)
	return r
}

func (r *refSketch) internalLess(a, b float64) bool {
	if r.cfg.HRA {
		return r.less(b, a)
	}
	return r.less(a, b)
}

func (r *refSketch) update(x float64) {
	if !r.hasMinMax {
		r.min, r.max = x, x
		r.hasMinMax = true
	} else {
		if r.less(x, r.min) {
			r.min = x
		}
		if r.less(r.max, x) {
			r.max = x
		}
	}
	if r.n+1 > r.bound {
		r.growTo(r.n + 1)
	}
	r.levels[0].buf = append(r.levels[0].buf, x)
	r.n++
	if len(r.levels[0].buf) >= r.geom.b {
		r.compactCascade(0)
	}
}

func (r *refSketch) compactCascade(h int) {
	for ; h < len(r.levels); h++ {
		if len(r.levels[h].buf) >= r.geom.b {
			r.compactLevel(h)
		}
	}
}

func (r *refSketch) compactLevel(h int) {
	c := &r.levels[h]
	sortSlice(c.buf, r.internalLess)
	secs := schedule.SectionsFor(r.cfg.Schedule, c.state, r.geom.nsec)
	keep := r.geom.b - secs*r.geom.k
	if keep < 0 {
		keep = 0
	}
	if keep > len(c.buf) {
		keep = len(c.buf)
	}
	r.emitHalf(h, keep)
	c = &r.levels[h]
	c.state = c.state.Next()
}

func (r *refSketch) specialCompactLevel(h int) bool {
	c := &r.levels[h]
	keep := r.geom.b / 2
	if len(c.buf) <= keep {
		return false
	}
	sortSlice(c.buf, r.internalLess)
	r.emitHalf(h, keep)
	c = &r.levels[h]
	c.state = c.state.Next()
	return true
}

func (r *refSketch) emitHalf(h, keep int) {
	c := &r.levels[h]
	if (len(c.buf)-keep)%2 != 0 {
		keep++
	}
	region := c.buf[keep:]
	if len(region) == 0 {
		return
	}
	offset := 0
	if !r.cfg.DetCoin {
		if r.rnd.Coin() {
			offset = 1
		}
	}
	if h+1 >= len(r.levels) {
		r.levels = append(r.levels, refCompactor{buf: make([]float64, 0, r.geom.b)})
		c = &r.levels[h]
		region = c.buf[keep:]
	}
	next := &r.levels[h+1]
	for i := offset; i < len(region); i += 2 {
		next.buf = append(next.buf, region[i])
	}
	c.buf = c.buf[:keep]
}

func (r *refSketch) growTo(need uint64) {
	for r.bound < need {
		for h := 0; h < len(r.levels)-1; h++ {
			r.specialCompactLevel(h)
		}
		r.bound = squareBound(r.bound)
		r.geom = r.cfg.geometryFor(r.bound)
		r.compactCascade(0)
		if r.bound == maxBound {
			return
		}
	}
}

func (r *refSketch) clone() *refSketch {
	c := *r
	c.rnd = rng.New(0)
	c.rnd.Restore(r.rnd.State())
	c.levels = make([]refCompactor, len(r.levels))
	for i := range r.levels {
		c.levels[i] = r.levels[i]
		c.levels[i].buf = append([]float64(nil), r.levels[i].buf...)
	}
	return &c
}

// merge replays the pre-refactor Merge (Algorithm 3 / Appendix D) including
// its exact random-stream handover, minus the instrumentation counters.
func (r *refSketch) merge(o *refSketch) {
	if o == nil || o.n == 0 {
		return
	}
	if r.n == 0 {
		c := o.clone()
		c.rnd = r.rnd
		c.cfg.Seed = r.cfg.Seed
		*r = *c
		return
	}
	var m, src *refSketch
	if len(o.levels) > len(r.levels) {
		m = o.clone()
		m.rnd = r.rnd
		m.cfg.Seed = r.cfg.Seed
		src = r
	} else {
		m = r
		src = o
	}
	total := r.n + o.n
	if m.bound < total {
		for h := 0; h < len(m.levels)-1; h++ {
			m.specialCompactLevel(h)
		}
		for m.bound < total && m.bound < maxBound {
			m.bound = squareBound(m.bound)
		}
		m.geom = m.cfg.geometryFor(m.bound)
	}
	if src.bound < m.bound {
		needsSpecial := false
		for h := 0; h < len(src.levels)-1; h++ {
			if len(src.levels[h].buf) > src.geom.b/2 {
				needsSpecial = true
				break
			}
		}
		if needsSpecial {
			src = src.clone()
			src.rnd = m.rnd
			for h := 0; h < len(src.levels)-1; h++ {
				src.specialCompactLevel(h)
			}
		}
	}
	for h := range src.levels {
		if h >= len(m.levels) {
			m.levels = append(m.levels, refCompactor{buf: make([]float64, 0, m.geom.b)})
		}
		dst := &m.levels[h]
		dst.state = schedule.Combine(dst.state, src.levels[h].state)
		dst.buf = append(dst.buf, src.levels[h].buf...)
	}
	m.n = total
	if src.hasMinMax {
		if !m.hasMinMax {
			m.min, m.max, m.hasMinMax = src.min, src.max, true
		} else {
			if m.less(src.min, m.min) {
				m.min = src.min
			}
			if m.less(m.max, src.max) {
				m.max = src.max
			}
		}
	}
	m.compactCascade(0)
	if m != r {
		*r = *m
	}
}

func (r *refSketch) rank(y float64) uint64 {
	var out uint64
	for h := range r.levels {
		cnt := 0
		for _, x := range r.levels[h].buf {
			if !r.less(y, x) {
				cnt++
			}
		}
		out += uint64(cnt) << uint(h)
	}
	return out
}

func (r *refSketch) rankExclusive(y float64) uint64 {
	var out uint64
	for h := range r.levels {
		cnt := 0
		for _, x := range r.levels[h].buf {
			if r.less(x, y) {
				cnt++
			}
		}
		out += uint64(cnt) << uint(h)
	}
	return out
}

// quantile replays the pre-refactor Sketch.Quantile → View.Quantile chain:
// collect all weighted items, sort, and pick the first with cumulative
// weight ≥ ⌈φ·n⌉.
func (r *refSketch) quantile(phi float64) (float64, bool) {
	if r.n == 0 || math.IsNaN(phi) || phi < 0 || phi > 1 {
		return 0, false
	}
	if phi == 0 {
		return r.min, true
	}
	if phi == 1 {
		return r.max, true
	}
	type wi struct {
		item float64
		w    uint64
	}
	var all []wi
	for h := range r.levels {
		w := uint64(1) << uint(h)
		for _, x := range r.levels[h].buf {
			all = append(all, wi{x, w})
		}
	}
	sort.Slice(all, func(i, j int) bool { return r.less(all[i].item, all[j].item) })
	target := uint64(math.Ceil(phi * float64(r.n)))
	if target == 0 {
		target = 1
	}
	if target > r.n {
		target = r.n
	}
	var run uint64
	for _, e := range all {
		run += e.w
		if run >= target {
			return e.item, true
		}
	}
	return r.max, true
}

// compareSketches asserts the new engine and the reference are in
// bit-identical states and answer identically.
func compareSketches(t *testing.T, s *Sketch[float64], r *refSketch, probes []float64) {
	t.Helper()
	if s.Count() != r.n {
		t.Fatalf("count: new %d, ref %d", s.Count(), r.n)
	}
	if s.Bound() != r.bound {
		t.Fatalf("bound: new %d, ref %d", s.Bound(), r.bound)
	}
	if s.NumLevels() != len(r.levels) {
		t.Fatalf("levels: new %d, ref %d", s.NumLevels(), len(r.levels))
	}
	if s.rnd.State() != r.rnd.State() {
		t.Fatalf("random stream diverged: the implementations consumed different coin sequences")
	}
	if r.hasMinMax {
		mn, _ := s.Min()
		mx, _ := s.Max()
		if mn != r.min || mx != r.max {
			t.Fatalf("min/max: new (%v, %v), ref (%v, %v)", mn, mx, r.min, r.max)
		}
	}
	for h := range r.levels {
		if s.levels[h].state != r.levels[h].state {
			t.Fatalf("level %d state: new %b, ref %b", h, s.levels[h].state, r.levels[h].state)
		}
		a := append([]float64(nil), s.levels[h].buf...)
		b := append([]float64(nil), r.levels[h].buf...)
		sort.Float64s(a)
		sort.Float64s(b)
		if len(a) != len(b) {
			t.Fatalf("level %d size: new %d, ref %d", h, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("level %d item %d: new %v, ref %v", h, i, a[i], b[i])
			}
		}
	}
	for _, y := range probes {
		if got, want := s.Rank(y), r.rank(y); got != want {
			t.Fatalf("Rank(%v): new %d, ref %d", y, got, want)
		}
		if got, want := s.RankExclusive(y), r.rankExclusive(y); got != want {
			t.Fatalf("RankExclusive(%v): new %d, ref %d", y, got, want)
		}
	}
	for _, phi := range []float64{0, 1e-6, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		want, ok := r.quantile(phi)
		got, err := s.Quantile(phi)
		if !ok {
			if err == nil {
				t.Fatalf("Quantile(%v): ref rejected, new accepted", phi)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Quantile(%v): %v", phi, err)
		}
		if got != want {
			t.Fatalf("Quantile(%v): new %v, ref %v", phi, got, want)
		}
	}
	// The quantile loop above froze the sketch's view; ranks must still
	// agree when routed through it (frozen fast path).
	if !s.Frozen() {
		t.Fatal("sketch not frozen after quantile queries")
	}
	for _, y := range probes {
		if got, want := s.Rank(y), r.rank(y); got != want {
			t.Fatalf("frozen Rank(%v): new %d, ref %d", y, got, want)
		}
	}
	verifyViewEngine(t, s, probes)
}

// verifyViewEngine cross-checks the whole read path against itself: the
// cached (possibly incrementally repaired, storage-recycled) view against a
// from-scratch rebuild on a clone, the Eytzinger index against the plain
// binary searches, and every batch API against its single-probe
// counterpart. Called from compareSketches, it runs at intervals across
// streams, merges, growths, clones, and serde round-trips.
func verifyViewEngine(t *testing.T, s *Sketch[float64], probes []float64) {
	t.Helper()
	v := s.SortedView()
	fresh := s.Clone().SortedView() // clone carries no cached view: from scratch
	if len(v.Items()) != len(fresh.Items()) || v.TotalWeight() != fresh.TotalWeight() {
		t.Fatalf("cached view shape (%d items, w=%d) != from-scratch (%d items, w=%d)",
			len(v.Items()), v.TotalWeight(), len(fresh.Items()), fresh.TotalWeight())
	}
	for i, x := range v.Items() {
		if x != fresh.Items()[i] {
			t.Fatalf("cached view item %d = %v, from-scratch %v", i, x, fresh.Items()[i])
		}
	}
	// Cumulative weights may legitimately differ from a from-scratch build
	// only inside runs of tied items (merge order among equal values is not
	// pinned); answers must not. Compare answers at every retained item plus
	// the probes.
	for _, y := range probes {
		if v.Rank(y) != fresh.Rank(y) || v.RankExclusive(y) != fresh.RankExclusive(y) {
			t.Fatalf("cached view rank at %v diverges from from-scratch build", y)
		}
	}
	for _, y := range v.Items() {
		if v.Rank(y) != fresh.Rank(y) {
			t.Fatalf("cached view rank at retained item %v diverges from from-scratch build", y)
		}
	}

	// Eytzinger index vs plain binary search, on the same view.
	binRank := make(map[float64]uint64, len(probes))
	binRankX := make(map[float64]uint64, len(probes))
	for _, y := range probes {
		binRank[y] = v.Rank(y)
		binRankX[y] = v.RankExclusive(y)
	}
	phis := []float64{0, 1e-9, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1}
	binQ := make([]float64, len(phis))
	for i, phi := range phis {
		q, err := v.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		binQ[i] = q
	}
	s.Freeze()
	if !v.idx.built {
		t.Fatal("Freeze did not build the Eytzinger index")
	}
	for _, y := range probes {
		if got := v.Rank(y); got != binRank[y] {
			t.Fatalf("Eytzinger Rank(%v) = %d, binary %d", y, got, binRank[y])
		}
		if got := v.RankExclusive(y); got != binRankX[y] {
			t.Fatalf("Eytzinger RankExclusive(%v) = %d, binary %d", y, got, binRankX[y])
		}
	}
	for i, phi := range phis {
		q, err := v.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if q != binQ[i] {
			t.Fatalf("Eytzinger Quantile(%v) = %v, binary %v", phi, q, binQ[i])
		}
	}

	// Batch APIs vs single probes, in given (unsorted) and sorted order.
	ranks := s.RankBatch(nil, probes)
	nranks := s.NormalizedRankBatch(nil, probes)
	for i, y := range probes {
		if ranks[i] != binRank[y] {
			t.Fatalf("RankBatch[%d] (y=%v) = %d, single %d", i, y, ranks[i], binRank[y])
		}
		want := 0.0
		if s.Count() > 0 {
			want = float64(binRank[y]) / float64(s.Count())
		}
		if nranks[i] != want {
			t.Fatalf("NormalizedRankBatch[%d] = %v, single %v", i, nranks[i], want)
		}
	}
	sortedProbes := append([]float64(nil), probes...)
	sort.Float64s(sortedProbes)
	ranks = s.RankBatch(ranks, sortedProbes) // reuse dst across calls
	for i, y := range sortedProbes {
		if ranks[i] != binRank[y] {
			t.Fatalf("sorted RankBatch[%d] (y=%v) = %d, single %d", i, y, ranks[i], binRank[y])
		}
	}
	qs, err := s.QuantilesInto(nil, phis)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []float64{0.9, 0.001, 1, 0.5, 0, 0.25}
	qs2, err := s.QuantilesInto(nil, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for i, phi := range phis {
		if qs[i] != binQ[i] {
			t.Fatalf("QuantilesInto(%v) = %v, single %v", phi, qs[i], binQ[i])
		}
	}
	for i, phi := range shuffled {
		want, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if qs2[i] != want {
			t.Fatalf("unsorted QuantilesInto(%v) = %v, single %v", phi, qs2[i], want)
		}
	}
	cdf, err := s.CDFInto(nil, sortedProbes)
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range sortedProbes {
		want := float64(binRank[y]) / float64(s.Count())
		if cdf[i] != want {
			t.Fatalf("CDFInto[%d] = %v, want %v", i, cdf[i], want)
		}
	}
	if cdf[len(sortedProbes)] != 1 {
		t.Fatalf("CDFInto tail = %v", cdf[len(sortedProbes)])
	}
}

// equivProbes builds rank probes spanning below, inside, and above the
// stream's value range.
func equivProbes(r *rng.Source, lo, hi float64) []float64 {
	out := []float64{lo - 1, lo, hi, hi + 1}
	for i := 0; i < 24; i++ {
		out = append(out, lo+(hi-lo)*r.Float64())
	}
	return out
}

func TestEquivalenceOldVsNewStream(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		n    int
	}{
		{"eps", Config{Eps: 0.05, Delta: 0.05, Seed: 777}, 60000},
		{"hra", Config{Eps: 0.05, Delta: 0.05, Seed: 778, HRA: true}, 60000},
		{"fixedk", Config{Mode: ModeFixedK, K: 8, Seed: 779}, 40000},
		{"growth", Config{Eps: 0.1, Delta: 0.1, N0: 1 << 8, Seed: 780}, 30000},
		{"detcoin", Config{Eps: 0.1, Delta: 0.1, DetCoin: true, Seed: 781}, 30000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(fless, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefSketch(t, tc.cfg)
			src := rng.New(4242)
			probes := equivProbes(rng.New(99), 0, 6250)
			for i := 0; i < tc.n; i++ {
				// Quantised values so the stream carries duplicates: ties
				// must not break equivalence.
				v := math.Floor(src.Float64()*100000) / 16
				s.Update(v)
				ref.update(v)
				if i%9973 == 0 {
					compareSketches(t, s, ref, probes)
				}
			}
			compareSketches(t, s, ref, probes)
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEquivalenceOldVsNewMerge(t *testing.T) {
	cfg := Config{Eps: 0.08, Delta: 0.1, N0: 1 << 10, Seed: 0}
	mk := func(seed uint64, n int) (*Sketch[float64], *refSketch) {
		c := cfg
		c.Seed = seed
		s, err := New(fless, c)
		if err != nil {
			t.Fatal(err)
		}
		r := newRefSketch(t, c)
		src := rng.New(seed * 31)
		for i := 0; i < n; i++ {
			v := math.Floor(src.Float64() * 1e6)
			s.Update(v)
			r.update(v)
		}
		return s, r
	}
	probes := equivProbes(rng.New(7), 0, 1e6)

	// Short into tall, tall into short, into empty, and a chain of merges
	// crossing a growth boundary — every branch of Algorithm 3.
	sTall, rTall := mk(11, 50000)
	sShort, rShort := mk(22, 800)
	if err := sTall.Merge(sShort); err != nil {
		t.Fatal(err)
	}
	rTall.merge(rShort)
	compareSketches(t, sTall, rTall, probes)

	sShort2, rShort2 := mk(33, 700)
	sTall2, rTall2 := mk(44, 60000)
	if err := sShort2.Merge(sTall2); err != nil {
		t.Fatal(err)
	}
	rShort2.merge(rTall2)
	compareSketches(t, sShort2, rShort2, probes)

	cEmpty := cfg
	cEmpty.Seed = 55
	sEmpty, err := New(fless, cEmpty)
	if err != nil {
		t.Fatal(err)
	}
	rEmpty := newRefSketch(t, cEmpty)
	sDonor, rDonor := mk(66, 20000)
	if err := sEmpty.Merge(sDonor); err != nil {
		t.Fatal(err)
	}
	rEmpty.merge(rDonor)
	compareSketches(t, sEmpty, rEmpty, probes)

	// Chain: the accumulated sketch outgrows its bound repeatedly.
	sAcc, rAcc := mk(77, 400)
	for i := 0; i < 6; i++ {
		sPart, rPart := mk(uint64(100+i), 3000+500*i)
		if err := sAcc.Merge(sPart); err != nil {
			t.Fatal(err)
		}
		rAcc.merge(rPart)
		compareSketches(t, sAcc, rAcc, probes)
	}
	if err := sAcc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalenceSurvivesCloneAndSnapshot(t *testing.T) {
	cfg := Config{Eps: 0.05, Delta: 0.05, Seed: 31337}
	s, err := New(fless, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefSketch(t, cfg)
	src := rng.New(5151)
	for i := 0; i < 30000; i++ {
		v := src.Float64()
		s.Update(v)
		ref.update(v)
	}
	probes := equivProbes(rng.New(8), 0, 1)

	// A serde round-trip and a clone must stay on the identical coin stream
	// and keep answering identically to the reference.
	restored, err := FromSnapshot(fless, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	clone := s.Clone()
	for i := 0; i < 20000; i++ {
		v := src.Float64()
		restored.Update(v)
		clone.Update(v)
		ref.update(v)
	}
	compareSketches(t, restored, ref, probes)
	cloneRef := ref.clone()
	compareSketches(t, clone, cloneRef, probes)
}
