package core

import (
	"errors"
	"fmt"
)

// Frozen is an immutable, concurrency-safe snapshot of a sketch's weighted
// coreset: the sorted view plus its Eytzinger rank index, owning (or, for
// FreezeShared, exclusively aliasing) its storage. Unlike the *View returned
// by SortedView — which the sketch recycles on the next write — a Frozen
// stays valid forever, so it is the type the root package hands to external
// callers as req.Snapshot.
//
// Every method is a pure read: any number of goroutines may query one
// Frozen concurrently, with no synchronization, while the source sketch
// keeps writing.
type Frozen[T any] struct {
	v         View[T]
	cfg       Config
	hasMinMax bool
}

// FreezeOwned captures the sketch's current coreset as a Frozen that owns
// every byte of its storage: the sorted view and its rank index are deep
// copied, so the result shares no mutable state with the sketch and remains
// valid (and concurrency-safe) across any subsequent writes. It freezes the
// sketch as a side effect (view + index materialized), costing O(retained)
// time and space.
//
// Ownership layout: the five logical arrays (view items/cum, index
// items/cum/before) are windows of two slabs — one []T, one []uint64 —
// owned exclusively by the Frozen, so the capture is two allocations and
// five memcpys no matter how large the coreset. The windows are capped
// three-index slices: nothing can append one array into its neighbour.
func (s *Sketch[T]) FreezeOwned() *Frozen[T] {
	src := s.Freeze()
	f := &Frozen[T]{cfg: s.cfg, hasMinMax: s.hasMinMax}
	f.v.less, f.v.kern, f.v.n, f.v.min, f.v.max = src.less, src.kern, src.n, src.min, src.max
	ni := len(src.items)
	if !src.idx.built {
		// Only an empty view skips the index (buildIndex no-ops on it);
		// there is nothing to copy.
		return f
	}
	xi := len(src.idx.items) // ni+1: slot 0 of the 1-based layout is unused
	xc := len(src.idx.cum)
	itemSlab := append(make([]T, 0, ni+xi), src.items...)
	itemSlab = append(itemSlab, src.idx.items...)
	wordSlab := append(make([]uint64, 0, ni+xc+len(src.idx.before)), src.cum...)
	wordSlab = append(wordSlab, src.idx.cum...)
	wordSlab = append(wordSlab, src.idx.before...)
	f.v.items = itemSlab[:ni:ni]
	f.v.cum = wordSlab[:ni:ni]
	f.v.idx = eytIndex[T]{
		items:  itemSlab[ni : ni+xi : ni+xi],
		cum:    wordSlab[ni : ni+xc : ni+xc],
		before: wordSlab[ni+xc:],
		total:  src.idx.total,
		built:  true,
	}
	return f
}

// FreezeShared wraps the sketch's frozen view as a Frozen WITHOUT copying:
// the result aliases the sketch's view and index storage. It is sound only
// when the sketch is never mutated again — the sharded wrapper uses it to
// publish each epoch's freshly merged (and from then on immutable) sketch
// without paying a second copy of the coreset. For a live sketch use
// FreezeOwned instead.
func (s *Sketch[T]) FreezeShared() *Frozen[T] {
	src := s.Freeze()
	return &Frozen[T]{v: *src, cfg: s.cfg, hasMinMax: s.hasMinMax}
}

// FrozenFromCoreset reconstructs a Frozen from a serialized coreset: items
// ascending in less order with per-item weights summing to n. It validates
// structural consistency (ordering, positive weights, weight conservation,
// min/max bracketing) so that untrusted input cannot produce a snapshot
// whose queries misbehave; the items and weights slices are taken over by
// the Frozen (weights is rewritten in place into cumulative form).
func FrozenFromCoreset[T any](less func(a, b T) bool, cfg Config, n uint64, min, max T, hasMinMax bool, items []T, weights []uint64) (*Frozen[T], error) {
	if less == nil {
		return nil, errors.New("core: nil less function")
	}
	if err := cfg.Normalize(); err != nil {
		return nil, fmt.Errorf("core: coreset config: %w", err)
	}
	if len(items) != len(weights) {
		return nil, fmt.Errorf("core: %d items but %d weights", len(items), len(weights))
	}
	if n == 0 {
		if len(items) != 0 {
			return nil, errors.New("core: empty coreset carries items")
		}
		if hasMinMax {
			return nil, errors.New("core: empty coreset carries min/max")
		}
	} else {
		if len(items) == 0 {
			return nil, errors.New("core: nonempty coreset has no items")
		}
		if !hasMinMax {
			return nil, errors.New("core: nonempty coreset lacks min/max")
		}
		if less(items[0], min) || less(max, items[len(items)-1]) {
			return nil, errors.New("core: coreset items outside [min, max]")
		}
	}
	var run uint64
	for i, w := range weights {
		if w == 0 {
			return nil, fmt.Errorf("core: coreset weight %d is zero", i)
		}
		if run+w < run {
			return nil, errors.New("core: coreset weight overflow")
		}
		run += w
		weights[i] = run
		if i > 0 && less(items[i], items[i-1]) {
			return nil, fmt.Errorf("core: coreset items unsorted at %d", i)
		}
	}
	if run != n {
		return nil, fmt.Errorf("core: coreset weight %d != n %d", run, n)
	}
	f := &Frozen[T]{cfg: cfg, hasMinMax: hasMinMax}
	f.v = View[T]{items: items, cum: weights, less: less, kern: kernelFor(less), n: n, min: min, max: max}
	f.v.buildIndex()
	return f, nil
}

// Count returns the total weight summarised (the stream length).
//
//req:noalloc
func (f *Frozen[T]) Count() uint64 { return f.v.n }

// Empty reports whether the snapshot summarises no items.
//
//req:noalloc
func (f *Frozen[T]) Empty() bool { return f.v.n == 0 }

// Min returns the smallest item seen. ok is false when empty.
//
//req:noalloc
func (f *Frozen[T]) Min() (item T, ok bool) { return f.v.min, f.hasMinMax }

// Max returns the largest item seen. ok is false when empty.
//
//req:noalloc
func (f *Frozen[T]) Max() (item T, ok bool) { return f.v.max, f.hasMinMax }

// Config returns the configuration of the source sketch.
func (f *Frozen[T]) Config() Config { return f.cfg }

// Size returns the number of retained coreset entries.
//
//req:noalloc
func (f *Frozen[T]) Size() int { return len(f.v.items) }

// ItemsRetained returns the number of retained coreset entries (alias of
// Size, mirroring the sketch method).
//
//req:noalloc
func (f *Frozen[T]) ItemsRetained() int { return len(f.v.items) }

// Items returns the retained items ascending. Shared storage: read-only.
func (f *Frozen[T]) Items() []T { return f.v.items }

// Weight returns the weight carried by Items()[i].
//
//req:noalloc
func (f *Frozen[T]) Weight(i int) uint64 { return f.v.Weight(i) }

// Rank returns the estimated inclusive rank of y.
//
//req:noalloc
func (f *Frozen[T]) Rank(y T) uint64 { return f.v.Rank(y) }

// RankExclusive returns the estimated exclusive rank of y.
//
//req:noalloc
func (f *Frozen[T]) RankExclusive(y T) uint64 { return f.v.RankExclusive(y) }

// NormalizedRank returns Rank(y)/Count() in [0, 1] (0 when empty).
//
//req:noalloc
func (f *Frozen[T]) NormalizedRank(y T) float64 {
	if f.v.n == 0 {
		return 0
	}
	return float64(f.v.Rank(y)) / float64(f.v.n)
}

// RankBatch answers Rank for every probe in ys, writing into dst (grown as
// needed) in probe order; see View.RankBatch.
func (f *Frozen[T]) RankBatch(dst []uint64, ys []T) []uint64 { return f.v.RankBatch(dst, ys) }

// NormalizedRankBatch is RankBatch normalized by Count().
func (f *Frozen[T]) NormalizedRankBatch(dst []float64, ys []T) []float64 {
	return f.v.NormalizedRankBatch(dst, ys)
}

// Quantile returns the item at normalized rank phi; see View.Quantile.
func (f *Frozen[T]) Quantile(phi float64) (T, error) { return f.v.Quantile(phi) }

// Quantiles returns the items at each normalized rank (allocating wrapper
// over QuantilesInto).
func (f *Frozen[T]) Quantiles(phis []float64) ([]T, error) { return f.v.QuantilesInto(nil, phis) }

// QuantilesInto answers every normalized rank in phis, writing into dst.
func (f *Frozen[T]) QuantilesInto(dst []T, phis []float64) ([]T, error) {
	return f.v.QuantilesInto(dst, phis)
}

// CDF returns the estimated normalized ranks at each ascending split point
// (allocating wrapper over CDFInto).
func (f *Frozen[T]) CDF(splits []T) ([]float64, error) { return f.v.CDFInto(nil, splits) }

// CDFInto is CDF writing into dst (grown as needed).
func (f *Frozen[T]) CDFInto(dst []float64, splits []T) ([]float64, error) {
	return f.v.CDFInto(dst, splits)
}

// PMF returns the estimated probability mass of each interval delimited by
// the ascending split points (allocating wrapper over PMFInto).
func (f *Frozen[T]) PMF(splits []T) ([]float64, error) { return f.PMFInto(nil, splits) }

// PMFInto is PMF writing into dst (grown as needed).
func (f *Frozen[T]) PMFInto(dst []float64, splits []T) ([]float64, error) {
	return f.v.PMFInto(dst, splits)
}
