package core

// Golden regression tests: fixed seed + fixed input must keep producing
// byte-identical behaviour across refactors. If one of these fails after an
// intentional algorithm change, regenerate the constants and note the
// behaviour change in the commit — these exist to make silent changes loud.

import (
	"testing"

	"req/internal/rng"
)

func goldenSketch(t *testing.T) *Sketch[float64] {
	t.Helper()
	s, err := New(fless, Config{Eps: 0.05, Delta: 0.05, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(67890)
	for _, v := range r.Perm(100000) {
		s.Update(float64(v))
	}
	return s
}

func TestGoldenStructure(t *testing.T) {
	s := goldenSketch(t)
	if got := s.Count(); got != 100000 {
		t.Fatalf("count = %d", got)
	}
	if got := s.NumLevels(); got != 8 {
		t.Fatalf("levels = %d, want 8 (regenerate goldens if intentional)", got)
	}
	if got := s.ItemsRetained(); got != 5118 {
		t.Fatalf("retained = %d, want 5118 (regenerate goldens if intentional)", got)
	}
	if got := s.K(); got != 22 {
		t.Fatalf("k = %d, want 22", got)
	}
	if got := s.BufferCapacity(); got != 748 {
		t.Fatalf("B = %d, want 748", got)
	}
	if got := s.Bound(); got != 1048576 {
		t.Fatalf("bound = %d, want 2^20", got)
	}
}

func TestGoldenRanks(t *testing.T) {
	s := goldenSketch(t)
	// Estimated ranks at fixed probes, captured at implementation time.
	want := map[float64]uint64{
		99:    100,
		999:   1000,
		9999:  10015,
		49999: 49971,
		99999: 100000,
	}
	for y, wantRank := range want {
		if got := s.Rank(y); got != wantRank {
			t.Errorf("Rank(%v) = %d, want %d (regenerate goldens if intentional)", y, got, wantRank)
		}
	}
}

func TestGoldenStats(t *testing.T) {
	s := goldenSketch(t)
	st := s.Stats()
	if st.Compactions != 3779 {
		t.Fatalf("compactions = %d, want 3779", st.Compactions)
	}
	if st.Growths != 1 {
		t.Fatalf("growths = %d, want 1", st.Growths)
	}
	if st.SpecialCompactions != 1 {
		t.Fatalf("special = %d, want 1", st.SpecialCompactions)
	}
}

func TestGoldenRNGSequence(t *testing.T) {
	// The splitmix64 stream itself: changing it silently would invalidate
	// every recorded experiment.
	r := rng.New(1)
	want := []uint64{
		0x910a2dec89025cc1,
		0xbeeb8da1658eec67,
		0xf893a2eefb32555e,
		0x71c18690ee42c90b,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d = %#x, want %#x", i, got, w)
		}
	}
}
