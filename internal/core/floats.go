package core

import (
	"math"

	"req/internal/vec"
)

// HasNaN reports whether vs contains a NaN, by the same dispatched scan
// FilterNaN uses for its all-clean fast path. The pair-filtering ingest
// fronts use it to decide whether a tandem compaction pass is needed at
// all.
func HasNaN(vs []float64) bool { return vec.HasNaN(vs) }

// FilterNaNPairsInto appends onto kdst/vdst every (key, value) pair of
// (keys, vs) whose value is not NaN, returning the extended slices — the
// pairwise form of FilterNaN for the batched keyed-ingest path, where
// dropping a value must drop its key in tandem to keep the arrays parallel.
// Callers own kdst/vdst (typically pooled scratch) and pass them truncated.
func FilterNaNPairsInto[K any](kdst []K, vdst []float64, keys []K, vs []float64) ([]K, []float64) {
	for i, v := range vs {
		if !math.IsNaN(v) {
			kdst = append(kdst, keys[i])
			vdst = append(vdst, v)
		}
	}
	return kdst, vdst
}

// FilterNaN returns vs without NaN values, copying only when at least one
// NaN is present (NaN has no place in a total order). It is shared by the
// public float64 wrappers and the experiment-harness adapter so the
// batch-ingest NaN policy lives in exactly one place. The common all-clean
// case is answered by one branch-free (AVX2-dispatched on capable amd64)
// scan before any per-element IsNaN test runs.
func FilterNaN(vs []float64) []float64 {
	if !vec.HasNaN(vs) {
		return vs
	}
	for i, v := range vs {
		if math.IsNaN(v) {
			clean := make([]float64, 0, len(vs)-1)
			clean = append(clean, vs[:i]...)
			for _, w := range vs[i+1:] {
				if !math.IsNaN(w) {
					clean = append(clean, w)
				}
			}
			return clean
		}
	}
	return vs
}
