package core

import (
	"math"

	"req/internal/vec"
)

// FilterNaN returns vs without NaN values, copying only when at least one
// NaN is present (NaN has no place in a total order). It is shared by the
// public float64 wrappers and the experiment-harness adapter so the
// batch-ingest NaN policy lives in exactly one place. The common all-clean
// case is answered by one branch-free (AVX2-dispatched on capable amd64)
// scan before any per-element IsNaN test runs.
func FilterNaN(vs []float64) []float64 {
	if !vec.HasNaN(vs) {
		return vs
	}
	for i, v := range vs {
		if math.IsNaN(v) {
			clean := make([]float64, 0, len(vs)-1)
			clean = append(clean, vs[:i]...)
			for _, w := range vs[i+1:] {
				if !math.IsNaN(w) {
					clean = append(clean, w)
				}
			}
			return clean
		}
	}
	return vs
}
