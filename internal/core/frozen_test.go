package core

import (
	"sync"
	"testing"
)

// buildFrozenSource returns a sketch that has seen enough of a stream to
// have multiple levels, plus the probe grid the tests compare on.
func buildFrozenSource(t *testing.T, n int) (*Sketch[float64], []float64) {
	t.Helper()
	s, err := New(fless, Config{Eps: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s.Update(float64((i * 7919) % n))
	}
	probes := make([]float64, 0, 64)
	for i := 0; i < 64; i++ {
		probes = append(probes, float64(i*n)/64)
	}
	return s, probes
}

// TestFreezeOwnedMatchesLive pins the core contract: a Frozen answers every
// query bit-identically to the live sketch at capture time, and keeps those
// answers after the sketch mutates.
func TestFreezeOwnedMatchesLive(t *testing.T) {
	s, probes := buildFrozenSource(t, 50000)
	f := s.FreezeOwned()

	type answers struct {
		ranks  []uint64
		excl   []uint64
		quants []float64
		cdf    []float64
	}
	capture := func(rank func(float64) uint64, rankEx func(float64) uint64,
		quant func(float64) (float64, error), cdf func([]float64) ([]float64, error)) answers {
		var a answers
		for _, p := range probes {
			a.ranks = append(a.ranks, rank(p))
			a.excl = append(a.excl, rankEx(p))
		}
		for _, phi := range []float64{0, 0.1, 0.5, 0.99, 1} {
			q, err := quant(phi)
			if err != nil {
				t.Fatal(err)
			}
			a.quants = append(a.quants, q)
		}
		c, err := cdf(probes)
		if err != nil {
			t.Fatal(err)
		}
		a.cdf = c
		return a
	}
	live := capture(s.Rank, s.RankExclusive, s.Quantile, s.CDF)
	froz := capture(f.Rank, f.RankExclusive, f.Quantile, func(sp []float64) ([]float64, error) { return f.CDF(sp) })

	for i := range live.ranks {
		if live.ranks[i] != froz.ranks[i] || live.excl[i] != froz.excl[i] {
			t.Fatalf("rank mismatch at probe %d: live %d/%d frozen %d/%d",
				i, live.ranks[i], live.excl[i], froz.ranks[i], froz.excl[i])
		}
	}
	for i := range live.quants {
		if live.quants[i] != froz.quants[i] {
			t.Fatalf("quantile mismatch: live %v frozen %v", live.quants[i], froz.quants[i])
		}
	}
	for i := range live.cdf {
		if live.cdf[i] != froz.cdf[i] {
			t.Fatalf("cdf mismatch at %d: live %v frozen %v", i, live.cdf[i], froz.cdf[i])
		}
	}

	// Mutate the source heavily (growth + compactions); the frozen answers
	// must not move.
	n0, retained0 := f.Count(), f.Size()
	for i := 0; i < 200000; i++ {
		s.Update(float64(i))
	}
	s.Reset()
	for i := 0; i < 1000; i++ {
		s.Update(-float64(i))
	}
	if f.Count() != n0 || f.Size() != retained0 {
		t.Fatalf("frozen state moved: n %d->%d retained %d->%d", n0, f.Count(), retained0, f.Size())
	}
	again := capture(f.Rank, f.RankExclusive, f.Quantile, func(sp []float64) ([]float64, error) { return f.CDF(sp) })
	for i := range live.ranks {
		if live.ranks[i] != again.ranks[i] {
			t.Fatalf("frozen rank drifted after source mutation at probe %d", i)
		}
	}
}

// TestFrozenConcurrentReads hammers one Frozen from many goroutines while
// the source sketch keeps writing — the -race proof of the ownership claim.
func TestFrozenConcurrentReads(t *testing.T) {
	s, probes := buildFrozenSource(t, 20000)
	f := s.FreezeOwned()
	want := f.Rank(probes[32])
	var wg sync.WaitGroup
	wg.Add(9)
	go func() {
		defer wg.Done()
		for i := 0; i < 50000; i++ {
			s.Update(float64(i))
		}
	}()
	for g := 0; g < 8; g++ {
		go func() {
			defer wg.Done()
			dst := make([]uint64, 0, len(probes))
			qdst := make([]float64, 0, 8)
			for i := 0; i < 2000; i++ {
				if f.Rank(probes[32]) != want {
					panic("frozen answer changed")
				}
				dst = f.RankBatch(dst, probes)
				var err error
				qdst, err = f.QuantilesInto(qdst, []float64{0.1, 0.5, 0.9})
				if err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
}

// TestFrozenEmpty checks the degenerate surface.
func TestFrozenEmpty(t *testing.T) {
	s, err := New(fless, Config{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	f := s.FreezeOwned()
	if !f.Empty() || f.Count() != 0 || f.Size() != 0 {
		t.Fatal("empty frozen misreports")
	}
	if _, ok := f.Min(); ok {
		t.Fatal("empty frozen has min")
	}
	if f.Rank(3) != 0 || f.NormalizedRank(3) != 0 {
		t.Fatal("empty frozen rank != 0")
	}
	if _, err := f.Quantile(0.5); err != ErrEmpty {
		t.Fatalf("empty frozen quantile err = %v", err)
	}
}

// TestFrozenFromCoresetRoundTrip re-creates a Frozen from its own exported
// coreset and checks identical answers; then exercises the validator's
// rejection paths.
func TestFrozenFromCoresetRoundTrip(t *testing.T) {
	s, probes := buildFrozenSource(t, 30000)
	f := s.FreezeOwned()
	items := append([]float64(nil), f.Items()...)
	weights := make([]uint64, len(items))
	for i := range weights {
		weights[i] = f.Weight(i)
	}
	mn, _ := f.Min()
	mx, _ := f.Max()
	g, err := FrozenFromCoreset(fless, f.Config(), f.Count(), mn, mx, true,
		append([]float64(nil), items...), append([]uint64(nil), weights...))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probes {
		if f.Rank(p) != g.Rank(p) || f.RankExclusive(p) != g.RankExclusive(p) {
			t.Fatalf("round-tripped coreset disagrees at %v", p)
		}
	}
	for _, phi := range []float64{0, 0.25, 0.5, 0.999, 1} {
		a, _ := f.Quantile(phi)
		b, _ := g.Quantile(phi)
		if a != b {
			t.Fatalf("round-tripped quantile(%v): %v vs %v", phi, a, b)
		}
	}

	bad := func(name string, mutate func(items []float64, weights []uint64) (uint64, float64, float64, bool)) {
		is := append([]float64(nil), items...)
		ws := append([]uint64(nil), weights...)
		n, lo, hi, hasMM := mutate(is, ws)
		if _, err := FrozenFromCoreset(fless, f.Config(), n, lo, hi, hasMM, is, ws); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	bad("weight mismatch", func(is []float64, ws []uint64) (uint64, float64, float64, bool) {
		return f.Count() + 1, mn, mx, true
	})
	bad("zero weight", func(is []float64, ws []uint64) (uint64, float64, float64, bool) {
		ws[0] = 0
		return f.Count(), mn, mx, true
	})
	bad("unsorted items", func(is []float64, ws []uint64) (uint64, float64, float64, bool) {
		is[0], is[1] = is[1]+1, is[0]
		return f.Count(), mn, mx, true
	})
	bad("item below min", func(is []float64, ws []uint64) (uint64, float64, float64, bool) {
		return f.Count(), mn + 1, mx, true
	})
	bad("missing min/max", func(is []float64, ws []uint64) (uint64, float64, float64, bool) {
		return f.Count(), mn, mx, false
	})
}

// TestFreezeSharedAliases pins FreezeShared's contract: same answers, no
// copy of the coreset arrays.
func TestFreezeSharedAliases(t *testing.T) {
	s, probes := buildFrozenSource(t, 20000)
	f := s.FreezeShared()
	v := s.Freeze()
	if len(f.Items()) != v.Size() {
		t.Fatal("shared frozen size mismatch")
	}
	if &f.Items()[0] != &v.Items()[0] {
		t.Fatal("FreezeShared copied the view storage")
	}
	for _, p := range probes {
		if f.Rank(p) != v.Rank(p) {
			t.Fatalf("shared frozen disagrees with view at %v", p)
		}
	}
}
