package core

import "req/internal/vec"

// kernelF64 is the float64 kernel table: internal/vec's generic kernels
// stenciled at float64 (the compiler emits separate machine code with `<`
// inlined for each Elem instantiation — effectively monomorphic), plus the
// AVX2-dispatched count scans. Installed by New and the deserialization
// constructors whenever the sketch's order is the canonical LessF64.
var kernelF64 = kernelTable[float64]{
	sortAsc:  vec.SortAsc[float64],
	sortDesc: vec.SortDesc[float64],

	mergeAsc:  vec.MergeIntoAsc[float64],
	mergeDesc: vec.MergeIntoDesc[float64],

	searchLE:    vec.SearchLE[float64],
	searchLT:    vec.SearchLT[float64],
	countLEDesc: vec.CountLEDesc[float64],
	countLTDesc: vec.CountLTDesc[float64],

	countLE: vec.CountLEF64,
	countLT: vec.CountLTF64,

	gallopLE:     vec.GallopLE[float64],
	isSortedAsc:  vec.IsSortedAsc[float64],
	isSortedDesc: vec.IsSortedDesc[float64],
	minMax:       vec.MinMax[float64],
	extendAsc:    vec.ExtendRunAsc[float64],
	extendDesc:   vec.ExtendRunDesc[float64],

	mergeTailCum: vec.MergeTailCum[float64],
	kway:         vec.KWayMerge[float64],

	eytRankLE:    vec.EytRankLE[float64],
	eytRankGE:    vec.EytRankGE[float64],
	eytRankBatch: vec.EytRankBatch[float64],
}
