package core

import (
	"errors"
	"math/bits"
)

// ErrWeightOverflow is returned when a weighted update would push the total
// stream length past the representable bound.
var ErrWeightOverflow = errors.New("core: weighted update overflows stream length")

// UpdateWeighted inserts x with integer weight, equivalent to weight
// repeated Updates but in O(popcount + B) buffer insertions instead of
// O(weight).
//
// This is an extension beyond the paper (which treats unit updates; the
// trick mirrors weighted updates in KLL implementations): since items at
// level h carry weight 2^h, a weight-w item decomposes in binary and enters
// level h once per set bit h. Inserting at level h is exactly equivalent to
// an item that survived h compactions without ever being the error item, so
// all invariants — exact weight conservation in particular — are preserved,
// and rank estimates treat the insertion identically to w unit copies.
//
// To keep the level count within Observation 13's bound, bits above
// h_max ≈ log₂(n′/(B/2)) (n′ the new total weight) are folded into up to
// ~B/2 copies at h_max rather than opening deeper levels.
func (s *Sketch[T]) UpdateWeighted(x T, weight uint64) error {
	if weight == 0 {
		return nil
	}
	if weight > maxBound || s.n > maxBound-weight {
		return ErrWeightOverflow
	}
	if weight == 1 {
		s.Update(x)
		return nil
	}
	// Per-level view invalidation happens in insertAtLevel (each touched
	// level marks its dirty bit); a weighted insert into levels ≥ 1 therefore
	// forces a full view rebuild while plain updates stay tail-repairable.
	if !s.hasMinMax {
		s.min, s.max = x, x
		s.hasMinMax = true
	} else {
		if s.less(x, s.min) {
			s.min = x
		}
		if s.less(s.max, x) {
			s.max = x
		}
	}
	total := s.n + weight
	if total > s.bound {
		s.growTo(total)
	}
	// Highest level weighted mass may enter directly.
	half := uint64(s.geom.b / 2)
	if half == 0 {
		half = 1
	}
	hmax := bits.Len64(total / half)
	if hmax > 62 {
		hmax = 62
	}
	copies := weight >> uint(hmax)
	rem := weight - copies<<uint(hmax)
	for i := uint64(0); i < copies; i++ {
		s.insertAtLevel(hmax, x)
	}
	for h := 0; h < hmax; h++ {
		if rem&(uint64(1)<<uint(h)) != 0 {
			s.insertAtLevel(h, x)
		}
	}
	s.n = total
	s.compactCascade(0)
	return nil
}

// insertAtLevel appends x to the level-h buffer, creating intermediate
// levels as needed. Compaction is deferred to the caller's cascade. The
// append lands on the unsorted tail unless it extends the sorted prefix;
// any tail left on levels ≥ 1 is settled by the next compaction or view
// build.
func (s *Sketch[T]) insertAtLevel(h int, x T) {
	s.markAppended(h)
	for h >= len(s.levels) {
		s.levels = s.store.addLevel(s.levels, s.geom.b)
	}
	lv := &s.levels[h]
	if len(lv.buf) == cap(lv.buf) {
		s.store.ensure(s.levels, h, len(lv.buf)+1)
		lv = &s.levels[h]
	}
	if lv.sorted == len(lv.buf) && (lv.sorted == 0 || !s.internalLess(x, lv.buf[lv.sorted-1])) {
		lv.sorted++
	}
	lv.buf = append(lv.buf, x)
	s.retained++
	if len(lv.buf) > s.stats.MaxBufferLen {
		s.stats.MaxBufferLen = len(lv.buf)
	}
}
