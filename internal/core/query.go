package core

import (
	"errors"
	"math"
)

// Query errors returned by the estimation methods.
var (
	// ErrEmpty is returned by quantile queries on an empty sketch.
	ErrEmpty = errors.New("core: sketch is empty")
	// ErrBadRank is returned for normalized ranks outside [0, 1].
	ErrBadRank = errors.New("core: normalized rank outside [0, 1]")
)

// Rank returns the estimated inclusive rank of y: the number of stream items
// x with x ≤ y (Algorithm 2, Estimate-Rank). Items at level h count with
// weight 2^h. On an empty sketch the result is 0.
func (s *Sketch[T]) Rank(y T) uint64 {
	var r uint64
	for h := range s.levels {
		cnt := 0
		for _, x := range s.levels[h].buf {
			if !s.less(y, x) { // x ≤ y
				cnt++
			}
		}
		r += uint64(cnt) << uint(h)
	}
	return r
}

// RankExclusive returns the estimated exclusive rank of y: the number of
// stream items x with x < y.
func (s *Sketch[T]) RankExclusive(y T) uint64 {
	var r uint64
	for h := range s.levels {
		cnt := 0
		for _, x := range s.levels[h].buf {
			if s.less(x, y) {
				cnt++
			}
		}
		r += uint64(cnt) << uint(h)
	}
	return r
}

// NormalizedRank returns Rank(y)/n in [0, 1]. On an empty sketch it is 0.
func (s *Sketch[T]) NormalizedRank(y T) float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Rank(y)) / float64(s.n)
}

// Quantile returns the estimated φ-quantile for φ ∈ [0, 1]: the smallest
// retained item whose normalized inclusive rank reaches φ. φ = 0 yields the
// exact minimum and φ = 1 the exact maximum (both tracked separately).
func (s *Sketch[T]) Quantile(phi float64) (T, error) {
	var zero T
	if s.n == 0 {
		return zero, ErrEmpty
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return zero, ErrBadRank
	}
	if phi == 0 {
		return s.min, nil
	}
	if phi == 1 {
		return s.max, nil
	}
	return s.SortedView().Quantile(phi)
}

// Quantiles returns the estimates for each φ in phis, resolving all of them
// against a single sorted view.
func (s *Sketch[T]) Quantiles(phis []float64) ([]T, error) {
	out := make([]T, len(phis))
	for i, phi := range phis {
		q, err := s.Quantile(phi)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

// CDF returns the estimated normalized inclusive ranks at each split point.
// Splits must be sorted ascending in the sketch's order; the result has
// len(splits)+1 entries, the last being 1 (the mass ≤ +∞).
func (s *Sketch[T]) CDF(splits []T) ([]float64, error) {
	if s.n == 0 {
		return nil, ErrEmpty
	}
	for i := 1; i < len(splits); i++ {
		if s.less(splits[i], splits[i-1]) {
			return nil, errors.New("core: CDF split points not sorted")
		}
	}
	v := s.SortedView()
	out := make([]float64, len(splits)+1)
	for i, sp := range splits {
		out[i] = float64(v.Rank(sp)) / float64(s.n)
	}
	out[len(splits)] = 1
	return out, nil
}

// PMF returns the estimated probability mass in each interval delimited by
// the sorted split points: (−∞, s₀], (s₀, s₁], …, (s_last, +∞).
func (s *Sketch[T]) PMF(splits []T) ([]float64, error) {
	cdf, err := s.CDF(splits)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(cdf))
	prev := 0.0
	for i, c := range cdf {
		out[i] = c - prev
		prev = c
	}
	return out, nil
}

// View is an immutable sorted snapshot of the sketch's weighted coreset:
// items ascending in the caller's order with cumulative weights. It answers
// rank and quantile queries in O(log size) and is what the experiment
// harness uses for bulk evaluation. A View remains valid after further
// updates to the sketch but no longer reflects them.
type View[T any] struct {
	items []T
	cum   []uint64 // cum[i] = total weight of items[0..i]
	less  func(a, b T) bool
	n     uint64
	min   T
	max   T
}

// Frozen reports whether the cached sorted view is materialized, i.e.
// whether quantile/CDF queries are currently pure reads. Updates and merges
// un-freeze the sketch; SortedView (or the root package's Freeze) freezes
// it again.
func (s *Sketch[T]) Frozen() bool { return s.view != nil }

// SortedView materializes (and caches) the sorted weighted view.
func (s *Sketch[T]) SortedView() *View[T] {
	if s.view != nil {
		return s.view
	}
	type wi struct {
		item T
		w    uint64
	}
	all := make([]wi, 0, s.ItemsRetained())
	for h := range s.levels {
		w := uint64(1) << uint(h)
		for _, x := range s.levels[h].buf {
			all = append(all, wi{item: x, w: w})
		}
	}
	sortSlice(all, func(a, b wi) bool { return s.less(a.item, b.item) })
	v := &View[T]{
		items: make([]T, len(all)),
		cum:   make([]uint64, len(all)),
		less:  s.less,
		n:     s.n,
		min:   s.min,
		max:   s.max,
	}
	var run uint64
	for i, e := range all {
		run += e.w
		v.items[i] = e.item
		v.cum[i] = run
	}
	s.view = v
	return v
}

// Size returns the number of distinct retained entries in the view.
func (v *View[T]) Size() int { return len(v.items) }

// TotalWeight returns the total weight (= stream length n).
func (v *View[T]) TotalWeight() uint64 { return v.n }

// Items returns the retained items in ascending order. The slice is shared;
// callers must not modify it.
func (v *View[T]) Items() []T { return v.items }

// CumulativeWeights returns cum[i] = weight of items[0..i]. Shared slice.
func (v *View[T]) CumulativeWeights() []uint64 { return v.cum }

// Rank returns the estimated inclusive rank of y.
func (v *View[T]) Rank(y T) uint64 {
	i := searchLE(v.items, y, v.less)
	if i == 0 {
		return 0
	}
	return v.cum[i-1]
}

// RankExclusive returns the estimated exclusive rank of y.
func (v *View[T]) RankExclusive(y T) uint64 {
	i := searchLT(v.items, y, v.less)
	if i == 0 {
		return 0
	}
	return v.cum[i-1]
}

// Weight returns the weight of items[i] (the difference of consecutive
// cumulative weights).
func (v *View[T]) Weight(i int) uint64 {
	if i == 0 {
		return v.cum[0]
	}
	return v.cum[i] - v.cum[i-1]
}

// Quantile returns the smallest retained item whose cumulative weight
// reaches ⌈φ·n⌉.
func (v *View[T]) Quantile(phi float64) (T, error) {
	var zero T
	if v.n == 0 {
		return zero, ErrEmpty
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return zero, ErrBadRank
	}
	if phi == 0 {
		return v.min, nil
	}
	if phi == 1 {
		return v.max, nil
	}
	target := uint64(math.Ceil(phi * float64(v.n)))
	if target == 0 {
		target = 1
	}
	if target > v.n {
		target = v.n
	}
	// First index with cum ≥ target.
	lo, hi := 0, len(v.cum)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(v.items) {
		// Total retained weight can be less than n only if the sketch was
		// restored from a foreign snapshot; clamp to the maximum.
		return v.max, nil
	}
	return v.items[lo], nil
}
