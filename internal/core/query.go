package core

import (
	"errors"
	"math"

	"req/internal/vec"
)

// Query errors returned by the estimation methods.
var (
	// ErrEmpty is returned by quantile queries on an empty sketch.
	ErrEmpty = errors.New("core: sketch is empty")
	// ErrBadRank is returned for normalized ranks outside [0, 1].
	ErrBadRank = errors.New("core: normalized rank outside [0, 1]")
	// errUnsortedSplits is returned by CDF/PMF for out-of-order split points.
	errUnsortedSplits = errors.New("core: CDF split points not sorted")
)

// Rank returns the estimated inclusive rank of y: the number of stream items
// x with x ≤ y (Algorithm 2, Estimate-Rank). Items at level h count with
// weight 2^h. On an empty sketch the result is 0.
//
// Each level is a sorted buffer (plus at most a small unsorted append tail
// at level 0), so the count per level is one binary search plus a scan of
// the tail: O(levels·log b) instead of a linear pass over every retained
// item. On a frozen sketch (cached view materialized) the rank is answered
// by a single search on the view — branchless Eytzinger when the index has
// been built by Freeze, binary otherwise.
//
//req:noalloc
func (s *Sketch[T]) Rank(y T) uint64 {
	if s.view != nil {
		return s.view.Rank(y)
	}
	var r uint64
	for h := range s.levels {
		r += uint64(s.levelCountLE(&s.levels[h], y)) << uint(h)
	}
	return r
}

// RankExclusive returns the estimated exclusive rank of y: the number of
// stream items x with x < y. Like Rank it binary-searches each sorted level
// buffer, or the cached view when the sketch is frozen.
//
//req:noalloc
func (s *Sketch[T]) RankExclusive(y T) uint64 {
	if s.view != nil {
		return s.view.RankExclusive(y)
	}
	var r uint64
	for h := range s.levels {
		r += uint64(s.levelCountLT(&s.levels[h], y)) << uint(h)
	}
	return r
}

// levelCountLE counts items ≤ y in one compactor: a binary search over the
// sorted prefix (stored descending in the caller's order for HRA sketches)
// plus a linear scan of the unsorted tail.
//
//req:noalloc
func (s *Sketch[T]) levelCountLE(c *compactor[T], y T) int {
	if k := s.kern; k != nil {
		var cnt int
		if s.cfg.HRA {
			cnt = k.countLEDesc(c.buf[:c.sorted], y)
		} else {
			cnt = k.searchLE(c.buf[:c.sorted], y)
		}
		return cnt + k.countLE(c.buf[c.sorted:], y)
	}
	var cnt int
	if s.cfg.HRA {
		cnt = countLEDesc(c.buf[:c.sorted], y, s.less)
	} else {
		cnt = searchLE(c.buf[:c.sorted], y, s.less)
	}
	for _, x := range c.buf[c.sorted:] {
		if !s.less(y, x) { // x ≤ y
			cnt++
		}
	}
	return cnt
}

// levelCountLT counts items < y in one compactor; see levelCountLE.
//
//req:noalloc
func (s *Sketch[T]) levelCountLT(c *compactor[T], y T) int {
	if k := s.kern; k != nil {
		var cnt int
		if s.cfg.HRA {
			cnt = k.countLTDesc(c.buf[:c.sorted], y)
		} else {
			cnt = k.searchLT(c.buf[:c.sorted], y)
		}
		return cnt + k.countLT(c.buf[c.sorted:], y)
	}
	var cnt int
	if s.cfg.HRA {
		cnt = countLTDesc(c.buf[:c.sorted], y, s.less)
	} else {
		cnt = searchLT(c.buf[:c.sorted], y, s.less)
	}
	for _, x := range c.buf[c.sorted:] {
		if s.less(x, y) {
			cnt++
		}
	}
	return cnt
}

// NormalizedRank returns Rank(y)/n in [0, 1]. On an empty sketch it is 0.
func (s *Sketch[T]) NormalizedRank(y T) float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Rank(y)) / float64(s.n)
}

// Quantile returns the estimated φ-quantile for φ ∈ [0, 1]: the smallest
// retained item whose normalized inclusive rank reaches φ. φ = 0 yields the
// exact minimum and φ = 1 the exact maximum (both tracked separately).
func (s *Sketch[T]) Quantile(phi float64) (T, error) {
	var zero T
	if s.n == 0 {
		return zero, ErrEmpty
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return zero, ErrBadRank
	}
	if phi == 0 {
		return s.min, nil
	}
	if phi == 1 {
		return s.max, nil
	}
	return s.SortedView().Quantile(phi)
}

// Quantiles returns the estimates for each φ in phis. It is a thin
// allocating wrapper over QuantilesInto.
func (s *Sketch[T]) Quantiles(phis []float64) ([]T, error) {
	return s.QuantilesInto(nil, phis)
}

// QuantilesInto answers every φ in phis against a single sorted view,
// writing the estimates into dst (grown as needed; pass a slice retained
// across calls for steady-state allocation-free querying) and returning it
// with length len(phis). See View.QuantilesInto for the sweep strategy.
func (s *Sketch[T]) QuantilesInto(dst []T, phis []float64) ([]T, error) {
	if len(phis) == 0 {
		return resizeSlice(dst, 0), nil
	}
	if s.n == 0 {
		return nil, ErrEmpty
	}
	return s.SortedView().QuantilesInto(dst, phis)
}

// RankBatch returns the estimated inclusive rank of every probe in ys,
// written into dst (grown as needed) in the order of ys. The probe set is
// answered with one sweep over the sorted view: probes are processed in
// ascending order and the view cursor only moves forward (by galloping), so
// the per-probe cost amortizes to O(1) comparisons for dense batches.
// Building (or incrementally repairing) the view is amortized across the
// batch; on an empty sketch every rank is 0.
func (s *Sketch[T]) RankBatch(dst []uint64, ys []T) []uint64 {
	return s.SortedView().RankBatch(dst, ys)
}

// NormalizedRankBatch is RankBatch normalized by the stream length: every
// entry is Rank(y)/n in [0, 1] (0 on an empty sketch).
func (s *Sketch[T]) NormalizedRankBatch(dst []float64, ys []T) []float64 {
	return s.SortedView().NormalizedRankBatch(dst, ys)
}

// CDF returns the estimated normalized inclusive ranks at each split point.
// Splits must be sorted ascending in the sketch's order; the result has
// len(splits)+1 entries, the last being 1 (the mass ≤ +∞). It is a thin
// allocating wrapper over CDFInto.
func (s *Sketch[T]) CDF(splits []T) ([]float64, error) {
	return s.CDFInto(nil, splits)
}

// CDFInto is CDF writing into dst (grown as needed) and returning it.
func (s *Sketch[T]) CDFInto(dst []float64, splits []T) ([]float64, error) {
	if s.n == 0 {
		return nil, ErrEmpty
	}
	return s.SortedView().CDFInto(dst, splits)
}

// PMF returns the estimated probability mass in each interval delimited by
// the sorted split points: (−∞, s₀], (s₀, s₁], …, (s_last, +∞). It is a
// thin allocating wrapper over PMFInto.
func (s *Sketch[T]) PMF(splits []T) ([]float64, error) {
	return s.PMFInto(nil, splits)
}

// PMFInto is PMF writing into dst (grown as needed) and returning it.
func (s *Sketch[T]) PMFInto(dst []float64, splits []T) ([]float64, error) {
	if s.n == 0 {
		return nil, ErrEmpty
	}
	return s.SortedView().PMFInto(dst, splits)
}

// View is a sorted snapshot of the sketch's weighted coreset: items
// ascending in the caller's order with cumulative weights. It answers rank
// and quantile queries in O(log size) (O(1)-ish cache behaviour once the
// Eytzinger index is built by Freeze) and is what the experiment harness
// uses for bulk evaluation.
//
// Ownership: the view returned by SortedView is owned by the sketch, which
// recycles its storage on the next rebuild — it is valid only until the
// next mutation of the sketch. Callers that need a durable snapshot should
// Clone the sketch (or copy Items/CumulativeWeights) instead of retaining
// the view across writes.
type View[T any] struct {
	items []T
	cum   []uint64 // cum[i] = total weight of items[0..i]
	less  func(a, b T) bool
	// kern mirrors the owning sketch's kernel table (kernels.go); nil
	// routes queries through the generic closures.
	kern *kernelTable[T]
	n    uint64
	min  T
	max  T
	idx  eytIndex[T] // optional branchless rank index; built by Freeze
}

// Frozen reports whether the cached sorted view is materialized, i.e.
// whether quantile/CDF queries are currently pure reads. Updates and merges
// un-freeze the sketch; SortedView (or the root package's Freeze) freezes
// it again.
func (s *Sketch[T]) Frozen() bool { return s.view != nil }

// FrozenIndexed reports whether both the cached sorted view and its
// Eytzinger rank index are current, i.e. whether Freeze (and FreezeOwned)
// would mutate nothing. Concurrent wrappers use it to take owned snapshots
// under a shared lock. An empty materialized view counts: buildIndex is a
// no-op on it, so freezing again still mutates nothing.
func (s *Sketch[T]) FrozenIndexed() bool {
	return s.view != nil && (s.view.idx.built || len(s.view.items) == 0)
}

// SortedView materializes (and caches) the sorted weighted view.
//
// Steady state performs no allocation: the view is rebuilt into the storage
// of the previously built view (grow-only backing arrays). When the only
// mutations since the last build were appends to level 0 — the common
// few-writes-between-queries case — the cached view is repaired by merging
// the small sorted append tail into it in one linear pass instead of
// re-running the full k-way merge; compactions, growths, merges, and
// weighted updates into higher levels force a full (but storage-reusing)
// rebuild. Both paths produce views answering identically to a from-scratch
// build.
func (s *Sketch[T]) SortedView() *View[T] {
	if s.view != nil {
		return s.view
	}
	if s.spare != nil && !s.viewStructural && s.viewDirty == 1 &&
		len(s.levels[0].buf) >= s.viewL0Len {
		return s.repairTailView()
	}
	return s.rebuildView()
}

// Freeze materializes the cached sorted view and its Eytzinger rank index,
// making every subsequent Rank/Quantile/CDF call a branchless pure read
// until the next mutation. It returns the frozen view.
func (s *Sketch[T]) Freeze() *View[T] {
	v := s.SortedView()
	v.buildIndex()
	return v
}

// rebuildView performs the full k-way merge of the (settled) levels into the
// spare view's recycled storage.
func (s *Sketch[T]) rebuildView() *View[T] {
	for h := range s.levels {
		s.settleLevel(h)
	}
	total := s.ItemsRetained()
	v := s.spare
	if v == nil {
		v = &View[T]{}
		s.spare = v
	}
	if total < len(v.items) {
		// Zero the abandoned tail so pointer-bearing items do not linger in
		// the recycled backing array.
		var zero T
		for i := total; i < len(v.items); i++ {
			v.items[i] = zero
		}
	}
	v.items = resizeSlice(v.items, total)
	v.cum = resizeSlice(v.cum, total)
	v.less, v.kern, v.n, v.min, v.max = s.less, s.kern, s.n, s.min, s.max
	v.idx.built = false
	s.kwayMergeInto(v)
	s.viewRevalidated()
	return v
}

// repairTailView revalidates the spare view after appends to level 0 only:
// the sorted append tail (weight-1 items) is merged into the cached sorted
// array backward in place, rewriting cumulative weights as it goes — O(view
// + tail) with zero allocations, against O(total·log levels) and the full
// cursor machinery for a k-way rebuild.
func (s *Sketch[T]) repairTailView() *View[T] {
	v := s.spare
	tail := s.levels[0].buf[s.viewL0Len:]
	m := len(tail)
	v.n, v.min, v.max = s.n, s.min, s.max
	v.idx.built = false
	if m == 0 {
		s.viewRevalidated()
		return v
	}
	// Sort a copy of the tail ascending in the caller's order (the level
	// buffer itself is ordered by the internal order and stays untouched
	// until settled below).
	s.scratch = append(s.scratch[:0], tail...)
	s.sortCaller(s.scratch)
	old := len(v.items)
	v.items = growSlice(v.items, old+m)
	v.cum = growSlice(v.cum, old+m)
	if kn := s.kern; kn != nil {
		kn.mergeTailCum(v.items, v.cum, s.scratch, old)
	} else {
		var run uint64
		if old > 0 {
			run = v.cum[old-1]
		}
		run += uint64(m)
		i, j, k := old-1, m-1, old+m-1
		for i >= 0 && j >= 0 {
			if s.less(v.items[i], s.scratch[j]) {
				v.items[k] = s.scratch[j]
				v.cum[k] = run
				run--
				j--
			} else {
				w := v.cum[i]
				if i > 0 {
					w -= v.cum[i-1]
				}
				v.items[k] = v.items[i]
				v.cum[k] = run
				run -= w
				i--
			}
			k--
		}
		for j >= 0 {
			v.items[k] = s.scratch[j]
			v.cum[k] = run
			run--
			j--
			k--
		}
		// items[0..i] and their cumulative weights are untouched: every new
		// item merged in above them, so their prefix sums are unchanged.
	}
	// Settle level 0 so the sketch state matches the full-rebuild path (which
	// settles every level); this must follow the merge above because
	// settleLevel claims s.scratch.
	s.settleLevel(0)
	s.viewRevalidated()
	return v
}

// viewRevalidated marks the spare view current after a rebuild or repair.
//
//req:noalloc
func (s *Sketch[T]) viewRevalidated() {
	s.view = s.spare
	s.viewDirty = 0
	s.viewStructural = false
	s.viewL0Len = len(s.levels[0].buf)
}

// resizeSlice returns xs with length n, reusing the backing array when
// capacity suffices and allocating exactly otherwise (rebuilds overwrite
// every element, so a fresh array needs no headroom — repairs grow through
// growSlice, whose headroom then sticks to the recycled array). Existing
// contents are NOT preserved across a reallocation.
func resizeSlice[T any](xs []T, n int) []T {
	if cap(xs) >= n {
		return xs[:n]
	}
	return make([]T, n)
}

// growSlice returns xs with length n, preserving contents across a
// reallocation. It over-allocates by ~1/8 so that a run of tail repairs
// (each growing the view by a few items) amortizes to O(1) reallocations.
func growSlice[T any](xs []T, n int) []T {
	if cap(xs) >= n {
		return xs[:n]
	}
	out := make([]T, n, n+n/8+16)
	copy(out, xs)
	return out
}

// resizeAmortized is resizeSlice with growSlice's headroom: contents are
// not preserved, but repeated small growth (the index arrays after tail
// repairs) amortizes to O(1) reallocations.
func resizeAmortized[T any](xs []T, n int) []T {
	if cap(xs) >= n {
		return xs[:n]
	}
	return make([]T, n, n+n/8+16)
}

// viewCursor walks one sorted level buffer in ascending caller order during
// the k-way merge of SortedView.
type viewCursor[T any] struct {
	buf  []T
	pos  int // current index
	end  int // one past the last index, in walk direction
	step int // +1 (LRA) or -1 (HRA: buffers are stored reversed)
	w    uint64
}

// maxSketchLevels bounds the level count (items carry weight 2^h and n is
// capped at 2^62, so 64 is unreachable organically; FromSnapshot enforces
// the same limit on foreign state). It sizes the merge's cursor array so the
// k-way merge allocates nothing beyond the view itself.
const maxSketchLevels = 64

// kwayMergeInto merges the (settled) level buffers into v.items ascending in
// the caller's order, accumulating cumulative weights as it writes. The
// cursors walk windows of the sketch's contiguous slab (levels[h].buf are
// slab aliases), so the whole merge streams one allocation front to back.
func (s *Sketch[T]) kwayMergeInto(v *View[T]) {
	if kn := s.kern; kn != nil {
		// The kernel path stages cursors on a reusable heap slice: a slice
		// handed through the indirect kernel call escapes, so a stack array
		// here would allocate per rebuild — s.kwayCurs amortizes that to one
		// grow-only allocation.
		s.kwayCurs = s.kwayCurs[:0]
		for h := range s.levels {
			b := s.levels[h].buf
			if len(b) == 0 {
				continue
			}
			cur := vec.KWayCursor[T]{Buf: b, W: uint64(1) << uint(h)}
			if s.cfg.HRA {
				cur.Pos, cur.End, cur.Step = len(b)-1, -1, -1
			} else {
				cur.Pos, cur.End, cur.Step = 0, len(b), 1
			}
			s.kwayCurs = append(s.kwayCurs, cur)
		}
		kn.kway(s.kwayCurs, v.items, v.cum)
		// Scrub the slab aliases so the scratch never keeps level buffers
		// reachable past the merge.
		clear(s.kwayCurs)
		return
	}
	var cursArr [maxSketchLevels]viewCursor[T]
	curs := cursArr[:0]
	for h := range s.levels {
		b := s.levels[h].buf
		if len(b) == 0 {
			continue
		}
		cur := viewCursor[T]{buf: b, w: uint64(1) << uint(h)}
		if s.cfg.HRA {
			cur.pos, cur.end, cur.step = len(b)-1, -1, -1
		} else {
			cur.pos, cur.end, cur.step = 0, len(b), 1
		}
		curs = append(curs, cur)
	}
	if len(curs) == 0 {
		return
	}
	var run uint64
	if len(curs) == 1 {
		c := &curs[0]
		for i := range v.items {
			run += c.w
			v.items[i] = c.buf[c.pos]
			v.cum[i] = run
			c.pos += c.step
		}
		return
	}
	// Min-heap over the cursors, keyed by each cursor's current head item.
	headLess := func(a, b *viewCursor[T]) bool {
		return s.less(a.buf[a.pos], b.buf[b.pos])
	}
	n := len(curs)
	sift := func(root int) {
		for {
			child := 2*root + 1
			if child >= n {
				return
			}
			if child+1 < n && headLess(&curs[child+1], &curs[child]) {
				child++
			}
			if !headLess(&curs[child], &curs[root]) {
				return
			}
			curs[root], curs[child] = curs[child], curs[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		sift(i)
	}
	for out := 0; n > 0; out++ {
		c := &curs[0]
		run += c.w
		v.items[out] = c.buf[c.pos]
		v.cum[out] = run
		c.pos += c.step
		if c.pos == c.end {
			n--
			curs[0] = curs[n]
		}
		sift(0)
	}
}

// Size returns the number of distinct retained entries in the view.
func (v *View[T]) Size() int { return len(v.items) }

// TotalWeight returns the total weight (= stream length n).
func (v *View[T]) TotalWeight() uint64 { return v.n }

// Items returns the retained items in ascending order. The slice is shared;
// callers must not modify it.
func (v *View[T]) Items() []T { return v.items }

// CumulativeWeights returns cum[i] = weight of items[0..i]. Shared slice.
func (v *View[T]) CumulativeWeights() []uint64 { return v.cum }

// Rank returns the estimated inclusive rank of y.
//
//req:noalloc
func (v *View[T]) Rank(y T) uint64 {
	if kn := v.kern; kn != nil {
		if v.idx.built {
			k := kn.eytRankLE(v.idx.items, y)
			if k == 0 {
				return v.idx.total // every element ≤ y
			}
			return v.idx.before[k]
		}
		i := kn.searchLE(v.items, y)
		if i == 0 {
			return 0
		}
		return v.cum[i-1]
	}
	if v.idx.built {
		return v.idx.rank(y, v.less)
	}
	i := searchLE(v.items, y, v.less)
	if i == 0 {
		return 0
	}
	return v.cum[i-1]
}

// RankExclusive returns the estimated exclusive rank of y.
//
//req:noalloc
func (v *View[T]) RankExclusive(y T) uint64 {
	if kn := v.kern; kn != nil {
		if v.idx.built {
			k := kn.eytRankGE(v.idx.items, y)
			if k == 0 {
				return v.idx.total // every element < y
			}
			return v.idx.before[k]
		}
		i := kn.searchLT(v.items, y)
		if i == 0 {
			return 0
		}
		return v.cum[i-1]
	}
	if v.idx.built {
		return v.idx.rankExclusive(y, v.less)
	}
	i := searchLT(v.items, y, v.less)
	if i == 0 {
		return 0
	}
	return v.cum[i-1]
}

// RankBatch answers Rank for every probe in ys, writing into dst (grown as
// needed) in probe order and returning it. Probes are visited in ascending
// order — directly when ys is already sorted, through a sorted index
// permutation otherwise — so the view cursor only gallops forward and the
// whole batch costs O(view + m·log m) instead of m independent binary
// searches. Already-sorted probe sets are answered with zero allocations
// beyond dst.
func (v *View[T]) RankBatch(dst []uint64, ys []T) []uint64 {
	dst = resizeSlice(dst, len(ys))
	if kn := v.kern; kn != nil && v.idx.built && len(ys) >= interleaveMinBatch &&
		!kn.isSortedAsc(ys) && !kn.isSortedDesc(ys) {
		// The kernel whole-batch descent replicates rankSweep's routing for
		// the large-unsorted-batch case (sorted batches still sweep — the
		// gallop beats lockstep descents there) and writes straight into dst,
		// so no per-probe emit closure survives.
		kn.eytRankBatch(v.idx.items, v.idx.before, v.idx.total, ys, dst)
		return dst
	}
	v.rankSweep(ys, func(qi int, rank uint64) {
		dst[qi] = rank
	})
	return dst
}

// NormalizedRankBatch is RankBatch normalized by the total weight: every
// entry is Rank(y)/n in [0, 1] (0 when the view is empty).
func (v *View[T]) NormalizedRankBatch(dst []float64, ys []T) []float64 {
	dst = resizeSlice(dst, len(ys))
	nf := float64(v.n)
	v.rankSweep(ys, func(qi int, rank uint64) {
		if v.n == 0 {
			dst[qi] = 0
		} else {
			dst[qi] = float64(rank) / nf
		}
	})
	return dst
}

// probePair carries one probe with its input position through the sort that
// orders an unsorted batch. Sorting (key, index) pairs keeps every
// comparison on contiguous memory; sorting a bare index permutation would
// chase two random pointers per comparison instead.
type probePair[T any] struct {
	y  T
	qi int
}

// interleaveMinBatch is the unsorted batch size from which an indexed view
// answers probes by interleaved Eytzinger descents instead of sorting the
// probes: by then the m·log m sort costs more than it saves, while the
// lockstep descents overlap their cache misses. Small batches still sort —
// the sweep's galloping beats independent searches when probes are few.
const interleaveMinBatch = 32

// rankSweep computes the inclusive rank of every probe, reporting results
// in input order via emit. Sorted probe sets are answered with one forward
// galloping sweep; unsorted sets either sort a (key, index) pair array and
// sweep, or — for larger batches on an indexed view — descend the Eytzinger
// index several probes at a time in lockstep.
func (v *View[T]) rankSweep(ys []T, emit func(qi int, rank uint64)) {
	if len(ys) == 0 {
		return
	}
	rankAt := func(pos int) uint64 {
		if pos == 0 {
			return 0
		}
		return v.cum[pos-1]
	}
	// advance is the forward gallop, monomorphic when the kernel table is
	// installed; the routing below is identical either way.
	kn := v.kern
	advance := func(pos int, y T) int {
		if kn != nil {
			return kn.gallopLE(v.items, pos, y)
		}
		return gallopLE(v.items, pos, y, v.less)
	}
	sortedAsc := false
	if kn != nil {
		sortedAsc = kn.isSortedAsc(ys)
	} else {
		sortedAsc = isSorted(ys, v.less)
	}
	if sortedAsc {
		pos := 0
		for qi, y := range ys {
			pos = advance(pos, y)
			emit(qi, rankAt(pos))
		}
		return
	}
	sortedDesc := false
	if kn != nil {
		sortedDesc = kn.isSortedDesc(ys)
	} else {
		sortedDesc = isSortedDesc(ys, v.less)
	}
	if sortedDesc {
		pos := 0
		for qi := len(ys) - 1; qi >= 0; qi-- {
			pos = advance(pos, ys[qi])
			emit(qi, rankAt(pos))
		}
		return
	}
	if v.idx.built && len(ys) >= interleaveMinBatch {
		v.idx.rankBatch(ys, v.less, emit)
		return
	}
	pairs := make([]probePair[T], len(ys))
	for i, y := range ys {
		pairs[i] = probePair[T]{y: y, qi: i}
	}
	sortSlice(pairs, func(a, b probePair[T]) bool { return v.less(a.y, b.y) })
	pos := 0
	for i := range pairs {
		pos = advance(pos, pairs[i].y)
		emit(pairs[i].qi, rankAt(pos))
	}
}

// QuantilesInto answers every φ in phis, writing the estimates into dst
// (grown as needed) in input order and returning it with length len(phis).
// Sorted φ sets are answered with a single forward sweep over the
// cumulative weights (zero allocations beyond dst); unsorted sets are
// routed through a sorted index permutation. Any φ outside [0, 1] (or NaN)
// fails the whole batch with ErrBadRank; an empty view yields ErrEmpty.
func (v *View[T]) QuantilesInto(dst []T, phis []float64) ([]T, error) {
	dst = resizeSlice(dst, len(phis))
	if len(phis) == 0 {
		return dst, nil
	}
	if v.n == 0 {
		return nil, ErrEmpty
	}
	for _, phi := range phis {
		if math.IsNaN(phi) || phi < 0 || phi > 1 {
			return nil, ErrBadRank
		}
	}
	sorted := true
	for i := 1; i < len(phis); i++ {
		if phis[i] < phis[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		pos := 0
		for i, phi := range phis {
			dst[i], pos = v.quantileAt(phi, pos)
		}
		return dst, nil
	}
	pairs := make([]probePair[float64], len(phis))
	for i, phi := range phis {
		pairs[i] = probePair[float64]{y: phi, qi: i}
	}
	sortSlice(pairs, func(a, b probePair[float64]) bool { return a.y < b.y })
	pos := 0
	for i := range pairs {
		dst[pairs[i].qi], pos = v.quantileAt(pairs[i].y, pos)
	}
	return dst, nil
}

// quantileAt resolves one (validated) φ during a sorted sweep: pos is the
// cursor into cum below which every cumulative weight is known to be short
// of earlier targets. It returns the estimate and the advanced cursor.
//
//req:noalloc
func (v *View[T]) quantileAt(phi float64, pos int) (T, int) {
	if phi == 0 {
		return v.min, pos
	}
	if phi == 1 {
		return v.max, pos
	}
	target := uint64(math.Ceil(phi * float64(v.n)))
	if target == 0 {
		target = 1
	}
	if target > v.n {
		target = v.n
	}
	pos = gallopCumGE(v.cum, pos, target)
	if pos == len(v.items) {
		// Total retained weight can be less than n only if the sketch was
		// restored from a foreign snapshot; clamp to the maximum.
		return v.max, pos
	}
	return v.items[pos], pos
}

// CDFInto writes the estimated normalized inclusive rank at each split
// point into dst (grown as needed; len(splits)+1 entries, the last being 1)
// and returns it. Splits must be sorted ascending; the whole batch is one
// forward galloping sweep with zero allocations beyond dst.
func (v *View[T]) CDFInto(dst []float64, splits []T) ([]float64, error) {
	if v.n == 0 {
		return nil, ErrEmpty
	}
	for i := 1; i < len(splits); i++ {
		if v.less(splits[i], splits[i-1]) {
			return nil, errUnsortedSplits
		}
	}
	dst = resizeSlice(dst, len(splits)+1)
	nf := float64(v.n)
	pos := 0
	if kn := v.kern; kn != nil {
		for i, sp := range splits {
			pos = kn.gallopLE(v.items, pos, sp)
			if pos == 0 {
				dst[i] = 0
			} else {
				dst[i] = float64(v.cum[pos-1]) / nf
			}
		}
	} else {
		for i, sp := range splits {
			pos = gallopLE(v.items, pos, sp, v.less)
			if pos == 0 {
				dst[i] = 0
			} else {
				dst[i] = float64(v.cum[pos-1]) / nf
			}
		}
	}
	dst[len(splits)] = 1
	return dst, nil
}

// PMFInto writes the estimated probability mass of each interval delimited
// by the ascending split points into dst (grown as needed): one CDF sweep
// followed by adjacent differencing.
func (v *View[T]) PMFInto(dst []float64, splits []T) ([]float64, error) {
	dst, err := v.CDFInto(dst, splits)
	if err != nil {
		return nil, err
	}
	prev := 0.0
	for i, c := range dst {
		dst[i] = c - prev
		prev = c
	}
	return dst, nil
}

// Weight returns the weight of items[i] (the difference of consecutive
// cumulative weights).
//
//req:noalloc
func (v *View[T]) Weight(i int) uint64 {
	if i == 0 {
		return v.cum[0]
	}
	return v.cum[i] - v.cum[i-1]
}

// Quantile returns the smallest retained item whose cumulative weight
// reaches ⌈φ·n⌉.
func (v *View[T]) Quantile(phi float64) (T, error) {
	var zero T
	if v.n == 0 {
		return zero, ErrEmpty
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return zero, ErrBadRank
	}
	if phi == 0 {
		return v.min, nil
	}
	if phi == 1 {
		return v.max, nil
	}
	target := uint64(math.Ceil(phi * float64(v.n)))
	if target == 0 {
		target = 1
	}
	if target > v.n {
		target = v.n
	}
	if v.idx.built {
		return v.idx.quantile(target, v.max), nil
	}
	// First index with cum ≥ target.
	lo, hi := 0, len(v.cum)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(v.items) {
		// Total retained weight can be less than n only if the sketch was
		// restored from a foreign snapshot; clamp to the maximum.
		return v.max, nil
	}
	return v.items[lo], nil
}
