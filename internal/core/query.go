package core

import (
	"errors"
	"math"
)

// Query errors returned by the estimation methods.
var (
	// ErrEmpty is returned by quantile queries on an empty sketch.
	ErrEmpty = errors.New("core: sketch is empty")
	// ErrBadRank is returned for normalized ranks outside [0, 1].
	ErrBadRank = errors.New("core: normalized rank outside [0, 1]")
)

// Rank returns the estimated inclusive rank of y: the number of stream items
// x with x ≤ y (Algorithm 2, Estimate-Rank). Items at level h count with
// weight 2^h. On an empty sketch the result is 0.
//
// Each level is a sorted buffer (plus at most a small unsorted append tail
// at level 0), so the count per level is one binary search plus a scan of
// the tail: O(levels·log b) instead of a linear pass over every retained
// item. On a frozen sketch (cached view materialized) the rank is answered
// by a single binary search on the view.
func (s *Sketch[T]) Rank(y T) uint64 {
	if s.view != nil {
		return s.view.Rank(y)
	}
	var r uint64
	for h := range s.levels {
		r += uint64(s.levelCountLE(&s.levels[h], y)) << uint(h)
	}
	return r
}

// RankExclusive returns the estimated exclusive rank of y: the number of
// stream items x with x < y. Like Rank it binary-searches each sorted level
// buffer, or the cached view when the sketch is frozen.
func (s *Sketch[T]) RankExclusive(y T) uint64 {
	if s.view != nil {
		return s.view.RankExclusive(y)
	}
	var r uint64
	for h := range s.levels {
		r += uint64(s.levelCountLT(&s.levels[h], y)) << uint(h)
	}
	return r
}

// levelCountLE counts items ≤ y in one compactor: a binary search over the
// sorted prefix (stored descending in the caller's order for HRA sketches)
// plus a linear scan of the unsorted tail.
func (s *Sketch[T]) levelCountLE(c *compactor[T], y T) int {
	var cnt int
	if s.cfg.HRA {
		cnt = countLEDesc(c.buf[:c.sorted], y, s.less)
	} else {
		cnt = searchLE(c.buf[:c.sorted], y, s.less)
	}
	for _, x := range c.buf[c.sorted:] {
		if !s.less(y, x) { // x ≤ y
			cnt++
		}
	}
	return cnt
}

// levelCountLT counts items < y in one compactor; see levelCountLE.
func (s *Sketch[T]) levelCountLT(c *compactor[T], y T) int {
	var cnt int
	if s.cfg.HRA {
		cnt = countLTDesc(c.buf[:c.sorted], y, s.less)
	} else {
		cnt = searchLT(c.buf[:c.sorted], y, s.less)
	}
	for _, x := range c.buf[c.sorted:] {
		if s.less(x, y) {
			cnt++
		}
	}
	return cnt
}

// NormalizedRank returns Rank(y)/n in [0, 1]. On an empty sketch it is 0.
func (s *Sketch[T]) NormalizedRank(y T) float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Rank(y)) / float64(s.n)
}

// Quantile returns the estimated φ-quantile for φ ∈ [0, 1]: the smallest
// retained item whose normalized inclusive rank reaches φ. φ = 0 yields the
// exact minimum and φ = 1 the exact maximum (both tracked separately).
func (s *Sketch[T]) Quantile(phi float64) (T, error) {
	var zero T
	if s.n == 0 {
		return zero, ErrEmpty
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return zero, ErrBadRank
	}
	if phi == 0 {
		return s.min, nil
	}
	if phi == 1 {
		return s.max, nil
	}
	return s.SortedView().Quantile(phi)
}

// Quantiles returns the estimates for each φ in phis, resolving all of them
// against a single sorted view materialized once up front (the view also
// validates each φ, so per-φ revalidation of the sketch state is skipped).
func (s *Sketch[T]) Quantiles(phis []float64) ([]T, error) {
	out := make([]T, len(phis))
	if len(phis) == 0 {
		return out, nil
	}
	if s.n == 0 {
		return nil, ErrEmpty
	}
	v := s.SortedView()
	for i, phi := range phis {
		q, err := v.Quantile(phi)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

// CDF returns the estimated normalized inclusive ranks at each split point.
// Splits must be sorted ascending in the sketch's order; the result has
// len(splits)+1 entries, the last being 1 (the mass ≤ +∞).
func (s *Sketch[T]) CDF(splits []T) ([]float64, error) {
	if s.n == 0 {
		return nil, ErrEmpty
	}
	for i := 1; i < len(splits); i++ {
		if s.less(splits[i], splits[i-1]) {
			return nil, errors.New("core: CDF split points not sorted")
		}
	}
	v := s.SortedView()
	out := make([]float64, len(splits)+1)
	for i, sp := range splits {
		out[i] = float64(v.Rank(sp)) / float64(s.n)
	}
	out[len(splits)] = 1
	return out, nil
}

// PMF returns the estimated probability mass in each interval delimited by
// the sorted split points: (−∞, s₀], (s₀, s₁], …, (s_last, +∞).
func (s *Sketch[T]) PMF(splits []T) ([]float64, error) {
	cdf, err := s.CDF(splits)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(cdf))
	prev := 0.0
	for i, c := range cdf {
		out[i] = c - prev
		prev = c
	}
	return out, nil
}

// View is an immutable sorted snapshot of the sketch's weighted coreset:
// items ascending in the caller's order with cumulative weights. It answers
// rank and quantile queries in O(log size) and is what the experiment
// harness uses for bulk evaluation. A View remains valid after further
// updates to the sketch but no longer reflects them.
type View[T any] struct {
	items []T
	cum   []uint64 // cum[i] = total weight of items[0..i]
	less  func(a, b T) bool
	n     uint64
	min   T
	max   T
}

// Frozen reports whether the cached sorted view is materialized, i.e.
// whether quantile/CDF queries are currently pure reads. Updates and merges
// un-freeze the sketch; SortedView (or the root package's Freeze) freezes
// it again.
func (s *Sketch[T]) Frozen() bool { return s.view != nil }

// SortedView materializes (and caches) the sorted weighted view.
//
// The level buffers are already sorted (any append tails are settled first),
// so the view is a k-way merge of the levels that writes items and running
// cumulative weights directly into the view's arrays: no intermediate
// weighted-item slice and no sort. Levels are consumed through a small
// binary heap of cursors keyed by their current head item; HRA sketches
// store buffers descending in the caller's order, so their cursors walk
// backward.
func (s *Sketch[T]) SortedView() *View[T] {
	if s.view != nil {
		return s.view
	}
	for h := range s.levels {
		s.settleLevel(h)
	}
	total := s.ItemsRetained()
	v := &View[T]{
		items: make([]T, total),
		cum:   make([]uint64, total),
		less:  s.less,
		n:     s.n,
		min:   s.min,
		max:   s.max,
	}
	s.kwayMergeInto(v)
	s.view = v
	return v
}

// viewCursor walks one sorted level buffer in ascending caller order during
// the k-way merge of SortedView.
type viewCursor[T any] struct {
	buf  []T
	pos  int // current index
	end  int // one past the last index, in walk direction
	step int // +1 (LRA) or -1 (HRA: buffers are stored reversed)
	w    uint64
}

// maxSketchLevels bounds the level count (items carry weight 2^h and n is
// capped at 2^62, so 64 is unreachable organically; FromSnapshot enforces
// the same limit on foreign state). It sizes the merge's cursor array so the
// k-way merge allocates nothing beyond the view itself.
const maxSketchLevels = 64

// kwayMergeInto merges the (settled) level buffers into v.items ascending in
// the caller's order, accumulating cumulative weights as it writes.
func (s *Sketch[T]) kwayMergeInto(v *View[T]) {
	var cursArr [maxSketchLevels]viewCursor[T]
	curs := cursArr[:0]
	for h := range s.levels {
		b := s.levels[h].buf
		if len(b) == 0 {
			continue
		}
		cur := viewCursor[T]{buf: b, w: uint64(1) << uint(h)}
		if s.cfg.HRA {
			cur.pos, cur.end, cur.step = len(b)-1, -1, -1
		} else {
			cur.pos, cur.end, cur.step = 0, len(b), 1
		}
		curs = append(curs, cur)
	}
	if len(curs) == 0 {
		return
	}
	var run uint64
	if len(curs) == 1 {
		c := &curs[0]
		for i := range v.items {
			run += c.w
			v.items[i] = c.buf[c.pos]
			v.cum[i] = run
			c.pos += c.step
		}
		return
	}
	// Min-heap over the cursors, keyed by each cursor's current head item.
	headLess := func(a, b *viewCursor[T]) bool {
		return s.less(a.buf[a.pos], b.buf[b.pos])
	}
	n := len(curs)
	sift := func(root int) {
		for {
			child := 2*root + 1
			if child >= n {
				return
			}
			if child+1 < n && headLess(&curs[child+1], &curs[child]) {
				child++
			}
			if !headLess(&curs[child], &curs[root]) {
				return
			}
			curs[root], curs[child] = curs[child], curs[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		sift(i)
	}
	for out := 0; n > 0; out++ {
		c := &curs[0]
		run += c.w
		v.items[out] = c.buf[c.pos]
		v.cum[out] = run
		c.pos += c.step
		if c.pos == c.end {
			n--
			curs[0] = curs[n]
		}
		sift(0)
	}
}

// Size returns the number of distinct retained entries in the view.
func (v *View[T]) Size() int { return len(v.items) }

// TotalWeight returns the total weight (= stream length n).
func (v *View[T]) TotalWeight() uint64 { return v.n }

// Items returns the retained items in ascending order. The slice is shared;
// callers must not modify it.
func (v *View[T]) Items() []T { return v.items }

// CumulativeWeights returns cum[i] = weight of items[0..i]. Shared slice.
func (v *View[T]) CumulativeWeights() []uint64 { return v.cum }

// Rank returns the estimated inclusive rank of y.
func (v *View[T]) Rank(y T) uint64 {
	i := searchLE(v.items, y, v.less)
	if i == 0 {
		return 0
	}
	return v.cum[i-1]
}

// RankExclusive returns the estimated exclusive rank of y.
func (v *View[T]) RankExclusive(y T) uint64 {
	i := searchLT(v.items, y, v.less)
	if i == 0 {
		return 0
	}
	return v.cum[i-1]
}

// Weight returns the weight of items[i] (the difference of consecutive
// cumulative weights).
func (v *View[T]) Weight(i int) uint64 {
	if i == 0 {
		return v.cum[0]
	}
	return v.cum[i] - v.cum[i-1]
}

// Quantile returns the smallest retained item whose cumulative weight
// reaches ⌈φ·n⌉.
func (v *View[T]) Quantile(phi float64) (T, error) {
	var zero T
	if v.n == 0 {
		return zero, ErrEmpty
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return zero, ErrBadRank
	}
	if phi == 0 {
		return v.min, nil
	}
	if phi == 1 {
		return v.max, nil
	}
	target := uint64(math.Ceil(phi * float64(v.n)))
	if target == 0 {
		target = 1
	}
	if target > v.n {
		target = v.n
	}
	// First index with cum ≥ target.
	lo, hi := 0, len(v.cum)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(v.items) {
		// Total retained weight can be less than n only if the sketch was
		// restored from a foreign snapshot; clamp to the maximum.
		return v.max, nil
	}
	return v.items[lo], nil
}
