package core

import (
	"math"
	"testing"

	"req/internal/rng"
)

// Statistical validation of the paper's guarantees across many independent
// seeds. These tests use fixed master seeds so they are deterministic, with
// enough trials that the asserted bounds carry real statistical weight.

// trialMaxRelErr feeds one permutation stream and returns the worst
// relative error over power-of-two ranks.
func trialMaxRelErr(t *testing.T, cfg Config, n int, seed uint64) float64 {
	t.Helper()
	cfg.Seed = seed
	s, err := New(fless, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed ^ 0xabcdef)
	for _, v := range r.Perm(n) {
		s.Update(float64(v))
	}
	worst := 0.0
	for rank := 1; rank <= n; rank *= 2 {
		est := float64(s.Rank(float64(rank - 1)))
		rel := math.Abs(est-float64(rank)) / float64(rank)
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

func TestTheorem1ErrorDistribution(t *testing.T) {
	// 48 seeds at ε=0.1, δ=0.05: the p95 of worst-rank relative error must
	// stay below ε, and the median far below it.
	const n = 1 << 16
	const trials = 48
	cfg := Config{Eps: 0.1, Delta: 0.05}
	var errs []float64
	for i := 0; i < trials; i++ {
		errs = append(errs, trialMaxRelErr(t, cfg, n, uint64(1000+i)))
	}
	sortSlice(errs, fless)
	p50 := errs[trials/2]
	p95 := errs[trials*95/100]
	if p95 > 0.1 {
		t.Fatalf("p95 of max rel err = %v > ε", p95)
	}
	if p50 > 0.05 {
		t.Fatalf("median of max rel err = %v suspiciously close to ε", p50)
	}
}

func TestErrorScalesWithEpsilon(t *testing.T) {
	// Halving ε should roughly halve the observed error (linear 1/ε space
	// for linear accuracy — the defining trade-off).
	const n = 1 << 16
	measure := func(eps float64) float64 {
		var total float64
		const trials = 12
		for i := 0; i < trials; i++ {
			total += trialMaxRelErr(t, Config{Eps: eps, Delta: 0.05}, n, uint64(2000+i))
		}
		return total / trials
	}
	coarse := measure(0.2)
	fine := measure(0.05)
	if fine >= coarse {
		t.Fatalf("error did not shrink with ε: %.5f (ε=0.2) vs %.5f (ε=0.05)", coarse, fine)
	}
	if coarse/fine < 2 {
		t.Logf("note: error ratio %.2f below the ~4x ε ratio (acceptable, constants differ)", coarse/fine)
	}
}

func TestErrorUnbiasedAcrossSeeds(t *testing.T) {
	// Observation 4 ⇒ estimates are unbiased: averaging the signed error
	// at a fixed rank across seeds must concentrate near zero.
	const n = 1 << 16
	const trials = 64
	const rank = 10000
	var sum float64
	for i := 0; i < trials; i++ {
		cfg := Config{Eps: 0.1, Delta: 0.1, Seed: uint64(3000 + i)}
		s, err := New(fless, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(4000 + i))
		for _, v := range r.Perm(n) {
			s.Update(float64(v))
		}
		est := float64(s.Rank(rank - 1))
		sum += (est - rank) / rank
	}
	mean := sum / trials
	// Per-trial std is ≲ ε/2; the mean of 64 trials should be within
	// ~4·ε/(2·√64) = ε/4 of zero. Use ε/3 for slack.
	if math.Abs(mean) > 0.1/3 {
		t.Fatalf("mean signed error %v indicates bias", mean)
	}
}

func TestVarianceShrinksWithK(t *testing.T) {
	// Fixed-k mode: quadrupling k should cut the error roughly in half
	// (error ∝ 1/k per the variance analysis in Section 2.3).
	const n = 1 << 16
	measure := func(k int) float64 {
		var total float64
		const trials = 12
		for i := 0; i < trials; i++ {
			total += trialMaxRelErr(t, Config{Mode: ModeFixedK, K: k}, n, uint64(5000+i))
		}
		return total / trials
	}
	small := measure(16)
	big := measure(64)
	if big >= small {
		t.Fatalf("error did not shrink with k: k=16 → %.5f, k=64 → %.5f", small, big)
	}
}

func TestHRAMirrorSymmetry(t *testing.T) {
	// An HRA sketch on stream S should behave like an LRA sketch on the
	// negated stream with mirrored queries: tail ranks become exact.
	const n = 1 << 16
	hra, err := New(fless, Config{Eps: 0.1, Delta: 0.1, Seed: 1, HRA: true})
	if err != nil {
		t.Fatal(err)
	}
	lraNeg, err := New(fless, Config{Eps: 0.1, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	for _, v := range r.Perm(n) {
		hra.Update(float64(v))
		lraNeg.Update(-float64(v))
	}
	// #items ≥ y in HRA stream = #items ≤ -y in negated stream.
	for _, y := range []float64{float64(n - 1), float64(n - 10), float64(n - 100)} {
		ge := hra.Count() - hra.RankExclusive(y)
		le := lraNeg.Rank(-y)
		// Both protected sides are exact here, so they must agree exactly.
		if ge != le {
			t.Fatalf("mirror mismatch at %v: %d vs %d", y, ge, le)
		}
	}
}

func TestAccuracyOnDuplicateHeavyZipf(t *testing.T) {
	// Heavy duplication: ranks of the few distinct values must still meet
	// the guarantee (ties are where comparison-based code often breaks).
	const n = 1 << 16
	cfg := Config{Eps: 0.1, Delta: 0.05, Seed: 9}
	s, err := New(fless, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		// Discrete zipf-ish: value v with probability ∝ 1/(v+1).
		v := r.Intn(r.Intn(100) + 1)
		counts[v]++
		s.Update(float64(v))
	}
	run := 0
	for v := 0; v < 100; v++ {
		c, ok := counts[v]
		if !ok {
			continue
		}
		run += c
		est := float64(s.Rank(float64(v)))
		rel := math.Abs(est-float64(run)) / float64(run)
		if rel > 0.1 {
			t.Fatalf("zipf value %d (true rank %d): rel err %.4f", v, run, rel)
		}
	}
}

func TestLongStreamSingleSketch(t *testing.T) {
	// One long stream (multiple growths) keeping the guarantee end to end;
	// also verifies the level count stays logarithmic.
	if testing.Short() {
		t.Skip("long stream test")
	}
	const n = 1 << 21
	cfg := Config{Eps: 0.05, Delta: 0.01, Seed: 20, N0: 1 << 10}
	s, err := New(fless, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	for _, v := range r.Perm(n) {
		s.Update(float64(v))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Growths < 2 {
		t.Fatalf("expected ≥ 2 growths from N0=4096, got %d", s.Stats().Growths)
	}
	for rank := 1; rank <= n; rank *= 8 {
		est := float64(s.Rank(float64(rank - 1)))
		rel := math.Abs(est-float64(rank)) / float64(rank)
		if rel > 0.05 {
			t.Errorf("rank %d: rel %.4f", rank, rel)
		}
	}
	if s.NumLevels() > 32 {
		t.Fatalf("level explosion: %d levels", s.NumLevels())
	}
}
