package core

import (
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 300})
	feedPerm(t, s, 1<<16, 301)
	snap := s.Snapshot()
	r, err := FromSnapshot(fless, snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != s.Count() || r.ItemsRetained() != s.ItemsRetained() ||
		r.NumLevels() != s.NumLevels() || r.Bound() != s.Bound() || r.K() != s.K() {
		t.Fatal("restored sketch differs structurally")
	}
	for y := 0.0; y < float64(1<<16); y += 511 {
		if r.Rank(y) != s.Rank(y) {
			t.Fatalf("restored rank mismatch at %v", y)
		}
	}
	mn1, _ := s.Min()
	mn2, _ := r.Min()
	if mn1 != mn2 {
		t.Fatal("restored min differs")
	}
}

func TestSnapshotResumesIdentically(t *testing.T) {
	// Continuing the original and the restored copy with the same suffix
	// must produce identical sketches (RNG state round-trips).
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 302})
	feedPerm(t, s, 100000, 303)
	r, err := FromSnapshot(fless, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		v := float64(i) * 1.5
		s.Update(v)
		r.Update(v)
	}
	if s.ItemsRetained() != r.ItemsRetained() {
		t.Fatal("resumed sketches diverged in size")
	}
	for y := 0.0; y < 150000; y += 997 {
		if s.Rank(y) != r.Rank(y) {
			t.Fatalf("resumed sketches diverged at %v", y)
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 304})
	feedPerm(t, s, 10000, 305)
	snap := s.Snapshot()
	countBefore := len(snap.Levels[0].Items)
	for i := 0; i < 10000; i++ {
		s.Update(float64(i))
	}
	if len(snap.Levels[0].Items) != countBefore {
		t.Fatal("snapshot aliases live buffers")
	}
}

func TestSnapshotEmptySketch(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1})
	r, err := FromSnapshot(fless, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Empty() {
		t.Fatal("restored empty sketch not empty")
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 306})
	feedPerm(t, s, 50000, 307)
	good := s.Snapshot()

	t.Run("nil less", func(t *testing.T) {
		if _, err := FromSnapshot[float64](nil, good); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("bad config", func(t *testing.T) {
		snap := s.Snapshot()
		snap.Config.Eps = 7
		if _, err := FromSnapshot(fless, snap); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("bound below n", func(t *testing.T) {
		snap := s.Snapshot()
		snap.Bound = snap.N - 1
		if _, err := FromSnapshot(fless, snap); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("non pow2 bound", func(t *testing.T) {
		snap := s.Snapshot()
		snap.Bound = snap.Bound + 1
		if _, err := FromSnapshot(fless, snap); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("no levels", func(t *testing.T) {
		snap := s.Snapshot()
		snap.Levels = nil
		if _, err := FromSnapshot(fless, snap); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("too many levels", func(t *testing.T) {
		snap := s.Snapshot()
		snap.Levels = make([]LevelSnapshot[float64], 65)
		if _, err := FromSnapshot(fless, snap); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("weight mismatch", func(t *testing.T) {
		snap := s.Snapshot()
		snap.N++
		if _, err := FromSnapshot(fless, snap); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("oversized level", func(t *testing.T) {
		snap := s.Snapshot()
		extra := make([]float64, 10000)
		snap.Levels[0].Items = append(snap.Levels[0].Items, extra...)
		if _, err := FromSnapshot(fless, snap); err == nil {
			t.Fatal("accepted")
		}
	})
}

func TestSnapshotMergedSketch(t *testing.T) {
	cfg := Config{Eps: 0.05, Delta: 0.05}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	a.cfg.Seed = 1
	b.cfg.Seed = 2
	feedPerm(t, a, 60000, 308)
	feedPerm(t, b, 60000, 309)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	r, err := FromSnapshot(fless, a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != a.Count() {
		t.Fatal("merged snapshot count mismatch")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
