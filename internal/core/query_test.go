package core

import (
	"math"
	"testing"

	"req/internal/rng"
)

func TestRankInclusiveVsExclusive(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1})
	for _, v := range []float64{1, 2, 2, 2, 3} {
		s.Update(v)
	}
	if got := s.Rank(2); got != 4 {
		t.Fatalf("inclusive Rank(2) = %d, want 4", got)
	}
	if got := s.RankExclusive(2); got != 1 {
		t.Fatalf("exclusive Rank(2) = %d, want 1", got)
	}
	if got := s.Rank(0.5); got != 0 {
		t.Fatalf("Rank below min = %d", got)
	}
	if got := s.Rank(10); got != 5 {
		t.Fatalf("Rank above max = %d, want n", got)
	}
}

func TestRankMonotonicity(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 101})
	feedPerm(t, s, 1<<17, 102)
	prev := uint64(0)
	for y := -10.0; y < float64(1<<17)+10; y += 997 {
		got := s.Rank(y)
		if got < prev {
			t.Fatalf("rank decreased at y=%v: %d < %d", y, got, prev)
		}
		prev = got
	}
}

func TestViewMatchesDirectRank(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 103})
	feedPerm(t, s, 1<<16, 104)
	v := s.SortedView()
	r := rng.New(105)
	for i := 0; i < 500; i++ {
		y := r.Float64() * float64(1<<16)
		if v.Rank(y) != s.Rank(y) {
			t.Fatalf("view rank %d != direct rank %d at y=%v", v.Rank(y), s.Rank(y), y)
		}
		if v.RankExclusive(y) != s.RankExclusive(y) {
			t.Fatalf("view exclusive rank mismatch at y=%v", y)
		}
	}
}

func TestViewCachedAndInvalidated(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.1, Delta: 0.1, Seed: 106})
	feedPerm(t, s, 10000, 107)
	v1 := s.SortedView()
	v2 := s.SortedView()
	if v1 != v2 {
		t.Fatal("view not cached across calls")
	}
	weight1 := v1.TotalWeight()
	rankBefore := s.Rank(0.25)
	s.Update(0.5)
	if s.Frozen() {
		t.Fatal("update did not invalidate the cached view")
	}
	v3 := s.SortedView()
	if v3 != v1 {
		// The rebuild recycles the previous view's storage by design; the
		// returned object is the same, refreshed in place.
		t.Fatal("view storage not recycled across rebuilds")
	}
	if v3.TotalWeight() != weight1+1 {
		t.Fatalf("stale weight in refreshed view: %d vs %d", v3.TotalWeight(), weight1)
	}
	if got := s.Rank(0.25); got != rankBefore {
		t.Fatalf("repaired view rank %d != pre-update rank %d", got, rankBefore)
	}
}

func TestViewCumulativeWeights(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 108})
	feedPerm(t, s, 1<<16, 109)
	v := s.SortedView()
	items, cum := v.Items(), v.CumulativeWeights()
	if len(items) != len(cum) || len(items) != v.Size() {
		t.Fatal("view slices inconsistent")
	}
	if !isSorted(items, fless) {
		t.Fatal("view items not sorted")
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] <= cum[i-1] {
			t.Fatalf("cumulative weights not strictly increasing at %d", i)
		}
	}
	if cum[len(cum)-1] != v.TotalWeight() {
		t.Fatalf("last cumulative weight %d != total %d", cum[len(cum)-1], v.TotalWeight())
	}
}

func TestQuantileRankDuality(t *testing.T) {
	// For any φ, Rank(Quantile(φ)) must be ≥ ⌈φ·n⌉ and Quantile must be the
	// smallest retained item with that property.
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 110})
	feedPerm(t, s, 1<<16, 111)
	v := s.SortedView()
	n := float64(s.Count())
	for _, phi := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		q, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		target := uint64(math.Ceil(phi * n))
		if got := v.Rank(q); got < target {
			t.Fatalf("phi=%v: Rank(Quantile) = %d < target %d", phi, got, target)
		}
	}
}

func TestQuantileEndpoints(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 112})
	feedPerm(t, s, 1<<15, 113)
	q0, err := s.Quantile(0)
	if err != nil {
		t.Fatal(err)
	}
	mn, _ := s.Min()
	if q0 != mn {
		t.Fatalf("Quantile(0) = %v, want exact min %v", q0, mn)
	}
	q1, err := s.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	mx, _ := s.Max()
	if q1 != mx {
		t.Fatalf("Quantile(1) = %v, want exact max %v", q1, mx)
	}
}

func TestQuantileRejectsBadRank(t *testing.T) {
	s := newFloat64(t, Config{})
	s.Update(1)
	for _, phi := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := s.Quantile(phi); err != ErrBadRank {
			t.Errorf("Quantile(%v) error = %v, want ErrBadRank", phi, err)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 114})
	feedPerm(t, s, 1<<16, 115)
	prev := math.Inf(-1)
	for phi := 0.0; phi <= 1.0; phi += 0.001 {
		q, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if q < prev {
			t.Fatalf("quantile decreased at phi=%v: %v < %v", phi, q, prev)
		}
		prev = q
	}
}

func TestQuantilesBatch(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 116})
	feedPerm(t, s, 1<<14, 117)
	phis := []float64{0.1, 0.5, 0.9}
	qs, err := s.Quantiles(phis)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != len(phis) {
		t.Fatalf("got %d quantiles", len(qs))
	}
	for i, phi := range phis {
		single, _ := s.Quantile(phi)
		if qs[i] != single {
			t.Fatalf("batch quantile %v != single %v at phi=%v", qs[i], single, phi)
		}
	}
	if _, err := s.Quantiles([]float64{0.5, 2}); err == nil {
		t.Fatal("batch with invalid rank accepted")
	}
}

func TestQuantileAccuracy(t *testing.T) {
	// On a permutation of 0..n−1, the φ-quantile should be ≈ φ·n within
	// relative error ε of the rank.
	const n = 1 << 17
	const eps = 0.05
	s := newFloat64(t, Config{Eps: eps, Delta: 0.01, Seed: 118})
	feedPerm(t, s, n, 119)
	for _, phi := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		q, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		wantRank := phi * n
		rel := math.Abs(q+1-wantRank) / wantRank
		if rel > eps+0.01 {
			t.Errorf("phi=%v: quantile %v (rank %v), rel %.4f", phi, q, q+1, rel)
		}
	}
}

func TestCDF(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 120})
	const n = 1 << 16
	feedPerm(t, s, n, 121)
	splits := []float64{float64(n) * 0.25, float64(n) * 0.5, float64(n) * 0.75}
	cdf, err := s.CDF(splits)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdf) != 4 {
		t.Fatalf("CDF length %d", len(cdf))
	}
	if cdf[3] != 1 {
		t.Fatalf("CDF tail = %v, want 1", cdf[3])
	}
	for i, want := range []float64{0.25, 0.5, 0.75} {
		if math.Abs(cdf[i]-want) > 0.05 {
			t.Errorf("CDF[%d] = %v, want ≈%v", i, cdf[i], want)
		}
		if i > 0 && cdf[i] < cdf[i-1] {
			t.Errorf("CDF not monotone at %d", i)
		}
	}
}

func TestCDFRejectsUnsortedSplits(t *testing.T) {
	s := newFloat64(t, Config{})
	s.Update(1)
	if _, err := s.CDF([]float64{2, 1}); err == nil {
		t.Fatal("unsorted splits accepted")
	}
}

func TestCDFEmpty(t *testing.T) {
	s := newFloat64(t, Config{})
	if _, err := s.CDF([]float64{1}); err != ErrEmpty {
		t.Fatalf("CDF on empty: %v", err)
	}
}

func TestPMF(t *testing.T) {
	s := newFloat64(t, Config{Eps: 0.05, Delta: 0.05, Seed: 122})
	const n = 1 << 16
	feedPerm(t, s, n, 123)
	splits := []float64{float64(n) * 0.5}
	pmf, err := s.PMF(splits)
	if err != nil {
		t.Fatal(err)
	}
	if len(pmf) != 2 {
		t.Fatalf("PMF length %d", len(pmf))
	}
	total := 0.0
	for _, p := range pmf {
		if p < 0 {
			t.Fatalf("negative PMF mass %v", p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", total)
	}
	if math.Abs(pmf[0]-0.5) > 0.05 {
		t.Fatalf("PMF[0] = %v, want ≈0.5", pmf[0])
	}
}

func TestViewQuantileClampsTarget(t *testing.T) {
	s := newFloat64(t, Config{})
	s.Update(3)
	s.Update(1)
	s.Update(2)
	v := s.SortedView()
	q, err := v.Quantile(1e-12) // target rounds to 0, must clamp to 1
	if err != nil {
		t.Fatal(err)
	}
	if q != 1 {
		t.Fatalf("tiny-phi quantile = %v, want 1", q)
	}
}

func TestHRAQueriesUseCallerOrder(t *testing.T) {
	// Regardless of internal reversal, Rank and Quantile must behave
	// identically in expectation to the LRA sketch on the same data.
	cfgH := Config{Eps: 0.05, Delta: 0.05, Seed: 124, HRA: true}
	s := newFloat64(t, cfgH)
	const n = 1 << 16
	feedPerm(t, s, n, 125)
	if got := s.Rank(float64(n - 1)); got != n {
		t.Fatalf("HRA Rank(max) = %d, want n=%d", got, n)
	}
	if got := s.Rank(-1); got != 0 {
		t.Fatalf("HRA Rank below min = %d", got)
	}
	prev := uint64(0)
	for y := 0.0; y < n; y += 1024 {
		r := s.Rank(y)
		if r < prev {
			t.Fatal("HRA rank not monotone in caller order")
		}
		prev = r
	}
	// Tail accuracy: high ranks should be near-exact.
	for _, back := range []int{1, 10, 100} {
		y := float64(n - back)
		want := float64(n - back + 1)
		got := float64(s.Rank(y))
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("HRA tail rank at %v: got %v want %v", y, got, want)
		}
	}
}
