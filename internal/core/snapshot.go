package core

import (
	"errors"
	"fmt"

	"req/internal/rng"
	"req/internal/schedule"
)

// LevelSnapshot is the portable state of one relative-compactor. Items is
// owned by the snapshot holder (never aliased with live sketch storage);
// captures and decoders lay the per-level slices out as windows of one
// contiguous allocation.
type LevelSnapshot[T any] struct {
	State uint64
	Items []T
}

// Snapshot is the complete portable state of a sketch, sufficient to resume
// it bit-for-bit (including the random stream). The root req package uses it
// to implement binary serialization for concrete item types. Derived state
// is deliberately not captured: the cached sorted view, its Eytzinger rank
// index, and all reusable scratch storage are rebuilt lazily by the first
// query on the restored sketch.
type Snapshot[T any] struct {
	Config    Config
	N         uint64
	Bound     uint64
	Min, Max  T
	HasMinMax bool
	RNG       rng.State
	Levels    []LevelSnapshot[T]
	Stats     Stats
}

// Snapshot captures the sketch state. Item slices are copies (the caller
// may retain or mutate them freely); they are windows of one contiguous
// allocation, copied level by level from the sketch's slab — one allocation
// and O(levels) memcpys regardless of the level count.
func (s *Sketch[T]) Snapshot() Snapshot[T] {
	snap := Snapshot[T]{
		Config:    s.cfg,
		N:         s.n,
		Bound:     s.bound,
		Min:       s.min,
		Max:       s.max,
		HasMinMax: s.hasMinMax,
		RNG:       s.rnd.State(),
		Levels:    make([]LevelSnapshot[T], len(s.levels)),
		Stats:     s.stats,
	}
	slab := make([]T, s.retained)
	off := 0
	for h := range s.levels {
		n := copy(slab[off:], s.levels[h].buf)
		snap.Levels[h] = LevelSnapshot[T]{
			State: uint64(s.levels[h].state),
			Items: slab[off : off+n : off+n],
		}
		off += n
	}
	return snap
}

// maxRestoreCapacity caps the total level-slab capacity (in items) that
// FromSnapshot will allocate for a decoded snapshot: untrusted headers
// choose the geometry, so the implied allocation must be bounded by a
// constant, not by attacker-supplied accuracy parameters.
const maxRestoreCapacity = 1 << 28

// FromSnapshot reconstructs a sketch from a snapshot, validating structural
// consistency (weight conservation, bound sanity, buffer sizes). The less
// function must match the one the snapshot was taken under; this cannot be
// checked and is the caller's contract.
func FromSnapshot[T any](less func(a, b T) bool, snap Snapshot[T]) (*Sketch[T], error) {
	if less == nil {
		return nil, errors.New("core: nil less function")
	}
	cfg := snap.Config
	if err := cfg.Normalize(); err != nil {
		return nil, fmt.Errorf("core: snapshot config: %w", err)
	}
	if snap.Bound < snap.N {
		return nil, fmt.Errorf("core: snapshot bound %d < n %d", snap.Bound, snap.N)
	}
	if snap.Bound == 0 || snap.Bound&(snap.Bound-1) != 0 {
		return nil, fmt.Errorf("core: snapshot bound %d is not a power of two", snap.Bound)
	}
	if len(snap.Levels) == 0 {
		return nil, errors.New("core: snapshot has no levels")
	}
	if len(snap.Levels) > 64 {
		return nil, fmt.Errorf("core: snapshot has %d levels", len(snap.Levels))
	}
	s := &Sketch[T]{
		less:      less,
		kern:      kernelFor(less),
		cfg:       cfg,
		rnd:       rng.New(cfg.Seed),
		n:         snap.N,
		bound:     snap.Bound,
		geom:      cfg.geometryFor(snap.Bound),
		min:       snap.Min,
		max:       snap.Max,
		hasMinMax: snap.HasMinMax,
		stats:     snap.Stats,
	}
	s.rnd.Restore(snap.RNG)
	// The restored slab is levels × geom.b items, and geom.b is derived from
	// header fields an attacker controls (k̂, K, ε, bound) — not from the
	// payload. Cap the total before allocating: a tiny hostile record must
	// not be able to demand a multi-gigabyte slab (or overflow the int
	// arithmetic into a make panic). Honest sketches sit far below the cap —
	// it admits ~2 GiB of 8-byte items, beyond ε = 10⁻⁵ at 2⁶² streams.
	if s.geom.b <= 0 ||
		int64(s.geom.b)*int64(len(snap.Levels)) > maxRestoreCapacity {
		return nil, fmt.Errorf("core: snapshot geometry demands %d levels × %d capacity, beyond the restore cap", len(snap.Levels), s.geom.b)
	}
	// Validate level sizes before laying out storage, then build the whole
	// slab in one allocation with a geometry-capacity window per level.
	var weight uint64
	for h, lv := range snap.Levels {
		if len(lv.Items) >= s.geom.b {
			return nil, fmt.Errorf("core: snapshot level %d holds %d items ≥ capacity %d", h, len(lv.Items), s.geom.b)
		}
		weight += uint64(len(lv.Items)) << uint(h)
	}
	s.store.initWindows(len(snap.Levels), s.geom.b)
	s.levels = make([]compactor[T], len(snap.Levels))
	s.store.realias(s.levels)
	for h, lv := range snap.Levels {
		c := &s.levels[h]
		c.buf = append(c.buf, lv.Items...)
		c.state = schedule.State(lv.State)
		// Re-establish the sorted-compactor invariant: snapshots carry raw
		// buffers, so recover the sorted prefix (the whole buffer for any
		// state written by this implementation; a shorter prefix plus tail
		// for foreign or pre-invariant snapshots is equally valid).
		c.sorted = sortedPrefixLen(c.buf, s.internalLess)
		s.retained += len(lv.Items)
	}
	if weight != snap.N {
		return nil, fmt.Errorf("core: snapshot weight %d != n %d", weight, snap.N)
	}
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: snapshot invalid: %w", err)
	}
	return s, nil
}
