package core

// Property tests for the sorted-compactor invariant: buf[:sorted] is sorted
// under the internal order at every level, at rest, after every mutating
// operation the engine supports. CheckInvariants enforces the invariant
// (invariant 8), so these tests drive random operation sequences and call it
// after each step.

import (
	"math"
	"testing"

	"req/internal/rng"
)

// checkAll asserts the structural invariants and that queries see every
// level consistently (spot-check: Rank(max) must equal n).
func checkAll(t *testing.T, tag string, s *Sketch[float64]) {
	t.Helper()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	if s.n > 0 {
		mx, _ := s.Max()
		if got := s.Rank(mx); got != s.n {
			t.Fatalf("%s: Rank(max) = %d, want n = %d", tag, got, s.n)
		}
	}
}

func TestPropertySortedInvariantSurvivesOps(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		r := rng.New(seed * 0x9e3779b97f4a7c15)
		cfg := Config{Eps: 0.1, Delta: 0.1, N0: 1 << 8, Seed: seed}
		s, err := New(fless, cfg)
		if err != nil {
			t.Fatal(err)
		}
		val := func() float64 { return math.Floor(r.Float64() * 1e4) }
		for op := 0; op < 400; op++ {
			switch r.Intn(10) {
			case 0, 1, 2: // single updates (may cross growth boundaries)
				for i, m := 0, 1+r.Intn(64); i < m; i++ {
					s.Update(val())
				}
				checkAll(t, "Update", s)
			case 3, 4, 5: // batch updates of varied size
				batch := make([]float64, r.Intn(700))
				for i := range batch {
					batch[i] = val()
				}
				s.UpdateBatch(batch)
				checkAll(t, "UpdateBatch", s)
			case 6: // weighted updates leave tails on upper levels
				if err := s.UpdateWeighted(val(), 1+uint64(r.Intn(5000))); err != nil {
					t.Fatal(err)
				}
				checkAll(t, "UpdateWeighted", s)
			case 7: // merge a second sketch in (exercises growth + cascade)
				ocfg := cfg
				ocfg.Seed = seed + 1000
				o, err := New(fless, ocfg)
				if err != nil {
					t.Fatal(err)
				}
				for i, m := 0, r.Intn(2000); i < m; i++ {
					o.Update(val())
				}
				if err := s.Merge(o); err != nil {
					t.Fatal(err)
				}
				checkAll(t, "Merge", s)
			case 8: // clone, then serde round-trip
				c := s.Clone()
				checkAll(t, "Clone", c)
				rt, err := FromSnapshot(fless, s.Snapshot())
				if err != nil {
					t.Fatal(err)
				}
				checkAll(t, "FromSnapshot", rt)
				// The restored sketch keeps ingesting without violating the
				// invariant (snapshots may carry an unsorted level-0 tail).
				rt.Update(val())
				checkAll(t, "FromSnapshot+Update", rt)
			case 9: // view build settles tails; occasionally reset
				_ = s.SortedView()
				checkAll(t, "SortedView", s)
				if r.Intn(8) == 0 {
					s.Reset()
					checkAll(t, "Reset", s)
				}
			}
		}
	}
}

// TestUpdateBatchBitIdenticalWithoutGrowth: when no stream-length growth
// lands mid-batch, UpdateBatch is bit-for-bit the same machine as per-item
// Update — same buffers in the same order, same sorted prefixes, same coin
// stream position.
func TestUpdateBatchBitIdenticalWithoutGrowth(t *testing.T) {
	cfg := Config{Eps: 0.05, Delta: 0.05, N0: 1 << 20, Seed: 99}
	a, err := New(fless, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(fless, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(123)
	for round := 0; round < 50; round++ {
		batch := make([]float64, r.Intn(5000))
		for i := range batch {
			batch[i] = math.Floor(r.Float64() * 1e5)
		}
		for _, v := range batch {
			a.Update(v)
		}
		b.UpdateBatch(batch)
		if a.rnd.State() != b.rnd.State() {
			t.Fatalf("round %d: coin streams diverged", round)
		}
		if a.Count() != b.Count() || a.NumLevels() != b.NumLevels() {
			t.Fatalf("round %d: shape diverged", round)
		}
		for h := range a.levels {
			la, lb := &a.levels[h], &b.levels[h]
			if la.sorted != lb.sorted || len(la.buf) != len(lb.buf) || la.state != lb.state {
				t.Fatalf("round %d level %d: prefix/len/state diverged (%d/%d/%b vs %d/%d/%b)",
					round, h, la.sorted, len(la.buf), la.state, lb.sorted, len(lb.buf), lb.state)
			}
			for i := range la.buf {
				if la.buf[i] != lb.buf[i] {
					t.Fatalf("round %d level %d item %d: %v vs %v", round, h, i, la.buf[i], lb.buf[i])
				}
			}
		}
	}
}

// Across a growth boundary the batch path may square the bound one chunk
// early; the invariants and the accuracy-bearing structure must still hold,
// and min/max/count must match the per-item path exactly.
func TestUpdateBatchAcrossGrowth(t *testing.T) {
	cfg := Config{Eps: 0.1, Delta: 0.1, N0: 1 << 8, Seed: 5}
	a, err := New(fless, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(fless, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(321)
	stream := make([]float64, 200000)
	for i := range stream {
		stream[i] = r.Float64()
	}
	for _, v := range stream {
		a.Update(v)
	}
	b.UpdateBatch(stream)
	checkAll(t, "batch across growth", b)
	if a.Count() != b.Count() {
		t.Fatalf("count: %d vs %d", a.Count(), b.Count())
	}
	amn, _ := a.Min()
	bmn, _ := b.Min()
	amx, _ := a.Max()
	bmx, _ := b.Max()
	if amn != bmn || amx != bmx {
		t.Fatalf("min/max diverged: (%v,%v) vs (%v,%v)", amn, amx, bmn, bmx)
	}
	if a.Bound() != b.Bound() {
		t.Fatalf("bound: %d vs %d", a.Bound(), b.Bound())
	}
	// Both paths carry the paper's guarantee; their estimates at mid ranks
	// must agree to within the (generous) combined error budget.
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
		qa, err := a.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		qb, err := b.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(qa-qb) > 0.25*math.Max(qa, qb)+1e-9 {
			t.Fatalf("Quantile(%v) wildly diverged: %v vs %v", phi, qa, qb)
		}
	}
}

func TestUpdateBatchEdgeCases(t *testing.T) {
	s, err := New(fless, Config{Eps: 0.1, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.UpdateBatch(nil)
	s.UpdateBatch([]float64{})
	if !s.Empty() {
		t.Fatal("empty batches changed the sketch")
	}
	s.UpdateBatch([]float64{42})
	if s.Count() != 1 {
		t.Fatalf("count = %d", s.Count())
	}
	if q, _ := s.Quantile(0.5); q != 42 {
		t.Fatalf("quantile = %v", q)
	}
	// A batch far larger than one buffer must cascade correctly.
	big := make([]float64, 100000)
	for i := range big {
		big[i] = float64(i)
	}
	s.UpdateBatch(big)
	if s.Count() != 100001 {
		t.Fatalf("count = %d", s.Count())
	}
	checkAll(t, "large batch", s)
	// Ascending ingest must leave level 0 fully sorted (no tail): the
	// sorted-prefix extension makes settle free for sorted streams.
	if lv := &s.levels[0]; lv.sorted != len(lv.buf) {
		t.Fatalf("ascending batch left a tail: sorted=%d len=%d", lv.sorted, len(lv.buf))
	}
}

// The frozen-rank satellite: on a frozen sketch, Rank must route through
// the cached view and agree with the unfrozen answer.
func TestRankFrozenMatchesUnfrozen(t *testing.T) {
	s, err := New(fless, Config{Eps: 0.05, Delta: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for i := 0; i < 100000; i++ {
		s.Update(math.Floor(r.Float64() * 1e5))
	}
	probes := make([]float64, 64)
	for i := range probes {
		probes[i] = r.Float64() * 1e5
	}
	unfrozen := make([]uint64, len(probes))
	unfrozenEx := make([]uint64, len(probes))
	for i, y := range probes {
		unfrozen[i] = s.Rank(y)
		unfrozenEx[i] = s.RankExclusive(y)
	}
	if s.Frozen() {
		t.Fatal("plain Rank must not freeze the sketch")
	}
	s.SortedView()
	if !s.Frozen() {
		t.Fatal("SortedView must freeze the sketch")
	}
	for i, y := range probes {
		if got := s.Rank(y); got != unfrozen[i] {
			t.Fatalf("Rank(%v) frozen %d != unfrozen %d", y, got, unfrozen[i])
		}
		if got := s.RankExclusive(y); got != unfrozenEx[i] {
			t.Fatalf("RankExclusive(%v) frozen %d != unfrozen %d", y, got, unfrozenEx[i])
		}
	}
	s.Update(1)
	if s.Frozen() {
		t.Fatal("Update must unfreeze")
	}
}

// HRA sketches store buffers descending in the caller's order; the
// descending binary searches must agree with a linear scan.
func TestRankBinarySearchHRA(t *testing.T) {
	s, err := New(fless, Config{Eps: 0.05, Delta: 0.05, Seed: 9, HRA: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	for i := 0; i < 60000; i++ {
		s.Update(math.Floor(r.Float64() * 1e4))
	}
	linear := func(y float64) (le, lt uint64) {
		for h := range s.levels {
			var cle, clt int
			for _, x := range s.levels[h].buf {
				if !s.less(y, x) {
					cle++
				}
				if s.less(x, y) {
					clt++
				}
			}
			le += uint64(cle) << uint(h)
			lt += uint64(clt) << uint(h)
		}
		return
	}
	for i := 0; i < 200; i++ {
		y := r.Float64() * 1.1e4
		le, lt := linear(y)
		if got := s.Rank(y); got != le {
			t.Fatalf("HRA Rank(%v) = %d, want %d", y, got, le)
		}
		if got := s.RankExclusive(y); got != lt {
			t.Fatalf("HRA RankExclusive(%v) = %d, want %d", y, got, lt)
		}
	}
}
