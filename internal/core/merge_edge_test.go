package core

// Merge edge cases targeting the Appendix D machinery: bound mismatches in
// both directions, geometry recomputation mid-merge, schedule-state OR
// semantics, and high-volume pairwise merging.

import (
	"math"
	"testing"

	"req/internal/rng"
	"req/internal/schedule"
)

func TestMergeShortWithLargerBound(t *testing.T) {
	// The source (shorter) sketch has a LARGER bound than the target: the
	// target must grow to cover the combined stream, and the source's
	// special compaction must be skipped (its geometry is already ahead).
	cfgSmall := Config{Eps: 0.1, Delta: 0.1, N0: 1 << 12}
	cfgBig := Config{Eps: 0.1, Delta: 0.1, N0: 1 << 26}
	tall := newFloat64(t, cfgSmall)
	short := newFloat64(t, cfgBig)
	tall.cfg.Seed = 1
	short.cfg.Seed = 2
	perm := rng.New(3).Perm(60000)
	for i, v := range perm {
		if i < 50000 {
			tall.Update(float64(v))
		} else {
			short.Update(float64(v))
		}
	}
	if short.Bound() <= tall.Bound() {
		t.Fatalf("setup: short bound %d vs tall bound %d", short.Bound(), tall.Bound())
	}
	if err := tall.Merge(short); err != nil {
		t.Fatal(err)
	}
	if err := tall.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if rel := mergeRelErr(t, tall, 60000); rel > 0.1 {
		t.Fatalf("rel error %.4f", rel)
	}
}

func TestMergeBothBelowHalfBound(t *testing.T) {
	// Neither sketch needs growth: bound covers the sum; no special
	// compactions should run.
	cfg := Config{Eps: 0.1, Delta: 0.1, N0: 1 << 20}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	a.cfg.Seed = 4
	b.cfg.Seed = 5
	perm := rng.New(6).Perm(100000)
	for i, v := range perm {
		if i%2 == 0 {
			a.Update(float64(v))
		} else {
			b.Update(float64(v))
		}
	}
	pre := a.Stats().SpecialCompactions + b.Stats().SpecialCompactions
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Stats().SpecialCompactions != pre {
		t.Fatalf("special compactions ran without a bound change: %d → %d",
			pre, a.Stats().SpecialCompactions)
	}
	if a.Bound() != 1<<20 {
		t.Fatalf("bound changed to %d", a.Bound())
	}
}

func TestMergeStatesAreORed(t *testing.T) {
	cfg := Config{Mode: ModeFixedK, K: 8, N0: 1 << 22}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	a.cfg.Seed = 7
	b.cfg.Seed = 8
	// Drive different compaction counts into each sketch's level 0.
	for i := 0; i < 40000; i++ {
		a.Update(float64(i))
	}
	for i := 0; i < 10000; i++ {
		b.Update(float64(i))
	}
	sa := a.levels[0].state
	sb := b.levels[0].state
	if sa == 0 || sb == 0 {
		t.Fatal("setup: expected nonzero states")
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.levels[0].state
	want := schedule.Combine(sa, sb)
	// The final sweep may compact level 0 once more (state+1).
	if got != want && got != want.Next() {
		t.Fatalf("level-0 state %b, want OR %b (or +1)", got, want)
	}
}

func TestMergeManyTinySketches(t *testing.T) {
	// 512 two-item sketches merged pairwise: stresses the empty/short
	// paths and confirms exact weight conservation throughout.
	cfg := Config{Eps: 0.1, Delta: 0.1}
	acc := newFloat64(t, cfg)
	for i := 0; i < 512; i++ {
		s := newFloat64(t, cfg)
		s.cfg.Seed = uint64(i)
		s.Update(float64(2 * i))
		s.Update(float64(2*i + 1))
		if err := acc.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if acc.Count() != 1024 {
		t.Fatalf("count = %d", acc.Count())
	}
	if err := acc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for rank := 1; rank <= 1024; rank *= 2 {
		got := float64(acc.Rank(float64(rank - 1)))
		if math.Abs(got-float64(rank))/float64(rank) > 0.1 {
			t.Fatalf("rank %d: %v", rank, got)
		}
	}
}

func TestMergeChainAlternatingDirections(t *testing.T) {
	// Alternate which operand is the receiver; the result must not depend
	// on who absorbed whom beyond randomness.
	cfg := Config{Eps: 0.05, Delta: 0.05}
	perm := rng.New(9).Perm(1 << 16)
	build := func(leftToRight bool, seedBase uint64) *Sketch[float64] {
		shards := make([]*Sketch[float64], 8)
		per := len(perm) / 8
		for i := range shards {
			shards[i] = newFloat64(t, cfg)
			shards[i].cfg.Seed = seedBase + uint64(i)
			for _, v := range perm[i*per : (i+1)*per] {
				shards[i].Update(float64(v))
			}
		}
		acc := shards[0]
		for i := 1; i < len(shards); i++ {
			if leftToRight {
				if err := acc.Merge(shards[i]); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := shards[i].Merge(acc); err != nil {
					t.Fatal(err)
				}
				acc = shards[i]
			}
		}
		return acc
	}
	l2r := build(true, 100)
	r2l := build(false, 200)
	for _, s := range []*Sketch[float64]{l2r, r2l} {
		if s.Count() != uint64(len(perm)) {
			t.Fatalf("count = %d", s.Count())
		}
		if rel := mergeRelErr(t, s, len(perm)); rel > 0.05 {
			t.Fatalf("rel error %.4f", rel)
		}
	}
}

func TestMergeAfterManyGrowths(t *testing.T) {
	// Both operands have squared their bounds several times before the
	// merge; the combined sketch must still satisfy everything.
	cfg := Config{Eps: 0.1, Delta: 0.1, N0: 1 << 10}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	a.cfg.Seed = 10
	b.cfg.Seed = 11
	perm := rng.New(12).Perm(1 << 17)
	for i, v := range perm {
		if i%2 == 0 {
			a.Update(float64(v))
		} else {
			b.Update(float64(v))
		}
	}
	if a.Stats().Growths == 0 || b.Stats().Growths == 0 {
		t.Fatal("setup: expected growths")
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if rel := mergeRelErr(t, a, 1<<17); rel > 0.1 {
		t.Fatalf("rel error %.4f", rel)
	}
}

func TestMergeWeightedSketchesAcrossBounds(t *testing.T) {
	cfg := Config{Eps: 0.1, Delta: 0.1, N0: 1 << 12}
	a := newFloat64(t, cfg)
	b := newFloat64(t, cfg)
	a.cfg.Seed = 13
	b.cfg.Seed = 14
	for i := 0; i < 200; i++ {
		if err := a.UpdateWeighted(float64(i), 1000); err != nil {
			t.Fatal(err)
		}
		if err := b.UpdateWeighted(float64(200+i), 1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 400000 {
		t.Fatalf("count = %d", a.Count())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := float64(a.Rank(199))
	if math.Abs(got-200000)/200000 > 0.1 {
		t.Fatalf("Rank(199) = %v", got)
	}
}
