package core

import (
	"sort"
	"testing"

	"req/internal/rng"
)

func TestMergeSortedIntoRandom(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 500; trial++ {
		m, e := r.Intn(200), r.Intn(200)
		dst := make([]float64, m, m+e)
		add := make([]float64, e)
		for i := range dst {
			dst[i] = float64(r.Intn(50))
		}
		for i := range add {
			add[i] = float64(r.Intn(50))
		}
		sort.Float64s(dst)
		sort.Float64s(add)
		want := append(append([]float64(nil), dst...), add...)
		sort.Float64s(want)
		got := mergeSortedInto(dst, add, fless)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMergeSortedIntoExtremes(t *testing.T) {
	// add entirely above dst: the fast path (no element moves).
	got := mergeSortedInto([]float64{1, 2, 3}, []float64{4, 5}, fless)
	for i, w := range []float64{1, 2, 3, 4, 5} {
		if got[i] != w {
			t.Fatalf("above: got %v", got)
		}
	}
	// add entirely below dst: one long gallop run.
	got = mergeSortedInto([]float64{10, 11, 12}, []float64{1, 2}, fless)
	for i, w := range []float64{1, 2, 10, 11, 12} {
		if got[i] != w {
			t.Fatalf("below: got %v", got)
		}
	}
	// empty operands.
	if got = mergeSortedInto(nil, nil, fless); len(got) != 0 {
		t.Fatal("nil/nil")
	}
	if got = mergeSortedInto([]float64{1}, nil, fless); len(got) != 1 || got[0] != 1 {
		t.Fatal("dst/nil")
	}
	if got = mergeSortedInto(nil, []float64{1}, fless); len(got) != 1 || got[0] != 1 {
		t.Fatal("nil/add")
	}
	// duplicates everywhere.
	got = mergeSortedInto([]float64{2, 2, 2}, []float64{2, 2}, fless)
	if len(got) != 5 {
		t.Fatalf("dups: got %v", got)
	}
}

func TestCountDescSearches(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(r.Intn(30))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(xs))) // descending
		y := float64(r.Intn(32) - 1)
		wantLE, wantLT := 0, 0
		for _, x := range xs {
			if x <= y {
				wantLE++
			}
			if x < y {
				wantLT++
			}
		}
		if got := countLEDesc(xs, y, fless); got != wantLE {
			t.Fatalf("countLEDesc(%v, %v) = %d, want %d", xs, y, got, wantLE)
		}
		if got := countLTDesc(xs, y, fless); got != wantLT {
			t.Fatalf("countLTDesc(%v, %v) = %d, want %d", xs, y, got, wantLT)
		}
	}
}

func TestSortedPrefixLen(t *testing.T) {
	cases := []struct {
		xs   []float64
		want int
	}{
		{nil, 0},
		{[]float64{1}, 1},
		{[]float64{1, 2, 3}, 3},
		{[]float64{1, 1, 1}, 3},
		{[]float64{3, 2, 1}, 1},
		{[]float64{1, 2, 1, 4}, 2},
	}
	for _, tc := range cases {
		if got := sortedPrefixLen(tc.xs, fless); got != tc.want {
			t.Errorf("sortedPrefixLen(%v) = %d, want %d", tc.xs, got, tc.want)
		}
	}
}

func TestSettleLevelMergesTail(t *testing.T) {
	s := mkSketch(t, 4, true)
	loadLevel0(s, 1, 3, 5, 7, 6, 2, 4)
	s.levels[0].sorted = 4
	s.settleLevel(0)
	lv := &s.levels[0]
	if lv.sorted != len(lv.buf) || !isSorted(lv.buf, fless) {
		t.Fatalf("settle failed: %v (sorted=%d)", lv.buf, lv.sorted)
	}
	// Idempotent.
	before := append([]float64(nil), lv.buf...)
	s.settleLevel(0)
	for i, v := range s.levels[0].buf {
		if before[i] != v {
			t.Fatal("settle not idempotent")
		}
	}
}
