package core

// Sorted-run merge primitives backing the sorted-compactor invariant (after
// Ivkin et al., "Streaming Quantiles Algorithms with Small Space and Update
// Time", 2019): every compactor keeps its buffer as a sorted prefix plus an
// unsorted append tail. Compaction never re-sorts a whole buffer — it sorts
// only the tail, merges it behind the prefix, and merges promoted emissions
// into the (sorted) buffer one level up. All merges run backward over spare
// capacity; long runs are located by galloping (exponential then binary
// search) and moved with a single copy.

// mergeSortedInto merges the sorted block add into the sorted slice dst
// (both ascending under less) and returns the extended slice. After dst is
// extended by len(add) the merge is performed backward in place, so no
// scratch beyond dst's spare capacity is needed; add is only read and must
// not alias dst's backing array. When dst is a level buffer, it is a capped
// slab window whose capacity the caller has ensured (store.ensure), so the
// append can never reallocate out of the slab — the merge runs entirely
// inside the window's slack.
func mergeSortedInto[T any](dst []T, add []T, less func(a, b T) bool) []T {
	m, e := len(dst), len(add)
	if e == 0 {
		return dst
	}
	dst = append(dst, add...)
	if m == 0 || !less(add[0], dst[m-1]) {
		// add belongs entirely after dst (the common case for near-sorted
		// ingest); append already placed it.
		return dst
	}
	i, j, k := m-1, e-1, m+e-1
	for j >= 0 && i >= 0 {
		if less(add[j], dst[i]) {
			// Gallop backward for p, the first index in dst[:i+1] with
			// dst[p] > add[j], then move dst[p:i+1] down in one copy.
			lo, hi := 0, i
			for step := 1; hi-step >= 0; step <<= 1 {
				if !less(add[j], dst[hi-step]) {
					lo = hi - step + 1
					break
				}
			}
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if less(add[j], dst[mid]) {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			cnt := i - lo + 1
			copy(dst[k-cnt+1:k+1], dst[lo:i+1])
			k -= cnt
			i = lo - 1
		} else {
			dst[k] = add[j]
			j--
			k--
		}
	}
	if j >= 0 {
		copy(dst[:j+1], add[:j+1])
	}
	return dst
}

// settleLevel restores the fully-sorted state of level h: the unsorted
// append tail is sorted on its own and merged behind the sorted prefix in
// one backward galloping pass through s.scratch. No-op when the buffer is
// already fully sorted. Callers that need s.scratch afterwards must settle
// first; settleLevel overwrites it.
func (s *Sketch[T]) settleLevel(h int) {
	c := &s.levels[h]
	if c.sorted == len(c.buf) {
		return
	}
	tail := c.buf[c.sorted:]
	s.sortInternal(tail)
	if c.sorted == 0 {
		c.sorted = len(c.buf)
		return
	}
	s.scratch = append(s.scratch[:0], tail...)
	c.buf = s.mergeInternalInto(c.buf[:c.sorted], s.scratch)
	c.sorted = len(c.buf)
}

// countLEDesc returns the number of elements ≤ y in xs, which must be
// sorted descending under less (the storage order of HRA sketches).
//
//req:noalloc
func countLEDesc[T any](xs []T, y T, less func(a, b T) bool) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(y, xs[mid]) { // xs[mid] > y: boundary is right of mid
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return len(xs) - lo
}

// countLTDesc returns the number of elements strictly less than y in xs,
// which must be sorted descending under less.
//
//req:noalloc
func countLTDesc[T any](xs []T, y T, less func(a, b T) bool) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if !less(xs[mid], y) { // xs[mid] ≥ y: boundary is right of mid
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return len(xs) - lo
}

// gallopLE returns the index of the first element > y in sorted xs, starting
// the search at from (every element before from must already be ≤ y — the
// batch-query sweeps guarantee it by visiting probes in ascending order).
// Exponential probing followed by a binary search keeps the cost
// O(log(gap)) in the distance advanced, so a whole ascending sweep is O(n)
// worst case and O(m·log(n/m)) for m spread-out probes.
//
//req:noalloc
func gallopLE[T any](xs []T, from int, y T, less func(a, b T) bool) int {
	n := len(xs)
	if from >= n || less(y, xs[from]) {
		return from
	}
	lo, hi := from, n // xs[lo] ≤ y; hi is first candidate known > y (or n)
	for step := 1; lo+step < n; step <<= 1 {
		if less(y, xs[lo+step]) {
			hi = lo + step
			break
		}
		lo += step
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(y, xs[mid]) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// gallopCumGE returns the index of the first entry ≥ target in the
// non-decreasing cumulative-weight array, starting at from; see gallopLE.
//
//req:noalloc
func gallopCumGE(cum []uint64, from int, target uint64) int {
	n := len(cum)
	if from >= n || cum[from] >= target {
		return from
	}
	lo, hi := from, n // cum[lo] < target
	for step := 1; lo+step < n; step <<= 1 {
		if cum[lo+step] >= target {
			hi = lo + step
			break
		}
		lo += step
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid] >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// sortedPrefixLen returns the length of the longest sorted (non-decreasing
// under less) prefix of xs.
func sortedPrefixLen[T any](xs []T, less func(a, b T) bool) int {
	for i := 1; i < len(xs); i++ {
		if less(xs[i], xs[i-1]) {
			return i
		}
	}
	return len(xs)
}
