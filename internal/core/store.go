package core

// Contiguous level-store storage engine.
//
// The relative-compactor hierarchy is, at steady state, a small set of
// sorted runs of geometrically increasing weight. Before this engine each
// run lived in its own heap-allocated []T, so Clone/CopyFrom/Merge/serde
// walked O(levels) fragmented objects and every level grew independently.
// levelStore packs every level's buffer into ONE grow-only backing slab:
//
//	slab:  [ level 0 buf | slack ][ level 1 buf | slack ] … [ level H | slack ]
//	win:   {off,cap}₀              {off,cap}₁               {off,cap}_H
//
// Each level owns the window slab[off:off+cap]; its live items occupy the
// prefix (the compactor's buf slice aliases exactly that prefix, with the
// window capacity as the slice capacity, gap-buffer style). Appends and
// compaction emissions therefore write in place inside the slab; growing a
// window is one overlapping copy of the occupied prefixes above it; growing
// the slab is one amortized copy of everything. Clone and CopyFrom become
// one slab allocation (at most) plus a memcpy per level.
//
// Discipline (checked by CheckInvariants, invariant 10):
//
//   - windows are laid out in level order, contiguous and non-overlapping:
//     win[h+1].off == win[h].off + win[h].cap, and Σ caps == len(slab);
//   - every compactor's buf aliases its window: &buf[0] == &slab[off] and
//     cap(buf) == win.cap — appends past the window are a bug, prevented by
//     calling ensure before any append that could exceed the capacity;
//   - slack (the region between a window's occupied prefix and its cap) is
//     always zeroed, so pointer-bearing item types never linger after a
//     truncation, shift, or copy;
//   - scratch buffers (Sketch.scratch, Sketch.mergeBuf) never alias the
//     slab — merge primitives rely on their operands not overlapping.
type levelStore[T any] struct {
	slab []T      // backing storage; len(slab) == sum of window caps
	win  []window // one window per level, in level order
}

// window describes one level's reserved region of the slab. The occupied
// length is not stored here: it is the length of the level's buf alias.
type window struct {
	off int // start index in slab
	cap int // reserved capacity, slack included
}

// realias rebuilds every level's buf alias from the window table after the
// slab moved or windows shifted. Each buf keeps its current length; offset
// and capacity come from the window.
//
//req:noalloc
func (st *levelStore[T]) realias(levels []compactor[T]) {
	for i := range levels {
		w := st.win[i]
		levels[i].buf = st.slab[w.off : w.off+len(levels[i].buf) : w.off+w.cap]
	}
}

// grow extends the slab to length need, preserving contents. Reallocation
// doubles so a run of window growths amortizes to O(1) copies per item.
func (st *levelStore[T]) grow(need int) {
	if cap(st.slab) >= need {
		st.slab = st.slab[:need]
		return
	}
	newCap := 2 * cap(st.slab)
	if newCap < need {
		newCap = need
	}
	fresh := make([]T, need, newCap)
	copy(fresh, st.slab)
	st.slab = fresh
}

// addLevel reserves a window of the given capacity at the end of the slab
// and appends an empty compactor addressing it, returning the extended
// levels slice (the slab may have moved, so every buf is re-aliased).
func (st *levelStore[T]) addLevel(levels []compactor[T], capacity int) []compactor[T] {
	off := len(st.slab)
	st.grow(off + capacity)
	st.win = append(st.win, window{off: off, cap: capacity})
	levels = append(levels, compactor[T]{})
	st.realias(levels)
	return levels
}

// ensure grows level h's window to hold at least need items, leaving
// geometric slack (cap × 1.5) so a run of appends amortizes to O(1) moved
// items. The occupied prefix of every higher level shifts right by the
// added slack in one overlapping copy per level (top-down, so nothing is
// clobbered); all slack regions are re-zeroed and every buf re-aliased.
// No-op when the window already fits.
func (st *levelStore[T]) ensure(levels []compactor[T], h, need int) {
	w := st.win[h]
	if w.cap >= need {
		return
	}
	newCap := w.cap + w.cap/2
	if newCap < need {
		newCap = need
	}
	delta := newCap - w.cap
	st.grow(len(st.slab) + delta)
	for i := len(st.win) - 1; i > h; i-- {
		wi := st.win[i]
		n := len(levels[i].buf)
		copy(st.slab[wi.off+delta:wi.off+delta+n], st.slab[wi.off:wi.off+n])
		// Scrub the stale prefix the shift left behind (the first
		// min(n, delta) slots of the old position — the rest was
		// overwritten by the shifted copy or already-zero slack), so
		// pointer-bearing item types never linger in the gaps. The next
		// (lower) level's shift may write into the cleared region, which is
		// why the loop runs top-down: clear first, overwrite after.
		stale := min(n, delta)
		clear(st.slab[wi.off : wi.off+stale])
		st.win[i].off = wi.off + delta
	}
	st.win[h].cap = newCap
	st.realias(levels)
}

// initWindows lays out count equal windows of capacity capEach in a single
// allocation, discarding any previous contents. Used when the full level
// structure is known up front (snapshot restore).
func (st *levelStore[T]) initWindows(count, capEach int) {
	st.slab = make([]T, count*capEach)
	st.win = make([]window, count)
	for i := range st.win {
		st.win[i] = window{off: i * capEach, cap: capEach}
	}
}

// reset returns the store to a single empty level-0 window, keeping the
// slab allocation. All contents are scrubbed so items of the old stream are
// unreachable through the recycled slab.
func (st *levelStore[T]) reset() {
	clear(st.slab)
	st.win = st.win[:1]
	st.slab = st.slab[:st.win[0].cap]
}

// cloneFrom makes st a compact logical copy of src in freshly allocated
// storage: one slab allocation sized to the occupied items (slack dropped,
// matching what a per-level deep copy used to allocate), one memcpy per
// level. The clone's windows regrow slack on demand through ensure.
func (st *levelStore[T]) cloneFrom(src *levelStore[T], srcLevels []compactor[T]) {
	st.win = make([]window, len(src.win))
	total := 0
	for i := range srcLevels {
		c := max(len(srcLevels[i].buf), 1)
		st.win[i] = window{off: total, cap: c}
		total += c
	}
	st.slab = make([]T, total)
	for i := range srcLevels {
		copy(st.slab[st.win[i].off:], srcLevels[i].buf)
	}
}

// copyFrom makes st an exact copy of src, reusing st's slab when its
// capacity suffices. Only occupied prefixes move: when the window layouts
// match (the steady re-stage case — refreshing the same long-lived target
// from the same source), each level is one memcpy plus a clear of the
// shrunk remainder; a layout change scrubs the old occupied regions and
// re-copies under src's layout. Either way the store's zero-slack
// discipline is preserved without touching untouched slack.
func (st *levelStore[T]) copyFrom(src *levelStore[T], dstLevels, srcLevels []compactor[T]) {
	n := len(src.slab)
	if cap(st.slab) < n {
		st.slab = make([]T, n)
		st.win = append(st.win[:0], src.win...)
		for i := range srcLevels {
			copy(st.slab[src.win[i].off:], srcLevels[i].buf)
		}
		return
	}
	sameLayout := len(st.win) == len(src.win) && len(st.slab) == n
	for i := 0; sameLayout && i < len(st.win); i++ {
		sameLayout = st.win[i] == src.win[i]
	}
	if sameLayout {
		for i := range srcLevels {
			w := src.win[i]
			sn := copy(st.slab[w.off:], srcLevels[i].buf)
			if dn := len(dstLevels[i].buf); dn > sn {
				clear(st.slab[w.off+sn : w.off+dn])
			}
		}
		return
	}
	// Layout change: the rest of the backing array is already zero by the
	// store's discipline, so scrubbing the old occupied regions is all the
	// clearing a relayout needs.
	for i := range dstLevels {
		clear(dstLevels[i].buf)
	}
	st.slab = st.slab[:n]
	st.win = append(st.win[:0], src.win...)
	for i := range srcLevels {
		copy(st.slab[src.win[i].off:], srcLevels[i].buf)
	}
}
