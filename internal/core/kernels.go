package core

import (
	"reflect"

	"req/internal/vec"
)

// Monomorphic kernel dispatch. The generic engine routes every comparison
// through the caller's less closure; for the two element types the public
// wrappers actually instantiate (float64, uint64) that indirect call per
// comparison is the dominant cost of the hot loops. When a sketch is
// constructed over the canonical natural-order function (LessF64/LessU64),
// it carries a kernelTable whose fields are internal/vec's monomorphic
// kernels — one indirect call per *operation* instead of per comparison,
// with the comparisons inlined (and the linear count scans AVX2-dispatched
// on capable amd64 hardware).
//
// Detection is deliberately conservative: only the canonical functions
// activate kernels, recognized by function-pointer identity. A caller
// passing its own `func(a, b float64) bool { return a < b }` gets correct
// behaviour through the generic paths — never a silently wrong kernel for
// an order that merely looks natural. The vec kernels are bit-identical
// transcriptions of the generic algorithms (see vec's package comment), so
// kernel and closure paths produce identical sketch states and answers.

// LessF64 is the canonical ascending order for float64 sketches. Construct
// float64 sketches with it (the root package's wrappers do) to activate the
// monomorphic kernel layer; any other function, even one with an identical
// body, keeps the generic closure paths.
func LessF64(a, b float64) bool { return a < b }

// LessU64 is the canonical ascending order for uint64 sketches; see LessF64.
func LessU64(a, b uint64) bool { return a < b }

var (
	lessF64Ptr = reflect.ValueOf(LessF64).Pointer()
	lessU64Ptr = reflect.ValueOf(LessU64).Pointer()
)

// kernelTable is the per-type dispatch surface: every field is a
// monomorphic kernel operating under the natural ascending order (Asc) or
// its reversal (Desc, the internal order of HRA sketches). A nil table on a
// sketch or view means "use the generic closures".
type kernelTable[T any] struct {
	sortAsc  func([]T)
	sortDesc func([]T)

	mergeAsc  func(dst, add []T) []T
	mergeDesc func(dst, add []T) []T

	searchLE    func([]T, T) int
	searchLT    func([]T, T) int
	countLEDesc func([]T, T) int
	countLTDesc func([]T, T) int

	// Linear scans over unsorted tails; AVX2-dispatched in vec on amd64.
	countLE func([]T, T) int
	countLT func([]T, T) int

	gallopLE     func(xs []T, from int, y T) int
	isSortedAsc  func([]T) bool
	isSortedDesc func([]T) bool
	minMax       func(xs []T, mn, mx T) (T, T)
	extendAsc    func(xs []T, sorted int) int
	extendDesc   func(xs []T, sorted int) int

	mergeTailCum func(items []T, cum []uint64, tail []T, old int)
	kway         func(curs []vec.KWayCursor[T], items []T, cum []uint64)

	eytRankLE    func([]T, T) int
	eytRankGE    func([]T, T) int
	eytRankBatch func(items []T, before []uint64, total uint64, ys []T, out []uint64)
}

// kernelFor returns the kernel table for T when less is the canonical
// natural-order function, nil otherwise. Detection is by function-pointer
// identity (func values are not comparable in Go; reflect.Pointer is the
// supported identity), so only LessF64/LessU64 themselves qualify.
func kernelFor[T any](less func(a, b T) bool) *kernelTable[T] {
	if less == nil {
		return nil
	}
	var zero T
	switch any(zero).(type) {
	case float64:
		if reflect.ValueOf(less).Pointer() == lessF64Ptr {
			return any(&kernelF64).(*kernelTable[T])
		}
	case uint64:
		if reflect.ValueOf(less).Pointer() == lessU64Ptr {
			return any(&kernelU64).(*kernelTable[T])
		}
	}
	return nil
}

// sortInternal sorts xs under the internal (compaction) order, through the
// kernel table when installed.
func (s *Sketch[T]) sortInternal(xs []T) {
	if k := s.kern; k != nil {
		if s.cfg.HRA {
			k.sortDesc(xs)
		} else {
			k.sortAsc(xs)
		}
		return
	}
	sortSlice(xs, s.internalLess)
}

// sortCaller sorts xs under the caller's order (always ascending for
// kernel-active sketches), through the kernel table when installed.
func (s *Sketch[T]) sortCaller(xs []T) {
	if k := s.kern; k != nil {
		k.sortAsc(xs)
		return
	}
	sortSlice(xs, s.less)
}

// mergeInternalInto merges the sorted block add into the sorted slice dst
// under the internal order (mergeSortedInto's contract: capacity ensured by
// the caller, add must not alias dst), through the kernel table when
// installed.
func (s *Sketch[T]) mergeInternalInto(dst, add []T) []T {
	if k := s.kern; k != nil {
		if s.cfg.HRA {
			return k.mergeDesc(dst, add)
		}
		return k.mergeAsc(dst, add)
	}
	return mergeSortedInto(dst, add, s.internalLess)
}
