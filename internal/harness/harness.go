// Package harness implements the reproduction experiments: one per
// quantitative claim of the paper (Theorems 1–3, the Appendix C variant,
// the Appendix A lower-bound construction, the schedule/coin design choices)
// plus the baseline comparisons motivated in Section 1. See DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded results.
//
// Every experiment writes a self-contained plain-text report (tables and
// ASCII figures) to an io.Writer; cmd/reqbench runs them from the command
// line, and the package tests run them in -quick mode to keep them from
// bit-rotting.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks stream lengths and trial counts so the whole suite
	// runs in seconds (used by tests); full scale is the default for the
	// CLI and is what EXPERIMENTS.md records.
	Quick bool
	// Seed is the master seed; every experiment derives per-trial seeds
	// from it deterministically.
	Seed uint64
}

// Experiment is one registered reproduction experiment.
type Experiment struct {
	// ID is the short identifier (e.g. "E1").
	ID string
	// Title summarises the experiment.
	Title string
	// PaperRef names the claim being reproduced.
	PaperRef string
	// Run executes the experiment, writing its report to w.
	Run func(w io.Writer, cfg Config) error
}

// registry holds experiments in registration order.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// idLess orders E1 < E2 < … < E10 numerically rather than lexically.
func idLess(a, b string) bool {
	na, oka := idNum(a)
	nb, okb := idNum(b)
	if oka && okb {
		return na < nb
	}
	return a < b
}

func idNum(id string) (int, bool) {
	if len(id) < 2 || (id[0] != 'E' && id[0] != 'F') {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = 10*n + int(c-'0')
	}
	if id[0] == 'F' {
		n += 1000 // figures sort after experiments
	}
	return n, true
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order, separated by headers.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range All() {
		if err := RunOne(w, cfg, e); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// RunOne executes a single experiment with its header banner.
func RunOne(w io.Writer, cfg Config, e Experiment) error {
	rule := strings.Repeat("=", 78)
	fmt.Fprintf(w, "%s\n%s — %s\n  reproduces: %s\n%s\n", rule, e.ID, e.Title, e.PaperRef, rule)
	if err := e.Run(w, cfg); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// Table accumulates rows and prints them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case v == 0:
		return "0"
	case abs >= 1000 || abs < 0.001:
		return fmt.Sprintf("%.4g", v)
	case abs >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}

// Fprint writes the table, padding each column to its widest cell.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.Reset()
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(b.String(), " "))
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// CSV renders the table as comma-separated rows (no quoting; cells are
// numeric or simple identifiers by construction).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
