package harness

import (
	"fmt"
	"io"
	"math"

	"req/internal/core"
	"req/internal/quantile"
	"req/internal/rng"
	"req/internal/stats"
	"req/internal/textplot"
)

func init() {
	register(Experiment{
		ID:       "E2",
		Title:    "Space vs. stream length n",
		PaperRef: "Theorem 1: O(ε⁻¹·log^1.5(εn)·√log(1/δ)) items — log-exponent ≈ 1.5",
		Run:      runE2,
	})
	register(Experiment{
		ID:       "E3",
		Title:    "Space vs. 1/ε: linear for REQ, quadratic for sampling",
		PaperRef: "Sec. 1: REQ ε⁻¹·log^1.5(εn) vs. sampling-based ε⁻²·log(ε²n) [11, 22]",
		Run:      runE3,
	})
	register(Experiment{
		ID:       "E9",
		Title:    "Space vs. failure probability δ: Theorem 1 vs. Theorem 2 modes",
		PaperRef: "Thm 1 √log(1/δ) vs. Thm 2 (App. C) log log(1/δ) dependence",
		Run:      runE9,
	})
	register(Experiment{
		ID:       "E14",
		Title:    "Level structure: Observation 13 and the compactor geometry",
		PaperRef: "Observation 13: #compactors ≤ ⌈log₂(n/B)⌉ + 1; Eq. (16) geometry",
		Run:      runE14,
	})
}

// fill feeds a fresh sketch of the given factory with a permutation stream
// of length n and returns it.
func fill(f quantile.Factory, n int, seed uint64) quantile.Sketch {
	sk := f.New(seed)
	r := rng.New(seed)
	for _, v := range r.Perm(n) {
		sk.Update(float64(v))
	}
	return sk
}

func runE2(w io.Writer, cfg Config) error {
	const eps, delta = 0.02, 0.05
	maxPow := 24
	if cfg.Quick {
		maxPow = 17
	}
	fmt.Fprintf(w, "ε=%.2f δ=%.2f; retained items per sketch as n grows\n", eps, delta)
	fmt.Fprintf(w, "req_norm = req_items / (ε⁻¹·log2(εn)^1.5): Theorem 1 predicts it converges to a constant.\n")
	fmt.Fprintf(w, "(At laptop-scale n the level count log2(n/B) still trails log2(n), so the raw\n")
	fmt.Fprintf(w, "fitted exponent overshoots 1.5 from above and falls as n grows.)\n\n")

	// The REQ sketch is sized for the known stream length at each point
	// (N₀ = n): Theorem 1's formula speaks about the geometry at bound n,
	// and the discrete N-squaring of the unknown-n schedule would otherwise
	// blur the fitted exponent (E8 covers the unknown-n overhead).
	factoriesFor := func(n int) []quantile.Factory {
		return []quantile.Factory{
			quantile.REQFactory(core.Config{Eps: eps, Delta: delta, N0: core.CeilPow2(uint64(n))}, "req"),
			quantile.KLLFactory(eps),
			quantile.GKFactory(eps),
			quantile.SamplerFactory(eps),
			quantile.BQFactory(eps, 22, 0, float64(uint64(1)<<maxPow)),
		}
	}
	header := []any{"n", "log2(eps*n)"}
	for _, f := range factoriesFor(1 << 14) {
		header = append(header, f.Name)
	}
	header = append(header, "req_norm")
	tab := NewTable(toStrings(header)...)

	type point struct{ x, y float64 }
	curves := make(map[string][]point)
	var ns []float64
	for pow := 14; pow <= maxPow; pow += 2 {
		n := 1 << pow
		x := math.Log2(eps * float64(n))
		row := []any{n, x}
		var reqItems int
		for _, f := range factoriesFor(n) {
			sk := fill(f, n, cfg.Seed+2)
			items := sk.ItemsRetained()
			row = append(row, items)
			if f.Name == "req" {
				reqItems = items
			}
			curves[f.Name] = append(curves[f.Name], point{x: x, y: float64(items)})
		}
		row = append(row, float64(reqItems)*eps/math.Pow(x, 1.5))
		ns = append(ns, float64(n))
		tab.AddRow(row...)
	}
	tab.Fprint(w)

	fmt.Fprintf(w, "\nfitted exponents of items ∝ log(εn)^e (Theorem 1 predicts e ≈ 1.5 for req):\n")
	fit := NewTable("sketch", "exponent_e", "expected")
	expect := map[string]string{
		"req":        "1.5 asymptotically; overshoots at small n (see req_norm)",
		"kll":        "~0 (additive, O(k))",
		"gk":         "~flat in practice (≤ O(eps^-1 log(eps n)))",
		"expsampler": "~1 (O(eps^-2 log))",
		"bqdigest":   "~1-2 (O(eps^-1 log(eps n) log U))",
	}
	var reqSeries, kllSeries textplot.Series
	for _, f := range factoriesFor(1 << 14) {
		pts := curves[f.Name]
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.x, p.y
		}
		e, _ := stats.FitPowerLaw(xs, ys)
		fit.AddRow(f.Name, e, expect[f.Name])
		if f.Name == "req" {
			reqSeries = textplot.Series{Name: "req", X: ns, Y: ys}
		}
		if f.Name == "kll" {
			kllSeries = textplot.Series{Name: "kll", X: ns, Y: ys}
		}
	}
	fit.Fprint(w)
	fmt.Fprintln(w)
	fmt.Fprint(w, textplot.Render([]textplot.Series{reqSeries, kllSeries}, textplot.Options{
		Title: "Figure E2: retained items vs n (log-x)", LogX: true,
		XLabel: "n", YLabel: "items", Height: 12,
	}))
	return nil
}

func runE3(w io.Writer, cfg Config) error {
	n := 1 << 19
	if cfg.Quick {
		n = 1 << 15
	}
	epss := []float64{0.1, 0.05, 0.02, 0.01}
	if cfg.Quick {
		epss = []float64{0.1, 0.05}
	}
	fmt.Fprintf(w, "n=%d; retained items as ε shrinks\n\n", n)

	tab := NewTable("eps", "1/eps", "req_items", "expsampler_items", "ratio")
	var invEps, reqItems, samplerItems []float64
	for _, eps := range epss {
		reqSk := fill(quantile.REQFactory(core.Config{Eps: eps, Delta: 0.05}, "req"), n, cfg.Seed+3)
		samp := fill(quantile.SamplerFactory(eps), n, cfg.Seed+3)
		tab.AddRow(eps, 1/eps, reqSk.ItemsRetained(), samp.ItemsRetained(),
			float64(samp.ItemsRetained())/float64(reqSk.ItemsRetained()))
		invEps = append(invEps, 1/eps)
		reqItems = append(reqItems, float64(reqSk.ItemsRetained()))
		samplerItems = append(samplerItems, float64(samp.ItemsRetained()))
	}
	tab.Fprint(w)

	eReq, _ := stats.FitPowerLaw(invEps, reqItems)
	eSamp, _ := stats.FitPowerLaw(invEps, samplerItems)
	fmt.Fprintf(w, "\nfitted exponents of items ∝ (1/ε)^e: req %.2f (paper: 1), expsampler %.2f (paper: 2)\n",
		eReq, eSamp)
	fmt.Fprintln(w)
	fmt.Fprint(w, textplot.Render([]textplot.Series{
		{Name: "req", X: invEps, Y: reqItems},
		{Name: "expsampler", X: invEps, Y: samplerItems},
	}, textplot.Options{
		Title: "Figure E3: items vs 1/eps (log-log)", LogX: true, LogY: true,
		XLabel: "1/eps", YLabel: "items", Height: 12,
	}))
	return nil
}

func runE9(w io.Writer, cfg Config) error {
	n := 1 << 18
	if cfg.Quick {
		n = 1 << 15
	}
	const eps = 0.05
	deltas := []float64{1e-1, 1e-2, 1e-4, 1e-6, 1e-9, 1e-12}
	fmt.Fprintf(w, "n=%d ε=%.2f; retained items as δ shrinks, mergeable (Thm 1) vs Theorem-2 mode\n\n", n, eps)

	tab := NewTable("delta", "thm1_items", "thm2_items", "thm2/thm1")
	var invLogDelta, thm1, thm2 []float64
	for _, delta := range deltas {
		a := fill(quantile.REQFactory(core.Config{Eps: eps, Delta: delta}, "req-thm1"), n, cfg.Seed+9)
		b := fill(quantile.REQFactory(core.Config{Mode: core.ModeTheorem2, Eps: eps, Delta: delta}, "req-thm2"), n, cfg.Seed+9)
		tab.AddRow(delta, a.ItemsRetained(), b.ItemsRetained(),
			float64(b.ItemsRetained())/float64(a.ItemsRetained()))
		invLogDelta = append(invLogDelta, math.Log2(1/delta))
		thm1 = append(thm1, float64(a.ItemsRetained()))
		thm2 = append(thm2, float64(b.ItemsRetained()))
	}
	tab.Fprint(w)
	e1, _ := stats.FitPowerLaw(invLogDelta, thm1)
	e2, _ := stats.FitPowerLaw(invLogDelta, thm2)
	fmt.Fprintf(w, "\nfitted exponents of items ∝ log(1/δ)^e: thm1 %.2f (paper: 0.5), thm2 %.2f (paper: ~0, log log)\n", e1, e2)
	fmt.Fprintf(w, "Theorem-2 mode wins once δ is extremely small, matching Appendix C's regime δ ≤ (εn)^-Ω(1)\n")
	return nil
}

func runE14(w io.Writer, cfg Config) error {
	const eps, delta = 0.05, 0.05
	maxPow := 21
	if cfg.Quick {
		maxPow = 16
	}
	fmt.Fprintf(w, "ε=%.2f δ=%.2f; compactor geometry across stream lengths\n\n", eps, delta)

	tab := NewTable("n", "levels", "obs13_bound", "k", "B", "N_bound", "growths", "ok")
	for pow := 12; pow <= maxPow; pow += 3 {
		n := 1 << pow
		sk, err := quantile.NewREQ(core.Config{Eps: eps, Delta: delta, Seed: cfg.Seed + 14}, "req")
		if err != nil {
			return err
		}
		r := rng.New(cfg.Seed + 14)
		for _, v := range r.Perm(n) {
			sk.Update(float64(v))
		}
		c := sk.Core()
		bound := int(math.Ceil(math.Log2(float64(n)/float64(c.BufferCapacity()/2)+1))) + 2
		ok := "yes"
		if c.NumLevels() > bound {
			ok = "NO"
		}
		tab.AddRow(n, c.NumLevels(), bound, c.K(), c.BufferCapacity(), c.Bound(), c.Stats().Growths, ok)
	}
	tab.Fprint(w)
	return nil
}

func toStrings(cells []any) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = fmt.Sprintf("%v", c)
	}
	return out
}
