package harness

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"req/internal/core"
	"req/internal/quantile"
	"req/internal/rng"
)

func TestPermDataDeterministic(t *testing.T) {
	d := PermData(1000)
	a := d(0, rng.New(5))
	b := d(0, rng.New(5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PermData not deterministic in the source")
		}
	}
}

func TestPermDataIsPermutation(t *testing.T) {
	vals := PermData(500)(0, rng.New(1))
	seen := make([]bool, 500)
	for _, v := range vals {
		i := int(v)
		if float64(i) != v || i < 0 || i >= 500 || seen[i] {
			t.Fatalf("not a permutation: %v", v)
		}
		seen[i] = true
	}
}

func TestMeasureRankErrorProfileShape(t *testing.T) {
	ranks := LogRanks(5000, 2)
	prof := MeasureRankError(
		quantile.REQFactory(core.Config{Eps: 0.1, Delta: 0.1}, "req"),
		PermData(5000), ranks, 3, 7)
	if len(prof.Ranks) != len(ranks) || len(prof.P50) != len(ranks) ||
		len(prof.P95) != len(ranks) || len(prof.Max) != len(ranks) ||
		len(prof.MeanSigned) != len(ranks) {
		t.Fatal("profile slices inconsistent")
	}
	for i := range ranks {
		if prof.P50[i] > prof.P95[i]+1e-12 || prof.P95[i] > prof.Max[i]+1e-12 {
			t.Fatalf("quantile ordering broken at rank %d: %v %v %v",
				ranks[i], prof.P50[i], prof.P95[i], prof.Max[i])
		}
	}
	if prof.Items <= 0 {
		t.Fatal("items not recorded")
	}
	if prof.WorstP95() < 0 || prof.WorstMax() < prof.WorstP95() {
		t.Fatal("worst aggregations inconsistent")
	}
}

func TestMeasureRankErrorSeedsVaryAcrossTrials(t *testing.T) {
	// Two different master seeds must give different profiles (seeds are
	// actually consumed), while the same seed reproduces exactly.
	mk := func(seed uint64) Profile {
		return MeasureRankError(
			quantile.REQFactory(core.Config{Eps: 0.1, Delta: 0.1}, "req"),
			PermData(20000), LogRanks(20000, 1), 3, seed)
	}
	a1, a2, b := mk(1), mk(1), mk(2)
	same := true
	for i := range a1.P95 {
		if a1.P95[i] != a2.P95[i] {
			t.Fatal("same master seed did not reproduce")
		}
		if a1.P95[i] != b.P95[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different master seeds produced identical profiles")
	}
}

func TestRunOneBannerAndBody(t *testing.T) {
	okExp := Experiment{
		ID:       "EOK",
		Title:    "banner test",
		PaperRef: "none (test)",
		Run: func(w io.Writer, _ Config) error {
			_, err := io.WriteString(w, "body-line\n")
			return err
		},
	}
	var buf bytes.Buffer
	if err := RunOne(&buf, Config{Quick: true}, okExp); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EOK", "banner test", "none (test)", "body-line"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
