package harness

import (
	"fmt"
	"io"
	"time"

	"req/internal/core"
	"req/internal/rng"
)

func init() {
	register(Experiment{
		ID:       "E16",
		Title:    "Query engine: incremental view repair and batch queries",
		PaperRef: "engineering of Algorithm 2's Estimate-Rank at query time (extension; sorted-buffer maintenance after Ivkin et al. 2019)",
		Run:      runE16,
	})
}

// runE16 measures the read path of the engine on one machine: what the
// first query after a write burst costs with the incremental view repair
// versus a full rebuild, and how batch rank queries amortize against
// independent probes. Numbers are wall-clock medians on the current host —
// this experiment documents the engine, not the paper.
func runE16(w io.Writer, cfg Config) error {
	n := 1 << 20
	reps := 9
	if cfg.Quick {
		n = 1 << 16
		reps = 3
	}
	s, err := core.New(core.LessF64,
		core.Config{Eps: 0.01, Delta: 0.01, Seed: cfg.Seed + 16})
	if err != nil {
		return err
	}
	r := rng.New(cfg.Seed + 161)
	for i := 0; i < n; i++ {
		s.Update(r.Float64())
	}
	fmt.Fprintf(w, "stream n=%d, eps=0.01: %d retained items in the sorted view\n\n", n, s.SortedView().Size())

	// --- first query after a small write burst: repair vs full rebuild ----
	tab := NewTable("writes_between_queries", "repair_us", "full_rebuild_us", "speedup")
	for _, burst := range []int{1, 8, 64} {
		repair := medianRun(reps, func() {
			for i := 0; i < burst; i++ {
				s.Update(r.Float64())
			}
			s.SortedView()
		})
		rebuild := medianRun(reps, func() {
			for i := 0; i < burst; i++ {
				s.Update(r.Float64())
			}
			s.ForceViewRebuild()
			s.SortedView()
		})
		tab.AddRow(burst, float64(repair.Microseconds()), float64(rebuild.Microseconds()),
			fmt.Sprintf("%.1fx", float64(rebuild)/float64(repair)))
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "\n(repair merges level 0's sorted append tail into the cached view in one\npass; the rebuild re-runs the full k-way merge, though into reused storage)\n\n")

	// --- batch rank queries vs independent probes -------------------------
	s.Freeze()
	probes := make([]float64, 1024)
	for i := range probes {
		probes[i] = r.Float64()
	}
	sorted := append([]float64(nil), probes...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	tab = NewTable("batch", "order", "ns_per_probe", "single_ns_per_probe")
	dst := make([]uint64, 0, len(probes))
	for _, size := range []int{64, 1024} {
		for _, tc := range []struct {
			name string
			ys   []float64
		}{{"sorted", sorted[:size]}, {"random", probes[:size]}} {
			batch := medianRun(reps, func() {
				dst = s.RankBatch(dst, tc.ys)
			})
			single := medianRun(reps, func() {
				for _, y := range tc.ys {
					s.Rank(y)
				}
			})
			tab.AddRow(size, tc.name,
				float64(batch.Nanoseconds())/float64(size),
				float64(single.Nanoseconds())/float64(size))
		}
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "\n(batch sorts the probe set once and answers with one galloping sweep;\nsingle probes each pay a full descent of the frozen view's rank index)\n")
	return nil
}

// medianRun times fn reps times and returns the median duration.
func medianRun(reps int, fn func()) time.Duration {
	ds := make([]time.Duration, reps)
	for i := range ds {
		start := time.Now()
		fn()
		ds[i] = time.Since(start)
	}
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}
