package harness

import (
	"math"

	"req/internal/exact"
	"req/internal/quantile"
	"req/internal/rng"
	"req/internal/stats"
)

// LogRanks returns ranks spaced geometrically from 1 to n (inclusive),
// perDecade points per factor of 10, deduplicated and ascending.
func LogRanks(n uint64, perDecade int) []uint64 {
	if n == 0 {
		return nil
	}
	if perDecade < 1 {
		perDecade = 1
	}
	step := math.Pow(10, 1/float64(perDecade))
	out := []uint64{1}
	x := 1.0
	for {
		x *= step
		r := uint64(math.Round(x))
		if r >= n {
			break
		}
		if r > out[len(out)-1] {
			out = append(out, r)
		}
	}
	if out[len(out)-1] != n {
		out = append(out, n)
	}
	return out
}

// Profile holds per-rank error statistics aggregated over trials.
type Profile struct {
	Ranks []uint64
	// P50, P95, Max are the quantiles of |R̂−R|/R per rank across trials.
	P50, P95, Max []float64
	// MeanSigned is the mean of (R̂−R)/R per rank (bias detector).
	MeanSigned []float64
	// Items is the mean retained-item footprint across trials.
	Items float64
}

// WorstP95 returns the largest p95 relative error across ranks.
func (p *Profile) WorstP95() float64 { return stats.MaxFloat(p.P95) }

// WorstMax returns the largest max relative error across ranks.
func (p *Profile) WorstMax() float64 { return stats.MaxFloat(p.Max) }

// DataFunc produces the trial's stream. Implementations must be
// deterministic in (trial, seed).
type DataFunc func(trial int, r *rng.Source) []float64

// PermData returns a DataFunc generating a fresh random permutation of
// 0..n-1 per trial.
func PermData(n int) DataFunc {
	return func(_ int, r *rng.Source) []float64 {
		out := make([]float64, n)
		for i, v := range r.Perm(n) {
			out[i] = float64(v)
		}
		return out
	}
}

// MeasureRankError runs `trials` independent trials: generate the stream,
// feed a fresh sketch, and compare estimated against true ranks at the
// query ranks. Query points are the true items of each rank, obtained from
// an exact oracle per trial.
func MeasureRankError(f quantile.Factory, data DataFunc, queryRanks []uint64, trials int, seed uint64) Profile {
	master := rng.New(seed)
	perRank := make([][]float64, len(queryRanks))
	signed := make([][]float64, len(queryRanks))
	var items float64
	for trial := 0; trial < trials; trial++ {
		trialSeed := master.Uint64()
		stream := data(trial, rng.New(trialSeed))
		sk := f.New(trialSeed ^ 0x9e3779b97f4a7c15)
		quantile.Ingest(sk, stream)
		oracle := exact.FromValues(stream)
		for i, r := range queryRanks {
			if r == 0 || r > oracle.N() {
				continue
			}
			y := oracle.ItemOfRank(r)
			truth := float64(oracle.Rank(y)) // ≥ r; handles duplicates
			est := float64(sk.Rank(y))
			perRank[i] = append(perRank[i], stats.RelErr(est, truth))
			signed[i] = append(signed[i], stats.SignedRelErr(est, truth))
		}
		items += float64(sk.ItemsRetained())
	}
	p := Profile{Ranks: queryRanks, Items: items / float64(trials)}
	for i := range queryRanks {
		s := stats.Summarize(perRank[i])
		p.P50 = append(p.P50, s.P50)
		p.P95 = append(p.P95, s.P95)
		p.Max = append(p.Max, s.Max)
		mean, _ := stats.MeanStd(signed[i])
		p.MeanSigned = append(p.MeanSigned, mean)
	}
	return p
}

// TailQueryRanks converts percentile labels (0.5, 0.99, …) to ranks in a
// stream of length n, measured from the top: percentile q maps to rank
// ⌈q·n⌉.
func TailQueryRanks(n uint64, percentiles []float64) []uint64 {
	out := make([]uint64, len(percentiles))
	for i, q := range percentiles {
		r := uint64(math.Ceil(q * float64(n)))
		if r < 1 {
			r = 1
		}
		if r > n {
			r = n
		}
		out[i] = r
	}
	return out
}

// FeedAll pushes every value into the sketch, batching when the sketch
// ingests slices natively.
func FeedAll(sk quantile.Sketch, vals []float64) {
	quantile.Ingest(sk, vals)
}
