package harness

import (
	"fmt"
	"io"
	"math"

	"req/internal/core"
	"req/internal/quantile"
	"req/internal/rng"
	"req/internal/schedule"
	"req/internal/streams"
)

func init() {
	register(Experiment{
		ID:       "E10",
		Title:    "Deterministic regime: Theorem-2 mode with negligible δ",
		PaperRef: "Appendix C: δ ≤ exp(−εn) makes the bound hold for every coin outcome, giving O(ε⁻¹·log³(εn)) deterministic space",
		Run:      runE10,
	})
	register(Experiment{
		ID:       "E11",
		Title:    "Compaction-schedule ablation: exponential vs naive (L = B/2)",
		PaperRef: "Section 2.1: naive schedule needs k ≈ 1/ε²; the exponential schedule achieves 1/ε",
		Run:      runE11,
	})
}

func runE10(w io.Writer, cfg Config) error {
	n := 1 << 17
	seeds := 6
	if cfg.Quick {
		n = 1 << 14
		seeds = 3
	}
	const eps = 0.1
	delta := 1e-18
	fmt.Fprintf(w, "Theorem-2 mode, ε=%.2f, δ=%.0e, n=%d; max error over %d seeds × all orders\n\n",
		eps, delta, n, seeds)

	reqCfg := core.Config{Mode: core.ModeTheorem2, Eps: eps, Delta: delta}
	worstOverall := 0.0
	tab := NewTable("order", "max_relerr_all_seeds", "within_eps")
	for _, order := range streams.AllOrders {
		worst := 0.0
		for seed := 0; seed < seeds; seed++ {
			r := rng.New(cfg.Seed + uint64(seed) + 10)
			vals := streams.Permutation{}.Generate(n, r)
			streams.Arrange(vals, order, r)
			sk, err := quantile.NewREQ(withSeed(reqCfg, cfg.Seed+uint64(seed)), "req-det")
			if err != nil {
				return err
			}
			FeedAll(sk, vals)
			for _, rank := range LogRanks(uint64(n), 2) {
				est := float64(sk.Rank(float64(rank - 1)))
				rel := math.Abs(est-float64(rank)) / float64(rank)
				if rel > worst {
					worst = rel
				}
			}
		}
		ok := "yes"
		if worst > eps {
			ok = "NO"
		}
		tab.AddRow(order.String(), worst, ok)
		if worst > worstOverall {
			worstOverall = worst
		}
	}
	tab.Fprint(w)

	// Space against the deterministic O(ε⁻¹·log³(εn)) budget.
	sk, err := quantile.NewREQ(withSeed(reqCfg, cfg.Seed), "req-det")
	if err != nil {
		return err
	}
	r := rng.New(cfg.Seed)
	FeedAll(sk, streams.Permutation{}.Generate(n, r))
	budget := math.Pow(math.Log2(eps*float64(n)), 3) / eps
	fmt.Fprintf(w, "\nmax error overall: %.4f (ε=%.2f); retained %d items vs ε⁻¹·log³(εn) = %.0f\n",
		worstOverall, eps, sk.ItemsRetained(), budget)
	return nil
}

func runE11(w io.Writer, cfg Config) error {
	n := 1 << 20
	trials := 10
	if cfg.Quick {
		n = 1 << 15
		trials = 3
	}
	const k = 8 // small sections: the regime where the schedule choice bites
	fmt.Fprintf(w, "n=%d, fixed k=%d, identical geometry, shuffled order, %d trials\n", n, k, trials)
	fmt.Fprintf(w, "same space, only the schedule differs. With L = B/2 every compaction churns\n")
	fmt.Fprintf(w, "every unprotected item, so mid-rank error variance grows with the compaction\n")
	fmt.Fprintf(w, "count — the effect that forces k ≈ 1/ε² in the naive analysis (Sec. 2.1).\n\n")

	data := func(_ int, r *rng.Source) []float64 {
		return streams.Permutation{}.Generate(n, r)
	}
	ranks := LogRanks(uint64(n), 1)
	expo := MeasureRankError(
		quantile.REQFactory(core.Config{Mode: core.ModeFixedK, K: k}, "req-exponential"),
		data, ranks, trials, cfg.Seed+11)
	naive := MeasureRankError(
		quantile.REQFactory(core.Config{Mode: core.ModeFixedK, K: k, Schedule: schedule.Naive}, "req-naive"),
		data, ranks, trials, cfg.Seed+11)

	tab := NewTable("rank", "exponential_p95", "naive_p95", "naive/exponential")
	var worseCount, comparable int
	worstRatio := 0.0
	for i, r := range ranks {
		ratio := math.Inf(1)
		if expo.P95[i] > 0 {
			ratio = naive.P95[i] / expo.P95[i]
		} else if naive.P95[i] == 0 {
			ratio = 1
		}
		if expo.P95[i] > 0 || naive.P95[i] > 0 {
			comparable++
			if naive.P95[i] > expo.P95[i] {
				worseCount++
			}
			if ratio > worstRatio && !math.IsInf(ratio, 1) {
				worstRatio = ratio
			}
		}
		tab.AddRow(r, expo.P95[i], naive.P95[i], ratio)
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "\nitems: exponential %.0f, naive %.0f (same geometry)\n", expo.Items, naive.Items)
	fmt.Fprintf(w, "ranks with error where naive is worse: %d/%d; worst naive/exponential ratio: %.1fx\n",
		worseCount, comparable, worstRatio)
	fmt.Fprintf(w, "worst p95 overall: exponential %.4f vs naive %.4f\n", expo.WorstP95(), naive.WorstP95())
	return nil
}

func withSeed(cfg core.Config, seed uint64) core.Config {
	cfg.Seed = seed
	return cfg
}
