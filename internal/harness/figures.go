package harness

import (
	"fmt"
	"io"
	"strings"

	"req/internal/core"
	"req/internal/quantile"
	"req/internal/rng"
	"req/internal/schedule"
	"req/internal/streams"
)

func init() {
	register(Experiment{
		ID:       "F1",
		Title:    "Structural figures: relative-compactor layout and compaction schedule",
		PaperRef: "Figures 1 and 2 of the paper (algorithm illustrations)",
		Run:      runF1,
	})
}

func runF1(w io.Writer, cfg Config) error {
	n := 1 << 17
	if cfg.Quick {
		n = 1 << 14
	}

	// Figure 2 reproduction: which sections each compaction involves. The
	// section involvement pattern is the ruler sequence z(C)+1.
	fmt.Fprintf(w, "Figure 2 — compaction schedule: sections involved per compaction state C\n")
	fmt.Fprintf(w, "(section 1 = largest items; '#' = compacted this round)\n\n")
	const showStates = 16
	const showSections = 5
	fmt.Fprintf(w, "  C   binary  sections  ")
	for j := showSections; j >= 1; j-- {
		fmt.Fprintf(w, "s%d ", j)
	}
	fmt.Fprintln(w)
	for c := 0; c < showStates; c++ {
		st := schedule.State(c)
		secs := st.Sections()
		fmt.Fprintf(w, "  %-3d %06b  %-8d  ", c, c, secs)
		for j := showSections; j >= 1; j-- {
			if j <= secs {
				fmt.Fprint(w, " # ")
			} else {
				fmt.Fprint(w, " . ")
			}
		}
		fmt.Fprintln(w)
	}

	// Figure 1 reproduction: a live sketch's buffer layout.
	fmt.Fprintf(w, "\nFigure 1 — relative-compactor stack after a %d-item stream (ε=0.05):\n\n", n)
	sk, err := quantile.NewREQ(core.Config{Eps: 0.05, Delta: 0.05, Seed: cfg.Seed}, "req")
	if err != nil {
		return err
	}
	r := rng.New(cfg.Seed)
	FeedAll(sk, streams.Permutation{}.Generate(n, r))
	for _, line := range strings.Split(sk.Core().DebugString(), "\n") {
		fmt.Fprintf(w, "  %s\n", line)
	}
	return nil
}
