package harness

import (
	"fmt"
	"io"

	"req/internal/core"
	"req/internal/quantile"
	"req/internal/rng"
	"req/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "E6",
		Title:    "Full mergeability: error after arbitrary merge trees",
		PaperRef: "Theorem 3 / Theorem 36 (Appendix D): merged sketches keep the ε guarantee",
		Run:      runE6,
	})
	register(Experiment{
		ID:       "E8",
		Title:    "Unknown stream length: the N-squaring schedule costs only constants",
		PaperRef: "Section 5: no advance knowledge of n is needed",
		Run:      runE8,
	})
}

// mergeStrategy builds one merged sketch out of shard streams.
type mergeStrategy struct {
	name  string
	build func(shards [][]float64, cfg core.Config, seeds *rng.Source) *core.Sketch[float64]
}

func newREQ(cfg core.Config, seed uint64) *core.Sketch[float64] {
	c := cfg
	c.Seed = seed
	s, err := core.New(core.LessF64, c)
	if err != nil {
		panic(err)
	}
	return s
}

func sketchShard(vals []float64, cfg core.Config, seed uint64) *core.Sketch[float64] {
	s := newREQ(cfg, seed)
	for _, v := range vals {
		s.Update(v)
	}
	return s
}

var mergeStrategies = []mergeStrategy{
	{name: "single-stream", build: func(shards [][]float64, cfg core.Config, seeds *rng.Source) *core.Sketch[float64] {
		s := newREQ(cfg, seeds.Uint64())
		for _, shard := range shards {
			for _, v := range shard {
				s.Update(v)
			}
		}
		return s
	}},
	{name: "sequential", build: func(shards [][]float64, cfg core.Config, seeds *rng.Source) *core.Sketch[float64] {
		acc := newREQ(cfg, seeds.Uint64())
		for _, shard := range shards {
			if err := acc.Merge(sketchShard(shard, cfg, seeds.Uint64())); err != nil {
				panic(err)
			}
		}
		return acc
	}},
	{name: "balanced-tree", build: func(shards [][]float64, cfg core.Config, seeds *rng.Source) *core.Sketch[float64] {
		level := make([]*core.Sketch[float64], len(shards))
		for i, shard := range shards {
			level[i] = sketchShard(shard, cfg, seeds.Uint64())
		}
		for len(level) > 1 {
			var next []*core.Sketch[float64]
			for i := 0; i+1 < len(level); i += 2 {
				if err := level[i].Merge(level[i+1]); err != nil {
					panic(err)
				}
				next = append(next, level[i])
			}
			if len(level)%2 == 1 {
				next = append(next, level[len(level)-1])
			}
			level = next
		}
		return level[0]
	}},
	{name: "random-tree", build: func(shards [][]float64, cfg core.Config, seeds *rng.Source) *core.Sketch[float64] {
		pool := make([]*core.Sketch[float64], len(shards))
		for i, shard := range shards {
			pool[i] = sketchShard(shard, cfg, seeds.Uint64())
		}
		for len(pool) > 1 {
			i := seeds.Intn(len(pool))
			j := seeds.Intn(len(pool))
			if i == j {
				continue
			}
			if err := pool[i].Merge(pool[j]); err != nil {
				panic(err)
			}
			pool[j] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
		}
		return pool[0]
	}},
}

func runE6(w io.Writer, cfg Config) error {
	n := 1 << 19
	shards := 32
	trials := 6
	if cfg.Quick {
		n = 1 << 15
		shards = 8
		trials = 2
	}
	const eps, delta = 0.05, 0.05
	reqCfg := core.Config{Eps: eps, Delta: delta}
	fmt.Fprintf(w, "n=%d split into %d shards; ε=%.2f; %d trials; worst p95 over log-spaced ranks\n\n",
		n, shards, eps, trials)

	ranks := LogRanks(uint64(n), 2)
	tab := NewTable("strategy", "worst_p95", "worst_max", "items", "within_eps")
	for _, strat := range mergeStrategies {
		perRank := make([][]float64, len(ranks))
		items := 0.0
		master := rng.New(cfg.Seed + 6)
		for trial := 0; trial < trials; trial++ {
			seeds := rng.New(master.Uint64())
			perm := seeds.Perm(n)
			shardData := make([][]float64, shards)
			per := n / shards
			for si := 0; si < shards; si++ {
				lo, hi := si*per, (si+1)*per
				if si == shards-1 {
					hi = n
				}
				vals := make([]float64, 0, hi-lo)
				for _, v := range perm[lo:hi] {
					vals = append(vals, float64(v))
				}
				shardData[si] = vals
			}
			merged := strat.build(shardData, reqCfg, seeds)
			if merged.Count() != uint64(n) {
				return fmt.Errorf("strategy %s lost items: %d != %d", strat.name, merged.Count(), n)
			}
			if err := merged.CheckInvariants(); err != nil {
				return fmt.Errorf("strategy %s: %w", strat.name, err)
			}
			for i, rank := range ranks {
				est := float64(merged.Rank(float64(rank - 1)))
				perRank[i] = append(perRank[i], stats.RelErr(est, float64(rank)))
			}
			items += float64(merged.ItemsRetained()) / float64(trials)
		}
		worstP95, worstMax := 0.0, 0.0
		for i := range ranks {
			s := stats.Summarize(perRank[i])
			if s.P95 > worstP95 {
				worstP95 = s.P95
			}
			if s.Max > worstMax {
				worstMax = s.Max
			}
		}
		ok := "yes"
		if worstP95 > eps {
			ok = "NO"
		}
		tab.AddRow(strat.name, worstP95, worstMax, int(items), ok)
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "\nall strategies summarise the same stream; Theorem 3 predicts the same ε bound\n")
	fmt.Fprintf(w, "for every merge shape, at the same O(ε⁻¹·log^1.5(εn)) footprint.\n")
	return nil
}

func runE8(w io.Writer, cfg Config) error {
	n := 1 << 19
	trials := 8
	if cfg.Quick {
		n = 1 << 15
		trials = 3
	}
	const eps, delta = 0.05, 0.05
	fmt.Fprintf(w, "n=%d ε=%.2f; known-n sizing vs unknown-n (N₀ auto, squaring growth); %d trials\n\n",
		n, eps, trials)

	ranks := LogRanks(uint64(n), 2)
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"known-n", core.Config{Eps: eps, Delta: delta, N0: core.CeilPow2(uint64(n))}},
		{"unknown-n", core.Config{Eps: eps, Delta: delta}},
		{"unknown-n-tinyN0", core.Config{Eps: eps, Delta: delta, N0: 1 << 12}},
	}
	tab := NewTable("config", "worst_p95", "items", "growths", "within_eps")
	for _, c := range configs {
		prof := MeasureRankError(quantile.REQFactory(c.cfg, "req"), PermData(n), ranks, trials, cfg.Seed+8)
		// Growths from a single representative run.
		sk := newREQ(c.cfg, cfg.Seed+8)
		r := rng.New(cfg.Seed + 8)
		for _, v := range r.Perm(n) {
			sk.Update(float64(v))
		}
		ok := "yes"
		if prof.WorstP95() > eps {
			ok = "NO"
		}
		tab.AddRow(c.name, prof.WorstP95(), int(prof.Items), sk.Stats().Growths, ok)
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "\nSection 5's claim: not knowing n costs only constant-factor space and no accuracy.\n")
	return nil
}
