package harness

// The contention rig: a machine-readable scaling report for the Sharded
// ingest path and the epoch-snapshot rebuild under concurrent writers,
// plus a padded-vs-packed false-sharing A/B on the shard-header layout.
//
// Unlike the E-series experiments this writes JSON, not a table: the rig
// exists to be diffed across hosts and commits (MULTICORE_pr8.json records
// one run), and scaling curves are exactly the kind of result that goes
// stale silently when trapped in prose. The report is honest about its
// host: it records runtime.NumCPU(), and every sweep point where
// GOMAXPROCS exceeds the physical CPU count is marked oversubscribed —
// on such points the numbers measure scheduler interleaving (lock
// hand-off behaviour, snapshot staleness under preemption), not parallel
// speedup. Both are worth pinning: a sharded design that collapses when
// oversubscribed is broken in a different way than one that does not
// scale.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	req "req"
	"req/internal/rng"
	"req/internal/vec"
)

// MulticoreReport is the machine-readable output of RunMulticore.
type MulticoreReport struct {
	// Host facts: scaling numbers are meaningless without them.
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	Accel     string `json:"accel"` // active vec kernel tier ("avx2" or "portable")
	Quick     bool   `json:"quick"`
	Note      string `json:"note"`

	Ingest       []IngestPoint       `json:"ingest"`
	Snapshot     []SnapshotPoint     `json:"snapshot"`
	FalseSharing []FalseSharingPoint `json:"false_sharing"`
}

// IngestPoint is one cell of the GOMAXPROCS × shards ingest sweep:
// Writers goroutines (one per proc) hammer Sharded.Update concurrently.
type IngestPoint struct {
	Procs          int     `json:"procs"`
	Shards         int     `json:"shards"`
	Writers        int     `json:"writers"`
	Ops            int     `json:"ops"`
	Seconds        float64 `json:"seconds"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	NsPerOp        float64 `json:"ns_per_op"`
	Oversubscribed bool    `json:"oversubscribed"`
}

// SnapshotPoint measures the epoch-snapshot path under live writers: each
// query finds the published snapshot stale (writers never stop), so query
// latency is dominated by the clone-and-merge rebuild. The quantiles are
// over per-query wall times.
type SnapshotPoint struct {
	Procs          int     `json:"procs"`
	Shards         int     `json:"shards"`
	Writers        int     `json:"writers"`
	Rebuilds       int     `json:"rebuilds"`
	P50Micros      float64 `json:"p50_us"`
	P99Micros      float64 `json:"p99_us"`
	MaxMicros      float64 `json:"max_us"`
	Oversubscribed bool    `json:"oversubscribed"`
}

// FalseSharingPoint is one arm of the padded-vs-packed A/B: per-goroutine
// atomic counters mimicking the shard header (version + count mirrors),
// either padded out to separate cache lines — the layout shardOf uses —
// or packed adjacent. On a multicore host the packed arm pays cross-core
// cache-line ping-pong; on one CPU the arms tie, and recording that tie
// is the point — it proves the rig measures the layout, not noise.
type FalseSharingPoint struct {
	Variant   string  `json:"variant"` // "padded" or "packed"
	Procs     int     `json:"procs"`
	Ops       int     `json:"ops"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// RunMulticore executes the sweep and writes the report as indented JSON.
// It restores GOMAXPROCS before returning.
func RunMulticore(w io.Writer, cfg Config) error {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	rep := MulticoreReport{
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Accel:     vec.Accel(),
		Quick:     cfg.Quick,
		Note: "points with procs > cpus are oversubscribed: they measure lock hand-off " +
			"and snapshot staleness under scheduler interleaving, not parallel speedup",
	}

	procSweep := []int{1, 2, 4}
	shardSweep := []int{1, 2, 4, 8}
	opsPerWriter := 150_000
	snapDur := 400 * time.Millisecond
	fsOps := 2_000_000
	if cfg.Quick {
		procSweep = []int{1, 2}
		shardSweep = []int{1, 4}
		opsPerWriter = 10_000
		snapDur = 40 * time.Millisecond
		fsOps = 100_000
	}

	for _, procs := range procSweep {
		for _, shards := range shardSweep {
			pt, err := multicoreIngest(procs, shards, opsPerWriter, cfg.Seed)
			if err != nil {
				return err
			}
			pt.Oversubscribed = procs > rep.CPUs
			rep.Ingest = append(rep.Ingest, pt)
		}
	}

	for _, procs := range procSweep {
		for _, shards := range []int{1, shardSweep[len(shardSweep)-1]} {
			pt, err := multicoreSnapshot(procs, shards, snapDur, cfg.Seed)
			if err != nil {
				return err
			}
			pt.Oversubscribed = procs > rep.CPUs
			rep.Snapshot = append(rep.Snapshot, pt)
		}
	}

	for _, procs := range procSweep {
		rep.FalseSharing = append(rep.FalseSharing,
			falseSharingArm("padded", procs, fsOps),
			falseSharingArm("packed", procs, fsOps),
		)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// multicoreIngest times procs writers pushing opsPerWriter updates each
// into a Sharded sketch with the given stripe count. A closed-channel
// barrier starts all writers at once so the measured window has full
// concurrency from the first update.
func multicoreIngest(procs, shards, opsPerWriter int, seed uint64) (IngestPoint, error) {
	runtime.GOMAXPROCS(procs)
	s, err := req.NewShardedFloat64(
		req.WithShards(shards), req.WithEpsilon(0.01), req.WithSeed(seed),
	)
	if err != nil {
		return IngestPoint{}, err
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for wtr := 0; wtr < procs; wtr++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.New(seed + uint64(id)*0x9E3779B9)
			<-start
			for i := 0; i < opsPerWriter; i++ {
				s.Update(r.Float64())
			}
		}(wtr)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	sec := time.Since(t0).Seconds()
	ops := procs * opsPerWriter
	return IngestPoint{
		Procs: procs, Shards: s.NumShards(), Writers: procs,
		Ops: ops, Seconds: sec,
		OpsPerSec: float64(ops) / sec,
		NsPerOp:   sec * 1e9 / float64(ops),
	}, nil
}

// multicoreSnapshot runs writers continuously for dur while one reader
// calls Quantile in a loop. Every write bumps its shard version, so each
// query observes a stale snapshot and pays a full epoch rebuild — this is
// the worst case for the epoch design, and exactly the path whose latency
// a dashboard scraping a live sketch experiences.
func multicoreSnapshot(procs, shards int, dur time.Duration, seed uint64) (SnapshotPoint, error) {
	runtime.GOMAXPROCS(procs)
	s, err := req.NewShardedFloat64(
		req.WithShards(shards), req.WithEpsilon(0.01), req.WithSeed(seed),
	)
	if err != nil {
		return SnapshotPoint{}, err
	}
	// Prepopulate so rebuilds merge real coresets, not near-empty buffers.
	r := rng.New(seed + 77)
	for i := 0; i < 1<<17; i++ {
		s.Update(r.Float64())
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for wtr := 0; wtr < procs; wtr++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wr := rng.New(seed + 1000 + uint64(id))
			for !stop.Load() {
				s.Update(wr.Float64())
			}
		}(wtr)
	}

	var lat []time.Duration
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		t0 := time.Now()
		if _, err := s.Quantile(0.5); err != nil {
			stop.Store(true)
			wg.Wait()
			return SnapshotPoint{}, err
		}
		lat = append(lat, time.Since(t0))
	}
	stop.Store(true)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return float64(lat[i]) / float64(time.Microsecond)
	}
	return SnapshotPoint{
		Procs: procs, Shards: s.NumShards(), Writers: procs,
		Rebuilds:  len(lat),
		P50Micros: q(0.50), P99Micros: q(0.99), MaxMicros: q(1.0),
	}, nil
}

// The A/B mimics the shardOf header: two hot atomics per stripe. The
// padded layout matches shardOf (headers on distinct cache lines); the
// packed layout is what shardOf would be without its trailing padding.

type paddedStripe struct {
	version atomic.Uint64
	count   atomic.Uint64
	_       [48]byte // pad the 16 hot bytes out to a full 64-byte line
}

type packedStripe struct {
	version atomic.Uint64
	count   atomic.Uint64
}

func falseSharingArm(variant string, procs, totalOps int) FalseSharingPoint {
	runtime.GOMAXPROCS(procs)
	opsPer := totalOps / procs
	var wg sync.WaitGroup
	start := make(chan struct{})

	var elapsed time.Duration
	switch variant {
	case "padded":
		stripes := make([]paddedStripe, procs)
		for g := 0; g < procs; g++ {
			wg.Add(1)
			go func(st *paddedStripe) {
				defer wg.Done()
				<-start
				for i := 0; i < opsPer; i++ {
					st.version.Add(1)
					st.count.Add(1)
				}
			}(&stripes[g])
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		elapsed = time.Since(t0)
	default:
		stripes := make([]packedStripe, procs)
		for g := 0; g < procs; g++ {
			wg.Add(1)
			go func(st *packedStripe) {
				defer wg.Done()
				<-start
				for i := 0; i < opsPer; i++ {
					st.version.Add(1)
					st.count.Add(1)
				}
			}(&stripes[g])
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		elapsed = time.Since(t0)
	}

	ops := opsPer * procs
	sec := elapsed.Seconds()
	return FalseSharingPoint{
		Variant: variant, Procs: procs, Ops: ops,
		NsPerOp:   sec * 1e9 / float64(ops),
		OpsPerSec: float64(ops) / sec,
	}
}

// String renders a one-line human summary (used by the CLI after the JSON
// lands in a file, so a terminal run is not silent).
func (r *MulticoreReport) String() string {
	return fmt.Sprintf("multicore rig: %d ingest points, %d snapshot points, %d false-sharing arms on %d CPU(s), accel=%s",
		len(r.Ingest), len(r.Snapshot), len(r.FalseSharing), r.CPUs, r.Accel)
}
