package harness

import (
	"fmt"
	"io"

	"req/internal/core"
	"req/internal/quantile"
	"req/internal/rng"
	"req/internal/stats"
	"req/internal/streams"
)

func init() {
	register(Experiment{
		ID:       "E4",
		Title:    "Tail accuracy on long-tailed latencies: REQ vs additive & heuristic baselines",
		PaperRef: "Section 1 motivation: percentile monitoring (p50…p99.99) needs relative error",
		Run:      runE4,
	})
}

// tailPercentiles are the monitoring percentiles from the paper's Section 1.
var tailPercentiles = []float64{0.50, 0.90, 0.99, 0.999, 0.9999}

func runE4(w io.Writer, cfg Config) error {
	n := 1 << 20
	trials := 6
	if cfg.Quick {
		n = 1 << 15
		trials = 2
	}
	const eps = 0.01
	fmt.Fprintf(w, "workload: synthetic web latencies (log-normal body + Pareto tail), n=%d, %d trials\n", n, trials)
	fmt.Fprintf(w, "error metric: |R̂−R| / (n−R+1) — error relative to the tail mass above the\n")
	fmt.Fprintf(w, "queried percentile, the quantity that decides whether a p99.9 alert is real.\n")
	fmt.Fprintf(w, "req-hra guarantees ≤ ε=%.2f on it; additive sketches guarantee only ≤ εn/(n−R+1).\n\n", eps)

	factories := []quantile.Factory{
		quantile.REQFactory(core.Config{Eps: eps, Delta: 0.05, HRA: true}, "req-hra"),
		quantile.KLLFactory(eps),
		quantile.GKFactory(eps),
		quantile.TDigestFactory(eps),
		quantile.DDFactory(eps),
	}

	// errs[sketch][percentile] = per-trial tail-relative errors.
	errs := make(map[string][][]float64)
	items := make(map[string]float64)
	for _, f := range factories {
		errs[f.Name] = make([][]float64, len(tailPercentiles))
	}

	master := rng.New(cfg.Seed + 4)
	for trial := 0; trial < trials; trial++ {
		seed := master.Uint64()
		vals := streams.Latency{}.Generate(n, rng.New(seed))
		oracle := trueRankOracle(vals)
		for _, f := range factories {
			sk := f.New(seed)
			FeedAll(sk, vals)
			for pi, p := range tailPercentiles {
				rank := uint64(float64(n) * p)
				if rank < 1 {
					rank = 1
				}
				y := oracle.ItemOfRank(rank)
				truth := float64(oracle.Rank(y))
				est := float64(sk.Rank(y))
				tailMass := float64(n) - truth + 1
				errs[f.Name][pi] = append(errs[f.Name][pi], absF(est-truth)/tailMass)
			}
			items[f.Name] += float64(sk.ItemsRetained()) / float64(trials)
		}
	}

	tab := NewTable("sketch", "items", "p50", "p90", "p99", "p99.9", "p99.99")
	for _, f := range factories {
		row := []any{f.Name, int(items[f.Name])}
		for pi := range tailPercentiles {
			s := stats.Summarize(errs[f.Name][pi])
			row = append(row, s.P50)
		}
		tab.AddRow(row...)
	}
	fmt.Fprintln(w, "median tail-relative rank error per queried percentile:")
	tab.Fprint(w)

	fmt.Fprintf(w, "\nshape check (paper Sec. 1): req-hra stays ≤ ε at every percentile, additive\n")
	fmt.Fprintf(w, "sketches blow up as the tail thins (their εn budget dwarfs the tail mass);\n")
	fmt.Fprintf(w, "t-digest sits in between (no guarantee), ddsketch bounds value error, not rank error.\n")
	return nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
