package harness

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
)

// TestMulticoreQuick keeps the rig from bit-rotting: a quick run must
// produce a decodable report whose sweep covers every promised axis.
func TestMulticoreQuick(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(0)
	var buf bytes.Buffer
	if err := RunMulticore(&buf, Config{Quick: true, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var rep MulticoreReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.CPUs != runtime.NumCPU() {
		t.Errorf("cpus = %d, want %d", rep.CPUs, runtime.NumCPU())
	}
	if rep.Accel == "" {
		t.Error("accel tier missing from report")
	}
	if len(rep.Ingest) != 4 { // quick: procs {1,2} × shards {1,4}
		t.Errorf("ingest points = %d, want 4", len(rep.Ingest))
	}
	for _, pt := range rep.Ingest {
		if pt.OpsPerSec <= 0 || pt.Ops <= 0 {
			t.Errorf("degenerate ingest point: %+v", pt)
		}
		if want := pt.Procs > runtime.NumCPU(); pt.Oversubscribed != want {
			t.Errorf("ingest point procs=%d oversubscribed=%v, want %v", pt.Procs, pt.Oversubscribed, want)
		}
	}
	if len(rep.Snapshot) != 4 { // quick: procs {1,2} × shards {1,4}
		t.Errorf("snapshot points = %d, want 4", len(rep.Snapshot))
	}
	for _, pt := range rep.Snapshot {
		if pt.Rebuilds <= 0 {
			t.Errorf("snapshot point measured no rebuilds: %+v", pt)
		}
		if pt.P99Micros < pt.P50Micros || pt.MaxMicros < pt.P99Micros {
			t.Errorf("latency quantiles out of order: %+v", pt)
		}
	}
	if len(rep.FalseSharing) != 4 { // quick: procs {1,2} × {padded, packed}
		t.Errorf("false-sharing arms = %d, want 4", len(rep.FalseSharing))
	}
	seen := map[string]bool{}
	for _, pt := range rep.FalseSharing {
		seen[pt.Variant] = true
		if pt.NsPerOp <= 0 {
			t.Errorf("degenerate false-sharing arm: %+v", pt)
		}
	}
	if !seen["padded"] || !seen["packed"] {
		t.Errorf("A/B missing an arm: %v", seen)
	}
	// GOMAXPROCS must be restored — the rig mutates it per point.
	if got := runtime.GOMAXPROCS(0); got != prevProcs {
		t.Errorf("GOMAXPROCS left at %d, want %d", got, prevProcs)
	}
}
