package harness

import (
	"fmt"
	"io"

	"req/internal/core"
	"req/internal/quantile"
	"req/internal/rng"
	"req/internal/streams"
)

func init() {
	register(Experiment{
		ID:       "E13",
		Title:    "Lower-bound stream (Appendix A): an ε-sketch losslessly encodes a set",
		PaperRef: "Theorem 15: Ω(ε⁻¹·log(εn)·log(ε|U|)) bits; decode via rank thresholds",
		Run:      runE13,
	})
}

func runE13(w io.Writer, cfg Config) error {
	eps := 0.01
	phases := 11
	if cfg.Quick {
		eps = 0.05
		phases = 8
	}
	universe := 1 << 20
	r := rng.New(cfg.Seed + 13)
	lb, err := streams.NewLowerBound(eps, phases, universe, r)
	if err != nil {
		return err
	}
	vals := lb.Values()
	streams.Arrange(vals, streams.OrderShuffled, r)
	fmt.Fprintf(w, "construction: ε=%.2f, ℓ=%d, %d phases, universe 2^20, subset |S|=%d, stream n=%d\n\n",
		eps, lb.Ell, phases, len(lb.S), len(vals))

	// Decode from the exact oracle (sanity: must be perfect).
	oracle := trueRankOracle(vals)
	exactDecoded := lb.Decode(oracle.Rank)
	exactCorrect := countMatches(exactDecoded, lb.S)

	// Decode from the REQ sketch. All-quantiles decoding needs the union
	// bound of Corollary 1, so run the sketch at ε/3 and small δ.
	sk, err := quantile.NewREQ(core.Config{Eps: eps / 3, Delta: 1e-9, Seed: cfg.Seed + 113}, "req")
	if err != nil {
		return err
	}
	FeedAll(sk, vals)
	reqDecoded := lb.Decode(sk.Rank)
	reqCorrect := countMatches(reqDecoded, lb.S)

	tab := NewTable("decoder", "decoded_correct", "of", "sketch_items")
	tab.AddRow("exact oracle", exactCorrect, len(lb.S), int(oracle.N()))
	tab.AddRow("req sketch", reqCorrect, len(lb.S), sk.ItemsRetained())
	tab.Fprint(w)

	optimal := streams.OptimalCoresetSize(eps, uint64(len(vals)))
	fmt.Fprintf(w, "\noffline-optimal coreset (remark under Thm 15): %d items; req stores %d\n",
		optimal, sk.ItemsRetained())
	fmt.Fprintf(w, "the sketch encodes the full subset S ⇒ its size is information-theoretically\n")
	fmt.Fprintf(w, "lower-bounded by |S|·log(ε|U|) bits, which is what Theorem 15 formalises.\n")
	if exactCorrect != len(lb.S) {
		return fmt.Errorf("exact decode failed: %d/%d", exactCorrect, len(lb.S))
	}
	return nil
}

func countMatches(got, want []int) int {
	n := 0
	for i := range got {
		if i < len(want) && got[i] == want[i] {
			n++
		}
	}
	return n
}
