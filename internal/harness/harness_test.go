package harness

import (
	"bytes"
	"strings"
	"testing"

	"req/internal/quantile"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "F1"}
	all := All()
	if len(all) != len(want) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registry has %d experiments: %v", len(all), ids)
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestRegistryOrdering(t *testing.T) {
	all := All()
	if all[0].ID != "E1" {
		t.Fatalf("first experiment %s", all[0].ID)
	}
	// E10 must sort after E9 (numeric, not lexicographic).
	idx := map[string]int{}
	for i, e := range all {
		idx[e.ID] = i
	}
	if idx["E10"] < idx["E9"] {
		t.Fatal("numeric ID ordering broken")
	}
	if idx["F1"] != len(all)-1 {
		t.Fatal("figures should sort last")
	}
}

func TestGetCaseInsensitive(t *testing.T) {
	if _, ok := Get("e1"); !ok {
		t.Fatal("lowercase lookup failed")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestLogRanks(t *testing.T) {
	ranks := LogRanks(1000, 2)
	if ranks[0] != 1 || ranks[len(ranks)-1] != 1000 {
		t.Fatalf("endpoints: %v", ranks)
	}
	for i := 1; i < len(ranks); i++ {
		if ranks[i] <= ranks[i-1] {
			t.Fatalf("not strictly ascending: %v", ranks)
		}
	}
	if len(LogRanks(0, 2)) != 0 {
		t.Fatal("n=0 should have no ranks")
	}
	one := LogRanks(1, 3)
	if len(one) != 1 || one[0] != 1 {
		t.Fatalf("n=1: %v", one)
	}
}

func TestTailQueryRanks(t *testing.T) {
	ranks := TailQueryRanks(1000, []float64{0.5, 0.999, 1})
	if ranks[0] != 500 || ranks[1] != 999 || ranks[2] != 1000 {
		t.Fatalf("ranks = %v", ranks)
	}
	zero := TailQueryRanks(10, []float64{0})
	if zero[0] != 1 {
		t.Fatal("zero percentile must clamp to rank 1")
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("a", "bb", "c")
	tab.AddRow(1, 2.5, "x")
	tab.AddRow(10, 0.33333, "longer")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"a", "bb", "c", "longer", "2.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb,c\n") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "10,0.33333,longer") {
		t.Fatalf("csv row: %q", csv)
	}
}

// TestAllExperimentsQuick runs the whole suite in quick mode: every
// experiment must complete without error and produce non-trivial output.
// This is the harness's own regression test.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite skipped in -short")
	}
	cfg := Config{Quick: true, Seed: 7}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunOne(&buf, cfg, e); err != nil {
				t.Fatalf("%s failed: %v\n%s", e.ID, err, buf.String())
			}
			if buf.Len() < 100 {
				t.Fatalf("%s produced only %d bytes", e.ID, buf.Len())
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, e.Title) {
				t.Fatalf("%s: banner missing", e.ID)
			}
		})
	}
}

func TestMeasureRankErrorSanity(t *testing.T) {
	// The exact oracle run through the interface must show zero error.
	prof := MeasureRankError(exactFactory(), PermData(2000), LogRanks(2000, 2), 2, 1)
	for i := range prof.Ranks {
		if prof.Max[i] != 0 {
			t.Fatalf("exact oracle shows error %v at rank %d", prof.Max[i], prof.Ranks[i])
		}
	}
}

// exactFactory wraps the exact oracle as a Factory for sanity tests.
func exactFactory() quantile.Factory {
	return quantile.Factory{Name: "exact", New: func(uint64) quantile.Sketch {
		return quantile.NewExact(0)
	}}
}
