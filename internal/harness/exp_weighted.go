package harness

import (
	"fmt"
	"io"
	"math"

	"req/internal/core"
	"req/internal/exact"
	"req/internal/quantile"
	"req/internal/rng"
	"req/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "E15",
		Title:    "Weighted updates (library extension): histogram ingest ≡ raw replay",
		PaperRef: "extension beyond the paper (binary weight decomposition; see DESIGN.md)",
		Run:      runE15,
	})
}

func runE15(w io.Writer, cfg Config) error {
	buckets := 2000
	maxWeight := 200
	trials := 6
	if cfg.Quick {
		buckets = 400
		maxWeight = 50
		trials = 2
	}
	const eps = 0.05
	fmt.Fprintf(w, "%d histogram buckets, weights ≤ %d, ε=%.2f, %d trials\n", buckets, maxWeight, eps, trials)
	fmt.Fprintf(w, "weighted ingest must match raw replay of the expanded stream within ε\n\n")

	master := rng.New(cfg.Seed + 15)
	type agg struct{ weighted, raw []float64 }
	perRank := map[string]*agg{}
	ranksAt := []float64{0.01, 0.1, 0.5, 0.9, 0.99}
	for _, p := range ranksAt {
		perRank[fmt.Sprint(p)] = &agg{}
	}
	var weightedItems, rawItems float64
	for trial := 0; trial < trials; trial++ {
		seed := master.Uint64()
		r := rng.New(seed)
		values := make([]float64, buckets)
		weights := make([]uint64, buckets)
		var expanded []float64
		for i := range values {
			values[i] = r.Float64() * 1e6
			weights[i] = uint64(1 + r.Intn(maxWeight))
			for j := uint64(0); j < weights[i]; j++ {
				expanded = append(expanded, values[i])
			}
		}
		oracle := exact.FromValues(expanded)
		n := oracle.N()

		weighted, err := quantile.NewREQ(core.Config{Eps: eps, Delta: 0.05, Seed: seed}, "req-weighted")
		if err != nil {
			return err
		}
		for i := range values {
			if err := weighted.Core().UpdateWeighted(values[i], weights[i]); err != nil {
				return err
			}
		}
		raw, err := quantile.NewREQ(core.Config{Eps: eps, Delta: 0.05, Seed: seed + 1}, "req-raw")
		if err != nil {
			return err
		}
		for _, v := range expanded {
			raw.Update(v)
		}
		if weighted.N() != n || raw.N() != n {
			return fmt.Errorf("weight conservation broken: %d / %d vs %d", weighted.N(), raw.N(), n)
		}
		for _, p := range ranksAt {
			rank := uint64(math.Ceil(p * float64(n)))
			if rank == 0 {
				rank = 1
			}
			y := oracle.ItemOfRank(rank)
			truth := float64(oracle.Rank(y))
			a := perRank[fmt.Sprint(p)]
			a.weighted = append(a.weighted, stats.RelErr(float64(weighted.Rank(y)), truth))
			a.raw = append(a.raw, stats.RelErr(float64(raw.Rank(y)), truth))
		}
		weightedItems += float64(weighted.ItemsRetained()) / float64(trials)
		rawItems += float64(raw.ItemsRetained()) / float64(trials)
	}

	tab := NewTable("norm_rank", "weighted_p95", "raw_p95", "within_eps")
	for _, p := range ranksAt {
		a := perRank[fmt.Sprint(p)]
		ws := stats.Summarize(a.weighted)
		rs := stats.Summarize(a.raw)
		ok := "yes"
		if ws.P95 > eps || rs.P95 > eps {
			ok = "NO"
		}
		tab.AddRow(p, ws.P95, rs.P95, ok)
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "\nfootprints: weighted %.0f items vs raw %.0f (weighted inserts high-weight\n", weightedItems, rawItems)
	fmt.Fprintf(w, "items directly at high levels, skipping redundant low-level churn)\n")
	return nil
}
