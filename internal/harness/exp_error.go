package harness

import (
	"fmt"
	"io"

	"req/internal/core"
	"req/internal/exact"
	"req/internal/quantile"
	"req/internal/rng"
	"req/internal/stats"
	"req/internal/streams"
	"req/internal/textplot"
)

func init() {
	register(Experiment{
		ID:       "E1",
		Title:    "Relative rank error vs. rank (fixed ε, δ)",
		PaperRef: "Theorem 1 / Theorem 14: |R̂(y) − R(y)| ≤ ε·R(y) w.p. 1−δ",
		Run:      runE1,
	})
	register(Experiment{
		ID:       "E5",
		Title:    "Failure probability vs. δ",
		PaperRef: "Theorem 14: Pr[|Err(y)| ≥ ε·R(y)] < 3δ",
		Run:      runE5,
	})
	register(Experiment{
		ID:       "E7",
		Title:    "Arrival-order robustness",
		PaperRef: "comparison-based guarantee (Sec. 2): error bound holds for every input order",
		Run:      runE7,
	})
	register(Experiment{
		ID:       "E12",
		Title:    "Coin-flip ablation: deterministic parity biases the estimate",
		PaperRef: "Observation 4: random even/odd choice makes compaction error zero-mean",
		Run:      runE12,
	})
}

func runE1(w io.Writer, cfg Config) error {
	n := 1 << 19
	trials := 24
	if cfg.Quick {
		n = 1 << 15
		trials = 6
	}
	const eps, delta = 0.05, 0.05
	fmt.Fprintf(w, "stream: random permutation of n=%d; ε=%.2f δ=%.2f; %d trials\n\n", n, eps, delta, trials)

	ranks := LogRanks(uint64(n), 2)
	prof := MeasureRankError(
		quantile.REQFactory(core.Config{Eps: eps, Delta: delta}, "req"),
		PermData(n), ranks, trials, cfg.Seed+1)

	tab := NewTable("rank", "relerr_p50", "relerr_p95", "relerr_max", "within_eps")
	violations := 0
	for i, r := range prof.Ranks {
		ok := "yes"
		if prof.P95[i] > eps {
			ok = "NO"
			violations++
		}
		tab.AddRow(r, prof.P50[i], prof.P95[i], prof.Max[i], ok)
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "\nmean retained items: %.0f; ranks with p95 above ε: %d/%d\n",
		prof.Items, violations, len(prof.Ranks))

	epsLine := make([]float64, len(prof.Ranks))
	xs := make([]float64, len(prof.Ranks))
	for i, r := range prof.Ranks {
		xs[i] = float64(r)
		epsLine[i] = eps
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, textplot.Render([]textplot.Series{
		{Name: "p95 rel err", X: xs, Y: prof.P95},
		{Name: "ε", X: xs, Y: epsLine},
	}, textplot.Options{
		Title: "Figure E1: relative error vs rank (log-x)", LogX: true,
		XLabel: "true rank", YLabel: "relative error", Height: 14,
	}))
	return nil
}

func runE5(w io.Writer, cfg Config) error {
	n := 1 << 16
	trials := 300
	if cfg.Quick {
		n = 1 << 13
		trials = 60
	}
	const eps = 0.1
	deltas := []float64{0.5, 0.25, 0.1}
	fmt.Fprintf(w, "per-item guarantee check: n=%d, ε=%.2f, %d independent trials per δ\n", n, eps, trials)
	fmt.Fprintf(w, "the theorem bounds each (item, trial) failure by 3δ; measured rates should sit far below\n\n")

	ranks := LogRanks(uint64(n), 1)
	tab := NewTable("delta", "rank_checked", "violations", "rate", "bound_3delta")
	for _, delta := range deltas {
		prof := profileViolations(cfg, eps, delta, n, trials, ranks)
		total := trials * len(ranks)
		rate := float64(prof) / float64(total)
		tab.AddRow(delta, total, prof, rate, 3*delta)
	}
	tab.Fprint(w)
	return nil
}

// profileViolations counts (rank, trial) pairs whose relative error
// exceeded eps.
func profileViolations(cfg Config, eps, delta float64, n, trials int, ranks []uint64) int {
	master := rng.New(cfg.Seed + 5)
	violations := 0
	for trial := 0; trial < trials; trial++ {
		seed := master.Uint64()
		r := rng.New(seed)
		sk, err := quantile.NewREQ(core.Config{Eps: eps, Delta: delta, Seed: seed}, "req")
		if err != nil {
			panic(err)
		}
		perm := r.Perm(n)
		for _, v := range perm {
			sk.Update(float64(v))
		}
		for _, rank := range ranks {
			est := float64(sk.Rank(float64(rank - 1)))
			if stats.RelErr(est, float64(rank)) > eps {
				violations++
			}
		}
	}
	return violations
}

func runE7(w io.Writer, cfg Config) error {
	n := 1 << 18
	trials := 8
	if cfg.Quick {
		n = 1 << 14
		trials = 3
	}
	const eps, delta = 0.05, 0.05
	fmt.Fprintf(w, "n=%d, ε=%.2f, %d trials per order; worst p95 over log-spaced ranks\n\n", n, eps, trials)

	tab := NewTable("order", "worst_p95", "worst_max", "within_eps")
	for _, order := range streams.AllOrders {
		order := order
		data := func(_ int, r *rng.Source) []float64 {
			vals := streams.Permutation{}.Generate(n, r)
			streams.Arrange(vals, order, r)
			return vals
		}
		prof := MeasureRankError(
			quantile.REQFactory(core.Config{Eps: eps, Delta: delta}, "req"),
			data, LogRanks(uint64(n), 2), trials, cfg.Seed+7)
		ok := "yes"
		if prof.WorstP95() > eps {
			ok = "NO"
		}
		tab.AddRow(order.String(), prof.WorstP95(), prof.WorstMax(), ok)
	}
	tab.Fprint(w)
	return nil
}

func runE12(w io.Writer, cfg Config) error {
	n := 1 << 17
	trials := 16
	if cfg.Quick {
		n = 1 << 14
		trials = 4
	}
	const eps, delta = 0.05, 0.05
	fmt.Fprintf(w, "sorted ascending input, n=%d, %d trials; mean signed relative error per rank\n", n, trials)
	fmt.Fprintf(w, "fair coin should hover near zero; always-even parity drifts systematically\n\n")

	sortedData := func(_ int, _ *rng.Source) []float64 {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i)
		}
		return vals
	}
	ranks := LogRanks(uint64(n), 1)
	fair := MeasureRankError(
		quantile.REQFactory(core.Config{Eps: eps, Delta: delta}, "req-fair"),
		sortedData, ranks, trials, cfg.Seed+12)
	det := MeasureRankError(
		quantile.REQFactory(core.Config{Eps: eps, Delta: delta, DetCoin: true}, "req-detcoin"),
		sortedData, ranks, trials, cfg.Seed+12)

	tab := NewTable("rank", "fair_mean_signed", "det_mean_signed", "fair_abs_p95", "det_abs_p95")
	for i, r := range ranks {
		tab.AddRow(r, fair.MeanSigned[i], det.MeanSigned[i], fair.P95[i], det.P95[i])
	}
	tab.Fprint(w)

	fairBias, detBias := meanAbs(fair.MeanSigned), meanAbs(det.MeanSigned)
	fmt.Fprintf(w, "\nmean |bias| across ranks: fair coin %.5f vs deterministic parity %.5f\n", fairBias, detBias)
	return nil
}

func meanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		sum += x
	}
	return sum / float64(len(xs))
}

// trueRankOracle builds an oracle for a data slice — shared helper for the
// tail experiments.
func trueRankOracle(vals []float64) *exact.Oracle { return exact.FromValues(vals) }
