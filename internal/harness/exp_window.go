package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	req "req"
	"req/internal/exact"
	"req/internal/rng"
	"req/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "E17",
		Title:    "Windowed registry accuracy: ring-merge answers vs exact window oracle",
		PaperRef: "Theorem 3: merging ≤ slots per-epoch sketches keeps the ε guarantee over the window",
		Run:      runE17,
	})
}

// runE17 checks the WindowedRegistry query path against ground truth: a
// per-key ring of per-epoch sketches answered through a merge must carry
// the same relative-error budget as one sketch over the same items,
// because a windowed answer IS a merge of at most `slots` same-config
// sketches (Theorem 3). The experiment keeps an exact copy of every live
// window, advances a synthetic clock through many rotations, and profiles
// the relative rank error of windowed Rank answers at log-spaced ranks —
// including the partial current slot and the rotation boundary, the two
// states a single-sketch test never sees.
func runE17(w io.Writer, cfg Config) error {
	const (
		eps   = 0.05
		slots = 6
	)
	perEpoch := 20000
	epochs := 3 * slots
	trials := 4
	if cfg.Quick {
		perEpoch = 2000
		epochs = 2 * slots
		trials = 2
	}
	slot := time.Second
	fmt.Fprintf(w, "window: %d slots × %s; %d items/epoch over %d epochs; ε=%.2f; %d trials\n",
		slots, slot, perEpoch, epochs, eps, trials)
	fmt.Fprintf(w, "each query epoch compares windowed Rank against an exact oracle over the live window\n\n")

	master := rng.New(cfg.Seed + 17)
	type bucket struct{ errs []float64 }
	// Rank fractions of the window checked at every query point.
	fracs := []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	buckets := make([]bucket, len(fracs))
	countMismatches := 0
	queries := 0

	for trial := 0; trial < trials; trial++ {
		r := rng.New(master.Uint64())
		var now int64
		wreg, err := req.NewWindowedRegistryFloat64(
			req.WithEpsilon(eps), req.WithSeed(master.Uint64()),
			req.WithWindow(slots, slot),
			req.WithClock(func() int64 { return now }))
		if err != nil {
			return err
		}
		// ring[i] holds the exact items of epoch tagged ring[i].ep.
		type epochItems struct {
			ep   int64
			vals []float64
		}
		ring := make([]epochItems, slots)
		for i := range ring {
			ring[i].ep = -1
		}
		const key = "svc"
		for ep := 0; ep < epochs; ep++ {
			now = int64(ep) * int64(slot)
			slotIdx := ep % slots
			ring[slotIdx] = epochItems{ep: int64(ep), vals: ring[slotIdx].vals[:0]}
			for j := 0; j < perEpoch; j++ {
				// Drifting uniform stream: the window's value range moves,
				// so stale-slot leakage would be visible as rank error.
				v := float64(ep)*1e6 + r.Float64()*5e6
				wreg.Update(key, v)
				ring[slotIdx].vals = append(ring[slotIdx].vals, v)
			}
			if ep < slots-1 {
				continue // window not yet full
			}
			// Exact live window at this instant.
			var live []float64
			for i := range ring {
				if ring[i].ep >= 0 && int64(ep)-ring[i].ep < int64(slots) {
					live = append(live, ring[i].vals...)
				}
			}
			oracle := exact.FromValues(live)
			if got, want := wreg.Count(key), oracle.N(); got != want {
				countMismatches++
			}
			queries++
			n := oracle.N()
			for i, f := range fracs {
				rank := uint64(f * float64(n))
				if rank == 0 {
					rank = 1
				}
				y := oracle.ItemOfRank(rank)
				est, err := wreg.Rank(key, y)
				if err != nil {
					return err
				}
				truth := oracle.Rank(y)
				buckets[i].errs = append(buckets[i].errs, stats.RelErr(float64(est), float64(truth)))
			}
		}
	}

	tab := NewTable("window_frac", "relerr_p50", "relerr_p95", "relerr_max", "within_eps")
	violations := 0
	for i, f := range fracs {
		errs := buckets[i].errs
		sort.Float64s(errs)
		p50 := stats.Percentile(errs, 0.50)
		p95 := stats.Percentile(errs, 0.95)
		max := stats.MaxFloat(errs)
		ok := "yes"
		if p95 > eps {
			ok = "NO"
			violations++
		}
		tab.AddRow(f, p50, p95, max, ok)
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "\nquery points: %d; exact-count mismatches: %d; fracs with p95 above ε: %d/%d\n",
		queries, countMismatches, violations, len(fracs))
	if countMismatches > 0 {
		return fmt.Errorf("windowed Count diverged from the exact window at %d query points", countMismatches)
	}
	return nil
}
