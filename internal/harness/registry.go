package harness

// The registry rig: a machine-readable report for the multi-tenant
// keyed-sketch workloads — millions of small sketches behind Registry's
// sharded slab arena. Like the multicore rig (and unlike the E-series
// experiments) this writes JSON for diffing across commits; BENCH_pr9.json
// records one run.
//
// Four workloads:
//
//   - build: populate K keys and measure ns/update and resident bytes/key,
//     A/B between the slab-pooled Registry and a naive map[string]*sketch —
//     the number that justifies the arena design.
//   - hotkey: skewed access (80% of ops on 0.1% of keys) with interleaved
//     p99 queries — the dashboard steady state; allocs/op should be ~0.
//   - churn: a capped registry fed an unbounded key namespace under a
//     synthetic TTL clock — constant eviction and slab recycling;
//     allocs/op should be ~0 once every shard has grown.
//   - export: MarshalBinary + decode of the full population — the bulk
//     snapshot path feeding snapstore.
//   - batched: the shard-grouped UpdatePairs pipeline A/B'd against a
//     per-op Update loop over the identical item stream, across batch
//     sizes and key mixes — the number that justifies batching (one lock
//     acquisition per shard per batch, one cell resolution per distinct
//     key, run-granularity kernel ingest).

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	req "req"
	"req/internal/rng"
)

// RegistryReport is the machine-readable output of RunRegistry.
type RegistryReport struct {
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	Quick     bool   `json:"quick"`
	Note      string `json:"note"`

	Build   []RegistryBuildPoint  `json:"build"`
	HotKey  []RegistryHotKeyPoint `json:"hotkey"`
	Churn   []RegistryChurnPoint  `json:"churn"`
	Export  []RegistryExportPoint `json:"export"`
	Batched []RegistryBatchPoint  `json:"batched"`
}

// RegistryBatchPoint is one cell of the batched-ingest A/B: the same
// pregenerated (key, value) stream fed once through a per-op Update loop
// and once through UpdatePairs at the given batch size. Both arms read
// identical pre-assembled []string / []float64 slices, so the delta is
// purely the ingest pipeline (lock amortization, cell-resolution reuse,
// run-granularity kernels), not key formatting or batch staging.
type RegistryBatchPoint struct {
	Keys             int     `json:"keys"`
	Batch            int     `json:"batch"`
	Mix              string  `json:"mix"`     // "uniform" or "hotkey"
	RunLen           int     `json:"run_len"` // consecutive items per drawn key
	Items            int     `json:"items"`
	NsPerItemPerOp   float64 `json:"ns_per_item_perop"`
	NsPerItemBatched float64 `json:"ns_per_item_batched"`
	Speedup          float64 `json:"speedup"`
	AllocsPerItem    float64 `json:"allocs_per_item_batched"` // should be ~0
}

// RegistryBuildPoint is one cell of the scale × implementation build A/B.
// Creation (the first pass, which allocates every sketch and faults in the
// arena) is timed separately from the steady-state update passes.
type RegistryBuildPoint struct {
	Impl          string  `json:"impl"` // "registry-slab" or "naive-map"
	Keys          int     `json:"keys"`
	UpdatesPerKey int     `json:"updates_per_key"`
	NsPerCreate   float64 `json:"ns_per_create"` // first pass: one create+update per key
	NsPerUpdate   float64 `json:"ns_per_update"` // later passes: resident-key updates
	BytesPerKey   float64 `json:"bytes_per_key"`
	AllocsPerKey  float64 `json:"allocs_per_key"`
}

// RegistryHotKeyPoint reports the skewed steady-state mixed workload.
type RegistryHotKeyPoint struct {
	Keys        int     `json:"keys"`
	Ops         int     `json:"ops"`
	HotFrac     float64 `json:"hot_frac"`      // fraction of keys that are hot
	HotShare    float64 `json:"hot_share"`     // fraction of ops hitting them
	QueryEvery  int     `json:"query_every"`   // one Quantile per this many updates
	NsPerOp     float64 `json:"ns_per_op"`     // updates + queries combined
	AllocsPerOp float64 `json:"allocs_per_op"` // should be ~0
}

// RegistryChurnPoint reports the capped-capacity TTL churn workload.
type RegistryChurnPoint struct {
	MaxEntries  int     `json:"max_entries"`
	Namespace   int     `json:"namespace"` // distinct keys fed in
	Ops         int     `json:"ops"`
	TTLSlots    int     `json:"updates_per_ttl"` // clock granularity
	Evictions   uint64  `json:"evictions"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"` // should be ~0: recycled cells + slabs
}

// RegistryExportPoint reports the bulk snapshot export path.
type RegistryExportPoint struct {
	Keys          int     `json:"keys"`
	BlobBytes     int     `json:"blob_bytes"`
	BytesPerKey   float64 `json:"blob_bytes_per_key"`
	EncodeSeconds float64 `json:"encode_seconds"`
	DecodeSeconds float64 `json:"decode_seconds"`
	EncodeMBps    float64 `json:"encode_mb_per_s"`
}

// registryOpts is the shared sketch shape for every rig workload: small
// per-key sketches (the multi-tenant regime) with deterministic seeds.
func registryOpts(extra ...req.Option) []req.Option {
	return append([]req.Option{req.WithK(8), req.WithSeed(9)}, extra...)
}

// memUsed forces a GC and returns (heap bytes, cumulative mallocs).
func memUsed() (uint64, uint64) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc, ms.Mallocs
}

// keyNames returns n distinct key strings, allocated up front so key
// construction never pollutes a measurement.
func keyNames(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%08d", i)
	}
	return keys
}

// RunRegistry executes the registry workloads and writes the JSON report.
func RunRegistry(w io.Writer, cfg Config) error {
	rep := &RegistryReport{
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Quick:     cfg.Quick,
		Note: "bytes_per_key is resident heap delta after GC divided by keys; " +
			"allocs_per_op is the Mallocs delta over the measured ops (steady state, post-warm); " +
			"ns_per_create covers each impl's first pass (sketch creation + first-touch page " +
			"faults), ns_per_update the later resident-key passes; impls run sequentially in " +
			"one process, so a later impl can reuse OS pages an earlier one faulted in — " +
			"compare allocs/bytes across impls, compare ns within an impl across scales",
	}

	scales := []int{1 << 20, 1 << 22}
	updatesPerKey := 8
	if cfg.Quick {
		scales = []int{1 << 16}
		updatesPerKey = 4
	}

	for _, keys := range scales {
		rep.Build = append(rep.Build,
			buildRegistrySlab(keys, updatesPerKey, cfg.Seed),
			buildNaiveMap(keys, updatesPerKey, cfg.Seed))
	}
	rep.HotKey = append(rep.HotKey, runHotKey(scales[0], cfg))
	rep.Churn = append(rep.Churn, runChurn(cfg))
	rep.Export = append(rep.Export, runExport(scales[0], cfg))
	rep.Batched = runBatched(scales[0], cfg)

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func buildRegistrySlab(keys, perKey int, seed uint64) RegistryBuildPoint {
	names := keyNames(keys)
	r := rng.New(seed + 101)
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = r.Float64()
	}
	heap0, mallocs0 := memUsed()
	reg, err := req.NewRegistryFloat64(registryOpts()...)
	if err != nil {
		panic(err)
	}
	start := time.Now()
	for i, k := range names {
		reg.Update(k, vals[i&(1<<16-1)])
	}
	createSecs := time.Since(start).Seconds()
	start = time.Now()
	ops := 0
	for pass := 1; pass < perKey; pass++ {
		for i, k := range names {
			reg.Update(k, vals[(pass*keys+i)&(1<<16-1)])
			ops++
		}
	}
	secs := time.Since(start).Seconds()
	heap1, mallocs1 := memUsed()
	pt := RegistryBuildPoint{
		Impl: "registry-slab", Keys: keys, UpdatesPerKey: perKey,
		NsPerCreate:  createSecs / float64(keys) * 1e9,
		NsPerUpdate:  secs / float64(ops) * 1e9,
		BytesPerKey:  float64(heap1-heap0) / float64(keys),
		AllocsPerKey: float64(mallocs1-mallocs0) / float64(keys),
	}
	runtime.KeepAlive(reg)
	return pt
}

func buildNaiveMap(keys, perKey int, seed uint64) RegistryBuildPoint {
	names := keyNames(keys)
	r := rng.New(seed + 101)
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = r.Float64()
	}
	heap0, mallocs0 := memUsed()
	m := make(map[string]*req.Float64)
	start := time.Now()
	for i, k := range names {
		s, err := req.NewFloat64(registryOpts(req.WithSeed(uint64(i)))...)
		if err != nil {
			panic(err)
		}
		m[k] = s
		s.Update(vals[i&(1<<16-1)])
	}
	createSecs := time.Since(start).Seconds()
	start = time.Now()
	ops := 0
	for pass := 1; pass < perKey; pass++ {
		for i, k := range names {
			m[k].Update(vals[(pass*keys+i)&(1<<16-1)])
			ops++
		}
	}
	secs := time.Since(start).Seconds()
	heap1, mallocs1 := memUsed()
	pt := RegistryBuildPoint{
		Impl: "naive-map", Keys: keys, UpdatesPerKey: perKey,
		NsPerCreate:  createSecs / float64(keys) * 1e9,
		NsPerUpdate:  secs / float64(ops) * 1e9,
		BytesPerKey:  float64(heap1-heap0) / float64(keys),
		AllocsPerKey: float64(mallocs1-mallocs0) / float64(keys),
	}
	runtime.KeepAlive(m)
	return pt
}

func runHotKey(keys int, cfg Config) RegistryHotKeyPoint {
	const (
		hotFrac    = 0.001
		hotShare   = 0.8
		queryEvery = 64
	)
	ops := 1 << 24
	if cfg.Quick {
		ops = 1 << 20
	}
	names := keyNames(keys)
	hot := int(float64(keys) * hotFrac)
	if hot < 1 {
		hot = 1
	}
	reg, err := req.NewRegistryFloat64(registryOpts()...)
	if err != nil {
		panic(err)
	}
	r := rng.New(cfg.Seed + 202)
	// Warm: touch every key once, then run a fifth of the ops to reach
	// steady state before measuring.
	for _, k := range names {
		reg.Update(k, r.Float64())
	}
	pick := func() string {
		if r.Float64() < hotShare {
			return names[r.Intn(hot)]
		}
		return names[r.Intn(keys)]
	}
	for i := 0; i < ops/5; i++ {
		reg.Update(pick(), r.Float64())
	}
	_, mallocs0 := memUsed()
	start := time.Now()
	for i := 0; i < ops; i++ {
		k := pick()
		reg.Update(k, r.Float64())
		if i%queryEvery == 0 {
			if _, err := reg.Quantile(k, 0.99); err != nil {
				panic(err)
			}
		}
	}
	secs := time.Since(start).Seconds()
	_, mallocs1 := memUsed()
	return RegistryHotKeyPoint{
		Keys: keys, Ops: ops, HotFrac: hotFrac, HotShare: hotShare, QueryEvery: queryEvery,
		NsPerOp:     secs / float64(ops) * 1e9,
		AllocsPerOp: float64(mallocs1-mallocs0) / float64(ops),
	}
}

func runChurn(cfg Config) RegistryChurnPoint {
	maxEntries := 1 << 16
	namespace := 1 << 20
	ops := 1 << 23
	if cfg.Quick {
		maxEntries = 1 << 12
		namespace = 1 << 16
		ops = 1 << 19
	}
	const updatesPerTTL = 1 << 12
	names := keyNames(namespace)
	var now int64
	reg, err := req.NewRegistryFloat64(registryOpts(
		req.WithMaxEntries(maxEntries),
		req.WithTTL(time.Minute),
		req.WithClock(func() int64 { return now }))...)
	if err != nil {
		panic(err)
	}
	r := rng.New(cfg.Seed + 303)
	step := func(i int) {
		// Sequential sweep through the namespace: every key is new to the
		// capped registry, so each creation recycles an evicted cell.
		reg.Update(names[i%namespace], r.Float64())
		if i%updatesPerTTL == 0 {
			now += int64(time.Second)
		}
	}
	for i := 0; i < ops/4; i++ {
		step(i) // warm: grow every shard's arena and slabs to steady state
	}
	evict0 := reg.Evictions()
	_, mallocs0 := memUsed()
	start := time.Now()
	for i := 0; i < ops; i++ {
		step(i)
	}
	secs := time.Since(start).Seconds()
	_, mallocs1 := memUsed()
	return RegistryChurnPoint{
		MaxEntries: maxEntries, Namespace: namespace, Ops: ops, TTLSlots: updatesPerTTL,
		Evictions:   reg.Evictions() - evict0,
		NsPerOp:     secs / float64(ops) * 1e9,
		AllocsPerOp: float64(mallocs1-mallocs0) / float64(ops),
	}
}

func runExport(keys int, cfg Config) RegistryExportPoint {
	names := keyNames(keys)
	reg, err := req.NewRegistryFloat64(registryOpts()...)
	if err != nil {
		panic(err)
	}
	r := rng.New(cfg.Seed + 404)
	for pass := 0; pass < 4; pass++ {
		for _, k := range names {
			reg.Update(k, r.Float64())
		}
	}
	start := time.Now()
	blob, err := reg.MarshalBinary()
	if err != nil {
		panic(err)
	}
	encSecs := time.Since(start).Seconds()
	start = time.Now()
	rs, err := req.UnmarshalRegistryFloat64(blob)
	if err != nil {
		panic(err)
	}
	decSecs := time.Since(start).Seconds()
	if rs.Len() != keys {
		panic(fmt.Sprintf("export round-trip lost keys: %d of %d", rs.Len(), keys))
	}
	return RegistryExportPoint{
		Keys: keys, BlobBytes: len(blob),
		BytesPerKey:   float64(len(blob)) / float64(keys),
		EncodeSeconds: encSecs, DecodeSeconds: decSecs,
		EncodeMBps: float64(len(blob)) / 1e6 / encSecs,
	}
}

// batchStream pregenerates an item stream over the key population: the
// fully-assembled key and value slices both arms consume. mix "uniform"
// draws keys uniformly; "hotkey" sends 80% of draws to 0.1% of keys.
// Each drawn key contributes runLen consecutive items — runLen 1 is the
// scatter regime (every item a distinct draw, per-key runs of one);
// runLen 8 is the aggregated-flush regime (an upstream buffer emits a
// few samples per key per flush), where the run-granularity kernel
// ingest engages.
func batchStream(names []string, items int, mix string, runLen int, seed uint64) ([]string, []float64) {
	r := rng.New(seed)
	ks := make([]string, items)
	vs := make([]float64, items)
	hot := len(names) / 1000
	if hot < 1 {
		hot = 1
	}
	for i := 0; i < len(ks); {
		var k string
		switch mix {
		case "hotkey":
			if r.Float64() < 0.8 {
				k = names[r.Intn(hot)]
			} else {
				k = names[r.Intn(len(names))]
			}
		default:
			k = names[r.Intn(len(names))]
		}
		for j := 0; j < runLen && i < len(ks); j++ {
			ks[i] = k
			vs[i] = r.Float64()
			i++
		}
	}
	return ks, vs
}

// batchRegistry builds a registry with every key in names resident, so
// both arms measure steady-state ingest rather than creation.
func batchRegistry(names []string, seed uint64) *req.RegistryFloat64 {
	reg, err := req.NewRegistryFloat64(registryOpts()...)
	if err != nil {
		panic(err)
	}
	r := rng.New(seed)
	for _, k := range names {
		reg.Update(k, r.Float64())
	}
	return reg
}

// runBatched measures every (mix, runLen, batch) cell as the MINIMUM over
// batchReps full passes of the identical stream: a single pass on this
// box is polluted by GC pacing over the ~1.5GB resident key population
// and can swing ±30% run to run, and the min is the standard noise-robust
// throughput estimator (any slower pass differs only by interference).
// Both arms ingest into one registry reused across reps, so every rep
// after the first is pure steady state; the per-op arm does not depend on
// the batch size, so it is measured once per (mix, runLen) and shared by
// the three batch cells.
func runBatched(keys int, cfg Config) []RegistryBatchPoint {
	items := 1 << 21
	reps := 3
	if cfg.Quick {
		items = 1 << 17
		reps = 1
	}
	names := keyNames(keys)
	var pts []RegistryBatchPoint
	for _, mix := range []string{"uniform", "hotkey"} {
		for _, runLen := range []int{1, 8} {
			ks, vs := batchStream(names, items, mix, runLen, cfg.Seed+505)

			// Per-op arm: the baseline loop over the identical stream.
			perOp := batchRegistry(names, cfg.Seed+606)
			perOpSecs := math.Inf(1)
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				for i := range ks {
					perOp.Update(ks[i], vs[i])
				}
				perOpSecs = math.Min(perOpSecs, time.Since(start).Seconds())
			}
			runtime.KeepAlive(perOp)

			for _, batch := range []int{16, 256, 4096} {
				// Batched arm: same stream, sliced into UpdatePairs calls.
				batched := batchRegistry(names, cfg.Seed+606)
				batched.UpdatePairs(ks[:batch], vs[:batch]) // grow pooled scratch
				batchedSecs := math.Inf(1)
				_, mallocs0 := memUsed()
				for rep := 0; rep < reps; rep++ {
					start := time.Now()
					for off := 0; off < items; off += batch {
						end := off + batch
						if end > items {
							end = items
						}
						batched.UpdatePairs(ks[off:end], vs[off:end])
					}
					batchedSecs = math.Min(batchedSecs, time.Since(start).Seconds())
				}
				_, mallocs1 := memUsed()
				runtime.KeepAlive(batched)

				pts = append(pts, RegistryBatchPoint{
					Keys: keys, Batch: batch, Mix: mix, RunLen: runLen, Items: items,
					NsPerItemPerOp:   perOpSecs / float64(items) * 1e9,
					NsPerItemBatched: batchedSecs / float64(items) * 1e9,
					Speedup:          perOpSecs / batchedSecs,
					AllocsPerItem:    float64(mallocs1-mallocs0) / float64(items*reps),
				})
			}
		}
	}
	return pts
}
