package harness

// The registry rig: a machine-readable report for the multi-tenant
// keyed-sketch workloads — millions of small sketches behind Registry's
// sharded slab arena. Like the multicore rig (and unlike the E-series
// experiments) this writes JSON for diffing across commits; BENCH_pr9.json
// records one run.
//
// Four workloads:
//
//   - build: populate K keys and measure ns/update and resident bytes/key,
//     A/B between the slab-pooled Registry and a naive map[string]*sketch —
//     the number that justifies the arena design.
//   - hotkey: skewed access (80% of ops on 0.1% of keys) with interleaved
//     p99 queries — the dashboard steady state; allocs/op should be ~0.
//   - churn: a capped registry fed an unbounded key namespace under a
//     synthetic TTL clock — constant eviction and slab recycling;
//     allocs/op should be ~0 once every shard has grown.
//   - export: MarshalBinary + decode of the full population — the bulk
//     snapshot path feeding snapstore.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	req "req"
	"req/internal/rng"
)

// RegistryReport is the machine-readable output of RunRegistry.
type RegistryReport struct {
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	Quick     bool   `json:"quick"`
	Note      string `json:"note"`

	Build  []RegistryBuildPoint  `json:"build"`
	HotKey []RegistryHotKeyPoint `json:"hotkey"`
	Churn  []RegistryChurnPoint  `json:"churn"`
	Export []RegistryExportPoint `json:"export"`
}

// RegistryBuildPoint is one cell of the scale × implementation build A/B.
// Creation (the first pass, which allocates every sketch and faults in the
// arena) is timed separately from the steady-state update passes.
type RegistryBuildPoint struct {
	Impl          string  `json:"impl"` // "registry-slab" or "naive-map"
	Keys          int     `json:"keys"`
	UpdatesPerKey int     `json:"updates_per_key"`
	NsPerCreate   float64 `json:"ns_per_create"` // first pass: one create+update per key
	NsPerUpdate   float64 `json:"ns_per_update"` // later passes: resident-key updates
	BytesPerKey   float64 `json:"bytes_per_key"`
	AllocsPerKey  float64 `json:"allocs_per_key"`
}

// RegistryHotKeyPoint reports the skewed steady-state mixed workload.
type RegistryHotKeyPoint struct {
	Keys        int     `json:"keys"`
	Ops         int     `json:"ops"`
	HotFrac     float64 `json:"hot_frac"`      // fraction of keys that are hot
	HotShare    float64 `json:"hot_share"`     // fraction of ops hitting them
	QueryEvery  int     `json:"query_every"`   // one Quantile per this many updates
	NsPerOp     float64 `json:"ns_per_op"`     // updates + queries combined
	AllocsPerOp float64 `json:"allocs_per_op"` // should be ~0
}

// RegistryChurnPoint reports the capped-capacity TTL churn workload.
type RegistryChurnPoint struct {
	MaxEntries  int     `json:"max_entries"`
	Namespace   int     `json:"namespace"` // distinct keys fed in
	Ops         int     `json:"ops"`
	TTLSlots    int     `json:"updates_per_ttl"` // clock granularity
	Evictions   uint64  `json:"evictions"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"` // should be ~0: recycled cells + slabs
}

// RegistryExportPoint reports the bulk snapshot export path.
type RegistryExportPoint struct {
	Keys          int     `json:"keys"`
	BlobBytes     int     `json:"blob_bytes"`
	BytesPerKey   float64 `json:"blob_bytes_per_key"`
	EncodeSeconds float64 `json:"encode_seconds"`
	DecodeSeconds float64 `json:"decode_seconds"`
	EncodeMBps    float64 `json:"encode_mb_per_s"`
}

// registryOpts is the shared sketch shape for every rig workload: small
// per-key sketches (the multi-tenant regime) with deterministic seeds.
func registryOpts(extra ...req.Option) []req.Option {
	return append([]req.Option{req.WithK(8), req.WithSeed(9)}, extra...)
}

// memUsed forces a GC and returns (heap bytes, cumulative mallocs).
func memUsed() (uint64, uint64) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc, ms.Mallocs
}

// keyNames returns n distinct key strings, allocated up front so key
// construction never pollutes a measurement.
func keyNames(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%08d", i)
	}
	return keys
}

// RunRegistry executes the registry workloads and writes the JSON report.
func RunRegistry(w io.Writer, cfg Config) error {
	rep := &RegistryReport{
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Quick:     cfg.Quick,
		Note: "bytes_per_key is resident heap delta after GC divided by keys; " +
			"allocs_per_op is the Mallocs delta over the measured ops (steady state, post-warm); " +
			"ns_per_create covers each impl's first pass (sketch creation + first-touch page " +
			"faults), ns_per_update the later resident-key passes; impls run sequentially in " +
			"one process, so a later impl can reuse OS pages an earlier one faulted in — " +
			"compare allocs/bytes across impls, compare ns within an impl across scales",
	}

	scales := []int{1 << 20, 1 << 22}
	updatesPerKey := 8
	if cfg.Quick {
		scales = []int{1 << 16}
		updatesPerKey = 4
	}

	for _, keys := range scales {
		rep.Build = append(rep.Build,
			buildRegistrySlab(keys, updatesPerKey, cfg.Seed),
			buildNaiveMap(keys, updatesPerKey, cfg.Seed))
	}
	rep.HotKey = append(rep.HotKey, runHotKey(scales[0], cfg))
	rep.Churn = append(rep.Churn, runChurn(cfg))
	rep.Export = append(rep.Export, runExport(scales[0], cfg))

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func buildRegistrySlab(keys, perKey int, seed uint64) RegistryBuildPoint {
	names := keyNames(keys)
	r := rng.New(seed + 101)
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = r.Float64()
	}
	heap0, mallocs0 := memUsed()
	reg, err := req.NewRegistryFloat64(registryOpts()...)
	if err != nil {
		panic(err)
	}
	start := time.Now()
	for i, k := range names {
		reg.Update(k, vals[i&(1<<16-1)])
	}
	createSecs := time.Since(start).Seconds()
	start = time.Now()
	ops := 0
	for pass := 1; pass < perKey; pass++ {
		for i, k := range names {
			reg.Update(k, vals[(pass*keys+i)&(1<<16-1)])
			ops++
		}
	}
	secs := time.Since(start).Seconds()
	heap1, mallocs1 := memUsed()
	pt := RegistryBuildPoint{
		Impl: "registry-slab", Keys: keys, UpdatesPerKey: perKey,
		NsPerCreate:  createSecs / float64(keys) * 1e9,
		NsPerUpdate:  secs / float64(ops) * 1e9,
		BytesPerKey:  float64(heap1-heap0) / float64(keys),
		AllocsPerKey: float64(mallocs1-mallocs0) / float64(keys),
	}
	runtime.KeepAlive(reg)
	return pt
}

func buildNaiveMap(keys, perKey int, seed uint64) RegistryBuildPoint {
	names := keyNames(keys)
	r := rng.New(seed + 101)
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = r.Float64()
	}
	heap0, mallocs0 := memUsed()
	m := make(map[string]*req.Float64)
	start := time.Now()
	for i, k := range names {
		s, err := req.NewFloat64(registryOpts(req.WithSeed(uint64(i)))...)
		if err != nil {
			panic(err)
		}
		m[k] = s
		s.Update(vals[i&(1<<16-1)])
	}
	createSecs := time.Since(start).Seconds()
	start = time.Now()
	ops := 0
	for pass := 1; pass < perKey; pass++ {
		for i, k := range names {
			m[k].Update(vals[(pass*keys+i)&(1<<16-1)])
			ops++
		}
	}
	secs := time.Since(start).Seconds()
	heap1, mallocs1 := memUsed()
	pt := RegistryBuildPoint{
		Impl: "naive-map", Keys: keys, UpdatesPerKey: perKey,
		NsPerCreate:  createSecs / float64(keys) * 1e9,
		NsPerUpdate:  secs / float64(ops) * 1e9,
		BytesPerKey:  float64(heap1-heap0) / float64(keys),
		AllocsPerKey: float64(mallocs1-mallocs0) / float64(keys),
	}
	runtime.KeepAlive(m)
	return pt
}

func runHotKey(keys int, cfg Config) RegistryHotKeyPoint {
	const (
		hotFrac    = 0.001
		hotShare   = 0.8
		queryEvery = 64
	)
	ops := 1 << 24
	if cfg.Quick {
		ops = 1 << 20
	}
	names := keyNames(keys)
	hot := int(float64(keys) * hotFrac)
	if hot < 1 {
		hot = 1
	}
	reg, err := req.NewRegistryFloat64(registryOpts()...)
	if err != nil {
		panic(err)
	}
	r := rng.New(cfg.Seed + 202)
	// Warm: touch every key once, then run a fifth of the ops to reach
	// steady state before measuring.
	for _, k := range names {
		reg.Update(k, r.Float64())
	}
	pick := func() string {
		if r.Float64() < hotShare {
			return names[r.Intn(hot)]
		}
		return names[r.Intn(keys)]
	}
	for i := 0; i < ops/5; i++ {
		reg.Update(pick(), r.Float64())
	}
	_, mallocs0 := memUsed()
	start := time.Now()
	for i := 0; i < ops; i++ {
		k := pick()
		reg.Update(k, r.Float64())
		if i%queryEvery == 0 {
			if _, err := reg.Quantile(k, 0.99); err != nil {
				panic(err)
			}
		}
	}
	secs := time.Since(start).Seconds()
	_, mallocs1 := memUsed()
	return RegistryHotKeyPoint{
		Keys: keys, Ops: ops, HotFrac: hotFrac, HotShare: hotShare, QueryEvery: queryEvery,
		NsPerOp:     secs / float64(ops) * 1e9,
		AllocsPerOp: float64(mallocs1-mallocs0) / float64(ops),
	}
}

func runChurn(cfg Config) RegistryChurnPoint {
	maxEntries := 1 << 16
	namespace := 1 << 20
	ops := 1 << 23
	if cfg.Quick {
		maxEntries = 1 << 12
		namespace = 1 << 16
		ops = 1 << 19
	}
	const updatesPerTTL = 1 << 12
	names := keyNames(namespace)
	var now int64
	reg, err := req.NewRegistryFloat64(registryOpts(
		req.WithMaxEntries(maxEntries),
		req.WithTTL(time.Minute),
		req.WithClock(func() int64 { return now }))...)
	if err != nil {
		panic(err)
	}
	r := rng.New(cfg.Seed + 303)
	step := func(i int) {
		// Sequential sweep through the namespace: every key is new to the
		// capped registry, so each creation recycles an evicted cell.
		reg.Update(names[i%namespace], r.Float64())
		if i%updatesPerTTL == 0 {
			now += int64(time.Second)
		}
	}
	for i := 0; i < ops/4; i++ {
		step(i) // warm: grow every shard's arena and slabs to steady state
	}
	evict0 := reg.Evictions()
	_, mallocs0 := memUsed()
	start := time.Now()
	for i := 0; i < ops; i++ {
		step(i)
	}
	secs := time.Since(start).Seconds()
	_, mallocs1 := memUsed()
	return RegistryChurnPoint{
		MaxEntries: maxEntries, Namespace: namespace, Ops: ops, TTLSlots: updatesPerTTL,
		Evictions:   reg.Evictions() - evict0,
		NsPerOp:     secs / float64(ops) * 1e9,
		AllocsPerOp: float64(mallocs1-mallocs0) / float64(ops),
	}
}

func runExport(keys int, cfg Config) RegistryExportPoint {
	names := keyNames(keys)
	reg, err := req.NewRegistryFloat64(registryOpts()...)
	if err != nil {
		panic(err)
	}
	r := rng.New(cfg.Seed + 404)
	for pass := 0; pass < 4; pass++ {
		for _, k := range names {
			reg.Update(k, r.Float64())
		}
	}
	start := time.Now()
	blob, err := reg.MarshalBinary()
	if err != nil {
		panic(err)
	}
	encSecs := time.Since(start).Seconds()
	start = time.Now()
	rs, err := req.UnmarshalRegistryFloat64(blob)
	if err != nil {
		panic(err)
	}
	decSecs := time.Since(start).Seconds()
	if rs.Len() != keys {
		panic(fmt.Sprintf("export round-trip lost keys: %d of %d", rs.Len(), keys))
	}
	return RegistryExportPoint{
		Keys: keys, BlobBytes: len(blob),
		BytesPerKey:   float64(len(blob)) / float64(keys),
		EncodeSeconds: encSecs, DecodeSeconds: decSecs,
		EncodeMBps: float64(len(blob)) / 1e6 / encSecs,
	}
}
