package quantile

import (
	"math"
	"testing"

	"req/internal/core"
	"req/internal/rng"
)

// allFactories returns one factory per adapter, sized for eps=0.05.
func allFactories() []Factory {
	const eps = 0.05
	return []Factory{
		REQFactory(core.Config{Eps: eps, Delta: 0.05}, "req"),
		REQFactory(core.Config{Eps: eps, Delta: 0.05, HRA: true}, "req-hra"),
		KLLFactory(eps),
		GKFactory(eps),
		TDigestFactory(eps),
		DDFactory(eps),
		SamplerFactory(eps),
		BQFactory(eps, 18, 0, 1<<17),
	}
}

func TestAdaptersImplementInterface(t *testing.T) {
	const n = 1 << 13
	for _, f := range allFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			sk := f.New(1)
			if sk.Name() == "" {
				t.Fatal("empty name")
			}
			r := rng.New(2)
			for _, v := range r.Perm(n) {
				sk.Update(float64(v))
			}
			if sk.N() != n {
				t.Fatalf("N = %d, want %d", sk.N(), n)
			}
			if sk.ItemsRetained() <= 0 {
				t.Fatal("no items retained")
			}
			if got := sk.Rank(float64(n)); got < n*9/10 {
				t.Fatalf("Rank(max) = %d, far from n", got)
			}
			if got := sk.Rank(-1); got > n/100 {
				t.Fatalf("Rank(below min) = %d", got)
			}
		})
	}
}

func TestAdaptersQuantile(t *testing.T) {
	const n = 1 << 13
	for _, f := range allFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			sk := f.New(3)
			q, ok := sk.(Quantiler)
			if !ok {
				t.Skip("no quantile support")
			}
			r := rng.New(4)
			for _, v := range r.Perm(n) {
				sk.Update(float64(v))
			}
			med, err := q.Quantile(0.5)
			if err != nil {
				t.Fatal(err)
			}
			if med < n/4 || med > 3*n/4 {
				t.Fatalf("median = %v for permutation of %d", med, n)
			}
		})
	}
}

func TestAdapterAccuracyMidRank(t *testing.T) {
	// Every adapter must estimate the median rank within 15% on a small
	// permutation (weak bound — this is a wiring test, not a guarantee
	// test; guarantee tests live with the respective packages).
	const n = 1 << 14
	for _, f := range allFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			sk := f.New(5)
			r := rng.New(6)
			for _, v := range r.Perm(n) {
				sk.Update(float64(v))
			}
			got := float64(sk.Rank(float64(n / 2)))
			want := float64(n/2 + 1)
			if math.Abs(got-want)/want > 0.15 {
				t.Fatalf("median rank estimate %v, want ≈%v", got, want)
			}
		})
	}
}

func TestREQAdapterSkipsNaN(t *testing.T) {
	sk, err := NewREQ(core.Config{Eps: 0.1, Delta: 0.1}, "")
	if err != nil {
		t.Fatal(err)
	}
	sk.Update(math.NaN())
	sk.Update(1)
	if sk.N() != 1 {
		t.Fatalf("N = %d", sk.N())
	}
	if sk.Name() != "req" {
		t.Fatalf("default label = %q", sk.Name())
	}
}

func TestREQFactorySeedsDiffer(t *testing.T) {
	f := REQFactory(core.Config{Eps: 0.05, Delta: 0.05}, "req")
	a := f.New(1)
	b := f.New(2)
	r := rng.New(7)
	for _, v := range r.Perm(1 << 15) {
		a.Update(float64(v))
		b.Update(float64(v))
	}
	same := true
	for y := 0.0; y < 1<<15; y += 1000 {
		if a.Rank(y) != b.Rank(y) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical estimates everywhere")
	}
}

func TestExactAdapter(t *testing.T) {
	e := NewExact(10)
	for _, v := range []float64{3, 1, 2} {
		e.Update(v)
	}
	if e.Rank(2) != 2 || e.N() != 3 || e.ItemsRetained() != 3 {
		t.Fatal("exact adapter wiring broken")
	}
	q, err := e.Quantile(0.5)
	if err != nil || q != 2 {
		t.Fatalf("median = %v, %v", q, err)
	}
	if e.Oracle() == nil {
		t.Fatal("oracle accessor nil")
	}
}

func TestBQAdapterQuantizes(t *testing.T) {
	bq, err := NewBQ(0.1, 10, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	bq.Update(math.NaN()) // must not panic or count
	for i := 0; i < 100; i++ {
		bq.Update(float64(i))
	}
	if bq.N() != 100 {
		t.Fatalf("N = %d", bq.N())
	}
	if got := bq.Rank(50); math.Abs(float64(got)-51) > 3 {
		t.Fatalf("Rank(50) = %d", got)
	}
}

func TestCoreAccessor(t *testing.T) {
	r, err := NewREQ(core.Config{Eps: 0.1, Delta: 0.1}, "x")
	if err != nil {
		t.Fatal(err)
	}
	if r.Core() == nil {
		t.Fatal("Core() nil")
	}
	r.Update(1)
	if r.Core().Count() != 1 {
		t.Fatal("core not shared")
	}
}
