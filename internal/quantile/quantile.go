// Package quantile defines the uniform interface the experiment harness
// uses to drive every sketch in this repository — the REQ sketch (in all
// its modes and ablations) and the six baselines — plus adapters
// implementing it.
package quantile

import (
	"math"

	"req/internal/bqdigest"
	"req/internal/core"
	"req/internal/ddsketch"
	"req/internal/exact"
	"req/internal/expsampler"
	"req/internal/gk"
	"req/internal/kll"
	"req/internal/tdigest"
)

// Sketch is the minimal surface the harness needs from every algorithm.
type Sketch interface {
	// Name identifies the sketch in tables and plots.
	Name() string
	// Update inserts one value.
	Update(v float64)
	// Rank returns the estimated inclusive rank of v.
	Rank(v float64) uint64
	// N returns the number of values summarised.
	N() uint64
	// ItemsRetained returns the storage footprint in items/entries.
	ItemsRetained() int
}

// Quantiler is implemented by sketches that answer quantile queries.
type Quantiler interface {
	Quantile(phi float64) (float64, error)
}

// BatchUpdater is implemented by sketches with a native batch ingest path.
// The harness feeds whole trial streams through it when available; the
// semantics must match calling Update once per value.
type BatchUpdater interface {
	UpdateBatch(vs []float64)
}

// Ingest feeds vs into sk, through the batch path when the sketch has one.
func Ingest(sk Sketch, vs []float64) {
	if b, ok := sk.(BatchUpdater); ok {
		b.UpdateBatch(vs)
		return
	}
	for _, v := range vs {
		sk.Update(v)
	}
}

// Factory builds fresh sketch instances for repeated trials.
type Factory struct {
	// Name labels the family (it also names each instance).
	Name string
	// New returns an empty sketch seeded as given.
	New func(seed uint64) Sketch
}

// --- REQ adapter -----------------------------------------------------------

// REQ wraps the core REQ sketch. Built from a core.Config so the harness
// can exercise ablations (naive schedule, deterministic coin, paper
// constants) that the public API does not expose.
type REQ struct {
	s     *core.Sketch[float64]
	label string
}

// NewREQ builds a REQ adapter; label defaults to "req".
func NewREQ(cfg core.Config, label string) (*REQ, error) {
	if label == "" {
		label = "req"
	}
	s, err := core.New(core.LessF64, cfg)
	if err != nil {
		return nil, err
	}
	return &REQ{s: s, label: label}, nil
}

// Name implements Sketch.
func (r *REQ) Name() string { return r.label }

// Update implements Sketch.
func (r *REQ) Update(v float64) {
	if math.IsNaN(v) {
		return
	}
	r.s.Update(v)
}

// UpdateBatch implements BatchUpdater via the core batch ingest path. The
// harness generates NaN-free streams, but stray NaNs are still dropped to
// keep the contract of Update.
func (r *REQ) UpdateBatch(vs []float64) {
	r.s.UpdateBatch(core.FilterNaN(vs))
}

// Rank implements Sketch.
func (r *REQ) Rank(v float64) uint64 { return r.s.Rank(v) }

// N implements Sketch.
func (r *REQ) N() uint64 { return r.s.Count() }

// ItemsRetained implements Sketch.
func (r *REQ) ItemsRetained() int { return r.s.ItemsRetained() }

// Quantile implements Quantiler.
func (r *REQ) Quantile(phi float64) (float64, error) { return r.s.Quantile(phi) }

// Core exposes the wrapped sketch for instrumentation and merging.
func (r *REQ) Core() *core.Sketch[float64] { return r.s }

// REQFactory returns a Factory for the given config and label.
func REQFactory(cfg core.Config, label string) Factory {
	return Factory{Name: labelOr(label, "req"), New: func(seed uint64) Sketch {
		c := cfg
		c.Seed = seed
		r, err := NewREQ(c, label)
		if err != nil {
			panic(err) // factories are built from vetted configs
		}
		return r
	}}
}

// --- KLL adapter ------------------------------------------------------------

// KLL wraps the additive KLL baseline.
type KLL struct{ s *kll.Sketch }

// NewKLL builds a KLL adapter with accuracy parameter k.
func NewKLL(k int, seed uint64) *KLL { return &KLL{s: kll.New(k, seed)} }

// Name implements Sketch.
func (a *KLL) Name() string { return "kll" }

// Update implements Sketch.
func (a *KLL) Update(v float64) { a.s.Update(v) }

// Rank implements Sketch.
func (a *KLL) Rank(v float64) uint64 { return a.s.Rank(v) }

// N implements Sketch.
func (a *KLL) N() uint64 { return a.s.N() }

// ItemsRetained implements Sketch.
func (a *KLL) ItemsRetained() int { return a.s.ItemsRetained() }

// Quantile implements Quantiler.
func (a *KLL) Quantile(phi float64) (float64, error) { return a.s.Quantile(phi) }

// KLLFactory sizes KLL for additive error eps.
func KLLFactory(eps float64) Factory {
	k := kll.KForEpsilon(eps)
	return Factory{Name: "kll", New: func(seed uint64) Sketch { return NewKLL(k, seed) }}
}

// --- GK adapter --------------------------------------------------------------

// GK wraps the deterministic additive Greenwald–Khanna baseline.
type GK struct{ s *gk.Sketch }

// NewGK builds a GK adapter with additive error eps.
func NewGK(eps float64) (*GK, error) {
	s, err := gk.New(eps)
	if err != nil {
		return nil, err
	}
	return &GK{s: s}, nil
}

// Name implements Sketch.
func (a *GK) Name() string { return "gk" }

// Update implements Sketch.
func (a *GK) Update(v float64) { a.s.Update(v) }

// Rank implements Sketch.
func (a *GK) Rank(v float64) uint64 { return a.s.Rank(v) }

// N implements Sketch.
func (a *GK) N() uint64 { return a.s.N() }

// ItemsRetained implements Sketch.
func (a *GK) ItemsRetained() int { return a.s.ItemsRetained() }

// Quantile implements Quantiler.
func (a *GK) Quantile(phi float64) (float64, error) { return a.s.Quantile(phi) }

// GKFactory sizes GK for additive error eps (GK is deterministic; the seed
// is ignored).
func GKFactory(eps float64) Factory {
	return Factory{Name: "gk", New: func(uint64) Sketch {
		a, err := NewGK(eps)
		if err != nil {
			panic(err)
		}
		return a
	}}
}

// --- t-digest adapter ---------------------------------------------------------

// TDigest wraps the heuristic t-digest baseline.
type TDigest struct{ s *tdigest.Sketch }

// NewTDigest builds a t-digest adapter with the given compression.
func NewTDigest(compression float64) *TDigest {
	return &TDigest{s: tdigest.New(compression)}
}

// Name implements Sketch.
func (a *TDigest) Name() string { return "tdigest" }

// Update implements Sketch.
func (a *TDigest) Update(v float64) { a.s.Update(v) }

// Rank implements Sketch.
func (a *TDigest) Rank(v float64) uint64 { return a.s.Rank(v) }

// N implements Sketch.
func (a *TDigest) N() uint64 { return a.s.N() }

// ItemsRetained implements Sketch.
func (a *TDigest) ItemsRetained() int { return a.s.ItemsRetained() }

// Quantile implements Quantiler.
func (a *TDigest) Quantile(phi float64) (float64, error) { return a.s.Quantile(phi) }

// TDigestFactory sizes the digest at compression 1/eps (the t-digest has no
// formal guarantee; this matches its customary sizing). The t-digest merge
// pass is deterministic, so the seed is ignored.
func TDigestFactory(eps float64) Factory {
	comp := 1 / eps
	return Factory{Name: "tdigest", New: func(uint64) Sketch { return NewTDigest(comp) }}
}

// --- DDSketch adapter ----------------------------------------------------------

// DD wraps the value-relative-error DDSketch baseline.
type DD struct{ s *ddsketch.Sketch }

// NewDD builds a DDSketch adapter with value accuracy alpha.
func NewDD(alpha float64) (*DD, error) {
	s, err := ddsketch.New(alpha)
	if err != nil {
		return nil, err
	}
	return &DD{s: s}, nil
}

// Name implements Sketch.
func (a *DD) Name() string { return "ddsketch" }

// Update implements Sketch. DDSketch accepts only non-negative finite
// values; others are dropped (the harness feeds it positive workloads).
func (a *DD) Update(v float64) { _ = a.s.Update(v) }

// Rank implements Sketch.
func (a *DD) Rank(v float64) uint64 { return a.s.Rank(v) }

// N implements Sketch.
func (a *DD) N() uint64 { return a.s.N() }

// ItemsRetained implements Sketch.
func (a *DD) ItemsRetained() int { return a.s.ItemsRetained() }

// Quantile implements Quantiler.
func (a *DD) Quantile(phi float64) (float64, error) { return a.s.Quantile(phi) }

// DDFactory sizes DDSketch at alpha = eps (deterministic; seed ignored).
func DDFactory(eps float64) Factory {
	return Factory{Name: "ddsketch", New: func(uint64) Sketch {
		a, err := NewDD(eps)
		if err != nil {
			panic(err)
		}
		return a
	}}
}

// --- Exponential sampler adapter -------------------------------------------------

// Sampler wraps the bottom-k multi-level sampling baseline.
type Sampler struct{ s *expsampler.Sketch }

// NewSampler builds a sampler adapter targeting relative error eps.
func NewSampler(eps float64, seed uint64) (*Sampler, error) {
	s, err := expsampler.New(eps, seed)
	if err != nil {
		return nil, err
	}
	return &Sampler{s: s}, nil
}

// Name implements Sketch.
func (a *Sampler) Name() string { return "expsampler" }

// Update implements Sketch.
func (a *Sampler) Update(v float64) { a.s.Update(v) }

// Rank implements Sketch.
func (a *Sampler) Rank(v float64) uint64 { return a.s.Rank(v) }

// N implements Sketch.
func (a *Sampler) N() uint64 { return a.s.N() }

// ItemsRetained implements Sketch.
func (a *Sampler) ItemsRetained() int { return a.s.ItemsRetained() }

// Quantile implements Quantiler.
func (a *Sampler) Quantile(phi float64) (float64, error) { return a.s.Quantile(phi) }

// SamplerFactory targets relative error eps.
func SamplerFactory(eps float64) Factory {
	return Factory{Name: "expsampler", New: func(seed uint64) Sketch {
		a, err := NewSampler(eps, seed)
		if err != nil {
			panic(err)
		}
		return a
	}}
}

// --- Biased q-digest adapter ------------------------------------------------------

// BQ wraps the fixed-universe biased q-digest baseline, quantising float64
// values onto a 2^bits grid over [Lo, Hi]. The quantisation is the honest
// cost of this algorithm: it needs the universe in advance.
type BQ struct {
	s      *bqdigest.Sketch
	lo, hi float64
}

// NewBQ builds a biased q-digest adapter over [lo, hi] with 2^bits cells.
func NewBQ(eps float64, bits uint, lo, hi float64) (*BQ, error) {
	s, err := bqdigest.New(eps, bits)
	if err != nil {
		return nil, err
	}
	return &BQ{s: s, lo: lo, hi: hi}, nil
}

// Name implements Sketch.
func (a *BQ) Name() string { return "bqdigest" }

// Update implements Sketch.
func (a *BQ) Update(v float64) {
	if math.IsNaN(v) {
		return
	}
	_ = a.s.Update(a.s.Quantize(v, a.lo, a.hi))
}

// Rank implements Sketch.
func (a *BQ) Rank(v float64) uint64 { return a.s.Rank(a.s.Quantize(v, a.lo, a.hi)) }

// N implements Sketch.
func (a *BQ) N() uint64 { return a.s.N() }

// ItemsRetained implements Sketch.
func (a *BQ) ItemsRetained() int { a.s.Compress(); return a.s.ItemsRetained() }

// BQFactory targets relative error eps over the value range [lo, hi]
// (deterministic; seed ignored).
func BQFactory(eps float64, bits uint, lo, hi float64) Factory {
	return Factory{Name: "bqdigest", New: func(uint64) Sketch {
		a, err := NewBQ(eps, bits, lo, hi)
		if err != nil {
			panic(err)
		}
		return a
	}}
}

// --- Exact oracle adapter ----------------------------------------------------------

// Exact wraps the ground-truth oracle behind the same interface, so the
// harness can treat truth and estimates uniformly.
type Exact struct{ o *exact.Oracle }

// NewExact builds an exact adapter.
func NewExact(sizeHint int) *Exact { return &Exact{o: exact.New(sizeHint)} }

// Name implements Sketch.
func (a *Exact) Name() string { return "exact" }

// Update implements Sketch.
func (a *Exact) Update(v float64) { a.o.Update(v) }

// Rank implements Sketch.
func (a *Exact) Rank(v float64) uint64 { return a.o.Rank(v) }

// N implements Sketch.
func (a *Exact) N() uint64 { return a.o.N() }

// ItemsRetained implements Sketch.
func (a *Exact) ItemsRetained() int { return int(a.o.N()) }

// Quantile implements Quantiler.
func (a *Exact) Quantile(phi float64) (float64, error) { return a.o.Quantile(phi) }

// Oracle exposes the wrapped oracle.
func (a *Exact) Oracle() *exact.Oracle { return a.o }

func labelOr(label, def string) string {
	if label == "" {
		return def
	}
	return label
}
