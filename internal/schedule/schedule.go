// Package schedule implements the derandomized exponential compaction
// schedule of the relative-compactor (Section 2.1 of the paper).
//
// The schedule is driven by a single counter, the compactor state C. Before
// the (C+1)-st compaction the compactor inspects z(C), the number of trailing
// ones in the binary representation of C, and compacts exactly
//
//	L_C = (z(C) + 1) · k
//
// items — that is, z(C)+1 sections of size k, counted from the top (largest
// items) of the buffer. After the compaction, C increments. The first section
// therefore participates in every compaction, the second in every other one,
// the j-th in every 2^(j-1)-th: a geometric protection of lower-ranked items
// that is the heart of the O(ε⁻¹·log^1.5(εn)) space bound.
//
// The crucial combinatorial property is Fact 5: between any two compactions
// that involve exactly j sections there is at least one compaction involving
// more than j sections. Lemma 6's charging argument depends on it, and the
// property-based tests in this package verify it exhaustively over prefixes
// of the schedule.
//
// For mergeability (Appendix D), two schedule states combine with bitwise OR
// (Facts 18 and 19): OR preserves 1-bits, so the "section j+1 is full of
// important items" invariant survives merging, and OR never exceeds the sum,
// so state values remain bounded by the number of compactions ever performed.
package schedule

import "math/bits"

// State is the compaction-schedule state of one relative-compactor. In a
// single stream it equals the number of compactions performed; after merges
// it is the bitwise OR of the constituent histories (plus any compactions
// performed since).
type State uint64

// TrailingOnes returns z(s): the number of trailing one bits.
func (s State) TrailingOnes() int {
	return bits.TrailingZeros64(^uint64(s))
}

// Sections returns the number of size-k sections the next compaction must
// involve: z(s) + 1.
func (s State) Sections() int {
	return s.TrailingOnes() + 1
}

// Next returns the state after one compaction.
func (s State) Next() State {
	return s + 1
}

// Combine merges two schedule states per Algorithm 3 line 16: bitwise OR.
func Combine(a, b State) State {
	return a | b
}

// Kind selects the schedule policy. The paper's algorithm uses the
// exponential schedule; the naive schedule (always compact half the buffer)
// is retained as the ablation the paper discusses in Section 2.1: with it,
// achieving relative error requires k ≈ 1/ε² instead of k ≈ 1/ε.
type Kind uint8

const (
	// Exponential is the paper's derandomized exponential schedule.
	Exponential Kind = iota
	// Naive always compacts the maximum number of sections (L = B/2).
	Naive
)

// String returns the name of the schedule kind.
func (k Kind) String() string {
	switch k {
	case Exponential:
		return "exponential"
	case Naive:
		return "naive"
	default:
		return "unknown"
	}
}

// SectionsFor returns how many sections a compaction must involve under
// schedule kind k in state s, for a compactor whose compactible half holds
// numSections sections. The result is clamped to numSections: the analysis
// (Observation 20) shows the clamp never binds for the exponential schedule
// in a single stream, but merged sketches recompute geometry and the clamp
// keeps the implementation safe under all parameter changes.
func SectionsFor(k Kind, s State, numSections int) int {
	if numSections < 1 {
		numSections = 1
	}
	switch k {
	case Naive:
		return numSections
	default:
		n := s.Sections()
		if n > numSections {
			n = numSections
		}
		return n
	}
}
