package schedule

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// naiveTrailingOnes counts trailing ones by looping over bits, as an
// independent reference for the bit-twiddled implementation.
func naiveTrailingOnes(x uint64) int {
	n := 0
	for x&1 == 1 {
		n++
		x >>= 1
	}
	return n
}

func TestTrailingOnesSmall(t *testing.T) {
	cases := []struct {
		s    State
		want int
	}{
		{0, 0}, {1, 1}, {2, 0}, {3, 2}, {4, 0}, {5, 1}, {6, 0}, {7, 3},
		{8, 0}, {11, 2}, {15, 4}, {16, 0}, {23, 3}, {31, 5}, {0xFFFF, 16},
	}
	for _, c := range cases {
		if got := c.s.TrailingOnes(); got != c.want {
			t.Errorf("TrailingOnes(%d) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestTrailingOnesAllOnes(t *testing.T) {
	if got := State(^uint64(0)).TrailingOnes(); got != 64 {
		t.Fatalf("TrailingOnes(all ones) = %d, want 64", got)
	}
}

func TestTrailingOnesMatchesNaive(t *testing.T) {
	f := func(x uint64) bool {
		return State(x).TrailingOnes() == naiveTrailingOnes(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestSectionsIsTrailingOnesPlusOne(t *testing.T) {
	for s := State(0); s < 4096; s++ {
		if s.Sections() != s.TrailingOnes()+1 {
			t.Fatalf("Sections(%d) = %d, want %d", s, s.Sections(), s.TrailingOnes()+1)
		}
	}
}

// TestFact5 verifies the paper's Fact 5 exhaustively over a long prefix of
// the schedule: between any two compactions that involve exactly j sections
// there is at least one compaction involving strictly more than j sections.
func TestFact5(t *testing.T) {
	const horizon = 1 << 14
	// lastJ[j] = index of the most recent compaction with exactly j+1
	// sections; between two equal-j compactions we must have seen a larger
	// one. Track the largest section count seen since each lastJ.
	type rec struct {
		seen      bool
		maxJSince int
	}
	var last [64]rec
	for c := 0; c < horizon; c++ {
		j := State(c).Sections()
		if last[j].seen && last[j].maxJSince <= j {
			t.Fatalf("Fact 5 violated at state %d: two compactions with %d sections and none larger between", c, j)
		}
		// Record this compaction and update "max since" trackers.
		last[j] = rec{seen: true, maxJSince: 0}
		for k := range last {
			if last[k].seen && j > last[k].maxJSince && k != j {
				last[k].maxJSince = j
			}
		}
	}
}

// TestSectionFrequency verifies the schedule's defining frequency: section j
// (1-indexed) is involved in exactly every 2^(j-1)-th compaction. Over the
// first 2^m compactions, the number of compactions involving at least j
// sections must be 2^m / 2^(j-1).
func TestSectionFrequency(t *testing.T) {
	const m = 12
	const total = 1 << m
	counts := make([]int, 16)
	for c := 0; c < total; c++ {
		secs := State(c).Sections()
		for j := 1; j <= secs && j < len(counts); j++ {
			counts[j]++
		}
	}
	for j := 1; j <= m; j++ {
		want := total >> (j - 1)
		if counts[j] != want {
			t.Errorf("section %d involved in %d compactions over %d, want %d", j, counts[j], total, want)
		}
	}
}

// TestStateBoundObservation20 verifies the schedule analogue of
// Observation 20: after C compactions the state value is exactly C in the
// streaming case, so z(C) < ceil(log2(C+2)) + 1 always holds, meaning a
// compactor that has discarded at least k items per compaction can never be
// asked for more than ~log2(n/k) sections.
func TestStateBoundObservation20(t *testing.T) {
	for c := uint64(0); c < 1<<16; c++ {
		z := State(c).TrailingOnes()
		if c > 0 && z > bits.Len64(c) {
			t.Fatalf("state %d has %d trailing ones > bit length %d", c, z, bits.Len64(c))
		}
	}
}

func TestNext(t *testing.T) {
	s := State(0)
	for i := 1; i <= 100; i++ {
		s = s.Next()
		if uint64(s) != uint64(i) {
			t.Fatalf("Next chain diverged: got %d want %d", s, i)
		}
	}
}

func TestCombineFact18(t *testing.T) {
	// Fact 18: every 1-bit of either operand is set in the combination.
	f := func(a, b uint64) bool {
		c := Combine(State(a), State(b))
		return uint64(c)&a == a && uint64(c)&b == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineFact19(t *testing.T) {
	// Fact 19: OR(a,b) <= a + b (as integers), so combined states remain
	// bounded by the total number of compactions performed.
	f := func(a, b uint64) bool {
		// Avoid overflow in the reference sum.
		a >>= 1
		b >>= 1
		return uint64(Combine(State(a), State(b))) <= a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := State(a), State(b), State(c)
		if Combine(x, y) != Combine(y, x) {
			return false
		}
		return Combine(Combine(x, y), z) == Combine(x, Combine(y, z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineIdentityAndIdempotence(t *testing.T) {
	f := func(a uint64) bool {
		s := State(a)
		return Combine(s, 0) == s && Combine(s, s) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSectionsForExponentialClamps(t *testing.T) {
	// State 2^40-1 has 40 trailing ones; with only 5 sections available the
	// result must clamp to 5.
	s := State(1<<40 - 1)
	if got := SectionsFor(Exponential, s, 5); got != 5 {
		t.Fatalf("SectionsFor clamp = %d, want 5", got)
	}
	if got := SectionsFor(Exponential, 0, 5); got != 1 {
		t.Fatalf("SectionsFor(0) = %d, want 1", got)
	}
}

func TestSectionsForNaive(t *testing.T) {
	for c := State(0); c < 64; c++ {
		if got := SectionsFor(Naive, c, 7); got != 7 {
			t.Fatalf("naive schedule returned %d sections, want all 7", got)
		}
	}
}

func TestSectionsForDegenerate(t *testing.T) {
	if got := SectionsFor(Exponential, 3, 0); got != 1 {
		t.Fatalf("SectionsFor with 0 sections = %d, want clamp to 1", got)
	}
	if got := SectionsFor(Naive, 3, -2); got != 1 {
		t.Fatalf("SectionsFor naive with negative sections = %d, want 1", got)
	}
}

func TestKindString(t *testing.T) {
	if Exponential.String() != "exponential" || Naive.String() != "naive" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind should stringify to unknown")
	}
}

// TestScheduleMatchesPaperExample walks the first 16 states and compares the
// section counts with the sequence implied by Figure 2's description:
// 1,2,1,3,1,2,1,4,1,2,1,3,1,2,1,5 (the ruler sequence + 1).
func TestScheduleMatchesPaperExample(t *testing.T) {
	want := []int{1, 2, 1, 3, 1, 2, 1, 4, 1, 2, 1, 3, 1, 2, 1, 5}
	for i, w := range want {
		if got := State(i).Sections(); got != w {
			t.Fatalf("state %d: sections = %d, want %d", i, got, w)
		}
	}
}
