package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out := Render([]Series{{
		Name: "linear",
		X:    []float64{1, 2, 3, 4, 5},
		Y:    []float64{1, 2, 3, 4, 5},
	}}, Options{Title: "test plot", XLabel: "x", YLabel: "y"})
	for _, want := range []string{"test plot", "legend", "linear", "*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRenderMultipleSeries(t *testing.T) {
	out := Render([]Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{1, 2}},
		{Name: "b", X: []float64{1, 2}, Y: []float64{2, 1}},
	}, Options{})
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("legend missing series")
	}
	if !strings.Contains(out, "+") {
		t.Fatal("second marker not used")
	}
}

func TestRenderLogAxes(t *testing.T) {
	out := Render([]Series{{
		Name: "pow",
		X:    []float64{1, 10, 100, 1000},
		Y:    []float64{1, 100, 10000, 1000000},
	}}, Options{LogX: true, LogY: true})
	// Log-log of a power law is a straight line; at minimum it must render
	// and label the decade endpoints.
	if !strings.Contains(out, "1e+03") && !strings.Contains(out, "1000") {
		t.Fatalf("log axis labels missing:\n%s", out)
	}
}

func TestRenderSkipsNonPositiveOnLog(t *testing.T) {
	out := Render([]Series{{
		Name: "mixed",
		X:    []float64{-1, 0, 1, 10},
		Y:    []float64{1, 1, 1, 2},
	}}, Options{LogX: true})
	if out == "" {
		t.Fatal("empty output")
	}
}

func TestRenderDegenerate(t *testing.T) {
	out := Render(nil, Options{Title: "empty"})
	if !strings.Contains(out, "no plottable points") {
		t.Fatalf("degenerate case: %q", out)
	}
	out = Render([]Series{{Name: "nan", X: []float64{1}, Y: []float64{nan()}}}, Options{})
	if !strings.Contains(out, "no plottable points") {
		t.Fatal("all-NaN series should be degenerate")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	out := Render([]Series{{Name: "c", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}}, Options{})
	if !strings.Contains(out, "c") {
		t.Fatal("constant series failed to render")
	}
}

func TestRenderMismatchedLengths(t *testing.T) {
	// X longer than Y must not panic.
	out := Render([]Series{{Name: "m", X: []float64{1, 2, 3}, Y: []float64{1}}}, Options{})
	if out == "" {
		t.Fatal("empty output")
	}
}

func TestRenderCustomSize(t *testing.T) {
	out := Render([]Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}},
		Options{Width: 20, Height: 5})
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 5 {
		t.Fatalf("plot rows = %d, want 5", plotLines)
	}
}

func nan() float64 {
	var z float64
	return z / z
}
