// Package textplot renders simple ASCII scatter/line plots. The experiment
// harness uses it to reproduce the paper's "figures" in an offline,
// dependency-free environment: every figure in EXPERIMENTS.md is a textplot
// plus the underlying CSV rows.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Options controls the rendering.
type Options struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // plot area columns (default 64)
	Height int  // plot area rows (default 20)
	LogX   bool // logarithmic x axis (points with x ≤ 0 are skipped)
	LogY   bool // logarithmic y axis (points with y ≤ 0 are skipped)
}

// markers cycle across series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Render draws the series into a string. Degenerate input (no finite
// points) yields a short note instead of a panic.
func Render(series []Series, opt Options) string {
	width := opt.Width
	if width <= 0 {
		width = 64
	}
	height := opt.Height
	if height <= 0 {
		height = 20
	}

	tx := func(x float64) (float64, bool) { return transform(x, opt.LogX) }
	ty := func(y float64) (float64, bool) { return transform(y, opt.LogY) }

	// Determine data ranges over transformed coordinates.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	usable := 0
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			usable++
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if usable == 0 {
		return fmt.Sprintf("%s\n  (no plottable points)\n", opt.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	yHiLabel := axisLabel(maxY, opt.LogY)
	yLoLabel := axisLabel(minY, opt.LogY)
	labelWidth := len(yHiLabel)
	if len(yLoLabel) > labelWidth {
		labelWidth = len(yLoLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch i {
		case 0:
			label = pad(yHiLabel, labelWidth)
		case height - 1:
			label = pad(yLoLabel, labelWidth)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width))
	xLo := axisLabel(minX, opt.LogX)
	xHi := axisLabel(maxX, opt.LogX)
	gap := width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelWidth), xLo, strings.Repeat(" ", gap), xHi)
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelWidth), opt.XLabel, opt.YLabel)
	}
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", labelWidth), strings.Join(legend, "   "))
	return b.String()
}

func transform(v float64, log bool) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	if !log {
		return v, true
	}
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

// axisLabel formats an axis endpoint, undoing the log transform for
// display.
func axisLabel(v float64, log bool) string {
	if log {
		return fmt.Sprintf("%.3g", math.Pow(10, v))
	}
	return fmt.Sprintf("%.3g", v)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}
