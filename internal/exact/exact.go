// Package exact provides an exact rank/quantile oracle used as ground truth
// by the test suite and the experiment harness. It stores every item, so it
// is only suitable for evaluation-scale data, which is precisely its job:
// the sketches are compared against it.
package exact

import (
	"errors"
	"math"
	"sort"
)

// Oracle stores a multiset of float64 values and answers exact rank and
// quantile queries. Updates are O(1) amortised; the first query after an
// update sorts the backlog (O(m log m)). Not safe for concurrent use.
type Oracle struct {
	sorted []float64
	dirty  []float64
}

// ErrEmpty is returned by quantile queries on an empty oracle.
var ErrEmpty = errors.New("exact: empty oracle")

// New returns an empty oracle, optionally pre-sized for n items.
func New(sizeHint int) *Oracle {
	return &Oracle{
		sorted: make([]float64, 0, sizeHint),
	}
}

// FromValues builds an oracle over a copy of vals.
func FromValues(vals []float64) *Oracle {
	o := New(len(vals))
	o.dirty = append(o.dirty, vals...)
	return o
}

// Update inserts one value.
func (o *Oracle) Update(v float64) {
	o.dirty = append(o.dirty, v)
}

// N returns the number of values stored.
func (o *Oracle) N() uint64 {
	return uint64(len(o.sorted) + len(o.dirty))
}

// settle merges the dirty backlog into the sorted store.
func (o *Oracle) settle() {
	if len(o.dirty) == 0 {
		return
	}
	sort.Float64s(o.dirty)
	if len(o.sorted) == 0 {
		o.sorted, o.dirty = o.dirty, o.sorted[:0]
		return
	}
	merged := make([]float64, 0, len(o.sorted)+len(o.dirty))
	i, j := 0, 0
	for i < len(o.sorted) && j < len(o.dirty) {
		if o.sorted[i] <= o.dirty[j] {
			merged = append(merged, o.sorted[i])
			i++
		} else {
			merged = append(merged, o.dirty[j])
			j++
		}
	}
	merged = append(merged, o.sorted[i:]...)
	merged = append(merged, o.dirty[j:]...)
	o.sorted = merged
	o.dirty = o.dirty[:0]
}

// Rank returns the exact inclusive rank of y: |{x : x ≤ y}|.
func (o *Oracle) Rank(y float64) uint64 {
	o.settle()
	return uint64(sort.SearchFloat64s(o.sorted, math.Nextafter(y, math.Inf(1))))
}

// RankExclusive returns the exact exclusive rank of y: |{x : x < y}|.
func (o *Oracle) RankExclusive(y float64) uint64 {
	o.settle()
	return uint64(sort.SearchFloat64s(o.sorted, y))
}

// Quantile returns the item at normalized inclusive rank φ: the smallest
// value whose inclusive rank is ≥ ⌈φ·n⌉.
func (o *Oracle) Quantile(phi float64) (float64, error) {
	o.settle()
	if len(o.sorted) == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(phi) || phi < 0 || phi > 1 {
		return 0, errors.New("exact: rank out of [0, 1]")
	}
	idx := int(math.Ceil(phi*float64(len(o.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(o.sorted) {
		idx = len(o.sorted) - 1
	}
	return o.sorted[idx], nil
}

// Min returns the smallest value. ok is false when empty.
func (o *Oracle) Min() (v float64, ok bool) {
	o.settle()
	if len(o.sorted) == 0 {
		return 0, false
	}
	return o.sorted[0], true
}

// Max returns the largest value. ok is false when empty.
func (o *Oracle) Max() (v float64, ok bool) {
	o.settle()
	if len(o.sorted) == 0 {
		return 0, false
	}
	return o.sorted[len(o.sorted)-1], true
}

// Values returns the sorted values. The slice is shared; callers must not
// modify it.
func (o *Oracle) Values() []float64 {
	o.settle()
	return o.sorted
}

// ItemOfRank returns the value whose inclusive rank is r (1-based): the
// r-th smallest. It panics if r is out of [1, n].
func (o *Oracle) ItemOfRank(r uint64) float64 {
	o.settle()
	if r < 1 || r > uint64(len(o.sorted)) {
		panic("exact: rank out of range")
	}
	return o.sorted[r-1]
}
