package exact

import (
	"math"
	"testing"
	"testing/quick"

	"req/internal/rng"
)

func TestEmpty(t *testing.T) {
	o := New(0)
	if o.N() != 0 {
		t.Fatal("fresh oracle not empty")
	}
	if o.Rank(5) != 0 {
		t.Fatal("rank on empty != 0")
	}
	if _, err := o.Quantile(0.5); err != ErrEmpty {
		t.Fatalf("quantile on empty: %v", err)
	}
	if _, ok := o.Min(); ok {
		t.Fatal("min on empty ok")
	}
	if _, ok := o.Max(); ok {
		t.Fatal("max on empty ok")
	}
}

func TestRankBasics(t *testing.T) {
	o := FromValues([]float64{1, 2, 2, 2, 5})
	cases := []struct {
		y    float64
		incl uint64
		excl uint64
	}{
		{0, 0, 0}, {1, 1, 0}, {1.5, 1, 1}, {2, 4, 1}, {3, 4, 4}, {5, 5, 4}, {6, 5, 5},
	}
	for _, c := range cases {
		if got := o.Rank(c.y); got != c.incl {
			t.Errorf("Rank(%v) = %d, want %d", c.y, got, c.incl)
		}
		if got := o.RankExclusive(c.y); got != c.excl {
			t.Errorf("RankExclusive(%v) = %d, want %d", c.y, got, c.excl)
		}
	}
}

func TestRankMatchesNaive(t *testing.T) {
	f := func(vals []float64, y float64) bool {
		o := FromValues(vals)
		incl, excl := uint64(0), uint64(0)
		for _, v := range vals {
			if v <= y {
				incl++
			}
			if v < y {
				excl++
			}
		}
		return o.Rank(y) == incl && o.RankExclusive(y) == excl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedUpdatesAndQueries(t *testing.T) {
	o := New(0)
	r := rng.New(1)
	naive := []float64{}
	for i := 0; i < 2000; i++ {
		v := r.Float64()
		o.Update(v)
		naive = append(naive, v)
		if i%97 == 0 {
			y := r.Float64()
			want := uint64(0)
			for _, x := range naive {
				if x <= y {
					want++
				}
			}
			if got := o.Rank(y); got != want {
				t.Fatalf("step %d: Rank(%v) = %d, want %d", i, y, got, want)
			}
		}
	}
	if o.N() != 2000 {
		t.Fatalf("N = %d", o.N())
	}
}

func TestQuantile(t *testing.T) {
	o := FromValues([]float64{10, 20, 30, 40, 50})
	cases := []struct {
		phi  float64
		want float64
	}{
		{0, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30}, {0.99, 50}, {1, 50},
	}
	for _, c := range cases {
		got, err := o.Quantile(c.phi)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.phi, got, c.want)
		}
	}
}

func TestQuantileRejectsBadPhi(t *testing.T) {
	o := FromValues([]float64{1})
	for _, phi := range []float64{-0.5, 1.5, math.NaN()} {
		if _, err := o.Quantile(phi); err == nil {
			t.Errorf("Quantile(%v) accepted", phi)
		}
	}
}

func TestQuantileRankInverse(t *testing.T) {
	r := rng.New(2)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = r.Float64()
	}
	o := FromValues(vals)
	for _, phi := range []float64{0.001, 0.1, 0.5, 0.9, 0.999} {
		q, err := o.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		rank := o.Rank(q)
		target := uint64(math.Ceil(phi * 1000))
		if target == 0 {
			target = 1
		}
		if rank < target {
			t.Errorf("phi=%v: Rank(Quantile)=%d < target %d", phi, rank, target)
		}
	}
}

func TestMinMax(t *testing.T) {
	o := FromValues([]float64{3, 1, 4, 1, 5})
	mn, _ := o.Min()
	mx, _ := o.Max()
	if mn != 1 || mx != 5 {
		t.Fatalf("min/max = %v/%v", mn, mx)
	}
}

func TestItemOfRank(t *testing.T) {
	o := FromValues([]float64{30, 10, 20})
	if o.ItemOfRank(1) != 10 || o.ItemOfRank(2) != 20 || o.ItemOfRank(3) != 30 {
		t.Fatal("ItemOfRank wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank did not panic")
		}
	}()
	o.ItemOfRank(4)
}

func TestValuesSorted(t *testing.T) {
	o := New(0)
	r := rng.New(3)
	for i := 0; i < 5000; i++ {
		o.Update(r.Float64())
	}
	vals := o.Values()
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatal("values not sorted")
		}
	}
}

func TestDuplicatesPreserved(t *testing.T) {
	o := New(0)
	for i := 0; i < 100; i++ {
		o.Update(7)
	}
	if o.Rank(7) != 100 {
		t.Fatalf("Rank(7) = %d", o.Rank(7))
	}
	if o.Rank(6.999) != 0 {
		t.Fatal("rank below duplicate value not 0")
	}
}

func TestSettleMergePath(t *testing.T) {
	// Force the merge path: settle, then add more and settle again.
	o := New(0)
	for i := 10; i > 0; i-- {
		o.Update(float64(i))
	}
	_ = o.Rank(5) // settles
	for i := 20; i > 10; i-- {
		o.Update(float64(i))
	}
	if got := o.Rank(15); got != 15 {
		t.Fatalf("Rank(15) = %d, want 15", got)
	}
	if o.N() != 20 {
		t.Fatalf("N = %d", o.N())
	}
}
