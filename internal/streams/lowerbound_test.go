package streams

import (
	"testing"

	"req/internal/exact"
	"req/internal/rng"
)

func TestNewLowerBoundValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewLowerBound(0, 3, 1000, r); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewLowerBound(0.1, 0, 1000, r); err == nil {
		t.Fatal("0 phases accepted")
	}
	if _, err := NewLowerBound(0.01, 10, 10, r); err == nil {
		t.Fatal("tiny universe accepted")
	}
}

func TestLowerBoundShape(t *testing.T) {
	r := rng.New(2)
	lb, err := NewLowerBound(0.05, 4, 100000, r)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Ell != 3 { // ceil(1/(8·0.05)) = ceil(2.5) = 3
		t.Fatalf("ell = %d, want 3", lb.Ell)
	}
	if len(lb.S) != lb.Ell*lb.Phases {
		t.Fatalf("subset size %d, want %d", len(lb.S), lb.Ell*lb.Phases)
	}
	for i := 1; i < len(lb.S); i++ {
		if lb.S[i] <= lb.S[i-1] {
			t.Fatal("subset not strictly ascending")
		}
	}
	vals := lb.Values()
	if len(vals) != lb.Len() {
		t.Fatalf("stream length %d, want %d", len(vals), lb.Len())
	}
	want := lb.Ell * ((1 << uint(lb.Phases)) - 1)
	if lb.Len() != want {
		t.Fatalf("Len() = %d, want %d", lb.Len(), want)
	}
}

func TestLowerBoundPhaseMultiplicities(t *testing.T) {
	r := rng.New(3)
	lb, err := NewLowerBound(0.05, 3, 10000, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	for _, v := range lb.Values() {
		counts[v]++
	}
	for i := 0; i < lb.Phases; i++ {
		for j := 0; j < lb.Ell; j++ {
			item := float64(lb.S[i*lb.Ell+j])
			if counts[item] != 1<<uint(i) {
				t.Fatalf("phase %d item %v appears %d times, want %d", i, item, counts[item], 1<<uint(i))
			}
		}
	}
}

func TestLowerBoundDecodeFromExactRanks(t *testing.T) {
	// Decoding from exact ranks must recover the subset perfectly — this
	// validates the threshold arithmetic of the Theorem 15 proof.
	r := rng.New(4)
	lb, err := NewLowerBound(0.02, 6, 1<<16, r)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.FromValues(lb.Values())
	decoded := lb.Decode(oracle.Rank)
	if len(decoded) != len(lb.S) {
		t.Fatalf("decoded %d items, want %d", len(decoded), len(lb.S))
	}
	for i := range decoded {
		if decoded[i] != lb.S[i] {
			t.Fatalf("decode mismatch at %d: got %d want %d", i, decoded[i], lb.S[i])
		}
	}
}

func TestLowerBoundDecodeToleratesEpsError(t *testing.T) {
	// Perturb exact ranks by just under the multiplicative tolerance the
	// construction is designed for; decode must still succeed.
	r := rng.New(5)
	lb, err := NewLowerBound(0.02, 5, 1<<16, r)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.FromValues(lb.Values())
	noise := rng.New(99)
	perturbed := func(y float64) uint64 {
		true_ := float64(oracle.Rank(y))
		// multiplicative perturbation within ±ε/2.
		f := 1 + (noise.Float64()-0.5)*lb.Eps
		v := true_ * f
		if v < 0 {
			v = 0
		}
		return uint64(v + 0.5)
	}
	decoded := lb.Decode(perturbed)
	for i := range decoded {
		if decoded[i] != lb.S[i] {
			t.Fatalf("decode with ε-noise failed at %d: got %d want %d", i, decoded[i], lb.S[i])
		}
	}
}

func TestOptimalCoresetSize(t *testing.T) {
	// Θ(ε⁻¹·log(εn)): doubling n adds ≈ 1/ε items; halving ε doubles size.
	s1 := OptimalCoresetSize(0.01, 1<<20)
	s2 := OptimalCoresetSize(0.01, 1<<21)
	if s2 <= s1 {
		t.Fatalf("coreset size not increasing in n: %d vs %d", s1, s2)
	}
	growth := s2 - s1
	if growth < 50 || growth > 400 { // ≈ 1/ε = 100 with rounding slack
		t.Fatalf("per-doubling growth = %d, want ≈ 1/ε = 100", growth)
	}
	s3 := OptimalCoresetSize(0.005, 1<<20)
	ratio := float64(s3) / float64(s1)
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("size ratio for eps halved = %v, want ≈ 2", ratio)
	}
	if OptimalCoresetSize(0.01, 0) != 0 {
		t.Fatal("empty stream coreset not 0")
	}
}

func TestLowerBoundStreamAsWorkload(t *testing.T) {
	// The stream must be usable as a generic workload: finite values, right
	// multiset size after shuffling.
	r := rng.New(6)
	lb, err := NewLowerBound(0.05, 5, 1<<14, r)
	if err != nil {
		t.Fatal(err)
	}
	vals := lb.Values()
	Arrange(vals, OrderShuffled, r)
	if len(vals) != lb.Len() {
		t.Fatal("shuffle changed length")
	}
}
