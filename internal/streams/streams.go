// Package streams provides the synthetic workload generators used by the
// test suite and the experiment harness.
//
// The paper's motivating application (Section 1) is monitoring long-tailed
// network latencies, where accuracy is needed at extreme ranks. Production
// traces are not available offline, so the Latency generator synthesises the
// relevant property — a heavy upper tail — from a log-normal body with a
// Pareto tail (the standard model for web response times; Masson et al.
// report 98.5th ≈ 2s vs 99.5th ≈ 20s, a shape this mixture reproduces).
//
// All generators are deterministic given a seed, so experiments are
// reproducible bit-for-bit.
package streams

import (
	"fmt"
	"math"

	"req/internal/rng"
)

// Generator produces a workload of n float64 values.
type Generator interface {
	// Name identifies the generator in tables and plots.
	Name() string
	// Generate returns n values drawn using r.
	Generate(n int, r *rng.Source) []float64
}

// Uniform draws values uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Name implements Generator.
func (u Uniform) Name() string { return fmt.Sprintf("uniform[%g,%g)", u.Lo, u.Hi) }

// Generate implements Generator.
func (u Uniform) Generate(n int, r *rng.Source) []float64 {
	out := make([]float64, n)
	span := u.Hi - u.Lo
	for i := range out {
		out[i] = u.Lo + span*r.Float64()
	}
	return out
}

// Permutation produces a uniformly random permutation of 0, 1, …, n−1.
// Because all values are distinct with known ranks (rank of v is v+1), it is
// the workhorse for accuracy measurements.
type Permutation struct{}

// Name implements Generator.
func (Permutation) Name() string { return "permutation" }

// Generate implements Generator.
func (Permutation) Generate(n int, r *rng.Source) []float64 {
	out := make([]float64, n)
	for i, v := range r.Perm(n) {
		out[i] = float64(v)
	}
	return out
}

// Normal draws from a Gaussian with the given mean and standard deviation.
type Normal struct {
	Mu, Sigma float64
}

// Name implements Generator.
func (g Normal) Name() string { return fmt.Sprintf("normal(%g,%g)", g.Mu, g.Sigma) }

// Generate implements Generator.
func (g Normal) Generate(n int, r *rng.Source) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Mu + g.Sigma*r.NormFloat64()
	}
	return out
}

// LogNormal draws exp(N(Mu, Sigma²)): a right-skewed positive distribution.
type LogNormal struct {
	Mu, Sigma float64
}

// Name implements Generator.
func (g LogNormal) Name() string { return fmt.Sprintf("lognormal(%g,%g)", g.Mu, g.Sigma) }

// Generate implements Generator.
func (g LogNormal) Generate(n int, r *rng.Source) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(g.Mu + g.Sigma*r.NormFloat64())
	}
	return out
}

// Pareto draws from a Pareto distribution with scale Xm and shape Alpha:
// P(X > x) = (Xm/x)^Alpha for x ≥ Xm. Alpha ≤ 1 has infinite mean.
type Pareto struct {
	Xm, Alpha float64
}

// Name implements Generator.
func (g Pareto) Name() string { return fmt.Sprintf("pareto(%g,%g)", g.Xm, g.Alpha) }

// Generate implements Generator.
func (g Pareto) Generate(n int, r *rng.Source) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := r.Float64()
		if u == 0 {
			u = 0.5 / (1 << 53)
		}
		out[i] = g.Xm / math.Pow(u, 1/g.Alpha)
	}
	return out
}

// Latency models web-service response times in milliseconds: a log-normal
// body (median ≈ 50 ms) mixed with a Pareto tail (TailFrac of requests,
// ≥ 250 ms, shape 1.2). This is the paper's motivating workload class: the
// interesting queries are p99 and beyond.
type Latency struct {
	// TailFrac is the fraction of requests drawn from the heavy tail.
	// Zero means the default of 2%.
	TailFrac float64
}

// Name implements Generator.
func (g Latency) Name() string { return "latency" }

// Generate implements Generator.
func (g Latency) Generate(n int, r *rng.Source) []float64 {
	frac := g.TailFrac
	if frac == 0 {
		frac = 0.02
	}
	body := LogNormal{Mu: math.Log(50), Sigma: 0.4}
	tail := Pareto{Xm: 250, Alpha: 1.2}
	out := make([]float64, n)
	for i := range out {
		if r.Float64() < frac {
			out[i] = tail.Generate(1, r)[0]
		} else {
			out[i] = body.Generate(1, r)[0]
		}
	}
	return out
}

// Zipf draws ranks from a Zipf distribution over {1, …, V} with exponent
// S > 1, via inverse-CDF sampling on the precomputed harmonic weights. Heavy
// duplication at small values stresses tie handling in the sketches.
type Zipf struct {
	S float64 // exponent, > 1
	V int     // universe size
}

// Name implements Generator.
func (g Zipf) Name() string { return fmt.Sprintf("zipf(%g,%d)", g.S, g.V) }

// Generate implements Generator.
func (g Zipf) Generate(n int, r *rng.Source) []float64 {
	v := g.V
	if v <= 0 {
		v = 1000
	}
	s := g.S
	if s <= 1 {
		s = 1.2
	}
	// Precompute the CDF once; V is bounded in practice (≤ ~1e6).
	cdf := make([]float64, v)
	total := 0.0
	for i := 1; i <= v; i++ {
		total += 1 / math.Pow(float64(i), s)
		cdf[i-1] = total
	}
	out := make([]float64, n)
	for i := range out {
		u := r.Float64() * total
		// Binary search the CDF.
		lo, hi := 0, v-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = float64(lo + 1)
	}
	return out
}

// Clustered draws values from K tight clusters with widely separated
// centers, a shape that historically trips interpolating sketches.
type Clustered struct {
	K int // number of clusters; zero means 10
}

// Name implements Generator.
func (g Clustered) Name() string { return "clustered" }

// Generate implements Generator.
func (g Clustered) Generate(n int, r *rng.Source) []float64 {
	k := g.K
	if k <= 0 {
		k = 10
	}
	out := make([]float64, n)
	for i := range out {
		c := r.Intn(k)
		center := math.Pow(10, float64(c))
		out[i] = center * (1 + 0.001*r.NormFloat64())
	}
	return out
}

// Trending produces values that drift upward over time with noise: v_i =
// i·Drift + noise. Early items are small, so the stream's order correlates
// with rank — an adversarial arrival pattern for compaction-based sketches.
type Trending struct {
	Drift float64 // zero means 1
	Noise float64 // zero means 10% of drift·n
}

// Name implements Generator.
func (g Trending) Name() string { return "trending" }

// Generate implements Generator.
func (g Trending) Generate(n int, r *rng.Source) []float64 {
	drift := g.Drift
	if drift == 0 {
		drift = 1
	}
	noise := g.Noise
	if noise == 0 {
		noise = 0.1 * drift * float64(n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = drift*float64(i) + noise*r.NormFloat64()
	}
	return out
}

// Order describes an arrival-order transform applied after generation.
// Relative-error guarantees of comparison-based sketches must hold for every
// order; experiment E7 sweeps these.
type Order uint8

const (
	// OrderAsGenerated leaves the generator's natural order.
	OrderAsGenerated Order = iota
	// OrderSorted arranges values ascending.
	OrderSorted
	// OrderReversed arranges values descending.
	OrderReversed
	// OrderShuffled applies a uniform random permutation.
	OrderShuffled
	// OrderZipper alternates smallest, largest, next-smallest, next-largest:
	// every buffer holds items from both extremes at once.
	OrderZipper
)

// String returns the order name.
func (o Order) String() string {
	switch o {
	case OrderAsGenerated:
		return "natural"
	case OrderSorted:
		return "sorted"
	case OrderReversed:
		return "reversed"
	case OrderShuffled:
		return "shuffled"
	case OrderZipper:
		return "zipper"
	default:
		return "unknown"
	}
}

// AllOrders lists every arrival-order transform, for sweeps.
var AllOrders = []Order{OrderAsGenerated, OrderSorted, OrderReversed, OrderShuffled, OrderZipper}

// Arrange reorders vals in place according to o, using r for OrderShuffled.
func Arrange(vals []float64, o Order, r *rng.Source) {
	switch o {
	case OrderAsGenerated:
	case OrderSorted:
		sortFloats(vals)
	case OrderReversed:
		sortFloats(vals)
		for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
			vals[i], vals[j] = vals[j], vals[i]
		}
	case OrderShuffled:
		r.ShuffleFloat64s(vals)
	case OrderZipper:
		sortFloats(vals)
		zipped := make([]float64, 0, len(vals))
		i, j := 0, len(vals)-1
		for i <= j {
			zipped = append(zipped, vals[i])
			i++
			if i <= j {
				zipped = append(zipped, vals[j])
				j--
			}
		}
		copy(vals, zipped)
	}
}

// sortFloats is a small local quicksort to avoid importing sort for a hot
// path (and to keep allocation behaviour predictable).
func sortFloats(xs []float64) {
	if len(xs) < 2 {
		return
	}
	quick(xs)
}

func quick(xs []float64) {
	for len(xs) > 12 {
		p := medianOfThreePartition(xs)
		if p < len(xs)-p-1 {
			quick(xs[:p])
			xs = xs[p+1:]
		} else {
			quick(xs[p+1:])
			xs = xs[:p]
		}
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func medianOfThreePartition(xs []float64) int {
	n := len(xs)
	mid := n / 2
	if xs[mid] < xs[0] {
		xs[mid], xs[0] = xs[0], xs[mid]
	}
	if xs[n-1] < xs[0] {
		xs[n-1], xs[0] = xs[0], xs[n-1]
	}
	if xs[n-1] < xs[mid] {
		xs[n-1], xs[mid] = xs[mid], xs[n-1]
	}
	xs[mid], xs[n-2] = xs[n-2], xs[mid]
	pivot := xs[n-2]
	i, j := 0, n-2
	for {
		i++
		for xs[i] < pivot {
			i++
		}
		j--
		for pivot < xs[j] {
			j--
		}
		if i >= j {
			break
		}
		xs[i], xs[j] = xs[j], xs[i]
	}
	xs[i], xs[n-2] = xs[n-2], xs[i]
	return i
}

// All returns the standard generator set used by sweep experiments.
func All() []Generator {
	return []Generator{
		Uniform{Lo: 0, Hi: 1},
		Permutation{},
		Normal{Mu: 0, Sigma: 1},
		LogNormal{Mu: 0, Sigma: 1},
		Latency{},
		Zipf{S: 1.3, V: 100000},
		Clustered{},
		Trending{},
	}
}
