package streams

import (
	"math"
	"sort"
	"testing"

	"req/internal/rng"
)

func TestGeneratorsProduceN(t *testing.T) {
	r := rng.New(1)
	for _, g := range All() {
		vals := g.Generate(1000, r)
		if len(vals) != 1000 {
			t.Errorf("%s produced %d values", g.Name(), len(vals))
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s produced non-finite value at %d: %v", g.Name(), i, v)
				break
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range All() {
		a := g.Generate(500, rng.New(7))
		b := g.Generate(500, rng.New(7))
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s not deterministic at %d", g.Name(), i)
				break
			}
		}
	}
}

func TestGeneratorNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range All() {
		if seen[g.Name()] {
			t.Errorf("duplicate generator name %q", g.Name())
		}
		seen[g.Name()] = true
	}
}

func TestUniformRange(t *testing.T) {
	vals := Uniform{Lo: 5, Hi: 10}.Generate(10000, rng.New(2))
	for _, v := range vals {
		if v < 5 || v >= 10 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	const n = 10000
	vals := Permutation{}.Generate(n, rng.New(3))
	seen := make([]bool, n)
	for _, v := range vals {
		i := int(v)
		if float64(i) != v || i < 0 || i >= n || seen[i] {
			t.Fatalf("not a permutation: %v", v)
		}
		seen[i] = true
	}
}

func TestLogNormalPositive(t *testing.T) {
	vals := LogNormal{Mu: 0, Sigma: 1}.Generate(10000, rng.New(4))
	for _, v := range vals {
		if v <= 0 {
			t.Fatalf("lognormal non-positive: %v", v)
		}
	}
}

func TestParetoTail(t *testing.T) {
	g := Pareto{Xm: 1, Alpha: 2}
	vals := g.Generate(200000, rng.New(5))
	exceed := 0
	for _, v := range vals {
		if v < 1 {
			t.Fatalf("pareto below scale: %v", v)
		}
		if v > 10 {
			exceed++
		}
	}
	// P(X > 10) = 10^-2 = 1%.
	got := float64(exceed) / float64(len(vals))
	if got < 0.005 || got > 0.02 {
		t.Fatalf("pareto tail mass at 10x scale = %v, want ≈0.01", got)
	}
}

func TestLatencyHeavyTail(t *testing.T) {
	vals := Latency{}.Generate(200000, rng.New(6))
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	p50 := sorted[len(sorted)/2]
	p999 := sorted[len(sorted)*999/1000]
	if p999/p50 < 5 {
		t.Fatalf("latency tail not heavy: p50=%v p99.9=%v", p50, p999)
	}
	for _, v := range vals {
		if v <= 0 {
			t.Fatalf("latency non-positive: %v", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	vals := Zipf{S: 1.5, V: 1000}.Generate(100000, rng.New(7))
	ones := 0
	for _, v := range vals {
		if v < 1 || v > 1000 || v != math.Trunc(v) {
			t.Fatalf("zipf out of range: %v", v)
		}
		if v == 1 {
			ones++
		}
	}
	// Value 1 should dominate: its weight is 1/H where H ≈ 2.6 for s=1.5.
	frac := float64(ones) / float64(len(vals))
	if frac < 0.2 {
		t.Fatalf("zipf top value frequency %v, want > 0.2", frac)
	}
}

func TestZipfDefaults(t *testing.T) {
	vals := Zipf{}.Generate(100, rng.New(8))
	if len(vals) != 100 {
		t.Fatal("zipf with zero params failed")
	}
}

func TestClusteredSeparation(t *testing.T) {
	vals := Clustered{K: 3}.Generate(10000, rng.New(9))
	for _, v := range vals {
		logv := math.Log10(v)
		nearest := math.Round(logv)
		if math.Abs(logv-nearest) > 0.1 {
			t.Fatalf("clustered value %v far from any center", v)
		}
	}
}

func TestTrendingDrifts(t *testing.T) {
	vals := Trending{Drift: 1, Noise: 1}.Generate(10000, rng.New(10))
	firstMean, lastMean := 0.0, 0.0
	for i := 0; i < 1000; i++ {
		firstMean += vals[i]
		lastMean += vals[len(vals)-1-i]
	}
	if lastMean <= firstMean {
		t.Fatal("trending stream does not trend upward")
	}
}

func TestArrangeSorted(t *testing.T) {
	r := rng.New(11)
	vals := Uniform{Lo: 0, Hi: 1}.Generate(5000, r)
	Arrange(vals, OrderSorted, r)
	if !sort.Float64sAreSorted(vals) {
		t.Fatal("OrderSorted did not sort")
	}
}

func TestArrangeReversed(t *testing.T) {
	r := rng.New(12)
	vals := Uniform{Lo: 0, Hi: 1}.Generate(5000, r)
	Arrange(vals, OrderReversed, r)
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1] {
			t.Fatal("OrderReversed not descending")
		}
	}
}

func TestArrangePreservesMultiset(t *testing.T) {
	r := rng.New(13)
	for _, o := range AllOrders {
		vals := Permutation{}.Generate(2001, r)
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		Arrange(vals, o, r)
		got := 0.0
		for _, v := range vals {
			got += v
		}
		if got != sum || len(vals) != 2001 {
			t.Fatalf("order %v changed the multiset", o)
		}
	}
}

func TestArrangeZipperAlternates(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6}
	Arrange(vals, OrderZipper, rng.New(14))
	want := []float64{1, 6, 2, 5, 3, 4}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("zipper = %v, want %v", vals, want)
		}
	}
}

func TestArrangeZipperOdd(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	Arrange(vals, OrderZipper, rng.New(15))
	want := []float64{1, 5, 2, 4, 3}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("zipper odd = %v, want %v", vals, want)
		}
	}
}

func TestOrderString(t *testing.T) {
	names := map[Order]string{
		OrderAsGenerated: "natural", OrderSorted: "sorted", OrderReversed: "reversed",
		OrderShuffled: "shuffled", OrderZipper: "zipper", Order(99): "unknown",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("Order(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}

func TestSortFloatsMatchesStdlib(t *testing.T) {
	r := rng.New(16)
	for _, n := range []int{0, 1, 2, 13, 100, 4096} {
		vals := Uniform{Lo: 0, Hi: 1}.Generate(n, r)
		mine := append([]float64(nil), vals...)
		std := append([]float64(nil), vals...)
		sortFloats(mine)
		sort.Float64s(std)
		for i := range mine {
			if mine[i] != std[i] {
				t.Fatalf("n=%d: sortFloats diverges from stdlib at %d", n, i)
			}
		}
	}
}
