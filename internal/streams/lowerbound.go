package streams

import (
	"errors"
	"fmt"
	"math"

	"req/internal/rng"
)

// LowerBound implements the stream construction of Appendix A (Theorem 15):
// an ε-accurate all-quantiles sketch of this stream losslessly encodes an
// arbitrary subset S of the universe, which forces the
// Ω(ε⁻¹·log(εn)·log(ε|U|)) bits lower bound.
//
// The construction: let ℓ = 1/(8ε) and k = number of phases. Pick a subset
// S = {y₁ < y₂ < … < y_s} of the universe with s = ℓ·k. The stream contains
// each "phase i" item y_{iℓ+1}, …, y_{(i+1)ℓ} exactly 2^i times, for
// i = 0, …, k−1. Any rank sketch with multiplicative error ε then recovers
// S exactly: the error on a phase-i item is below 2^{i−1}, half the gap the
// encoding leaves between consecutive items.
//
// The harness uses the construction both as a decode test (experiment E13)
// and as an adversarial duplication-heavy workload.
type LowerBound struct {
	// Eps is the error the construction defends against; ℓ = ⌈1/(8ε)⌉.
	Eps float64
	// Ell is the per-phase item count ℓ.
	Ell int
	// Phases is k, the number of phases.
	Phases int
	// Universe is the universe size |U|; items are 0, …, Universe−1.
	Universe int
	// S holds the encoded subset, ascending. len(S) = Ell·Phases.
	S []int
}

// NewLowerBound draws a random subset of the given universe and returns the
// construction for it. Universe must be at least ℓ·phases.
func NewLowerBound(eps float64, phases, universe int, r *rng.Source) (*LowerBound, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("streams: eps %v out of range", eps)
	}
	if phases < 1 {
		return nil, errors.New("streams: need at least one phase")
	}
	ell := int(math.Ceil(1 / (8 * eps)))
	s := ell * phases
	if universe < s {
		return nil, fmt.Errorf("streams: universe %d smaller than subset size %d", universe, s)
	}
	// Sample s distinct universe items via partial Fisher–Yates on indices.
	perm := r.Perm(universe)
	subset := perm[:s]
	// Sort ascending (int sort).
	sortInts(subset)
	return &LowerBound{Eps: eps, Ell: ell, Phases: phases, Universe: universe, S: subset}, nil
}

// Len returns the stream length: ℓ·(2^k − 1).
func (lb *LowerBound) Len() int {
	return lb.Ell * ((1 << uint(lb.Phases)) - 1)
}

// Values materialises the stream: phase-i items repeated 2^i times. The
// order is phase-major; callers may Arrange it further (the guarantee must
// hold for any order).
func (lb *LowerBound) Values() []float64 {
	out := make([]float64, 0, lb.Len())
	for i := 0; i < lb.Phases; i++ {
		reps := 1 << uint(i)
		for j := 0; j < lb.Ell; j++ {
			item := float64(lb.S[i*lb.Ell+j])
			for t := 0; t < reps; t++ {
				out = append(out, item)
			}
		}
	}
	return out
}

// Decode recovers the encoded subset from a rank oracle (exact or estimated
// with multiplicative error < ε). It returns the decoded subset, ascending.
//
// Per the proof of Theorem 15, item y_{iℓ+j} (1-based j) is the smallest
// universe item whose estimated inclusive rank strictly exceeds
// (2^i − 1)·ℓ + 2^i·j − 2^{i−1}.
func (lb *LowerBound) Decode(rank func(float64) uint64) []int {
	out := make([]int, 0, len(lb.S))
	for i := 0; i < lb.Phases; i++ {
		base := float64(int(1)<<uint(i)-1) * float64(lb.Ell)
		weight := float64(int(1) << uint(i))
		half := weight / 2
		for j := 1; j <= lb.Ell; j++ {
			threshold := base + weight*float64(j) - half
			// The universe is ordered, and rank() is monotone, so binary
			// search for the smallest u with rank(u) > threshold.
			lo, hi := 0, lb.Universe-1
			for lo < hi {
				mid := (lo + hi) / 2
				if float64(rank(float64(mid))) > threshold {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			out = append(out, lo)
		}
	}
	return out
}

// OptimalCoresetSize returns the size of the offline-optimal relative-error
// summary described below Theorem 15: all items of rank ≤ 2ℓ, every other
// item of rank in (2ℓ, 4ℓ], every fourth in (4ℓ, 8ℓ], and so on — a total of
// Θ(ε⁻¹·log(εn)) items for a stream of length n.
func OptimalCoresetSize(eps float64, n uint64) int {
	if n == 0 {
		return 0
	}
	ell := uint64(math.Ceil(1 / eps))
	total := uint64(0)
	lo := uint64(0)
	step := uint64(1)
	for lo < n {
		hi := 2 * ell * step
		if hi > n {
			hi = n
		}
		total += (hi - lo + step - 1) / step
		lo = hi
		step *= 2
	}
	return int(total)
}

func sortInts(xs []int) {
	// Insertion into place for small inputs, shell-style gap sort otherwise;
	// subsets are at most a few thousand items.
	for gap := len(xs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(xs); i++ {
			for j := i; j >= gap && xs[j] < xs[j-gap]; j -= gap {
				xs[j], xs[j-gap] = xs[j-gap], xs[j]
			}
		}
	}
}
