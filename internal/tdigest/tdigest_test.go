package tdigest

import (
	"math"
	"sort"
	"testing"

	"req/internal/exact"
	"req/internal/rng"
)

func feed(s *Sketch, n int, seed uint64) []float64 {
	r := rng.New(seed)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.Float64() * 1000
	}
	for _, v := range vals {
		s.Update(v)
	}
	return vals
}

func TestEmpty(t *testing.T) {
	s := New(0)
	if s.N() != 0 || s.Rank(1) != 0 {
		t.Fatal("empty misbehaves")
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Fatal("quantile on empty accepted")
	}
	if s.Compression() != DefaultCompression {
		t.Fatal("default compression not applied")
	}
}

func TestSingleValue(t *testing.T) {
	s := New(100)
	s.Update(42)
	if s.N() != 1 {
		t.Fatal("N != 1")
	}
	q, err := s.Quantile(0.5)
	if err != nil || q != 42 {
		t.Fatalf("Quantile = %v, %v", q, err)
	}
	if s.Rank(42) != 1 || s.Rank(41) != 0 {
		t.Fatal("single-value ranks wrong")
	}
}

func TestCompressionBoundsCentroids(t *testing.T) {
	s := New(100)
	feed(s, 200000, 1)
	s.process()
	// The k1 scale function admits at most ~δ centroids (π·δ/2 bound); in
	// practice close to δ.
	if len(s.centroids) > 2*int(s.compression) {
		t.Fatalf("%d centroids for compression %v", len(s.centroids), s.compression)
	}
	if len(s.centroids) < int(s.compression)/4 {
		t.Fatalf("suspiciously few centroids: %d", len(s.centroids))
	}
}

func TestWeightsSumToN(t *testing.T) {
	s := New(150)
	feed(s, 123457, 2)
	s.process()
	var w uint64
	for _, c := range s.centroids {
		w += c.weight
	}
	if w != s.n {
		t.Fatalf("centroid weight %d != n %d", w, s.n)
	}
}

func TestCentroidsSorted(t *testing.T) {
	s := New(100)
	feed(s, 100000, 3)
	s.process()
	for i := 1; i < len(s.centroids); i++ {
		if s.centroids[i].mean < s.centroids[i-1].mean {
			t.Fatal("centroids out of order")
		}
	}
}

func TestQuantileAccuracyMidRange(t *testing.T) {
	const n = 100000
	s := New(200)
	vals := feed(s, n, 4)
	oracle := exact.FromValues(vals)
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		got, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		trueRank := float64(oracle.Rank(got)) / n
		if math.Abs(trueRank-phi) > 0.02 {
			t.Errorf("phi=%v: achieved rank %v", phi, trueRank)
		}
	}
}

func TestTailQuantileAccuracy(t *testing.T) {
	// The t-digest's selling point: tail quantiles on skewed data.
	const n = 200000
	s := New(200)
	r := rng.New(5)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Exp(r.NormFloat64() * 2)
	}
	for _, v := range vals {
		s.Update(v)
	}
	oracle := exact.FromValues(vals)
	for _, phi := range []float64{0.99, 0.999} {
		got, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		achieved := float64(oracle.Rank(got)) / n
		if math.Abs(achieved-phi) > 0.005 {
			t.Errorf("phi=%v: achieved rank %v", phi, achieved)
		}
	}
}

func TestRankMonotone(t *testing.T) {
	s := New(100)
	feed(s, 50000, 6)
	prev := uint64(0)
	for y := -5.0; y < 1010; y += 7 {
		got := s.Rank(y)
		if got < prev {
			t.Fatalf("rank decreased at %v: %d < %d", y, got, prev)
		}
		prev = got
	}
}

func TestRankEndpoints(t *testing.T) {
	s := New(100)
	feed(s, 10000, 7)
	if s.Rank(-1) != 0 {
		t.Fatal("rank below min")
	}
	if s.Rank(1e9) != s.N() {
		t.Fatal("rank above max")
	}
	mx, _ := s.Max()
	if s.Rank(mx) != s.N() {
		t.Fatal("rank at max should be n")
	}
}

func TestQuantileEndpointsExact(t *testing.T) {
	s := New(100)
	vals := feed(s, 10000, 8)
	sort.Float64s(vals)
	q0, _ := s.Quantile(0)
	q1, _ := s.Quantile(1)
	if q0 != vals[0] || q1 != vals[len(vals)-1] {
		t.Fatal("endpoint quantiles not exact")
	}
}

func TestQuantileMonotone(t *testing.T) {
	s := New(100)
	feed(s, 50000, 9)
	prev := math.Inf(-1)
	for phi := 0.0; phi <= 1.0; phi += 0.005 {
		q, err := s.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if q < prev-1e-9 {
			t.Fatalf("quantile decreased at %v: %v < %v", phi, q, prev)
		}
		prev = q
	}
}

func TestQuantileRejectsBad(t *testing.T) {
	s := New(100)
	s.Update(1)
	for _, phi := range []float64{-1, 2, math.NaN()} {
		if _, err := s.Quantile(phi); err == nil {
			t.Errorf("Quantile(%v) accepted", phi)
		}
	}
}

func TestNaNIgnored(t *testing.T) {
	s := New(100)
	s.Update(math.NaN())
	if s.N() != 0 {
		t.Fatal("NaN counted")
	}
}

func TestMerge(t *testing.T) {
	a := New(200)
	b := New(200)
	va := feed(a, 60000, 10)
	vb := feed(b, 60000, 11)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 120000 {
		t.Fatalf("merged N = %d", a.N())
	}
	all := append(va, vb...)
	oracle := exact.FromValues(all)
	for _, phi := range []float64{0.25, 0.5, 0.9} {
		got, err := a.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		achieved := float64(oracle.Rank(got)) / float64(len(all))
		if math.Abs(achieved-phi) > 0.02 {
			t.Errorf("merged phi=%v: achieved %v", phi, achieved)
		}
	}
}

func TestMergeEmptyAndSelf(t *testing.T) {
	a := New(100)
	a.Update(1)
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(New(100)); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(a); err == nil {
		t.Fatal("self merge accepted")
	}
}

func TestMergePreservesWeight(t *testing.T) {
	a := New(100)
	b := New(100)
	feed(a, 40000, 12)
	feed(b, 30000, 13)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	var w uint64
	for _, c := range a.centroids {
		w += c.weight
	}
	if w != a.n || a.n != 70000 {
		t.Fatalf("merged weights %d, n %d", w, a.n)
	}
}

func TestScaleFunction(t *testing.T) {
	s := New(100)
	if math.Abs(s.scale(0.5)) > 1e-12 {
		t.Fatal("k(0.5) != 0")
	}
	if s.scale(0) >= s.scale(0.5) || s.scale(0.5) >= s.scale(1) {
		t.Fatal("scale not increasing")
	}
	// Slope near the edges must be steeper than at the center (tail
	// resolution): k(0.01)-k(0) > k(0.51)-k(0.5).
	edge := s.scale(0.01) - s.scale(0)
	mid := s.scale(0.51) - s.scale(0.5)
	if edge <= mid {
		t.Fatalf("scale slope edge %v <= mid %v", edge, mid)
	}
}
